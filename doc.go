// Package ting is a from-scratch Go reproduction of "Ting: Measuring and
// Exploiting Latencies Between All Tor Nodes" (Cangialosi, Levin, Spring —
// IMC 2015).
//
// The repository contains three layers:
//
//   - mintor, a working onion-routing overlay (internal/cell, onion, link,
//     relay, directory, client, control, echo, tornet) with real layered
//     encryption and a Tor-control-port-style protocol;
//   - the Ting measurement technique itself (internal/ting), which measures
//     the RTT between any two relays from a single vantage point by
//     composing circuits (w,x,y,z), (w,x), (w,y) and applying Eq. (4);
//   - the paper's evaluation: a synthetic Internet with exactly known
//     ground truth (internal/geo, inet), the applications of Section 5
//     (internal/deanon, pathsel, coverage), and a harness regenerating
//     every figure (internal/experiments, cmd/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate each figure at
// reduced scale; `go run ./cmd/experiments -fig all` runs paper scale.
package ting
