// Command tingnet boots a complete mintor overlay — a network-in-a-box —
// and exposes it the way a real Tor deployment would be exposed to Ting:
// a control port (EXTENDCIRCUIT / ATTACHSTREAM-style), a data port for
// circuit streams, and a directory port serving the consensus.
//
// The overlay's relays are placed on a synthetic Internet whose
// ground-truth latencies are printed at startup, so measurements taken
// against this network can be checked by hand.
//
// Usage:
//
//	tingnet -relays 10 -seed 42 -control 127.0.0.1:9051 \
//	        -data 127.0.0.1:9052 -dir 127.0.0.1:9030 [-tcp] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"ting/internal/control"
	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/faults"
	"ting/internal/inet"
	"ting/internal/telemetry"
	"ting/internal/tornet"
)

var (
	relaysFlag  = flag.Int("relays", 10, "number of public relays")
	seedFlag    = flag.Int64("seed", 42, "topology seed")
	controlAddr = flag.String("control", "127.0.0.1:9051", "control port address")
	dataAddr    = flag.String("data", "127.0.0.1:9052", "data (stream-attach) port address")
	dirAddr     = flag.String("dir", "127.0.0.1:9030", "directory port address")
	tcpFlag     = flag.Bool("tcp", false, "run relay links over loopback TCP instead of in-process pipes")
	scaleFlag   = flag.Float64("scale", 1.0, "virtual-ms to wall-clock scale (0.1 = 10x faster)")
	fwdFlag     = flag.Bool("fwd", true, "apply stochastic relay forwarding delays")
	password    = flag.String("password", "", "control-port password (empty accepts any)")
	debugAddr   = flag.String("debug-addr", "", "serve overlay telemetry and pprof on this address")

	crashFlags multiFlag
	flapFlags  multiFlag
	churnFlags multiFlag
	faultSeed  = flag.Int64("fault-seed", 7, "seed for the fault plan's probabilistic decisions")
)

func init() {
	flag.Var(&crashFlags, "crash", "kill a relay permanently: name:delay (e.g. relay002:30s; repeatable)")
	flag.Var(&flapFlags, "flap", "flap a relay: name:period:down (e.g. relay001:10s:2s; repeatable)")
	flag.Var(&churnFlags, "churn", "churn the consensus: join:name:delay holds the relay out of the initial consensus and publishes it then; drain:name:delay drains it gracefully (e.g. drain:relay003:45s; repeatable)")
}

// multiFlag collects every occurrence of a repeatable flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingnet: ")
	flag.Parse()

	world, err := experiments.NewTestbedWorld(*relaysFlag, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	var reg *telemetry.Registry
	if *debugAddr != "" {
		reg = telemetry.New()
		addr, shutdown, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		fmt.Printf("telemetry: http://%s/metrics.json (pprof under /debug/pprof/)\n", addr)
	}
	plan, err := buildFaultPlan(crashFlags, flapFlags, churnFlags, *faultSeed, world)
	if err != nil {
		log.Fatal(err)
	}
	n, err := tornet.Build(tornet.Config{
		Topology:      world.Topo,
		RelayNodes:    idsOf(world),
		Host:          world.Host,
		TimeScale:     *scaleFlag,
		ForwardDelays: *fwdFlag,
		Seed:          *seedFlag,
		TCP:           *tcpFlag,
		Telemetry:     reg,
		Faults:        plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()

	srv, err := control.NewServer(control.ServerConfig{
		Client:   n.Client,
		Registry: n.Registry,
		Password: *password,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctrlLn := listen(*controlAddr)
	dataLn := listen(*dataAddr)
	dirLn := listen(*dirAddr)
	go srv.ServeControl(ctrlLn)
	go srv.ServeData(dataLn)
	dirSrv := directory.NewServer(n.Registry)
	go dirSrv.Serve(dirLn)
	defer dirSrv.Close()

	fmt.Printf("mintor network up: %d relays (+%s, %s), transport=%s, scale=%.2f\n",
		*relaysFlag, tornet.WName, tornet.ZName, transportName(*tcpFlag), *scaleFlag)
	fmt.Printf("  control: %s\n  data:    %s\n  dir:     %s\n",
		ctrlLn.Addr(), dataLn.Addr(), dirLn.Addr())
	fmt.Printf("  echo target: %q (the only address exit policies allow)\n", tornet.EchoTarget)
	printFaultPlan(plan)
	fmt.Println()
	fmt.Println("ground-truth RTTs (ms):")
	for i := 0; i < len(world.Names); i++ {
		for j := i + 1; j < len(world.Names); j++ {
			fmt.Printf("  %-10s %-10s %7.1f\n", world.Names[i], world.Names[j],
				world.Topo.RTT(inet.NodeID(i), inet.NodeID(j)))
		}
	}
	fmt.Println("\nmeasure with: go run ./cmd/ting -control", ctrlLn.Addr().String(),
		"-data", dataLn.Addr().String(), "-pair", world.Names[0]+","+world.Names[1])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}

func listen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	return ln
}

func idsOf(w *experiments.World) []inet.NodeID {
	ids := make([]inet.NodeID, 0, len(w.Names))
	for _, name := range w.Names {
		ids = append(ids, w.NodeOf[name])
	}
	return ids
}

func transportName(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "pipe"
}

// buildFaultPlan turns the -crash, -flap, and -churn flags into a fault
// plan, or returns nil when no faults were requested. A relay may appear in
// several flags; the schedules merge.
func buildFaultPlan(crashes, flaps, churns []string, seed int64, world *experiments.World) (*faults.Plan, error) {
	if len(crashes) == 0 && len(flaps) == 0 && len(churns) == 0 {
		return nil, nil
	}
	schedules := map[string]faults.RelaySchedule{}
	relay := func(name string) (faults.RelaySchedule, error) {
		if _, ok := world.NodeOf[name]; !ok {
			return faults.RelaySchedule{}, fmt.Errorf("fault plan: unknown relay %q", name)
		}
		return schedules[name], nil
	}
	for _, spec := range crashes {
		parts := strings.Split(spec, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -crash %q, want name:delay", spec)
		}
		rs, err := relay(parts[0])
		if err != nil {
			return nil, err
		}
		delay, err := time.ParseDuration(parts[1])
		if err != nil || delay <= 0 {
			return nil, fmt.Errorf("bad -crash delay %q: want a positive duration", parts[1])
		}
		rs.CrashAfter = delay
		schedules[parts[0]] = rs
	}
	for _, spec := range flaps {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -flap %q, want name:period:down", spec)
		}
		rs, err := relay(parts[0])
		if err != nil {
			return nil, err
		}
		period, err := time.ParseDuration(parts[1])
		if err != nil || period <= 0 {
			return nil, fmt.Errorf("bad -flap period %q: want a positive duration", parts[1])
		}
		down, err := time.ParseDuration(parts[2])
		if err != nil || down <= 0 || down >= period {
			return nil, fmt.Errorf("bad -flap downtime %q: want a positive duration shorter than the period", parts[2])
		}
		rs.FlapPeriod, rs.FlapDown = period, down
		schedules[parts[0]] = rs
	}
	for _, spec := range churns {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 || (parts[0] != "join" && parts[0] != "drain") {
			return nil, fmt.Errorf("bad -churn %q, want join:name:delay or drain:name:delay", spec)
		}
		rs, err := relay(parts[1])
		if err != nil {
			return nil, err
		}
		delay, err := time.ParseDuration(parts[2])
		if err != nil || delay <= 0 {
			return nil, fmt.Errorf("bad -churn delay %q: want a positive duration", parts[2])
		}
		if parts[0] == "join" {
			rs.JoinAfter = delay
		} else {
			rs.DrainAfter = delay
		}
		schedules[parts[1]] = rs
	}
	plan := faults.NewPlan(seed)
	for name, rs := range schedules {
		plan.SetRelay(name, rs)
	}
	return plan, nil
}

// printFaultPlan reports the injected failure schedule so a transcript of
// the run records what the network was doing to itself.
func printFaultPlan(plan *faults.Plan) {
	if plan == nil {
		return
	}
	fmt.Printf("fault plan (seed %d, clock starts now):\n", plan.Seed)
	relays := plan.Relays()
	names := make([]string, 0, len(relays))
	for name := range relays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := relays[name]
		if rs.CrashAfter > 0 {
			fmt.Printf("  %s: crashes permanently after %v\n", name, rs.CrashAfter)
		}
		if rs.FlapPeriod > 0 {
			fmt.Printf("  %s: down %v at the top of every %v\n", name, rs.FlapDown, rs.FlapPeriod)
		}
		if rs.JoinAfter > 0 {
			fmt.Printf("  %s: held out of the consensus, joins after %v\n", name, rs.JoinAfter)
		}
		if rs.DrainAfter > 0 {
			fmt.Printf("  %s: drains gracefully after %v\n", name, rs.DrainAfter)
		}
	}
}
