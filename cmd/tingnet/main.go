// Command tingnet boots a complete mintor overlay — a network-in-a-box —
// and exposes it the way a real Tor deployment would be exposed to Ting:
// a control port (EXTENDCIRCUIT / ATTACHSTREAM-style), a data port for
// circuit streams, and a directory port serving the consensus.
//
// The overlay's relays are placed on a synthetic Internet whose
// ground-truth latencies are printed at startup, so measurements taken
// against this network can be checked by hand.
//
// Usage:
//
//	tingnet -relays 10 -seed 42 -control 127.0.0.1:9051 \
//	        -data 127.0.0.1:9052 -dir 127.0.0.1:9030 [-tcp] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	"ting/internal/cliflags"
	"ting/internal/control"
	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/inet"
	"ting/internal/tornet"
)

var (
	relaysFlag  = flag.Int("relays", 10, "number of public relays")
	seedFlag    = flag.Int64("seed", 42, "topology seed")
	controlAddr = flag.String("control", "127.0.0.1:9051", "control port address")
	dataAddr    = flag.String("data", "127.0.0.1:9052", "data (stream-attach) port address")
	dirAddr     = flag.String("dir", "127.0.0.1:9030", "directory port address")
	tcpFlag     = flag.Bool("tcp", false, "run relay links over loopback TCP instead of in-process pipes")
	scaleFlag   = flag.Float64("scale", 1.0, "virtual-ms to wall-clock scale (0.1 = 10x faster)")
	fwdFlag     = flag.Bool("fwd", true, "apply stochastic relay forwarding delays")
	password    = flag.String("password", "", "control-port password (empty accepts any)")
	debugAddr   = cliflags.DebugAddr(flag.CommandLine)

	faultFlags cliflags.FaultFlags
)

func init() {
	faultFlags.Register(flag.CommandLine)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingnet: ")
	flag.Parse()

	world, err := experiments.NewTestbedWorld(*relaysFlag, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	reg, _, shutdownTelemetry, err := cliflags.BootTelemetry(*debugAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdownTelemetry()
	plan, err := faultFlags.BuildPlan(func(name string) bool {
		_, ok := world.NodeOf[name]
		return ok
	})
	if err != nil {
		log.Fatal(err)
	}
	n, err := tornet.Build(tornet.Config{
		Topology:      world.Topo,
		RelayNodes:    idsOf(world),
		Host:          world.Host,
		TimeScale:     *scaleFlag,
		ForwardDelays: *fwdFlag,
		Seed:          *seedFlag,
		TCP:           *tcpFlag,
		Telemetry:     reg,
		Faults:        plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer n.Close()

	srv, err := control.NewServer(control.ServerConfig{
		Client:   n.Client,
		Registry: n.Registry,
		Password: *password,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctrlLn := listen(*controlAddr)
	dataLn := listen(*dataAddr)
	dirLn := listen(*dirAddr)
	go srv.ServeControl(ctrlLn)
	go srv.ServeData(dataLn)
	dirSrv := directory.NewServer(n.Registry)
	go dirSrv.Serve(dirLn)
	defer dirSrv.Close()

	fmt.Printf("mintor network up: %d relays (+%s, %s), transport=%s, scale=%.2f\n",
		*relaysFlag, tornet.WName, tornet.ZName, transportName(*tcpFlag), *scaleFlag)
	fmt.Printf("  control: %s\n  data:    %s\n  dir:     %s\n",
		ctrlLn.Addr(), dataLn.Addr(), dirLn.Addr())
	fmt.Printf("  echo target: %q (the only address exit policies allow)\n", tornet.EchoTarget)
	cliflags.PrintFaultPlan(os.Stdout, plan)
	fmt.Println()
	fmt.Println("ground-truth RTTs (ms):")
	for i := 0; i < len(world.Names); i++ {
		for j := i + 1; j < len(world.Names); j++ {
			fmt.Printf("  %-10s %-10s %7.1f\n", world.Names[i], world.Names[j],
				world.Topo.RTT(inet.NodeID(i), inet.NodeID(j)))
		}
	}
	fmt.Println("\nmeasure with: go run ./cmd/ting -control", ctrlLn.Addr().String(),
		"-data", dataLn.Addr().String(), "-pair", world.Names[0]+","+world.Names[1])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}

func listen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	return ln
}

func idsOf(w *experiments.World) []inet.NodeID {
	ids := make([]inet.NodeID, 0, len(w.Names))
	for _, name := range w.Names {
		ids = append(ids, w.NodeOf[name])
	}
	return ids
}

func transportName(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "pipe"
}
