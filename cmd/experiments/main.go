// Command experiments regenerates every figure of the paper's evaluation
// (Figures 3–18), the headline numbers, and the ablation studies, printing
// summary rows and writing gnuplot-style .dat series.
//
// Usage:
//
//	experiments -fig all [-out data] [-quick] [-seed 42]
//	experiments -fig 12
//	experiments -fig headlines
//	experiments -fig ablations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ting/internal/experiments"
	"ting/internal/stats"
)

var (
	figFlag   = flag.String("fig", "all", "figure to regenerate: 3..18, headlines, ablations, or all")
	outFlag   = flag.String("out", "data", "directory for .dat series")
	quickFlag = flag.Bool("quick", false, "run at reduced scale (for smoke tests)")
	seedFlag  = flag.Int64("seed", 42, "base random seed")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	flag.Parse()
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		log.Fatal(err)
	}
	r := &runner{out: *outFlag, quick: *quickFlag, seed: *seedFlag}

	figs := strings.Split(*figFlag, ",")
	if *figFlag == "all" {
		figs = []string{"3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13",
			"14", "15", "16", "17", "18", "headlines", "ablations",
			"king", "defenses", "selection"}
	}
	for _, f := range figs {
		if err := r.run(strings.TrimSpace(f)); err != nil {
			log.Fatalf("fig %s: %v", f, err)
		}
	}
}

// runner caches shared results (Fig 3 data feeds 4 and 7; Fig 11 feeds
// 12–17).
type runner struct {
	out   string
	quick bool
	seed  int64

	f3  *experiments.Fig3Result
	f9  *experiments.Fig9Result
	f11 *experiments.Fig11Result
	f12 *experiments.Fig12Result
	f14 *experiments.Fig14Result
	f16 *experiments.Fig16Result
	f18 *experiments.Fig18Result
}

func (r *runner) fig3cfg() experiments.Fig3Config {
	cfg := experiments.Fig3Config{Ordered: true, Seed: r.seed}
	if r.quick {
		cfg = experiments.Fig3Config{Nodes: 12, Samples: 150, PingSamples: 40, Seed: r.seed}
	}
	return cfg
}

func (r *runner) ensureF3() (*experiments.Fig3Result, error) {
	if r.f3 == nil {
		res, err := experiments.Fig3(r.fig3cfg())
		if err != nil {
			return nil, err
		}
		r.f3 = res
	}
	return r.f3, nil
}

func (r *runner) ensureF9() (*experiments.Fig9Result, error) {
	if r.f9 == nil {
		cfg := experiments.Fig9Config{Seed: r.seed}
		if r.quick {
			cfg = experiments.Fig9Config{WorldNodes: 40, PairCount: 12, Hours: 24, Samples: 80, Seed: r.seed}
		}
		res, err := experiments.Fig9(cfg)
		if err != nil {
			return nil, err
		}
		r.f9 = res
	}
	return r.f9, nil
}

func (r *runner) ensureF11() (*experiments.Fig11Result, error) {
	if r.f11 == nil {
		cfg := experiments.Fig11Config{Seed: r.seed}
		if r.quick {
			cfg = experiments.Fig11Config{Nodes: 25, Samples: 60, Seed: r.seed}
		}
		res, err := experiments.Fig11(cfg)
		if err != nil {
			return nil, err
		}
		r.f11 = res
	}
	return r.f11, nil
}

func (r *runner) ensureF12() (*experiments.Fig12Result, error) {
	if r.f12 == nil {
		f11, err := r.ensureF11()
		if err != nil {
			return nil, err
		}
		cfg := experiments.Fig12Config{Seed: r.seed}
		if r.quick {
			cfg.Trials = 200
		}
		res, err := experiments.Fig12(f11, cfg)
		if err != nil {
			return nil, err
		}
		r.f12 = res
	}
	return r.f12, nil
}

func (r *runner) ensureF14() (*experiments.Fig14Result, error) {
	if r.f14 == nil {
		f11, err := r.ensureF11()
		if err != nil {
			return nil, err
		}
		res, err := experiments.Fig14(f11)
		if err != nil {
			return nil, err
		}
		r.f14 = res
	}
	return r.f14, nil
}

func (r *runner) ensureF16() (*experiments.Fig16Result, error) {
	if r.f16 == nil {
		f11, err := r.ensureF11()
		if err != nil {
			return nil, err
		}
		cfg := experiments.Fig16Config{Seed: r.seed}
		if r.quick {
			cfg.Samples = 3000
		}
		res, err := experiments.Fig16(f11, cfg)
		if err != nil {
			return nil, err
		}
		r.f16 = res
	}
	return r.f16, nil
}

func (r *runner) ensureF18() (*experiments.Fig18Result, error) {
	if r.f18 == nil {
		cfg := experiments.Fig18Config{Seed: r.seed}
		if r.quick {
			cfg = experiments.Fig18Config{Days: 20, Relays: 2000, Seed: r.seed}
		}
		res, err := experiments.Fig18(cfg)
		if err != nil {
			return nil, err
		}
		r.f18 = res
	}
	return r.f18, nil
}

func (r *runner) run(fig string) error {
	switch fig {
	case "3":
		return r.runFig3()
	case "4":
		return r.runFig4()
	case "5":
		return r.runFig5()
	case "6":
		return r.runFig6()
	case "7":
		return r.runFig7()
	case "8":
		return r.runFig8()
	case "9":
		return r.runFig9()
	case "10":
		return r.runFig10()
	case "11":
		return r.runFig11()
	case "12":
		return r.runFig12()
	case "13":
		return r.runFig13()
	case "14":
		return r.runFig14()
	case "15":
		return r.runFig15()
	case "16":
		return r.runFig16()
	case "17":
		return r.runFig17()
	case "18":
		return r.runFig18()
	case "headlines":
		return r.runHeadlines()
	case "ablations":
		return r.runAblations()
	case "king":
		return r.runKing()
	case "defenses":
		return r.runDefenses()
	case "selection":
		return r.runSelection()
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// writeDat writes whitespace-separated rows.
func (r *runner) writeDat(name, header string, rows [][]float64) error {
	path := filepath.Join(r.out, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s\n", header)
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		fmt.Fprintln(f, strings.Join(parts, " "))
	}
	fmt.Printf("  wrote %s (%d rows)\n", path, len(rows))
	return nil
}

func cdfRows(xs []float64) [][]float64 {
	c, err := stats.NewCDF(xs)
	if err != nil {
		return nil
	}
	vals, ps := c.Points()
	rows := make([][]float64, len(vals))
	for i := range vals {
		rows[i] = []float64{vals[i], ps[i]}
	}
	return rows
}

func (r *runner) runFig3() error {
	res, err := r.ensureF3()
	if err != nil {
		return err
	}
	sp, err := res.Spearman()
	if err != nil {
		return err
	}
	fmt.Printf("Fig 3: %d pairs; within 10%%: %.1f%% (paper 91%%); err>30%%: %.1f%% (paper <2%%); spearman %.4f (paper 0.997)\n",
		len(res.Pairs), 100*res.Within(0.1), 100*(1-res.Within(0.3)), sp)
	return r.writeDat("fig3_cdf.dat", "measured/real cumulative-fraction", cdfRows(res.Ratios()))
}

func (r *runner) runFig4() error {
	res, err := r.ensureF3()
	if err != nil {
		return err
	}
	buckets := experiments.Fig4(res)
	for _, b := range buckets {
		fmt.Printf("Fig 4 [%s]: %d pairs, within 10%%: %.1f%%\n", b.Label, len(b.Ratios), 100*b.Within10)
		name := fmt.Sprintf("fig4_%s.dat", strings.NewReplacer("<", "lt", ">", "gt", "-", "_").Replace(b.Label))
		if len(b.Ratios) == 0 {
			continue
		}
		if err := r.writeDat(name, "measured/real cumulative-fraction ("+b.Label+")", cdfRows(b.Ratios)); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) runFig5() error {
	cfg := experiments.Fig5Config{Seed: r.seed}
	if r.quick {
		cfg = experiments.Fig5Config{Nodes: 16, Rounds: 6, CircuitSamples: 150, PingSamples: 40, Seed: r.seed}
	}
	res, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 5: %d hosts, abnormal fraction %.1f%% (paper ~35%%)\n",
		len(res.Hosts), 100*res.AbnormalFraction())
	rows := make([][]float64, 0, len(res.Hosts))
	for i, h := range res.Hosts {
		rows = append(rows, []float64{float64(i),
			h.ICMP.Median, h.ICMP.Q1, h.ICMP.Q3, h.ICMP.WhiskerLow, h.ICMP.WhiskerHigh,
			h.TCP.Median, h.TCP.Q1, h.TCP.Q3, h.TCP.WhiskerLow, h.TCP.WhiskerHigh,
		})
	}
	return r.writeDat("fig5_boxes.dat",
		"host icmp(med q1 q3 lo hi) tcp(med q1 q3 lo hi) — sorted by ICMP median", rows)
}

func (r *runner) runFig6() error {
	cfg := experiments.Fig6Config{Seed: r.seed}
	if r.quick {
		cfg = experiments.Fig6Config{WorldNodes: 30, Pairs: 40, Samples: 400, Seed: r.seed}
	}
	res, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	for _, s := range []string{"min", "1ms", "1pct", "5pct", "10pct"} {
		vals, err := res.Series(s)
		if err != nil {
			return err
		}
		med, _ := stats.Median(vals)
		fmt.Printf("Fig 6 [%s]: median %.0f samples\n", s, med)
		if err := r.writeDat("fig6_"+s+".dat", "samples cumulative-fraction ("+s+")", cdfRows(vals)); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) runFig7() error {
	cfg := r.fig3cfg()
	samplesA, samplesB := 200, 1000
	if r.quick {
		samplesA, samplesB = 50, 250
	}
	res, err := experiments.Fig7(cfg, samplesA, samplesB)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 7: %d samples within10 %.1f%% vs %d samples within10 %.1f%% (nearly identical per paper)\n",
		res.SamplesA, 100*res.A.Within(0.1), res.SamplesB, 100*res.B.Within(0.1))
	if err := r.writeDat(fmt.Sprintf("fig7_%d.dat", res.SamplesA), "estimated/real cumulative-fraction", cdfRows(res.A.Ratios())); err != nil {
		return err
	}
	return r.writeDat(fmt.Sprintf("fig7_%d.dat", res.SamplesB), "estimated/real cumulative-fraction", cdfRows(res.B.Ratios()))
}

func (r *runner) runFig8() error {
	cfg := experiments.Fig8Config{Seed: r.seed}
	if r.quick {
		cfg = experiments.Fig8Config{WorldNodes: 120, Pairs: 800, Samples: 60, Seed: r.seed}
	}
	res, err := experiments.Fig8(cfg)
	if err != nil {
		return err
	}
	below, explained := res.BelowLightSpeedStats()
	fmt.Printf("Fig 8: %d pairs; fit %.4f ms/km + %.1f ms (Htrae %.4f/%.1f); %d below (2/3)c, %d from geo errors\n",
		len(res.Points), res.Fit.Slope, res.Fit.Intercept,
		experiments.HtraeFit.Slope, experiments.HtraeFit.Intercept, below, explained)
	rows := make([][]float64, len(res.Points))
	for i, p := range res.Points {
		ge := 0.0
		if p.GeoError {
			ge = 1
		}
		rows[i] = []float64{p.DistanceKm, p.RTTms, ge}
	}
	return r.writeDat("fig8_scatter.dat", "distance-km rtt-ms geo-error", rows)
}

func (r *runner) runFig9() error {
	res, err := r.ensureF9()
	if err != nil {
		return err
	}
	fmt.Printf("Fig 9: %d pairs; cv<0.5 for %.1f%% (paper 96.7%%)\n",
		len(res.Pairs), 100*res.FractionBelow(0.5))
	return r.writeDat("fig9_cv.dat", "cv cumulative-fraction", cdfRows(res.CVs()))
}

func (r *runner) runFig10() error {
	res, err := r.ensureF9()
	if err != nil {
		return err
	}
	ordered := experiments.Fig10(res)
	rows := make([][]float64, len(ordered))
	for i, p := range ordered {
		rows[i] = []float64{float64(i), p.Box.Median, p.Box.Q1, p.Box.Q3, p.Box.WhiskerLow, p.Box.WhiskerHigh}
	}
	fmt.Printf("Fig 10: %d pairs sorted by median latency\n", len(ordered))
	return r.writeDat("fig10_boxes.dat", "pair median q1 q3 lo hi", rows)
}

func (r *runner) runFig11() error {
	res, err := r.ensureF11()
	if err != nil {
		return err
	}
	vals := res.Matrix.PairValues()
	med, _ := stats.Median(vals)
	fmt.Printf("Fig 11: all-pairs over %d nodes; median inter-node RTT %.1f ms\n", res.Matrix.N(), med)
	// Publish the dataset itself, as the paper did with its measured
	// matrices.
	path := filepath.Join(r.out, "allpairs.ting")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Matrix.Encode(f); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Printf("  wrote %s (all-pairs dataset)\n", path)
	return r.writeDat("fig11_cdf.dat", "rtt-ms cumulative-fraction", cdfRows(vals))
}

func (r *runner) runFig12() error {
	res, err := r.ensureF12()
	if err != nil {
		return err
	}
	names := append([]string(nil), res.Strategies...)
	sort.Strings(names)
	for _, s := range res.Strategies {
		fmt.Printf("Fig 12 [%s]: median fraction probed %.3f\n", s, res.Medians[s])
		c, err := res.CDF(s)
		if err != nil {
			return err
		}
		vals, ps := c.Points()
		rows := make([][]float64, len(vals))
		for i := range vals {
			rows[i] = []float64{vals[i], ps[i]}
		}
		if err := r.writeDat("fig12_"+s+".dat", "fraction-tested cumulative-fraction", rows); err != nil {
			return err
		}
	}
	sp, err := res.Speedup()
	if err != nil {
		return err
	}
	fmt.Printf("Fig 12: speedup %.2fx (paper: 1.5x unweighted)\n", sp)
	return nil
}

func (r *runner) runFig13() error {
	res, err := r.ensureF12()
	if err != nil {
		return err
	}
	pts := experiments.Fig13(res)
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64{p.E2EMs, p.FracRuledOut}
	}
	fmt.Printf("Fig 13: %d trials (fraction ruled out vs end-to-end RTT)\n", len(pts))
	return r.writeDat("fig13_scatter.dat", "e2e-ms fraction-ruled-out", rows)
}

func (r *runner) runFig14() error {
	res, err := r.ensureF14()
	if err != nil {
		return err
	}
	med := 0.0
	if len(res.Summary.Savings) > 0 {
		med, _ = stats.Median(res.Summary.Savings)
	}
	fmt.Printf("Fig 14: %.1f%% of pairs have a TIV (paper 69%%); median saving %.1f%% (paper 7.5%%)\n",
		100*res.Summary.FractionWithTIV(), 100*med)
	pct := make([]float64, len(res.Summary.Savings))
	for i, s := range res.Summary.Savings {
		pct[i] = 100 * s
	}
	return r.writeDat("fig14_savings.dat", "savings-% cumulative-fraction", cdfRows(pct))
}

func (r *runner) runFig15() error {
	res, err := r.ensureF14()
	if err != nil {
		return err
	}
	pts := experiments.Fig15(res)
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64{p.DirectMs, p.DetourMs}
	}
	fmt.Printf("Fig 15: %d TIVs (default-path vs detour RTT)\n", len(pts))
	return r.writeDat("fig15_scatter.dat", "direct-ms detour-ms", rows)
}

func (r *runner) runFig16() error {
	res, err := r.ensureF16()
	if err != nil {
		return err
	}
	for _, lh := range res.Lengths {
		rows := make([][]float64, 0, len(lh.Hist.Counts))
		for b, c := range lh.Hist.Counts {
			if c > 0 {
				rows = append(rows, []float64{lh.Hist.BinCenter(b) / 1000, c})
			}
		}
		fmt.Printf("Fig 16 [%d-hop]: %.3g scaled circuits, 200-300ms band holds %.3g\n",
			lh.Length, lh.Hist.Total(), lh.CircuitsWithin(200, 300))
		if err := r.writeDat(fmt.Sprintf("fig16_len%d.dat", lh.Length),
			"rtt-seconds circuits", rows); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) runFig17() error {
	res, err := r.ensureF16()
	if err != nil {
		return err
	}
	for _, lh := range res.Lengths {
		rows := make([][]float64, 0, len(lh.NodeProb))
		for b, p := range lh.NodeProb {
			if p > 0 {
				rows = append(rows, []float64{lh.Hist.BinCenter(b) / 1000, p})
			}
		}
		if err := r.writeDat(fmt.Sprintf("fig17_len%d.dat", lh.Length),
			"rtt-seconds median-node-probability", rows); err != nil {
			return err
		}
	}
	fmt.Printf("Fig 17: node-membership probability per RTT bin, lengths")
	for _, lh := range res.Lengths {
		fmt.Printf(" %d", lh.Length)
	}
	fmt.Println()
	return nil
}

func (r *runner) runFig18() error {
	res, err := r.ensureF18()
	if err != nil {
		return err
	}
	rows := make([][]float64, len(res.Points))
	for i, p := range res.Points {
		rows[i] = []float64{float64(i), float64(p.Relays), float64(p.Unique24s)}
	}
	last := res.Points[len(res.Points)-1]
	fmt.Printf("Fig 18: day %d: %d relays, %d unique /24s (paper: 5426-6044); residential %.1f%% of named (paper 61%%); %d countries (paper 77)\n",
		len(res.Points)-1, last.Relays, last.Unique24s,
		100*res.Classes.ResidentialFractionOfNamed(), res.Countries)
	return r.writeDat("fig18_history.dat", "day relays unique24s", rows)
}

func (r *runner) runHeadlines() error {
	f3, err := r.ensureF3()
	if err != nil {
		return err
	}
	f12, err := r.ensureF12()
	if err != nil {
		return err
	}
	f14, err := r.ensureF14()
	if err != nil {
		return err
	}
	f18, err := r.ensureF18()
	if err != nil {
		return err
	}
	h, err := experiments.ComputeHeadlines(f3, f12, f14, f18)
	if err != nil {
		return err
	}
	fmt.Println("Headlines:", h.String())
	return nil
}

func (r *runner) runKing() error {
	cfg := experiments.KingConfig{Seed: r.seed}
	if r.quick {
		cfg = experiments.KingConfig{Nodes: 16, Pairs: 80, Samples: 100, Seed: r.seed}
	}
	res, err := experiments.KingComparison(cfg)
	if err != nil {
		return err
	}
	km, err := res.KingMedianRatio()
	if err != nil {
		return err
	}
	fmt.Printf("King comparison: within10 ting %.1f%% vs king %.1f%%; king median ratio %.2f (skewed left, as in King's Fig 5)\n",
		100*res.TingWithin10(), 100*res.KingWithin10(), km)
	if err := r.writeDat("king_ting.dat", "estimated/real cumulative-fraction (ting)", cdfRows(res.TingRatios)); err != nil {
		return err
	}
	return r.writeDat("king_king.dat", "estimated/real cumulative-fraction (king)", cdfRows(res.KingRatios))
}

func (r *runner) runDefenses() error {
	f11, err := r.ensureF11()
	if err != nil {
		return err
	}
	cfg := experiments.DefenseConfig{Seed: r.seed}
	if r.quick {
		cfg.Trials = 150
		cfg.PaddingLevels = []float64{0, 100}
	}
	res, err := experiments.Defenses(f11, cfg)
	if err != nil {
		return err
	}
	rows := make([][]float64, 0, len(res.Padding))
	for _, p := range res.Padding {
		fmt.Printf("Defense padding [max %gms/relay]: attacker speedup %.2fx, median latency cost %.0fms\n",
			p.MaxPadMs, p.Speedup(), p.MedianE2EOverheadMs)
		rows = append(rows, []float64{p.MaxPadMs, p.Speedup(), p.MedianE2EOverheadMs})
	}
	if err := r.writeDat("defense_padding.dat", "maxpad-ms attacker-speedup latency-cost-ms", rows); err != nil {
		return err
	}
	fmt.Printf("Defense lengths: fixed 3-hop attacker probes %.1f%%; randomized 3-%d hops %.1f%% (+%.1f hops median cost)\n",
		100*res.Fixed.MedianFracRTTOrder, res.Random.MaxLen,
		100*res.Random.MedianFracRTTOrder, res.Random.MedianExtraHops)
	return nil
}

func (r *runner) runSelection() error {
	f11, err := r.ensureF11()
	if err != nil {
		return err
	}
	cfg := experiments.SelectionConfig{Seed: r.seed}
	if r.quick {
		cfg = experiments.SelectionConfig{Lengths: []int{4}, Baseline3Hop: 2000, Select: 300, Seed: r.seed}
	}
	res, err := experiments.Selection(f11, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Selection: 3-hop median budget %.0fms\n", res.BudgetMs)
	rows := make([][]float64, 0, len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %d-hop within budget: %d circuits, median %.0fms, entropy %.3f\n",
			row.Length, row.Selected, row.MedianRTT, row.Entropy)
		rows = append(rows, []float64{float64(row.Length), row.MedianRTT, row.Entropy, float64(row.Selected)})
	}
	return r.writeDat("selection.dat", "length median-rtt-ms entropy circuits", rows)
}

func (r *runner) runAblations() error {
	cfg := experiments.AblationConfig{Seed: r.seed}
	if r.quick {
		cfg = experiments.AblationConfig{Nodes: 14, Pairs: 40, Samples: 150, Seed: r.seed}
	}
	aggs, err := experiments.AblationAggregator(cfg)
	if err != nil {
		return err
	}
	for _, a := range aggs {
		fmt.Printf("Ablation aggregator [%s]: within10 %.1f%%, median |err| %.2f%%\n",
			a.Name, 100*a.Within10, a.MedianAbsErrPct)
	}
	straw, err := experiments.AblationStrawman(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation strawman: ting %.1f%%, strawman %.1f%% (biased nets %.1f%%, clean %.1f%%) within 10%%\n",
		100*straw.TingWithin10, 100*straw.StrawmanWithin10,
		100*straw.BiasedStrawmanWithin10, 100*straw.CleanStrawmanWithin10)
	counts := []int{10, 50, 100, 200, 1000}
	if r.quick {
		counts = []int{10, 100, 400}
	}
	sweep, err := experiments.AblationSamples(cfg, counts)
	if err != nil {
		return err
	}
	for _, pt := range sweep {
		fmt.Printf("Ablation samples [%d]: within10 %.1f%%, within5 %.1f%%\n",
			pt.Samples, 100*pt.Within10, 100*pt.Within5)
	}
	f11, err := r.ensureF11()
	if err != nil {
		return err
	}
	trials := 500
	if r.quick {
		trials = 150
	}
	mu, err := experiments.AblationMu(f11, trials, r.seed+77)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation mu: informed with µ median %.3f, without µ %.3f\n", mu.WithMu, mu.WithoutMu)
	return nil
}
