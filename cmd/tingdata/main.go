// Command tingdata inspects and compares the all-pairs RTT datasets that
// cmd/ting and cmd/experiments produce (the paper published its measured
// matrices; this is the companion tooling a consumer of such datasets
// needs).
//
// Usage:
//
//	tingdata stats   matrix.ting          # distribution summary
//	tingdata tivs    matrix.ting          # triangle inequality violations
//	tingdata compare old.ting new.ting    # stability between two scans
//
// Matrices from budgeted scans (ting -budget) mix measured and
// model-predicted cells. "tivs" skips violations whose direct leg is a
// prediction — they may be embedding artifacts, not real detours — unless
// -predicted is given, which lists them flagged instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ting/internal/pathsel"
	"ting/internal/stats"
	"ting/internal/ting"
)

var withPredicted = flag.Bool("predicted", false,
	"tivs: include violations whose direct leg is a predicted cell, flagged")

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingdata: ")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		log.Fatal("usage: tingdata stats|tivs|compare <matrix.ting> [matrix2.ting]")
	}
	switch args[0] {
	case "stats":
		runStats(args[1])
	case "tivs":
		runTIVs(args[1])
	case "compare":
		if len(args) != 3 {
			log.Fatal("usage: tingdata compare old.ting new.ting")
		}
		runCompare(args[1], args[2])
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func load(path string) *ting.Matrix {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := ting.DecodeMatrix(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func runStats(path string) {
	m := load(path)
	vals := m.PairValues()
	min, _ := stats.Min(vals)
	max, _ := stats.Max(vals)
	med, _ := stats.Median(vals)
	mean, _ := stats.Mean(vals)
	p10, _ := stats.Quantile(vals, 0.1)
	p90, _ := stats.Quantile(vals, 0.9)
	fmt.Printf("%s: %d relays, %d pairs\n", path, m.N(), len(vals))
	fmt.Printf("  RTT ms: min %.1f  p10 %.1f  median %.1f  mean %.1f  p90 %.1f  max %.1f\n",
		min, p10, med, mean, p90, max)
	unmeasured := 0
	for _, v := range vals {
		if v == 0 {
			unmeasured++
		}
	}
	if unmeasured > 0 {
		fmt.Printf("  WARNING: %d pairs unmeasured (zero)\n", unmeasured)
	}
	// Measured provenance is runtime-only, but predicted cells persist in
	// the document: everything nonzero and not predicted was measured.
	pc := m.ProvCounts()
	if pc.Predicted > 0 {
		measured := len(vals) - unmeasured - pc.Predicted
		fmt.Printf("  provenance: %d measured, %d predicted (budgeted scan)\n",
			measured, pc.Predicted)
	}
}

func runTIVs(path string) {
	m := load(path)
	all, err := pathsel.FindTIVs(m)
	if err != nil {
		log.Fatal(err)
	}
	// Violations resting on a predicted direct leg may be embedding
	// artifacts; keep them out of the headline numbers.
	var tivs []pathsel.TIV
	predicted := 0
	for _, t := range all {
		if t.Predicted {
			predicted++
			if !*withPredicted {
				continue
			}
		}
		tivs = append(tivs, t)
	}
	n := m.N()
	pairs := n * (n - 1) / 2
	fmt.Printf("%s: %d of %d pairs (%.1f%%) have a TIV detour\n",
		path, len(tivs), pairs, 100*float64(len(tivs))/float64(pairs))
	if predicted > 0 && !*withPredicted {
		fmt.Printf("  skipped %d violations on predicted direct legs (re-run with -predicted to list)\n",
			predicted)
	}
	if len(tivs) == 0 {
		return
	}
	savings := make([]float64, len(tivs))
	for i, t := range tivs {
		savings[i] = t.SavingsFraction()
	}
	med, _ := stats.Median(savings)
	p90, _ := stats.Quantile(savings, 0.9)
	fmt.Printf("  savings: median %.1f%%, p90 %.1f%%\n", 100*med, 100*p90)

	// Show the five biggest detour wins.
	for i := 0; i < len(tivs); i++ {
		for j := i; j > 0 && tivs[j].SavingsFraction() > tivs[j-1].SavingsFraction(); j-- {
			tivs[j], tivs[j-1] = tivs[j-1], tivs[j]
		}
	}
	if len(tivs) > 5 {
		tivs = tivs[:5]
	}
	fmt.Println("  top detours:")
	for _, t := range tivs {
		mark := ""
		if t.Predicted {
			mark = "  [predicted]"
		}
		fmt.Printf("    %s ↔ %s: %.1fms direct, %.1fms via %s (−%.1f%%)%s\n",
			m.Names()[t.S], m.Names()[t.D], t.DirectMs, t.DetourMs, m.Names()[t.R],
			100*t.SavingsFraction(), mark)
	}
}

func runCompare(oldPath, newPath string) {
	a, b := load(oldPath), load(newPath)
	shared := make(map[string]bool)
	for _, n := range a.Names() {
		shared[n] = true
	}
	var common []string
	for _, n := range b.Names() {
		if shared[n] {
			common = append(common, n)
		}
	}
	if len(common) < 2 {
		log.Fatal("matrices share fewer than two relays")
	}
	var ratios, diffs []float64
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			va, _ := a.RTT(common[i], common[j])
			vb, _ := b.RTT(common[i], common[j])
			if va <= 0 || vb <= 0 {
				continue
			}
			ratios = append(ratios, vb/va)
			d := vb - va
			if d < 0 {
				d = -d
			}
			diffs = append(diffs, d)
		}
	}
	if len(ratios) == 0 {
		log.Fatal("no measured pairs in common")
	}
	medR, _ := stats.Median(ratios)
	medD, _ := stats.Median(diffs)
	p90D, _ := stats.Quantile(diffs, 0.9)
	within := stats.FractionWithin(ratios, 0.1)
	fmt.Printf("compare %s → %s: %d shared relays, %d measured pairs\n",
		oldPath, newPath, len(common), len(ratios))
	fmt.Printf("  median new/old ratio %.3f; |Δ| median %.1fms, p90 %.1fms; %.1f%% within 10%%\n",
		medR, medD, p90D, 100*within)
	fmt.Println("  (§4.6: Ting scans stay stable for a week; large drift here means re-measure)")
}
