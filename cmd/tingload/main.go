// Command tingload is the load-proof harness for tingd: it hammers a
// running daemon's query surfaces and reports sustained lookups/sec, the
// epochs it saw churn underneath, and answer latency percentiles. Its exit
// code gates CI: -min-rate and -min-epochs turn the report into an
// assertion that the serving plane holds its throughput target *while* the
// sweeper swaps epochs.
//
// Usage:
//
//	tingload -bin 127.0.0.1:7071 -duration 5s -conns 4 -batch 512 -min-rate 100000 -min-epochs 2
//	tingload -http 127.0.0.1:7070 -duration 5s            (JSON API mode; far slower by design)
//	tingload -addr-file tingd.addr -duration 5s           (read the target from tingd's -addr-file)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ting/internal/serve"
)

var (
	binAddr   = flag.String("bin", "", "binary protocol address of a running tingd")
	httpAddr  = flag.String("http", "", "HTTP API address of a running tingd (mutually exclusive with -bin)")
	addrFile  = flag.String("addr-file", "", "read the target addresses from this tingd -addr-file (binary preferred)")
	duration  = flag.Duration("duration", 5*time.Second, "how long to sustain load")
	conns     = flag.Int("conns", 4, "concurrent connections, one goroutine each")
	batchSize = flag.Int("batch", 512, "binary mode: pair lookups per batch request")
	seedFlag  = flag.Int64("seed", 1, "which pairs get looked up")
	minRate   = flag.Float64("min-rate", 0, "fail unless sustained lookups/sec reaches this")
	minEpochs = flag.Int("min-epochs", 0, "fail unless this many distinct epochs were observed (proves lookups ran through live swaps)")
)

// workerStats is one connection's tally, merged after the run.
type workerStats struct {
	lookups   int64
	requests  int64
	errors    int64
	status5xx int64
	epochs    map[uint64]bool
	latencies []time.Duration // per-request round-trip times
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingload: ")
	flag.Parse()

	if *addrFile != "" {
		resolveAddrFile()
	}
	if (*binAddr == "") == (*httpAddr == "") {
		log.Fatal("need exactly one of -bin or -http (or -addr-file)")
	}
	if *batchSize < 1 || *batchSize > serve.MaxBatch {
		log.Fatalf("-batch %d outside [1,%d]", *batchSize, serve.MaxBatch)
	}

	var run func(id int, deadline time.Time) (*workerStats, error)
	mode := "binary"
	if *binAddr != "" {
		// The relay count comes from one scouting request; every worker then
		// draws its own random index pairs.
		probe, err := serve.DialBinary(*binAddr)
		if err != nil {
			log.Fatal(err)
		}
		info, err := probe.Epoch()
		probe.Close()
		if err != nil {
			log.Fatalf("probing %s: %v", *binAddr, err)
		}
		if info.Relays < 2 {
			log.Fatalf("server has %d relays", info.Relays)
		}
		fmt.Printf("target %s: %d relays, epoch %d\n", *binAddr, info.Relays, info.Epoch)
		run = func(id int, deadline time.Time) (*workerStats, error) {
			return runBinary(id, deadline, info.Relays)
		}
	} else {
		mode = "http"
		names := fetchNames(*httpAddr)
		fmt.Printf("target %s: %d relays\n", *httpAddr, len(names))
		run = func(id int, deadline time.Time) (*workerStats, error) {
			return runHTTP(id, deadline, names)
		}
	}

	start := time.Now()
	deadline := start.Add(*duration)
	results := make([]*workerStats, *conns)
	errs := make([]error, *conns)
	var wg sync.WaitGroup
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = run(i, deadline)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := workerStats{epochs: map[uint64]bool{}}
	var all []time.Duration
	for i, ws := range results {
		if errs[i] != nil {
			log.Fatalf("conn %d: %v", i, errs[i])
		}
		total.lookups += ws.lookups
		total.requests += ws.requests
		total.errors += ws.errors
		total.status5xx += ws.status5xx
		for e := range ws.epochs {
			total.epochs[e] = true
		}
		all = append(all, ws.latencies...)
	}
	rate := float64(total.lookups) / elapsed.Seconds()

	fmt.Printf("%s: %d lookups in %v over %d conns → %.0f lookups/sec\n",
		mode, total.lookups, elapsed.Round(time.Millisecond), *conns, rate)
	fmt.Printf("  %d requests, %d errors, %d 5xx, %d distinct epochs observed\n",
		total.requests, total.errors, total.status5xx, len(total.epochs))
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		q := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
		fmt.Printf("  request latency p50=%v p90=%v p99=%v max=%v\n",
			q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	}

	failed := false
	if total.errors > 0 || total.status5xx > 0 {
		fmt.Printf("FAIL: %d errors, %d 5xx\n", total.errors, total.status5xx)
		failed = true
	}
	if *minRate > 0 && rate < *minRate {
		fmt.Printf("FAIL: %.0f lookups/sec under the -min-rate %.0f floor\n", rate, *minRate)
		failed = true
	}
	if *minEpochs > 0 && len(total.epochs) < *minEpochs {
		fmt.Printf("FAIL: saw %d epochs, -min-epochs wants %d (is the sweeper running?)\n",
			len(total.epochs), *minEpochs)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runBinary is one connection's load loop: random index pairs, batched
// lookups, until the deadline. The reused request/latency buffers keep the
// loop allocation-free, so the harness measures the server, not itself.
func runBinary(id int, deadline time.Time, relays int) (*workerStats, error) {
	c, err := serve.DialBinary(*binAddr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(*seedFlag + int64(id)))
	pairs := make([]uint32, 2**batchSize)
	var cells []serve.BatchCell
	ws := &workerStats{epochs: map[uint64]bool{}}
	for time.Now().Before(deadline) {
		for i := range pairs {
			pairs[i] = uint32(rng.Intn(relays))
		}
		t0 := time.Now()
		epoch, out, err := c.RTTBatch(pairs, cells)
		if err != nil {
			ws.errors++
			return ws, err
		}
		ws.latencies = append(ws.latencies, time.Since(t0))
		cells = out
		ws.requests++
		ws.lookups += int64(len(out))
		ws.epochs[epoch] = true
	}
	return ws, nil
}

// runHTTP is the JSON-mode loop: single-pair GETs on a keep-alive client.
// It exists to cross-check the API under load, not to hit the binary
// protocol's rate — JSON encode/decode per lookup is the point of contrast.
func runHTTP(id int, deadline time.Time, names []string) (*workerStats, error) {
	client := &http.Client{}
	rng := rand.New(rand.NewSource(*seedFlag + int64(id)))
	ws := &workerStats{epochs: map[uint64]bool{}}
	for time.Now().Before(deadline) {
		x := names[rng.Intn(len(names))]
		y := names[rng.Intn(len(names))]
		t0 := time.Now()
		resp, err := client.Get(fmt.Sprintf("http://%s/v1/rtt?x=%s&y=%s", *httpAddr, x, y))
		if err != nil {
			ws.errors++
			return ws, err
		}
		var body struct {
			Epoch uint64 `json:"epoch"`
		}
		err = decodeJSON(resp, &body)
		ws.latencies = append(ws.latencies, time.Since(t0))
		ws.requests++
		if resp.StatusCode >= 500 {
			ws.status5xx++
			continue
		}
		if err != nil {
			ws.errors++
			return ws, err
		}
		if resp.StatusCode == http.StatusOK {
			ws.lookups++
			ws.epochs[body.Epoch] = true
		}
	}
	return ws, nil
}

func fetchNames(addr string) []string {
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/names", addr))
	if err != nil {
		log.Fatal(err)
	}
	var body struct {
		Names []string `json:"names"`
	}
	if err := decodeJSON(resp, &body); err != nil {
		log.Fatalf("fetching names: %v", err)
	}
	if len(body.Names) < 2 {
		log.Fatalf("server lists %d relays", len(body.Names))
	}
	return body.Names
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// resolveAddrFile fills -bin / -http from a tingd -addr-file, preferring
// the binary surface. Explicit -bin/-http flags win over the file.
func resolveAddrFile() {
	if *binAddr != "" || *httpAddr != "" {
		return
	}
	data, err := os.ReadFile(*addrFile)
	if err != nil {
		log.Fatal(err)
	}
	addrs := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			addrs[k] = v
		}
	}
	switch {
	case addrs["bin"] != "":
		*binAddr = addrs["bin"]
	case addrs["http"] != "":
		*httpAddr = addrs["http"]
	default:
		log.Fatalf("%s lists no http= or bin= surface", *addrFile)
	}
}
