// Command tingcamp runs a distributed sharded campaign over the synthetic
// Internet: one coordinator process partitions the pair space into
// tile-keyed shard leases, any number of worker processes measure them
// (crash-tolerantly, resuming their own checkpoints), and the coordinator
// merges the submissions into a matrix bytewise equal to a single-process
// scan of the same world.
//
// Usage:
//
//	tingcamp -coordinator -model 20 -seed 97 -shards 16 -listen 127.0.0.1:0 \
//	         -addr-file camp.addr -out merged.matrix -state state.json
//	tingcamp -worker -name w1 -addr $(cut -d= -f2 camp.addr) -model 20 -seed 97 \
//	         -checkpoint w1.ckpt
//	tingcamp -single -model 20 -seed 97 -out single.matrix
//
// The coordinator exits once every shard is complete (status 0, merged
// matrix written) or with status 1 if any pair was lost. Workers exit when
// the coordinator reports the campaign done. All modes use the exact
// (floor) measurer, so reruns and redistributions reproduce the matrix
// byte for byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ting/internal/campaign"
	"ting/internal/cliflags"
	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/telemetry"
	"ting/internal/ting"
)

var (
	coordMode  = flag.Bool("coordinator", false, "run the campaign coordinator")
	workerMode = flag.Bool("worker", false, "run a campaign worker")
	singleMode = flag.Bool("single", false, "run the whole campaign in-process (the determinism reference)")

	modelFlag = flag.Int("model", 20, "number of relays in the synthetic world")
	seedFlag  = flag.Int64("seed", 42, "topology seed (coordinator and workers must agree)")
	samples   = flag.Int("samples", 3, "samples per circuit per measurement")

	// Coordinator.
	listenAddr = flag.String("listen", "127.0.0.1:0", "coordinator: listen address for the campaign/directory transport")
	addrFile   = flag.String("addr-file", "", "coordinator: write the bound address (camp=… line) to this file atomically")
	shardsFlag = flag.Int("shards", 16, "coordinator: target shard count")
	leaseTTL   = flag.Duration("lease-ttl", 2*time.Second, "coordinator: lease time-to-live without a heartbeat")
	outFlag    = flag.String("out", "", "coordinator/single: write the final matrix here")
	stateFlag  = flag.String("state", "", "coordinator: write campaign status snapshots (JSON) here")

	// Worker.
	nameFlag   = flag.String("name", "", "worker: name (required)")
	addrFlag   = flag.String("addr", "", "worker: coordinator address (required)")
	ckptFlag   = flag.String("checkpoint", "", "worker: durable campaign log path (restart with the same path to resume)")
	scanWk     = flag.Int("scan-workers", 2, "worker/single: scanner parallelism")
	dallyFlag  = flag.Duration("dally", 0, "worker: pause between leases (soak hook)")
	delayFlag  = flag.Duration("pair-delay", 0, "worker: sleep this long per circuit series (soak hook: stretches lease hold time without changing any value)")
	hbFlag     = flag.Duration("heartbeat", 0, "worker: lease renewal cadence (default TTL/3)")
	pollFlag   = flag.Duration("poll", 200*time.Millisecond, "worker: wait when no shard is free")
	debugAddrF = cliflags.DebugAddr(flag.CommandLine)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingcamp: ")
	flag.Parse()

	modes := 0
	for _, m := range []bool{*coordMode, *workerMode, *singleMode} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("pick exactly one of -coordinator, -worker, -single")
	}

	reg, _, shutdownTelemetry, err := cliflags.BootTelemetry(*debugAddrF)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdownTelemetry()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	world, err := experiments.NewTestbedWorld(*modelFlag, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *coordMode:
		runCoordinator(ctx, world, reg)
	case *workerMode:
		runWorker(ctx, world)
	default:
		runSingle(ctx, world)
	}
}

func runCoordinator(ctx context.Context, world *experiments.World, reg *telemetry.Registry) {
	shards := campaign.Partition(len(world.Names), *shardsFlag)
	coord, err := campaign.NewCoordinator(world.Names, shards, *leaseTTL, reg)
	if err != nil {
		log.Fatal(err)
	}
	ds := directory.NewServer(directory.NewRegistry())
	campaign.NewServer(coord).Register(ds)
	ln, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := ds.Serve(ln); err != nil && ctx.Err() == nil {
			select {
			case <-coord.Done():
				// Listener closed during shutdown: not an error.
			default:
				log.Fatalf("serve: %v", err)
			}
		}
	}()
	defer ds.Close()
	fmt.Printf("coordinator: %s (%d relays, %d shards, lease TTL %s)\n",
		ln.Addr(), len(world.Names), len(shards), *leaseTTL)
	if *addrFile != "" {
		writeAddrFile(*addrFile, ln.Addr().String())
	}

	writeState := func() {
		if *stateFlag == "" {
			return
		}
		b, err := json.MarshalIndent(coord.Snapshot(), "", "  ")
		if err != nil {
			log.Printf("state: %v", err)
			return
		}
		writeFileAtomic(*stateFlag, append(b, '\n'))
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
wait:
	for {
		select {
		case <-ctx.Done():
			writeState()
			log.Fatal("interrupted with shards outstanding")
		case <-tick.C:
			writeState()
		case <-coord.Done():
			break wait
		}
	}
	writeState()

	st := coord.Snapshot()
	fmt.Printf("campaign done: %d shards, %d lease reassignments, %d lost pairs\n",
		st.Total, st.Reassigned, st.LostPairs)
	m, err := coord.Merged()
	if err != nil {
		log.Fatal(err)
	}
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Encode(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged matrix: %s (%d relays)\n", *outFlag, m.N())
	}
	if st.LostPairs > 0 {
		os.Exit(1)
	}
}

func runWorker(ctx context.Context, world *experiments.World) {
	if *nameFlag == "" || *addrFlag == "" {
		log.Fatal("-worker needs -name and -addr")
	}
	var (
		cp  ting.Checkpoint
		fcp *ting.FileCheckpoint
	)
	if *ckptFlag != "" {
		var err error
		fcp, err = ting.OpenFileCheckpoint(*ckptFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer fcp.Close()
		cp = fcp
	}
	sc := &ting.Scanner{
		NewMeasurer: func(int) (*ting.Measurer, error) {
			if *delayFlag <= 0 {
				return world.ExactMeasurer(*samples)
			}
			p := world.Prober(0)
			p.Exact = true
			return ting.NewMeasurer(ting.Config{
				Prober:  &slowProber{inner: p, delay: *delayFlag},
				W:       world.W,
				Z:       world.Z,
				Samples: *samples,
			})
		},
		Workers:    *scanWk,
		Checkpoint: cp,
	}
	w := &campaign.Worker{
		Name:           *nameFlag,
		Addr:           *addrFlag,
		Scanner:        sc,
		Checkpoint:     cp,
		HeartbeatEvery: *hbFlag,
		Poll:           *pollFlag,
		Dally:          *dallyFlag,
		Log:            log.Default(),
	}
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

func runSingle(ctx context.Context, world *experiments.World) {
	sc := &ting.Scanner{
		NewMeasurer: func(int) (*ting.Measurer, error) { return world.ExactMeasurer(*samples) },
		Workers:     *scanWk,
	}
	m, failures, err := sc.Scan(ctx, world.Names)
	if err != nil {
		log.Fatal(err)
	}
	if len(failures) > 0 {
		log.Fatalf("%d pairs failed", len(failures))
	}
	if *outFlag == "" {
		log.Fatal("-single needs -out")
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Encode(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-process matrix: %s (%d relays)\n", *outFlag, m.N())
}

// slowProber stretches every circuit series by a fixed delay while
// delegating the samples to the exact prober — lease hold times grow, the
// measured values do not, so soak kills land mid-lease without perturbing
// the bytewise-equality gate.
type slowProber struct {
	inner ting.CircuitProber
	delay time.Duration
}

func (p *slowProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(p.delay):
	}
	return p.inner.SampleCircuit(ctx, path, n)
}

// writeAddrFile publishes the bound address atomically (write + rename),
// so a watcher polling for the file never reads a half-written one.
func writeAddrFile(path, addr string) {
	writeFileAtomic(path, []byte("camp="+addr+"\n"))
}

func writeFileAtomic(path string, b []byte) {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Fatal(err)
	}
}
