// Command tingcamp runs a distributed sharded campaign over the synthetic
// Internet: one coordinator process partitions the pair space into
// tile-keyed shard leases, any number of worker processes measure them
// (crash-tolerantly, resuming their own checkpoints), and the coordinator
// merges the submissions into a matrix bytewise equal to a single-process
// scan of the same world.
//
// Usage:
//
//	tingcamp -coordinator -model 20 -seed 97 -shards 16 -listen 127.0.0.1:0 \
//	         -addr-file camp.addr -journal camp.journal \
//	         -out merged.matrix -state state.json
//	tingcamp -worker -name w1 -addr $(cut -d= -f2 camp.addr) -model 20 -seed 97 \
//	         -checkpoint w1.ckpt -unreachable-grace 2m
//	tingcamp -single -model 20 -seed 97 -out single.matrix
//
// With -journal the coordinator is durable: every grant and submission is
// written ahead to an append-only journal, and restarting tingcamp with
// the same -journal path resumes the campaign in place — done shards stay
// done, the fencing-epoch counter resumes strictly above every epoch ever
// granted, and workers (which ride out the outage with jittered
// reconnection, up to -unreachable-grace) pick up where they left off.
//
// Exit codes: 0 — campaign complete, merged matrix written; 1 — campaign
// complete but pairs were lost; 2 — internal error; 3 — interrupted with
// shards outstanding (state snapshot and journal are flushed; restart
// with the same -journal to resume). Workers exit 0 when the coordinator
// reports the campaign done. All modes use the exact (floor) measurer, so
// reruns and redistributions reproduce the matrix byte for byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ting/internal/campaign"
	"ting/internal/cliflags"
	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/telemetry"
	"ting/internal/ting"
)

var (
	coordMode  = flag.Bool("coordinator", false, "run the campaign coordinator")
	workerMode = flag.Bool("worker", false, "run a campaign worker")
	singleMode = flag.Bool("single", false, "run the whole campaign in-process (the determinism reference)")

	modelFlag = flag.Int("model", 20, "number of relays in the synthetic world")
	seedFlag  = flag.Int64("seed", 42, "topology seed (coordinator and workers must agree)")
	samples   = flag.Int("samples", 3, "samples per circuit per measurement")

	// Coordinator.
	listenAddr  = flag.String("listen", "127.0.0.1:0", "coordinator: listen address for the campaign/directory transport")
	addrFile    = flag.String("addr-file", "", "coordinator: write the bound address (camp=… line) to this file atomically")
	shardsFlag  = flag.Int("shards", 16, "coordinator: target shard count")
	leaseTTL    = flag.Duration("lease-ttl", 2*time.Second, "coordinator: lease time-to-live without a heartbeat")
	outFlag     = flag.String("out", "", "coordinator/single: write the final matrix here")
	stateFlag   = flag.String("state", "", "coordinator: write campaign status snapshots (JSON) here")
	journalFlag = flag.String("journal", "", "coordinator: write-ahead journal path; restart with the same path to recover the campaign in place")
	compactEvy  = flag.Duration("journal-compact-every", 10*time.Second, "coordinator: compact the journal on this cadence (0 disables)")

	// Worker.
	nameFlag   = flag.String("name", "", "worker: name (required)")
	addrFlag   = flag.String("addr", "", "worker: coordinator address (required)")
	ckptFlag   = flag.String("checkpoint", "", "worker: durable campaign log path (restart with the same path to resume)")
	scanWk     = flag.Int("scan-workers", 2, "worker/single: scanner parallelism")
	dallyFlag  = flag.Duration("dally", 0, "worker: pause between leases (soak hook)")
	delayFlag  = flag.Duration("pair-delay", 0, "worker: sleep this long per circuit series (soak hook: stretches lease hold time without changing any value)")
	hbFlag     = flag.Duration("heartbeat", 0, "worker: lease renewal cadence (default TTL/3)")
	pollFlag   = flag.Duration("poll", 200*time.Millisecond, "worker: wait when no shard is free")
	graceFlag  = flag.Duration("unreachable-grace", campaign.DefaultUnreachableGrace, "worker: give up after the coordinator has been unreachable this long")
	debugAddrF = cliflags.DebugAddr(flag.CommandLine)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingcamp: ")
	flag.Parse()

	modes := 0
	for _, m := range []bool{*coordMode, *workerMode, *singleMode} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("pick exactly one of -coordinator, -worker, -single")
	}

	reg, _, shutdownTelemetry, err := cliflags.BootTelemetry(*debugAddrF)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)

	world, err := experiments.NewTestbedWorld(*modelFlag, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}

	// The run* functions return an exit code instead of log.Fatal-ing so
	// deferred cleanup — journal sync/close, final state snapshot, the
	// directory listener — always runs, even on an interrupt.
	var code int
	switch {
	case *coordMode:
		code = runCoordinator(ctx, world, reg)
	case *workerMode:
		code = runWorker(ctx, world)
	default:
		code = runSingle(ctx, world)
	}
	stop()
	shutdownTelemetry()
	os.Exit(code)
}

// buildCoordinator creates or recovers the campaign coordinator. With
// -journal pointing at an existing non-empty journal, the campaign is
// recovered in place; the journal's own header (names, shards, TTL) wins
// over the command-line geometry, which is cross-checked against the
// seeded world so a restart with a different -model/-seed fails loudly.
func buildCoordinator(world *experiments.World, reg *telemetry.Registry) (*campaign.Coordinator, error) {
	shards := campaign.Partition(len(world.Names), *shardsFlag)
	if *journalFlag == "" {
		return campaign.NewCoordinator(world.Names, shards, *leaseTTL, reg)
	}
	if fi, err := os.Stat(*journalFlag); err == nil && fi.Size() > 0 {
		coord, err := campaign.RecoverCoordinator(*journalFlag, reg)
		if err != nil {
			return nil, err
		}
		got := coord.Names()
		if len(got) != len(world.Names) {
			return nil, fmt.Errorf("journal %s holds a %d-relay campaign, world has %d (wrong -model/-seed?)",
				*journalFlag, len(got), len(world.Names))
		}
		for i, n := range got {
			if n != world.Names[i] {
				return nil, fmt.Errorf("journal %s relay %d is %q, world says %q (wrong -model/-seed?)",
					*journalFlag, i, n, world.Names[i])
			}
		}
		st := coord.Snapshot()
		log.Printf("recovered from journal %s: %d/%d shards done, %d leased, epoch watermark %d",
			*journalFlag, st.Done, st.Total, st.Leased, st.EpochWatermark)
		return coord, nil
	}
	return campaign.NewJournaledCoordinator(world.Names, shards, *leaseTTL, *journalFlag, reg)
}

func runCoordinator(ctx context.Context, world *experiments.World, reg *telemetry.Registry) int {
	coord, err := buildCoordinator(world, reg)
	if err != nil {
		log.Print(err)
		return 2
	}
	if j := coord.Journal(); j != nil {
		defer func() {
			if err := j.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		}()
	}
	ds := directory.NewServer(directory.NewRegistry())
	campaign.NewServer(coord).Register(ds)
	ln, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		log.Print(err)
		return 2
	}
	serveErr := make(chan error, 1)
	go func() {
		if err := ds.Serve(ln); err != nil {
			serveErr <- err
		}
	}()
	defer ds.Close()
	st := coord.Snapshot()
	fmt.Printf("coordinator: %s (%d relays, %d shards, %d already done, lease TTL %s)\n",
		ln.Addr(), st.Relays, st.Total, st.Done, coord.TTL)
	if *addrFile != "" {
		writeAddrFile(*addrFile, ln.Addr().String())
	}

	writeState := func() {
		if *stateFlag == "" {
			return
		}
		b, err := json.MarshalIndent(coord.Snapshot(), "", "  ")
		if err != nil {
			log.Printf("state: %v", err)
			return
		}
		writeFileAtomic(*stateFlag, append(b, '\n'))
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	lastCompact := time.Now()
wait:
	for {
		select {
		case <-ctx.Done():
			// Orderly shutdown with shards outstanding: flush a final state
			// snapshot, let the deferred journal close sync the log, and
			// exit with a distinct code so wrappers can tell "interrupted,
			// resumable" from "failed".
			writeState()
			log.Printf("interrupted with shards outstanding; restart with -journal %s to resume", *journalFlag)
			return 3
		case err := <-serveErr:
			if ctx.Err() != nil {
				writeState()
				log.Printf("interrupted with shards outstanding; restart with -journal %s to resume", *journalFlag)
				return 3
			}
			writeState()
			log.Printf("serve: %v", err)
			return 2
		case <-tick.C:
			writeState()
			if *journalFlag != "" && *compactEvy > 0 && time.Since(lastCompact) >= *compactEvy {
				if err := coord.CompactJournal(); err != nil {
					log.Printf("journal compact: %v", err)
				}
				lastCompact = time.Now()
			}
		case <-coord.Done():
			break wait
		}
	}
	writeState()

	st = coord.Snapshot()
	fmt.Printf("campaign done: %d shards, %d lease reassignments, %d recoveries, %d lost pairs\n",
		st.Total, st.Reassigned, st.Recoveries, st.LostPairs)
	m, err := coord.Merged()
	if err != nil {
		log.Print(err)
		return 2
	}
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			log.Print(err)
			return 2
		}
		if err := m.Encode(f); err != nil {
			log.Print(err)
			return 2
		}
		if err := f.Close(); err != nil {
			log.Print(err)
			return 2
		}
		fmt.Printf("merged matrix: %s (%d relays)\n", *outFlag, m.N())
	}
	if st.LostPairs > 0 {
		return 1
	}
	return 0
}

func runWorker(ctx context.Context, world *experiments.World) int {
	if *nameFlag == "" || *addrFlag == "" {
		log.Print("-worker needs -name and -addr")
		return 2
	}
	var (
		cp  ting.Checkpoint
		fcp *ting.FileCheckpoint
	)
	if *ckptFlag != "" {
		var err error
		fcp, err = ting.OpenFileCheckpoint(*ckptFlag)
		if err != nil {
			log.Print(err)
			return 2
		}
		defer fcp.Close()
		cp = fcp
	}
	sc := &ting.Scanner{
		NewMeasurer: func(int) (*ting.Measurer, error) {
			if *delayFlag <= 0 {
				return world.ExactMeasurer(*samples)
			}
			p := world.Prober(0)
			p.Exact = true
			return ting.NewMeasurer(ting.Config{
				Prober:  &slowProber{inner: p, delay: *delayFlag},
				W:       world.W,
				Z:       world.Z,
				Samples: *samples,
			})
		},
		Workers:    *scanWk,
		Checkpoint: cp,
	}
	w := &campaign.Worker{
		Name:             *nameFlag,
		Addr:             *addrFlag,
		Scanner:          sc,
		Checkpoint:       cp,
		HeartbeatEvery:   *hbFlag,
		Poll:             *pollFlag,
		UnreachableGrace: *graceFlag,
		Dally:            *dallyFlag,
		Log:              log.Default(),
	}
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		log.Print(err)
		return 2
	}
	return 0
}

func runSingle(ctx context.Context, world *experiments.World) int {
	sc := &ting.Scanner{
		NewMeasurer: func(int) (*ting.Measurer, error) { return world.ExactMeasurer(*samples) },
		Workers:     *scanWk,
	}
	m, failures, err := sc.Scan(ctx, world.Names)
	if err != nil {
		log.Print(err)
		return 2
	}
	if len(failures) > 0 {
		log.Printf("%d pairs failed", len(failures))
		return 2
	}
	if *outFlag == "" {
		log.Print("-single needs -out")
		return 2
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		log.Print(err)
		return 2
	}
	if err := m.Encode(f); err != nil {
		log.Print(err)
		return 2
	}
	if err := f.Close(); err != nil {
		log.Print(err)
		return 2
	}
	fmt.Printf("single-process matrix: %s (%d relays)\n", *outFlag, m.N())
	return 0
}

// slowProber stretches every circuit series by a fixed delay while
// delegating the samples to the exact prober — lease hold times grow, the
// measured values do not, so soak kills land mid-lease without perturbing
// the bytewise-equality gate.
type slowProber struct {
	inner ting.CircuitProber
	delay time.Duration
}

func (p *slowProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(p.delay):
	}
	return p.inner.SampleCircuit(ctx, path, n)
}

// writeAddrFile publishes the bound address atomically (write + rename),
// so a watcher polling for the file never reads a half-written one.
func writeAddrFile(path, addr string) {
	writeFileAtomic(path, []byte("camp="+addr+"\n"))
}

func writeFileAtomic(path string, b []byte) {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Fatal(err)
	}
}
