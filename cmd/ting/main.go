// Command ting measures round-trip times between relays of a running
// mintor network (see cmd/tingnet) through its control port — the
// deployment mode of the paper, where an unmodified Tor client is driven
// by a controller.
//
// Usage:
//
//	ting -control 127.0.0.1:9051 -data 127.0.0.1:9052 -pair relay000,relay003
//	ting -control 127.0.0.1:9051 -data 127.0.0.1:9052 -all -out matrix.ting
//	ting -plan -relays 6600 -samples 200 -parallel 8   (no network needed)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ting/internal/cliflags"
	"ting/internal/control"
	"ting/internal/directory"
	"ting/internal/telemetry"
	"ting/internal/ting"
	"ting/internal/tornet"
)

var (
	controlAddr = flag.String("control", "127.0.0.1:9051", "control port of the onion proxy")
	dataAddr    = flag.String("data", "127.0.0.1:9052", "data port of the onion proxy")
	password    = flag.String("password", "", "control-port password")
	wFlag       = flag.String("w", tornet.WName, "nickname of local relay w")
	zFlag       = flag.String("z", tornet.ZName, "nickname of local relay z")
	target      = flag.String("target", tornet.EchoTarget, "echo destination name")
	samples     = flag.Int("samples", 50, "samples per circuit")
	scaleFlag   = flag.Float64("scale", 1.0, "the network's time scale, to convert wall-clock to virtual ms")
	pairFlag    = flag.String("pair", "", "comma-separated relay pair to measure")
	allFlag     = flag.Bool("all", false, "measure all pairs from the consensus")
	budgetFlag  = flag.Int("budget", 0, "with -all: measure at most this many pairs and complete the rest from a Vivaldi coordinate embedding (active learning picks the pairs; completed cells carry provenance 'predicted' plus a confidence)")
	outFlag     = flag.String("out", "", "write the all-pairs matrix to this file")

	retryFlag    = flag.Int("retry", 2, "all-pairs: extra attempts per failed pair")
	backoffFlag  = flag.Duration("backoff", time.Second, "all-pairs: base retry backoff (doubled per attempt, jittered)")
	pairTimeout  = flag.Duration("pair-timeout", 0, "all-pairs: per-attempt deadline (0 = none)")
	adaptiveFlag = flag.Bool("adaptive-deadline", false, "all-pairs: bound each attempt by an RTT-derived per-pair deadline (EWMA + 4×deviation, clamped to [-min-pair-timeout, -pair-timeout]) instead of the fixed -pair-timeout; a strangled slow pair retries with the full timeout")
	minPairFlag  = flag.Duration("min-pair-timeout", 100*time.Millisecond, "all-pairs: floor of the adaptive deadline, so fast pairs cannot strangle a legitimately slow one")
	halfCache    = flag.Bool("half-cache", true, "all-pairs: memoize half-circuit minima (§4.6) so each C_x series is measured once per scan; false re-measures C_x and C_y for every pair")

	dirFlag        = cliflags.Dir(flag.CommandLine, "all-pairs: directory server address; the consensus is fetched there and polled for churn during the scan, so relays that join, drain, or rotate keys mid-campaign are reconciled live")
	checkpointFlag = flag.String("checkpoint", "", "all-pairs: append finished pairs to this crash-safe log")
	resumeFlag     = flag.Bool("resume", false, "all-pairs: replay -checkpoint and measure only unfinished pairs (relay set comes from the log)")
	breakerFlag    = flag.Int("breaker", 3, "all-pairs: consecutive failures before a relay's circuit breaker opens (0 disables the scoreboard)")
	breakerCool    = flag.Duration("breaker-cooldown", 30*time.Second, "all-pairs: quarantine before an open breaker half-opens for a probe")

	debugAddr = cliflags.DebugAddr(flag.CommandLine)

	planFlag     = flag.Bool("plan", false, "project campaign cost instead of measuring")
	planRelays   = flag.Int("relays", 0, "plan: relay population (all pairs)")
	planPairs    = flag.Int("pairs", 0, "plan: explicit pair count")
	planParallel = flag.Int("parallel", 1, "plan: concurrent measurements")
	planRTT      = flag.Duration("rtt", 300*time.Millisecond, "plan: mean circuit RTT")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ting: ")
	flag.Parse()

	if *planFlag {
		plan, err := ting.PlanCampaign(ting.CampaignConfig{
			Relays:   *planRelays,
			Pairs:    *planPairs,
			Samples:  *samples,
			MeanRTT:  *planRTT,
			Parallel: *planParallel,
			Budget:   *budgetFlag,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("campaign: %d pairs, %v per pair, %v total at parallelism %d\n",
			plan.Pairs, plan.PerPair.Round(time.Second), plan.Total.Round(time.Minute), *planParallel)
		fmt.Println("anchors (§4.4): ~2.5 min/pair at 200 samples; <15 s at the 5 percent error point (~15 samples)")
		return
	}

	if *resumeFlag && *checkpointFlag == "" {
		log.Fatal("-resume needs -checkpoint pointing at the interrupted campaign's log")
	}

	conn, err := control.Dial(*controlAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Authenticate(*password); err != nil {
		log.Fatal(err)
	}

	// Telemetry is off (nil registry, no-op metrics) unless -debug-addr
	// asks for the debug surface.
	reg, _, shutdownTelemetry, err := cliflags.BootTelemetry(*debugAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdownTelemetry()
	obs := ting.NewTelemetryObserver(reg)

	newMeasurer := func() (*ting.Measurer, error) {
		return ting.NewMeasurer(ting.Config{
			Prober: &ting.ControlProber{
				Conn:     conn,
				DataAddr: *dataAddr,
				Target:   *target,
				ToMs: func(d time.Duration) float64 {
					return float64(d) / float64(time.Millisecond) / *scaleFlag
				},
			},
			W:        *wFlag,
			Z:        *zFlag,
			Samples:  *samples,
			Observer: obs,
		})
	}

	switch {
	case *pairFlag != "":
		x, y, ok := splitPair(*pairFlag)
		if !ok {
			log.Fatalf("bad -pair %q, want x,y", *pairFlag)
		}
		m, err := newMeasurer()
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.MeasurePair(context.Background(), x, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("R(%s, %s) = %.2f ms\n", x, y, res.RTT)
		fmt.Printf("  circuits: C_xy min %.2f ms, C_x min %.2f ms, C_y min %.2f ms\n",
			res.MinFull, res.MinX, res.MinY)
		fmt.Printf("  %d samples/circuit in %v\n", res.SamplesPerCircuit, res.Elapsed)
		printSummary(reg)

	case *allFlag || *resumeFlag:
		// The scoreboard quarantines relays that fail repeatedly so the
		// campaign stops burning retries on them (-breaker 0 turns it off).
		var health *ting.Health
		if *breakerFlag > 0 {
			health = ting.NewHealth(ting.HealthConfig{
				FailureThreshold: *breakerFlag,
				Cooldown:         *breakerCool,
				Observer:         obs,
			})
		}
		// Every finished pair is appended to the crash-safe log before it
		// counts as done, so a killed campaign resumes where it stopped.
		var cp ting.Checkpoint
		if *checkpointFlag != "" {
			fc, err := ting.OpenFileCheckpoint(*checkpointFlag)
			if err != nil {
				log.Fatal(err)
			}
			defer fc.Close()
			cp = fc
		}
		// The scan reconciles against the consensus as fetched now: pairs
		// whose relays are gone are tombstoned instead of burning retries,
		// and a resumed campaign whose relays vanished while it was down
		// never re-measures ghosts. With -dir the consensus is a live
		// mirror of the directory server, so churn during the scan is
		// reconciled as it happens; the control-port snapshot only covers
		// churn that predates the scan.
		var dir *directory.Registry
		var err error
		if *dirFlag != "" {
			dir, err = directory.Fetch(*dirFlag)
		} else {
			dir, err = conn.Consensus()
		}
		if err != nil {
			log.Fatal(err)
		}
		// Tally churn reconciliations for the end-of-scan summary, on top
		// of whatever telemetry is already watching.
		var churnMu sync.Mutex
		churnCount := map[ting.ChurnKind]int{}
		tombstonedPairs := 0
		var epochLo, epochHi uint64
		innerChurn := obs.Churn
		obs.Churn = func(ev ting.ChurnEvent) {
			if innerChurn != nil {
				innerChurn(ev)
			}
			churnMu.Lock()
			churnCount[ev.Kind]++
			tombstonedPairs += ev.Tombstoned
			if epochLo == 0 || ev.Epoch < epochLo {
				epochLo = ev.Epoch
			}
			if ev.Epoch > epochHi {
				epochHi = ev.Epoch
			}
			churnMu.Unlock()
		}
		// Ctrl-C cancels the scan cooperatively: in-flight pairs finish,
		// the rest of the campaign is abandoned promptly.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *dirFlag != "" {
			go directory.Mirror(ctx, *dirFlag, dir, time.Second)
		}
		sc := &ting.Scanner{
			// The control connection serializes circuit work, so scan with
			// one worker; parallel scanning needs parallel control
			// sessions.
			NewMeasurer: func(worker int) (*ting.Measurer, error) { return newMeasurer() },
			Workers:     1,
			// §4.6: measurements stay fresh for a week, so within one
			// campaign a pair never needs re-measuring (ttl ≤ 0 = never
			// expires).
			Cache: ting.NewCache(0),
			Progress: func(done, total int) {
				fmt.Printf("\r  %d/%d", done, total)
			},
			// Live relays churn (§4.5); keep scanning past dead ones, but
			// give each failed pair a few backed-off retries first.
			SkipFailures: true,
			Retry:        *retryFlag,
			Backoff:      *backoffFlag,
			PairTimeout:  *pairTimeout,
			// Adaptive deadlines cut the tail cost of wedged pairs from
			// -pair-timeout to roughly -min-pair-timeout each.
			AdaptiveDeadline: *adaptiveFlag,
			MinPairTimeout:   *minPairFlag,
			// The consensus snapshot drives churn reconciliation: relays
			// that left are tombstoned, not retried.
			Directory: dir,
			// Half-circuit memoization (§3.3/§4.6): min R_Cx depends only on
			// x, so the scan samples pairs+N circuit series instead of
			// 3·pairs. -half-cache=false restores the literal per-pair
			// procedure of §4.2.
			DisableHalfCache: !*halfCache,
			Observer:         obs,
			Checkpoint:       cp,
			Health:           health,
		}
		var matrix *ting.Matrix
		var failures []ting.PairError
		var scanErr error
		if *resumeFlag {
			// The relay set comes from the log's campaign header; pairs
			// already on disk are seeded, only the rest are measured.
			fmt.Printf("resuming campaign from %s…\n", *checkpointFlag)
			matrix, failures, scanErr = sc.Resume(ctx, cp)
		} else {
			names := make([]string, 0, dir.Len())
			for _, d := range dir.Consensus() {
				names = append(names, d.Nickname)
			}
			allPairs := len(names) * (len(names) - 1) / 2
			if *budgetFlag > 0 && *budgetFlag < allPairs {
				fmt.Printf("measuring %d of %d pairs of %d relays (embedding completes the rest)…\n",
					*budgetFlag, allPairs, len(names))
				matrix, failures, scanErr = sc.ScanBudget(ctx, names, *budgetFlag)
			} else {
				fmt.Printf("measuring all %d pairs of %d relays…\n", allPairs, len(names))
				matrix, failures, scanErr = sc.Scan(ctx, names)
			}
		}
		fmt.Println()
		for _, f := range failures {
			if errors.Is(f.Err, ting.ErrQuarantined) {
				fmt.Printf("  quarantined: %s-%s: %v\n", f.X, f.Y, f.Err)
				continue
			}
			fmt.Printf("  failed after %d attempts: %s-%s: %v\n", f.Attempts, f.X, f.Y, f.Err)
		}
		// Even an interrupted scan yields a usable partial matrix; per-cell
		// provenance says how much was measured now vs. replayed vs. lost.
		if matrix != nil {
			pc := matrix.ProvCounts()
			fmt.Printf("pairs: %d fresh, %d resumed, %d removed, %d predicted, %d missing\n",
				pc.Fresh, pc.Resumed, pc.Removed, pc.Predicted, pc.Missing)
			if pc.Predicted > 0 {
				// Measured-vs-predicted summary for budgeted campaigns: how
				// much of the matrix is real, and how confident the model is
				// about the rest.
				names := matrix.Names()
				var confSum float64
				for i := 0; i < len(names); i++ {
					for j := i + 1; j < len(names); j++ {
						if matrix.ProvAt(i, j) == ting.ProvPredicted {
							confSum += matrix.ConfAt(i, j)
						}
					}
				}
				total := pc.Measured() + pc.Predicted
				fmt.Printf("budget: %d/%d pairs measured (%.1f%%), %d predicted at mean confidence %.2f\n",
					pc.Measured(), total, 100*float64(pc.Measured())/float64(total),
					pc.Predicted, confSum/float64(pc.Predicted))
			}
			if *outFlag != "" {
				f, err := os.Create(*outFlag)
				if err != nil {
					log.Fatal(err)
				}
				if err := matrix.Encode(f); err != nil {
					log.Fatal(err)
				}
				f.Close()
				fmt.Printf("wrote %s\n", *outFlag)
			}
			fmt.Printf("mean inter-relay RTT: %.1f ms\n", matrix.Mean())
		}
		churnMu.Lock()
		if churnCount[ting.ChurnJoined]+churnCount[ting.ChurnRemoved]+churnCount[ting.ChurnRotated] > 0 {
			fmt.Printf("churn: %d joined, %d removed, %d rotated; %d pairs tombstoned (consensus epochs %d..%d)\n",
				churnCount[ting.ChurnJoined], churnCount[ting.ChurnRemoved], churnCount[ting.ChurnRotated],
				tombstonedPairs, epochLo, epochHi)
		}
		churnMu.Unlock()
		printHealth(health)
		printSummary(reg)
		if scanErr != nil {
			if *checkpointFlag != "" {
				fmt.Printf("scan interrupted; rerun with -resume -checkpoint %s to continue\n", *checkpointFlag)
			}
			log.Fatal(scanErr)
		}

	default:
		log.Fatal("need -pair x,y, -all, or -resume")
	}
}

// printHealth reports the relay scoreboard: which breakers tripped, how
// often each relay failed, and how expensive those failures were. Healthy
// all-quiet relays are elided.
func printHealth(h *ting.Health) {
	if h == nil {
		return
	}
	shown := false
	for _, r := range h.Snapshot() {
		if r.State == ting.BreakerClosed && r.Failures == 0 {
			continue
		}
		if !shown {
			fmt.Println("relay health:")
			shown = true
		}
		fmt.Printf("  %s: %s, %d ok / %d failed (%d opens, mean failure %.0f ms)",
			r.Name, r.State, r.Successes, r.Failures, r.Opens, r.MeanFailureMs)
		if r.LastFailure != "" {
			fmt.Printf(", last: %s", r.LastFailure)
		}
		fmt.Println()
	}
}

// printSummary reports what the campaign actually did — circuits built,
// samples taken, retries burned, cache hits — from the telemetry registry.
// Silent when telemetry is off.
func printSummary(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s := reg.Snapshot()
	c := s.Counters
	fmt.Printf("telemetry: %d circuits (%d failed), %d samples, %d pairs (%d failed), %d retries, cache %d hit / %d miss\n",
		c["ting.circuits_sampled"], c["ting.circuit_failures"],
		c["ting.samples"],
		c["ting.pairs_measured"], c["ting.pair_failures"],
		c["ting.retries"],
		c["ting.cache_hits"], c["ting.cache_misses"])
	if half := c["ting.halfcircuit.hit"] + c["ting.halfcircuit.miss"] + c["ting.halfcircuit.inflight_wait"]; half > 0 {
		fmt.Printf("telemetry: half circuits %d measured, %d memoized, %d joined in-flight (of %d lookups)\n",
			c["ting.halfcircuit.miss"], c["ting.halfcircuit.hit"],
			c["ting.halfcircuit.inflight_wait"], half)
	}
	if ck := c["ting.checkpoint.appended"] + c["ting.checkpoint.replayed"]; ck > 0 {
		fmt.Printf("telemetry: checkpoint %d records appended, %d replayed\n",
			c["ting.checkpoint.appended"], c["ting.checkpoint.replayed"])
	}
	if q, open := c["ting.quarantined_pairs"], s.Gauges["ting.health.breaker_open"]; q > 0 || open > 0 {
		fmt.Printf("telemetry: %d breakers open, %d pairs quarantined\n", open, q)
	}
	if h, ok := s.Histograms["ting.pair_rtt_ms"]; ok && h.Count > 0 {
		fmt.Printf("telemetry: pair RTT ms p50=%.2f p90=%.2f p99=%.2f\n", h.P50, h.P90, h.P99)
	}
}

func splitPair(s string) (x, y string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			x, y = s[:i], s[i+1:]
			return x, y, x != "" && y != ""
		}
	}
	return "", "", false
}
