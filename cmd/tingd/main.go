// Command tingd is the serving plane of the latency matrix: a long-running
// daemon that keeps an all-pairs RTT dataset fresh with continuous Monitor
// sweeps and serves it at high QPS. Each completed sweep is published as an
// immutable epoch snapshot and swapped in atomically, so readers never lock
// against the sweeper; queries are answered over a versioned HTTP/JSON API
// (/v1/…) and a compact length-prefixed binary protocol (see
// internal/serve).
//
// Measurement sources, pick one:
//
//	tingd -model 16                              synthetic Internet, model-direct measurers (self-contained)
//	tingd -control 127.0.0.1:9051 -data :9052    a running mintor network (cmd/tingnet) via its control port
//	tingd -matrix matrix.ting                    a finished cmd/ting campaign, served statically as epoch 1
//
// Usage:
//
//	tingd -model 16 -http 127.0.0.1:7070 -bin 127.0.0.1:7071 -debug-addr 127.0.0.1:0
//	tingload -bin 127.0.0.1:7071 -duration 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ting/internal/cliflags"
	"ting/internal/control"
	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/serve"
	"ting/internal/ting"
	"ting/internal/tornet"
)

var (
	httpAddr = flag.String("http", "127.0.0.1:7070", "serve the /v1 HTTP/JSON query API on this address (empty disables)")
	binAddr  = flag.String("bin", "127.0.0.1:7071", "serve the binary query protocol on this address (empty disables)")
	addrFile = flag.String("addr-file", "", "write the bound addresses (http=…, bin=…, debug=… lines) to this file, so :0 binds are discoverable without races")

	modelFlag = flag.Int("model", 0, "serve a synthetic n-relay Internet measured with model-direct probers (self-contained mode)")
	seedFlag  = flag.Int64("seed", 42, "model: topology seed")

	controlAddr = flag.String("control", "", "control port of an onion proxy to measure through (deployment mode)")
	dataAddr    = flag.String("data", "127.0.0.1:9052", "control mode: data port of the onion proxy")
	password    = flag.String("password", "", "control mode: control-port password")
	wFlag       = flag.String("w", tornet.WName, "control mode: nickname of local relay w")
	zFlag       = flag.String("z", tornet.ZName, "control mode: nickname of local relay z")
	target      = flag.String("target", tornet.EchoTarget, "control mode: echo destination name")
	scaleFlag   = flag.Float64("scale", 1.0, "control mode: the network's time scale, to convert wall-clock to virtual ms")

	matrixFlag = flag.String("matrix", "", "serve a finished campaign's matrix file statically (no sweeps)")

	samples       = flag.Int("samples", 10, "samples per circuit per measurement")
	maxAge        = flag.Duration("max-age", time.Minute, "re-measure a pair once its measurement is older than this")
	pairsPerSweep = flag.Int("pairs-per-sweep", 0, "bound how many pairs one sweep refreshes (0 = all stale pairs)")
	workers       = flag.Int("workers", 2, "sweep parallelism (forced to 1 in control mode: one control connection serializes circuit work)")
	sweepInterval = flag.Duration("sweep-interval", time.Second, "pause between sweeps")
	quiet         = flag.Bool("quiet", false, "do not log epoch swaps")

	dirFlag   = cliflags.Dir(flag.CommandLine, "control mode: directory server address to fetch the relay set from (default: the control port's consensus)")
	debugAddr = cliflags.DebugAddr(flag.CommandLine)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tingd: ")
	flag.Parse()

	reg, debugBound, shutdownTelemetry, err := cliflags.BootTelemetry(*debugAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdownTelemetry()

	pub := serve.NewPublisher(reg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The measurement source: exactly one of -model, -control, -matrix.
	var mon *ting.Monitor
	switch {
	case *matrixFlag != "":
		f, err := os.Open(*matrixFlag)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ting.DecodeMatrix(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// The document persists predicted provenance but not measured (it is
		// runtime annotation): stamp every other nonzero cell as resumed so
		// replayed measurements don't rank below model predictions — a
		// confidence-floored consumer must prefer the real data.
		names := m.Names()
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if v := m.At(i, j); v > 0 && m.ProvAt(i, j) != ting.ProvPredicted {
					if err := m.SetProv(names[i], names[j], ting.ProvResumed); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		if _, err := pub.Publish(m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serving %s statically: %d relays, epoch 1\n", *matrixFlag, m.N())

	case *modelFlag > 0:
		world, err := experiments.NewTestbedWorld(*modelFlag, *seedFlag)
		if err != nil {
			log.Fatal(err)
		}
		mon, err = ting.NewMonitor(ting.MonitorConfig{
			NewMeasurer: func(worker int) (*ting.Measurer, error) {
				return world.Measurer(*samples, *seedFlag+int64(worker)+1)
			},
			Names:         world.Names,
			MaxAge:        *maxAge,
			PairsPerSweep: *pairsPerSweep,
			Workers:       *workers,
			Observer:      ting.NewTelemetryObserver(reg),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sweeping a synthetic %d-relay Internet (seed %d)\n", *modelFlag, *seedFlag)

	case *controlAddr != "":
		conn, err := control.Dial(*controlAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Authenticate(*password); err != nil {
			log.Fatal(err)
		}
		var dir *directory.Registry
		if *dirFlag != "" {
			dir, err = directory.Fetch(*dirFlag)
		} else {
			dir, err = conn.Consensus()
		}
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, 0, dir.Len())
		for _, d := range dir.Consensus() {
			names = append(names, d.Nickname)
		}
		mon, err = ting.NewMonitor(ting.MonitorConfig{
			NewMeasurer: func(worker int) (*ting.Measurer, error) {
				return ting.NewMeasurer(ting.Config{
					Prober: &ting.ControlProber{
						Conn:     conn,
						DataAddr: *dataAddr,
						Target:   *target,
						ToMs: func(d time.Duration) float64 {
							return float64(d) / float64(time.Millisecond) / *scaleFlag
						},
					},
					W:        *wFlag,
					Z:        *zFlag,
					Samples:  *samples,
					Observer: ting.NewTelemetryObserver(reg),
				})
			},
			Names:         names,
			MaxAge:        *maxAge,
			PairsPerSweep: *pairsPerSweep,
			// One control connection serializes circuit work.
			Workers: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sweeping %d relays through %s\n", len(names), *controlAddr)

	default:
		log.Fatal("need a measurement source: -model n, -control addr, or -matrix file")
	}

	// Query surfaces. Both answer from the same publisher, so they are
	// always mutually consistent for a given epoch.
	written := map[string]string{}
	if debugBound != "" {
		written["debug"] = debugBound
	}
	if *httpAddr != "" {
		ln := listen(*httpAddr)
		srv := &http.Server{Handler: serve.NewServer(pub, reg).Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		defer srv.Close()
		written["http"] = ln.Addr().String()
		fmt.Printf("http:   http://%s/v1/epoch\n", ln.Addr())
	}
	if *binAddr != "" {
		ln := listen(*binAddr)
		bin := serve.NewBinaryServer(pub, reg)
		go func() {
			if err := bin.Serve(ctx, ln); err != nil {
				log.Fatal(err)
			}
		}()
		written["bin"] = ln.Addr().String()
		fmt.Printf("binary: %s\n", ln.Addr())
	}
	if len(written) == 0 {
		log.Fatal("both -http and -bin disabled: nothing to serve")
	}
	if *addrFile != "" {
		writeAddrFile(*addrFile, written)
	}

	if mon != nil {
		sw := &serve.Sweeper{
			Monitor:   mon,
			Publisher: pub,
			Interval:  *sweepInterval,
			OnSweep: func(stats ting.MonitorStats, snap *serve.Snapshot, err error) {
				if err != nil && ctx.Err() == nil {
					log.Printf("sweep error: %v", err)
				}
				if snap != nil && !*quiet {
					pc := snap.ProvCounts()
					log.Printf("epoch %d: %d measured total (pairs: %d fresh, %d resumed, %d removed, %d predicted, %d missing)",
						snap.Epoch(), stats.Measured, pc.Fresh, pc.Resumed, pc.Removed, pc.Predicted, pc.Missing)
				}
			},
		}
		if err := sw.Run(ctx); err != nil {
			log.Fatal(err)
		}
	} else {
		<-ctx.Done()
	}
	fmt.Println("shutting down")
}

func listen(addr string) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	return ln
}

// writeAddrFile publishes the bound addresses atomically (write + rename),
// so a watcher polling for the file never reads a half-written one.
func writeAddrFile(path string, addrs map[string]string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []string{"http", "bin", "debug"} {
		if v, ok := addrs[k]; ok {
			fmt.Fprintf(f, "%s=%s\n", k, v)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Fatal(err)
	}
}
