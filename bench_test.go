package ting

// One benchmark per paper figure (reduced scale — the figures' shapes, not
// their full population sizes), plus ablation benches for the design
// choices DESIGN.md calls out and micro-benchmarks for the hot paths of
// the onion stack. Run with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ting/internal/cell"
	"ting/internal/coords"
	"ting/internal/deanon"
	"ting/internal/experiments"
	"ting/internal/inet"
	"ting/internal/onion"
	"ting/internal/pathsel"
	"ting/internal/ting"
)

// --- Figure benchmarks ---

func BenchmarkFig3Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(experiments.Fig3Config{
			Nodes: 10, Samples: 100, PingSamples: 20, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Regimes(b *testing.B) {
	res, err := experiments.Fig3(experiments.Fig3Config{
		Nodes: 10, Samples: 100, PingSamples: 20, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4(res)
	}
}

func BenchmarkFig5ForwardingDelays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(experiments.Fig5Config{
			Nodes: 10, Rounds: 3, CircuitSamples: 100, PingSamples: 20, Seed: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6SampleSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(experiments.Fig6Config{
			WorldNodes: 20, Pairs: 20, Samples: 300, Seed: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SampleComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(experiments.Fig3Config{
			Nodes: 8, PingSamples: 20, Seed: 4,
		}, 50, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8DistanceLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(experiments.Fig8Config{
			WorldNodes: 80, Pairs: 200, Samples: 50, Seed: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Stability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(experiments.Fig9Config{
			WorldNodes: 30, PairCount: 8, Hours: 12, Samples: 60, Seed: 6,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Boxes(b *testing.B) {
	res, err := experiments.Fig9(experiments.Fig9Config{
		WorldNodes: 30, PairCount: 8, Hours: 12, Samples: 60, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig10(res)
	}
}

func benchFig11(b *testing.B) *experiments.Fig11Result {
	b.Helper()
	res, err := experiments.Fig11(experiments.Fig11Config{
		Nodes: 20, Samples: 50, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFig11AllPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchFig11(b)
	}
}

func BenchmarkFig12Deanonymization(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(f11, experiments.Fig12Config{Trials: 100, Seed: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13RuledOut(b *testing.B) {
	f11 := benchFig11(b)
	f12, err := experiments.Fig12(f11, experiments.Fig12Config{Trials: 100, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig13(f12)
	}
}

func BenchmarkFig14TIVs(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(f11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15Scatter(b *testing.B) {
	f11 := benchFig11(b)
	f14, err := experiments.Fig14(f11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig15(f14)
	}
}

func BenchmarkFig16LongerCircuits(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(f11, experiments.Fig16Config{
			Lengths: []int{3, 5, 7}, Samples: 2000, Seed: 9,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17NodeProbability(b *testing.B) {
	// Figure 17 shares Figure 16's computation; bench the underlying
	// analysis directly.
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathsel.AnalyzeLengths(f11.Matrix, []int{4}, 2000, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig18(experiments.Fig18Config{
			Days: 10, Relays: 2000, Seed: 11,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadlines(b *testing.B) {
	f3, err := experiments.Fig3(experiments.Fig3Config{Nodes: 10, Samples: 100, PingSamples: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	f11 := benchFig11(b)
	f12, err := experiments.Fig12(f11, experiments.Fig12Config{Trials: 100, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	f14, err := experiments.Fig14(f11)
	if err != nil {
		b.Fatal(err)
	}
	f18, err := experiments.Fig18(experiments.Fig18Config{Days: 5, Relays: 1000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ComputeHeadlines(f3, f12, f14, f18); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks ---

func BenchmarkAblationAggregator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAggregator(experiments.AblationConfig{
			Nodes: 10, Pairs: 20, Samples: 100, Seed: 12,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStrawman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStrawman(experiments.AblationConfig{
			Nodes: 10, Pairs: 20, Samples: 100, Seed: 13,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSamples(experiments.AblationConfig{
			Nodes: 10, Pairs: 10, Seed: 14,
		}, []int{10, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMu(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMu(f11, 60, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the onion stack's hot paths ---

// benchSink defeats dead-code elimination: without a live use of the
// encoded/decoded bytes the compiler deletes the loop body outright and
// the marshal/unmarshal ratio becomes meaningless.
var benchSink byte

func BenchmarkCellMarshal(b *testing.B) {
	c := cell.Cell{Circ: 42, Cmd: cell.Relay}
	buf := make([]byte, cell.Size)
	b.SetBytes(cell.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MarshalInto(buf)
		benchSink += buf[0]
	}
}

func BenchmarkCellUnmarshal(b *testing.B) {
	c := cell.Cell{Circ: 42, Cmd: cell.Relay}
	buf := c.Marshal()
	b.SetBytes(cell.Size)
	b.ResetTimer()
	// UnmarshalInto is the receive-loop decode path: every link Recv
	// decodes into a caller-owned Cell rather than returning one by value.
	var dst cell.Cell
	for i := 0; i < b.N; i++ {
		if err := cell.UnmarshalInto(&dst, buf); err != nil {
			b.Fatal(err)
		}
		benchSink += dst.Payload[0]
	}
}

func BenchmarkHandshake(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	id, err := onion.NewIdentity(rnd)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := onion.StartHandshake(id.Public(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		reply, _, err := onion.ServerHandshake(id, ch.Onionskin(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Complete(reply); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnionForward3Hops(b *testing.B) {
	rnd := rand.New(rand.NewSource(2))
	var cc onion.CircuitCrypto
	relays := make([]*onion.HopState, 3)
	for i := range relays {
		id, err := onion.NewIdentity(rnd)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := onion.StartHandshake(id.Public(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		reply, hop, err := onion.ServerHandshake(id, ch.Onionskin(), rnd)
		if err != nil {
			b.Fatal(err)
		}
		clientHop, err := ch.Complete(reply)
		if err != nil {
			b.Fatal(err)
		}
		cc.AddHop(clientHop)
		relays[i] = hop
	}
	rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 1, Data: make([]byte, cell.RelayDataLen)}
	b.SetBytes(cell.PayloadLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := rc.MarshalPayload()
		if err != nil {
			b.Fatal(err)
		}
		if err := cc.EncryptForward(2, &p); err != nil {
			b.Fatal(err)
		}
		relays[0].CryptForward(&p)
		_ = relays[0].VerifyForward(&p)
		relays[1].CryptForward(&p)
		_ = relays[1].VerifyForward(&p)
		relays[2].CryptForward(&p)
		if !relays[2].VerifyForward(&p) {
			b.Fatal("exit failed to recognize cell")
		}
	}
}

func BenchmarkModelProberSample(b *testing.B) {
	w, err := experiments.NewWorld(30, 16)
	if err != nil {
		b.Fatal(err)
	}
	p := w.Prober(17)
	path := []string{w.W, w.Names[0], w.Names[1], w.Z}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SampleCircuit(context.Background(), path, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasurePair(b *testing.B) {
	w, err := experiments.NewWorld(30, 18)
	if err != nil {
		b.Fatal(err)
	}
	m, err := w.Measurer(200, 19)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MeasurePair(context.Background(), w.Names[0], w.Names[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeanonInformedTrial(b *testing.B) {
	f11 := benchFig11(b)
	rng := rand.New(rand.NewSource(20))
	sc, err := deanon.NewScenario(f11.Matrix, nil, rng)
	if err != nil {
		b.Fatal(err)
	}
	strat := &deanon.Informed{UseMu: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = strat.Run(sc, rng)
	}
}

func BenchmarkTIVScan50Nodes(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathsel.FindTIVs(f11.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks: defenses (§5.1.3), future-work selection
// (§5.2.2/§6), and the King comparison (§2, §4.2) ---

func BenchmarkDefensePadding(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deanon.PaddingSweep(f11.Matrix, []float64{0, 100}, 60, 21); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefenseRandomLength(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deanon.LengthDefense(f11.Matrix, 3, 5, 60, 22); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectionLowLatency(b *testing.B) {
	f11 := benchFig11(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Selection(f11, experiments.SelectionConfig{
			Lengths: []int{4}, Baseline3Hop: 1000, Select: 200, Seed: 23,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKingComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.KingComparison(experiments.KingConfig{
			Nodes: 10, Pairs: 40, Samples: 60, Seed: 24,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Half-circuit memoization and scan-scheduling benchmarks ---

// benchScanAllPairs runs a 20-node all-pairs scan over the model world —
// the end-to-end cost the half-circuit cache exists to cut. The memoized/
// unmemoized pair is the ~3× ablation: pairs+N vs 3·pairs circuit series.
func benchScanAllPairs(b *testing.B, disable bool) {
	w, err := experiments.NewWorld(20, 25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := &ting.Scanner{
			NewMeasurer: func(worker int) (*ting.Measurer, error) {
				return w.Measurer(50, 26+int64(worker))
			},
			Workers:          4,
			DisableHalfCache: disable,
		}
		if _, _, err := sc.Scan(context.Background(), w.Names); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanAllPairsMemoized(b *testing.B) { benchScanAllPairs(b, false) }

func BenchmarkScanAllPairsNoMemo(b *testing.B) { benchScanAllPairs(b, true) }

func BenchmarkHalfCacheHit(b *testing.B) {
	c := ting.NewHalfCache(0)
	path := []string{"w", "x"}
	fn := func(context.Context) (float64, error) { return 1, nil }
	if _, err := c.Do(context.Background(), path, 200, nil, fn); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(context.Background(), path, 200, nil, fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachePut(b *testing.B) {
	// Amortized pruning: Put must stay O(1) even with a TTL set and the
	// map holding thousands of pairs (the former per-Put sweep was O(n)).
	c := ting.NewCache(time.Hour)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("r%04d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(keys[i%len(keys)], "peer", float64(i))
	}
}

// --- Coordinate-embedding and budgeted-scan benchmarks ---

// BenchmarkScanBudgeted is the N² counterpart of BenchmarkScanAllPairsMemoized:
// same 20-node world, but a budget of 30 measured pairs (~15%) with the
// coordinate model filling in the rest. The ratchet guards the claim that it
// samples ≥4× fewer circuit series than the memoized all-pairs scan.
func BenchmarkScanBudgeted(b *testing.B) {
	w, err := experiments.NewWorld(20, 25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := &ting.Scanner{
			NewMeasurer: func(worker int) (*ting.Measurer, error) {
				return w.Measurer(50, 26+int64(worker))
			},
			Workers: 4,
		}
		if _, _, err := sc.ScanBudget(context.Background(), w.Names, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedFit times one full coordinate fit: 200 nodes, 15% of pairs
// observed, 10 passes — the per-batch refit cost inside a budgeted campaign.
func BenchmarkEmbedFit(b *testing.B) {
	const n = 200
	topo, err := inet.Generate(inet.Config{N: n, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	all := n * (n - 1) / 2
	obs := make([]coords.Observation, 0, all*15/100)
	seen := make(map[[2]int]bool)
	for len(obs) < all*15/100 {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		obs = append(obs, coords.Observation{I: i, J: j, RTTMs: topo.RTT(inet.NodeID(i), inet.NodeID(j))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := coords.New(n, coords.Config{Seed: 33})
		if err != nil {
			b.Fatal(err)
		}
		m.Fit(obs, 10)
	}
}
