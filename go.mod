module ting

go 1.22
