// Deanonymize: reproduce the §5.1 study end to end — measure an all-pairs
// RTT matrix with Ting, then show how much faster an attacker who holds
// that matrix identifies the entry and middle relays of victim circuits.
//
//	go run ./examples/deanonymize
package main

import (
	"fmt"
	"log"

	"ting/internal/deanon"
	"ting/internal/experiments"
)

func main() {
	log.SetFlags(0)

	// Step 1: the all-pairs dataset (Figure 11). The model-direct prober
	// keeps this example fast; see examples/quickstart for the full stack.
	fmt.Println("measuring all-pairs RTT matrix over 30 relays…")
	f11, err := experiments.Fig11(experiments.Fig11Config{Nodes: 30, Samples: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean inter-relay RTT µ = %.1f ms\n\n", f11.Matrix.Mean())

	// Step 2: simulate victims and attackers (Figure 12).
	sim := &deanon.Simulation{
		Matrix: f11.Matrix,
		Strategies: []deanon.Strategy{
			&deanon.RTTUnaware{},
			deanon.IgnoreTooLarge{},
			&deanon.Informed{UseMu: true},
		},
		Seed: 2,
	}
	const trials = 400
	fmt.Printf("running %d deanonymization trials…\n", trials)
	ts, err := sim.Run(trials)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmedian fraction of the network an attacker must probe:")
	for _, name := range []string{"rtt-unaware", "ignore-too-large", "informed"} {
		med, err := deanon.MedianFracTested(ts, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %.1f%%\n", name, 100*med)
	}
	speedup, err := deanon.Speedup(ts, "rtt-unaware", "informed")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTing's RTT knowledge speeds deanonymization up %.2fx (paper: 1.5x).\n", speedup)
	fmt.Println("Low-RTT circuits are the most exposed: the too-large-RTT rules rule")
	fmt.Println("out the most relays exactly when the end-to-end RTT is small (Fig 13).")
}
