// Pathselection: reproduce the §5.2 study — find triangle inequality
// violations in a Ting-measured all-pairs matrix, then show that longer
// circuits chosen with RTT knowledge need not cost latency.
//
//	go run ./examples/pathselection
package main

import (
	"fmt"
	"log"

	"ting/internal/experiments"
	"ting/internal/pathsel"
	"ting/internal/stats"
)

func main() {
	log.SetFlags(0)

	fmt.Println("measuring all-pairs RTT matrix over 40 relays…")
	f11, err := experiments.Fig11(experiments.Fig11Config{Nodes: 40, Samples: 100, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Triangle inequality violations (Figures 14, 15).
	sum, err := pathsel.SummarizeTIVs(f11.Matrix)
	if err != nil {
		log.Fatal(err)
	}
	med := 0.0
	if len(sum.Savings) > 0 {
		med, _ = stats.Median(sum.Savings)
	}
	p90, _ := stats.Quantile(sum.Savings, 0.9)
	fmt.Printf("\nTIVs: %.0f%% of pairs have a faster path through a detour relay (paper: 69%%)\n",
		100*sum.FractionWithTIV())
	fmt.Printf("  median saving %.1f%%, top decile saves ≥ %.1f%% (paper: 7.5%% / 28%%)\n",
		100*med, 100*p90)
	fmt.Println("  geographic distance can never predict these: distances obey the")
	fmt.Println("  triangle inequality, measured RTTs do not.")

	// Longer circuits (Figures 16, 17).
	res, err := pathsel.AnalyzeLengths(f11.Matrix, []int{3, 4, 5}, 8000, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncircuits achieving 200–300 ms end-to-end (scaled to the full population):")
	var c3 float64
	for _, lh := range res {
		in := lh.CircuitsWithin(200, 300)
		if lh.Length == 3 {
			c3 = in
		}
		extra := ""
		if lh.Length > 3 && c3 > 0 {
			extra = fmt.Sprintf("  (%.0fx the 3-hop choices)", in/c3)
		}
		fmt.Printf("  %d-hop: %10.3g circuits%s\n", lh.Length, in, extra)
	}
	fmt.Println("\nwith RTT knowledge, a client can pick 4- or 5-hop circuits in the same")
	fmt.Println("latency band as 3-hop ones — more anonymity at no latency cost (§5.2.2).")
}
