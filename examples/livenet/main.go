// Livenet: the full deployment pipeline in one process — boot a mintor
// overlay whose relays speak real TCP on loopback, expose a Tor-style
// control port and data port, and drive Ting through them exactly as the
// paper drove an unmodified Tor via the Stem controller.
//
//	go run ./examples/livenet
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"ting/internal/control"
	"ting/internal/experiments"
	"ting/internal/inet"
	"ting/internal/ting"
	"ting/internal/tornet"
)

func main() {
	log.SetFlags(0)

	// A geographically spread 4-relay world.
	world, err := experiments.NewTestbedWorld(4, 21)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]inet.NodeID, 0, len(world.Names))
	for _, n := range world.Names {
		ids = append(ids, world.NodeOf[n])
	}

	// Relay links over real TCP sockets; 4x compressed time.
	overlay, err := tornet.Build(tornet.Config{
		Topology:   world.Topo,
		RelayNodes: ids,
		Host:       world.Host,
		TimeScale:  0.25,
		TCP:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer overlay.Close()

	// Control + data ports, like a local Tor's control port and SOCKS.
	srv, err := control.NewServer(control.ServerConfig{
		Client:   overlay.Client,
		Registry: overlay.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctrlLn := mustListen()
	dataLn := mustListen()
	go srv.ServeControl(ctrlLn)
	go srv.ServeData(dataLn)
	fmt.Printf("overlay up; control=%s data=%s\n", ctrlLn.Addr(), dataLn.Addr())

	// The controller side: authenticate, fetch the consensus, measure.
	conn, err := control.Dial(ctrlLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Authenticate(""); err != nil {
		log.Fatal(err)
	}
	reg, err := conn.Consensus()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consensus lists %d relays\n", reg.Len())

	measurer, err := ting.NewMeasurer(ting.Config{
		Prober: &ting.ControlProber{
			Conn:     conn,
			DataAddr: dataLn.Addr().String(),
			Target:   tornet.EchoTarget,
			ToMs:     overlay.VirtualMs,
		},
		W:       tornet.WName,
		Z:       tornet.ZName,
		Samples: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	x, y := world.Names[0], world.Names[1]
	truth, err := world.TrueRTT(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measuring R(%s, %s) through the control port…\n", x, y)
	res, err := measurer.MeasurePair(context.Background(), x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ting estimate %.1f ms, ground truth %.1f ms (error %+.1f%%)\n",
		res.RTT, truth, 100*(res.RTT-truth)/truth)
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}
