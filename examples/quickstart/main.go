// Quickstart: build an in-process mintor overlay, run Ting's three-circuit
// measurement for one relay pair through the full onion-routing stack, and
// compare the estimate against the exact ground truth the synthetic
// Internet prescribes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ting/internal/geo"
	"ting/internal/inet"
	"ting/internal/ting"
	"ting/internal/tornet"
)

func main() {
	log.SetFlags(0)

	// A small synthetic Internet plus a measurement host on the US east
	// coast (where s, d, w, and z all live, as in §3.3 of the paper).
	topo, err := inet.Generate(inet.Config{N: 5, Seed: 7, FlatRegions: true})
	if err != nil {
		log.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 38.99, Lon: -76.94}, 8)

	// Boot the overlay: 5 relays at their topology positions plus the
	// local w and z, wired with the topology's exact latencies.
	net, err := tornet.Build(tornet.Config{
		Topology:  topo,
		Host:      host,
		TimeScale: 0.25, // run 4x faster than real time
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	x, _ := net.NodeName(0)
	y, _ := net.NodeName(1)
	truth := topo.RTT(0, 1)
	fmt.Printf("measuring R(%s, %s); ground truth %.1f ms\n", x, y, truth)

	// Ting over the real stack: circuits are built hop by hop with X25519
	// handshakes, every cell is onion-encrypted, and echo probes flow
	// through the exit.
	measurer, err := ting.NewMeasurer(ting.Config{
		Prober: &ting.StackProber{
			Client:   net.Client,
			Registry: net.Registry,
			Target:   tornet.EchoTarget,
			ToMs:     net.VirtualMs,
		},
		W:       tornet.WName,
		Z:       tornet.ZName,
		Samples: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := measurer.MeasurePair(context.Background(), x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit minimums: C_xy=%.1f ms, C_x=%.1f ms, C_y=%.1f ms\n",
		res.MinFull, res.MinX, res.MinY)
	fmt.Printf("Ting estimate (Eq. 4): %.1f ms  (error %+.1f ms, %+.1f%%)\n",
		res.RTT, res.RTT-truth, 100*(res.RTT-truth)/truth)
	fmt.Printf("took %v of wall-clock time for %d samples/circuit\n",
		res.Elapsed.Round(1e6), res.SamplesPerCircuit)
}
