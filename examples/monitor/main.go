// Monitor: the long-running deployment of Ting — keep an all-pairs RTT
// matrix fresh over time with load-spread sweeps, the workflow §4.6
// justifies ("taking measurements with Ting infrequently and caching them
// is sufficient"), then consume the living dataset the way §5 does.
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"

	"ting/internal/experiments"
	"ting/internal/pathsel"
	"ting/internal/stats"
	"ting/internal/ting"
)

func main() {
	log.SetFlags(0)

	world, err := experiments.NewWorld(20, 99)
	if err != nil {
		log.Fatal(err)
	}

	mon, err := ting.NewMonitor(ting.MonitorConfig{
		NewMeasurer: func(worker int) (*ting.Measurer, error) {
			return world.Measurer(100, 100+int64(worker))
		},
		Names:         world.Names,
		PairsPerSweep: 60, // spread the 190 pairs over ~4 sweeps
		Workers:       4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitoring %d relays (%d pairs), 60 pairs per sweep:\n",
		len(world.Names), len(world.Names)*(len(world.Names)-1)/2)
	for sweep := 1; ; sweep++ {
		n, err := mon.Sweep(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		st := mon.Stats()
		fmt.Printf("  sweep %d: refreshed %d pairs (total measured %d, left fresh %d)\n",
			sweep, n, st.Measured, st.Skipped)
		if n == 0 {
			break
		}
	}

	// The living matrix drives the Section 5 analyses at any time.
	m := mon.Matrix()
	med, _ := stats.Median(m.PairValues())
	sum, err := pathsel.SummarizeTIVs(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatrix ready: median inter-relay RTT %.1f ms; %.0f%% of pairs have a TIV detour\n",
		med, 100*sum.FractionWithTIV())
	fmt.Println("re-running Sweep() on a ticker keeps it fresh (ting.Monitor.RunEvery).")
}
