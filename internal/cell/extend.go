package cell

import (
	"encoding/binary"
	"fmt"
)

// EncodeExtend packs the body of a RELAY_EXTEND cell: the next relay's link
// address followed by the client's handshake onionskin.
//
// Layout: addrLen(2) | addr | skinLen(2) | onionskin.
func EncodeExtend(addr string, onionskin []byte) ([]byte, error) {
	if addr == "" {
		return nil, fmt.Errorf("cell: extend with empty address")
	}
	n := 2 + len(addr) + 2 + len(onionskin)
	if n > RelayDataLen {
		return nil, fmt.Errorf("cell: extend body %d bytes exceeds %d", n, RelayDataLen)
	}
	out := make([]byte, n)
	binary.BigEndian.PutUint16(out[0:2], uint16(len(addr)))
	copy(out[2:], addr)
	off := 2 + len(addr)
	binary.BigEndian.PutUint16(out[off:off+2], uint16(len(onionskin)))
	copy(out[off+2:], onionskin)
	return out, nil
}

// DecodeExtend unpacks a RELAY_EXTEND body.
func DecodeExtend(data []byte) (addr string, onionskin []byte, err error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("cell: extend body too short")
	}
	alen := int(binary.BigEndian.Uint16(data[0:2]))
	if len(data) < 2+alen+2 {
		return "", nil, fmt.Errorf("cell: extend body truncated")
	}
	addr = string(data[2 : 2+alen])
	off := 2 + alen
	slen := int(binary.BigEndian.Uint16(data[off : off+2]))
	if len(data) < off+2+slen {
		return "", nil, fmt.Errorf("cell: extend onionskin truncated")
	}
	if addr == "" {
		return "", nil, fmt.Errorf("cell: extend with empty address")
	}
	return addr, data[off+2 : off+2+slen], nil
}
