package cell

import "sync"

// The data pool recycles the relay-cell data buffers that dominate the
// overlay's per-cell heap traffic: every decrypted DATA cell used to cost
// one fresh allocation in UnmarshalPayload and another in each exit's
// stream reader. Buffers are full-capacity RelayDataLen arrays, so any
// relay cell's data fits without growing.
var dataPool = sync.Pool{
	New: func() any { return new([RelayDataLen]byte) },
}

// GetBuf returns an empty buffer with capacity RelayDataLen from the pool.
// Returning it with PutBuf is advisory: a buffer that escapes (retained by
// a handshake, sliced into a leftover) is simply collected as garbage.
func GetBuf() []byte {
	return dataPool.Get().(*[RelayDataLen]byte)[:0]
}

// PutBuf recycles a buffer obtained from GetBuf. Only call it from a site
// that owns b exclusively — after the data has been copied onward and no
// other goroutine can still read it. Buffers that have lost their original
// backing array (cap < RelayDataLen, e.g. a mid-buffer subslice) are
// silently dropped.
func PutBuf(b []byte) {
	if cap(b) < RelayDataLen {
		return
	}
	dataPool.Put((*[RelayDataLen]byte)(b[:RelayDataLen]))
}
