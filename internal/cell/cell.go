// Package cell implements the fixed-size cell wire format of the mintor
// onion-routing overlay, modeled on Tor's link protocol: every unit on a
// relay connection is exactly 512 bytes, so traffic analysis learns nothing
// from cell sizes, and relay cells carry an encrypted, integrity-protected
// sub-header addressed to exactly one hop of a circuit.
package cell

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire-format sizes.
const (
	// Size is the fixed size of every cell on the wire.
	Size = 512
	// HeaderLen is CircID (4) + Command (1).
	HeaderLen = 5
	// PayloadLen is the space available to the cell body.
	PayloadLen = Size - HeaderLen // 507

	// RelayHeaderLen is RelayCmd(1) + Recognized(2) + StreamID(2) +
	// Digest(4) + Length(2).
	RelayHeaderLen = 11
	// RelayDataLen is the maximum data bytes carried by one relay cell.
	RelayDataLen = PayloadLen - RelayHeaderLen // 496
)

// Command is a cell command.
type Command byte

// Cell commands, mirroring the subset of Tor's link protocol that circuit
// construction and data transfer require.
const (
	Padding Command = 0
	Create  Command = 1
	Created Command = 2
	Relay   Command = 3
	Destroy Command = 4
)

// String names the command.
func (c Command) String() string {
	switch c {
	case Padding:
		return "PADDING"
	case Create:
		return "CREATE"
	case Created:
		return "CREATED"
	case Relay:
		return "RELAY"
	case Destroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("CMD(%d)", byte(c))
	}
}

// Valid reports whether c is a known command.
func (c Command) Valid() bool { return c <= Destroy }

// CircID identifies a circuit on a particular relay connection. Like Tor's,
// IDs are connection-scoped, not global.
type CircID uint32

// Cell is one fixed-size unit on a relay connection.
type Cell struct {
	Circ    CircID
	Cmd     Command
	Payload [PayloadLen]byte
}

// Errors returned by decoding.
var (
	ErrShortCell   = errors.New("cell: buffer shorter than cell size")
	ErrBadCommand  = errors.New("cell: unknown command")
	ErrDataTooLong = errors.New("cell: relay data exceeds capacity")
)

// Marshal encodes the cell into a fresh Size-byte slice.
func (c *Cell) Marshal() []byte {
	buf := make([]byte, Size)
	c.MarshalInto(buf)
	return buf
}

// MarshalInto encodes the cell into buf, which must be at least Size bytes.
// It returns the number of bytes written.
func (c *Cell) MarshalInto(buf []byte) int {
	_ = buf[Size-1] // bounds hint
	binary.BigEndian.PutUint32(buf[0:4], uint32(c.Circ))
	buf[4] = byte(c.Cmd)
	copy(buf[HeaderLen:Size], c.Payload[:])
	return Size
}

// Unmarshal decodes a cell from buf, which must hold at least Size bytes.
func Unmarshal(buf []byte) (Cell, error) {
	var c Cell
	err := UnmarshalInto(&c, buf)
	return c, err
}

// UnmarshalInto decodes a cell from buf into c, overwriting it in place.
// Receive loops that reuse one Cell per connection avoid copying the
// 512-byte value through every return; this is the decode counterpart of
// MarshalInto.
func UnmarshalInto(c *Cell, buf []byte) error {
	if len(buf) < Size {
		return fmt.Errorf("%w: %d bytes", ErrShortCell, len(buf))
	}
	c.Circ = CircID(binary.BigEndian.Uint32(buf[0:4]))
	c.Cmd = Command(buf[4])
	if !c.Cmd.Valid() {
		return fmt.Errorf("%w: %d", ErrBadCommand, buf[4])
	}
	copy(c.Payload[:], buf[HeaderLen:Size])
	return nil
}

// String renders a compact description for logs.
func (c *Cell) String() string {
	return fmt.Sprintf("cell{circ=%d cmd=%s}", c.Circ, c.Cmd)
}
