package cell

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	if HeaderLen+PayloadLen != Size {
		t.Error("header + payload != cell size")
	}
	if RelayHeaderLen+RelayDataLen != PayloadLen {
		t.Error("relay header + data != payload size")
	}
	if Size != 512 {
		t.Errorf("Size = %d, want 512", Size)
	}
}

func TestCellRoundTrip(t *testing.T) {
	c := Cell{Circ: 0xDEADBEEF, Cmd: Relay}
	for i := range c.Payload {
		c.Payload[i] = byte(i * 7)
	}
	buf := c.Marshal()
	if len(buf) != Size {
		t.Fatalf("marshal length %d", len(buf))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Circ != c.Circ || got.Cmd != c.Cmd || got.Payload != c.Payload {
		t.Error("round trip mismatch")
	}
}

func TestCellRoundTripProperty(t *testing.T) {
	f := func(circ uint32, cmdRaw byte, seed []byte) bool {
		c := Cell{Circ: CircID(circ), Cmd: Command(cmdRaw % 5)}
		copy(c.Payload[:], seed)
		got, err := Unmarshal(c.Marshal())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, Size-1)); err == nil {
		t.Error("want error for short buffer")
	}
	buf := make([]byte, Size)
	buf[4] = 99 // unknown command
	if _, err := Unmarshal(buf); err == nil {
		t.Error("want error for unknown command")
	}
}

func TestMarshalInto(t *testing.T) {
	c := Cell{Circ: 7, Cmd: Create}
	buf := make([]byte, Size)
	if n := c.MarshalInto(buf); n != Size {
		t.Fatalf("MarshalInto returned %d", n)
	}
	if !bytes.Equal(buf, c.Marshal()) {
		t.Error("MarshalInto differs from Marshal")
	}
}

func TestCommandStrings(t *testing.T) {
	cases := map[Command]string{
		Padding: "PADDING", Create: "CREATE", Created: "CREATED",
		Relay: "RELAY", Destroy: "DESTROY", Command(42): "CMD(42)",
	}
	for cmd, want := range cases {
		if cmd.String() != want {
			t.Errorf("%d.String() = %q, want %q", cmd, cmd.String(), want)
		}
	}
	c := Cell{Circ: 3, Cmd: Relay}
	if !strings.Contains(c.String(), "circ=3") || !strings.Contains(c.String(), "RELAY") {
		t.Errorf("Cell.String() = %q", c.String())
	}
}

func TestRelayCellRoundTrip(t *testing.T) {
	rc := RelayCell{
		Cmd:    RelayData,
		Stream: 42,
		Digest: [4]byte{1, 2, 3, 4},
		Data:   []byte("ping payload with some bytes"),
	}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPayload(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != rc.Cmd || got.Stream != rc.Stream || got.Digest != rc.Digest {
		t.Errorf("header mismatch: %+v vs %+v", got, rc)
	}
	if !bytes.Equal(got.Data, rc.Data) {
		t.Error("data mismatch")
	}
}

func TestRelayCellRoundTripProperty(t *testing.T) {
	cmds := []RelayCommand{RelayBegin, RelayData, RelayEnd, RelayConnected, RelayExtend, RelayExtended, RelayDrop}
	f := func(cmdIdx uint8, stream uint16, digest [4]byte, data []byte) bool {
		if len(data) > RelayDataLen {
			data = data[:RelayDataLen]
		}
		rc := RelayCell{
			Cmd:    cmds[int(cmdIdx)%len(cmds)],
			Stream: StreamID(stream),
			Digest: digest,
			Data:   data,
		}
		p, err := rc.MarshalPayload()
		if err != nil {
			return false
		}
		got, err := UnmarshalPayload(&p)
		if err != nil {
			return false
		}
		return got.Cmd == rc.Cmd && got.Stream == rc.Stream &&
			got.Digest == rc.Digest && bytes.Equal(got.Data, rc.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelayCellDataTooLong(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Data: make([]byte, RelayDataLen+1)}
	if _, err := rc.MarshalPayload(); err == nil {
		t.Error("want error for oversized data")
	}
}

func TestRelayCellMaxData(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Data: bytes.Repeat([]byte{0xAB}, RelayDataLen)}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPayload(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != RelayDataLen {
		t.Errorf("data length %d, want %d", len(got.Data), RelayDataLen)
	}
}

func TestUnmarshalPayloadRejectsUnrecognized(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Recognized: 7}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPayload(&p); err == nil {
		t.Error("want error for nonzero recognized")
	}
	if PayloadRecognized(&p) {
		t.Error("PayloadRecognized should be false")
	}
}

func TestUnmarshalPayloadRejectsBadLength(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Data: []byte("x")}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	p[9], p[10] = 0xFF, 0xFF // absurd length
	if _, err := UnmarshalPayload(&p); err == nil {
		t.Error("want error for bad length")
	}
}

func TestUnmarshalPayloadRejectsBadCommand(t *testing.T) {
	var p [PayloadLen]byte
	p[0] = 200
	if _, err := UnmarshalPayload(&p); err == nil {
		t.Error("want error for unknown relay command")
	}
}

func TestZeroAndSetDigest(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Digest: [4]byte{9, 8, 7, 6}, Data: []byte("d")}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	old := ZeroDigest(&p)
	if old != rc.Digest {
		t.Errorf("ZeroDigest returned %v, want %v", old, rc.Digest)
	}
	got, err := UnmarshalPayload(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != ([4]byte{}) {
		t.Error("digest not zeroed")
	}
	SetDigest(&p, [4]byte{1, 1, 2, 2})
	got, _ = UnmarshalPayload(&p)
	if got.Digest != ([4]byte{1, 1, 2, 2}) {
		t.Error("SetDigest did not take effect")
	}
}

func TestRelayCommandStrings(t *testing.T) {
	known := map[RelayCommand]string{
		RelayBegin: "BEGIN", RelayData: "DATA", RelayEnd: "END",
		RelayConnected: "CONNECTED", RelayExtend: "EXTEND",
		RelayExtended: "EXTENDED", RelayDrop: "DROP",
	}
	for cmd, want := range known {
		if cmd.String() != want {
			t.Errorf("%v.String() = %q, want %q", byte(cmd), cmd.String(), want)
		}
		if !cmd.Valid() {
			t.Errorf("%v should be valid", want)
		}
	}
	if RelayCommand(0).Valid() || RelayCommand(99).Valid() {
		t.Error("invalid relay commands reported valid")
	}
	if RelayCommand(99).String() != "RELAY(99)" {
		t.Error("unknown relay command formatting wrong")
	}
}

func TestExtendRoundTripProperty(t *testing.T) {
	f := func(addrRaw string, skin []byte) bool {
		addr := addrRaw
		if addr == "" {
			addr = "relay"
		}
		if len(addr) > 200 {
			addr = addr[:200]
		}
		if len(skin) > 200 {
			skin = skin[:200]
		}
		body, err := EncodeExtend(addr, skin)
		if err != nil {
			return false
		}
		gotAddr, gotSkin, err := DecodeExtend(body)
		if err != nil {
			return false
		}
		return gotAddr == addr && bytes.Equal(gotSkin, skin)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendErrors(t *testing.T) {
	if _, err := EncodeExtend("", nil); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := EncodeExtend("addr", make([]byte, RelayDataLen)); err == nil {
		t.Error("oversized extend body accepted")
	}
	for _, bad := range [][]byte{nil, {0}, {0, 10, 'a'}, {0, 1, 'a', 0}, {0, 1, 'a', 0, 9, 1}} {
		if _, _, err := DecodeExtend(bad); err == nil {
			t.Errorf("DecodeExtend(%v) accepted", bad)
		}
	}
	// Zero-length address inside a well-formed envelope.
	body := []byte{0, 0, 0, 1, 'x'}
	if _, _, err := DecodeExtend(body); err == nil {
		t.Error("empty decoded address accepted")
	}
}

func TestUnmarshalInto(t *testing.T) {
	c := Cell{Circ: 0xCAFE, Cmd: Relay}
	for i := range c.Payload {
		c.Payload[i] = byte(i * 3)
	}
	buf := c.Marshal()

	// The destination may hold stale state from a previous receive; every
	// byte must be overwritten.
	dst := Cell{Circ: 0xFFFF, Cmd: Destroy}
	for i := range dst.Payload {
		dst.Payload[i] = 0xEE
	}
	if err := UnmarshalInto(&dst, buf); err != nil {
		t.Fatal(err)
	}
	if dst != c {
		t.Error("UnmarshalInto result differs from source cell")
	}

	// And it must agree with the by-value decoder.
	byValue, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dst != byValue {
		t.Error("UnmarshalInto and Unmarshal disagree")
	}
}

func TestUnmarshalIntoErrors(t *testing.T) {
	var dst Cell
	if err := UnmarshalInto(&dst, make([]byte, Size-1)); err == nil {
		t.Error("want error for short buffer")
	}
	bad := make([]byte, Size)
	bad[4] = 99 // unknown command
	if err := UnmarshalInto(&dst, bad); err == nil {
		t.Error("want error for unknown command")
	}
}
