package cell

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the wire-format parsers. `go test` runs the seed
// corpus; `go test -fuzz=FuzzUnmarshal ./internal/cell` explores further.

func FuzzUnmarshal(f *testing.F) {
	good := Cell{Circ: 7, Cmd: Relay}
	f.Add(good.Marshal())
	f.Add(make([]byte, Size))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Round trip: re-marshaling a decoded cell reproduces the first
		// Size bytes of the input.
		if !bytes.Equal(c.Marshal(), data[:Size]) {
			t.Fatalf("round trip diverged")
		}
	})
}

func FuzzUnmarshalPayload(f *testing.F) {
	rc := RelayCell{Cmd: RelayData, Stream: 3, Data: []byte("seed")}
	p, _ := rc.MarshalPayload()
	f.Add(p[:])
	f.Add(make([]byte, PayloadLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < PayloadLen {
			return
		}
		var p [PayloadLen]byte
		copy(p[:], data)
		rc, err := UnmarshalPayload(&p)
		if err != nil {
			return
		}
		// Decoded cells always re-encode.
		p2, err := rc.MarshalPayload()
		if err != nil {
			t.Fatalf("decoded cell does not re-encode: %v", err)
		}
		rc2, err := UnmarshalPayload(&p2)
		if err != nil {
			t.Fatalf("re-encoded cell does not decode: %v", err)
		}
		if rc2.Cmd != rc.Cmd || rc2.Stream != rc.Stream || !bytes.Equal(rc2.Data, rc.Data) {
			t.Fatal("relay cell round trip diverged")
		}
	})
}

func FuzzDecodeExtend(f *testing.F) {
	seed, _ := EncodeExtend("relay7", bytes.Repeat([]byte{9}, 32))
	f.Add(seed)
	f.Add([]byte{0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		addr, skin, err := DecodeExtend(data)
		if err != nil {
			return
		}
		if addr == "" {
			t.Fatal("decoder returned empty address without error")
		}
		re, err := EncodeExtend(addr, skin)
		if err != nil {
			// Oversized fields cannot come from a valid envelope.
			t.Fatalf("decoded extend does not re-encode: %v", err)
		}
		addr2, skin2, err := DecodeExtend(re)
		if err != nil || addr2 != addr || !bytes.Equal(skin2, skin) {
			t.Fatal("extend round trip diverged")
		}
	})
}
