package cell

import (
	"encoding/binary"
	"fmt"
)

// RelayCommand is the command of a relay sub-cell.
type RelayCommand byte

// Relay commands. EXTEND/EXTENDED drive circuit construction; BEGIN /
// CONNECTED / DATA / END carry streams. Ting needs nothing more: its echo
// traffic is ordinary stream data.
const (
	RelayBegin     RelayCommand = 1
	RelayData      RelayCommand = 2
	RelayEnd       RelayCommand = 3
	RelayConnected RelayCommand = 4
	RelaySendme    RelayCommand = 5
	RelayExtend    RelayCommand = 6
	RelayExtended  RelayCommand = 7
	RelayDrop      RelayCommand = 10
)

// String names the relay command.
func (rc RelayCommand) String() string {
	switch rc {
	case RelayBegin:
		return "BEGIN"
	case RelayData:
		return "DATA"
	case RelayEnd:
		return "END"
	case RelayConnected:
		return "CONNECTED"
	case RelaySendme:
		return "SENDME"
	case RelayExtend:
		return "EXTEND"
	case RelayExtended:
		return "EXTENDED"
	case RelayDrop:
		return "DROP"
	default:
		return fmt.Sprintf("RELAY(%d)", byte(rc))
	}
}

// Valid reports whether rc is a known relay command.
func (rc RelayCommand) Valid() bool {
	switch rc {
	case RelayBegin, RelayData, RelayEnd, RelayConnected, RelaySendme, RelayExtend, RelayExtended, RelayDrop:
		return true
	}
	return false
}

// StreamID identifies a stream within a circuit. Stream 0 is reserved for
// circuit-level commands (EXTEND/EXTENDED).
type StreamID uint16

// RelayCell is the decrypted relay sub-header plus data. On the wire it
// occupies the full 507-byte cell payload, encrypted in onion layers.
type RelayCell struct {
	Cmd        RelayCommand
	Recognized uint16 // zero at the hop the cell is addressed to
	Stream     StreamID
	Digest     [4]byte // running-hash tag, see package onion
	Data       []byte  // at most RelayDataLen bytes
}

// MarshalPayload encodes rc into a full cell payload. The digest field is
// written as given; callers normally zero it, seal via onion.HopState, then
// re-marshal (the onion package provides helpers that operate in place).
func (rc *RelayCell) MarshalPayload() ([PayloadLen]byte, error) {
	var p [PayloadLen]byte
	if len(rc.Data) > RelayDataLen {
		return p, fmt.Errorf("%w: %d bytes", ErrDataTooLong, len(rc.Data))
	}
	p[0] = byte(rc.Cmd)
	binary.BigEndian.PutUint16(p[1:3], rc.Recognized)
	binary.BigEndian.PutUint16(p[3:5], uint16(rc.Stream))
	copy(p[5:9], rc.Digest[:])
	binary.BigEndian.PutUint16(p[9:11], uint16(len(rc.Data)))
	copy(p[RelayHeaderLen:], rc.Data)
	return p, nil
}

// UnmarshalPayload decodes a relay cell from a decrypted cell payload.
// It fails if the recognized field is nonzero (the layer was not ours), the
// command is unknown, or the length field is inconsistent.
func UnmarshalPayload(p *[PayloadLen]byte) (RelayCell, error) {
	var rc RelayCell
	rc.Cmd = RelayCommand(p[0])
	rc.Recognized = binary.BigEndian.Uint16(p[1:3])
	rc.Stream = StreamID(binary.BigEndian.Uint16(p[3:5]))
	copy(rc.Digest[:], p[5:9])
	n := binary.BigEndian.Uint16(p[9:11])
	if rc.Recognized != 0 {
		return rc, fmt.Errorf("cell: relay cell not recognized (%d)", rc.Recognized)
	}
	if !rc.Cmd.Valid() {
		return rc, fmt.Errorf("cell: unknown relay command %d", p[0])
	}
	if int(n) > RelayDataLen {
		return rc, fmt.Errorf("cell: relay length %d exceeds %d", n, RelayDataLen)
	}
	// Pooled: the decrypted data is the overlay's hottest allocation. The
	// consumer that finishes with it (exit writer, client reader) returns
	// it via PutBuf; paths that retain it just let the GC have it.
	rc.Data = append(GetBuf(), p[RelayHeaderLen:RelayHeaderLen+int(n)]...)
	return rc, nil
}

// Recognized reports whether the recognized field of an (already decrypted)
// payload is zero, i.e. the relay cell may be addressed to this hop. The
// digest check in package onion gives the authoritative answer.
func PayloadRecognized(p *[PayloadLen]byte) bool {
	return p[1] == 0 && p[2] == 0
}

// ZeroDigest clears the digest field of a marshaled payload in place,
// returning the old value; used when computing or verifying digests.
func ZeroDigest(p *[PayloadLen]byte) [4]byte {
	var old [4]byte
	copy(old[:], p[5:9])
	p[5], p[6], p[7], p[8] = 0, 0, 0, 0
	return old
}

// SetDigest writes d into the digest field of a marshaled payload.
func SetDigest(p *[PayloadLen]byte, d [4]byte) {
	copy(p[5:9], d[:])
}
