package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ting/internal/telemetry"
)

func get(t *testing.T, h http.Handler, url string, hdr map[string]string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if rec.Code != http.StatusNotModified && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body.String(), err)
		}
	}
	return rec, body
}

func TestHTTPNoEpochIs503(t *testing.T) {
	h := NewServer(NewPublisher(nil), nil).Handler()
	rec, body := get(t, h, "/v1/epoch", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("no Retry-After on 503")
	}
	if body["error"] == "" {
		t.Error("no error message")
	}
}

func TestHTTPEpochNamesRTT(t *testing.T) {
	reg := telemetry.New()
	pub := NewPublisher(reg)
	m := testMatrix(t, 4)
	snap, err := pub.Publish(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(pub, reg).Handler()

	rec, body := get(t, h, "/v1/epoch", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("epoch status %d: %v", rec.Code, body)
	}
	if rec.Header().Get("ETag") != snap.ETag() {
		t.Errorf("ETag header %q", rec.Header().Get("ETag"))
	}
	if body["epoch"] != float64(1) || body["relays"] != float64(4) {
		t.Errorf("epoch body %v", body)
	}
	pairs := body["pairs"].(map[string]any)
	if pairs["fresh"] != float64(5) || pairs["resumed"] != float64(1) {
		t.Errorf("pairs %v", pairs)
	}

	_, body = get(t, h, "/v1/names", nil)
	names := body["names"].([]any)
	if len(names) != 4 || names[0] != "relay00" {
		t.Errorf("names %v", names)
	}

	rec, body = get(t, h, "/v1/rtt?x=relay00&y=relay02", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rtt status %d: %v", rec.Code, body)
	}
	if body["rtt_ms"] != m.At(0, 2) {
		t.Errorf("rtt_ms %v, want %v", body["rtt_ms"], m.At(0, 2))
	}
	if body["provenance"] != "fresh" || body["epoch"] != float64(1) {
		t.Errorf("rtt body %v", body)
	}
	_, body = get(t, h, "/v1/rtt?x=relay00&y=relay01", nil)
	if body["provenance"] != "resumed" {
		t.Errorf("resumed pair reported %v", body["provenance"])
	}

	if got := reg.Counter("serve.lookups").Value(); got != 2 {
		t.Errorf("serve.lookups = %d", got)
	}
}

func TestHTTPErrors(t *testing.T) {
	pub := NewPublisher(nil)
	if _, err := pub.Publish(testMatrix(t, 4)); err != nil {
		t.Fatal(err)
	}
	h := NewServer(pub, nil).Handler()

	cases := []struct {
		url  string
		want int
	}{
		{"/v1/rtt", http.StatusBadRequest},
		{"/v1/rtt?x=relay00", http.StatusBadRequest},
		{"/v1/rtt?x=relay00&y=nope", http.StatusNotFound},
		{"/v1/paths?length=3&k=2", http.StatusBadRequest}, // no budget
		{"/v1/paths?length=zz&budget_ms=500", http.StatusBadRequest},
		{"/v1/tiv?top=-1", http.StatusBadRequest},
		{"/nope", http.StatusNotFound},
		{"/v2/epoch", http.StatusNotFound},
	}
	for _, c := range cases {
		rec, body := get(t, h, c.url, nil)
		if rec.Code != c.want {
			t.Errorf("GET %s = %d, want %d (%v)", c.url, rec.Code, c.want, body)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: no error message", c.url)
		}
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/epoch", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d", rec.Code)
	}
}

func TestHTTPETagCaching(t *testing.T) {
	reg := telemetry.New()
	pub := NewPublisher(reg)
	m := testMatrix(t, 4)
	snap, err := pub.Publish(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(pub, reg).Handler()

	rec, _ := get(t, h, "/v1/rtt?x=relay00&y=relay02", map[string]string{"If-None-Match": snap.ETag()})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("same-epoch conditional GET = %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", rec.Body.String())
	}
	if got := reg.Counter("serve.http.not_modified").Value(); got != 1 {
		t.Errorf("not_modified counter = %d", got)
	}

	// A new epoch invalidates the old validator: the same conditional GET now
	// returns fresh data under the new ETag.
	if err := m.Set("relay00", "relay02", 4242); err != nil {
		t.Fatal(err)
	}
	snap2, err := pub.Publish(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rec, body := get(t, h, "/v1/rtt?x=relay00&y=relay02", map[string]string{"If-None-Match": snap.ETag()})
	if rec.Code != http.StatusOK {
		t.Fatalf("stale conditional GET = %d", rec.Code)
	}
	if rec.Header().Get("ETag") != snap2.ETag() {
		t.Errorf("new ETag %q", rec.Header().Get("ETag"))
	}
	if body["rtt_ms"] != float64(4242) || body["epoch"] != float64(2) {
		t.Errorf("post-swap body %v", body)
	}
}

func TestHTTPPaths(t *testing.T) {
	pub := NewPublisher(nil)
	if _, err := pub.Publish(testMatrix(t, 8)); err != nil {
		t.Fatal(err)
	}
	h := NewServer(pub, nil).Handler()

	rec, body := get(t, h, "/v1/paths?length=3&budget_ms=100000&k=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("paths status %d: %v", rec.Code, body)
	}
	paths := body["paths"].([]any)
	if len(paths) == 0 || len(paths) > 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	last := -1.0
	for _, p := range paths {
		pm := p.(map[string]any)
		hops := pm["hops"].([]any)
		if len(hops) != 3 {
			t.Errorf("path length %d", len(hops))
		}
		rtt := pm["rtt_ms"].(float64)
		if rtt < last {
			t.Errorf("paths not sorted ascending: %v after %v", rtt, last)
		}
		last = rtt
	}

	// Same epoch + same query → identical answer (seed defaults to epoch).
	_, again := get(t, h, "/v1/paths?length=3&budget_ms=100000&k=3", nil)
	a, _ := json.Marshal(body)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Errorf("paths nondeterministic within an epoch:\n%s\n%s", a, b)
	}

	// An unsatisfiable budget is an empty recommendation, not an error.
	rec, body = get(t, h, "/v1/paths?length=3&budget_ms=0.001&k=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("tiny-budget status %d", rec.Code)
	}
	if got := body["paths"].([]any); len(got) != 0 {
		t.Errorf("tiny budget returned %d paths", len(got))
	}
}

func TestHTTPTIV(t *testing.T) {
	pub := NewPublisher(nil)
	m := testMatrix(t, 6)
	// Force a detour win: relay00→relay05 direct is huge, via relay02 tiny.
	if err := m.Set("relay00", "relay05", 900); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("relay00", "relay02", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("relay02", "relay05", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(m); err != nil {
		t.Fatal(err)
	}
	h := NewServer(pub, nil).Handler()

	rec, body := get(t, h, "/v1/tiv?top=2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("tiv status %d: %v", rec.Code, body)
	}
	if body["with_tiv"].(float64) < 1 {
		t.Fatalf("tiv body %v", body)
	}
	top := body["top"].([]any)
	if len(top) == 0 || len(top) > 2 {
		t.Fatalf("top %v", top)
	}
	best := top[0].(map[string]any)
	if best["x"] != "relay00" || best["y"] != "relay05" || best["via"] != "relay02" {
		t.Errorf("best detour %v", best)
	}
	if best["savings"].(float64) < 0.9 {
		t.Errorf("savings %v", best["savings"])
	}
}
