package serve

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ting/internal/pathsel"
	"ting/internal/telemetry"
)

// The HTTP query API, versioned under /v1 (the version lives in the path,
// so a breaking redesign ships as /v2 next to a still-working /v1):
//
//	GET /v1/epoch                  epoch metadata (seq, etag, age, coverage)
//	GET /v1/names                  the relay name table, index-aligned
//	GET /v1/rtt?x=A&y=B            one pair's RTT + provenance + epoch
//	GET /v1/paths?length=&budget_ms=&k=   k lowest-RTT circuits within budget
//	GET /v1/tiv?top=N              TIV summary + the N biggest detour wins
//
// Every 200 carries the epoch's ETag; a request presenting it back via
// If-None-Match is answered 304 with no body — the epoch-based client
// caching that makes polling the matrix between sweeps free.

// Server serves the /v1 query API over one Publisher.
type Server struct {
	pub *Publisher

	// PathAttempts bounds the rejection sampler behind /v1/paths.
	// Default 2000.
	PathAttempts int

	lookups  *telemetry.Counter
	requests *telemetry.Counter
	notMod   *telemetry.Counter
	errs5xx  *telemetry.Counter
	httpMs   *telemetry.Histogram
}

// NewServer creates the HTTP query server reporting into reg (nil = no-op
// metrics).
func NewServer(pub *Publisher, reg *telemetry.Registry) *Server {
	return &Server{
		pub:          pub,
		PathAttempts: 2000,
		lookups:      reg.Counter("serve.lookups"),
		requests:     reg.Counter("serve.http.requests"),
		notMod:       reg.Counter("serve.http.not_modified"),
		errs5xx:      reg.Counter("serve.http.5xx"),
		httpMs:       reg.Histogram("serve.http_ms"),
	}
}

// statusWriter records the status code a handler wrote, so the
// instrumentation wrapper can count 5xx and 304 responses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the /v1 API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/epoch", s.withSnapshot(s.handleEpoch))
	mux.HandleFunc("/v1/names", s.withSnapshot(s.handleNames))
	mux.HandleFunc("/v1/rtt", s.withSnapshot(s.handleRTT))
	mux.HandleFunc("/v1/paths", s.withSnapshot(s.handlePaths))
	mux.HandleFunc("/v1/tiv", s.withSnapshot(s.handleTIV))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "unknown endpoint; the API is versioned under /v1 (epoch, names, rtt, paths, tiv)")
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sw, r)
		s.requests.Inc()
		if sw.status >= 500 {
			s.errs5xx.Inc()
		}
		s.httpMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	})
}

// withSnapshot captures the current epoch once per request — the atomic
// load that replaces any locking against the sweeper — and handles the
// no-epoch-yet and If-None-Match cases uniformly. The handler then answers
// entirely from its snapshot: a swap mid-request cannot tear an answer
// across epochs.
func (s *Server) withSnapshot(h func(w http.ResponseWriter, r *http.Request, snap *Snapshot)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		snap := s.pub.Current()
		if snap == nil {
			// 503, not 404: the relays exist, the first sweep just has not
			// published yet. Retry-After tells pollers this is transient.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "no epoch published yet")
			return
		}
		w.Header().Set("ETag", snap.ETag())
		if r.Header.Get("If-None-Match") == snap.ETag() {
			s.notMod.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h(w, r, snap)
	}
}

type epochReply struct {
	Epoch     uint64    `json:"epoch"`
	ETag      string    `json:"etag"`
	Published time.Time `json:"published"`
	Relays    int       `json:"relays"`
	Pairs     provReply `json:"pairs"`
}

type provReply struct {
	Fresh     int `json:"fresh"`
	Resumed   int `json:"resumed"`
	Removed   int `json:"removed"`
	Predicted int `json:"predicted"`
	Missing   int `json:"missing"`
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	pc := snap.ProvCounts()
	writeJSON(w, epochReply{
		Epoch:     snap.Epoch(),
		ETag:      snap.ETag(),
		Published: snap.PublishedAt(),
		Relays:    snap.View().N(),
		Pairs: provReply{
			Fresh: pc.Fresh, Resumed: pc.Resumed, Removed: pc.Removed,
			Predicted: pc.Predicted, Missing: pc.Missing,
		},
	})
}

type namesReply struct {
	Epoch uint64   `json:"epoch"`
	Names []string `json:"names"`
}

func (s *Server) handleNames(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	writeJSON(w, namesReply{Epoch: snap.Epoch(), Names: snap.View().Names()})
}

type rttReply struct {
	Epoch      uint64  `json:"epoch"`
	X          string  `json:"x"`
	Y          string  `json:"y"`
	RTTMs      float64 `json:"rtt_ms"`
	Provenance string  `json:"provenance"`
	// Confidence is 1 for measured cells, the embedding's per-cell score
	// for predicted ones, 0 for missing.
	Confidence float64 `json:"confidence"`
}

func (s *Server) handleRTT(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	x, y := r.URL.Query().Get("x"), r.URL.Query().Get("y")
	if x == "" || y == "" {
		writeErr(w, http.StatusBadRequest, "need x and y relay names")
		return
	}
	view := snap.View()
	rtt, err := view.RTT(x, y)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	s.lookups.Inc()
	xi, _ := view.Index(x)
	yi, _ := view.Index(y)
	writeJSON(w, rttReply{
		Epoch:      snap.Epoch(),
		X:          x,
		Y:          y,
		RTTMs:      rtt,
		Provenance: view.Prov(x, y).String(),
		Confidence: view.ConfAt(xi, yi),
	})
}

type pathsReply struct {
	Epoch    uint64      `json:"epoch"`
	BudgetMs float64     `json:"budget_ms"`
	Length   int         `json:"length"`
	Paths    []pathReply `json:"paths"`
}

type pathReply struct {
	Hops  []string `json:"hops"`
	RTTMs float64  `json:"rtt_ms"`
}

// handlePaths recommends the k lowest-latency circuits of the requested
// length within a latency budget, feeding pathsel's rejection sampler and
// keeping the k best of its unbiased sample. The sampler seed defaults to
// the epoch, so within one epoch the same query returns the same answer —
// which is what makes the ETag an honest validator for this endpoint too.
func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	q := r.URL.Query()
	length, err := intParam(q.Get("length"), 3)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad length: "+err.Error())
		return
	}
	k, err := intParam(q.Get("k"), 3)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad k: "+err.Error())
		return
	}
	budget, err := floatParam(q.Get("budget_ms"), 0)
	if err != nil || budget <= 0 {
		writeErr(w, http.StatusBadRequest, "need a positive budget_ms")
		return
	}
	seed, err := intParam(q.Get("seed"), int(snap.Epoch()))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad seed: "+err.Error())
		return
	}
	attempts := s.PathAttempts
	if attempts <= 0 {
		attempts = 2000
	}
	view := snap.View()
	rng := rand.New(rand.NewSource(int64(seed)))
	// Oversample so "k lowest" is a recommendation, not just "first k that
	// fit": the sampler returns a uniform draw of qualifying circuits and we
	// keep the best tail of it.
	want := k * 8
	if want < 64 {
		want = 64
	}
	circs, err := pathsel.SelectLowLatency(view, length, budget, want, attempts, rng)
	if err != nil {
		// No qualifying circuit is an empty recommendation, not a server
		// error.
		writeJSON(w, pathsReply{Epoch: snap.Epoch(), BudgetMs: budget, Length: length, Paths: []pathReply{}})
		return
	}
	sort.Slice(circs, func(a, b int) bool { return circs[a].RTTms < circs[b].RTTms })
	if len(circs) > k {
		circs = circs[:k]
	}
	names := view.Names()
	out := make([]pathReply, len(circs))
	for i, c := range circs {
		hops := make([]string, len(c.Hops))
		for j, h := range c.Hops {
			hops[j] = names[h]
		}
		out[i] = pathReply{Hops: hops, RTTMs: c.RTTms}
	}
	writeJSON(w, pathsReply{Epoch: snap.Epoch(), BudgetMs: budget, Length: length, Paths: out})
}

type tivReply struct {
	Epoch    uint64     `json:"epoch"`
	Pairs    int        `json:"pairs"`
	WithTIV  int        `json:"with_tiv"`
	Fraction float64    `json:"fraction"`
	Top      []tivEntry `json:"top"`
}

type tivEntry struct {
	X        string  `json:"x"`
	Y        string  `json:"y"`
	Via      string  `json:"via"`
	DirectMs float64 `json:"direct_ms"`
	DetourMs float64 `json:"detour_ms"`
	Savings  float64 `json:"savings"`
	// Predicted flags a violation whose direct leg is a model-completed
	// cell rather than a measurement — a candidate, not evidence.
	// Violations whose witness (detour) legs are predicted are dropped
	// from the scan entirely.
	Predicted bool `json:"predicted,omitempty"`
}

func (s *Server) handleTIV(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	top, err := intParam(r.URL.Query().Get("top"), 5)
	if err != nil || top < 0 {
		writeErr(w, http.StatusBadRequest, "bad top")
		return
	}
	tivs, err := snap.TIVs()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	view := snap.View()
	n := view.N()
	reply := tivReply{
		Epoch:   snap.Epoch(),
		Pairs:   n * (n - 1) / 2,
		WithTIV: len(tivs),
		Top:     []tivEntry{},
	}
	if reply.Pairs > 0 {
		reply.Fraction = float64(reply.WithTIV) / float64(reply.Pairs)
	}
	// Top detours by savings; copy before sorting — the snapshot's TIV
	// slice is shared across requests.
	byWin := append([]pathsel.TIV(nil), tivs...)
	sort.Slice(byWin, func(a, b int) bool {
		return byWin[a].SavingsFraction() > byWin[b].SavingsFraction()
	})
	if len(byWin) > top {
		byWin = byWin[:top]
	}
	names := view.Names()
	for _, t := range byWin {
		reply.Top = append(reply.Top, tivEntry{
			X: names[t.S], Y: names[t.D], Via: names[t.R],
			DirectMs: t.DirectMs, DetourMs: t.DetourMs,
			Savings: t.SavingsFraction(), Predicted: t.Predicted,
		})
	}
	writeJSON(w, reply)
}

type errReply struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errReply{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v != v {
		return 0, errors.New("NaN")
	}
	return v, nil
}
