package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ting/internal/experiments"
	"ting/internal/telemetry"
	"ting/internal/ting"
)

// testMatrix builds an n-relay matrix with deterministic, distinct RTTs and
// fresh provenance everywhere except pair (0,1), which is marked resumed so
// provenance plumbing is observable end to end.
func testMatrix(t testing.TB, n int) *ting.Matrix {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("relay%02d", i)
	}
	m, err := ting.NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := m.Set(names[i], names[j], float64(10+i*7+j*13)); err != nil {
				t.Fatal(err)
			}
			if err := m.SetProv(names[i], names[j], ting.ProvFresh); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.SetProv(names[0], names[1], ting.ProvResumed); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublisherEpochsAndETags(t *testing.T) {
	reg := telemetry.New()
	pub := NewPublisher(reg)
	if pub.Current() != nil {
		t.Fatal("current snapshot before first publish")
	}
	m := testMatrix(t, 4)
	s1, err := pub.Publish(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch() != 1 {
		t.Fatalf("first epoch = %d", s1.Epoch())
	}
	if want := `"e1"`; s1.ETag() != want {
		t.Fatalf("etag = %s, want %s", s1.ETag(), want)
	}
	s2, err := pub.Publish(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("second epoch = %d", s2.Epoch())
	}
	if pub.Current() != s2 {
		t.Fatal("current is not the latest publish")
	}
	// The old snapshot must stay fully usable after the swap.
	if got := s1.View().At(0, 1); got != m.At(0, 1) {
		t.Fatalf("old snapshot At(0,1) = %v", got)
	}
	if got := reg.Counter("serve.epoch_swaps").Value(); got != 2 {
		t.Fatalf("serve.epoch_swaps = %d", got)
	}
	if got := reg.Gauge("serve.epoch").Value(); got != 2 {
		t.Fatalf("serve.epoch gauge = %d", got)
	}
	if _, err := pub.Publish(nil); err == nil {
		t.Fatal("publishing nil matrix succeeded")
	}
}

func TestSnapshotTIVsMemoized(t *testing.T) {
	pub := NewPublisher(nil)
	snap, err := pub.Publish(testMatrix(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	a, err := snap.TIVs()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.TIVs()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("TIV count changed between calls: %d then %d", len(a), len(b))
	}
	if len(a) > 0 && &a[0] != &b[0] {
		t.Fatal("TIVs recomputed instead of memoized")
	}
}

// TestEpochSwapRaceHammer is the atomic-swap correctness proof, meant to run
// under -race: one publisher churns epochs as fast as it can while many
// readers continuously resolve the current snapshot. Every observed snapshot
// must be internally consistent — its ETag, its view's epoch, and its data
// all belonging to the same publish — and epochs must be monotonic per
// reader. A torn swap (epoch from one publish, ETag or matrix from another)
// fails here.
func TestEpochSwapRaceHammer(t *testing.T) {
	const readers = 8
	publishes := 2000
	if testing.Short() {
		publishes = 200
	}

	pub := NewPublisher(nil)
	base := testMatrix(t, 8)

	// Each epoch's matrix encodes its own epoch in cell (0,1): RTT there is
	// 1000 + epoch. A reader can therefore verify the *data* matches the
	// epoch label, not just the metadata.
	stamp := func(epoch int) *ting.Matrix {
		m := base.Clone()
		if err := m.Set("relay00", "relay01", float64(1000+epoch)); err != nil {
			t.Fatal(err)
		}
		return m
	}

	stop := make(chan struct{})
	errc := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := pub.Current()
				if snap == nil {
					continue
				}
				epoch := snap.Epoch()
				if epoch < last {
					errc <- fmt.Errorf("epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if want := etagFor(epoch); snap.ETag() != want {
					errc <- fmt.Errorf("torn snapshot: epoch %d with etag %s", epoch, snap.ETag())
					return
				}
				if ve := snap.View().Epoch(); ve != epoch {
					errc <- fmt.Errorf("torn snapshot: snapshot epoch %d, view epoch %d", epoch, ve)
					return
				}
				if got, want := snap.View().At(0, 1), float64(1000+epoch); got != want {
					errc <- fmt.Errorf("torn snapshot: epoch %d serves data %v, want %v", epoch, got, want)
					return
				}
			}
		}()
	}

	for i := 1; i <= publishes; i++ {
		if _, err := pub.Publish(stamp(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := pub.Current().Epoch(); got != uint64(publishes) {
		t.Fatalf("final epoch = %d, want %d", got, publishes)
	}
}

// TestSweeperPublishesEpochs drives a real Monitor over the synthetic
// Internet and checks the sweeper's publish policy: epochs advance while
// sweeps measure, and the served matrix converges to the monitor's.
func TestSweeperPublishesEpochs(t *testing.T) {
	world, err := experiments.NewTestbedWorld(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := ting.NewMonitor(ting.MonitorConfig{
		NewMeasurer: func(worker int) (*ting.Measurer, error) {
			return world.Measurer(1, int64(worker)+100)
		},
		Names: world.Names,
		// Every pair is always stale, so every sweep measures and every sweep
		// publishes — the epoch-churn regime the serving plane must survive.
		MaxAge: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	epochs := 0
	sw := &Sweeper{
		Monitor:   mon,
		Publisher: pub,
		Interval:  time.Millisecond,
		OnSweep: func(stats ting.MonitorStats, snap *Snapshot, err error) {
			if err != nil {
				t.Errorf("sweep error: %v", err)
			}
			if snap != nil {
				epochs++
			}
			if epochs >= 3 {
				cancel()
			}
		},
	}
	if err := sw.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if epochs < 3 {
		t.Fatalf("published %d epochs, want ≥ 3", epochs)
	}
	snap := pub.Current()
	if snap == nil || snap.Epoch() < 3 {
		t.Fatalf("current snapshot %+v", snap)
	}
	// The served data is a real measurement: nonzero and matching the
	// monitor's own matrix.
	x, y := world.Names[0], world.Names[1]
	served, err := snap.View().RTT(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if served <= 0 {
		t.Fatalf("served RTT %v", served)
	}
	pc := snap.ProvCounts()
	if pc.Missing != 0 || pc.Fresh == 0 {
		t.Fatalf("prov counts fresh=%d missing=%d", pc.Fresh, pc.Missing)
	}
}

func TestSweeperRequiresMonitorAndPublisher(t *testing.T) {
	if err := (&Sweeper{}).Run(context.Background()); err == nil {
		t.Fatal("empty sweeper ran")
	}
}
