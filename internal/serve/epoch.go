// Package serve is the serving plane of the latency matrix: it turns the
// file-writing, exit-on-completion workflow of cmd/ting into a long-running
// query service. A sweeper keeps an all-pairs matrix fresh with continuous
// Monitor sweeps and publishes each completed sweep as an immutable epoch
// snapshot; readers — an HTTP/JSON API under /v1 and a compact
// length-prefixed binary protocol — resolve the current snapshot with one
// atomic pointer load and never lock against the sweeper.
//
// Epoch lifecycle:
//
//	sweep → Monitor.Matrix() (private clone) → ting.Publish(m, seq)
//	      → Publisher.Publish (atomic swap) → readers pick it up lock-free
//
// Old epochs stay valid for requests already holding them (readers capture
// the snapshot once per request, so a swap mid-request can never produce a
// torn answer) and are garbage-collected when the last reference drops.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ting/internal/pathsel"
	"ting/internal/telemetry"
	"ting/internal/ting"
)

// Snapshot is one published epoch: an immutable matrix view plus the
// serving metadata derived from it. All fields are computed at publish
// time except the TIV scan, which is O(N³) and therefore computed lazily,
// at most once per epoch, shared by every request that asks.
type Snapshot struct {
	view        *ting.PublishedMatrix
	etag        string
	publishedAt time.Time

	prov ting.ProvCount

	tivOnce sync.Once
	tivs    []pathsel.TIV
	tivErr  error
}

// View returns the epoch's immutable matrix view.
func (s *Snapshot) View() ting.MatrixView { return s.view }

// Epoch returns the snapshot's monotonic sequence number (≥ 1).
func (s *Snapshot) Epoch() uint64 { return s.view.Epoch() }

// ETag is the strong HTTP validator for this epoch, quotes included. It is
// derived from the epoch alone: two snapshots from one publisher never
// share an epoch, so equality of ETags is equality of snapshots.
func (s *Snapshot) ETag() string { return s.etag }

// PublishedAt is when the snapshot was swapped in.
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// ProvCounts reports the upper triangle's provenance tally, computed once
// at publish time.
func (s *Snapshot) ProvCounts() ting.ProvCount { return s.prov }

// TIVs returns the epoch's triangle-inequality violations, best detour per
// violating pair. The O(N³) scan runs on first call and is memoized for
// the snapshot's lifetime — an epoch's TIV answer never changes, so every
// subsequent request is a slice read.
func (s *Snapshot) TIVs() ([]pathsel.TIV, error) {
	s.tivOnce.Do(func() {
		s.tivs, s.tivErr = pathsel.FindTIVs(s.view)
	})
	return s.tivs, s.tivErr
}

// etagFor formats the epoch validator. Strong (no W/ prefix): a snapshot
// is byte-identical for its whole lifetime.
func etagFor(epoch uint64) string { return fmt.Sprintf("%q", fmt.Sprintf("e%d", epoch)) }

// Publisher owns the current-epoch pointer. Publish (the sweeper, rare) is
// serialized by a mutex; Current (every query, hot) is a single atomic
// load. This is the reader/writer separation the MatrixView split exists
// for: the sweeper keeps mutating its own *Matrix, and only immutable
// PublishedMatrix snapshots ever cross to the readers.
type Publisher struct {
	mu  sync.Mutex // serializes Publish: seq and cur move together
	seq uint64
	cur atomic.Pointer[Snapshot]

	now func() time.Time

	swaps      *telemetry.Counter
	epochGauge *telemetry.Gauge
}

// NewPublisher creates a publisher reporting into reg (nil = no-op
// metrics).
func NewPublisher(reg *telemetry.Registry) *Publisher {
	return &Publisher{
		now:        time.Now,
		swaps:      reg.Counter("serve.epoch_swaps"),
		epochGauge: reg.Gauge("serve.epoch"),
	}
}

// Publish stamps m as the next epoch and swaps it in atomically. The
// caller transfers ownership of m: it must be a private copy (Clone, or
// Monitor.Matrix()) that no writer will touch again.
func (p *Publisher) Publish(m *ting.Matrix) (*Snapshot, error) {
	if m == nil {
		return nil, errors.New("serve: publish nil matrix")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	seq := p.seq + 1
	pm, err := ting.Publish(m, seq)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		view:        pm,
		etag:        etagFor(seq),
		publishedAt: p.now(),
	}
	snap.prov = pm.ProvCounts()
	p.seq = seq
	p.cur.Store(snap)
	p.swaps.Inc()
	p.epochGauge.Set(int64(seq))
	return snap, nil
}

// Current returns the latest published snapshot, or nil before the first
// Publish. It is wait-free and safe from any number of goroutines; the
// returned snapshot stays valid (and internally consistent) no matter how
// many epochs are published after it.
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Sweeper runs continuous Monitor sweeps and publishes each completed
// sweep that measured anything as a new epoch. Sweep errors do not stop
// the loop: a dead relay must not wedge the serving plane, and the epoch
// still advances with whatever the sweep did measure.
type Sweeper struct {
	// Monitor drives the measurements. Required.
	Monitor *ting.Monitor
	// Publisher receives each sweep's snapshot. Required.
	Publisher *Publisher
	// Interval is the pause between sweeps. Default 1s.
	Interval time.Duration
	// OnSweep, if non-nil, is called after every sweep (and its publish, if
	// one happened) with the cumulative monitor stats, the published
	// snapshot (nil when the sweep changed nothing), and the sweep error.
	OnSweep func(stats ting.MonitorStats, snap *Snapshot, err error)
}

// Run sweeps until ctx is cancelled (which returns nil — a stopped sweeper
// is a request, not a failure). The first sweep runs immediately, and the
// first publish happens even if that sweep measured nothing, so a server
// over an already-complete matrix still comes up serving epoch 1.
func (s *Sweeper) Run(ctx context.Context) error {
	if s.Monitor == nil || s.Publisher == nil {
		return errors.New("serve: sweeper needs Monitor and Publisher")
	}
	interval := s.Interval
	if interval <= 0 {
		interval = time.Second
	}
	lastMeasured := -1 // forces the first publish
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		_, err := s.Monitor.Sweep(ctx)
		if ctx.Err() != nil {
			return nil
		}
		stats := s.Monitor.Stats()
		var snap *Snapshot
		// Publish only when the dataset can have changed: re-stamping an
		// identical matrix would churn epochs and invalidate client caches
		// for nothing.
		if stats.Measured != lastMeasured {
			lastMeasured = stats.Measured
			snap, _ = s.Publisher.Publish(s.Monitor.Matrix())
		}
		if s.OnSweep != nil {
			s.OnSweep(stats, snap, err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}
