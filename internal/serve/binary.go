package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"ting/internal/telemetry"
)

// The binary query protocol. HTTP/JSON is the integration surface; this is
// the lookup surface — the one the 10⁵+ lookups/sec load target is met on.
// It avoids per-request allocation, header parsing, and JSON encoding, and
// its batch op amortizes one round trip over thousands of cells.
//
// Framing (all integers big-endian):
//
//	request:  u32 length | u8 op    | body       (length covers op + body)
//	response: u32 length | u8 op|0x80 | u8 status | body
//
// Ops:
//
//	0x01 epoch      → u64 epoch | u32 n | u16 etagLen | etag bytes
//	0x02 names      → u64 epoch | u32 count | count × (u16 len | bytes)
//	0x03 rtt        u16 xLen | x | u16 yLen | y
//	                → u64 epoch | f64 rttMs | u8 prov
//	0x04 rttBatch   u32 count | count × (u32 i | u32 j)
//	                → u64 epoch | count × (f64 rttMs | u8 prov)
//	0x05 rttEx      u16 xLen | x | u16 yLen | y
//	                → u64 epoch | f64 rttMs | u8 prov | u8 conf (0..255 = 0..1)
//	0x06 rttBatchEx u32 count | count × (u32 i | u32 j)
//	                → u64 epoch | count × (f64 rttMs | u8 prov | u8 conf)
//
// Statuses: 0 ok; non-ok responses carry u16 msgLen | msg instead of the
// op's body. The epoch leads every ok body, so a client interleaving
// requests across an epoch swap can always tell which snapshot answered —
// the wire-level analogue of the HTTP ETag.
//
// The protocol is versioned by its op space: incompatible revisions take
// new op codes, and unknown ops fail closed with statusBadRequest.

const (
	opEpoch    = 0x01
	opNames    = 0x02
	opRTT      = 0x03
	opRTTBatch = 0x04
	// The Ex ops append a per-cell confidence byte to each cell — the
	// coordinate-completed matrix's measured-vs-predicted signal. New ops
	// rather than new fields on 0x03/0x04: old clients keep decoding the
	// exact frames they always got.
	opRTTEx      = 0x05
	opRTTBatchEx = 0x06

	respFlag = 0x80

	statusOK           = 0
	statusNoEpoch      = 1
	statusUnknownRelay = 2
	statusBadRequest   = 3
	statusOutOfRange   = 4

	// maxFrame bounds both request and response frames. Names of a 5000-relay
	// consensus fit comfortably; a hostile 4GB length prefix does not.
	maxFrame = 1 << 20

	// MaxBatch is the largest rttBatch count accepted in one frame.
	MaxBatch = 4096
)

// BinaryServer serves the binary protocol over a listener, answering every
// request from the publisher's current snapshot.
type BinaryServer struct {
	pub *Publisher

	lookups *telemetry.Counter
	conns   *telemetry.Counter
	binMs   *telemetry.Histogram
}

// NewBinaryServer creates a binary protocol server reporting into reg
// (nil = no-op metrics).
func NewBinaryServer(pub *Publisher, reg *telemetry.Registry) *BinaryServer {
	return &BinaryServer{
		pub:     pub,
		lookups: reg.Counter("serve.lookups"),
		conns:   reg.Counter("serve.bin.conns"),
		binMs:   reg.Histogram("serve.bin_ms"),
	}
}

// Serve accepts connections until ctx is cancelled or the listener fails.
// Each connection gets one goroutine; per-connection errors (malformed
// frames, hangups) close that connection only.
func (s *BinaryServer) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.conns.Inc()
		go func() {
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs the request loop. Responses are flushed only when no
// request bytes are already buffered — a client streaming a pipeline of
// requests gets its responses coalesced into large writes for free, while
// a ping-pong client still sees every response immediately.
func (s *BinaryServer) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	var req, resp []byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		length := binary.BigEndian.Uint32(hdr[:])
		if length < 1 || length > maxFrame {
			return
		}
		if cap(req) < int(length) {
			req = make([]byte, length)
		}
		req = req[:length]
		if _, err := io.ReadFull(r, req); err != nil {
			return
		}
		start := time.Now()
		resp = s.handle(req[0], req[1:], resp[:0])
		s.binMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		var rhdr [4]byte
		binary.BigEndian.PutUint32(rhdr[:], uint32(len(resp)))
		if _, err := w.Write(rhdr[:]); err != nil {
			return
		}
		if _, err := w.Write(resp); err != nil {
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// handle dispatches one request and appends the response frame body
// (op|0x80, status, payload) to out.
func (s *BinaryServer) handle(op byte, body, out []byte) []byte {
	snap := s.pub.Current()
	if snap == nil {
		return appendErr(out, op, statusNoEpoch, "no epoch published yet")
	}
	switch op {
	case opEpoch:
		view := snap.View()
		out = append(out, op|respFlag, statusOK)
		out = binary.BigEndian.AppendUint64(out, snap.Epoch())
		out = binary.BigEndian.AppendUint32(out, uint32(view.N()))
		out = appendString16(out, snap.ETag())
		return out

	case opNames:
		names := snap.View().Names()
		out = append(out, op|respFlag, statusOK)
		out = binary.BigEndian.AppendUint64(out, snap.Epoch())
		out = binary.BigEndian.AppendUint32(out, uint32(len(names)))
		for _, name := range names {
			out = appendString16(out, name)
		}
		return out

	case opRTT, opRTTEx:
		x, rest, ok := readString16(body)
		if !ok {
			return appendErr(out, op, statusBadRequest, "truncated x name")
		}
		y, rest, ok := readString16(rest)
		if !ok || len(rest) != 0 {
			return appendErr(out, op, statusBadRequest, "truncated y name")
		}
		view := snap.View()
		i, ok := view.Index(x)
		if !ok {
			return appendErr(out, op, statusUnknownRelay, "unknown relay "+x)
		}
		j, ok := view.Index(y)
		if !ok {
			return appendErr(out, op, statusUnknownRelay, "unknown relay "+y)
		}
		s.lookups.Inc()
		out = append(out, op|respFlag, statusOK)
		out = binary.BigEndian.AppendUint64(out, snap.Epoch())
		out = binary.BigEndian.AppendUint64(out, floatBits(view.At(i, j)))
		out = append(out, byte(view.ProvAt(i, j)))
		if op == opRTTEx {
			out = append(out, confByte(view.ConfAt(i, j)))
		}
		return out

	case opRTTBatch, opRTTBatchEx:
		if len(body) < 4 {
			return appendErr(out, op, statusBadRequest, "truncated batch count")
		}
		count := binary.BigEndian.Uint32(body)
		if count == 0 || count > MaxBatch {
			return appendErr(out, op, statusBadRequest,
				fmt.Sprintf("batch count %d outside [1,%d]", count, MaxBatch))
		}
		body = body[4:]
		if len(body) != int(count)*8 {
			return appendErr(out, op, statusBadRequest, "batch body length mismatch")
		}
		view := snap.View()
		n := uint32(view.N())
		// Validate the whole batch before emitting any cells: a response is
		// either complete or an error, never a prefix.
		for k := uint32(0); k < count; k++ {
			i := binary.BigEndian.Uint32(body[k*8:])
			j := binary.BigEndian.Uint32(body[k*8+4:])
			if i >= n || j >= n {
				return appendErr(out, op, statusOutOfRange,
					fmt.Sprintf("index (%d,%d) outside %d relays", i, j, n))
			}
		}
		s.lookups.Add(int64(count))
		out = append(out, op|respFlag, statusOK)
		out = binary.BigEndian.AppendUint64(out, snap.Epoch())
		for k := uint32(0); k < count; k++ {
			i := int(binary.BigEndian.Uint32(body[k*8:]))
			j := int(binary.BigEndian.Uint32(body[k*8+4:]))
			out = binary.BigEndian.AppendUint64(out, floatBits(view.At(i, j)))
			out = append(out, byte(view.ProvAt(i, j)))
			if op == opRTTBatchEx {
				out = append(out, confByte(view.ConfAt(i, j)))
			}
		}
		return out

	default:
		return appendErr(out, op, statusBadRequest, fmt.Sprintf("unknown op 0x%02x", op))
	}
}

func appendErr(out []byte, op byte, status byte, msg string) []byte {
	out = append(out, op|respFlag, status)
	return appendString16(out, msg)
}

func appendString16(out []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	out = binary.BigEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func readString16(b []byte) (s string, rest []byte, ok bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, false
	}
	return string(b[2 : 2+n]), b[2+n:], true
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// confByte quantizes a [0,1] confidence to the wire's u8, saturating.
func confByte(c float64) byte {
	if c <= 0 {
		return 0
	}
	if c >= 1 {
		return 255
	}
	return byte(c*255 + 0.5)
}

// statusText names a wire status for client error messages.
func statusText(status byte) string {
	switch status {
	case statusOK:
		return "ok"
	case statusNoEpoch:
		return "no epoch"
	case statusUnknownRelay:
		return "unknown relay"
	case statusBadRequest:
		return "bad request"
	case statusOutOfRange:
		return "index out of range"
	default:
		return fmt.Sprintf("status %d", status)
	}
}
