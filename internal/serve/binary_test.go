package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"

	"ting/internal/ting"
)

// startBinary boots a BinaryServer on loopback and returns a connected
// client. Everything is torn down with the test.
func startBinary(t *testing.T, pub *Publisher) *BinClient {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := NewBinaryServer(pub, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("binary server: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	c, err := DialBinary(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBinaryEpochNamesRTT(t *testing.T) {
	pub := NewPublisher(nil)
	m := testMatrix(t, 4)
	snap, err := pub.Publish(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	c := startBinary(t, pub)

	info, err := c.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Relays != 4 || info.ETag != snap.ETag() {
		t.Fatalf("epoch info %+v", info)
	}

	epoch, names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || len(names) != 4 || names[2] != "relay02" {
		t.Fatalf("names (epoch %d) %v", epoch, names)
	}

	epoch, rtt, prov, err := c.RTT("relay00", "relay02")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || rtt != m.At(0, 2) || prov != ting.ProvFresh {
		t.Fatalf("rtt epoch=%d v=%v prov=%v", epoch, rtt, prov)
	}
	_, _, prov, err = c.RTT("relay00", "relay01")
	if err != nil {
		t.Fatal(err)
	}
	if prov != ting.ProvResumed {
		t.Fatalf("resumed pair reported %v", prov)
	}

	pairs := []uint32{0, 1, 0, 2, 3, 1}
	epoch, cells, err := c.RTTBatch(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || len(cells) != 3 {
		t.Fatalf("batch epoch=%d cells=%d", epoch, len(cells))
	}
	for k := 0; k < len(cells); k++ {
		i, j := int(pairs[k*2]), int(pairs[k*2+1])
		if cells[k].RTTms != m.At(i, j) || cells[k].Prov != m.ProvAt(i, j) {
			t.Errorf("cell %d (%d,%d) = %+v", k, i, j, cells[k])
		}
	}
}

func TestBinaryStatuses(t *testing.T) {
	empty := NewPublisher(nil)
	c := startBinary(t, empty)
	if _, err := c.Epoch(); !isStatus(err, statusNoEpoch) {
		t.Errorf("no-epoch error = %v", err)
	}

	pub := NewPublisher(nil)
	if _, err := pub.Publish(testMatrix(t, 4)); err != nil {
		t.Fatal(err)
	}
	c2 := startBinary(t, pub)
	if _, _, _, err := c2.RTT("relay00", "nope"); !isStatus(err, statusUnknownRelay) {
		t.Errorf("unknown relay error = %v", err)
	}
	if _, _, err := c2.RTTBatch([]uint32{0, 99}, nil); !isStatus(err, statusOutOfRange) {
		t.Errorf("out-of-range error = %v", err)
	}
	// Unknown op fails closed, and the connection survives to answer the
	// next request.
	c2.req = c2.req[:0]
	if _, err := c2.roundTrip(0x7f); !isStatus(err, statusBadRequest) {
		t.Errorf("unknown op error = %v", err)
	}
	if _, err := c2.Epoch(); err != nil {
		t.Errorf("connection dead after bad op: %v", err)
	}
}

func isStatus(err error, status byte) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == status
}

// TestHTTPBinaryCrossCheck is the acceptance golden: for one epoch, the
// HTTP and binary protocols must return byte-for-byte identical answers —
// same epoch, same ETag, same names, and same (RTT, provenance) for every
// pair, whether looked up by name over HTTP, by name over the wire, or by
// index in a batch.
func TestHTTPBinaryCrossCheck(t *testing.T) {
	pub := NewPublisher(nil)
	m := testMatrix(t, 8)
	if _, err := pub.Publish(m); err != nil {
		t.Fatal(err)
	}
	h := NewServer(pub, nil).Handler()
	c := startBinary(t, pub)

	// Epoch metadata.
	_, epochBody := get(t, h, "/v1/epoch", nil)
	info, err := c.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(epochBody["epoch"].(float64)) != info.Epoch ||
		int(epochBody["relays"].(float64)) != info.Relays ||
		epochBody["etag"].(string) != info.ETag {
		t.Fatalf("epoch mismatch: http %v, binary %+v", epochBody, info)
	}

	// Name table.
	_, namesBody := get(t, h, "/v1/names", nil)
	_, names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	httpNames := namesBody["names"].([]any)
	if len(httpNames) != len(names) {
		t.Fatalf("name count: http %d, binary %d", len(httpNames), len(names))
	}
	for i := range names {
		if httpNames[i].(string) != names[i] {
			t.Fatalf("name %d: http %v, binary %v", i, httpNames[i], names[i])
		}
	}

	// Every pair, three ways.
	n := len(names)
	var pairs []uint32
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, uint32(i), uint32(j))
		}
	}
	batchEpoch, cells, err := c.RTTBatch(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(cells); k++ {
		i, j := int(pairs[k*2]), int(pairs[k*2+1])
		x, y := names[i], names[j]

		rec, httpBody := get(t, h, fmt.Sprintf("/v1/rtt?x=%s&y=%s", x, y), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("http rtt %s/%s: %d", x, y, rec.Code)
		}
		binEpoch, binRTT, binProv, err := c.RTT(x, y)
		if err != nil {
			t.Fatal(err)
		}

		if httpBody["rtt_ms"].(float64) != binRTT || binRTT != cells[k].RTTms {
			t.Errorf("pair %s/%s RTT: http %v, binary %v, batch %v",
				x, y, httpBody["rtt_ms"], binRTT, cells[k].RTTms)
		}
		if httpBody["provenance"].(string) != binProv.String() || binProv != cells[k].Prov {
			t.Errorf("pair %s/%s prov: http %v, binary %v, batch %v",
				x, y, httpBody["provenance"], binProv, cells[k].Prov)
		}
		if uint64(httpBody["epoch"].(float64)) != binEpoch || binEpoch != batchEpoch {
			t.Errorf("pair %s/%s epoch: http %v, binary %v, batch %v",
				x, y, httpBody["epoch"], binEpoch, batchEpoch)
		}
	}
}

// TestBinaryConcurrentClientsAcrossSwaps runs many clients hammering the
// binary server while the publisher churns epochs — the serving plane's
// whole point, under -race. Every batch answer must be internally
// consistent with the epoch that produced it (the stamped cell trick from
// the publisher hammer test).
func TestBinaryConcurrentClientsAcrossSwaps(t *testing.T) {
	pub := NewPublisher(nil)
	base := testMatrix(t, 8)
	stamp := func(epoch int) *ting.Matrix {
		m := base.Clone()
		if err := m.Set("relay00", "relay01", float64(1000+epoch)); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if _, err := pub.Publish(stamp(1)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go NewBinaryServer(pub, nil).Serve(ctx, ln)

	const clients = 4
	iters := 300
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialBinary(ln.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			var cells []BatchCell
			for i := 0; i < iters; i++ {
				epoch, out, err := c.RTTBatch([]uint32{0, 1, 2, 3}, cells)
				if err != nil {
					errc <- err
					return
				}
				cells = out
				if want := float64(1000 + epoch); cells[0].RTTms != want {
					errc <- fmt.Errorf("epoch %d served stamped cell %v, want %v",
						epoch, cells[0].RTTms, want)
					return
				}
			}
		}()
	}
	for i := 2; i <= 50; i++ {
		if _, err := pub.Publish(stamp(i)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestBinaryExOps drives the confidence-carrying ops (0x05/0x06) over a
// matrix mixing measured and predicted cells, and cross-checks them
// against the HTTP surface and the classic ops.
func TestBinaryExOps(t *testing.T) {
	pub := NewPublisher(nil)
	m := testMatrix(t, 4)
	// Overwrite one cell as a completion-layer prediction at 0.8 confidence.
	if err := m.SetPredicted("relay02", "relay03", 55.5, 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(m.Clone()); err != nil {
		t.Fatal(err)
	}
	c := startBinary(t, pub)
	h := NewServer(pub, nil).Handler()

	// Single-pair Ex lookup: measured cell.
	epoch, rtt, prov, conf, err := c.RTTEx("relay00", "relay02")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || rtt != m.At(0, 2) || prov != ting.ProvFresh || conf != 1 {
		t.Fatalf("measured Ex = epoch %d rtt %v prov %v conf %v", epoch, rtt, prov, conf)
	}
	// Predicted cell: provenance and quantized confidence survive the wire.
	_, rtt, prov, conf, err = c.RTTEx("relay02", "relay03")
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 55.5 || prov != ting.ProvPredicted {
		t.Fatalf("predicted Ex = rtt %v prov %v", rtt, prov)
	}
	if conf != m.Conf("relay02", "relay03") {
		t.Fatalf("wire conf %v != matrix conf %v", conf, m.Conf("relay02", "relay03"))
	}

	// The classic op still answers with its original 17-byte frame.
	_, rttOld, provOld, err := c.RTT("relay02", "relay03")
	if err != nil {
		t.Fatal(err)
	}
	if rttOld != rtt || provOld != prov {
		t.Fatalf("op 0x03 drifted from 0x05: (%v,%v) vs (%v,%v)", rttOld, provOld, rtt, prov)
	}

	// Batch Ex over every pair, cross-checked against the HTTP confidence.
	var pairs []uint32
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			pairs = append(pairs, uint32(i), uint32(j))
		}
	}
	_, cells, err := c.RTTBatchEx(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	for k := range cells {
		i, j := int(pairs[k*2]), int(pairs[k*2+1])
		if cells[k].RTTms != m.At(i, j) || cells[k].Prov != m.ProvAt(i, j) || cells[k].Conf != m.ConfAt(i, j) {
			t.Errorf("batchEx cell %d (%d,%d) = %+v", k, i, j, cells[k])
		}
		rec, body := get(t, h, fmt.Sprintf("/v1/rtt?x=%s&y=%s", names[i], names[j]), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("http rtt: %d", rec.Code)
		}
		if body["confidence"].(float64) != cells[k].Conf {
			t.Errorf("pair (%d,%d) confidence: http %v, binary %v", i, j, body["confidence"], cells[k].Conf)
		}
	}

	// Reusing the out slice must not allocate a fresh one.
	_, cells2, err := c.RTTBatchEx(pairs[:4], cells)
	if err != nil {
		t.Fatal(err)
	}
	if &cells2[0] != &cells[0] {
		t.Error("RTTBatchEx reallocated a reusable out slice")
	}
}
