package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"

	"ting/internal/ting"
)

// BinClient speaks the binary protocol over one connection. It is NOT safe
// for concurrent use — the protocol is strictly request/response per
// connection, and the load generator's answer to that is one client per
// goroutine, not a lock.
type BinClient struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// scratch buffers reused across calls so the steady-state request path
	// does not allocate.
	req  []byte
	resp []byte
}

// DialBinary connects to a binary protocol server.
func DialBinary(addr string) (*BinClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewBinClient(conn), nil
}

// NewBinClient wraps an established connection (any net.Conn, which is what
// lets tests run the protocol over net.Pipe).
func NewBinClient(conn net.Conn) *BinClient {
	return &BinClient{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// Close closes the connection.
func (c *BinClient) Close() error { return c.conn.Close() }

// roundTrip sends one frame (op + c.req) and reads the response body into
// c.resp, verifying the op echo and returning the payload past the status
// byte. Wire errors are returned as *StatusError.
func (c *BinClient) roundTrip(op byte) ([]byte, error) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(1+len(c.req)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if err := c.w.WriteByte(op); err != nil {
		return nil, err
	}
	if _, err := c.w.Write(c.req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < 2 || length > maxFrame {
		return nil, fmt.Errorf("serve: response frame length %d", length)
	}
	if cap(c.resp) < int(length) {
		c.resp = make([]byte, length)
	}
	c.resp = c.resp[:length]
	if _, err := io.ReadFull(c.r, c.resp); err != nil {
		return nil, err
	}
	if c.resp[0] != op|respFlag {
		return nil, fmt.Errorf("serve: response op 0x%02x for request 0x%02x", c.resp[0], op)
	}
	if status := c.resp[1]; status != statusOK {
		msg, _, _ := readString16(c.resp[2:])
		return nil, &StatusError{Status: status, Msg: msg}
	}
	return c.resp[2:], nil
}

// StatusError is a non-ok wire status from the server.
type StatusError struct {
	Status byte
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: %s: %s", statusText(e.Status), e.Msg)
}

// EpochInfo is the epoch op's answer.
type EpochInfo struct {
	Epoch  uint64
	Relays int
	ETag   string
}

// Epoch queries the current epoch's metadata.
func (c *BinClient) Epoch() (EpochInfo, error) {
	c.req = c.req[:0]
	body, err := c.roundTrip(opEpoch)
	if err != nil {
		return EpochInfo{}, err
	}
	if len(body) < 12 {
		return EpochInfo{}, fmt.Errorf("serve: short epoch body (%d bytes)", len(body))
	}
	info := EpochInfo{
		Epoch:  binary.BigEndian.Uint64(body),
		Relays: int(binary.BigEndian.Uint32(body[8:])),
	}
	etag, _, ok := readString16(body[12:])
	if !ok {
		return EpochInfo{}, fmt.Errorf("serve: truncated etag")
	}
	info.ETag = etag
	return info, nil
}

// Names fetches the relay name table, index-aligned with RTTBatch indices,
// plus the epoch it belongs to.
func (c *BinClient) Names() (uint64, []string, error) {
	c.req = c.req[:0]
	body, err := c.roundTrip(opNames)
	if err != nil {
		return 0, nil, err
	}
	if len(body) < 12 {
		return 0, nil, fmt.Errorf("serve: short names body (%d bytes)", len(body))
	}
	epoch := binary.BigEndian.Uint64(body)
	count := binary.BigEndian.Uint32(body[8:])
	rest := body[12:]
	names := make([]string, 0, count)
	for k := uint32(0); k < count; k++ {
		var name string
		var ok bool
		name, rest, ok = readString16(rest)
		if !ok {
			return 0, nil, fmt.Errorf("serve: truncated name %d/%d", k, count)
		}
		names = append(names, name)
	}
	return epoch, names, nil
}

// RTT looks up one pair by name.
func (c *BinClient) RTT(x, y string) (epoch uint64, rttMs float64, prov ting.Provenance, err error) {
	c.req = appendString16(c.req[:0], x)
	c.req = appendString16(c.req, y)
	body, err := c.roundTrip(opRTT)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(body) != 17 {
		return 0, 0, 0, fmt.Errorf("serve: rtt body %d bytes", len(body))
	}
	return binary.BigEndian.Uint64(body),
		math.Float64frombits(binary.BigEndian.Uint64(body[8:])),
		ting.Provenance(body[16]), nil
}

// RTTEx looks up one pair by name, including the cell's confidence
// (op 0x05). Confidence is 1 for measured cells, the embedding's score
// for predicted ones, 0 for missing.
func (c *BinClient) RTTEx(x, y string) (epoch uint64, rttMs float64, prov ting.Provenance, conf float64, err error) {
	c.req = appendString16(c.req[:0], x)
	c.req = appendString16(c.req, y)
	body, err := c.roundTrip(opRTTEx)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(body) != 18 {
		return 0, 0, 0, 0, fmt.Errorf("serve: rttEx body %d bytes", len(body))
	}
	return binary.BigEndian.Uint64(body),
		math.Float64frombits(binary.BigEndian.Uint64(body[8:])),
		ting.Provenance(body[16]),
		float64(body[17]) / 255, nil
}

// BatchCell is one answer of an RTTBatch call.
type BatchCell struct {
	RTTms float64
	Prov  ting.Provenance
}

// BatchCellEx is one answer of an RTTBatchEx call: a BatchCell plus the
// cell's confidence in [0, 1].
type BatchCellEx struct {
	RTTms float64
	Prov  ting.Provenance
	Conf  float64
}

// RTTBatch looks up count pairs by index in one round trip. pairs is flat
// (i0, j0, i1, j1, …); out is reused when it has capacity, so a steady-state
// caller allocates nothing. Returns the answering epoch.
func (c *BinClient) RTTBatch(pairs []uint32, out []BatchCell) (uint64, []BatchCell, error) {
	if len(pairs)%2 != 0 {
		return 0, out, fmt.Errorf("serve: odd pair-index count %d", len(pairs))
	}
	count := len(pairs) / 2
	if count == 0 || count > MaxBatch {
		return 0, out, fmt.Errorf("serve: batch count %d outside [1,%d]", count, MaxBatch)
	}
	c.req = binary.BigEndian.AppendUint32(c.req[:0], uint32(count))
	for _, v := range pairs {
		c.req = binary.BigEndian.AppendUint32(c.req, v)
	}
	body, err := c.roundTrip(opRTTBatch)
	if err != nil {
		return 0, out, err
	}
	want := 8 + count*9
	if len(body) != want {
		return 0, out, fmt.Errorf("serve: batch body %d bytes, want %d", len(body), want)
	}
	epoch := binary.BigEndian.Uint64(body)
	body = body[8:]
	if cap(out) < count {
		out = make([]BatchCell, count)
	}
	out = out[:count]
	for k := 0; k < count; k++ {
		out[k] = BatchCell{
			RTTms: math.Float64frombits(binary.BigEndian.Uint64(body[k*9:])),
			Prov:  ting.Provenance(body[k*9+8]),
		}
	}
	return epoch, out, nil
}

// RTTBatchEx is RTTBatch over op 0x06: each cell additionally carries its
// confidence. pairs is flat (i0, j0, i1, j1, …); out is reused when it has
// capacity.
func (c *BinClient) RTTBatchEx(pairs []uint32, out []BatchCellEx) (uint64, []BatchCellEx, error) {
	if len(pairs)%2 != 0 {
		return 0, out, fmt.Errorf("serve: odd pair-index count %d", len(pairs))
	}
	count := len(pairs) / 2
	if count == 0 || count > MaxBatch {
		return 0, out, fmt.Errorf("serve: batch count %d outside [1,%d]", count, MaxBatch)
	}
	c.req = binary.BigEndian.AppendUint32(c.req[:0], uint32(count))
	for _, v := range pairs {
		c.req = binary.BigEndian.AppendUint32(c.req, v)
	}
	body, err := c.roundTrip(opRTTBatchEx)
	if err != nil {
		return 0, out, err
	}
	want := 8 + count*10
	if len(body) != want {
		return 0, out, fmt.Errorf("serve: batchEx body %d bytes, want %d", len(body), want)
	}
	epoch := binary.BigEndian.Uint64(body)
	body = body[8:]
	if cap(out) < count {
		out = make([]BatchCellEx, count)
	}
	out = out[:count]
	for k := 0; k < count; k++ {
		out[k] = BatchCellEx{
			RTTms: math.Float64frombits(binary.BigEndian.Uint64(body[k*10:])),
			Prov:  ting.Provenance(body[k*10+8]),
			Conf:  float64(body[k*10+9]) / 255,
		}
	}
	return epoch, out, nil
}
