package deanon

import (
	"math/rand"
	"testing"
)

func TestPaddedScenarioAddsOnly(t *testing.T) {
	m, _ := worldMatrix(t, 20, 30)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 50; i++ {
		sc, err := NewPaddedScenario(m, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sc.PaddingMs < 0 || sc.PaddingMs > 120 {
			t.Fatalf("padding %v out of [0, 3×40]", sc.PaddingMs)
		}
		base := m.At(sc.Circuit().Source, sc.Circuit().Entry) +
			m.At(sc.Circuit().Entry, sc.Circuit().Middle) +
			m.At(sc.Circuit().Middle, sc.Circuit().Exit) + sc.AttackerExitRTT
		if sc.E2E < base {
			t.Fatal("padding reduced E2E")
		}
	}
	if _, err := NewPaddedScenario(m, -1, rng); err == nil {
		t.Error("negative padding accepted")
	}
}

func TestPaddingNeverBreaksConservatism(t *testing.T) {
	// Padding only inflates E2E, so the too-large rules must still never
	// prune true members — the attack stays correct, just slower.
	m, _ := worldMatrix(t, 25, 32)
	rng := rand.New(rand.NewSource(33))
	informed := &Informed{UseMu: true}
	for i := 0; i < 40; i++ {
		sc, err := NewPaddedScenario(m, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := informed.Run(sc.Scenario, rng)
		if res.Found != 2 {
			t.Fatalf("informed attack failed under padding (found %d)", res.Found)
		}
	}
}

func TestPaddingSweepErodesAdvantage(t *testing.T) {
	m, _ := worldMatrix(t, 40, 34)
	pts, err := PaddingSweep(m, []float64{0, 200}, 250, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	s0, s200 := pts[0].Speedup(), pts[1].Speedup()
	t.Logf("speedup: no padding %.2fx, 200ms padding %.2fx (overhead %.0fms)",
		s0, s200, pts[1].MedianE2EOverheadMs)
	if s0 <= 1.0 {
		t.Errorf("unpadded speedup %.2f, want > 1", s0)
	}
	if s200 >= s0 {
		t.Errorf("padding did not erode the attacker's advantage: %.2f → %.2f", s0, s200)
	}
	if pts[1].MedianE2EOverheadMs <= 0 {
		t.Error("padding has no measured latency cost")
	}
	if _, err := PaddingSweep(m, []float64{0}, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestVariableScenario(t *testing.T) {
	m, _ := worldMatrix(t, 20, 36)
	rng := rand.New(rand.NewSource(37))
	lengths := map[int]int{}
	for i := 0; i < 200; i++ {
		v, err := NewVariableScenario(m, 3, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		l := len(v.Members) + 1
		if l < 3 || l > 5 {
			t.Fatalf("length %d out of [3,5]", l)
		}
		lengths[l]++
		seen := map[int]bool{v.Exit: true, v.Source: true}
		for _, mbr := range v.Members {
			if seen[mbr] {
				t.Fatal("repeated node in variable circuit")
			}
			seen[mbr] = true
			if !v.Probe(mbr) {
				t.Fatal("oracle misses a member")
			}
		}
		if v.Probe(v.Exit) || v.Probe(v.Source) {
			t.Fatal("oracle false positive")
		}
		if v.E2E <= 0 {
			t.Fatal("degenerate E2E")
		}
	}
	for l := 3; l <= 5; l++ {
		if lengths[l] == 0 {
			t.Errorf("length %d never drawn", l)
		}
	}
	if _, err := NewVariableScenario(m, 2, 5, rng); err == nil {
		t.Error("minLen 2 accepted")
	}
	if _, err := NewVariableScenario(m, 5, 3, rng); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewVariableScenario(m, 3, 19, rng); err == nil {
		t.Error("oversized circuits accepted")
	}
}

func TestLengthDefenseSlowsAttack(t *testing.T) {
	m, _ := worldMatrix(t, 40, 38)
	fixed, err := LengthDefense(m, 3, 3, 250, 39)
	if err != nil {
		t.Fatal(err)
	}
	random, err := LengthDefense(m, 3, 6, 250, 39)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fixed 3-hop: rtt-order %.3f vs random %.3f; randomized 3-6: rtt-order %.3f vs random %.3f",
		fixed.MedianFracRTTOrder, fixed.MedianFracRandomOrder,
		random.MedianFracRTTOrder, random.MedianFracRandomOrder)
	// RTT ordering helps against fixed-length circuits…
	if fixed.MedianFracRTTOrder >= fixed.MedianFracRandomOrder {
		t.Errorf("RTT ordering useless even without the defense")
	}
	// …and the randomized defense costs the attacker more probes overall.
	if random.MedianFracRTTOrder <= fixed.MedianFracRTTOrder {
		t.Errorf("randomized lengths did not slow the RTT-informed attack: %.3f vs %.3f",
			random.MedianFracRTTOrder, fixed.MedianFracRTTOrder)
	}
	if random.MedianExtraHops <= 0 {
		t.Error("randomized defense shows no resource cost")
	}
	if fixed.MedianExtraHops != 0 {
		t.Error("fixed 3-hop circuits report extra hops")
	}
	if _, err := LengthDefense(m, 3, 4, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}
