package deanon

import (
	"errors"
	"fmt"
	"math/rand"

	"ting/internal/stats"
	"ting/internal/ting"
)

// This file implements the defenses §5.1.3 sketches against RTT-informed
// deanonymization, so their cost/benefit can be quantified:
//
//   - latency padding: relays "artificially inflate latencies within a
//     circuit", which the Tor designers were unwilling to pay for;
//   - randomized circuit length: "randomize the length of circuits",
//     which slows the attack but costs resources.
//
// Both defenses only ever *add* delay, so the attacker's too-large-RTT
// rules remain conservative (they can never exclude a true circuit
// member); what degrades is the informativeness of the RTT signal.

// PaddedScenario wraps a Scenario whose observed end-to-end RTT includes
// per-hop padding the attacker cannot model.
type PaddedScenario struct {
	*Scenario
	// PaddingMs is the total padding added across the circuit.
	PaddingMs float64
}

// NewPaddedScenario draws a scenario and adds U(0, maxPadMs) of padding at
// each of the three relays.
func NewPaddedScenario(m ting.MatrixView, maxPadMs float64, rng *rand.Rand) (*PaddedScenario, error) {
	if maxPadMs < 0 {
		return nil, errors.New("deanon: negative padding")
	}
	sc, err := NewScenario(m, nil, rng)
	if err != nil {
		return nil, err
	}
	pad := rng.Float64()*maxPadMs + rng.Float64()*maxPadMs + rng.Float64()*maxPadMs
	sc.E2E += pad
	return &PaddedScenario{Scenario: sc, PaddingMs: pad}, nil
}

// PaddingSweepPoint is one padding level's outcome.
type PaddingSweepPoint struct {
	MaxPadMs float64
	// MedianFracInformed is the informed strategy's median fraction of
	// relays probed under this padding level.
	MedianFracInformed float64
	// MedianFracUnaware is the baseline's (padding-insensitive, since it
	// ignores RTTs entirely).
	MedianFracUnaware float64
	// MedianE2EOverheadMs is the latency cost users pay for the defense.
	MedianE2EOverheadMs float64
}

// Speedup is the attacker's remaining advantage from RTT knowledge.
func (p PaddingSweepPoint) Speedup() float64 {
	if p.MedianFracInformed == 0 {
		return 0
	}
	return p.MedianFracUnaware / p.MedianFracInformed
}

// PaddingSweep measures how latency padding erodes the informed attacker's
// advantage, at each maximum per-relay padding level.
func PaddingSweep(m ting.MatrixView, maxPads []float64, trials int, seed int64) ([]PaddingSweepPoint, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("deanon: trials %d", trials)
	}
	out := make([]PaddingSweepPoint, 0, len(maxPads))
	for i, pad := range maxPads {
		rng := rand.New(rand.NewSource(seed + int64(i)*1000))
		informed := &Informed{UseMu: true}
		unaware := &RTTUnaware{}
		var fi, fu, overhead []float64
		for t := 0; t < trials; t++ {
			sc, err := NewPaddedScenario(m, pad, rng)
			if err != nil {
				return nil, err
			}
			fi = append(fi, informed.Run(sc.Scenario, rng).FractionTested())
			fu = append(fu, unaware.Run(sc.Scenario, rng).FractionTested())
			overhead = append(overhead, sc.PaddingMs)
		}
		mi, err := stats.Median(fi)
		if err != nil {
			return nil, err
		}
		mu, err := stats.Median(fu)
		if err != nil {
			return nil, err
		}
		mo, err := stats.Median(overhead)
		if err != nil {
			return nil, err
		}
		out = append(out, PaddingSweepPoint{
			MaxPadMs:            pad,
			MedianFracInformed:  mi,
			MedianFracUnaware:   mu,
			MedianE2EOverheadMs: mo,
		})
	}
	return out, nil
}

// VariableScenario is a victim circuit of attacker-unknown length: the
// randomized-length defense. The attacker must identify every relay
// between the source and the known exit.
type VariableScenario struct {
	m ting.MatrixView
	// rtt is a dense snapshot of m: the attacker's scoring loops read
	// O(N²) cells per candidate pass, which would pay the tiled store's
	// indirection on every read.
	rtt [][]float64
	// Members are the on-path relays the attacker must find (everything
	// but the exit).
	Members []int
	Exit    int
	Source  int

	AttackerExitRTT float64
	E2E             float64
}

// NewVariableScenario draws a circuit whose length is uniform over
// [minLen, maxLen] hops.
func NewVariableScenario(m ting.MatrixView, minLen, maxLen int, rng *rand.Rand) (*VariableScenario, error) {
	return newVariableScenario(m, m.Dense(), minLen, maxLen, rng)
}

// newVariableScenario lets callers drawing many scenarios from one matrix
// (LengthDefense) share a single dense snapshot instead of re-copying N²
// cells per trial.
func newVariableScenario(m ting.MatrixView, rtt [][]float64, minLen, maxLen int, rng *rand.Rand) (*VariableScenario, error) {
	n := m.N()
	if minLen < 3 || maxLen < minLen {
		return nil, fmt.Errorf("deanon: bad length range [%d,%d]", minLen, maxLen)
	}
	if n < maxLen+2 {
		return nil, fmt.Errorf("deanon: %d nodes cannot host %d-hop circuits", n, maxLen)
	}
	length := minLen + rng.Intn(maxLen-minLen+1)

	perm := rng.Perm(n)
	src := perm[0]
	hops := perm[1 : 1+length]
	attacker := perm[1+length]

	exit := hops[length-1]
	e2e := rtt[src][hops[0]]
	for i := 0; i+1 < length; i++ {
		e2e += rtt[hops[i]][hops[i+1]]
	}
	r := rtt[exit][attacker]
	e2e += r
	return &VariableScenario{
		m:               m,
		rtt:             rtt,
		Members:         append([]int(nil), hops[:length-1]...),
		Exit:            exit,
		Source:          src,
		AttackerExitRTT: r,
		E2E:             e2e,
	}, nil
}

// Probe reports whether relay c carries the circuit.
func (v *VariableScenario) Probe(c int) bool {
	for _, mbr := range v.Members {
		if c == mbr {
			return true
		}
	}
	return false
}

// LengthDefensePoint compares attack cost on fixed 3-hop circuits versus
// the randomized-length defense.
type LengthDefensePoint struct {
	MinLen, MaxLen int
	// MedianFracRandomOrder is the cost of probing in random order until
	// every member is found.
	MedianFracRandomOrder float64
	// MedianFracRTTOrder probes in ascending score order using the 3-hop
	// heuristic (the attacker does not know the true length, so it keeps
	// probing past the first two finds until the oracle confirms
	// completeness).
	MedianFracRTTOrder float64
	// MedianExtraHops is the resource cost: mean hops beyond 3.
	MedianExtraHops float64
}

// LengthDefense evaluates randomized circuit lengths in [minLen, maxLen].
// The attacker is granted a completeness oracle (it knows when it has
// found every member), which is generous to the attacker — the defense's
// measured benefit is therefore a lower bound.
func LengthDefense(m ting.MatrixView, minLen, maxLen, trials int, seed int64) (*LengthDefensePoint, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("deanon: trials %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	mu := m.Mean()
	rtt := m.Dense()
	var fracRand, fracRTT, extra []float64
	for t := 0; t < trials; t++ {
		v, err := newVariableScenario(m, rtt, minLen, maxLen, rng)
		if err != nil {
			return nil, err
		}
		need := len(v.Members)
		extra = append(extra, float64(need+1-3))
		candidates := candidateListVar(v, rng, nil)
		fracRand = append(fracRand, probeUntilComplete(v, candidates, need))
		scored := candidateListVar(v, rng, func(c int) float64 { return threeHopScore(v, c, mu) })
		fracRTT = append(fracRTT, probeUntilComplete(v, scored, need))
	}
	mr, err := stats.Median(fracRand)
	if err != nil {
		return nil, err
	}
	mt, err := stats.Median(fracRTT)
	if err != nil {
		return nil, err
	}
	me, err := stats.Median(extra)
	if err != nil {
		return nil, err
	}
	return &LengthDefensePoint{
		MinLen: minLen, MaxLen: maxLen,
		MedianFracRandomOrder: mr,
		MedianFracRTTOrder:    mt,
		MedianExtraHops:       me,
	}, nil
}

// candidateListVar builds the probe order: random, or ascending by score.
func candidateListVar(v *VariableScenario, rng *rand.Rand, score func(int) float64) []int {
	n := v.m.N()
	order := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != v.Exit {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	if score != nil {
		scores := make(map[int]float64, len(order))
		for _, c := range order {
			scores[c] = score(c)
		}
		// Stable-ish sort by score (insertion; n ≤ a few hundred).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && scores[order[j]] < scores[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	return order
}

// threeHopScore applies Algorithm 1's scoring under the (possibly wrong)
// assumption that the circuit has three hops.
func threeHopScore(v *VariableScenario, c int, mu float64) float64 {
	n := v.m.N()
	best := -1.0
	consider := func(sum float64) {
		if sum > v.E2E {
			return
		}
		d := v.E2E - (sum + mu)
		if d < 0 {
			d = -d
		}
		if best < 0 || d < best {
			best = d
		}
	}
	rowC := v.rtt[c]
	exitCol := v.Exit
	for j := 0; j < n; j++ {
		if j == c || j == exitCol {
			continue
		}
		consider(rowC[j] + v.rtt[j][exitCol] + v.AttackerExitRTT) // c entry
		consider(v.rtt[j][c] + rowC[exitCol] + v.AttackerExitRTT) // c middle
	}
	if best < 0 {
		return 1e18 // no fitting circuit at all: probe last
	}
	return best
}

// probeUntilComplete counts the fraction of candidates probed before all
// `need` members are found.
func probeUntilComplete(v *VariableScenario, order []int, need int) float64 {
	found, probes := 0, 0
	for _, c := range order {
		probes++
		if v.Probe(c) {
			found++
			if found == need {
				break
			}
		}
	}
	return float64(probes) / float64(len(order))
}
