package deanon

import (
	"errors"
	"fmt"
	"math/rand"

	"ting/internal/stats"
	"ting/internal/ting"
)

// Trial is one simulated deanonymization across all strategies.
type Trial struct {
	E2E float64
	// FracTested maps strategy name → fraction of relays probed.
	FracTested map[string]float64
	// FracRuledOut is the fraction ruled out implicitly by the RTT rules
	// (Figure 13's y-axis).
	FracRuledOut float64
}

// Simulation runs many scenarios over one matrix.
type Simulation struct {
	// Matrix is the all-pairs Ting dataset. Required.
	Matrix ting.MatrixView
	// Strategies to compare. Required.
	Strategies []Strategy
	// Weights, if non-nil, biases circuit construction by bandwidth.
	Weights []float64
	// Seed drives scenario generation and probe-order randomness.
	Seed int64
}

// Run simulates n trials.
func (s *Simulation) Run(n int) ([]Trial, error) {
	if s.Matrix == nil {
		return nil, errors.New("deanon: simulation missing Matrix")
	}
	if len(s.Strategies) == 0 {
		return nil, errors.New("deanon: simulation missing Strategies")
	}
	if n <= 0 {
		return nil, fmt.Errorf("deanon: trial count %d", n)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	trials := make([]Trial, 0, n)
	for i := 0; i < n; i++ {
		sc, err := NewScenario(s.Matrix, s.Weights, rng)
		if err != nil {
			return nil, err
		}
		tr := Trial{E2E: sc.E2E, FracTested: make(map[string]float64, len(s.Strategies))}
		for _, strat := range s.Strategies {
			res := strat.Run(sc, rng)
			tr.FracTested[strat.Name()] = res.FractionTested()
			if res.ImplicitlyRuledOut > 0 || tr.FracRuledOut == 0 {
				if res.Candidates > 0 {
					fr := float64(res.ImplicitlyRuledOut) / float64(res.Candidates)
					if fr > tr.FracRuledOut {
						tr.FracRuledOut = fr
					}
				}
			}
		}
		trials = append(trials, tr)
	}
	return trials, nil
}

// MedianFracTested aggregates the per-strategy medians over trials — the
// headline numbers of §5.1.2 (0.72 / 0.62 / 0.48).
func MedianFracTested(trials []Trial, name string) (float64, error) {
	vals := make([]float64, 0, len(trials))
	for _, tr := range trials {
		if v, ok := tr.FracTested[name]; ok {
			vals = append(vals, v)
		}
	}
	return stats.Median(vals)
}

// Speedup returns the median speedup of strategy b over strategy a
// (medianFrac(a) / medianFrac(b)); the paper reports 1.5× for informed
// selection over the RTT-unaware baseline.
func Speedup(trials []Trial, a, b string) (float64, error) {
	ma, err := MedianFracTested(trials, a)
	if err != nil {
		return 0, err
	}
	mb, err := MedianFracTested(trials, b)
	if err != nil {
		return 0, err
	}
	if mb == 0 {
		return 0, errors.New("deanon: zero median for " + b)
	}
	return ma / mb, nil
}
