package deanon

import (
	"fmt"
	"math/rand"
	"testing"

	"ting/internal/inet"
	"ting/internal/ting"
)

// worldMatrix builds a 50-node matrix from the synthetic Internet, the
// shape of the paper's §5 dataset (Figure 11).
func worldMatrix(t testing.TB, n int, seed int64) (*ting.Matrix, []float64) {
	t.Helper()
	topo, err := inet.Generate(inet.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		names[i] = topo.Node(inet.NodeID(i)).Name
		weights[i] = topo.Node(inet.NodeID(i)).BandwidthKBps
	}
	m, err := ting.NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := m.Set(names[i], names[j], topo.RTT(inet.NodeID(i), inet.NodeID(j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, weights
}

func TestNewScenario(t *testing.T) {
	m, _ := worldMatrix(t, 20, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		sc, err := NewScenario(m, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		c := sc.circ
		ids := []int{c.Source, c.Entry, c.Middle, c.Exit}
		seen := map[int]bool{}
		for _, id := range ids {
			if id < 0 || id >= 20 {
				t.Fatalf("node id %d out of range", id)
			}
			if seen[id] {
				t.Fatalf("repeated node in circuit %+v", c)
			}
			seen[id] = true
		}
		if sc.E2E <= 0 || sc.AttackerExitRTT <= 0 {
			t.Fatalf("degenerate scenario: %+v", sc)
		}
		// E2E must equal the path sum.
		want := m.At(c.Source, c.Entry) + m.At(c.Entry, c.Middle) + m.At(c.Middle, c.Exit) + sc.AttackerExitRTT
		if sc.E2E != want {
			t.Fatalf("E2E %v != path sum %v", sc.E2E, want)
		}
		if !sc.Probe(c.Entry) || !sc.Probe(c.Middle) {
			t.Fatal("oracle misses circuit members")
		}
		if sc.Probe(c.Exit) || sc.Probe(c.Source) {
			t.Fatal("oracle false positive")
		}
	}
	small, _ := worldMatrix(t, 4, 3)
	if _, err := NewScenario(small, nil, rng); err == nil {
		t.Error("tiny matrix accepted")
	}
	if _, err := NewScenario(m, []float64{1}, rng); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func strategies() []Strategy {
	return []Strategy{&RTTUnaware{}, IgnoreTooLarge{}, &Informed{UseMu: true}}
}

func TestAllStrategiesAlwaysSucceed(t *testing.T) {
	// The pruning rules are conservative: the true entry and middle must
	// never be ruled out, so every strategy finds both on every run.
	m, _ := worldMatrix(t, 30, 4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		sc, err := NewScenario(m, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies() {
			res := s.Run(sc, rng)
			if res.Found != 2 {
				t.Fatalf("trial %d: strategy %s found %d members (probes=%d)",
					i, s.Name(), res.Found, res.Probes)
			}
			if res.Probes < 2 {
				t.Fatalf("strategy %s claims success with %d probes", s.Name(), res.Probes)
			}
			if res.Probes > res.Candidates {
				t.Fatalf("strategy %s probed %d of %d candidates", s.Name(), res.Probes, res.Candidates)
			}
		}
	}
}

func TestStrategyOrderingMatchesPaper(t *testing.T) {
	// §5.1.2: medians of fraction probed should order
	// unaware > ignore-too-large > informed, with unaware around 2/3 and a
	// noticeable informed speedup.
	m, _ := worldMatrix(t, 50, 6)
	sim := &Simulation{Matrix: m, Strategies: strategies(), Seed: 7}
	trials, err := sim.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	unaware, err := MedianFracTested(trials, "rtt-unaware")
	if err != nil {
		t.Fatal(err)
	}
	ignore, err := MedianFracTested(trials, "ignore-too-large")
	if err != nil {
		t.Fatal(err)
	}
	informed, err := MedianFracTested(trials, "informed")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("medians: unaware=%.3f ignore=%.3f informed=%.3f", unaware, ignore, informed)
	if unaware < 0.55 || unaware > 0.85 {
		t.Errorf("unaware median %.3f, want ≈ 0.72", unaware)
	}
	if ignore >= unaware {
		t.Errorf("ignore-too-large (%.3f) not better than unaware (%.3f)", ignore, unaware)
	}
	if informed >= ignore {
		t.Errorf("informed (%.3f) not better than ignore (%.3f)", informed, ignore)
	}
	speedup, err := Speedup(trials, "rtt-unaware", "informed")
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 1.2 {
		t.Errorf("informed speedup %.2f×, want ≥ 1.2 (paper: 1.5×)", speedup)
	}
}

func TestWeightedVariants(t *testing.T) {
	m, weights := worldMatrix(t, 40, 8)
	sim := &Simulation{
		Matrix:     m,
		Strategies: []Strategy{&RTTUnaware{Weights: weights}, &Informed{UseMu: true, Weights: weights}, &Informed{UseMu: true}},
		Weights:    weights,
		Seed:       9,
	}
	trials, err := sim.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	speedup, err := Speedup(trials, "weight-ordered", "informed-weighted")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("weighted speedup: %.2f×", speedup)
	// The paper reports 2× here; under our synthetic topology's strongly
	// clustered bandwidths the weight-ordered baseline is already
	// near-optimal, so we assert non-regression and record the difference
	// in EXPERIMENTS.md.
	if speedup < 0.9 {
		t.Errorf("informed-weighted materially worse than weight-ordered: %.2f×", speedup)
	}
	// Under weighted circuits, weight-aware probing must crush the
	// weight-blind informed strategy.
	blind, err := MedianFracTested(trials, "informed")
	if err != nil {
		t.Fatal(err)
	}
	aware, err := MedianFracTested(trials, "informed-weighted")
	if err != nil {
		t.Fatal(err)
	}
	if aware >= blind {
		t.Errorf("informed-weighted (%.3f) not better than weight-blind informed (%.3f)", aware, blind)
	}
}

func TestRuledOutCorrelatesWithE2E(t *testing.T) {
	// Figure 13: low-RTT circuits allow ruling out many relays; the very
	// highest-RTT circuits allow almost none.
	m, _ := worldMatrix(t, 50, 10)
	sim := &Simulation{Matrix: m, Strategies: []Strategy{IgnoreTooLarge{}}, Seed: 11}
	trials, err := sim.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	var lowE2E, highE2E []float64
	for _, tr := range trials {
		if tr.E2E < 300 {
			lowE2E = append(lowE2E, tr.FracRuledOut)
		}
		if tr.E2E > 700 {
			highE2E = append(highE2E, tr.FracRuledOut)
		}
	}
	if len(lowE2E) == 0 || len(highE2E) == 0 {
		t.Skip("seed produced no trials in the extreme E2E buckets")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(lowE2E) <= mean(highE2E) {
		t.Errorf("ruled-out fraction: low-E2E %.3f ≤ high-E2E %.3f; want negative correlation",
			mean(lowE2E), mean(highE2E))
	}
}

func TestRulesNeverPruneTruth(t *testing.T) {
	m, _ := worldMatrix(t, 30, 12)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		sc, err := NewScenario(m, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		st := newRuleState(sc)
		if !st.viable[sc.circ.Entry] {
			t.Fatalf("true entry pruned at init (trial %d)", i)
		}
		if !st.viable[sc.circ.Middle] {
			t.Fatalf("true middle pruned at init (trial %d)", i)
		}
		st.observePositive(sc.circ.Middle)
		if !st.viable[sc.circ.Entry] {
			t.Fatalf("true entry pruned after middle discovery (trial %d)", i)
		}
	}
}

func TestSimulationValidation(t *testing.T) {
	m, _ := worldMatrix(t, 10, 14)
	if _, err := (&Simulation{}).Run(1); err == nil {
		t.Error("empty simulation accepted")
	}
	if _, err := (&Simulation{Matrix: m}).Run(1); err == nil {
		t.Error("missing strategies accepted")
	}
	if _, err := (&Simulation{Matrix: m, Strategies: strategies()}).Run(0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[Strategy]string{
		&RTTUnaware{}:                      "rtt-unaware",
		&RTTUnaware{Weights: []float64{1}}: "weight-ordered",
		IgnoreTooLarge{}:                   "ignore-too-large",
		&Informed{UseMu: true}:             "informed",
		&Informed{}:                        "informed-no-mu",
		&Informed{Weights: []float64{1}}:   "informed-weighted",
	}
	for s, want := range cases {
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
	}
}

func TestMedianFracTestedErrors(t *testing.T) {
	if _, err := MedianFracTested(nil, "x"); err == nil {
		t.Error("empty trials accepted")
	}
	if _, err := Speedup(nil, "a", "b"); err == nil {
		t.Error("empty speedup accepted")
	}
}

func TestFractionTestedZeroCandidates(t *testing.T) {
	if (Result{}).FractionTested() != 0 {
		t.Error("zero candidates should yield 0")
	}
}

func BenchmarkInformedRun(b *testing.B) {
	m, _ := worldMatrix(b, 50, 15)
	rng := rand.New(rand.NewSource(16))
	sc, err := NewScenario(m, nil, rng)
	if err != nil {
		b.Fatal(err)
	}
	s := &Informed{UseMu: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Run(sc, rng)
	}
}

func ExampleSpeedup() {
	trials := []Trial{
		{FracTested: map[string]float64{"a": 0.6, "b": 0.3}},
		{FracTested: map[string]float64{"a": 0.8, "b": 0.4}},
	}
	s, _ := Speedup(trials, "a", "b")
	fmt.Printf("%.1f×\n", s)
	// Output: 2.0×
}
