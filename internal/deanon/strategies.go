package deanon

import (
	"math"
	"math/rand"
	"sort"
)

// RTTUnaware is the baseline: probe relays in random order (or, with
// Weights, in decreasing-weight order, modeling an attacker who knows
// bandwidth-weighted selection makes heavy relays likelier).
type RTTUnaware struct {
	// Weights, if non-nil, orders probes by decreasing weight instead of
	// randomly.
	Weights []float64
}

// Name implements Strategy.
func (s *RTTUnaware) Name() string {
	if s.Weights != nil {
		return "weight-ordered"
	}
	return "rtt-unaware"
}

// Run implements Strategy.
func (s *RTTUnaware) Run(sc *Scenario, rng *rand.Rand) Result {
	order := candidateOrder(sc, s.Weights, rng)
	res := Result{Candidates: len(order)}
	for _, c := range order {
		res.Probes++
		if sc.Probe(c) {
			res.Found++
			if res.Found == 2 {
				return res
			}
		}
	}
	return res
}

func candidateOrder(sc *Scenario, weights []float64, rng *rand.Rand) []int {
	n := sc.m.N()
	order := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != sc.circ.Exit {
			order = append(order, i)
		}
	}
	if weights == nil {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	} else {
		sort.SliceStable(order, func(a, b int) bool {
			return weights[order[a]] > weights[order[b]]
		})
	}
	return order
}

// ruleState tracks which relays remain viable under the
// "ignore too-large RTTs" rules of §5.1.1.
type ruleState struct {
	sc        *Scenario
	viable    map[int]bool
	probed    map[int]bool
	foundC    int // discovered on-circuit relay, -1 if none yet
	initalCut int
}

func newRuleState(sc *Scenario) *ruleState {
	st := &ruleState{sc: sc, viable: make(map[int]bool), probed: make(map[int]bool), foundC: -1}
	n := sc.m.N()
	for i := 0; i < n; i++ {
		if i == sc.circ.Exit {
			continue
		}
		if st.fitsEntry(i) || st.fitsMiddle(i) {
			st.viable[i] = true
		} else {
			st.initalCut++
		}
	}
	return st
}

// fitsMiddle reports whether some entry e exists making (e, c, exit) fit
// within E2E: ∃e R(e,c)+R(c,x)+r ≤ R_e2e.
func (st *ruleState) fitsMiddle(c int) bool {
	sc := st.sc
	base := sc.m.At(c, sc.circ.Exit) + sc.AttackerExitRTT
	if base > sc.E2E {
		return false
	}
	n := sc.m.N()
	for e := 0; e < n; e++ {
		if e == c || e == sc.circ.Exit {
			continue
		}
		if sc.m.At(e, c)+base <= sc.E2E {
			return true
		}
	}
	return false
}

// fitsEntry reports whether some middle m exists making (c, m, exit) fit:
// ∃m R(c,m)+R(m,x)+r ≤ R_e2e.
func (st *ruleState) fitsEntry(c int) bool {
	sc := st.sc
	n := sc.m.N()
	for m := 0; m < n; m++ {
		if m == c || m == sc.circ.Exit {
			continue
		}
		if sc.m.At(c, m)+sc.m.At(m, sc.circ.Exit)+sc.AttackerExitRTT <= sc.E2E {
			return true
		}
	}
	return false
}

// observePositive applies the discovery rules after relay c probes
// positive.
func (st *ruleState) observePositive(c int) {
	sc := st.sc
	st.foundC = c
	fitsMid := st.fitsMiddle(c)
	fitsEnt := st.fitsEntry(c)
	for k := range st.viable {
		if k == c {
			continue
		}
		// k can only remain viable as c's partner.
		asEntry := fitsMid && sc.m.At(k, c)+sc.m.At(c, sc.circ.Exit)+sc.AttackerExitRTT <= sc.E2E
		asMiddle := fitsEnt && sc.m.At(c, k)+sc.m.At(k, sc.circ.Exit)+sc.AttackerExitRTT <= sc.E2E
		if !asEntry && !asMiddle {
			delete(st.viable, k)
		}
	}
}

// IgnoreTooLarge probes in random order but skips relays the RTT rules
// exclude, re-applying the rules after each discovery.
type IgnoreTooLarge struct{}

// Name implements Strategy.
func (IgnoreTooLarge) Name() string { return "ignore-too-large" }

// Run implements Strategy.
func (IgnoreTooLarge) Run(sc *Scenario, rng *rand.Rand) Result {
	st := newRuleState(sc)
	order := candidateOrder(sc, nil, rng)
	res := Result{Candidates: len(order), ImplicitlyRuledOut: st.initalCut}
	for _, c := range order {
		if !st.viable[c] || st.probed[c] {
			continue
		}
		st.probed[c] = true
		res.Probes++
		if sc.Probe(c) {
			res.Found++
			if res.Found == 2 {
				return res
			}
			st.observePositive(c)
		}
	}
	return res
}

// Informed implements Algorithm 1: among viable relays, probe first the
// one whose best-fitting circuit most closely explains the observed
// end-to-end RTT, approximating the unknown source→entry leg with µ.
type Informed struct {
	// UseMu includes the µ term; disabling it is the ablation bench.
	UseMu bool
	// Weights, if non-nil, divides scores by relay weight (§5.1.1,
	// "Weighted Node Selection").
	Weights []float64
}

// Name implements Strategy.
func (s *Informed) Name() string {
	if s.Weights != nil {
		return "informed-weighted"
	}
	if !s.UseMu {
		return "informed-no-mu"
	}
	return "informed"
}

// Run implements Strategy.
func (s *Informed) Run(sc *Scenario, rng *rand.Rand) Result {
	st := newRuleState(sc)
	mu := 0.0
	if s.UseMu {
		mu = sc.m.Mean()
	}
	res := Result{Candidates: sc.m.N() - 1, ImplicitlyRuledOut: st.initalCut}
	for {
		c, ok := st.bestCandidate(mu, s.Weights)
		if !ok {
			return res
		}
		st.probed[c] = true
		res.Probes++
		if sc.Probe(c) {
			res.Found++
			if res.Found == 2 {
				return res
			}
			st.observePositive(c)
		}
	}
}

// bestCandidate scores every unprobed viable relay per Algorithm 1 and
// returns the lowest-scoring one.
func (st *ruleState) bestCandidate(mu float64, weights []float64) (int, bool) {
	sc := st.sc
	best := -1
	bestScore := math.Inf(1)
	n := sc.m.N()
	// Deterministic candidate order: map iteration order would otherwise
	// leak into results (and into how much randomness a run consumes).
	cands := make([]int, 0, len(st.viable))
	for i := range st.viable {
		if !st.probed[i] {
			cands = append(cands, i)
		}
	}
	sort.Ints(cands)
	for _, i := range cands {
		score := math.Inf(1)
		// Enumerate circuits involving i: (i as entry, m as middle) and
		// (e as entry, i as middle), partners restricted to viable relays
		// — and to the discovered relay once one is known.
		for j := 0; j < n; j++ {
			if j == i || j == sc.circ.Exit || !st.viable[j] {
				continue
			}
			if st.foundC >= 0 && j != st.foundC {
				continue
			}
			// i entry, j middle.
			c1 := sc.m.At(i, j) + sc.m.At(j, sc.circ.Exit) + sc.AttackerExitRTT
			if c1 <= sc.E2E {
				if d := math.Abs(sc.E2E - (c1 + mu)); d < score {
					score = d
				}
			}
			// j entry, i middle.
			c2 := sc.m.At(j, i) + sc.m.At(i, sc.circ.Exit) + sc.AttackerExitRTT
			if c2 <= sc.E2E {
				if d := math.Abs(sc.E2E - (c2 + mu)); d < score {
					score = d
				}
			}
		}
		if weights != nil && weights[i] > 0 {
			score /= weights[i]
		}
		if score < bestScore {
			bestScore = score
			best = i
		}
	}
	if best < 0 {
		// Rules exhausted every scored candidate; fall back to the first
		// unprobed viable relay (conservatism guarantees the true members
		// stay viable).
		if len(cands) > 0 {
			return cands[0], true
		}
		return 0, false
	}
	return best, true
}
