// Package deanon implements the deanonymization study of §5.1: how
// knowledge of all-pairs RTTs (from Ting) speeds up an on-path attacker who
// already controls the destination and wants to identify the entry and
// middle relays of a victim circuit.
//
// The attacker has a brute-force probe oracle in the style of Murdoch and
// Danezis — "is relay c carrying the victim's traffic?" — where each probe
// is expensive (it requires building circuits through c and loading them).
// The study therefore counts probes. Three strategies are compared:
//
//   - RTT-unaware: probe relays in random order (the baseline);
//   - ignore-too-large: never probe relays that cannot be on any circuit
//     whose RTT sum fits within the observed end-to-end RTT;
//   - informed selection (Algorithm 1): additionally order the remaining
//     relays by how closely their best-fitting circuit explains the
//     end-to-end RTT, using µ (the mean all-pairs RTT) in place of the
//     unknown source→entry leg.
//
// Weighted variants model Tor's bandwidth-weighted relay selection
// (footnote 5): the baseline probes in decreasing bandwidth order, and the
// informed strategy divides each score by the relay's weight.
package deanon

import (
	"errors"
	"fmt"
	"math/rand"

	"ting/internal/ting"
)

// Circuit is a victim three-hop circuit plus endpoints. All values are
// node indices into the matrix.
type Circuit struct {
	Source int // victim client (also drawn from the node set, as in §5.1.2)
	Entry  int
	Middle int
	Exit   int
}

// Scenario is one deanonymization instance: what the attacker knows.
type Scenario struct {
	m    ting.MatrixView
	circ Circuit

	// AttackerExitRTT is r, the destination's RTT to the exit.
	AttackerExitRTT float64
	// E2E is the observed end-to-end RTT R_e2e, source through circuit to
	// destination.
	E2E float64
}

// Matrix returns the all-pairs dataset the attacker uses.
func (sc *Scenario) Matrix() ting.MatrixView { return sc.m }

// Circuit returns the ground-truth circuit (hidden from strategies except
// through the probe oracle).
func (sc *Scenario) Circuit() Circuit { return sc.circ }

// NewScenario draws a random victim circuit over m. The source and an
// attacker location are drawn from the node set; entry, middle, and exit
// are distinct relays chosen uniformly (weights nil) or
// bandwidth-weighted.
func NewScenario(m ting.MatrixView, weights []float64, rng *rand.Rand) (*Scenario, error) {
	n := m.N()
	if n < 5 {
		return nil, errors.New("deanon: need at least 5 nodes")
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("deanon: %d weights for %d nodes", len(weights), n)
	}
	pick := func(exclude map[int]bool) int {
		for {
			var i int
			if weights == nil {
				i = rng.Intn(n)
			} else {
				i = weightedIndex(weights, rng)
			}
			if !exclude[i] {
				return i
			}
		}
	}
	// Source and attacker are positions, not relays: uniform regardless of
	// weights.
	src := rng.Intn(n)
	used := map[int]bool{src: true}
	entry := pick(used)
	used[entry] = true
	middle := pick(used)
	used[middle] = true
	exit := pick(used)
	used[exit] = true
	attacker := -1
	for attacker < 0 || used[attacker] {
		attacker = rng.Intn(n)
	}

	circ := Circuit{Source: src, Entry: entry, Middle: middle, Exit: exit}
	r := m.At(exit, attacker)
	e2e := m.At(src, entry) + m.At(entry, middle) + m.At(middle, exit) + r
	return &Scenario{m: m, circ: circ, AttackerExitRTT: r, E2E: e2e}, nil
}

func weightedIndex(weights []float64, rng *rand.Rand) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Probe is the attacker's oracle: does relay c carry the victim circuit?
// Only the entry and middle answer yes — the attacker already knows the
// exit.
func (sc *Scenario) Probe(c int) bool {
	return c == sc.circ.Entry || c == sc.circ.Middle
}

// Result reports one strategy's run.
type Result struct {
	// Probes is how many relays were actively probed before both the
	// entry and middle were identified.
	Probes int
	// Candidates is the number of relays the strategy considered probing
	// (the network size minus the known exit).
	Candidates int
	// ImplicitlyRuledOut counts relays the too-large-RTT rules excluded
	// before any probing (zero for the RTT-unaware baseline) — the
	// quantity Figure 13 plots against E2E RTT.
	ImplicitlyRuledOut int
	// Found is how many circuit members were identified (2 on success).
	Found int
}

// FractionTested is Probes / Candidates, the x-axis of Figure 12.
func (r Result) FractionTested() float64 {
	if r.Candidates == 0 {
		return 0
	}
	return float64(r.Probes) / float64(r.Candidates)
}

// Strategy deanonymizes a scenario and reports its cost.
type Strategy interface {
	Name() string
	Run(sc *Scenario, rng *rand.Rand) Result
}
