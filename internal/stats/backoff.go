package stats

import (
	"math/rand"
	"time"
)

// Backoff computes jittered exponential retry delays. It is the seeded-RNG
// counterpart of the usual wall-clock backoff: callers supply the RNG, so a
// retry schedule is reproducible under a fixed seed — the property the
// fault-injection tests rely on to replay a failing campaign exactly.
type Backoff struct {
	// Base is the delay before the first retry. Zero disables waiting.
	Base time.Duration
	// Max caps the grown delay. Zero means no cap.
	Max time.Duration
	// Factor is the per-attempt growth; values < 2 default to 2.
	Factor float64
	// Jitter is the fraction of the delay that is randomized, in [0, 1].
	// A delay d becomes uniform in [d·(1−Jitter), d·(1+Jitter)].
	Jitter float64
}

// Delay returns the wait before retry number attempt (1 = first retry).
// rng may be nil, in which case the delay is unjittered.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	if b.Base <= 0 || attempt <= 0 {
		return 0
	}
	factor := b.Factor
	if factor < 2 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [d(1−j), d(1+j)].
		d *= 1 - j + 2*j*rng.Float64()
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}
