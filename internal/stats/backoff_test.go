package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}
	want := []time.Duration{
		0, // attempt 0: no wait
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped
		50 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffZeroBaseDisables(t *testing.T) {
	var b Backoff
	if got := b.Delay(3, rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("zero-base delay = %v, want 0", got)
	}
}

func TestBackoffJitterBoundedAndSeeded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		d := b.Delay(1, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 150ms]", d)
		}
	}
	// Same seed → same schedule.
	a := rand.New(rand.NewSource(7))
	c := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 5; attempt++ {
		if b.Delay(attempt, a) != b.Delay(attempt, c) {
			t.Fatal("seeded backoff schedule not reproducible")
		}
	}
}

func TestBackoffExcessJitterClamped(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Jitter: 5}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if d := b.Delay(1, rng); d < 0 || d > 20*time.Millisecond {
			t.Fatalf("clamped jitter produced %v", d)
		}
	}
}
