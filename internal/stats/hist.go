package stats

import (
	"errors"
	"math"
)

// Histogram bins samples into fixed-width bins starting at Origin. Bin i
// covers [Origin + i*Width, Origin + (i+1)*Width).
type Histogram struct {
	Origin float64
	Width  float64
	Counts []float64
}

// NewHistogram creates an empty histogram with the given bin width and
// origin. Width must be positive.
func NewHistogram(origin, width float64) (*Histogram, error) {
	if width <= 0 || math.IsNaN(width) {
		return nil, errors.New("stats: histogram width must be positive")
	}
	return &Histogram{Origin: origin, Width: width}, nil
}

// Add adds a sample with the given weight (use 1 for plain counting; the
// Figure 16 harness uses fractional weights to scale sampled circuits up to
// the full C(50, l) population).
func (h *Histogram) Add(x, weight float64) {
	if x < h.Origin {
		return
	}
	i := int((x - h.Origin) / h.Width)
	for i >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[i] += weight
}

// BinCenter returns the center x-value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Origin + (float64(i)+0.5)*h.Width
}

// Total returns the sum of all bin weights.
func (h *Histogram) Total() float64 {
	var s float64
	for _, c := range h.Counts {
		s += c
	}
	return s
}

// LogChoose returns ln C(n, k) computed via the log-gamma function, exact
// enough for scaling sampled circuit counts to the full population
// (Figure 16 needs C(50, 10) ≈ 1.0e10, far beyond what sampling can count).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// Choose returns C(n, k) as a float64; it overflows to +Inf gracefully for
// very large results.
func Choose(n, k int) float64 {
	return math.Exp(LogChoose(n, k))
}
