package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinMaxMean(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if m, _ := Min(xs); m != 1 {
		t.Errorf("Min = %v, want 1", m)
	}
	if m, _ := Max(xs); m != 9 {
		t.Errorf("Max = %v, want 9", m)
	}
	if m, _ := Mean(xs); math.Abs(m-3.875) > 1e-12 {
		t.Errorf("Mean = %v, want 3.875", m)
	}
	for _, f := range []func([]float64) (float64, error){Min, Max, Mean, StdDev, Median} {
		if _, err := f(nil); err == nil {
			t.Error("expected ErrEmpty for nil input")
		}
	}
}

func TestStdDevKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	// Constant series: cv = 0.
	cv, err := CoefficientOfVariation([]float64{5, 5, 5, 5})
	if err != nil || cv != 0 {
		t.Errorf("cv of constant = %v, %v; want 0, nil", cv, err)
	}
	// Known: mean 4, sd 2 → cv 0.5.
	cv, err = CoefficientOfVariation([]float64{2, 6, 2, 6})
	if err != nil || math.Abs(cv-0.5) > 1e-12 {
		t.Errorf("cv = %v, %v; want 0.5", cv, err)
	}
	if _, err := CoefficientOfVariation([]float64{-1, 1}); err == nil {
		t.Error("expected error for zero mean")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("expected error for q<0")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("expected error for q>1")
	}
	if got, _ := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %v, want 7", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b, err := Box(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 10 {
		t.Errorf("N = %d", b.N)
	}
	if b.Median != 5.5 {
		t.Errorf("Median = %v, want 5.5", b.Median)
	}
	if b.OutlierCount != 1 {
		t.Errorf("OutlierCount = %d, want 1 (the 100)", b.OutlierCount)
	}
	if b.WhiskerHigh != 9 {
		t.Errorf("WhiskerHigh = %v, want 9", b.WhiskerHigh)
	}
	if b.WhiskerLow != 1 {
		t.Errorf("WhiskerLow = %v, want 1", b.WhiskerLow)
	}
	if b.Q1 > b.Median || b.Median > b.Q3 {
		t.Errorf("quartiles out of order: %+v", b)
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		b, err := Box(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !(b.WhiskerLow <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.WhiskerHigh) {
			t.Fatalf("box ordering violated: %+v", b)
		}
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	xs, ps := c.Points()
	if len(xs) != 4 || len(ps) != 4 {
		t.Fatalf("Points lengths %d, %d", len(xs), len(ps))
	}
	if !sort.Float64sAreSorted(xs) || !sort.Float64sAreSorted(ps) {
		t.Error("Points not sorted")
	}
	if ps[3] != 1 {
		t.Errorf("last p = %v, want 1", ps[3])
	}
	if _, err := NewCDF(nil); err == nil {
		t.Error("expected error for empty CDF")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for q := -2.0; q <= 2.0; q += 0.25 {
			p := c.At(q)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionWithin(t *testing.T) {
	ratios := []float64{1.0, 1.05, 0.95, 1.2, 0.5}
	if got := FractionWithin(ratios, 0.1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("FractionWithin(0.1) = %v, want 0.6", got)
	}
	if got := FractionWithin(nil, 0.1); got != 0 {
		t.Errorf("FractionWithin(nil) = %v, want 0", got)
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	ysNeg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, ysNeg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
	if _, err := Pearson(xs, xs[:2]); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("expected zero-variance error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has rank correlation exactly 1.
	xs := []float64{1, 5, 3, 9, 7, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // nonlinear but monotone
	}
	r, err := Spearman(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman = %v, %v; want 1", r, err)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	r, err := Spearman(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman with ties = %v, %v; want 1", r, err)
	}
}

func TestSpearmanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		r, err := Spearman(xs, ys)
		if err != nil {
			continue
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("Spearman out of bounds: %v", r)
		}
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
	if got := f.Eval(10); math.Abs(got-21) > 1e-12 {
		t.Errorf("Eval(10) = %v, want 21", got)
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("expected zero-x-variance error")
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 0.05*xs[i] + 20 + rng.NormFloat64()*0.5
	}
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-0.05) > 0.005 {
		t.Errorf("slope = %v, want ~0.05", f.Slope)
	}
	if math.Abs(f.Intercept-20) > 0.5 {
		t.Errorf("intercept = %v, want ~20", f.Intercept)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(10, 1)
	h.Add(49.99, 2)
	h.Add(50, 1)
	h.Add(225, 5)
	h.Add(-1, 100) // below origin: dropped
	if len(h.Counts) != 5 {
		t.Fatalf("bins = %d, want 5", len(h.Counts))
	}
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 5 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 9 {
		t.Errorf("Total = %v, want 9", h.Total())
	}
	if c := h.BinCenter(0); c != 25 {
		t.Errorf("BinCenter(0) = %v, want 25", c)
	}
	if _, err := NewHistogram(0, 0); err == nil {
		t.Error("expected error for zero width")
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {50, 3, 19600},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	// C(50,10) ≈ 1.0272e10 — the Figure 16 scaling factor.
	if got := Choose(50, 10); math.Abs(got-1.0272278170e10)/1.0272278170e10 > 1e-6 {
		t.Errorf("Choose(50,10) = %v", got)
	}
	if got := Choose(5, 6); got != 0 {
		t.Errorf("Choose(5,6) = %v, want 0", got)
	}
	if got := Choose(5, -1); got != 0 {
		t.Errorf("Choose(5,-1) = %v, want 0", got)
	}
}

func TestChooseSymmetryProperty(t *testing.T) {
	for n := 0; n <= 60; n++ {
		for k := 0; k <= n; k++ {
			a := LogChoose(n, k)
			b := LogChoose(n, n-k)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("LogChoose(%d,%d)=%v != LogChoose(%d,%d)=%v", n, k, a, n, n-k, b)
			}
		}
	}
}
