package stats

import (
	"errors"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient
// between xs and ys, which must be the same nonzero length.
func Pearson(xs, ys []float64) (float64, error) {
	if err := checkPaired(xs, ys); err != nil {
		return 0, err
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank-order correlation between xs and ys.
// Ties receive average (fractional) ranks. The paper reports 0.997 between
// Ting's estimates and the PlanetLab ground truth (§4.2).
func Spearman(xs, ys []float64) (float64, error) {
	if err := checkPaired(xs, ys); err != nil {
		return 0, err
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return Pearson(rx, ry)
}

// ranks assigns average ranks (1-based) with ties sharing their mean rank.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i..j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// LinearFit is a least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine computes the ordinary least-squares line through (xs, ys). The
// paper fits latency-vs-distance for Figure 8 and compares its slope to the
// Htrae fit.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if err := checkPaired(xs, ys); err != nil {
		return LinearFit{}, err
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: zero x variance")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			r := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	}
	return fit, nil
}

// Eval returns the fitted y for x.
func (f LinearFit) Eval(x float64) float64 { return f.Slope*x + f.Intercept }

func checkPaired(xs, ys []float64) error {
	if len(xs) == 0 {
		return ErrEmpty
	}
	if len(xs) != len(ys) {
		return errors.New("stats: length mismatch")
	}
	return nil
}
