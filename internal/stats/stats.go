// Package stats provides the statistical machinery shared by the Ting
// reproduction: empirical CDFs, quantiles, boxplot summaries, rank and
// linear correlation, least-squares fits, coefficients of variation,
// histograms, and log-domain binomial coefficients for the circuit-count
// scaling of Figure 16.
//
// Everything here is deterministic and stdlib-only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Min returns the minimum of xs, or an error if xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs, or an error if xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of xs, or an error if xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// CoefficientOfVariation returns the population standard deviation divided
// by the mean (the c_v of Figure 9). The mean must be nonzero.
func CoefficientOfVariation(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: coefficient of variation undefined for zero mean")
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / m, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

// quantileSorted computes a quantile assuming s is sorted ascending.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// BoxStats is the five-number summary used by the paper's boxplots
// (Figures 5 and 10): median, interquartile range, and the minimum and
// maximum values lying within the interquartile fences.
type BoxStats struct {
	Median       float64
	Q1, Q3       float64
	WhiskerLow   float64 // smallest value ≥ Q1 - 1.5*IQR
	WhiskerHigh  float64 // largest value ≤ Q3 + 1.5*IQR
	OutlierCount int
	N            int
}

// Box computes a BoxStats over xs.
func Box(xs []float64) (BoxStats, error) {
	if len(xs) == 0 {
		return BoxStats{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := BoxStats{
		Median: quantileSorted(s, 0.5),
		Q1:     quantileSorted(s, 0.25),
		Q3:     quantileSorted(s, 0.75),
		N:      len(s),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLow = b.Q3
	b.WhiskerHigh = b.Q1
	first := true
	for _, v := range s {
		if v < loFence || v > hiFence {
			b.OutlierCount++
			continue
		}
		if first {
			b.WhiskerLow, b.WhiskerHigh = v, v
			first = false
			continue
		}
		if v < b.WhiskerLow {
			b.WhiskerLow = v
		}
		if v > b.WhiskerHigh {
			b.WhiskerHigh = v
		}
	}
	// Interpolated quartiles can lie beyond every in-fence sample for tiny
	// inputs; clamp so WhiskerLow ≤ Q1 ≤ Q3 ≤ WhiskerHigh always holds.
	b.WhiskerLow = math.Min(b.WhiskerLow, b.Q1)
	b.WhiskerHigh = math.Max(b.WhiskerHigh, b.Q3)
	return b, nil
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over xs. It copies the input.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values so At is right-continuous.
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile of the underlying sample.
func (c *CDF) Quantile(q float64) float64 { return quantileSorted(c.sorted, clamp01(q)) }

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Points returns (x, P(X ≤ x)) pairs suitable for plotting: one point per
// sample, in ascending x order.
func (c *CDF) Points() (xs, ps []float64) {
	xs = append([]float64(nil), c.sorted...)
	ps = make([]float64, len(xs))
	for i := range xs {
		ps[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ps
}

func clamp01(q float64) float64 {
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// FractionWithin returns the fraction of ratio samples lying within frac of
// 1.0, i.e. |x-1| ≤ frac. Used for headline accuracy numbers such as "91% of
// estimates are within 10% of the true value" (§4.2).
func FractionWithin(ratios []float64, frac float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	n := 0
	for _, r := range ratios {
		if math.Abs(r-1) <= frac {
			n++
		}
	}
	return float64(n) / float64(len(ratios))
}
