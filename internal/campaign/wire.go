package campaign

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Lease is the coordinator's grant of one shard to one worker. Epoch is
// the fencing token: the coordinator bumps it on every grant of the same
// shard, accepts heartbeats and completions only at the shard's highest
// granted epoch, and so guarantees at most one live writer per shard no
// matter how many crashed predecessors limp back. TTL is how long the
// lease survives without a heartbeat.
type Lease struct {
	Shard Shard
	Epoch uint64
	TTL   time.Duration
}

// EncodeLease renders l as its one-line wire form:
//
//	lease id=<id> ti=<ti> tj=<tj> lo=<lo> hi=<hi> epoch=<epoch> ttl_ms=<ms>
//
// The shard ID is redundant with the geometry; carrying both lets
// DecodeLease cross-check the line against itself.
func EncodeLease(l Lease) string {
	return fmt.Sprintf("lease id=%s ti=%d tj=%d lo=%d hi=%d epoch=%d ttl_ms=%d",
		l.Shard.ID, l.Shard.TI, l.Shard.TJ, l.Shard.Lo, l.Shard.Hi,
		l.Epoch, l.TTL.Milliseconds())
}

// DecodeLease parses the wire form produced by EncodeLease, rejecting
// anything whose geometry is invalid, whose ID disagrees with its
// geometry, or whose epoch or TTL could not fence anything.
func DecodeLease(line string) (Lease, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 8 || fields[0] != "lease" {
		return Lease{}, fmt.Errorf("campaign: malformed lease line %q", line)
	}
	var (
		l  Lease
		id string
	)
	ttlMs := int64(-1)
	ti, tj, lo, hi := -1, -1, -1, -1
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Lease{}, fmt.Errorf("campaign: malformed lease field %q", f)
		}
		var err error
		switch k {
		case "id":
			id = v
		case "ti":
			ti, err = strconv.Atoi(v)
		case "tj":
			tj, err = strconv.Atoi(v)
		case "lo":
			lo, err = strconv.Atoi(v)
		case "hi":
			hi, err = strconv.Atoi(v)
		case "epoch":
			l.Epoch, err = strconv.ParseUint(v, 10, 64)
		case "ttl_ms":
			ttlMs, err = strconv.ParseInt(v, 10, 64)
		default:
			return Lease{}, fmt.Errorf("campaign: unknown lease field %q", k)
		}
		if err != nil {
			return Lease{}, fmt.Errorf("campaign: malformed lease field %q: %w", f, err)
		}
	}
	if id == "" {
		return Lease{}, fmt.Errorf("campaign: lease line %q missing id", line)
	}
	l.Shard = Shard{ID: id, TI: ti, TJ: tj, Lo: lo, Hi: hi}
	if err := l.Shard.Validate(); err != nil {
		return Lease{}, err
	}
	if l.Epoch == 0 {
		return Lease{}, fmt.Errorf("campaign: lease %s has epoch 0", id)
	}
	if ttlMs <= 0 {
		return Lease{}, fmt.Errorf("campaign: lease %s has non-positive TTL", id)
	}
	l.TTL = time.Duration(ttlMs) * time.Millisecond
	return l, nil
}
