package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"ting/internal/ting"
)

// Journal record kinds. A coordinator journal is a write-ahead log: the
// campaign header (canonical names, shard geometry, lease TTL) followed by
// one grant record per lease issued and one complete record (carrying the
// winning submission's results) per finished shard. Grants and completes
// reach disk before the state change they describe is acknowledged, so a
// coordinator rebuilt from the journal can never contradict anything a
// worker was told. Informational lost-pair records ride along fsync-batched.
const (
	journalCampaign = "campaign"
	journalGrant    = "grant"
	journalComplete = "complete"
	journalLost     = "lost"
)

// journalShard is a shard's pure geometry as journaled; the ID is
// rederived on replay, so a journal cannot smuggle in a mismatched name.
type journalShard struct {
	TI int `json:"ti"`
	TJ int `json:"tj"`
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// journalResult is one pair of a journaled submission.
type journalResult struct {
	X      string  `json:"x"`
	Y      string  `json:"y"`
	RTT    float64 `json:"rtt,omitempty"`
	Failed bool    `json:"failed,omitempty"`
}

// journalRecord is one line of the coordinator journal. encoding/json
// round-trips float64 exactly, so replayed submissions merge bytewise
// identically to the live ones.
type journalRecord struct {
	Kind string `json:"t"`
	// Campaign header.
	Names  []string       `json:"names,omitempty"`
	Shards []journalShard `json:"shards,omitempty"`
	TTLMs  int64          `json:"ttl_ms,omitempty"`
	// Campaign header (compacted): the fencing-epoch watermark at snapshot
	// time, covering grants whose records the compaction dropped.
	Watermark uint64 `json:"watermark,omitempty"`
	// Grant/complete.
	Shard    string          `json:"shard,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	Epoch    uint64          `json:"epoch,omitempty"`
	Deadline int64           `json:"deadline,omitempty"` // grant: lease deadline, unix nanos
	Results  []journalResult `json:"results,omitempty"`
	// Grant (compacted snapshots only): re-grants folded away by
	// compaction, so Status.Reassigned survives a recovery.
	Regrants int `json:"regrants,omitempty"`
	// Lost: one pair the winning submission marked failed.
	X string `json:"x,omitempty"`
	Y string `json:"y,omitempty"`
}

func encodeJournalRecord(rec journalRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return append(b, '\n'), nil
}

// decodeJournalRecord parses and validates one journal line. Unknown
// record kinds decode to a record the replay skips (forward
// compatibility); known kinds with impossible fields are errors.
func decodeJournalRecord(raw []byte) (journalRecord, error) {
	var rec journalRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return journalRecord{}, err
	}
	switch rec.Kind {
	case journalCampaign:
		if len(rec.Names) < 2 {
			return journalRecord{}, fmt.Errorf("campaign: journal header with %d relays", len(rec.Names))
		}
		if len(rec.Shards) == 0 {
			return journalRecord{}, errors.New("campaign: journal header without shards")
		}
		if rec.TTLMs <= 0 {
			return journalRecord{}, errors.New("campaign: journal header with non-positive TTL")
		}
		for _, g := range rec.Shards {
			if err := (NewShard(g.TI, g.TJ, g.Lo, g.Hi)).Validate(); err != nil {
				return journalRecord{}, err
			}
		}
	case journalGrant:
		if rec.Shard == "" || rec.Epoch == 0 {
			return journalRecord{}, fmt.Errorf("campaign: journal grant %q epoch %d", rec.Shard, rec.Epoch)
		}
		if rec.Regrants < 0 {
			return journalRecord{}, fmt.Errorf("campaign: journal grant with %d regrants", rec.Regrants)
		}
	case journalComplete:
		if rec.Shard == "" || rec.Epoch == 0 {
			return journalRecord{}, fmt.Errorf("campaign: journal complete %q epoch %d", rec.Shard, rec.Epoch)
		}
		for _, r := range rec.Results {
			if r.X == "" || r.Y == "" || r.X == r.Y {
				return journalRecord{}, fmt.Errorf("campaign: journal result pair (%q,%q)", r.X, r.Y)
			}
		}
	case journalLost:
		if rec.Shard == "" || rec.X == "" || rec.Y == "" {
			return journalRecord{}, errors.New("campaign: journal lost record incomplete")
		}
	}
	return rec, nil
}

// Journal is the coordinator's durable write-ahead log: one JSON record
// per line, each appended with a single write syscall. State-machine
// records (grants, completes) are fsynced before the append returns — the
// WAL contract: nothing is acknowledged to a worker that a recovered
// coordinator would not know. Informational records batch their fsyncs.
type Journal struct {
	// SyncEvery is the fsync batch size for informational (lost-pair)
	// records; default 8. State-machine records always sync.
	SyncEvery int

	path string

	mu       sync.Mutex
	f        *os.File
	unsynced int
}

// CreateJournal starts a fresh journal at path, writing (and syncing) the
// campaign header. It refuses to overwrite an existing non-empty journal —
// that is a recovery situation, not a new campaign.
func CreateJournal(path string, names []string, shards []Shard, ttl time.Duration) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: journal: %w", err)
	} else if fi.Size() > 0 {
		f.Close()
		return nil, fmt.Errorf("campaign: journal %s already exists; recover it instead", path)
	}
	j := &Journal{path: path, f: f}
	if err := j.append(journalHeader(names, shards, ttl, 0), true); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// openJournalForAppend reopens an existing journal's append handle — the
// recovery path, after its content has been replayed. A torn final write
// is trimmed first: without that, the first post-recovery append would
// concatenate onto the torn fragment, turning a tolerated torn tail into
// mid-file corruption on the next recovery.
func openJournalForAppend(path string) (*Journal, error) {
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// truncateTornTail trims the journal back to its longest decodable prefix
// of whole lines. replayJournal has already vetted the file, so anything
// this cuts is the single torn tail replay tolerated — a line with no
// newline, or one that does not decode.
func truncateTornTail(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	br := bufio.NewReader(f)
	var valid, off int64
	for {
		line, err := br.ReadBytes('\n')
		off += int64(len(line))
		if err != nil {
			// EOF with a partial (newline-less) line: torn tail, not valid.
			break
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) != 0 {
			if _, derr := decodeJournalRecord(trimmed); derr != nil {
				break
			}
		}
		valid = off
	}
	size, err := f.Seek(0, io.SeekEnd)
	closeErr := f.Close()
	if err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	if closeErr != nil {
		return fmt.Errorf("campaign: journal: %w", closeErr)
	}
	if valid < size {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("campaign: journal: %w", err)
		}
	}
	return nil
}

func journalHeader(names []string, shards []Shard, ttl time.Duration, watermark uint64) journalRecord {
	geo := make([]journalShard, len(shards))
	for i, sh := range shards {
		geo[i] = journalShard{TI: sh.TI, TJ: sh.TJ, Lo: sh.Lo, Hi: sh.Hi}
	}
	return journalRecord{
		Kind:      journalCampaign,
		Names:     names,
		Shards:    geo,
		TTLMs:     ttl.Milliseconds(),
		Watermark: watermark,
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// append writes one record; sync forces it to disk before returning.
func (j *Journal) append(rec journalRecord, sync bool) error {
	b, err := encodeJournalRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("campaign: journal: closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	j.unsynced++
	every := j.SyncEvery
	if every <= 0 {
		every = 8
	}
	if sync || j.unsynced >= every {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("campaign: journal: %w", err)
		}
		j.unsynced = 0
	}
	return nil
}

// Sync forces any unsynced batch to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.unsynced == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Close syncs and closes the journal. Appending afterwards errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if syncErr != nil {
		return fmt.Errorf("campaign: journal: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("campaign: journal: %w", closeErr)
	}
	return nil
}

// rewrite atomically replaces the journal's content with recs (a
// compacting snapshot): write to a temp file, fsync it, rename over the
// journal, and swap the append handle. A crash at any point leaves either
// the old journal or the new one — never a mix.
func (j *Journal) rewrite(recs []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("campaign: journal: closed")
	}
	tmp := j.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	for _, rec := range recs {
		b, err := encodeJournalRecord(rec)
		if err != nil {
			tf.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := tf.Write(b); err != nil {
			tf.Close()
			os.Remove(tmp)
			return fmt.Errorf("campaign: journal: %w", err)
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: journal: %w", err)
	}
	// The old handle now points at an unlinked inode; future appends must
	// land in the renamed snapshot.
	syncOld := j.f.Close()
	j.f = tf
	j.unsynced = 0
	if syncOld != nil {
		return fmt.Errorf("campaign: journal: %w", syncOld)
	}
	return nil
}

// grantInfo is the latest journaled grant of one shard.
type grantInfo struct {
	worker   string
	epoch    uint64
	deadline time.Time
	regrants int // times the shard was granted beyond the first
}

// doneInfo is a shard's journaled winning submission.
type doneInfo struct {
	worker  string
	epoch   uint64
	results []PairResult
}

// journalState is the aggregated view of a coordinator journal.
type journalState struct {
	names     []string
	shards    []Shard
	ttl       time.Duration
	watermark uint64 // highest fencing epoch ever granted
	grants    map[string]grantInfo
	done      map[string]doneInfo
	records   int
}

// replayJournal reads a coordinator journal back into its aggregated
// state, torn-tail-tolerantly, enforcing the journal's own invariants:
// exactly one header, first; grant epochs strictly increasing
// (coordinator-global monotonic fencing); completes only for journaled
// shards at their recorded epoch.
func replayJournal(path string) (*journalState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	defer f.Close()
	st := &journalState{
		grants: make(map[string]grantInfo),
		done:   make(map[string]doneInfo),
	}
	known := make(map[string]bool)
	lastGrant := uint64(0)
	err = ting.ReplayJSONL(f, func(raw []byte) error {
		rec, err := decodeJournalRecord(raw)
		if err != nil {
			return &ting.DecodeError{Err: err}
		}
		st.records++
		switch rec.Kind {
		case journalCampaign:
			if st.names != nil {
				return errors.New("campaign: journal has a second campaign header")
			}
			st.names = rec.Names
			st.ttl = time.Duration(rec.TTLMs) * time.Millisecond
			st.watermark = rec.Watermark
			for _, g := range rec.Shards {
				sh := NewShard(g.TI, g.TJ, g.Lo, g.Hi)
				st.shards = append(st.shards, sh)
				known[sh.ID] = true
			}
		case journalGrant:
			if st.names == nil {
				return errors.New("campaign: journal grant before campaign header")
			}
			if !known[rec.Shard] {
				return fmt.Errorf("campaign: journal grant for unknown shard %s", rec.Shard)
			}
			// Grant records are strictly increasing by epoch within one
			// journal file — the coordinator-global monotonic fencing counter
			// made visible. (A compacted snapshot's header watermark may sit
			// above its re-emitted grants; appends after recovery resume
			// strictly above both.)
			if rec.Epoch <= lastGrant {
				return fmt.Errorf("campaign: journal grant epoch %d not above previous grant %d (fencing violated)",
					rec.Epoch, lastGrant)
			}
			lastGrant = rec.Epoch
			if rec.Epoch > st.watermark {
				st.watermark = rec.Epoch
			}
			g := st.grants[rec.Shard]
			if g.epoch != 0 {
				g.regrants++ // a re-grant observed directly in this file
			}
			g.regrants += rec.Regrants // re-grants folded into a snapshot
			g.worker = rec.Worker
			g.epoch = rec.Epoch
			g.deadline = time.Unix(0, rec.Deadline)
			st.grants[rec.Shard] = g
		case journalComplete:
			if st.names == nil {
				return errors.New("campaign: journal complete before campaign header")
			}
			if !known[rec.Shard] {
				return fmt.Errorf("campaign: journal complete for unknown shard %s", rec.Shard)
			}
			g, granted := st.grants[rec.Shard]
			if !granted || rec.Epoch != g.epoch {
				return fmt.Errorf("campaign: journal complete for shard %s at epoch %d, latest grant %d",
					rec.Shard, rec.Epoch, g.epoch)
			}
			if prev, dup := st.done[rec.Shard]; dup && prev.epoch != rec.Epoch {
				return fmt.Errorf("campaign: journal completes shard %s twice at different epochs", rec.Shard)
			}
			results := make([]PairResult, len(rec.Results))
			for i, r := range rec.Results {
				results[i] = PairResult{X: r.X, Y: r.Y, RTT: r.RTT, Failed: r.Failed}
			}
			st.done[rec.Shard] = doneInfo{worker: rec.Worker, epoch: rec.Epoch, results: results}
		case journalLost:
			// Informational; the failed pairs already live in the complete
			// record's results.
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st.names == nil {
		return nil, fmt.Errorf("campaign: journal %s has no campaign header", path)
	}
	return st, nil
}
