package campaign

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func fakeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("relay%03d", i)
	}
	return names
}

// TestPartitionCoversAllPairs checks, across tile boundaries (TileDim=64),
// that every unordered pair lands in exactly one shard.
func TestPartitionCoversAllPairs(t *testing.T) {
	for _, n := range []int{2, 5, 20, 64, 70, 130} {
		for _, target := range []int{1, 4, 12, 1000} {
			names := fakeNames(n)
			shards := Partition(n, target)
			seen := make(map[[2]string]string)
			for _, sh := range shards {
				pairs, err := sh.Pairs(names)
				if err != nil {
					t.Fatalf("n=%d target=%d shard %s: %v", n, target, sh.ID, err)
				}
				if len(pairs) != sh.PairCount() {
					t.Fatalf("shard %s yielded %d pairs, claims %d", sh.ID, len(pairs), sh.PairCount())
				}
				for _, p := range pairs {
					if owner, dup := seen[p]; dup {
						t.Fatalf("n=%d target=%d: pair %v in both %s and %s", n, target, p, owner, sh.ID)
					}
					seen[p] = sh.ID
				}
			}
			if want := n * (n - 1) / 2; len(seen) != want {
				t.Fatalf("n=%d target=%d: %d pairs covered, want %d", n, target, len(seen), want)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := Partition(70, 12)
	b := Partition(70, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Partition is not deterministic")
	}
	if len(a) < 12 {
		t.Errorf("Partition(70, 12) made %d shards, want at least the target", len(a))
	}
}

func TestLeaseWireRoundTrip(t *testing.T) {
	in := Lease{Shard: NewShard(1, 2, 10, 64), Epoch: 7, TTL: 1500 * time.Millisecond}
	out, err := DecodeLease(EncodeLease(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	for _, bad := range []string{
		"",
		"lease",
		"nonsense id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100",
		"lease id=wrong ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100",       // ID mismatch
		"lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=0 ttl_ms=100",   // epoch 0
		"lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=0",     // no TTL
		"lease id=t0-0.p1-0 ti=0 tj=0 lo=1 hi=0 epoch=1 ttl_ms=100",   // hi <= lo
		"lease id=t1-0.p0-1 ti=1 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100",   // tj < ti
		"lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=x ttl_ms=100",   // bad int
		"lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100 x", // extra field
	} {
		if _, err := DecodeLease(bad); err == nil {
			t.Errorf("DecodeLease(%q) succeeded, want error", bad)
		}
	}
}

// fakeClock drives a Coordinator by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func fullResults(t *testing.T, sh Shard, names []string) []PairResult {
	t.Helper()
	pairs, err := sh.Pairs(names)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]PairResult, len(pairs))
	for i, p := range pairs {
		out[i] = PairResult{X: p[0], Y: p[1], RTT: float64(10 + i)}
	}
	return out
}

// TestLeaseLifecycle walks grant → heartbeat renewal → expiry →
// reassignment at a higher epoch → fenced stale writer → completion by the
// new holder, all on a hand-driven clock.
func TestLeaseLifecycle(t *testing.T) {
	names := fakeNames(4)
	shards := []Shard{NewShard(0, 0, 0, 6)} // all 6 pairs, one shard
	clock := newFakeClock()
	c, err := NewCoordinator(names, shards, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clock.now

	// Grant to w1.
	l1, res, err := c.Acquire("w1")
	if err != nil || res != AcquireGranted || l1.Epoch != 1 {
		t.Fatalf("first acquire: %v %v epoch %d", res, err, l1.Epoch)
	}
	// The only shard is out: nothing for w2.
	if _, res, _ := c.Acquire("w2"); res != AcquireNone {
		t.Fatalf("second acquire: %v, want none", res)
	}

	// Heartbeats keep the lease alive across several TTL-sized windows.
	for i := 0; i < 3; i++ {
		clock.advance(700 * time.Millisecond)
		if err := c.Heartbeat("w1", l1.Shard.ID, l1.Epoch); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if _, res, _ := c.Acquire("w2"); res != AcquireNone {
		t.Fatal("renewed lease was stolen")
	}

	// Silence past the TTL: the shard is re-granted to w2 at a higher epoch.
	clock.advance(1100 * time.Millisecond)
	l2, res, err := c.Acquire("w2")
	if err != nil {
		t.Fatal(err)
	}
	if res != AcquireGranted {
		t.Fatalf("post-expiry acquire: %v, want granted", res)
	}
	if l2.Shard.ID != l1.Shard.ID || l2.Epoch <= l1.Epoch {
		t.Fatalf("reassignment: shard %s epoch %d (was %s epoch %d)", l2.Shard.ID, l2.Epoch, l1.Shard.ID, l1.Epoch)
	}

	// The stale holder is fenced out of everything.
	if err := c.Heartbeat("w1", l1.Shard.ID, l1.Epoch); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale heartbeat: %v, want ErrFenced", err)
	}
	if err := c.Complete("w1", l1.Shard.ID, l1.Epoch, fullResults(t, l1.Shard, names)); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale complete: %v, want ErrFenced", err)
	}

	// The new holder completes; done fires; a duplicate submission at the
	// winning epoch is an idempotent no-op.
	if err := c.Complete("w2", l2.Shard.ID, l2.Epoch, fullResults(t, l2.Shard, names)); err != nil {
		t.Fatalf("complete: %v", err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed after last shard completed")
	}
	if err := c.Complete("w2", l2.Shard.ID, l2.Epoch, fullResults(t, l2.Shard, names)); err != nil {
		t.Fatalf("duplicate complete: %v", err)
	}
	if _, res, _ := c.Acquire("w3"); res != AcquireDone {
		t.Fatalf("acquire after done: %v, want done", res)
	}

	st := c.Snapshot()
	if st.Reassigned != 1 || st.Done != 1 || st.LostPairs != 0 {
		t.Errorf("snapshot = %+v, want 1 reassignment, 1 done, 0 lost", st)
	}
}

// TestLeaseResurrection: a worker that went quiet but whose shard was not
// yet re-granted still holds the highest epoch, so its late heartbeat
// revives the lease instead of forfeiting the work.
func TestLeaseResurrection(t *testing.T) {
	names := fakeNames(3)
	clock := newFakeClock()
	c, err := NewCoordinator(names, []Shard{NewShard(0, 0, 0, 3)}, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clock.now
	l, res, err := c.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	clock.advance(1500 * time.Millisecond) // expired, nobody re-acquired
	if err := c.Heartbeat("w1", l.Shard.ID, l.Epoch); err != nil {
		t.Fatalf("late heartbeat on un-regranted lease: %v", err)
	}
	if _, res, _ := c.Acquire("w2"); res != AcquireNone {
		t.Fatal("resurrected lease handed to w2")
	}
	if err := c.Complete("w1", l.Shard.ID, l.Epoch, fullResults(t, l.Shard, names)); err != nil {
		t.Fatalf("complete after resurrection: %v", err)
	}
}

func TestCompleteDemandsFullCoverage(t *testing.T) {
	names := fakeNames(3)
	clock := newFakeClock()
	c, err := NewCoordinator(names, []Shard{NewShard(0, 0, 0, 3)}, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clock.now
	l, _, _ := c.Acquire("w1")
	full := fullResults(t, l.Shard, names)

	if err := c.Complete("w1", l.Shard.ID, l.Epoch, full[:len(full)-1]); err == nil {
		t.Error("partial submission accepted")
	}
	if err := c.Complete("w1", l.Shard.ID, l.Epoch, append(append([]PairResult{}, full...), full[0])); err == nil {
		t.Error("duplicated pair accepted")
	}
	stray := append(append([]PairResult{}, full[:len(full)-1]...), PairResult{X: "relay000", Y: "ghost", RTT: 1})
	if err := c.Complete("w1", l.Shard.ID, l.Epoch, stray); err == nil {
		t.Error("stray pair accepted")
	}
	if err := c.Complete("w1", "no-such-shard", l.Epoch, full); !errors.Is(err, ErrUnknownShard) {
		t.Errorf("unknown shard: %v", err)
	}
	// A failed pair still counts as coverage.
	full[0].Failed = true
	full[0].RTT = 0
	if err := c.Complete("w1", l.Shard.ID, l.Epoch, full); err != nil {
		t.Fatalf("submission with failed pair: %v", err)
	}
	if st := c.Snapshot(); st.LostPairs != 1 {
		t.Errorf("lost pairs = %d, want 1", st.LostPairs)
	}
}

// TestMergedMatchesSubmissions: the coordinator's merge output holds
// exactly the submitted values, with failed pairs left missing.
func TestMergedMatchesSubmissions(t *testing.T) {
	names := fakeNames(5) // 10 pairs
	shards := Partition(5, 3)
	clock := newFakeClock()
	c, err := NewCoordinator(names, shards, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clock.now
	if _, err := c.Merged(); err == nil {
		t.Fatal("Merged before done succeeded")
	}
	want := make(map[[2]string]float64)
	for {
		l, res, err := c.Acquire("w")
		if err != nil {
			t.Fatal(err)
		}
		if res == AcquireDone {
			break
		}
		if res != AcquireGranted {
			t.Fatalf("acquire: %v", res)
		}
		results := fullResults(t, l.Shard, names)
		for i := range results {
			results[i].RTT = float64(l.Epoch*100) + float64(i)
			want[[2]string{results[i].X, results[i].Y}] = results[i].RTT
		}
		if err := c.Complete("w", l.Shard.ID, l.Epoch, results); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Merged()
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range want {
		got, err := m.RTT(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("pair %v = %g, want %g", p, got, v)
		}
	}
}
