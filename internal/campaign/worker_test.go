package campaign

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"ting/internal/stats"
	"ting/internal/ting"
)

func TestIsTransient(t *testing.T) {
	te := &TransportError{Op: "dial", Err: errors.New("connection refused")}
	if !IsTransient(te) {
		t.Error("bare TransportError not transient")
	}
	wrapped := errors.Join(errors.New("outer"), te)
	if !IsTransient(wrapped) {
		t.Error("wrapped TransportError not transient")
	}
	if IsTransient(ErrFenced) {
		t.Error("ErrFenced classified transient")
	}
	if IsTransient(errors.New("server said no")) {
		t.Error("plain verdict classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
}

// deadAddr returns an address nothing listens on: bind a port, remember
// it, close the listener.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestWorkerGivesUpAfterUnreachableGrace: a worker pointed at a dead
// coordinator retries with backoff for the grace window, then exits with a
// terminal error instead of spinning forever — and does so on the grace
// clock, not after a fixed failure count.
func TestWorkerGivesUpAfterUnreachableGrace(t *testing.T) {
	w := &Worker{
		Name:             "lonely",
		Addr:             deadAddr(t),
		Scanner:          &ting.Scanner{NewMeasurer: func(int) (*ting.Measurer, error) { return nil, errors.New("unused") }},
		Backoff:          stats.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.2},
		UnreachableGrace: 250 * time.Millisecond,
	}
	start := time.Now()
	err := w.Run(context.Background())
	if err == nil {
		t.Fatal("worker against dead coordinator returned nil")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("error %q does not name the outage", err)
	}
	if took := time.Since(start); took < 250*time.Millisecond || took > 10*time.Second {
		t.Fatalf("gave up after %v, want roughly the 250ms grace window", took)
	}
}

// TestWorkerRunHonorsContext: cancellation beats the grace window — a
// worker stuck retrying a dead coordinator exits promptly when told to.
func TestWorkerRunHonorsContext(t *testing.T) {
	w := &Worker{
		Name:             "cancelled",
		Addr:             deadAddr(t),
		Scanner:          &ting.Scanner{NewMeasurer: func(int) (*ting.Measurer, error) { return nil, errors.New("unused") }},
		Backoff:          stats.Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2},
		UnreachableGrace: time.Hour,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker ignored context cancellation")
	}
}
