package campaign

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"ting/internal/directory"
)

// Verb is the request-line verb the campaign service claims on the
// directory transport. Every campaign request is "CAMP <op> ...".
const Verb = "CAMP"

// Server exposes a Coordinator over the directory server's line-text
// protocol. One listener carries both consensus traffic and campaign
// traffic; the campaign side claims the "CAMP" verb via
// directory.Server.Extend.
type Server struct {
	c *Coordinator
}

// NewServer wraps c for the wire.
func NewServer(c *Coordinator) *Server { return &Server{c: c} }

// Register claims the campaign verb on ds.
func (s *Server) Register(ds *directory.Server) { ds.Extend(Verb, s.handle) }

func (s *Server) handle(conn net.Conn, br *bufio.Reader, req string) {
	fields := strings.Fields(req)
	if len(fields) < 2 || fields[0] != Verb {
		fmt.Fprintln(conn, "error malformed campaign request")
		return
	}
	switch op, args := fields[1], fields[2:]; op {
	case "names":
		names := s.c.Names()
		bw := bufio.NewWriter(conn)
		fmt.Fprintf(bw, "names n=%d\n", len(names))
		for _, n := range names {
			fmt.Fprintln(bw, n)
		}
		bw.Flush()
	case "acquire":
		if len(args) != 1 {
			fmt.Fprintln(conn, "error acquire wants: CAMP acquire <worker>")
			return
		}
		lease, res, err := s.c.Acquire(args[0])
		if err != nil {
			// A journal write failed: the grant never happened. The worker
			// retries; no epoch was burned.
			fmt.Fprintf(conn, "error %v\n", err)
			return
		}
		switch res {
		case AcquireGranted:
			fmt.Fprintln(conn, EncodeLease(lease))
		case AcquireDone:
			fmt.Fprintln(conn, "done")
		default:
			fmt.Fprintln(conn, "none")
		}
	case "heartbeat":
		worker, id, epoch, err := leaseArgs(args)
		if err != nil {
			fmt.Fprintf(conn, "error %v\n", err)
			return
		}
		replyErr(conn, s.c.Heartbeat(worker, id, epoch))
	case "complete":
		worker, id, epoch, err := leaseArgs(args)
		if err != nil {
			fmt.Fprintf(conn, "error %v\n", err)
			return
		}
		results, err := readResults(br)
		if err != nil {
			fmt.Fprintf(conn, "error %v\n", err)
			return
		}
		replyErr(conn, s.c.Complete(worker, id, epoch, results))
	case "status":
		st := s.c.Snapshot()
		fmt.Fprintf(conn, "status total=%d done=%d leased=%d pending=%d reassigned=%d lost=%d\n",
			st.Total, st.Done, st.Leased, st.Pending, st.Reassigned, st.LostPairs)
	default:
		fmt.Fprintf(conn, "error unknown campaign op %q\n", op)
	}
}

func leaseArgs(args []string) (worker, id string, epoch uint64, err error) {
	if len(args) != 3 {
		return "", "", 0, errors.New("want: <worker> <shard> <epoch>")
	}
	epoch, err = strconv.ParseUint(args[2], 10, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad epoch %q", args[2])
	}
	return args[0], args[1], epoch, nil
}

// readResults consumes a completion body: one "pair <x> <y> <rtt>" or
// "fail <x> <y>" line per pair, terminated by "end".
func readResults(br *bufio.Reader) ([]PairResult, error) {
	var out []PairResult
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, errors.New("truncated completion body")
		}
		f := strings.Fields(line)
		switch {
		case len(f) == 1 && f[0] == "end":
			return out, nil
		case len(f) == 4 && f[0] == "pair":
			rtt, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad rtt %q", f[3])
			}
			out = append(out, PairResult{X: f[1], Y: f[2], RTT: rtt})
		case len(f) == 3 && f[0] == "fail":
			out = append(out, PairResult{X: f[1], Y: f[2], Failed: true})
		default:
			return nil, fmt.Errorf("bad completion line %q", strings.TrimSpace(line))
		}
	}
}

// replyErr maps a coordinator verdict onto the wire: nil → "ok", fencing
// → "fenced", anything else → "error <msg>".
func replyErr(conn net.Conn, err error) {
	switch {
	case err == nil:
		fmt.Fprintln(conn, "ok")
	case errors.Is(err, ErrFenced):
		fmt.Fprintln(conn, "fenced")
	default:
		fmt.Fprintf(conn, "error %v\n", err)
	}
}

// --- client side ---

// TransportError marks a campaign client call that never got a coordinator
// verdict: the dial, write, or read failed. Unlike a verdict (ErrFenced, a
// validation error), a transport failure says nothing about the lease —
// the coordinator may be mid-restart — so callers retry these with backoff
// instead of abandoning work. Worker.Run and runLease branch on it via
// IsTransient.
type TransportError struct {
	Op  string
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("campaign: %s: %v", e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// IsTransient reports whether err is a transport-level campaign failure —
// one worth retrying against the same coordinator address.
func IsTransient(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

func dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = directory.DefaultIOTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, &TransportError{Op: "dial", Err: err}
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	return conn, nil
}

// FetchNames asks the coordinator at addr for the campaign's canonical
// relay name order. Workers must scan against exactly this list.
func FetchNames(addr string) ([]string, error) {
	conn, err := dial(addr, 0)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s names\n", Verb); err != nil {
		return nil, &TransportError{Op: "fetch names", Err: err}
	}
	br := bufio.NewReader(conn)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, &TransportError{Op: "fetch names", Err: err}
	}
	header = strings.TrimSpace(header)
	var n int
	if _, err := fmt.Sscanf(header, "names n=%d", &n); err != nil {
		return nil, fmt.Errorf("campaign: bad names header %q", header)
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, &TransportError{Op: "fetch names", Err: errors.New("truncated reply")}
		}
		names = append(names, strings.TrimSpace(line))
	}
	return names, nil
}

// Acquire asks the coordinator at addr for a lease on behalf of worker.
func Acquire(addr, worker string) (Lease, AcquireResult, error) {
	conn, err := dial(addr, 0)
	if err != nil {
		return Lease{}, AcquireNone, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s acquire %s\n", Verb, worker); err != nil {
		return Lease{}, AcquireNone, &TransportError{Op: "acquire", Err: err}
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return Lease{}, AcquireNone, &TransportError{Op: "acquire", Err: err}
	}
	switch line = strings.TrimSpace(line); line {
	case "none":
		return Lease{}, AcquireNone, nil
	case "done":
		return Lease{}, AcquireDone, nil
	}
	lease, err := DecodeLease(line)
	if err != nil {
		return Lease{}, AcquireNone, err
	}
	return lease, AcquireGranted, nil
}

// Heartbeat renews worker's lease with the coordinator at addr. Returns
// ErrFenced when the coordinator has moved the shard on.
func Heartbeat(addr, worker string, l Lease) error {
	conn, err := dial(addr, 0)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s heartbeat %s %s %d\n", Verb, worker, l.Shard.ID, l.Epoch); err != nil {
		return &TransportError{Op: "heartbeat", Err: err}
	}
	return readVerdict(conn, "heartbeat")
}

// Complete submits worker's results for lease l to the coordinator at
// addr. RTTs travel as shortest-round-trip decimal strings, which
// round-trip float64 exactly — the wire cannot break bytewise merge
// equality. Returns ErrFenced when a newer epoch owns the shard.
func Complete(addr, worker string, l Lease, results []PairResult) error {
	conn, err := dial(addr, 0)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	fmt.Fprintf(bw, "%s complete %s %s %d\n", Verb, worker, l.Shard.ID, l.Epoch)
	for _, r := range results {
		if r.Failed {
			fmt.Fprintf(bw, "fail %s %s\n", r.X, r.Y)
			continue
		}
		fmt.Fprintf(bw, "pair %s %s %s\n", r.X, r.Y, strconv.FormatFloat(r.RTT, 'g', -1, 64))
	}
	fmt.Fprintln(bw, "end")
	if err := bw.Flush(); err != nil {
		return &TransportError{Op: "complete", Err: err}
	}
	return readVerdict(conn, "complete")
}

func readVerdict(conn net.Conn, op string) error {
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return &TransportError{Op: op, Err: err}
	}
	switch line = strings.TrimSpace(line); {
	case line == "ok":
		return nil
	case line == "fenced":
		return ErrFenced
	default:
		return fmt.Errorf("campaign: %s: server said %q", op, line)
	}
}
