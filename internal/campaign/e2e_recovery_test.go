package campaign

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/stats"
	"ting/internal/ting"
)

// TestCampaignSurvivesCoordinatorCrash is the durability acceptance
// scenario: a journaled coordinator is killed mid-campaign while leases
// are in flight, a fresh coordinator is recovered from the journal onto
// the same address, and the workers — who only ever see transport errors —
// ride the outage out with backoff. The campaign finishes with zero lost
// pairs, the merged matrix is bytewise equal to a single-process scan, and
// a full journal scan (replayJournal validates grant-epoch monotonicity)
// shows no stale epoch was ever reissued.
func TestCampaignSurvivesCoordinatorCrash(t *testing.T) {
	world, err := experiments.NewTestbedWorld(20, 97)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 2
	shards := Partition(len(world.Names), 12)
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	coord, err := NewJournaledCoordinator(world.Names, shards, 500*time.Millisecond, journal, nil)
	if err != nil {
		t.Fatal(err)
	}

	serve := func(c *Coordinator, addr string) (*directory.Server, string) {
		t.Helper()
		ds := directory.NewServer(directory.NewRegistry())
		NewServer(c).Register(ds)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		go ds.Serve(ln)
		return ds, ln.Addr().String()
	}
	ds, addr := serve(coord, "127.0.0.1:0")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Slow-ish workers, so the kill reliably lands while leases are out.
	workerErrs := make(chan error, 3)
	for _, name := range []string{"w1", "w2", "w3"} {
		sc := &ting.Scanner{
			NewMeasurer: func(int) (*ting.Measurer, error) {
				p := world.Prober(0)
				p.Exact = true
				return ting.NewMeasurer(ting.Config{
					Prober:  &slowProber{inner: p, delay: 5 * time.Millisecond},
					W:       world.W,
					Z:       world.Z,
					Samples: samples,
				})
			},
			Workers: 2,
		}
		w := &Worker{
			Name: name, Addr: addr,
			Scanner: sc,
			Poll:    20 * time.Millisecond,
			Backoff: stats.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, Jitter: 0.5},
			// Far beyond the restart gap: the outage must be invisible.
			UnreachableGrace: 30 * time.Second,
		}
		go func() { workerErrs <- w.Run(ctx) }()
	}

	// Kill the coordinator the moment it has leases in flight.
	waitUntil := time.Now().Add(30 * time.Second)
	for coord.Snapshot().Leased == 0 {
		if time.Now().After(waitUntil) {
			t.Fatal("no lease ever went out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	preKill := coord.Snapshot()
	ds.Close()
	// Let in-flight handlers drain; a SIGKILL would take them down with the
	// process, and the journal's WAL discipline means anything they manage
	// to append was acknowledged and must survive anyway.
	time.Sleep(300 * time.Millisecond)

	reborn, err := RecoverCoordinator(journal, nil)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	st := reborn.Snapshot()
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	if st.EpochWatermark < preKill.EpochWatermark {
		t.Fatalf("recovered watermark %d below pre-kill %d", st.EpochWatermark, preKill.EpochWatermark)
	}
	if st.Done < preKill.Done {
		t.Fatalf("recovery lost done shards: %d, had %d", st.Done, preKill.Done)
	}
	ds2, _ := serve(reborn, addr) // same address: workers reconnect to it
	defer ds2.Close()

	select {
	case <-reborn.Done():
	case <-ctx.Done():
		t.Fatalf("campaign did not finish after recovery: %+v", reborn.Snapshot())
	}
	for i := 0; i < 3; i++ {
		if err := <-workerErrs; err != nil {
			t.Errorf("worker: %v", err)
		}
	}

	final := reborn.Snapshot()
	if final.LostPairs != 0 {
		t.Fatalf("lost %d pairs", final.LostPairs)
	}
	if final.Done != final.Total {
		t.Fatalf("%d/%d shards done", final.Done, final.Total)
	}

	merged, err := reborn.Merged()
	if err != nil {
		t.Fatal(err)
	}
	single := &ting.Scanner{
		NewMeasurer: func(int) (*ting.Measurer, error) { return world.ExactMeasurer(samples) },
		Workers:     4,
	}
	ref, failures, err := single.Scan(ctx, world.Names)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("reference scan failures: %v", failures)
	}
	var got, want bytes.Buffer
	if err := merged.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if err := ref.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("merged matrix differs from single-process scan (%d vs %d bytes)", got.Len(), want.Len())
	}

	// The journal itself is the last witness: replaying it re-checks that
	// grant epochs only ever went up — across the crash included — and that
	// its final watermark matches the ledger's.
	js, err := replayJournal(journal)
	if err != nil {
		t.Fatalf("post-campaign journal scan: %v", err)
	}
	if js.watermark != final.EpochWatermark {
		t.Fatalf("journal watermark %d, ledger %d", js.watermark, final.EpochWatermark)
	}
	if len(js.done) != final.Total {
		t.Fatalf("journal shows %d done shards, want %d", len(js.done), final.Total)
	}
}
