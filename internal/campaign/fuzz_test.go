package campaign

import (
	"testing"
	"time"
)

// FuzzDecodeLease: arbitrary lease lines must never panic, and anything
// DecodeLease accepts must re-encode and re-decode to the identical lease
// (the wire is canonical: one lease, one line).
func FuzzDecodeLease(f *testing.F) {
	f.Add(EncodeLease(Lease{Shard: NewShard(0, 0, 0, 6), Epoch: 1, TTL: time.Second}))
	f.Add(EncodeLease(Lease{Shard: NewShard(1, 3, 10, 2016), Epoch: 999, TTL: 30 * time.Second}))
	f.Add("lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100")
	f.Add("lease id=wrong ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100")
	f.Add("lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=0 ttl_ms=0")
	f.Add("lease id=t9-9.p9-9 ti=9 tj=9 lo=9 hi=9 epoch=9 ttl_ms=9")
	f.Add("lease id=t0-0.p0-1 ti=-1 tj=-2 lo=-3 hi=-4 epoch=1 ttl_ms=-5")
	f.Add("lease id= ti= tj= lo= hi= epoch= ttl_ms=")
	f.Add("lease lease lease lease lease lease lease lease")
	f.Add("")
	f.Add("done")
	f.Add("none")
	f.Fuzz(func(t *testing.T, line string) {
		l, err := DecodeLease(line)
		if err != nil {
			return
		}
		if err := l.Shard.Validate(); err != nil {
			t.Fatalf("accepted lease fails validation: %v", err)
		}
		if l.Epoch == 0 || l.TTL <= 0 {
			t.Fatalf("accepted lease with epoch %d ttl %v", l.Epoch, l.TTL)
		}
		again, err := DecodeLease(EncodeLease(l))
		if err != nil {
			t.Fatalf("canonical lease does not decode: %v", err)
		}
		if again != l {
			t.Fatalf("round trip changed the lease: %+v → %+v", l, again)
		}
	})
}
