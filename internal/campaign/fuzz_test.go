package campaign

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// FuzzDecodeLease: arbitrary lease lines must never panic, and anything
// DecodeLease accepts must re-encode and re-decode to the identical lease
// (the wire is canonical: one lease, one line).
func FuzzDecodeLease(f *testing.F) {
	f.Add(EncodeLease(Lease{Shard: NewShard(0, 0, 0, 6), Epoch: 1, TTL: time.Second}))
	f.Add(EncodeLease(Lease{Shard: NewShard(1, 3, 10, 2016), Epoch: 999, TTL: 30 * time.Second}))
	f.Add("lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100")
	f.Add("lease id=wrong ti=0 tj=0 lo=0 hi=1 epoch=1 ttl_ms=100")
	f.Add("lease id=t0-0.p0-1 ti=0 tj=0 lo=0 hi=1 epoch=0 ttl_ms=0")
	f.Add("lease id=t9-9.p9-9 ti=9 tj=9 lo=9 hi=9 epoch=9 ttl_ms=9")
	f.Add("lease id=t0-0.p0-1 ti=-1 tj=-2 lo=-3 hi=-4 epoch=1 ttl_ms=-5")
	f.Add("lease id= ti= tj= lo= hi= epoch= ttl_ms=")
	f.Add("lease lease lease lease lease lease lease lease")
	f.Add("")
	f.Add("done")
	f.Add("none")
	f.Fuzz(func(t *testing.T, line string) {
		l, err := DecodeLease(line)
		if err != nil {
			return
		}
		if err := l.Shard.Validate(); err != nil {
			t.Fatalf("accepted lease fails validation: %v", err)
		}
		if l.Epoch == 0 || l.TTL <= 0 {
			t.Fatalf("accepted lease with epoch %d ttl %v", l.Epoch, l.TTL)
		}
		again, err := DecodeLease(EncodeLease(l))
		if err != nil {
			t.Fatalf("canonical lease does not decode: %v", err)
		}
		if again != l {
			t.Fatalf("round trip changed the lease: %+v → %+v", l, again)
		}
	})
}

// FuzzDecodeJournal: arbitrary journal lines must never panic, and
// anything decodeJournalRecord accepts must re-encode and re-decode to the
// identical record — the journal is canonical JSONL, so compaction
// (re-encoding replayed records) can never change their meaning.
func FuzzDecodeJournal(f *testing.F) {
	seed := func(rec journalRecord) {
		b, err := encodeJournalRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(journalHeader(fakeNames(3), []Shard{NewShard(0, 0, 0, 3)}, time.Second, 0))
	seed(journalHeader(fakeNames(5), Partition(5, 3), 30*time.Second, 42))
	seed(journalRecord{Kind: journalGrant, Shard: "t0-0.p0-3", Worker: "w1", Epoch: 1, Deadline: 1700000000000000000})
	seed(journalRecord{Kind: journalGrant, Shard: "t0-0.p0-3", Worker: "w2", Epoch: 7, Deadline: 1, Regrants: 3})
	seed(journalRecord{
		Kind: journalComplete, Shard: "t0-0.p0-3", Worker: "w1", Epoch: 1,
		Results: []journalResult{{X: "a", Y: "b", RTT: 1.25}, {X: "a", Y: "c", Failed: true}},
	})
	seed(journalRecord{Kind: journalLost, Shard: "t0-0.p0-3", Worker: "w1", Epoch: 1, X: "a", Y: "c"})
	f.Add([]byte(`{"t":"campaign","names":["a"],"shards":[],"ttl_ms":0}`))
	f.Add([]byte(`{"t":"grant","shard":"","epoch":0}`))
	f.Add([]byte(`{"t":"complete","shard":"s","epoch":1,"results":[{"x":"a","y":"a"}]}`))
	f.Add([]byte(`{"t":"lost","shard":"s"}`))
	f.Add([]byte(`{"t":"future-kind","whatever":1}`))
	f.Add([]byte(`{"t":"complete","shard":"s","epo`)) // torn tail
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, err := decodeJournalRecord(raw)
		if err != nil {
			return
		}
		b, err := encodeJournalRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		again, err := decodeJournalRecord(bytes.TrimSpace(b))
		if err != nil {
			t.Fatalf("canonical record does not decode: %v", err)
		}
		// omitempty drops empty-but-non-nil slices, so "[]" canonicalizes to
		// absent — same meaning, different Go representation.
		norm := func(r journalRecord) journalRecord {
			if len(r.Names) == 0 {
				r.Names = nil
			}
			if len(r.Shards) == 0 {
				r.Shards = nil
			}
			if len(r.Results) == 0 {
				r.Results = nil
			}
			return r
		}
		if !reflect.DeepEqual(norm(rec), norm(again)) {
			t.Fatalf("round trip changed the record:\n%+v\n%+v", rec, again)
		}
	})
}
