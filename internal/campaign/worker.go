package campaign

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"ting/internal/ting"
)

// Worker runs shard leases against a coordinator until the campaign is
// done. Its crash-tolerance contract: every measured pair is appended to
// Checkpoint before the lease completes, and a restarted worker replays
// its own log first — so a shard it was killed halfway through is
// finished (not re-measured) when the coordinator re-grants it, to this
// worker or any other holding the same log.
type Worker struct {
	// Name identifies the worker to the coordinator (logs and lease
	// ownership only; not a credential).
	Name string
	// Addr is the coordinator's directory-transport address.
	Addr string
	// Scanner does the measuring. Its Checkpoint should be the same log as
	// Checkpoint below; the worker appends shard records to it and the
	// scanner appends pair records.
	Scanner *ting.Scanner
	// Checkpoint is the worker's durable log (may be nil: no durability).
	Checkpoint ting.Checkpoint
	// HeartbeatEvery is the lease renewal cadence; default TTL/3.
	HeartbeatEvery time.Duration
	// Poll is how long to wait when every shard is leased out; default 200ms.
	Poll time.Duration
	// Dally, if positive, sleeps between leases — test and soak hook that
	// widens the window in which a kill lands mid-campaign.
	Dally time.Duration
	// Log, if non-nil, receives progress lines.
	Log *log.Logger
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log.Printf(format, args...)
	}
}

// Run leases and measures shards until the coordinator reports the
// campaign done, ctx is cancelled, or the coordinator becomes
// unreachable. It is the worker process's whole life; restart the process
// (same checkpoint path) to recover from a crash.
func (w *Worker) Run(ctx context.Context) error {
	if w.Scanner == nil {
		return errors.New("campaign: worker needs a scanner")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}

	// The campaign's canonical name order frames everything: shard pair
	// derivation, the scan matrix, the checkpoint header.
	var names []string
	for {
		var err error
		names, err = FetchNames(w.Addr)
		if err == nil {
			break
		}
		w.logf("worker %s: fetch names: %v", w.Name, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
	if len(names) < 2 {
		return fmt.Errorf("campaign: coordinator offered %d relays", len(names))
	}

	// Crash recovery: everything this worker's log already holds is
	// finished work — resume it, don't redo it.
	measured := make(map[[2]string]float64)
	if w.Checkpoint != nil {
		st, err := ting.ReplayState(w.Checkpoint)
		if err != nil {
			return fmt.Errorf("campaign: worker %s: replay: %w", w.Name, err)
		}
		for k, v := range st.Pairs {
			measured[k] = v
		}
		if st.Records > 0 {
			w.logf("worker %s: resumed %d measured pairs from checkpoint", w.Name, len(st.Pairs))
		}
	}

	dialFails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, res, err := Acquire(w.Addr, w.Name)
		if err != nil {
			dialFails++
			if dialFails >= 10 {
				return fmt.Errorf("campaign: worker %s: coordinator unreachable: %w", w.Name, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		dialFails = 0
		switch res {
		case AcquireDone:
			w.logf("worker %s: campaign done", w.Name)
			return nil
		case AcquireNone:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}

		if err := w.runLease(ctx, names, lease, measured); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A fenced or failed lease is not fatal to the worker: the
			// coordinator will re-grant the shard, possibly to us.
			w.logf("worker %s: lease %s epoch %d: %v", w.Name, lease.Shard.ID, lease.Epoch, err)
		}
		if w.Dally > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.Dally):
			}
		}
	}
}

// runLease measures one lease's shard and submits it. The heartbeat
// goroutine renews the lease while the scan runs; a fencing verdict
// cancels the scan, because measuring for a lease someone else now holds
// is wasted work (their submission, not ours, will count).
func (w *Worker) runLease(ctx context.Context, names []string, lease Lease, measured map[[2]string]float64) error {
	pairs, err := lease.Shard.Pairs(names)
	if err != nil {
		return err
	}
	w.logf("worker %s: lease %s epoch %d: %d pairs", w.Name, lease.Shard.ID, lease.Epoch, len(pairs))

	if w.Checkpoint != nil {
		rec := ting.CheckpointRecord{
			Kind:   ting.RecordShard,
			Shard:  lease.Shard.ID,
			Lease:  lease.Epoch,
			Worker: w.Name,
		}
		if err := w.Checkpoint.Append(rec); err != nil {
			return fmt.Errorf("campaign: shard record: %w", err)
		}
	}

	// Pairs already in the log (a previous life of this worker, or an
	// earlier lease sharing an endpoint row) are replayed, not re-measured.
	need := make([][2]string, 0, len(pairs))
	for _, p := range pairs {
		if _, ok := measured[normPair(p)]; !ok {
			need = append(need, p)
		}
	}

	leaseCtx, cancelLease := context.WithCancel(ctx)
	defer cancelLease()
	hb := w.HeartbeatEvery
	if hb <= 0 {
		hb = lease.TTL / 3
	}
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
			}
			if err := Heartbeat(w.Addr, w.Name, lease); err != nil {
				if errors.Is(err, ErrFenced) {
					w.logf("worker %s: lease %s fenced mid-scan", w.Name, lease.Shard.ID)
					cancelLease()
					return
				}
				// Transient coordinator trouble: keep the scan going; the
				// next beat (or the completion) settles it.
				w.logf("worker %s: heartbeat: %v", w.Name, err)
			}
		}
	}()

	var (
		m        *ting.Matrix
		failures []ting.PairError
		scanErr  error
	)
	if len(need) > 0 {
		m, failures, scanErr = w.Scanner.ScanPairs(leaseCtx, names, need)
	}
	cancelLease()
	<-hbDone
	if scanErr != nil {
		return fmt.Errorf("scan: %w", scanErr)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Assemble the submission: replayed + fresh + failed, one entry per
	// shard pair, in the shard's canonical pair order.
	failed := make(map[[2]string]bool, len(failures))
	for _, f := range failures {
		failed[normPair([2]string{f.X, f.Y})] = true
	}
	results := make([]PairResult, 0, len(pairs))
	for _, p := range pairs {
		k := normPair(p)
		if rtt, ok := measured[k]; ok {
			results = append(results, PairResult{X: p[0], Y: p[1], RTT: rtt})
			continue
		}
		if failed[k] {
			results = append(results, PairResult{X: p[0], Y: p[1], Failed: true})
			continue
		}
		rtt, err := m.RTT(p[0], p[1])
		if err != nil {
			return fmt.Errorf("campaign: shard %s: %w", lease.Shard.ID, err)
		}
		measured[k] = rtt
		results = append(results, PairResult{X: p[0], Y: p[1], RTT: rtt})
	}

	if err := Complete(w.Addr, w.Name, lease, results); err != nil {
		if errors.Is(err, ErrFenced) {
			// Someone else's epoch won the shard. Our measurements stay in
			// our log (and in measured) — if the coordinator re-grants us a
			// shard overlapping them, they replay for free.
			return fmt.Errorf("submission fenced: %w", err)
		}
		return err
	}
	w.logf("worker %s: completed shard %s (%d pairs, %d replayed)",
		w.Name, lease.Shard.ID, len(pairs), len(pairs)-len(need))
	return nil
}

func normPair(p [2]string) [2]string {
	if p[0] > p[1] {
		p[0], p[1] = p[1], p[0]
	}
	return p
}
