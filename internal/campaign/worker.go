package campaign

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"time"

	"ting/internal/stats"
	"ting/internal/ting"
)

// DefaultUnreachableGrace is how long a worker rides out an unreachable
// coordinator before giving up — long enough to cover a coordinator
// crash, journal recovery, and restart, short enough that a fleet pointed
// at a dead address eventually exits instead of spinning forever.
const DefaultUnreachableGrace = 2 * time.Minute

// Worker runs shard leases against a coordinator until the campaign is
// done. Its crash-tolerance contract: every measured pair is appended to
// Checkpoint before the lease completes, and a restarted worker replays
// its own log first — so a shard it was killed halfway through is
// finished (not re-measured) when the coordinator re-grants it, to this
// worker or any other holding the same log.
type Worker struct {
	// Name identifies the worker to the coordinator (logs and lease
	// ownership only; not a credential).
	Name string
	// Addr is the coordinator's directory-transport address.
	Addr string
	// Scanner does the measuring. Its Checkpoint should be the same log as
	// Checkpoint below; the worker appends shard records to it and the
	// scanner appends pair records.
	Scanner *ting.Scanner
	// Checkpoint is the worker's durable log (may be nil: no durability).
	Checkpoint ting.Checkpoint
	// HeartbeatEvery is the lease renewal cadence; default TTL/3.
	HeartbeatEvery time.Duration
	// Poll is how long to wait when every shard is leased out; default 200ms.
	Poll time.Duration
	// Backoff shapes the reconnection delays when the coordinator is
	// unreachable (transport failures on names/acquire/complete). The zero
	// value defaults to {Base: Poll, Max: 5s, Factor: 2, Jitter: 0.5} —
	// jittered so a fleet that lost its coordinator does not re-find it in
	// lockstep.
	Backoff stats.Backoff
	// UnreachableGrace is how long the coordinator may stay unreachable
	// (consecutive transport failures) before Run gives up; default
	// DefaultUnreachableGrace. A coordinator restart well inside this
	// window is invisible to the worker beyond a few retried calls.
	UnreachableGrace time.Duration
	// Dally, if positive, sleeps between leases — test and soak hook that
	// widens the window in which a kill lands mid-campaign.
	Dally time.Duration
	// Log, if non-nil, receives progress lines.
	Log *log.Logger
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log.Printf(format, args...)
	}
}

// reconnector tracks an outage of the coordinator: consecutive failed
// calls back off exponentially with jitter, and once the coordinator has
// been continuously unreachable for the grace window the worker gives up.
// Any successful call resets it. It is confined to the worker's main
// goroutine (rand.Rand is not concurrency-safe).
type reconnector struct {
	backoff   stats.Backoff
	grace     time.Duration
	rng       *rand.Rand
	fails     int
	downSince time.Time
}

func (r *reconnector) reset() { r.fails = 0 }

// wait sleeps before the next retry, or returns a terminal error when the
// outage has outlived the grace window (or ctx ended).
func (r *reconnector) wait(ctx context.Context, err error) error {
	r.fails++
	if r.fails == 1 {
		r.downSince = time.Now()
	}
	if time.Since(r.downSince) >= r.grace {
		return fmt.Errorf("campaign: coordinator unreachable for %s: %w", r.grace, err)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(r.backoff.Delay(r.fails, r.rng)):
	}
	return nil
}

// Run leases and measures shards until the coordinator reports the
// campaign done, ctx is cancelled, or the coordinator stays unreachable
// past UnreachableGrace. It is the worker process's whole life; restart
// the process (same checkpoint path) to recover from a crash. A
// coordinator restart is survived in place: calls that fail at the
// transport level retry with jittered exponential backoff until the
// reborn coordinator answers.
func (w *Worker) Run(ctx context.Context) error {
	if w.Scanner == nil {
		return errors.New("campaign: worker needs a scanner")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	backoff := w.Backoff
	if backoff.Base <= 0 {
		backoff = stats.Backoff{Base: poll, Max: 5 * time.Second, Factor: 2, Jitter: 0.5}
	}
	grace := w.UnreachableGrace
	if grace <= 0 {
		grace = DefaultUnreachableGrace
	}
	h := fnv.New64a()
	h.Write([]byte(w.Name))
	rec := &reconnector{
		backoff: backoff,
		grace:   grace,
		// Seeded per worker name: the fleet's retry schedules decorrelate,
		// and a given worker's schedule reproduces in tests.
		rng: rand.New(rand.NewSource(int64(h.Sum64()))),
	}

	// The campaign's canonical name order frames everything: shard pair
	// derivation, the scan matrix, the checkpoint header.
	var names []string
	for {
		var err error
		names, err = FetchNames(w.Addr)
		if err == nil {
			rec.reset()
			break
		}
		w.logf("worker %s: fetch names: %v", w.Name, err)
		if gerr := rec.wait(ctx, err); gerr != nil {
			return fmt.Errorf("campaign: worker %s: %w", w.Name, gerr)
		}
	}
	if len(names) < 2 {
		return fmt.Errorf("campaign: coordinator offered %d relays", len(names))
	}

	// Crash recovery: everything this worker's log already holds is
	// finished work — resume it, don't redo it.
	measured := make(map[[2]string]float64)
	if w.Checkpoint != nil {
		st, err := ting.ReplayState(w.Checkpoint)
		if err != nil {
			return fmt.Errorf("campaign: worker %s: replay: %w", w.Name, err)
		}
		for k, v := range st.Pairs {
			measured[k] = v
		}
		if st.Records > 0 {
			w.logf("worker %s: resumed %d measured pairs from checkpoint", w.Name, len(st.Pairs))
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, res, err := Acquire(w.Addr, w.Name)
		if err != nil {
			// Transport failures and coordinator-side errors (a failed
			// journal write, say) both resolve by waiting for a healthy
			// coordinator — bounded by the unreachable-grace window.
			w.logf("worker %s: acquire: %v", w.Name, err)
			if gerr := rec.wait(ctx, err); gerr != nil {
				return fmt.Errorf("campaign: worker %s: %w", w.Name, gerr)
			}
			continue
		}
		rec.reset()
		switch res {
		case AcquireDone:
			w.logf("worker %s: campaign done", w.Name)
			return nil
		case AcquireNone:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}

		if err := w.runLease(ctx, names, lease, measured, rec); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A fenced or failed lease is not fatal to the worker: the
			// coordinator will re-grant the shard, possibly to us.
			w.logf("worker %s: lease %s epoch %d: %v", w.Name, lease.Shard.ID, lease.Epoch, err)
		}
		if w.Dally > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.Dally):
			}
		}
	}
}

// runLease measures one lease's shard and submits it. The heartbeat
// goroutine renews the lease while the scan runs; only a genuine ErrFenced
// verdict cancels the scan, because measuring for a lease someone else now
// holds is wasted work (their submission, not ours, will count). A
// heartbeat that merely failed in transit proves nothing about the lease —
// the coordinator may be mid-restart — so it is retried on the next TTL/3
// tick while the scan keeps running; the recovered coordinator either
// accepts the next beat (resurrecting the lease if it had lazily expired)
// or finally fences us.
func (w *Worker) runLease(ctx context.Context, names []string, lease Lease, measured map[[2]string]float64, rec *reconnector) error {
	pairs, err := lease.Shard.Pairs(names)
	if err != nil {
		return err
	}
	w.logf("worker %s: lease %s epoch %d: %d pairs", w.Name, lease.Shard.ID, lease.Epoch, len(pairs))

	if w.Checkpoint != nil {
		rec := ting.CheckpointRecord{
			Kind:   ting.RecordShard,
			Shard:  lease.Shard.ID,
			Lease:  lease.Epoch,
			Worker: w.Name,
		}
		if err := w.Checkpoint.Append(rec); err != nil {
			return fmt.Errorf("campaign: shard record: %w", err)
		}
	}

	// Pairs already in the log (a previous life of this worker, or an
	// earlier lease sharing an endpoint row) are replayed, not re-measured.
	need := make([][2]string, 0, len(pairs))
	for _, p := range pairs {
		if _, ok := measured[normPair(p)]; !ok {
			need = append(need, p)
		}
	}

	leaseCtx, cancelLease := context.WithCancel(ctx)
	defer cancelLease()
	hb := w.HeartbeatEvery
	if hb <= 0 {
		hb = lease.TTL / 3
	}
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
			}
			if err := Heartbeat(w.Addr, w.Name, lease); err != nil {
				switch {
				case errors.Is(err, ErrFenced):
					// The only verdict that abandons the scan: the shard
					// verifiably belongs to someone else now.
					w.logf("worker %s: lease %s fenced mid-scan", w.Name, lease.Shard.ID)
					cancelLease()
					return
				case IsTransient(err):
					// Never reached the coordinator: says nothing about the
					// lease. Keep scanning; the next tick retries.
					w.logf("worker %s: heartbeat (transient): %v", w.Name, err)
				default:
					// A non-fencing verdict (validation trouble): the lease
					// may still be ours, and the submission is the real
					// test — keep scanning.
					w.logf("worker %s: heartbeat: %v", w.Name, err)
				}
			}
		}
	}()

	var (
		m        *ting.Matrix
		failures []ting.PairError
		scanErr  error
	)
	if len(need) > 0 {
		m, failures, scanErr = w.Scanner.ScanPairs(leaseCtx, names, need)
	}
	cancelLease()
	<-hbDone
	if scanErr != nil {
		return fmt.Errorf("scan: %w", scanErr)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Assemble the submission: replayed + fresh + failed, one entry per
	// shard pair, in the shard's canonical pair order.
	failed := make(map[[2]string]bool, len(failures))
	for _, f := range failures {
		failed[normPair([2]string{f.X, f.Y})] = true
	}
	results := make([]PairResult, 0, len(pairs))
	for _, p := range pairs {
		k := normPair(p)
		if rtt, ok := measured[k]; ok {
			results = append(results, PairResult{X: p[0], Y: p[1], RTT: rtt})
			continue
		}
		if failed[k] {
			results = append(results, PairResult{X: p[0], Y: p[1], Failed: true})
			continue
		}
		rtt, err := m.RTT(p[0], p[1])
		if err != nil {
			return fmt.Errorf("campaign: shard %s: %w", lease.Shard.ID, err)
		}
		measured[k] = rtt
		results = append(results, PairResult{X: p[0], Y: p[1], RTT: rtt})
	}

	// A fully-measured lease is too expensive to abandon to a transport
	// blip: retry the submission with backoff while the coordinator is
	// unreachable. The recorded epoch stays valid across a coordinator
	// recovery (the journal replays it), so a late submission lands unless
	// the shard was genuinely re-granted — which only ErrFenced proves.
	for {
		err := Complete(w.Addr, w.Name, lease, results)
		if err == nil {
			rec.reset()
			break
		}
		if errors.Is(err, ErrFenced) {
			// Someone else's epoch won the shard. Our measurements stay in
			// our log (and in measured) — if the coordinator re-grants us a
			// shard overlapping them, they replay for free.
			return fmt.Errorf("submission fenced: %w", err)
		}
		if !IsTransient(err) {
			return err
		}
		w.logf("worker %s: complete %s (transient, will retry): %v", w.Name, lease.Shard.ID, err)
		if gerr := rec.wait(ctx, err); gerr != nil {
			return gerr
		}
	}
	w.logf("worker %s: completed shard %s (%d pairs, %d replayed)",
		w.Name, lease.Shard.ID, len(pairs), len(pairs)-len(need))
	return nil
}

func normPair(p [2]string) [2]string {
	if p[0] > p[1] {
		p[0], p[1] = p[1], p[0]
	}
	return p
}
