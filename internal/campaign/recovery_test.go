package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

// newJournaled builds a journaled coordinator on a fake clock.
func newJournaled(t *testing.T, names []string, shards []Shard, path string, clock *fakeClock) *Coordinator {
	t.Helper()
	c, err := NewJournaledCoordinator(names, shards, time.Second, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clock.now
	return c
}

// recover rebuilds a coordinator from its journal, keeping the fake clock
// attached before anything can run an expiry pass against the real one.
func recoverJournaled(t *testing.T, path string, clock *fakeClock) *Coordinator {
	t.Helper()
	c, err := RecoverCoordinator(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clock.now
	return c
}

// TestRecoverResumesEpochWatermark is the invariant everything rests on: a
// coordinator rebuilt from its journal can never grant an epoch at or
// below any epoch the dead coordinator ever handed out.
func TestRecoverResumesEpochWatermark(t *testing.T) {
	names := fakeNames(4)
	shards := Partition(len(names), 2)
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)

	l1, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	l2, res, err := c1.Acquire("w2")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	if l1.Epoch != 1 || l2.Epoch != 2 {
		t.Fatalf("epochs %d, %d; want 1, 2", l1.Epoch, l2.Epoch)
	}
	// Crash: the coordinator vanishes without closing its journal.

	c2 := recoverJournaled(t, path, clock)
	st := c2.Snapshot()
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	if st.EpochWatermark != 2 {
		t.Fatalf("EpochWatermark = %d, want 2", st.EpochWatermark)
	}
	if st.Leased != 2 || st.Pending != 0 {
		t.Fatalf("recovered ledger: %d leased, %d pending; want 2, 0", st.Leased, st.Pending)
	}

	// Expire both pre-crash leases; the re-grants must sit strictly above
	// the watermark.
	clock.advance(2 * time.Second)
	l3, res, err := c2.Acquire("w3")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	if l3.Epoch <= 2 {
		t.Fatalf("post-recovery epoch %d not above pre-crash watermark 2", l3.Epoch)
	}
}

// TestRecoverCrashBetweenGrantAndComplete: the coordinator dies after
// granting but before the submission lands. The recovered coordinator
// honors the pre-crash lease — the worker, which never noticed anything,
// completes at its recorded epoch and the results merge normally.
func TestRecoverCrashBetweenGrantAndComplete(t *testing.T) {
	names := fakeNames(3)
	shards := []Shard{NewShard(0, 0, 0, 3)}
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)

	l, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}

	c2 := recoverJournaled(t, path, clock)
	clock.advance(300 * time.Millisecond) // inside the TTL: lease still live
	if err := c2.Heartbeat("w1", l.Shard.ID, l.Epoch); err != nil {
		t.Fatalf("pre-crash lease heartbeat after recovery: %v", err)
	}
	if err := c2.Complete("w1", l.Shard.ID, l.Epoch, fullResults(t, l.Shard, names)); err != nil {
		t.Fatalf("pre-crash lease complete after recovery: %v", err)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("Done not closed after last shard completed")
	}
	if _, err := c2.Merged(); err != nil {
		t.Fatalf("merge after recovery: %v", err)
	}
}

// TestRecoverFencesLateCompleteAfterRegrant: a pre-crash holder that shows
// up only after the recovered coordinator re-granted its shard is fenced —
// last writer wins, exactly as without a crash in between.
func TestRecoverFencesLateCompleteAfterRegrant(t *testing.T) {
	names := fakeNames(3)
	shards := []Shard{NewShard(0, 0, 0, 3)}
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)

	l1, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}

	c2 := recoverJournaled(t, path, clock)
	clock.advance(2 * time.Second) // journaled deadline passes
	l2, res, err := c2.Acquire("w2")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	if l2.Epoch <= l1.Epoch {
		t.Fatalf("re-grant epoch %d not above pre-crash epoch %d", l2.Epoch, l1.Epoch)
	}
	if err := c2.Complete("w1", l1.Shard.ID, l1.Epoch, fullResults(t, l1.Shard, names)); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale pre-crash complete: %v, want ErrFenced", err)
	}
	if err := c2.Complete("w2", l2.Shard.ID, l2.Epoch, fullResults(t, l2.Shard, names)); err != nil {
		t.Fatalf("new holder complete: %v", err)
	}
}

// TestDoubleRecovery: recover, make progress, crash again, recover again.
// Done shards survive both hops with their full submissions, and the
// journal the second recovery appends to is not corrupted by the first.
func TestDoubleRecovery(t *testing.T) {
	names := fakeNames(4)
	shards := Partition(len(names), 2)
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)

	l1, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}

	c2 := recoverJournaled(t, path, clock)
	if err := c2.Complete("w1", l1.Shard.ID, l1.Epoch, fullResults(t, l1.Shard, names)); err != nil {
		t.Fatal(err)
	}
	l2, res, err := c2.Acquire("w2")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}

	c3 := recoverJournaled(t, path, clock)
	st := c3.Snapshot()
	if st.Done != 1 || st.Leased != 1 {
		t.Fatalf("after second recovery: %d done, %d leased; want 1, 1", st.Done, st.Leased)
	}
	if st.EpochWatermark != l2.Epoch {
		t.Fatalf("watermark %d, want %d", st.EpochWatermark, l2.Epoch)
	}
	if err := c3.Complete("w2", l2.Shard.ID, l2.Epoch, fullResults(t, l2.Shard, names)); err != nil {
		t.Fatal(err)
	}
	m, err := c3.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != len(names) {
		t.Fatalf("merged matrix over %d relays, want %d", m.N(), len(names))
	}
}

// TestRecoverTornTail: a crash mid-append leaves a partial record with no
// newline. Recovery drops it, trims it, and post-recovery appends start on
// a fresh line — so a second crash-and-recover sees a clean file instead
// of mid-file corruption.
func TestRecoverTornTail(t *testing.T) {
	names := fakeNames(3)
	shards := []Shard{NewShard(0, 0, 0, 3)}
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)

	l, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}

	// The crash lands mid-way through writing a complete record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"complete","shard":"` + l.Shard.ID + `","epo`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := recoverJournaled(t, path, clock)
	st := c2.Snapshot()
	if st.Done != 0 || st.Leased != 1 {
		t.Fatalf("torn complete not dropped: %d done, %d leased", st.Done, st.Leased)
	}

	// The torn fragment must be gone: the next append starts a fresh line,
	// and a second recovery replays cleanly.
	if err := c2.Complete("w1", l.Shard.ID, l.Epoch, fullResults(t, l.Shard, names)); err != nil {
		t.Fatal(err)
	}
	c3 := recoverJournaled(t, path, clock)
	if st := c3.Snapshot(); st.Done != 1 {
		t.Fatalf("after second recovery: %d done, want 1", st.Done)
	}
}

// TestRecoverRejectsMidFileCorruption: an undecodable record with records
// after it is not a torn tail — it is corruption, and recovery must refuse
// rather than silently drop acknowledged state.
func TestRecoverRejectsMidFileCorruption(t *testing.T) {
	names := fakeNames(3)
	shards := []Shard{NewShard(0, 0, 0, 3)}
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)
	if _, res, err := c1.Acquire("w1"); err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	// Corrupt the header (line 1) while the grant (line 2) survives.
	lines[0] = "{\"t\":\"campaign\",garbage\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverCoordinator(path, nil); err == nil {
		t.Fatal("recovery accepted a journal with mid-file corruption")
	}
}

// TestCompactJournalPreservesState: compaction must be invisible to
// recovery — same done set (bytewise same submissions), same leases, same
// reassignment counts, same epoch watermark — while the post-compaction
// journal keeps accepting appends.
func TestCompactJournalPreservesState(t *testing.T) {
	names := fakeNames(5)
	shards := Partition(len(names), 3)
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)

	// Shard 1 granted and completed.
	lA, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	if err := c1.Complete("w1", lA.Shard.ID, lA.Epoch, fullResults(t, lA.Shard, names)); err != nil {
		t.Fatal(err)
	}
	// Shard 2 granted, expired, re-granted: a reassignment to preserve.
	lB, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	clock.advance(2 * time.Second)
	lB2, res, err := c1.Acquire("w2")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	if lB2.Shard.ID != lB.Shard.ID {
		// With all other shards pending this cannot happen; guard anyway.
		t.Fatalf("expected re-grant of %s, got %s", lB.Shard.ID, lB2.Shard.ID)
	}

	before := c1.Snapshot()
	if err := c1.CompactJournal(); err != nil {
		t.Fatal(err)
	}

	c2 := recoverJournaled(t, path, clock)
	after := c2.Snapshot()
	after.Recoveries = before.Recoveries // the one field allowed to differ
	if len(before.Shards) != len(after.Shards) {
		t.Fatalf("shard rows: %d vs %d", len(before.Shards), len(after.Shards))
	}
	for i := range before.Shards {
		if before.Shards[i] != after.Shards[i] {
			t.Fatalf("shard %d: %+v vs %+v", i, before.Shards[i], after.Shards[i])
		}
	}
	if before.EpochWatermark != after.EpochWatermark {
		t.Fatalf("watermark %d vs %d", before.EpochWatermark, after.EpochWatermark)
	}
	if before.Reassigned != after.Reassigned {
		t.Fatalf("reassigned %d vs %d", before.Reassigned, after.Reassigned)
	}

	// The compacted journal still takes appends: finish the campaign and
	// recover once more.
	if err := c2.Complete("w2", lB2.Shard.ID, lB2.Epoch, fullResults(t, lB2.Shard, names)); err != nil {
		t.Fatal(err)
	}
	for {
		l, res, err := c2.Acquire("w3")
		if err != nil {
			t.Fatal(err)
		}
		if res != AcquireGranted {
			break
		}
		if err := c2.Complete("w3", l.Shard.ID, l.Epoch, fullResults(t, l.Shard, names)); err != nil {
			t.Fatal(err)
		}
	}
	c3 := recoverJournaled(t, path, clock)
	if st := c3.Snapshot(); st.Done != st.Total {
		t.Fatalf("after compaction + appends + recovery: %d/%d done", st.Done, st.Total)
	}
	wantM, err := c2.Merged()
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := c3.Merged()
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := wantM.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := gotM.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("recovered merge differs from live merge after compaction")
	}
}

// TestCreateJournalRefusesExisting: starting a "new" campaign over an
// existing journal would orphan acknowledged state — that is a recovery
// situation, and CreateJournal must say so.
func TestCreateJournalRefusesExisting(t *testing.T) {
	names := fakeNames(3)
	shards := []Shard{NewShard(0, 0, 0, 3)}
	path := journalPath(t)
	clock := newFakeClock()
	newJournaled(t, names, shards, path, clock)
	if _, err := NewJournaledCoordinator(names, shards, time.Second, path, nil); err == nil {
		t.Fatal("second campaign over an existing journal was allowed")
	}
}

// TestRecoveredDoneCampaign: recovering a finished campaign yields a
// coordinator whose Done channel is already closed and whose Acquire says
// done — a restarted tingcamp falls straight through to the merge.
func TestRecoveredDoneCampaign(t *testing.T) {
	names := fakeNames(3)
	shards := []Shard{NewShard(0, 0, 0, 3)}
	path := journalPath(t)
	clock := newFakeClock()
	c1 := newJournaled(t, names, shards, path, clock)
	l, res, err := c1.Acquire("w1")
	if err != nil || res != AcquireGranted {
		t.Fatal(res, err)
	}
	if err := c1.Complete("w1", l.Shard.ID, l.Epoch, fullResults(t, l.Shard, names)); err != nil {
		t.Fatal(err)
	}

	c2 := recoverJournaled(t, path, clock)
	select {
	case <-c2.Done():
	default:
		t.Fatal("recovered done campaign: Done not closed")
	}
	if _, res, _ := c2.Acquire("w2"); res != AcquireDone {
		t.Fatalf("acquire on recovered done campaign: %v, want done", res)
	}
	if _, err := c2.Merged(); err != nil {
		t.Fatal(err)
	}
}
