package campaign

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ting/internal/telemetry"
	"ting/internal/ting"
)

// ErrFenced rejects a heartbeat or completion carrying a stale lease
// epoch: the shard has since been granted to someone else (or completed),
// and the caller must abandon its work on it.
var ErrFenced = errors.New("campaign: lease fenced")

// ErrUnknownShard rejects traffic about a shard the coordinator never
// issued.
var ErrUnknownShard = errors.New("campaign: unknown shard")

// PairResult is one pair's outcome inside a shard submission. Failed
// marks a pair the worker gave up on (scanner PairError); it still counts
// as covered, so the coordinator can tell "worker skipped pairs" (a
// protocol violation) from "worker measured and failed" (a fact about the
// network).
type PairResult struct {
	X, Y   string
	RTT    float64
	Failed bool
}

type shardPhase int

const (
	shardPending shardPhase = iota
	shardLeased
	shardDone
)

func (p shardPhase) String() string {
	switch p {
	case shardLeased:
		return "leased"
	case shardDone:
		return "done"
	default:
		return "pending"
	}
}

type shardState struct {
	shard      Shard
	phase      shardPhase
	worker     string
	epoch      uint64 // highest epoch ever granted for this shard
	deadline   time.Time
	reassigned int
	results    []PairResult
}

// Coordinator owns a campaign's shard ledger: it grants leases, renews
// them on heartbeat, expires the silent, re-grants their shards at a
// higher fencing epoch, and accepts exactly one submission per shard.
// All methods are safe for concurrent use; expiry is evaluated lazily on
// every call against Now, so no background ticker is needed and tests can
// drive the clock by hand.
type Coordinator struct {
	// Now supplies the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// TTL is how long a lease lives without a heartbeat.
	TTL time.Duration

	names []string

	mu        sync.Mutex
	order     []*shardState // canonical shard order — also the merge order
	byID      map[string]*shardState
	nextEpoch uint64
	remaining int
	done      chan struct{}
	journal   *Journal
	recovered bool

	granted, renewed, expired, fenced, completed *telemetry.Counter

	jAppended, jReplayed, jCompacted, recoveries *telemetry.Counter
}

// NewCoordinator builds a coordinator over the campaign's canonical name
// order and shard partition. A nil telemetry registry disables counters.
func NewCoordinator(names []string, shards []Shard, ttl time.Duration, treg *telemetry.Registry) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, errors.New("campaign: no shards")
	}
	if ttl <= 0 {
		return nil, errors.New("campaign: non-positive lease TTL")
	}
	c := &Coordinator{
		TTL:       ttl,
		names:     append([]string(nil), names...),
		byID:      make(map[string]*shardState, len(shards)),
		remaining: len(shards),
		done:      make(chan struct{}),
		granted:    treg.Counter("campaign.lease.granted"),
		renewed:    treg.Counter("campaign.lease.renewed"),
		expired:    treg.Counter("campaign.lease.expired"),
		fenced:     treg.Counter("campaign.lease.fenced"),
		completed:  treg.Counter("campaign.shards.completed"),
		jAppended:  treg.Counter("campaign.journal.appended"),
		jReplayed:  treg.Counter("campaign.journal.replayed"),
		jCompacted: treg.Counter("campaign.journal.compacted"),
		recoveries: treg.Counter("campaign.coordinator.recoveries"),
	}
	for _, sh := range shards {
		if err := sh.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.byID[sh.ID]; dup {
			return nil, fmt.Errorf("campaign: duplicate shard %s", sh.ID)
		}
		// Reject shards that don't fit the name set now, not at merge time.
		if _, err := sh.Pairs(c.names); err != nil {
			return nil, err
		}
		st := &shardState{shard: sh}
		c.order = append(c.order, st)
		c.byID[sh.ID] = st
	}
	return c, nil
}

// NewJournaledCoordinator is NewCoordinator plus a write-ahead journal at
// path: the campaign header is written (and fsynced) before the
// coordinator exists, every grant and completion is journaled before it is
// acknowledged, and RecoverCoordinator rebuilds the whole ledger from the
// file after a crash. Path must not already hold a non-empty journal.
func NewJournaledCoordinator(names []string, shards []Shard, ttl time.Duration, path string, treg *telemetry.Registry) (*Coordinator, error) {
	c, err := NewCoordinator(names, shards, ttl, treg)
	if err != nil {
		return nil, err
	}
	j, err := CreateJournal(path, c.names, shards, ttl)
	if err != nil {
		return nil, err
	}
	c.journal = j
	c.jAppended.Inc() // the header record
	return c, nil
}

// RecoverCoordinator rebuilds a crashed coordinator from its journal: the
// campaign header restores names, shard geometry, and lease TTL; grant
// records restore in-flight leases (worker, epoch, deadline) and — the
// invariant everything rests on — push the fencing-epoch counter strictly
// above the highest epoch ever granted, so a reborn coordinator can never
// reissue an epoch a pre-crash worker might still hold. Complete records
// restore done shards with their full submissions, so Merged after
// recovery folds exactly the bytes the live coordinator accepted. Leases
// whose journaled deadline has passed expire lazily on the next call,
// exactly as if the coordinator had never died: a pre-crash holder that
// heartbeats before its shard is re-granted resurrects its lease, and one
// that shows up after gets ErrFenced.
func RecoverCoordinator(path string, treg *telemetry.Registry) (*Coordinator, error) {
	st, err := replayJournal(path)
	if err != nil {
		return nil, err
	}
	c, err := NewCoordinator(st.names, st.shards, st.ttl, treg)
	if err != nil {
		return nil, err
	}
	for _, s := range c.order {
		if g, ok := st.grants[s.shard.ID]; ok {
			s.phase = shardLeased
			s.worker = g.worker
			s.epoch = g.epoch
			s.deadline = g.deadline
			s.reassigned = g.regrants
		}
		if d, ok := st.done[s.shard.ID]; ok {
			s.phase = shardDone
			s.worker = d.worker
			s.epoch = d.epoch
			s.results = d.results
			c.remaining--
		}
	}
	c.nextEpoch = st.watermark
	c.recovered = true
	if c.remaining == 0 {
		close(c.done)
	}
	j, err := openJournalForAppend(path)
	if err != nil {
		return nil, err
	}
	c.journal = j
	c.jReplayed.Add(int64(st.records))
	c.recoveries.Inc()
	return c, nil
}

// Journal returns the coordinator's write-ahead journal, nil when the
// coordinator runs in-memory only. The owner closes it at shutdown.
func (c *Coordinator) Journal() *Journal { return c.journal }

// CompactJournal atomically rewrites the journal as a snapshot of the
// current ledger — header (carrying the epoch watermark), one grant per
// ever-granted shard in epoch order, one complete per done shard — so
// done-shard results stop replaying the long way forever. Safe to call on
// any cadence; a crash mid-compaction leaves either the old journal or the
// new one. No-op without a journal.
func (c *Coordinator) CompactJournal() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	shards := make([]Shard, len(c.order))
	for i, st := range c.order {
		shards[i] = st.shard
	}
	recs := []journalRecord{journalHeader(c.names, shards, c.TTL, c.nextEpoch)}
	var granted []*shardState
	for _, st := range c.order {
		if st.epoch > 0 {
			granted = append(granted, st)
		}
	}
	// Grant records stay strictly increasing by epoch within the file —
	// the monotonic-fencing invariant a journal scan asserts.
	sort.Slice(granted, func(i, j int) bool { return granted[i].epoch < granted[j].epoch })
	for _, st := range granted {
		recs = append(recs, journalRecord{
			Kind:     journalGrant,
			Shard:    st.shard.ID,
			Worker:   st.worker,
			Epoch:    st.epoch,
			Deadline: st.deadline.UnixNano(),
			Regrants: st.reassigned,
		})
	}
	for _, st := range c.order {
		if st.phase != shardDone {
			continue
		}
		rec := journalRecord{Kind: journalComplete, Shard: st.shard.ID, Worker: st.worker, Epoch: st.epoch}
		rec.Results = make([]journalResult, len(st.results))
		for i, r := range st.results {
			rec.Results[i] = journalResult{X: r.X, Y: r.Y, RTT: r.RTT, Failed: r.Failed}
		}
		recs = append(recs, rec)
	}
	if err := c.journal.rewrite(recs); err != nil {
		return err
	}
	c.jCompacted.Inc()
	return nil
}

func (c *Coordinator) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// expireLocked demotes every leased shard whose deadline has passed back
// to pending, so the next Acquire re-grants it at a higher epoch. Called
// under c.mu by every entry point.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, st := range c.order {
		if st.phase == shardLeased && now.After(st.deadline) {
			st.phase = shardPending
			st.reassigned++
			c.expired.Inc()
		}
	}
}

// AcquireResult says what Acquire handed back.
type AcquireResult int

const (
	// AcquireGranted: the lease is yours; heartbeat it.
	AcquireGranted AcquireResult = iota
	// AcquireNone: every shard is leased out but the campaign is not done;
	// poll again shortly.
	AcquireNone
	// AcquireDone: every shard is complete; the worker can exit.
	AcquireDone
)

// Acquire grants the first pending shard (canonical order) to worker,
// stamping a fresh fencing epoch and a TTL deadline. On a journaled
// coordinator the grant record — which carries the epoch watermark — is
// fsynced to the journal before the lease is handed out, so a recovered
// coordinator can never reissue an epoch any worker has ever seen. A
// journal write failure aborts the grant with no state change.
func (c *Coordinator) Acquire(worker string) (Lease, AcquireResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	if c.remaining == 0 {
		return Lease{}, AcquireDone, nil
	}
	for _, st := range c.order {
		if st.phase != shardPending {
			continue
		}
		epoch := c.nextEpoch + 1
		deadline := now.Add(c.TTL)
		if c.journal != nil {
			rec := journalRecord{
				Kind:     journalGrant,
				Shard:    st.shard.ID,
				Worker:   worker,
				Epoch:    epoch,
				Deadline: deadline.UnixNano(),
			}
			if err := c.journal.append(rec, true); err != nil {
				return Lease{}, AcquireNone, err
			}
			c.jAppended.Inc()
		}
		c.nextEpoch = epoch
		st.phase = shardLeased
		st.worker = worker
		st.epoch = epoch
		st.deadline = deadline
		c.granted.Inc()
		return Lease{Shard: st.shard, Epoch: st.epoch, TTL: c.TTL}, AcquireGranted, nil
	}
	return Lease{}, AcquireNone, nil
}

// Heartbeat renews worker's lease on shardID. Only the shard's highest
// granted epoch renews — a stale holder gets ErrFenced and must stop. A
// lease that expired but was not yet re-granted still carries the highest
// epoch, so a late-but-alive worker resurrects it instead of losing work.
func (c *Coordinator) Heartbeat(worker, shardID string, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	st, ok := c.byID[shardID]
	if !ok {
		return ErrUnknownShard
	}
	if epoch != st.epoch || st.phase == shardDone {
		c.fenced.Inc()
		return ErrFenced
	}
	st.phase = shardLeased
	st.worker = worker
	st.deadline = now.Add(c.TTL)
	c.renewed.Inc()
	return nil
}

// Complete accepts worker's submission for shardID. The epoch must be the
// shard's highest granted one (ErrFenced otherwise — last writer wins),
// and results must cover the shard's pair set exactly: every pair once,
// measured or failed, nothing extra. Completing an already-done shard at
// its winning epoch is an idempotent no-op, so a worker may safely retry
// a submission whose ack it lost.
func (c *Coordinator) Complete(worker, shardID string, epoch uint64, results []PairResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.now())
	st, ok := c.byID[shardID]
	if !ok {
		return ErrUnknownShard
	}
	if epoch != st.epoch {
		c.fenced.Inc()
		return ErrFenced
	}
	if st.phase == shardDone {
		return nil
	}
	pairs, err := st.shard.Pairs(c.names)
	if err != nil {
		return err
	}
	want := make(map[[2]string]bool, len(pairs))
	for _, p := range pairs {
		want[p] = false
	}
	for _, r := range results {
		k := [2]string{r.X, r.Y}
		seen, ok := want[k]
		if !ok {
			return fmt.Errorf("campaign: shard %s submission has stray pair (%s,%s)", shardID, r.X, r.Y)
		}
		if seen {
			return fmt.Errorf("campaign: shard %s submission repeats pair (%s,%s)", shardID, r.X, r.Y)
		}
		want[k] = true
	}
	if len(results) != len(pairs) {
		return fmt.Errorf("campaign: shard %s submission covers %d of %d pairs", shardID, len(results), len(pairs))
	}
	if c.journal != nil {
		// WAL discipline: the winning submission reaches disk before the
		// worker's ack — a recovered coordinator knows every shard it ever
		// called done, and Merged after recovery folds the same bytes.
		rec := journalRecord{Kind: journalComplete, Shard: shardID, Worker: worker, Epoch: epoch}
		rec.Results = make([]journalResult, len(results))
		for i, r := range results {
			rec.Results[i] = journalResult{X: r.X, Y: r.Y, RTT: r.RTT, Failed: r.Failed}
		}
		if err := c.journal.append(rec, true); err != nil {
			return err
		}
		c.jAppended.Inc()
		// Lost-pair records are informational (the complete record already
		// carries the Failed flags), so they ride the fsync batch.
		for _, r := range results {
			if !r.Failed {
				continue
			}
			lost := journalRecord{Kind: journalLost, Shard: shardID, Worker: worker, Epoch: epoch, X: r.X, Y: r.Y}
			if err := c.journal.append(lost, false); err != nil {
				return err
			}
			c.jAppended.Inc()
		}
	}
	st.phase = shardDone
	st.worker = worker
	st.results = append([]PairResult(nil), results...)
	c.remaining--
	c.completed.Inc()
	if c.remaining == 0 {
		close(c.done)
	}
	return nil
}

// Done is closed once every shard has a submission.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Names returns the campaign's canonical relay name order.
func (c *Coordinator) Names() []string {
	return append([]string(nil), c.names...)
}

// Merged folds every shard submission into one matrix, via Matrix.Merge
// in canonical shard order — bytewise reproducible given the same
// submissions, and (with a deterministic measurer) bytewise equal to a
// single-process scan. Requires the campaign to be done.
func (c *Coordinator) Merged() (*ting.Matrix, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining != 0 {
		return nil, fmt.Errorf("campaign: merge with %d shards outstanding", c.remaining)
	}
	dst, err := ting.NewMatrix(c.names)
	if err != nil {
		return nil, err
	}
	for _, st := range c.order {
		sub, err := c.shardMatrixLocked(st)
		if err != nil {
			return nil, err
		}
		if sub == nil {
			continue // shard measured nothing (all pairs failed)
		}
		if err := dst.Merge(sub); err != nil {
			return nil, fmt.Errorf("campaign: merging shard %s: %w", st.shard.ID, err)
		}
	}
	return dst, nil
}

// shardMatrixLocked builds the submission matrix for one shard over just
// the relays its pairs touch, preserving campaign name order so Merge's
// name matching lines up.
func (c *Coordinator) shardMatrixLocked(st *shardState) (*ting.Matrix, error) {
	touched := make(map[string]bool, len(st.results)*2)
	any := false
	for _, r := range st.results {
		if r.Failed {
			continue
		}
		touched[r.X] = true
		touched[r.Y] = true
		any = true
	}
	if !any {
		return nil, nil
	}
	var names []string
	for _, n := range c.names {
		if touched[n] {
			names = append(names, n)
		}
	}
	m, err := ting.NewMatrix(names)
	if err != nil {
		return nil, err
	}
	for _, r := range st.results {
		if r.Failed {
			continue
		}
		if err := m.Set(r.X, r.Y, r.RTT); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ShardStatus is one shard's row in a Status snapshot.
type ShardStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Worker     string `json:"worker,omitempty"`
	Epoch      uint64 `json:"epoch"`
	Reassigned int    `json:"reassigned"`
	Pairs      int    `json:"pairs"`
	Failed     int    `json:"failed,omitempty"`
}

// Status is a point-in-time snapshot of the campaign ledger.
type Status struct {
	Relays     int    `json:"relays"`
	Total      int    `json:"total_shards"`
	Done       int    `json:"done_shards"`
	Leased     int    `json:"leased_shards"`
	Pending    int    `json:"pending_shards"`
	Reassigned int    `json:"reassigned_leases"`
	LostPairs  int    `json:"lost_pairs"`
	// Recoveries is how many crash recoveries produced this coordinator
	// (0 for a freshly created one, 1 for one rebuilt from its journal) —
	// the field the coordinator-kill soak gates on.
	Recoveries int `json:"recoveries"`
	// EpochWatermark is the highest fencing epoch ever granted; every
	// future grant is strictly above it, crashes included.
	EpochWatermark uint64        `json:"epoch_watermark"`
	Shards         []ShardStatus `json:"shards"`
}

// Snapshot reports the ledger's current state (after an expiry pass).
// LostPairs counts pairs of completed shards that the winning submission
// marked failed — the number the shard-soak gate requires to be zero.
func (c *Coordinator) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.now())
	s := Status{Relays: len(c.names), Total: len(c.order), EpochWatermark: c.nextEpoch}
	if c.recovered {
		s.Recoveries = 1
	}
	for _, st := range c.order {
		row := ShardStatus{
			ID:         st.shard.ID,
			State:      st.phase.String(),
			Epoch:      st.epoch,
			Reassigned: st.reassigned,
			Pairs:      st.shard.PairCount(),
		}
		if st.phase != shardPending {
			row.Worker = st.worker
		}
		for _, r := range st.results {
			if r.Failed {
				row.Failed++
			}
		}
		switch st.phase {
		case shardDone:
			s.Done++
		case shardLeased:
			s.Leased++
		default:
			s.Pending++
		}
		s.Reassigned += st.reassigned
		s.LostPairs += row.Failed
		s.Shards = append(s.Shards, row)
	}
	return s
}
