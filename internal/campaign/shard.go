// Package campaign distributes an all-pairs Ting campaign across
// cooperating scanner workers. A coordinator partitions the pair space
// into shards — contiguous slices of the canonical pair enumeration,
// keyed by matrix tile so a shard's writes land in a bounded set of tile
// blocks — and hands them out as leases over the directory-server
// transport. Leases carry deadlines and monotonic fencing epochs: a
// worker that stops heartbeating loses its lease to a live worker, a
// stale writer's submission is rejected by epoch, and double-measured
// pairs resolve last-writer-wins. The coordinator merges per-shard
// submissions in canonical shard order, so a completed campaign's matrix
// is bytewise equal to a single-process scan of the same (deterministic)
// world — the invariant the shard-soak CI job pins.
package campaign

import (
	"fmt"

	"ting/internal/ting"
)

// Shard is one lease-able slice of the pair space: the pairs at indices
// [Lo, Hi) of tile block (TI, TJ)'s canonical pair list. Blocks follow
// the matrix's TileDim×TileDim layout, so one shard's cells land in at
// most one tile block pair of the merged matrix; block pair lists are
// enumerated row-major (i ascending, then j), matching the order a
// single-process scan schedules them.
type Shard struct {
	ID     string
	TI, TJ int
	Lo, Hi int
}

// NewShard builds a shard with its canonical ID. The ID is a pure
// function of the geometry, so coordinator and worker derive the same
// name for the same slice without exchanging anything but the numbers.
func NewShard(ti, tj, lo, hi int) Shard {
	return Shard{ID: shardID(ti, tj, lo, hi), TI: ti, TJ: tj, Lo: lo, Hi: hi}
}

func shardID(ti, tj, lo, hi int) string {
	return fmt.Sprintf("t%d-%d.p%d-%d", ti, tj, lo, hi)
}

// Validate checks the shard's geometry and that its ID matches it.
func (s Shard) Validate() error {
	if s.TI < 0 || s.TJ < s.TI {
		return fmt.Errorf("campaign: shard tile block (%d,%d) invalid", s.TI, s.TJ)
	}
	if s.Lo < 0 || s.Hi <= s.Lo {
		return fmt.Errorf("campaign: shard pair range [%d,%d) invalid", s.Lo, s.Hi)
	}
	if s.ID != shardID(s.TI, s.TJ, s.Lo, s.Hi) {
		return fmt.Errorf("campaign: shard ID %q does not match geometry", s.ID)
	}
	return nil
}

// PairCount is how many pairs the shard covers.
func (s Shard) PairCount() int { return s.Hi - s.Lo }

// blockPairCount is how many unordered pairs live in tile block (ti,tj)
// of an n-relay matrix: for a diagonal block the upper triangle of the
// band, for an off-diagonal block the full rectangle (every j of a later
// band outranks every i of an earlier one).
func blockPairCount(ti, tj, n int) int {
	rows := bandExtent(ti, n)
	cols := bandExtent(tj, n)
	if ti == tj {
		return rows * (rows - 1) / 2
	}
	return rows * cols
}

// bandExtent is how many indices of [0,n) fall in tile band t.
func bandExtent(t, n int) int {
	lo := t << ting.TileShift
	if lo >= n {
		return 0
	}
	e := n - lo
	if e > ting.TileDim {
		e = ting.TileDim
	}
	return e
}

// Pairs derives the shard's pair list from the campaign's canonical name
// order. Workers and coordinator both call this, so the wire carries four
// integers per shard instead of a pair list.
func (s Shard) Pairs(names []string) ([][2]string, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := len(names)
	if c := blockPairCount(s.TI, s.TJ, n); s.Hi > c {
		return nil, fmt.Errorf("campaign: shard %s range [%d,%d) exceeds block's %d pairs (n=%d)",
			s.ID, s.Lo, s.Hi, c, n)
	}
	out := make([][2]string, 0, s.PairCount())
	iLo := s.TI << ting.TileShift
	jLo := s.TJ << ting.TileShift
	iN := bandExtent(s.TI, n)
	jN := bandExtent(s.TJ, n)
	idx := 0
	for a := 0; a < iN; a++ {
		i := iLo + a
		bStart := 0
		if s.TI == s.TJ {
			bStart = a + 1
		}
		rowLen := jN - bStart
		if rowLen <= 0 {
			continue
		}
		// Skip whole rows before Lo without enumerating them.
		if idx+rowLen <= s.Lo {
			idx += rowLen
			continue
		}
		for b := bStart; b < jN; b++ {
			if idx >= s.Hi {
				return out, nil
			}
			if idx >= s.Lo {
				out = append(out, [2]string{names[i], names[jLo+b]})
			}
			idx++
		}
	}
	if len(out) != s.PairCount() {
		return nil, fmt.Errorf("campaign: shard %s yielded %d pairs, want %d", s.ID, len(out), s.PairCount())
	}
	return out, nil
}

// Partition slices the pair space of an n-relay campaign into shards,
// aiming for target shards of roughly equal size. Shards never straddle
// tile blocks (so each stays tile-local in the merged matrix); blocks
// larger than the target chunk are split into contiguous ranges. The
// result is deterministic in (n, target) and ordered canonically — block
// (TI,TJ) lexicographic, then Lo ascending — which is also the order the
// coordinator merges submissions in.
func Partition(n, target int) []Shard {
	if n < 2 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	total := n * (n - 1) / 2
	chunk := (total + target - 1) / target
	if chunk < 1 {
		chunk = 1
	}
	bands := (n + ting.TileDim - 1) >> ting.TileShift
	var shards []Shard
	for ti := 0; ti < bands; ti++ {
		for tj := ti; tj < bands; tj++ {
			c := blockPairCount(ti, tj, n)
			for lo := 0; lo < c; lo += chunk {
				hi := lo + chunk
				if hi > c {
					hi = c
				}
				shards = append(shards, NewShard(ti, tj, lo, hi))
			}
		}
	}
	return shards
}
