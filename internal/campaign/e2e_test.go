package campaign

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"ting/internal/directory"
	"ting/internal/experiments"
	"ting/internal/ting"
)

// slowProber delays every circuit series, so a worker using it holds its
// lease long enough for the test to kill it mid-scan. The samples
// themselves come from the exact prober, so slowness never changes a
// value.
type slowProber struct {
	inner ting.CircuitProber
	delay time.Duration
}

func (p *slowProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(p.delay):
	}
	return p.inner.SampleCircuit(ctx, path, n)
}

// TestDistributedCampaignSurvivesKilledWorker is the acceptance scenario:
// a 4-worker campaign over a 20-relay world, one worker killed while it
// holds a lease, a replacement resuming the dead worker's checkpoint — and
// the merged matrix bytewise equal to a single-process scan of the same
// world, with zero lost pairs and at least one lease reassignment.
func TestDistributedCampaignSurvivesKilledWorker(t *testing.T) {
	world, err := experiments.NewTestbedWorld(20, 97)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 2
	shards := Partition(len(world.Names), 12)
	coord, err := NewCoordinator(world.Names, shards, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}

	ds := directory.NewServer(directory.NewRegistry())
	NewServer(coord).Register(ds)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ds.Serve(ln)
	defer ds.Close()
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dir := t.TempDir()

	newWorker := func(name, ckpt string, slow time.Duration) (*Worker, *ting.FileCheckpoint) {
		cp, err := ting.OpenFileCheckpoint(filepath.Join(dir, ckpt))
		if err != nil {
			t.Fatal(err)
		}
		sc := &ting.Scanner{
			NewMeasurer: func(int) (*ting.Measurer, error) {
				if slow <= 0 {
					return world.ExactMeasurer(samples)
				}
				p := world.Prober(0)
				p.Exact = true
				return ting.NewMeasurer(ting.Config{
					Prober:  &slowProber{inner: p, delay: slow},
					W:       world.W,
					Z:       world.Z,
					Samples: samples,
				})
			},
			Workers:    2,
			Checkpoint: cp,
		}
		return &Worker{
			Name: name, Addr: addr,
			Scanner: sc, Checkpoint: cp,
			Poll: 20 * time.Millisecond,
		}, cp
	}

	// The doomed worker measures slowly, so it reliably holds a lease when
	// the kill lands.
	doomedCtx, kill := context.WithCancel(ctx)
	defer kill()
	doomed, doomedCp := newWorker("doomed", "doomed.ckpt", 30*time.Millisecond)
	doomedExit := make(chan struct{})
	go func() {
		defer close(doomedExit)
		_ = doomed.Run(doomedCtx)
	}()

	// Kill it the moment the coordinator shows it holding a lease.
	waitUntil := time.Now().Add(30 * time.Second)
	for {
		leased := false
		for _, sh := range coord.Snapshot().Shards {
			if sh.State == "leased" && sh.Worker == "doomed" {
				leased = true
				break
			}
		}
		if leased {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("doomed worker never took a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	kill()
	<-doomedExit
	if err := doomedCp.Close(); err != nil {
		t.Fatal(err)
	}

	// Three healthy workers plus one resuming the dead worker's checkpoint.
	workersDone := make(chan struct{})
	workerErrs := make(chan error, 4)
	launch := func(w *Worker, cp *ting.FileCheckpoint) {
		go func() {
			defer cp.Close()
			workerErrs <- w.Run(ctx)
		}()
	}
	for _, name := range []string{"w1", "w2", "w3"} {
		w, cp := newWorker(name, name+".ckpt", 0)
		launch(w, cp)
	}
	reborn, rebornCp := newWorker("reborn", "doomed.ckpt", 0)
	launch(reborn, rebornCp)
	go func() {
		for i := 0; i < 4; i++ {
			if err := <-workerErrs; err != nil {
				t.Errorf("worker: %v", err)
			}
		}
		close(workersDone)
	}()

	select {
	case <-coord.Done():
	case <-ctx.Done():
		t.Fatalf("campaign did not finish: %+v", coord.Snapshot())
	}
	<-workersDone

	st := coord.Snapshot()
	if st.LostPairs != 0 {
		t.Fatalf("lost %d pairs", st.LostPairs)
	}
	if st.Reassigned < 1 {
		t.Fatalf("reassigned = %d, want at least the doomed worker's lease", st.Reassigned)
	}
	if st.Done != st.Total {
		t.Fatalf("%d/%d shards done", st.Done, st.Total)
	}

	merged, err := coord.Merged()
	if err != nil {
		t.Fatal(err)
	}

	// The determinism reference: the same world scanned in one process.
	single := &ting.Scanner{
		NewMeasurer: func(int) (*ting.Measurer, error) { return world.ExactMeasurer(samples) },
		Workers:     4,
	}
	ref, failures, err := single.Scan(ctx, world.Names)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("reference scan failures: %v", failures)
	}

	var got, want bytes.Buffer
	if err := merged.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if err := ref.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("merged matrix differs from single-process scan (%d vs %d bytes)", got.Len(), want.Len())
	}
}
