package experiments

import (
	"ting/internal/deanon"
	"ting/internal/stats"
)

// Fig12Config parameterizes the deanonymization study (§5.1.2): 1000
// simulated circuits over the 50-node all-pairs matrix.
type Fig12Config struct {
	Trials   int // default 1000
	Seed     int64
	Weighted bool // run the footnote-5 weighted comparison instead
}

func (c *Fig12Config) setDefaults() {
	if c.Trials == 0 {
		c.Trials = 1000
	}
}

// Fig12Result carries the trials plus per-strategy summaries.
type Fig12Result struct {
	Trials []deanon.Trial
	// Strategies in presentation order.
	Strategies []string
	// Medians maps strategy → median fraction of relays probed.
	Medians map[string]float64
}

// CDF returns one strategy's fraction-tested distribution (the Figure 12
// curves).
func (r *Fig12Result) CDF(strategy string) (*stats.CDF, error) {
	vals := make([]float64, 0, len(r.Trials))
	for _, tr := range r.Trials {
		if v, ok := tr.FracTested[strategy]; ok {
			vals = append(vals, v)
		}
	}
	return stats.NewCDF(vals)
}

// Speedup returns median(first strategy) / median(last strategy) — the
// paper's headline 1.5× (unweighted) and 2× (weighted).
func (r *Fig12Result) Speedup() (float64, error) {
	return deanon.Speedup(r.Trials, r.Strategies[0], r.Strategies[len(r.Strategies)-1])
}

// Fig12 runs the three deanonymization strategies over the all-pairs
// matrix from Figure 11.
func Fig12(f11 *Fig11Result, cfg Fig12Config) (*Fig12Result, error) {
	cfg.setDefaults()
	var strats []deanon.Strategy
	var weights []float64
	if cfg.Weighted {
		weights = f11.Weights()
		strats = []deanon.Strategy{
			&deanon.RTTUnaware{Weights: weights},
			&deanon.Informed{UseMu: true, Weights: weights},
		}
	} else {
		strats = []deanon.Strategy{
			&deanon.RTTUnaware{},
			deanon.IgnoreTooLarge{},
			&deanon.Informed{UseMu: true},
		}
	}
	sim := &deanon.Simulation{
		Matrix:     f11.Matrix,
		Strategies: strats,
		Weights:    weights,
		Seed:       cfg.Seed + 9,
	}
	trials, err := sim.Run(cfg.Trials)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Trials: trials, Medians: make(map[string]float64)}
	for _, s := range strats {
		res.Strategies = append(res.Strategies, s.Name())
		med, err := deanon.MedianFracTested(trials, s.Name())
		if err != nil {
			return nil, err
		}
		res.Medians[s.Name()] = med
	}
	return res, nil
}

// Fig13Point is one trial of Figure 13: end-to-end RTT versus the
// fraction of relays ruled out implicitly.
type Fig13Point struct {
	E2EMs        float64
	FracRuledOut float64
}

// Fig13 extracts the scatter from the Figure 12 trials.
func Fig13(f12 *Fig12Result) []Fig13Point {
	out := make([]Fig13Point, 0, len(f12.Trials))
	for _, tr := range f12.Trials {
		out = append(out, Fig13Point{E2EMs: tr.E2E, FracRuledOut: tr.FracRuledOut})
	}
	return out
}
