package experiments

import (
	"testing"

	"ting/internal/stats"
)

func TestKingComparison(t *testing.T) {
	res, err := KingComparison(KingConfig{Nodes: 16, Pairs: 80, Samples: 100, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TingRatios) != 80 || len(res.KingRatios) != 80 {
		t.Fatalf("ratio counts %d, %d", len(res.TingRatios), len(res.KingRatios))
	}
	tw, kw := res.TingWithin10(), res.KingWithin10()
	km, err := res.KingMedianRatio()
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := stats.Median(res.TingRatios)
	t.Logf("within10: ting %.3f vs king %.3f; medians: ting %.3f, king %.3f", tw, kw, tm, km)
	// §4.2: Ting's CDF is centered on 1 while King's skews left because
	// resolvers are better connected than the hosts they stand in for.
	if tw <= kw {
		t.Errorf("Ting (%.3f) should beat King (%.3f) at the 10%% band", tw, kw)
	}
	if km >= 1.0 {
		t.Errorf("King's median ratio %.3f not skewed below 1", km)
	}
	if tm < 0.95 || tm > 1.1 {
		t.Errorf("Ting's median ratio %.3f not centered on 1", tm)
	}
}

func TestDefensesExperiment(t *testing.T) {
	f11 := quickFig11(t)
	res, err := Defenses(f11, DefenseConfig{
		PaddingLevels: []float64{0, 150},
		MaxLen:        5,
		Trials:        200,
		Seed:          41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Padding) != 2 {
		t.Fatalf("%d padding points", len(res.Padding))
	}
	s0, s1 := res.Padding[0].Speedup(), res.Padding[1].Speedup()
	t.Logf("padding: speedup %.2fx → %.2fx at 150ms (cost %.0fms median)",
		s0, s1, res.Padding[1].MedianE2EOverheadMs)
	if s1 >= s0 {
		t.Errorf("padding did not reduce attacker advantage: %.2f → %.2f", s0, s1)
	}
	t.Logf("length defense: fixed rtt-order %.3f, randomized rtt-order %.3f (extra hops %.1f)",
		res.Fixed.MedianFracRTTOrder, res.Random.MedianFracRTTOrder, res.Random.MedianExtraHops)
	if res.Random.MedianFracRTTOrder <= res.Fixed.MedianFracRTTOrder {
		t.Error("randomized lengths did not slow the informed attacker")
	}
}

func TestSelectionExperiment(t *testing.T) {
	f11 := quickFig11(t)
	res, err := Selection(f11, SelectionConfig{
		Lengths:      []int{4},
		Baseline3Hop: 2000,
		Select:       300,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetMs <= 0 {
		t.Fatal("no budget computed")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	t.Logf("budget %.0fms (3-hop median); 4-hop selection: %d circuits, median %.0fms, entropy %.3f",
		res.BudgetMs, row.Selected, row.MedianRTT, row.Entropy)
	if row.MedianRTT > res.BudgetMs {
		t.Errorf("selected circuits (median %.1f) exceed budget %.1f", row.MedianRTT, res.BudgetMs)
	}
	if row.Entropy < 0.8 {
		t.Errorf("selection entropy %.3f too low; anonymity collapsed", row.Entropy)
	}
	if row.Selected < 100 {
		t.Errorf("only %d qualifying 4-hop circuits found", row.Selected)
	}
}
