package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ting/internal/stats"
)

// Fig3Config parameterizes the ground-truth validation (§4.2). The paper
// measures all 930 ordered pairs of a 31-node PlanetLab testbed with 1000
// Ting samples per circuit and 100 pings as ground truth.
type Fig3Config struct {
	Nodes       int   // testbed size; default 31
	Samples     int   // Ting samples per circuit; default 1000
	PingSamples int   // ground-truth pings per pair; default 100
	Ordered     bool  // measure both (x,y) and (y,x), as in the paper's 930
	Seed        int64 // determinism
}

func (c *Fig3Config) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 31
	}
	if c.Samples == 0 {
		c.Samples = 1000
	}
	if c.PingSamples == 0 {
		c.PingSamples = 100
	}
}

// PairAccuracy is one validated pair.
type PairAccuracy struct {
	X, Y      string
	Estimate  float64 // Ting's Eq. (4) estimate, ms
	PingTruth float64 // min-of-pings "real" value, ms
	TrueRTT   float64 // the model's exact Tor-path ground truth, ms
}

// Ratio is Estimate / PingTruth, Figure 3's x-axis.
func (p PairAccuracy) Ratio() float64 {
	if p.PingTruth == 0 {
		return 0
	}
	return p.Estimate / p.PingTruth
}

// Fig3Result carries the validation dataset; Figures 4 and 7 and the
// Spearman headline reuse it.
type Fig3Result struct {
	Pairs []PairAccuracy
}

// Ratios returns every pair's measured/real ratio.
func (r *Fig3Result) Ratios() []float64 {
	out := make([]float64, len(r.Pairs))
	for i, p := range r.Pairs {
		out[i] = p.Ratio()
	}
	return out
}

// Within returns the fraction of pairs within frac of the truth; the
// paper reports 91% within 10% and <2% with error over 30%.
func (r *Fig3Result) Within(frac float64) float64 {
	return stats.FractionWithin(r.Ratios(), frac)
}

// Spearman returns the rank correlation between estimates and ground
// truth (paper: 0.997).
func (r *Fig3Result) Spearman() (float64, error) {
	est := make([]float64, len(r.Pairs))
	truth := make([]float64, len(r.Pairs))
	for i, p := range r.Pairs {
		est[i] = p.Estimate
		truth[i] = p.PingTruth
	}
	return stats.Spearman(est, truth)
}

// Fig3 runs the ground-truth validation: Ting versus min-of-pings on
// every testbed pair.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg.setDefaults()
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return fig3Over(w, cfg)
}

// fig3Over runs the validation over an existing world (Fig 7 reuses the
// same testbed at a different sample count).
func fig3Over(w *World, cfg Fig3Config) (*Fig3Result, error) {
	cfg.setDefaults()
	m, err := w.Measurer(cfg.Samples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	pingProber := w.Prober(cfg.Seed + 2)

	var pairs [][2]string
	for i := 0; i < len(w.Names); i++ {
		for j := i + 1; j < len(w.Names); j++ {
			pairs = append(pairs, [2]string{w.Names[i], w.Names[j]})
			if cfg.Ordered {
				pairs = append(pairs, [2]string{w.Names[j], w.Names[i]})
			}
		}
	}
	// Probe in randomized order, as the paper does.
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })

	res := &Fig3Result{Pairs: make([]PairAccuracy, 0, len(pairs))}
	for _, p := range pairs {
		meas, err := m.MeasurePair(context.Background(), p[0], p[1])
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 pair %v: %w", p, err)
		}
		truth, err := w.PingTruth(pingProber, p[0], p[1], cfg.PingSamples)
		if err != nil {
			return nil, err
		}
		exact, err := w.TrueRTT(p[0], p[1])
		if err != nil {
			return nil, err
		}
		res.Pairs = append(res.Pairs, PairAccuracy{
			X: p[0], Y: p[1],
			Estimate:  meas.RTT,
			PingTruth: truth,
			TrueRTT:   exact,
		})
	}
	return res, nil
}

// Fig4Bucket is one latency regime of Figure 4.
type Fig4Bucket struct {
	Label      string
	LoMs, HiMs float64
	Ratios     []float64
	Within10   float64
}

// Fig4 splits Figure 3's data into the paper's four regimes: <50ms,
// 50–150ms, 150–250ms, >250ms, keyed on the ground-truth RTT.
func Fig4(f3 *Fig3Result) []Fig4Bucket {
	buckets := []Fig4Bucket{
		{Label: "<50ms", LoMs: 0, HiMs: 50},
		{Label: "50-150ms", LoMs: 50, HiMs: 150},
		{Label: "150-250ms", LoMs: 150, HiMs: 250},
		{Label: ">250ms", LoMs: 250, HiMs: 1e18},
	}
	for _, p := range f3.Pairs {
		for i := range buckets {
			if p.PingTruth >= buckets[i].LoMs && p.PingTruth < buckets[i].HiMs {
				buckets[i].Ratios = append(buckets[i].Ratios, p.Ratio())
				break
			}
		}
	}
	for i := range buckets {
		buckets[i].Within10 = stats.FractionWithin(buckets[i].Ratios, 0.1)
	}
	return buckets
}

// Fig7Result compares two sample counts over the same testbed.
type Fig7Result struct {
	SamplesA, SamplesB int
	A, B               *Fig3Result
}

// Fig7 re-measures the Figure 3 testbed with two different sample counts
// (the paper: 200 vs 1000) and returns both ratio distributions.
func Fig7(cfg Fig3Config, samplesA, samplesB int) (*Fig7Result, error) {
	cfg.setDefaults()
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cfgA := cfg
	cfgA.Samples = samplesA
	a, err := fig3Over(w, cfgA)
	if err != nil {
		return nil, err
	}
	cfgB := cfg
	cfgB.Samples = samplesB
	cfgB.Seed += 1000
	b, err := fig3Over(w, cfgB)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{SamplesA: samplesA, SamplesB: samplesB, A: a, B: b}, nil
}
