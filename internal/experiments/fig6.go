package experiments

import (
	"context"
	"fmt"
	"math/rand"
)

// Fig6Config parameterizes the sample-size study (§4.4): how many samples
// until the running minimum reaches (or gets near) the minimum of all
// 1000 — the Jansen et al. recreation.
type Fig6Config struct {
	WorldNodes int // live-network stand-in size; default 100
	Pairs      int // random pairs measured; default 100
	Samples    int // samples per pair; default 1000
	Seed       int64
}

func (c *Fig6Config) setDefaults() {
	if c.WorldNodes == 0 {
		c.WorldNodes = 100
	}
	if c.Pairs == 0 {
		c.Pairs = 100
	}
	if c.Samples == 0 {
		c.Samples = 1000
	}
}

// Fig6Pair records, for one pair, the sample index (1-based) at which the
// running minimum first came within each threshold of the final minimum.
type Fig6Pair struct {
	X, Y string
	// ToMin is the index of the sample equal to the overall minimum.
	ToMin int
	// Within1ms / Within1pct / Within5pct / Within10pct are the indices at
	// which the running minimum first entered each band.
	Within1ms, Within1pct, Within5pct, Within10pct int
}

// Fig6Result is the per-pair dataset behind the five CDFs of Figure 6.
type Fig6Result struct {
	Samples int
	Pairs   []Fig6Pair
}

// Series extracts one CDF's values by name: "min", "1ms", "1pct",
// "5pct", or "10pct".
func (r *Fig6Result) Series(name string) ([]float64, error) {
	out := make([]float64, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		switch name {
		case "min":
			out = append(out, float64(p.ToMin))
		case "1ms":
			out = append(out, float64(p.Within1ms))
		case "1pct":
			out = append(out, float64(p.Within1pct))
		case "5pct":
			out = append(out, float64(p.Within5pct))
		case "10pct":
			out = append(out, float64(p.Within10pct))
		default:
			return nil, fmt.Errorf("experiments: unknown fig6 series %q", name)
		}
	}
	return out, nil
}

// Fig6 measures random pairs and tracks convergence of the running
// minimum.
func Fig6(cfg Fig6Config) (*Fig6Result, error) {
	cfg.setDefaults()
	w, err := NewWorld(cfg.WorldNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m, err := w.Measurer(cfg.Samples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	res := &Fig6Result{Samples: cfg.Samples}
	for p := 0; p < cfg.Pairs; p++ {
		xi := rng.Intn(len(w.Names))
		yi := xi
		for yi == xi {
			yi = rng.Intn(len(w.Names))
		}
		x, y := w.Names[xi], w.Names[yi]
		series, err := m.SampleSeries(context.Background(), x, y, cfg.Samples)
		if err != nil {
			return nil, err
		}
		res.Pairs = append(res.Pairs, convergence(x, y, series))
	}
	return res, nil
}

// convergence computes the first-entry indices for one sample series.
func convergence(x, y string, series []float64) Fig6Pair {
	min := series[0]
	for _, v := range series[1:] {
		if v < min {
			min = v
		}
	}
	p := Fig6Pair{X: x, Y: y}
	running := series[0]
	set := func(field *int, idx int, ok bool) {
		if *field == 0 && ok {
			*field = idx
		}
	}
	for i, v := range series {
		if v < running {
			running = v
		}
		idx := i + 1
		set(&p.ToMin, idx, running <= min)
		set(&p.Within1ms, idx, running <= min+1)
		set(&p.Within1pct, idx, running <= min*1.01)
		set(&p.Within5pct, idx, running <= min*1.05)
		set(&p.Within10pct, idx, running <= min*1.10)
	}
	return p
}
