package experiments

import (
	"context"
	"fmt"
	"sort"

	"ting/internal/stats"
)

// Fig5Config parameterizes the forwarding-delay study (§4.3): hourly
// estimates for every testbed relay over 48 hours, with both ICMP and TCP
// direct probes.
type Fig5Config struct {
	Nodes          int // default 31
	Rounds         int // default 48 (hourly over 48 hours)
	CircuitSamples int // per-circuit samples; default 200
	PingSamples    int // default 100
	Seed           int64
}

func (c *Fig5Config) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 31
	}
	if c.Rounds == 0 {
		c.Rounds = 48
	}
	if c.CircuitSamples == 0 {
		c.CircuitSamples = 200
	}
	if c.PingSamples == 0 {
		c.PingSamples = 100
	}
}

// Fig5Host is one relay's distribution of forwarding-delay estimates.
type Fig5Host struct {
	Name   string
	Biased bool // ground truth: does this network treat protocols unequally?
	ICMP   stats.BoxStats
	TCP    stats.BoxStats
}

// Abnormal flags hosts whose estimates are clearly not plain forwarding
// delay — Figure 5's "extremely odd behavior": negative medians (Tor
// faster than ping is impossible on a shared path), medians beyond any
// plausible forwarding floor, or visible ICMP/TCP disagreement.
func (h Fig5Host) Abnormal() bool {
	disagree := h.ICMP.Median - h.TCP.Median
	if disagree < 0 {
		disagree = -disagree
	}
	return h.ICMP.Median < -1 || h.TCP.Median < -1 ||
		h.ICMP.Median > 5 || h.TCP.Median > 5 || disagree > 3
}

// Fig5Result is the per-host panel, sorted by ICMP median as in the plot.
type Fig5Result struct {
	Hosts []Fig5Host
}

// AbnormalFraction is the share of hosts flagged abnormal (paper: ~35%).
func (r *Fig5Result) AbnormalFraction() float64 {
	if len(r.Hosts) == 0 {
		return 0
	}
	n := 0
	for _, h := range r.Hosts {
		if h.Abnormal() {
			n++
		}
	}
	return float64(n) / float64(len(r.Hosts))
}

// Fig5 estimates forwarding delays for every relay, repeatedly, with both
// protocols.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	cfg.setDefaults()
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m, err := w.Measurer(cfg.CircuitSamples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	direct := w.Prober(cfg.Seed + 2)

	icmp := make(map[string][]float64, cfg.Nodes)
	tcp := make(map[string][]float64, cfg.Nodes)
	for round := 0; round < cfg.Rounds; round++ {
		for _, name := range w.Names {
			est, err := m.EstimateForwarding(context.Background(), name, direct, cfg.PingSamples)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig5 %s round %d: %w", name, round, err)
			}
			icmp[name] = append(icmp[name], est.ICMPMs)
			tcp[name] = append(tcp[name], est.TCPMs)
		}
	}

	res := &Fig5Result{}
	for _, name := range w.Names {
		bi, err := stats.Box(icmp[name])
		if err != nil {
			return nil, err
		}
		bt, err := stats.Box(tcp[name])
		if err != nil {
			return nil, err
		}
		res.Hosts = append(res.Hosts, Fig5Host{
			Name:   name,
			Biased: w.Topo.Node(w.NodeOf[name]).Biased,
			ICMP:   bi,
			TCP:    bt,
		})
	}
	sort.Slice(res.Hosts, func(a, b int) bool {
		return res.Hosts[a].ICMP.Median < res.Hosts[b].ICMP.Median
	})
	return res, nil
}
