package experiments

import (
	"context"
	"math/rand"
	"sort"

	"ting/internal/stats"
)

// Fig9Config parameterizes the stability study (§4.6): 30 pairs measured
// hourly for a week. The synthetic Internet is stationary, so the
// experiment injects the real-world dynamics the paper's week would have
// seen: occasional route changes (persistent RTT shifts) and transient
// congestion epochs.
type Fig9Config struct {
	WorldNodes int     // default 120
	PairCount  int     // default 30
	Hours      int     // default 168 (one week)
	Samples    int     // Ting samples per circuit; default 200
	RouteShift float64 // per-pair per-hour probability of a route change; default 0.005
	Seed       int64
}

func (c *Fig9Config) setDefaults() {
	if c.WorldNodes == 0 {
		c.WorldNodes = 120
	}
	if c.PairCount == 0 {
		c.PairCount = 30
	}
	if c.Hours == 0 {
		c.Hours = 168
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
	if c.RouteShift == 0 {
		c.RouteShift = 0.005
	}
}

// Fig9Pair is one pair's week of hourly measurements.
type Fig9Pair struct {
	X, Y string
	// RTTs holds one Ting estimate per hour, in ms.
	RTTs []float64
	// CV is the coefficient of variation over the week (Figure 9).
	CV float64
	// Box summarizes the hourly estimates (Figure 10).
	Box stats.BoxStats
}

// Fig9Result is the stability dataset; Figure 10 reuses it.
type Fig9Result struct {
	Pairs []Fig9Pair
}

// CVs returns every pair's coefficient of variation.
func (r *Fig9Result) CVs() []float64 {
	out := make([]float64, len(r.Pairs))
	for i, p := range r.Pairs {
		out[i] = p.CV
	}
	return out
}

// FractionBelow returns the share of pairs with cv below the threshold;
// the paper reports 96.7% below 0.5.
func (r *Fig9Result) FractionBelow(cv float64) float64 {
	if len(r.Pairs) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.Pairs {
		if p.CV < cv {
			n++
		}
	}
	return float64(n) / float64(len(r.Pairs))
}

// Fig9 runs the week-long hourly measurement with injected route dynamics.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	cfg.setDefaults()
	w, err := NewWorld(cfg.WorldNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m, err := w.Measurer(cfg.Samples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	// Pick pairs spanning the RTT distribution (the paper chose pairs
	// matching Figure 8's spread, including very low-RTT ones).
	type cand struct {
		x, y string
		rtt  float64
	}
	var cands []cand
	for i := 0; i < len(w.Names); i++ {
		for j := i + 1; j < len(w.Names); j++ {
			rtt, err := w.TrueRTT(w.Names[i], w.Names[j])
			if err != nil {
				return nil, err
			}
			cands = append(cands, cand{w.Names[i], w.Names[j], rtt})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].rtt < cands[b].rtt })
	picked := make([]cand, 0, cfg.PairCount)
	for k := 0; k < cfg.PairCount; k++ {
		idx := k * (len(cands) - 1) / max(cfg.PairCount-1, 1)
		picked = append(picked, cands[idx])
	}

	series := make([][]float64, len(picked))
	for hour := 0; hour < cfg.Hours; hour++ {
		for pi, p := range picked {
			// Route change: a persistent multiplicative shift to the
			// pair's base RTT, as Internet paths occasionally reroute.
			if rng.Float64() < cfg.RouteShift {
				xi, yi := w.NodeOf[p.x], w.NodeOf[p.y]
				cur := w.Topo.RTT(xi, yi)
				shift := 1 + (rng.Float64()*0.3 - 0.1) // -10%..+20%
				w.Topo.OverrideRTT(xi, yi, cur*shift)
			}
			meas, err := m.MeasurePair(context.Background(), p.x, p.y)
			if err != nil {
				return nil, err
			}
			series[pi] = append(series[pi], meas.RTT)
		}
	}

	res := &Fig9Result{}
	for pi, p := range picked {
		cv, err := stats.CoefficientOfVariation(series[pi])
		if err != nil {
			return nil, err
		}
		box, err := stats.Box(series[pi])
		if err != nil {
			return nil, err
		}
		res.Pairs = append(res.Pairs, Fig9Pair{X: p.x, Y: p.y, RTTs: series[pi], CV: cv, Box: box})
	}
	return res, nil
}

// Fig10 orders the Figure 9 pairs by median latency, the x-axis of the
// boxplot panel.
func Fig10(r *Fig9Result) []Fig9Pair {
	out := append([]Fig9Pair(nil), r.Pairs...)
	sort.Slice(out, func(a, b int) bool { return out[a].Box.Median < out[b].Box.Median })
	return out
}
