// Package experiments reproduces every figure of the paper's evaluation
// (Figures 3–18) plus its headline numbers and the ablations DESIGN.md
// calls out. Each figure is a plain function returning typed rows, so the
// CLI (cmd/experiments), the test suite, and the benchmarks share one
// implementation.
//
// All experiments run against the synthetic Internet (package inet) via
// the model-direct prober: the full onion-routing stack produces the same
// numbers (see ting's stack tests) but the paper-scale sweeps need
// millions of samples.
package experiments

import (
	"fmt"

	"ting/internal/geo"
	"ting/internal/inet"
	"ting/internal/ting"
)

// World is a measurement setup: a synthetic Internet, a measurement host,
// and the two colocated local relays w and z.
type World struct {
	Topo   *inet.Topology
	Host   inet.NodeID
	W, Z   string
	NodeOf map[string]inet.NodeID
	// Names lists the public relay names (topology nodes only).
	Names []string
}

// NewWorld generates an n-relay world with deterministic seed, with the
// live Tor network's US/EU-concentrated geography.
func NewWorld(n int, seed int64) (*World, error) {
	return NewWorldConfig(inet.Config{N: n, Seed: seed})
}

// NewTestbedWorld generates a world shaped like the paper's PlanetLab
// testbed (§4.1): nodes spread evenly across all regions so pair RTTs
// cover ~0ms to nearly antipodal.
func NewTestbedWorld(n int, seed int64) (*World, error) {
	return NewWorldConfig(inet.Config{N: n, Seed: seed, FlatRegions: true})
}

// NewWorldConfig generates a world from a full topology config.
func NewWorldConfig(cfg inet.Config) (*World, error) {
	topo, err := inet.Generate(cfg)
	if err != nil {
		return nil, err
	}
	host := topo.AddHost("ting-host", geo.Coord{Lat: 38.99, Lon: -76.94}, cfg.Seed+7)
	w := topo.AddColocated(host, "ting-w")
	z := topo.AddColocated(host, "ting-z")
	world := &World{
		Topo:   topo,
		Host:   host,
		W:      "ting-w",
		Z:      "ting-z",
		NodeOf: map[string]inet.NodeID{"ting-w": w, "ting-z": z},
	}
	for i := 0; i < cfg.N; i++ {
		name := topo.Node(inet.NodeID(i)).Name
		world.NodeOf[name] = inet.NodeID(i)
		world.Names = append(world.Names, name)
	}
	return world, nil
}

// Prober returns a fresh model prober with its own randomness.
func (w *World) Prober(seed int64) *ting.ModelProber {
	return ting.NewModelProber(w.Topo, w.Host, w.NodeOf, seed)
}

// Measurer returns a Ting measurer over a fresh prober.
func (w *World) Measurer(samples int, seed int64) (*ting.Measurer, error) {
	return ting.NewMeasurer(ting.Config{
		Prober:  w.Prober(seed),
		W:       w.W,
		Z:       w.Z,
		Samples: samples,
	})
}

// ExactMeasurer returns a measurer over a deterministic floor prober:
// samples carry no queueing noise or jitter, so a pair's measured RTT
// depends only on the topology — the property distributed campaigns need
// for their merged matrix to be bytewise equal to a single-process scan.
func (w *World) ExactMeasurer(samples int) (*ting.Measurer, error) {
	p := w.Prober(0)
	p.Exact = true
	return ting.NewMeasurer(ting.Config{
		Prober:  p,
		W:       w.W,
		Z:       w.Z,
		Samples: samples,
	})
}

// TrueRTT returns the ground-truth RTT between two named relays.
func (w *World) TrueRTT(x, y string) (float64, error) {
	xi, ok := w.NodeOf[x]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown relay %q", x)
	}
	yi, ok := w.NodeOf[y]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown relay %q", y)
	}
	return w.Topo.RTT(xi, yi), nil
}

// PingTruth returns the paper's notion of "real" RTT for a pair: the
// minimum of n direct ping samples between the two relays (§4.2 used 100
// pings as ground truth). On protocol-biased networks this differs from
// the Tor-path RTT — exactly as on PlanetLab.
func (w *World) PingTruth(p *ting.ModelProber, x, y string, n int) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		v, err := p.PingBetween(x, y)
		if err != nil {
			return 0, err
		}
		if i == 0 || v < best {
			best = v
		}
	}
	return best, nil
}
