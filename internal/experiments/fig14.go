package experiments

import (
	"ting/internal/pathsel"
	"ting/internal/stats"
)

// Fig14Result is the TIV study over the all-pairs matrix.
type Fig14Result struct {
	Summary pathsel.TIVSummary
	TIVs    []pathsel.TIV
}

// SavingsCDF is Figure 14: the distribution of fractional RTT savings
// from the best detour, over pairs that have one.
func (r *Fig14Result) SavingsCDF() (*stats.CDF, error) {
	return stats.NewCDF(r.Summary.Savings)
}

// Fig14 finds every pair's best triangle-inequality-violating detour.
func Fig14(f11 *Fig11Result) (*Fig14Result, error) {
	tivs, err := pathsel.FindTIVs(f11.Matrix)
	if err != nil {
		return nil, err
	}
	sum, err := pathsel.SummarizeTIVs(f11.Matrix)
	if err != nil {
		return nil, err
	}
	return &Fig14Result{Summary: sum, TIVs: tivs}, nil
}

// Fig15Point is one TIV as Figure 15 plots it: default-path RTT versus
// detour RTT.
type Fig15Point struct {
	DirectMs float64
	DetourMs float64
}

// Fig15 extracts the scatter from the Figure 14 TIVs.
func Fig15(f14 *Fig14Result) []Fig15Point {
	out := make([]Fig15Point, 0, len(f14.TIVs))
	for _, t := range f14.TIVs {
		out = append(out, Fig15Point{DirectMs: t.DirectMs, DetourMs: t.DetourMs})
	}
	return out
}

// Fig16Config parameterizes the longer-circuits study (§5.2.2).
type Fig16Config struct {
	Lengths []int // default 3..10
	Samples int   // circuits sampled per length; default 10000
	Seed    int64
}

func (c *Fig16Config) setDefaults() {
	if len(c.Lengths) == 0 {
		c.Lengths = []int{3, 4, 5, 6, 7, 8, 9, 10}
	}
	if c.Samples == 0 {
		c.Samples = 10000
	}
}

// Fig16Result carries per-length circuit-count histograms (Figure 16) and
// node-membership probabilities (Figure 17).
type Fig16Result struct {
	Lengths []pathsel.LengthHistogram
}

// Fig16 samples circuits of each length over the all-pairs matrix.
func Fig16(f11 *Fig11Result, cfg Fig16Config) (*Fig16Result, error) {
	cfg.setDefaults()
	lhs, err := pathsel.AnalyzeLengths(f11.Matrix, cfg.Lengths, cfg.Samples, cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Lengths: lhs}, nil
}
