package experiments

import (
	"math"
	"testing"

	"ting/internal/stats"
)

// Quick-scale configs keep the test suite fast; the CLI and benches run
// paper scale.

func quickFig3() Fig3Config {
	return Fig3Config{Nodes: 12, Samples: 150, PingSamples: 40, Seed: 1}
}

func TestFig3Validation(t *testing.T) {
	res, err := Fig3(quickFig3())
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 12 * 11 / 2
	if len(res.Pairs) != wantPairs {
		t.Fatalf("%d pairs, want %d", len(res.Pairs), wantPairs)
	}
	w10 := res.Within(0.1)
	t.Logf("within 10%%: %.3f (paper: 0.91)", w10)
	if w10 < 0.7 {
		t.Errorf("within-10%% = %.3f, want the large majority", w10)
	}
	if over30 := 1 - res.Within(0.3); over30 > 0.1 {
		t.Errorf("errors over 30%% = %.3f, want rare", over30)
	}
	sp, err := res.Spearman()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spearman: %.4f (paper: 0.997)", sp)
	if sp < 0.98 {
		t.Errorf("spearman = %.4f, want ≈ 0.997", sp)
	}
	// Estimates are unbiased enough that the ratio CDF straddles 1.
	med, _ := stats.Median(res.Ratios())
	if med < 0.9 || med > 1.15 {
		t.Errorf("median ratio %.3f, want ≈ 1", med)
	}
}

func TestFig3Ordered(t *testing.T) {
	cfg := quickFig3()
	cfg.Nodes = 6
	cfg.Ordered = true
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 6*5 {
		t.Errorf("%d ordered pairs, want 30", len(res.Pairs))
	}
}

func TestFig4Regimes(t *testing.T) {
	res, err := Fig3(quickFig3())
	if err != nil {
		t.Fatal(err)
	}
	buckets := Fig4(res)
	if len(buckets) != 4 {
		t.Fatalf("%d buckets", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += len(b.Ratios)
	}
	if total != len(res.Pairs) {
		t.Errorf("buckets hold %d pairs, want %d", total, len(res.Pairs))
	}
	// The paper: accuracy improves with RTT; the >250ms bucket is nearly
	// perfect while <50ms holds most outliers. Require the high bucket to
	// be at least as accurate as the low one when both are populated.
	lo, hi := buckets[0], buckets[3]
	if len(lo.Ratios) > 3 && len(hi.Ratios) > 3 && hi.Within10 < lo.Within10-0.05 {
		t.Errorf("high-RTT bucket (%.3f) less accurate than low (%.3f)", hi.Within10, lo.Within10)
	}
}

func TestFig5ForwardingDelays(t *testing.T) {
	res, err := Fig5(Fig5Config{Nodes: 16, Rounds: 6, CircuitSamples: 150, PingSamples: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 16 {
		t.Fatalf("%d hosts", len(res.Hosts))
	}
	frac := res.AbnormalFraction()
	t.Logf("abnormal fraction: %.3f (paper: ~0.35)", frac)
	if frac < 0.1 || frac > 0.6 {
		t.Errorf("abnormal fraction %.3f far from paper's ~35%%", frac)
	}
	// Sorted by ICMP median.
	for i := 1; i < len(res.Hosts); i++ {
		if res.Hosts[i].ICMP.Median < res.Hosts[i-1].ICMP.Median {
			t.Fatal("hosts not sorted by ICMP median")
		}
	}
	// Normal (unbiased) hosts should show small positive medians (~0–3ms
	// total over both traversals).
	for _, h := range res.Hosts {
		if !h.Biased && (h.ICMP.Median < -1.5 || h.ICMP.Median > 6) {
			t.Errorf("unbiased host %s has ICMP median %.2f", h.Name, h.ICMP.Median)
		}
	}
	// Biased hosts dominate the abnormal set.
	misattributed := 0
	for _, h := range res.Hosts {
		if h.Abnormal() != h.Biased {
			misattributed++
		}
	}
	if misattributed > len(res.Hosts)/3 {
		t.Errorf("%d of %d hosts misattributed", misattributed, len(res.Hosts))
	}
}

func TestFig6Convergence(t *testing.T) {
	res, err := Fig6(Fig6Config{WorldNodes: 30, Pairs: 40, Samples: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 40 {
		t.Fatalf("%d pairs", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.ToMin < 1 || p.ToMin > 400 {
			t.Fatalf("ToMin %d out of range", p.ToMin)
		}
		// Looser thresholds must be reached no later than tighter ones.
		if p.Within10pct > p.Within5pct || p.Within5pct > p.Within1pct || p.Within1pct > p.ToMin {
			t.Fatalf("threshold ordering violated: %+v", p)
		}
		if p.Within1ms > p.ToMin {
			t.Fatalf("1ms threshold after true min: %+v", p)
		}
	}
	mins, err := res.Series("min")
	if err != nil {
		t.Fatal(err)
	}
	med1ms, _ := res.Series("1ms")
	medMin, _ := stats.Median(mins)
	med1, _ := stats.Median(med1ms)
	t.Logf("median samples: to min %.0f, to within 1ms %.0f (paper: ~25x gap)", medMin, med1)
	// The paper's key observation: near-minimum arrives far earlier than
	// the true minimum.
	if med1 > medMin/2 {
		t.Errorf("within-1ms median %.0f not well below to-min median %.0f", med1, medMin)
	}
	if _, err := res.Series("nonsense"); err == nil {
		t.Error("unknown series accepted")
	}
}

func TestFig7SampleCounts(t *testing.T) {
	cfg := quickFig3()
	cfg.Nodes = 10
	res, err := Fig7(cfg, 50, 250)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesA != 50 || res.SamplesB != 250 {
		t.Errorf("sample counts %d, %d", res.SamplesA, res.SamplesB)
	}
	wA, wB := res.A.Within(0.1), res.B.Within(0.1)
	t.Logf("within10: %d samples %.3f, %d samples %.3f", res.SamplesA, wA, res.SamplesB, wB)
	// The paper's point: the two CDFs are nearly identical.
	if math.Abs(wA-wB) > 0.15 {
		t.Errorf("sample counts diverge too much: %.3f vs %.3f", wA, wB)
	}
}

func TestFig8DistanceLatency(t *testing.T) {
	res, err := Fig8(Fig8Config{WorldNodes: 120, Pairs: 500, Samples: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 500 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Fit.Slope <= 0 {
		t.Errorf("fit slope %.4f, want positive distance-latency relation", res.Fit.Slope)
	}
	// Our fit measures minimum latencies; it must sit below the Htrae
	// (median-latency) line through the plotted range, as in the paper.
	for _, km := range []float64{2000, 8000, 15000} {
		if res.Fit.Eval(km) >= HtraeFit.Eval(km) {
			t.Errorf("our fit at %.0fkm (%.1fms) not below Htrae (%.1fms)",
				km, res.Fit.Eval(km), HtraeFit.Eval(km))
		}
	}
	below, explained := res.BelowLightSpeedStats()
	t.Logf("below (2/3)c: %d points, %d explained by geolocation error", below, explained)
	if below > 0 && explained == 0 {
		t.Error("impossible points exist but none trace to geolocation error")
	}
	// Honest points never beat light.
	for _, p := range res.Points {
		if !p.GeoError && p.BelowLightSpeed() {
			t.Errorf("clean pair (%s,%s) below light speed", p.X, p.Y)
		}
	}
	if _, err := res.DistanceCDF(); err != nil {
		t.Error(err)
	}
	if _, err := res.RTTCDF(); err != nil {
		t.Error(err)
	}
}

func TestFig9Stability(t *testing.T) {
	res, err := Fig9(Fig9Config{WorldNodes: 40, PairCount: 12, Hours: 30, Samples: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 12 {
		t.Fatalf("%d pairs", len(res.Pairs))
	}
	frac := res.FractionBelow(0.5)
	t.Logf("fraction with cv<0.5: %.3f (paper: 0.967)", frac)
	if frac < 0.8 {
		t.Errorf("only %.3f of pairs stable; Ting should be stable over time", frac)
	}
	for _, p := range res.Pairs {
		if len(p.RTTs) != 30 {
			t.Fatalf("pair %s-%s has %d hours", p.X, p.Y, len(p.RTTs))
		}
		if p.CV < 0 {
			t.Fatalf("negative cv")
		}
	}
	ordered := Fig10(res)
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Box.Median < ordered[i-1].Box.Median {
			t.Fatal("Fig10 not ordered by median")
		}
	}
}

func quickFig11(t *testing.T) *Fig11Result {
	t.Helper()
	res, err := Fig11(Fig11Config{Nodes: 25, Samples: 60, Workers: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig11AllPairs(t *testing.T) {
	res := quickFig11(t)
	if res.Matrix.N() != 25 {
		t.Fatalf("matrix over %d nodes", res.Matrix.N())
	}
	cdf, err := res.RTTCDF()
	if err != nil {
		t.Fatal(err)
	}
	if cdf.N() != 25*24/2 {
		t.Errorf("CDF over %d pairs", cdf.N())
	}
	// Every measured value is positive and sane.
	for _, v := range res.Matrix.PairValues() {
		if v <= 0 || v > 2000 {
			t.Fatalf("measured RTT %v", v)
		}
	}
	weights := res.Weights()
	if len(weights) != 25 {
		t.Fatalf("%d weights", len(weights))
	}
	for _, w := range weights {
		if w <= 0 {
			t.Fatal("non-positive weight")
		}
	}
}

func TestFig12Deanonymization(t *testing.T) {
	f11 := quickFig11(t)
	res, err := Fig12(f11, Fig12Config{Trials: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("%d strategies", len(res.Strategies))
	}
	mu, mi, minf := res.Medians["rtt-unaware"], res.Medians["ignore-too-large"], res.Medians["informed"]
	t.Logf("medians: unaware=%.3f ignore=%.3f informed=%.3f (paper: 0.72/0.62/0.48)", mu, mi, minf)
	if !(minf < mi && mi < mu) {
		t.Errorf("strategy ordering violated: %.3f / %.3f / %.3f", mu, mi, minf)
	}
	sp, err := res.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.1 {
		t.Errorf("speedup %.2f×, want > 1.1 (paper: 1.5×)", sp)
	}
	if _, err := res.CDF("informed"); err != nil {
		t.Error(err)
	}

	pts := Fig13(res)
	if len(pts) != 150 {
		t.Fatalf("%d fig13 points", len(pts))
	}
	// Correlation between E2E and fraction ruled out must be negative.
	var e2e, ruled []float64
	for _, p := range pts {
		e2e = append(e2e, p.E2EMs)
		ruled = append(ruled, p.FracRuledOut)
	}
	r, err := stats.Pearson(e2e, ruled)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig13 correlation: %.3f", r)
	if r >= 0 {
		t.Errorf("E2E vs ruled-out correlation %.3f, want negative", r)
	}
}

func TestFig12Weighted(t *testing.T) {
	f11 := quickFig11(t)
	res, err := Fig12(f11, Fig12Config{Trials: 100, Seed: 8, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 2 {
		t.Fatalf("%d strategies", len(res.Strategies))
	}
	if _, ok := res.Medians["weight-ordered"]; !ok {
		t.Error("weight-ordered baseline missing")
	}
	if _, ok := res.Medians["informed-weighted"]; !ok {
		t.Error("informed-weighted missing")
	}
}

func TestFig14TIVs(t *testing.T) {
	f11 := quickFig11(t)
	res, err := Fig14(f11)
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Summary.FractionWithTIV()
	t.Logf("TIV fraction: %.3f (paper: 0.69)", frac)
	if frac < 0.3 {
		t.Errorf("TIV fraction %.3f too low", frac)
	}
	if _, err := res.SavingsCDF(); err != nil {
		t.Fatal(err)
	}
	pts := Fig15(res)
	if len(pts) != len(res.TIVs) {
		t.Fatalf("fig15 has %d points for %d TIVs", len(pts), len(res.TIVs))
	}
	for _, p := range pts {
		if p.DetourMs >= p.DirectMs {
			t.Fatal("fig15 point above the diagonal")
		}
	}
}

func TestFig16LongerCircuits(t *testing.T) {
	f11 := quickFig11(t)
	res, err := Fig16(f11, Fig16Config{Lengths: []int{3, 4, 6}, Samples: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lengths) != 3 {
		t.Fatalf("%d lengths", len(res.Lengths))
	}
	// Longer circuits reach higher RTTs and (with C(n,l) scaling) far
	// higher counts.
	if res.Lengths[2].Hist.Total() <= res.Lengths[0].Hist.Total() {
		t.Error("6-hop scaled population not larger than 3-hop")
	}
}

func TestFig18Coverage(t *testing.T) {
	res, err := Fig18(Fig18Config{Days: 20, Relays: 2000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 20 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Unique24s <= 0 || p.Unique24s >= p.Relays {
			t.Fatalf("point %+v implausible", p)
		}
	}
	frac := res.Classes.ResidentialFractionOfNamed()
	if frac < 0.5 || frac > 0.72 {
		t.Errorf("residential fraction %.3f, want ≈ 0.61", frac)
	}
}

func TestAblationAggregator(t *testing.T) {
	res, err := AblationAggregator(AblationConfig{Nodes: 14, Pairs: 40, Samples: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AggregatorResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	t.Logf("aggregators: min=%.3f median=%.3f mean=%.3f (within 10%%)",
		byName["min"].Within10, byName["median"].Within10, byName["mean"].Within10)
	if byName["min"].Within10 < byName["mean"].Within10 {
		t.Errorf("min (%.3f) should beat mean (%.3f)", byName["min"].Within10, byName["mean"].Within10)
	}
	if byName["min"].MedianAbsErrPct > byName["median"].MedianAbsErrPct {
		t.Errorf("min error %.2f%% worse than median %.2f%%",
			byName["min"].MedianAbsErrPct, byName["median"].MedianAbsErrPct)
	}
}

func TestAblationStrawman(t *testing.T) {
	res, err := AblationStrawman(AblationConfig{Nodes: 20, Pairs: 60, Samples: 150, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("within10: ting=%.3f strawman=%.3f on-biased=%.3f on-clean=%.3f",
		res.TingWithin10, res.StrawmanWithin10, res.BiasedStrawmanWithin10, res.CleanStrawmanWithin10)
	if res.TingWithin10 <= res.StrawmanWithin10 {
		t.Errorf("Ting (%.3f) should beat the strawman (%.3f)", res.TingWithin10, res.StrawmanWithin10)
	}
	// Both §3.2 flaws hurt the strawman: unaccounted forwarding delays on
	// every pair (why even clean pairs trail Ting) and protocol bias on
	// biased pairs. At quick scale the biased subset is small, so only
	// sanity-check it against the clean subset.
	if res.BiasedStrawmanWithin10 > res.CleanStrawmanWithin10+0.1 {
		t.Errorf("biased pairs implausibly more accurate: biased %.3f vs clean %.3f",
			res.BiasedStrawmanWithin10, res.CleanStrawmanWithin10)
	}
}

func TestAblationSamples(t *testing.T) {
	res, err := AblationSamples(AblationConfig{Nodes: 14, Pairs: 30, Seed: 13}, []int{10, 100, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d points", len(res))
	}
	t.Logf("samples sweep: %+v", res)
	// More samples must not be materially worse.
	if res[2].Within10 < res[0].Within10-0.1 {
		t.Errorf("400 samples (%.3f) materially worse than 10 (%.3f)", res[2].Within10, res[0].Within10)
	}
}

func TestAblationMu(t *testing.T) {
	f11 := quickFig11(t)
	res, err := AblationMu(f11, 120, 14)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mu ablation: with=%.3f without=%.3f", res.WithMu, res.WithoutMu)
	if res.WithMu <= 0 || res.WithoutMu <= 0 {
		t.Error("degenerate medians")
	}
}

func TestHeadlines(t *testing.T) {
	f3, err := Fig3(quickFig3())
	if err != nil {
		t.Fatal(err)
	}
	f11 := quickFig11(t)
	f12, err := Fig12(f11, Fig12Config{Trials: 100, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Fig14(f11)
	if err != nil {
		t.Fatal(err)
	}
	f18, err := Fig18(Fig18Config{Days: 5, Relays: 2000, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ComputeHeadlines(f3, f12, f14, f18)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(h.String())
	if h.Spearman < 0.95 || h.DeanonSpeedup < 1 || h.TIVFraction <= 0 {
		t.Errorf("headlines implausible: %+v", h)
	}
}

func TestWorldHelpers(t *testing.T) {
	w, err := NewWorld(5, 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.TrueRTT("ghost", w.Names[0]); err == nil {
		t.Error("ghost relay accepted")
	}
	if _, err := w.TrueRTT(w.Names[0], "ghost"); err == nil {
		t.Error("ghost relay accepted")
	}
	rtt, err := w.TrueRTT(w.Names[0], w.Names[1])
	if err != nil || rtt <= 0 {
		t.Errorf("TrueRTT = %v, %v", rtt, err)
	}
	if _, err := NewWorld(0, 1); err == nil {
		t.Error("empty world accepted")
	}
}
