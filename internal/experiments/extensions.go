package experiments

import (
	"math/rand"

	"ting/internal/deanon"
	"ting/internal/pathsel"
)

// Extensions: the paper's §5.1.3 defenses and the §5.2.2/§6 future-work
// circuit-selection algorithm, evaluated over the Figure 11 matrix.

// DefenseConfig parameterizes the defense studies.
type DefenseConfig struct {
	// PaddingLevels are the maximum per-relay padding values (ms) to
	// sweep. Default {0, 25, 50, 100, 200}.
	PaddingLevels []float64
	// MaxLen is the upper bound for the randomized-length defense.
	// Default 6.
	MaxLen int
	// Trials per configuration. Default 500.
	Trials int
	Seed   int64
}

func (c *DefenseConfig) setDefaults() {
	if len(c.PaddingLevels) == 0 {
		c.PaddingLevels = []float64{0, 25, 50, 100, 200}
	}
	if c.MaxLen == 0 {
		c.MaxLen = 6
	}
	if c.Trials == 0 {
		c.Trials = 500
	}
}

// DefenseResult aggregates both defenses.
type DefenseResult struct {
	Padding []deanon.PaddingSweepPoint
	Fixed   *deanon.LengthDefensePoint // the undefended 3-hop baseline
	Random  *deanon.LengthDefensePoint // lengths randomized in [3, MaxLen]
}

// Defenses evaluates latency padding and randomized circuit length against
// the RTT-informed attacker.
func Defenses(f11 *Fig11Result, cfg DefenseConfig) (*DefenseResult, error) {
	cfg.setDefaults()
	padding, err := deanon.PaddingSweep(f11.Matrix, cfg.PaddingLevels, cfg.Trials, cfg.Seed+21)
	if err != nil {
		return nil, err
	}
	fixed, err := deanon.LengthDefense(f11.Matrix, 3, 3, cfg.Trials, cfg.Seed+22)
	if err != nil {
		return nil, err
	}
	random, err := deanon.LengthDefense(f11.Matrix, 3, cfg.MaxLen, cfg.Trials, cfg.Seed+22)
	if err != nil {
		return nil, err
	}
	return &DefenseResult{Padding: padding, Fixed: fixed, Random: random}, nil
}

// SelectionConfig parameterizes the low-latency longer-circuit study.
type SelectionConfig struct {
	// Lengths of the longer circuits to select. Default {4, 5}.
	Lengths []int
	// Baseline3Hop is how many random 3-hop circuits define the latency
	// budget (their median RTT). Default 5000.
	Baseline3Hop int
	// Select is how many qualifying circuits to gather per length.
	// Default 1000.
	Select int
	Seed   int64
}

func (c *SelectionConfig) setDefaults() {
	if len(c.Lengths) == 0 {
		c.Lengths = []int{4, 5}
	}
	if c.Baseline3Hop == 0 {
		c.Baseline3Hop = 5000
	}
	if c.Select == 0 {
		c.Select = 1000
	}
}

// SelectionRow is one length's outcome.
type SelectionRow struct {
	Length int
	// MedianRTT of the selected circuits; at or below BudgetMs by
	// construction.
	MedianRTT float64
	// Entropy of relay usage across the selection (1 = uniform).
	Entropy float64
	// Selected is how many qualifying circuits were found.
	Selected int
}

// SelectionResult reports whether longer circuits can match the 3-hop
// latency budget without collapsing anonymity.
type SelectionResult struct {
	BudgetMs        float64
	Baseline3Median float64
	Rows            []SelectionRow
}

// Selection runs the future-work algorithm: pick longer circuits within
// the 3-hop median latency budget and measure the selection's entropy.
func Selection(f11 *Fig11Result, cfg SelectionConfig) (*SelectionResult, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	base, err := pathsel.SampleCircuits(f11.Matrix, 3, cfg.Baseline3Hop, rng)
	if err != nil {
		return nil, err
	}
	budget, err := pathsel.MedianRTT(base)
	if err != nil {
		return nil, err
	}
	res := &SelectionResult{BudgetMs: budget, Baseline3Median: budget}
	for _, l := range cfg.Lengths {
		sel, err := pathsel.SelectLowLatency(f11.Matrix, l, budget, cfg.Select, cfg.Select*500, rng)
		if err != nil {
			return nil, err
		}
		med, err := pathsel.MedianRTT(sel)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SelectionRow{
			Length:    l,
			MedianRTT: med,
			Entropy:   pathsel.SelectionEntropy(sel, f11.Matrix.N()),
			Selected:  len(sel),
		})
	}
	return res, nil
}
