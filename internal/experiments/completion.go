package experiments

import (
	"context"
	"fmt"
	"sort"

	"ting/internal/inet"
	"ting/internal/stats"
	"ting/internal/ting"
)

// The matrix-completion study: how much accuracy does the budgeted
// campaign (Scanner.ScanBudget — Vivaldi embedding + active selection)
// give up against ground truth when it measures only a fraction of the
// N·(N−1)/2 pairs? This is the validation behind ROADMAP item 3's
// sub-quadratic mode: the synthetic Internet knows its exact RTT matrix,
// so predicted cells can be scored directly, the same way Figures 3 and 4
// score Ting itself against ping truth.

// CompletionConfig parameterizes one budgeted-campaign accuracy run.
type CompletionConfig struct {
	Nodes int // world size; default 512
	// BudgetFraction is the measured share of all pairs. Default 0.25.
	BudgetFraction float64
	// Samples per circuit series; default 16. Fewer samples make each
	// measured pair noisier (min-finding stops short of the floor), which
	// the embedding then inherits.
	Samples int
	Workers int // scanner parallelism; default 8
	Seed    int64
	// World overrides the topology config (N and Seed default from the
	// fields above). Nil selects the Tor-like US/EU-concentrated world.
	World *inet.Config
}

func (c *CompletionConfig) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 512
	}
	if c.BudgetFraction == 0 {
		c.BudgetFraction = 0.25
	}
	if c.Samples == 0 {
		c.Samples = 16
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
}

// CompletionResult scores one budgeted campaign against ground truth.
type CompletionResult struct {
	World  *World
	Matrix *ting.Matrix

	Budget    int // pairs the campaign was allowed to measure
	Measured  int // cells holding a fresh measurement
	Predicted int // cells filled by the embedding

	// MedianRTTMs is the median ground-truth RTT over all pairs — the
	// scale the error quantiles are read against.
	MedianRTTMs float64
	// MedianAbsErrMs / P90AbsErrMs summarize |predicted − truth| over the
	// predicted cells only (measured cells are scored by the Figure 3
	// experiments; this one scores the completion).
	MedianAbsErrMs float64
	P90AbsErrMs    float64
	// MeanConfidence averages the model's per-cell confidence over
	// predicted cells.
	MeanConfidence float64

	// AbsErrs holds every predicted cell's absolute error, for CDFs.
	AbsErrs []float64
}

// ErrCDF returns the distribution of absolute prediction errors.
func (r *CompletionResult) ErrCDF() (*stats.CDF, error) {
	return stats.NewCDF(r.AbsErrs)
}

// Completion runs one budgeted campaign and scores the predicted cells
// against the topology's exact RTT matrix.
func Completion(cfg CompletionConfig) (*CompletionResult, error) {
	cfg.setDefaults()
	if cfg.BudgetFraction <= 0 || cfg.BudgetFraction >= 1 {
		return nil, fmt.Errorf("experiments: BudgetFraction %v outside (0,1)", cfg.BudgetFraction)
	}
	var (
		w   *World
		err error
	)
	if cfg.World != nil {
		wc := *cfg.World
		if wc.N == 0 {
			wc.N = cfg.Nodes
		}
		if wc.Seed == 0 {
			wc.Seed = cfg.Seed
		}
		w, err = NewWorldConfig(wc)
	} else {
		w, err = NewWorld(cfg.Nodes, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	n := len(w.Names)
	allPairs := n * (n - 1) / 2
	budget := int(float64(allPairs) * cfg.BudgetFraction)

	sc := &ting.Scanner{
		NewMeasurer: func(worker int) (*ting.Measurer, error) {
			return w.Measurer(cfg.Samples, cfg.Seed+100+int64(worker))
		},
		Workers: cfg.Workers,
		Shuffle: cfg.Seed + 4,
	}
	m, _, err := sc.ScanBudget(context.Background(), w.Names, budget)
	if err != nil {
		return nil, err
	}

	res := &CompletionResult{World: w, Matrix: m, Budget: budget}
	truths := make([]float64, 0, allPairs)
	var confSum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			truth, terr := w.TrueRTT(w.Names[i], w.Names[j])
			if terr != nil {
				return nil, terr
			}
			truths = append(truths, truth)
			switch m.ProvAt(i, j) {
			case ting.ProvFresh, ting.ProvResumed:
				res.Measured++
			case ting.ProvPredicted:
				res.Predicted++
				d := m.At(i, j) - truth
				if d < 0 {
					d = -d
				}
				res.AbsErrs = append(res.AbsErrs, d)
				confSum += m.ConfAt(i, j)
			}
		}
	}
	res.MedianRTTMs = quantileOf(truths, 0.5)
	res.MedianAbsErrMs = quantileOf(append([]float64(nil), res.AbsErrs...), 0.5)
	res.P90AbsErrMs = quantileOf(append([]float64(nil), res.AbsErrs...), 0.9)
	if res.Predicted > 0 {
		res.MeanConfidence = confSum / float64(res.Predicted)
	}
	return res, nil
}

// quantileOf sorts vs in place and reads the q-quantile by nearest rank.
func quantileOf(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	idx := int(q * float64(len(vs)-1))
	return vs[idx]
}

// TradeoffPoint is one measured-fraction's accuracy.
type TradeoffPoint struct {
	Fraction       float64
	Budget         int
	Measured       int
	MedianAbsErrMs float64
	P90AbsErrMs    float64
	MedianRTTMs    float64
}

// CompletionTradeoff sweeps the measured fraction on one world size: the
// budget-vs-accuracy curve that justifies (or indicts) a chosen budget.
func CompletionTradeoff(cfg CompletionConfig, fractions []float64) ([]TradeoffPoint, error) {
	out := make([]TradeoffPoint, 0, len(fractions))
	for _, f := range fractions {
		c := cfg
		c.BudgetFraction = f
		r, err := Completion(c)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{
			Fraction:       f,
			Budget:         r.Budget,
			Measured:       r.Measured,
			MedianAbsErrMs: r.MedianAbsErrMs,
			P90AbsErrMs:    r.P90AbsErrMs,
			MedianRTTMs:    r.MedianRTTMs,
		})
	}
	return out, nil
}

// SizePoint is one world size's completion accuracy at a fixed fraction.
type SizePoint struct {
	Nodes          int
	MedianAbsErrMs float64
	P90AbsErrMs    float64
	MedianRTTMs    float64
}

// CompletionBySize holds the fraction fixed and sweeps the world size:
// embeddings get relatively cheaper as N grows (budget scales with N²,
// coordinates need O(N·k)), so accuracy should hold or improve.
func CompletionBySize(cfg CompletionConfig, sizes []int) ([]SizePoint, error) {
	out := make([]SizePoint, 0, len(sizes))
	for _, n := range sizes {
		c := cfg
		c.Nodes = n
		r, err := Completion(c)
		if err != nil {
			return nil, err
		}
		out = append(out, SizePoint{
			Nodes:          n,
			MedianAbsErrMs: r.MedianAbsErrMs,
			P90AbsErrMs:    r.P90AbsErrMs,
			MedianRTTMs:    r.MedianRTTMs,
		})
	}
	return out, nil
}
