package experiments

import (
	"context"
	"ting/internal/stats"
	"ting/internal/ting"
)

// Fig11Config parameterizes the all-pairs dataset behind every Section 5
// application: 50 random relays, all pairs measured with Ting.
type Fig11Config struct {
	Nodes   int // default 50
	Samples int // default 200
	Workers int // scanner parallelism; default 4
	Seed    int64
}

func (c *Fig11Config) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 50
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
}

// Fig11Result is the all-pairs matrix plus the world it came from (the
// later figures need ground truth and bandwidth weights).
type Fig11Result struct {
	World  *World
	Matrix *ting.Matrix
}

// RTTCDF is Figure 11 itself: the distribution of measured inter-node
// RTTs.
func (r *Fig11Result) RTTCDF() (*stats.CDF, error) {
	return stats.NewCDF(r.Matrix.PairValues())
}

// Weights returns each matrix relay's bandwidth, aligned with
// Matrix.Names.
func (r *Fig11Result) Weights() []float64 {
	out := make([]float64, len(r.Matrix.Names()))
	for i, name := range r.Matrix.Names() {
		out[i] = r.World.Topo.Node(r.World.NodeOf[name]).BandwidthKBps
	}
	return out
}

// Fig11 measures the all-pairs matrix with the parallel scanner.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	cfg.setDefaults()
	w, err := NewWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sc := &ting.Scanner{
		NewMeasurer: func(worker int) (*ting.Measurer, error) {
			return w.Measurer(cfg.Samples, cfg.Seed+100+int64(worker))
		},
		Workers: cfg.Workers,
		Shuffle: cfg.Seed + 4,
	}
	m, _, err := sc.Scan(context.Background(), w.Names)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{World: w, Matrix: m}, nil
}
