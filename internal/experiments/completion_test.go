package experiments

import (
	"testing"
)

// completionSmokeMaxErrFraction is the committed accuracy floor for the CI
// embed-accuracy smoke (256-node world, 25% budget): median absolute
// prediction error as a fraction of median RTT. The run is deterministic
// and currently lands near 0.095; 0.12 leaves room for benign drift while
// still catching a broken embedding (an unfitted model predicts with
// several times this error).
const completionSmokeMaxErrFraction = 0.12

// TestCompletionBudget512 is the tentpole acceptance criterion: on a
// ≥512-node model world, a budgeted scan measuring ≤25% of pairs must
// complete the matrix with median absolute prediction error within 10% of
// the median RTT.
func TestCompletionBudget512(t *testing.T) {
	cfg := CompletionConfig{Nodes: 512, Seed: 3, Samples: 32, BudgetFraction: 0.25}
	r, err := Completion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.World.Names)
	allPairs := n * (n - 1) / 2
	if r.Budget > allPairs/4 {
		t.Fatalf("budget %d exceeds 25%% of %d pairs", r.Budget, allPairs)
	}
	if r.Measured > r.Budget {
		t.Errorf("measured %d pairs over the %d budget", r.Measured, r.Budget)
	}
	if r.Measured+r.Predicted != allPairs {
		t.Errorf("matrix incomplete: measured %d + predicted %d != %d pairs",
			r.Measured, r.Predicted, allPairs)
	}
	pc := r.Matrix.ProvCounts()
	if pc.Missing != 0 {
		t.Errorf("completed matrix has %d missing cells", pc.Missing)
	}
	if pc.Predicted != r.Predicted {
		t.Errorf("ProvCounts.Predicted = %d, result counted %d", pc.Predicted, r.Predicted)
	}
	limit := 0.10 * r.MedianRTTMs
	if r.MedianAbsErrMs > limit {
		t.Errorf("median abs prediction error %.2fms exceeds 10%% of median RTT (%.2fms)",
			r.MedianAbsErrMs, limit)
	}
	if r.MeanConfidence <= 0 || r.MeanConfidence > 1 {
		t.Errorf("mean confidence %v outside (0,1]", r.MeanConfidence)
	}
	t.Logf("512 nodes, %d/%d measured: median err %.2fms (%.1f%% of median RTT %.1fms), p90 %.2fms, conf %.2f",
		r.Measured, allPairs, r.MedianAbsErrMs, 100*r.MedianAbsErrMs/r.MedianRTTMs,
		r.MedianRTTMs, r.P90AbsErrMs, r.MeanConfidence)
}

// TestCompletionSmoke256 is the CI embed-accuracy smoke: small enough to
// run on every push, failing if the 256-node median prediction error
// exceeds the committed floor.
func TestCompletionSmoke256(t *testing.T) {
	r, err := Completion(CompletionConfig{Nodes: 256, Seed: 3, Samples: 32})
	if err != nil {
		t.Fatal(err)
	}
	frac := r.MedianAbsErrMs / r.MedianRTTMs
	if frac > completionSmokeMaxErrFraction {
		t.Errorf("median prediction error %.2fms is %.1f%% of median RTT, floor is %.0f%%",
			r.MedianAbsErrMs, 100*frac, 100*completionSmokeMaxErrFraction)
	}
	t.Logf("256-node smoke: %.2fms median err (%.1f%% of median RTT)", r.MedianAbsErrMs, 100*frac)
}

// TestCompletionTradeoff pins the budget-vs-accuracy curve's shape: more
// measurement must not cost accuracy, and every point stays a complete
// matrix.
func TestCompletionTradeoff(t *testing.T) {
	rows, err := CompletionTradeoff(
		CompletionConfig{Nodes: 128, Seed: 5, Samples: 16},
		[]float64{0.1, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for i, row := range rows {
		t.Logf("fraction %.2f: measured %d, median err %.2fms", row.Fraction, row.Measured, row.MedianAbsErrMs)
		if row.MedianAbsErrMs <= 0 {
			t.Errorf("row %d: no error measured", i)
		}
		if i > 0 && row.Measured <= rows[i-1].Measured {
			t.Errorf("measured count did not grow with budget: %d then %d",
				rows[i-1].Measured, row.Measured)
		}
	}
	// The curve need not be strictly monotone (different budgets schedule
	// different pairs), but doubling the budget twice must not make things
	// worse overall.
	if rows[2].MedianAbsErrMs > rows[0].MedianAbsErrMs*1.15 {
		t.Errorf("5x budget degraded accuracy: %.2fms at 10%% vs %.2fms at 50%%",
			rows[0].MedianAbsErrMs, rows[2].MedianAbsErrMs)
	}
}

// TestCompletionBySize sweeps world sizes at a fixed fraction: the error
// CDF study's backbone. Accuracy relative to median RTT must hold as N
// grows — the whole point of the sub-quadratic mode.
func TestCompletionBySize(t *testing.T) {
	rows, err := CompletionBySize(CompletionConfig{Seed: 7, Samples: 16}, []int{64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		frac := row.MedianAbsErrMs / row.MedianRTTMs
		t.Logf("n=%d: median err %.2fms (%.1f%% of median RTT)", row.Nodes, row.MedianAbsErrMs, 100*frac)
		if frac > 0.15 {
			t.Errorf("n=%d: relative error %.1f%% above 15%%", row.Nodes, 100*frac)
		}
	}
}

// TestCompletionErrCDF exercises the CDF accessor over predicted-cell
// errors.
func TestCompletionErrCDF(t *testing.T) {
	r, err := Completion(CompletionConfig{Nodes: 64, Seed: 11, Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := r.ErrCDF()
	if err != nil {
		t.Fatal(err)
	}
	if got := cdf.Quantile(0.5); got != r.MedianAbsErrMs {
		// Quantile conventions may differ by one rank on even counts; allow
		// only tiny divergence.
		lo, hi := r.MedianAbsErrMs*0.9, r.MedianAbsErrMs*1.1
		if got < lo || got > hi {
			t.Errorf("CDF median %.3f vs result median %.3f", got, r.MedianAbsErrMs)
		}
	}
}

// TestCompletionRejectsBadFraction pins the config validation.
func TestCompletionRejectsBadFraction(t *testing.T) {
	if _, err := Completion(CompletionConfig{Nodes: 16, BudgetFraction: 1.5}); err == nil {
		t.Error("BudgetFraction 1.5 accepted")
	}
	if _, err := Completion(CompletionConfig{Nodes: 16, BudgetFraction: -0.1}); err == nil {
		t.Error("negative BudgetFraction accepted")
	}
}
