package experiments

import (
	"ting/internal/coverage"
)

// Fig18Config parameterizes the coverage study (§5.3).
type Fig18Config struct {
	Days   int // default 60 (Feb 28 – Apr 28, 2015)
	Relays int // initial population; default 6400
	Seed   int64
}

// Fig18Result carries the daily series plus the rDNS classification and
// geographic coverage of the final snapshot.
type Fig18Result struct {
	Points  []coverage.HistoryPoint
	Classes coverage.ClassCounts
	// Countries is the number of countries with at least one relay
	// (paper: 77 in November 2014).
	Countries int
}

// Fig18 synthesizes the consensus history and classifies the relay
// population.
func Fig18(cfg Fig18Config) (*Fig18Result, error) {
	snaps := coverage.SynthesizeHistory(coverage.HistoryConfig{
		Days:          cfg.Days,
		InitialRelays: cfg.Relays,
		Seed:          cfg.Seed,
	})
	last := snaps[len(snaps)-1]
	names := make([]string, 0, len(last.Relays))
	for _, r := range last.Relays {
		names = append(names, r.RDNS)
	}
	return &Fig18Result{
		Points:    coverage.Summarize(snaps),
		Classes:   coverage.Count(names),
		Countries: last.Countries(),
	}, nil
}
