package experiments

import (
	"context"
	"math/rand"

	"ting/internal/geo"
	"ting/internal/stats"
)

// KingConfig parameterizes the comparison against King (Gummadi et al.,
// IMW 2002), the technique Ting is modeled on (§2, §4.2). King estimated
// the latency between two hosts as the latency between *recursive DNS
// servers near them* — servers that "may be much better connected or
// remote" (§5.3), which is why King's accuracy CDF skews left of 1 while
// Ting's is centered (§4.2 cites King's Figure 5).
type KingConfig struct {
	Nodes   int // testbed size; default 31
	Pairs   int // pairs compared; default 200
	Samples int // Ting samples per circuit; default 200
	// ResolverKm bounds how far each host's name server sits from it.
	// Default 300.
	ResolverKm float64
	Seed       int64
}

func (c *KingConfig) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 31
	}
	if c.Pairs == 0 {
		c.Pairs = 200
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
	if c.ResolverKm == 0 {
		c.ResolverKm = 300
	}
}

// KingResult holds both estimators' ratio-to-truth distributions.
type KingResult struct {
	TingRatios []float64
	KingRatios []float64
}

// TingWithin10 and KingWithin10 are the headline accuracies.
func (r *KingResult) TingWithin10() float64 { return stats.FractionWithin(r.TingRatios, 0.1) }

// KingWithin10 reports King's accuracy at the 10% band.
func (r *KingResult) KingWithin10() float64 { return stats.FractionWithin(r.KingRatios, 0.1) }

// KingMedianRatio exposes the skew: King's median sits below 1.
func (r *KingResult) KingMedianRatio() (float64, error) { return stats.Median(r.KingRatios) }

// KingComparison runs Ting and a King-style estimator over the same pairs
// of the testbed world and returns ratio-to-ground-truth distributions.
func KingComparison(cfg KingConfig) (*KingResult, error) {
	cfg.setDefaults()
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m, err := w.Measurer(cfg.Samples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	// Each host's resolver: displaced up to ResolverKm, and well connected
	// (datacenter access, little routing inflation) — the property that
	// biases King low.
	type resolver struct {
		coord    geo.Coord
		accessMs float64
		infl     float64
	}
	resolvers := make(map[string]resolver, len(w.Names))
	for _, name := range w.Names {
		c := w.Topo.Node(w.NodeOf[name]).Coord
		// ~1 degree ≈ 111 km; displace within the radius.
		degMax := cfg.ResolverKm / 111.0
		rc := geo.Coord{
			Lat: clampLat(c.Lat + (rng.Float64()*2-1)*degMax),
			Lon: c.Lon + (rng.Float64()*2-1)*degMax,
		}
		resolvers[name] = resolver{
			coord:    rc,
			accessMs: 0.2 + rng.Float64()*0.8,
			infl:     1 + 0.15 + rng.Float64()*0.35, // well-peered paths
		}
	}

	res := &KingResult{}
	for p := 0; p < cfg.Pairs; p++ {
		xi := rng.Intn(len(w.Names))
		yi := xi
		for yi == xi {
			yi = rng.Intn(len(w.Names))
		}
		x, y := w.Names[xi], w.Names[yi]
		truth, err := w.TrueRTT(x, y)
		if err != nil {
			return nil, err
		}

		meas, err := m.MeasurePair(context.Background(), x, y)
		if err != nil {
			return nil, err
		}
		res.TingRatios = append(res.TingRatios, meas.RTT/truth)

		rx, ry := resolvers[x], resolvers[y]
		king := geo.MinRTTMs(rx.coord, ry.coord)*((rx.infl+ry.infl)/2) +
			rx.accessMs + ry.accessMs + rng.ExpFloat64()*0.3
		res.KingRatios = append(res.KingRatios, king/truth)
	}
	return res, nil
}

func clampLat(v float64) float64 {
	if v > 89 {
		return 89
	}
	if v < -89 {
		return -89
	}
	return v
}
