package experiments

import (
	"context"
	"math/rand"

	"ting/internal/geo"
	"ting/internal/stats"
)

// Fig8Config parameterizes the latency-vs-distance study (§4.5): 10,000
// random live-network pairs measured with Ting, against great-circle
// distances from a geolocation database that (like Neustar's) contains
// some errors.
type Fig8Config struct {
	WorldNodes int     // live-network stand-in size; default 400
	Pairs      int     // default 10000
	Samples    int     // Ting samples per circuit; default 200
	GeoErrFrac float64 // erroneous geolocation entries; default 0.01
	Seed       int64
}

func (c *Fig8Config) setDefaults() {
	if c.WorldNodes == 0 {
		c.WorldNodes = 400
	}
	if c.Pairs == 0 {
		c.Pairs = 10000
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
	if c.GeoErrFrac == 0 {
		c.GeoErrFrac = 0.01
	}
}

// Fig8Point is one measured pair.
type Fig8Point struct {
	X, Y string
	// DistanceKm is computed from the geolocation DB (possibly erroneous).
	DistanceKm float64
	// RTTms is Ting's estimate.
	RTTms float64
	// GeoError marks pairs whose DB coordinates carry injected error.
	GeoError bool
}

// BelowLightSpeed reports whether the point sits under the (2/3)c line —
// impossible for honest data, diagnostic of geolocation error.
func (p Fig8Point) BelowLightSpeed() bool {
	return p.RTTms < geo.MinRTTMsForDistance(p.DistanceKm)
}

// HtraeFit approximates the fit line from the Htrae study of Halo gamers
// that Figure 8 plots for comparison. Htrae measured median latencies, so
// its line sits above Ting's minimum-latency fit.
var HtraeFit = stats.LinearFit{Slope: 0.021, Intercept: 45}

// Fig8Result is the scatter plus the linear fit to our own data.
type Fig8Result struct {
	Points []Fig8Point
	Fit    stats.LinearFit
}

// BelowLightSpeedStats counts impossible points and how many of them are
// explained by injected geolocation error (the paper: "almost all likely
// errors in the underlying geolocation database").
func (r *Fig8Result) BelowLightSpeedStats() (below, explained int) {
	for _, p := range r.Points {
		if p.BelowLightSpeed() {
			below++
			if p.GeoError {
				explained++
			}
		}
	}
	return below, explained
}

// Fig8 measures random pairs and relates RTT to great-circle distance.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg.setDefaults()
	w, err := NewWorld(cfg.WorldNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Geolocation DB over the public relays, with injected error.
	coords := make([]geo.Coord, len(w.Names))
	for i, name := range w.Names {
		coords[i] = w.Topo.Node(w.NodeOf[name]).Coord
	}
	db, err := geo.NewGeoDB(w.Names, coords, geo.GeoDBConfig{
		ErrorFraction: cfg.GeoErrFrac,
		Seed:          cfg.Seed + 5,
	})
	if err != nil {
		return nil, err
	}

	m, err := w.Measurer(cfg.Samples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	res := &Fig8Result{Points: make([]Fig8Point, 0, cfg.Pairs)}
	seen := make(map[[2]int]bool, cfg.Pairs)
	for len(res.Points) < cfg.Pairs {
		xi := rng.Intn(len(w.Names))
		yi := rng.Intn(len(w.Names))
		if xi == yi {
			continue
		}
		key := [2]int{min(xi, yi), max(xi, yi)}
		if seen[key] && len(w.Names)*(len(w.Names)-1)/2 > cfg.Pairs {
			continue
		}
		seen[key] = true
		x, y := w.Names[xi], w.Names[yi]
		meas, err := m.MeasurePair(context.Background(), x, y)
		if err != nil {
			return nil, err
		}
		cx, _ := db.Lookup(x)
		cy, _ := db.Lookup(y)
		res.Points = append(res.Points, Fig8Point{
			X: x, Y: y,
			DistanceKm: geo.DistanceKm(cx, cy),
			RTTms:      meas.RTT,
			GeoError:   db.Erroneous(x) || db.Erroneous(y),
		})
	}

	dists := make([]float64, len(res.Points))
	rtts := make([]float64, len(res.Points))
	for i, p := range res.Points {
		dists[i] = p.DistanceKm
		rtts[i] = p.RTTms
	}
	fit, err := stats.FitLine(dists, rtts)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	return res, nil
}

// Fig8 marginals: the paper plots CDFs of both axes in the margins.

// DistanceCDF returns the sorted distances.
func (r *Fig8Result) DistanceCDF() (*stats.CDF, error) {
	xs := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p.DistanceKm
	}
	return stats.NewCDF(xs)
}

// RTTCDF returns the sorted RTTs.
func (r *Fig8Result) RTTCDF() (*stats.CDF, error) {
	xs := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p.RTTms
	}
	return stats.NewCDF(xs)
}
