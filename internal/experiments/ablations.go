package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"ting/internal/deanon"
	"ting/internal/stats"
	"ting/internal/ting"
)

// The ablations quantify the design choices DESIGN.md calls out: why Ting
// aggregates samples with the minimum, why it refuses to mix ping with Tor
// paths (the §3.2 strawman), how accuracy scales with sample count, and
// what the µ term of Algorithm 1 buys.

// AblationConfig is shared by the ablation studies.
type AblationConfig struct {
	Nodes   int // testbed size; default 31
	Pairs   int // pairs measured; default 100
	Samples int // samples per circuit; default 200
	Seed    int64
}

func (c *AblationConfig) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 31
	}
	if c.Pairs == 0 {
		c.Pairs = 100
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
}

// AggregatorResult reports accuracy for one aggregation function.
type AggregatorResult struct {
	Name            string
	Within10        float64 // fraction of pairs within 10% of ground truth
	MedianAbsErrPct float64
}

// AblationAggregator compares min/median/mean aggregation of circuit
// samples. The minimum wins because forwarding delays are strictly
// additive noise (§3.3).
func AblationAggregator(cfg AblationConfig) ([]AggregatorResult, error) {
	cfg.setDefaults()
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	prober := w.Prober(cfg.Seed + 1)

	aggs := []struct {
		name string
		f    func([]float64) float64
	}{
		{"min", func(xs []float64) float64 { v, _ := stats.Min(xs); return v }},
		{"median", func(xs []float64) float64 { v, _ := stats.Median(xs); return v }},
		{"mean", func(xs []float64) float64 { v, _ := stats.Mean(xs); return v }},
	}
	ratios := make(map[string][]float64)

	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	for p := 0; p < cfg.Pairs; p++ {
		xi := rng.Intn(len(w.Names))
		yi := xi
		for yi == xi {
			yi = rng.Intn(len(w.Names))
		}
		x, y := w.Names[xi], w.Names[yi]
		full, err := prober.SampleCircuit(context.Background(), []string{w.W, x, y, w.Z}, cfg.Samples)
		if err != nil {
			return nil, err
		}
		cx, err := prober.SampleCircuit(context.Background(), []string{w.W, x}, cfg.Samples)
		if err != nil {
			return nil, err
		}
		cy, err := prober.SampleCircuit(context.Background(), []string{w.W, y}, cfg.Samples)
		if err != nil {
			return nil, err
		}
		truth, err := w.TrueRTT(x, y)
		if err != nil {
			return nil, err
		}
		for _, agg := range aggs {
			est := ting.Estimate(agg.f(full), agg.f(cx), agg.f(cy))
			ratios[agg.name] = append(ratios[agg.name], est/truth)
		}
	}

	var out []AggregatorResult
	for _, agg := range aggs {
		rs := ratios[agg.name]
		errs := make([]float64, len(rs))
		for i, r := range rs {
			e := (r - 1) * 100
			if e < 0 {
				e = -e
			}
			errs[i] = e
		}
		med, err := stats.Median(errs)
		if err != nil {
			return nil, err
		}
		out = append(out, AggregatorResult{
			Name:            agg.name,
			Within10:        stats.FractionWithin(rs, 0.1),
			MedianAbsErrPct: med,
		})
	}
	return out, nil
}

// StrawmanResult compares Ting against the §3.2 strawman that subtracts
// ping RTTs from the circuit RTT.
type StrawmanResult struct {
	TingWithin10     float64
	StrawmanWithin10 float64
	// BiasedStrawmanWithin10 restricts the strawman to pairs touching a
	// protocol-biased network — where mixing ping and Tor breaks down —
	// and CleanStrawmanWithin10 to pairs touching none.
	BiasedStrawmanWithin10 float64
	CleanStrawmanWithin10  float64
}

// AblationStrawman runs both estimators over the same pairs.
func AblationStrawman(cfg AblationConfig) (*StrawmanResult, error) {
	cfg.setDefaults()
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m, err := w.Measurer(cfg.Samples, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	prober := w.Prober(cfg.Seed + 2)

	var tingRatios, strawRatios, biasedStraw, cleanStraw []float64
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	for p := 0; p < cfg.Pairs; p++ {
		xi := rng.Intn(len(w.Names))
		yi := xi
		for yi == xi {
			yi = rng.Intn(len(w.Names))
		}
		x, y := w.Names[xi], w.Names[yi]
		truth, err := w.TrueRTT(x, y)
		if err != nil {
			return nil, err
		}

		meas, err := m.MeasurePair(context.Background(), x, y)
		if err != nil {
			return nil, err
		}
		tingRatios = append(tingRatios, meas.RTT/truth)

		// Strawman (Figure 1): full circuit minus min-of-pings to each
		// endpoint from the measurement host.
		full, err := prober.SampleCircuit(context.Background(), []string{w.W, x, y, w.Z}, cfg.Samples)
		if err != nil {
			return nil, err
		}
		minFull, err := stats.Min(full)
		if err != nil {
			return nil, err
		}
		pingX, err := minPing(prober, x, 100)
		if err != nil {
			return nil, err
		}
		pingY, err := minPing(prober, y, 100)
		if err != nil {
			return nil, err
		}
		straw := minFull - pingX - pingY
		strawRatios = append(strawRatios, straw/truth)
		if w.Topo.Node(w.NodeOf[x]).Biased || w.Topo.Node(w.NodeOf[y]).Biased {
			biasedStraw = append(biasedStraw, straw/truth)
		} else {
			cleanStraw = append(cleanStraw, straw/truth)
		}
	}
	return &StrawmanResult{
		TingWithin10:           stats.FractionWithin(tingRatios, 0.1),
		StrawmanWithin10:       stats.FractionWithin(strawRatios, 0.1),
		BiasedStrawmanWithin10: stats.FractionWithin(biasedStraw, 0.1),
		CleanStrawmanWithin10:  stats.FractionWithin(cleanStraw, 0.1),
	}, nil
}

func minPing(p *ting.ModelProber, target string, n int) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		v, err := p.Ping(target)
		if err != nil {
			return 0, err
		}
		if i == 0 || v < best {
			best = v
		}
	}
	return best, nil
}

// SamplesSweepPoint is accuracy at one sample count.
type SamplesSweepPoint struct {
	Samples  int
	Within10 float64
	Within5  float64
}

// AblationSamples sweeps the per-circuit sample count (the §4.4
// speed/accuracy trade-off).
func AblationSamples(cfg AblationConfig, counts []int) ([]SamplesSweepPoint, error) {
	cfg.setDefaults()
	if len(counts) == 0 {
		counts = []int{10, 50, 100, 200, 1000}
	}
	sort.Ints(counts)
	w, err := NewTestbedWorld(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	type pair struct{ x, y string }
	pairs := make([]pair, cfg.Pairs)
	for p := range pairs {
		xi := rng.Intn(len(w.Names))
		yi := xi
		for yi == xi {
			yi = rng.Intn(len(w.Names))
		}
		pairs[p] = pair{w.Names[xi], w.Names[yi]}
	}

	var out []SamplesSweepPoint
	for ci, n := range counts {
		m, err := w.Measurer(n, cfg.Seed+10+int64(ci))
		if err != nil {
			return nil, err
		}
		var ratios []float64
		for _, p := range pairs {
			meas, err := m.MeasurePair(context.Background(), p.x, p.y)
			if err != nil {
				return nil, err
			}
			truth, err := w.TrueRTT(p.x, p.y)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, meas.RTT/truth)
		}
		out = append(out, SamplesSweepPoint{
			Samples:  n,
			Within10: stats.FractionWithin(ratios, 0.1),
			Within5:  stats.FractionWithin(ratios, 0.05),
		})
	}
	return out, nil
}

// MuAblationResult compares Algorithm 1 with and without the µ term.
type MuAblationResult struct {
	WithMu    float64 // median fraction probed
	WithoutMu float64
}

// AblationMu runs the informed strategy with and without µ over the
// Figure 11 matrix.
func AblationMu(f11 *Fig11Result, trials int, seed int64) (*MuAblationResult, error) {
	if trials <= 0 {
		trials = 500
	}
	sim := &deanon.Simulation{
		Matrix: f11.Matrix,
		Strategies: []deanon.Strategy{
			&deanon.Informed{UseMu: true},
			&deanon.Informed{UseMu: false},
		},
		Seed: seed,
	}
	ts, err := sim.Run(trials)
	if err != nil {
		return nil, err
	}
	with, err := deanon.MedianFracTested(ts, "informed")
	if err != nil {
		return nil, err
	}
	without, err := deanon.MedianFracTested(ts, "informed-no-mu")
	if err != nil {
		return nil, err
	}
	return &MuAblationResult{WithMu: with, WithoutMu: without}, nil
}

// Headlines aggregates the paper's headline numbers from already-run
// figures, for EXPERIMENTS.md.
type Headlines struct {
	Fig3Within10    float64 // paper: 0.91
	Fig3ErrOver30   float64 // paper: < 0.02
	Spearman        float64 // paper: 0.997
	DeanonSpeedup   float64 // paper: 1.5×
	TIVFraction     float64 // paper: 0.69
	TIVMedianSaving float64 // paper: 0.075
	ResidentialFrac float64 // paper: 0.61
}

// ComputeHeadlines pulls the numbers together.
func ComputeHeadlines(f3 *Fig3Result, f12 *Fig12Result, f14 *Fig14Result, f18 *Fig18Result) (*Headlines, error) {
	sp, err := f3.Spearman()
	if err != nil {
		return nil, err
	}
	speedup, err := f12.Speedup()
	if err != nil {
		return nil, err
	}
	med, err := stats.Median(f14.Summary.Savings)
	if err != nil {
		return nil, err
	}
	h := &Headlines{
		Fig3Within10:    f3.Within(0.1),
		Fig3ErrOver30:   1 - f3.Within(0.3),
		Spearman:        sp,
		DeanonSpeedup:   speedup,
		TIVFraction:     f14.Summary.FractionWithTIV(),
		TIVMedianSaving: med,
		ResidentialFrac: f18.Classes.ResidentialFractionOfNamed(),
	}
	return h, nil
}

// String renders the headline comparison.
func (h *Headlines) String() string {
	return fmt.Sprintf(
		"within10=%.3f (paper 0.91) errOver30=%.3f (paper <0.02) spearman=%.4f (paper 0.997) "+
			"speedup=%.2fx (paper 1.5x) tivFrac=%.3f (paper 0.69) tivSaving=%.3f (paper 0.075) "+
			"residential=%.3f (paper 0.61)",
		h.Fig3Within10, h.Fig3ErrOver30, h.Spearman, h.DeanonSpeedup,
		h.TIVFraction, h.TIVMedianSaving, h.ResidentialFrac)
}
