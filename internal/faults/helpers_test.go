package faults

import (
	"ting/internal/cell"
	"ting/internal/link"
)

// sendCell and recvCell adapt the pointer-based Link API to the by-value
// style the tests are written in.
func sendCell(lk link.Link, c cell.Cell) error { return lk.Send(&c) }

func recvCell(lk link.Link) (cell.Cell, error) {
	var c cell.Cell
	err := lk.Recv(&c)
	return c, err
}
