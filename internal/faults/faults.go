// Package faults is the deterministic fault-injection substrate for the
// measurement pipeline. The paper's deployability argument (§4.5, §4.6)
// rests on surviving the live Tor network's churn — relays crash
// mid-campaign, links stall and reset — but the loopback overlay is
// perfectly reliable, so failures must be injected. A Plan describes, under
// a single seed, which links misbehave (per-cell drop/stall/reset
// probabilities) and which relays crash or flap on a schedule; the link and
// dialer wrappers in this package apply it underneath the latency
// injectors, and tornet applies the relay schedules to running overlays.
//
// Determinism is the point: the same Plan seed yields the same per-link
// fault decisions in the same order, so a failing campaign can be replayed
// exactly — the substrate every robustness test builds on.
package faults

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"ting/internal/telemetry"
)

// LinkFaults describes how one directed link misbehaves. The zero value is
// a perfectly healthy link.
type LinkFaults struct {
	// DropProb is the probability a sent cell is silently discarded.
	DropProb float64
	// StallProb is the probability a sent cell is delayed by Stall before
	// transmission (head-of-line: later cells wait behind it, as they would
	// behind a stalled TCP segment).
	StallProb float64
	// Stall is the extra delay a stalled cell experiences.
	Stall time.Duration
	// ResetProb is the probability a send tears the link down instead of
	// transmitting; the sender gets an error and both ends see closure.
	ResetProb float64
	// ResetAfter, if positive, deterministically resets the link on the
	// Nth send, independent of probabilities.
	ResetAfter int
	// DialFailProb is the probability a dial to this link's target is
	// refused outright.
	DialFailProb float64
}

// active reports whether any fault is configured.
func (f LinkFaults) active() bool {
	return f.DropProb > 0 || f.StallProb > 0 || f.ResetProb > 0 ||
		f.ResetAfter > 0 || f.DialFailProb > 0
}

// RelaySchedule describes when a relay fails or churns. The zero value
// never fails.
type RelaySchedule struct {
	// CrashAfter, if positive, kills the relay that long after Plan.Begin.
	// The crash is permanent.
	CrashAfter time.Duration
	// FlapPeriod and FlapDown model a flapping relay: each FlapPeriod-long
	// cycle starts with FlapDown of downtime during which dials to the
	// relay fail and its links reset on use. Both must be positive to take
	// effect, with FlapDown < FlapPeriod.
	FlapPeriod time.Duration
	FlapDown   time.Duration
	// JoinAfter, if positive, holds the relay out of the initial overlay
	// and consensus; it starts and publishes that long after Plan.Begin —
	// the scheduled half of consensus churn.
	JoinAfter time.Duration
	// DrainAfter, if positive, gracefully drains the relay that long after
	// Plan.Begin: it refuses new circuits, DESTROYs live ones, leaves the
	// consensus, then closes. Unlike CrashAfter, peers see an orderly
	// departure.
	DrainAfter time.Duration
}

// Wildcard matches any endpoint in a link fault rule.
const Wildcard = "*"

// Plan is a seeded fault schedule for a whole overlay.
type Plan struct {
	// Seed drives every probabilistic decision; per-link RNGs are derived
	// from it so decisions are independent across links but reproducible.
	Seed int64

	// Default applies to links with no specific rule.
	Default LinkFaults

	mu       sync.Mutex
	links    map[[2]string]LinkFaults
	relays   map[string]RelaySchedule
	crashed  map[string]bool
	dialRngs map[[2]string]*rand.Rand
	started  time.Time
	now      func() time.Time

	tm faultMetrics
}

// faultMetrics counts injected failures as they happen, so a scan's debug
// snapshot shows not just that pairs failed but why. Zero value (all nil
// counters) is the disabled state.
type faultMetrics struct {
	drops       *telemetry.Counter
	stalls      *telemetry.Counter
	resets      *telemetry.Counter
	dialRefused *telemetry.Counter
	crashes     *telemetry.Counter
}

// NewPlan creates an empty plan under the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		Seed:    seed,
		links:   make(map[[2]string]LinkFaults),
		relays:  make(map[string]RelaySchedule),
		crashed: make(map[string]bool),
		now:     time.Now,
	}
}

// SetTelemetry points the plan's fault counters (faults.drops,
// faults.stalls, faults.resets, faults.dial_refused, faults.crashes) at a
// registry. A nil registry disables them. Call before the overlay starts
// sending.
func (p *Plan) SetTelemetry(reg *telemetry.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tm = faultMetrics{
		drops:       reg.Counter("faults.drops"),
		stalls:      reg.Counter("faults.stalls"),
		resets:      reg.Counter("faults.resets"),
		dialRefused: reg.Counter("faults.dial_refused"),
		crashes:     reg.Counter("faults.crashes"),
	}
}

// metrics returns the current counters under the plan lock.
func (p *Plan) metrics() faultMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tm
}

// SetLink installs a fault rule for the directed link from → to. Either
// endpoint may be Wildcard; the most specific rule wins on lookup
// ((from,to), then (*,to), then (from,*), then Default).
func (p *Plan) SetLink(from, to string, f LinkFaults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links[[2]string{from, to}] = f
}

// SetRelay installs a crash/flap schedule for a relay.
func (p *Plan) SetRelay(name string, rs RelaySchedule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.relays[name] = rs
}

// Relays returns the names with a non-zero schedule, for wiring timers.
func (p *Plan) Relays() map[string]RelaySchedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]RelaySchedule, len(p.relays))
	for k, v := range p.relays {
		out[k] = v
	}
	return out
}

// LinkFor resolves the fault rule for the directed link from → to.
func (p *Plan) LinkFor(from, to string) LinkFaults {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range [][2]string{{from, to}, {Wildcard, to}, {from, Wildcard}} {
		if f, ok := p.links[key]; ok {
			return f
		}
	}
	return p.Default
}

// Begin starts the plan's clock; crash and flap schedules are relative to
// it. Calling Begin again restarts the clock.
func (p *Plan) Begin() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.now == nil {
		p.now = time.Now
	}
	p.started = p.now()
}

// Crash marks a relay down immediately and permanently — the manual,
// fully deterministic crash used by tests and by tornet's crash timers.
func (p *Plan) Crash(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed == nil {
		p.crashed = make(map[string]bool)
	}
	p.crashed[name] = true
	p.tm.crashes.Inc()
}

// Down reports whether the relay is currently failed: crashed manually,
// past its CrashAfter, or inside a flap downtime window.
func (p *Plan) Down(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed[name] {
		return true
	}
	rs, ok := p.relays[name]
	if !ok || p.started.IsZero() {
		return false
	}
	elapsed := p.now().Sub(p.started)
	if rs.CrashAfter > 0 && elapsed >= rs.CrashAfter {
		return true
	}
	if rs.FlapPeriod > 0 && rs.FlapDown > 0 && rs.FlapDown < rs.FlapPeriod {
		if elapsed%rs.FlapPeriod < rs.FlapDown {
			return true
		}
	}
	return false
}

// rngFor derives the seeded RNG for one directed link. The derivation
// hashes the endpoints so every link gets an independent but reproducible
// stream.
func (p *Plan) rngFor(from, to string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64())))
}
