package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ting/internal/cell"
	"ting/internal/link"
)

// ErrInjectedReset marks a link torn down by fault injection; callers can
// distinguish injected failures from organic ones with errors.Is.
var ErrInjectedReset = errors.New("faults: injected link reset")

// ErrDialRefused marks a dial refused by fault injection.
var ErrDialRefused = errors.New("faults: injected dial failure")

// WrapLink applies the plan's fault rule for from → to onto a link. A link
// with no active rule on a plan with no relay schedules is returned
// unchanged. Faults act on the send path: drops discard the cell after
// reporting success (the sender cannot tell, exactly like a lost datagram
// under reliable-looking buffering), stalls delay it, resets close the link
// so both peers observe failure. While either endpoint relay is Down, every
// send resets.
func (p *Plan) WrapLink(inner link.Link, from, to string) link.Link {
	f := p.LinkFor(from, to)
	if !f.active() && !p.hasRelayFaults() {
		return inner
	}
	return &faultLink{
		inner: inner,
		plan:  p,
		from:  from,
		to:    to,
		f:     f,
		rng:   p.rngFor(from, to),
	}
}

func (p *Plan) hasRelayFaults() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.relays) > 0 || len(p.crashed) > 0
}

type faultLink struct {
	inner link.Link
	plan  *Plan
	from  string
	to    string
	f     LinkFaults

	mu    sync.Mutex // guards rng and sends
	rng   *rand.Rand
	sends int
}

func (l *faultLink) Send(c *cell.Cell) error {
	if l.plan.Down(l.to) || l.plan.Down(l.from) {
		l.plan.metrics().resets.Inc()
		l.inner.Close()
		return fmt.Errorf("faults: relay down on link %s->%s: %w", l.from, l.to, ErrInjectedReset)
	}

	l.mu.Lock()
	l.sends++
	reset := l.f.ResetAfter > 0 && l.sends >= l.f.ResetAfter
	var drop, stall bool
	if !reset && (l.f.DropProb > 0 || l.f.StallProb > 0 || l.f.ResetProb > 0) {
		switch u := l.rng.Float64(); {
		case u < l.f.ResetProb:
			reset = true
		case u < l.f.ResetProb+l.f.DropProb:
			drop = true
		case u < l.f.ResetProb+l.f.DropProb+l.f.StallProb:
			stall = true
		}
	}
	l.mu.Unlock()

	switch {
	case reset:
		l.plan.metrics().resets.Inc()
		l.inner.Close()
		return fmt.Errorf("faults: link %s->%s: %w", l.from, l.to, ErrInjectedReset)
	case drop:
		l.plan.metrics().drops.Inc()
		return nil
	case stall && l.f.Stall > 0:
		l.plan.metrics().stalls.Inc()
		time.Sleep(l.f.Stall)
	}
	return l.inner.Send(c)
}

func (l *faultLink) Recv(c *cell.Cell) error { return l.inner.Recv(c) }
func (l *faultLink) Close() error            { return l.inner.Close() }
func (l *faultLink) RemoteAddr() string      { return l.inner.RemoteAddr() }

// RecvBatch passes batched receives through when the inner link supports
// them; faults act on the send path only.
func (l *faultLink) RecvBatch(cs []cell.Cell) (int, error) {
	if br, ok := l.inner.(link.BatchRecver); ok {
		return br.RecvBatch(cs)
	}
	if len(cs) == 0 {
		return 0, nil
	}
	if err := l.inner.Recv(&cs[0]); err != nil {
		return 0, err
	}
	return 1, nil
}

// WrapDialer applies the plan to every link a dialer opens. from names the
// dialing node; nameOf maps dialed addresses to relay names for rule lookup
// (nil means addresses already are names, as on a PipeNet).
func (p *Plan) WrapDialer(inner link.Dialer, from string, nameOf func(addr string) string) link.Dialer {
	return link.DialerFunc(func(addr string) (link.Link, error) {
		to := addr
		if nameOf != nil {
			to = nameOf(addr)
		}
		if p.Down(to) {
			p.metrics().dialRefused.Inc()
			return nil, fmt.Errorf("faults: relay %s down: %w", to, ErrDialRefused)
		}
		if f := p.LinkFor(from, to); f.DialFailProb > 0 {
			if p.dialRoll(from, to) < f.DialFailProb {
				p.metrics().dialRefused.Inc()
				return nil, fmt.Errorf("faults: dial %s->%s: %w", from, to, ErrDialRefused)
			}
		}
		lk, err := inner.Dial(addr)
		if err != nil {
			return nil, err
		}
		return p.WrapLink(lk, from, to), nil
	})
}

// dialRoll draws from the shared per-directed-edge dial RNG, so repeated
// dials on the same edge consume one reproducible stream.
func (p *Plan) dialRoll(from, to string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dialRngs == nil {
		p.dialRngs = make(map[[2]string]*rand.Rand)
	}
	key := [2]string{from, to}
	r, ok := p.dialRngs[key]
	if !ok {
		r = p.rngFor(from+"/dial", to)
		p.dialRngs[key] = r
	}
	return r.Float64()
}
