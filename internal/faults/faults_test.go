package faults

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ting/internal/cell"
	"ting/internal/link"
)

func testCell() cell.Cell {
	var c cell.Cell
	c.Circ = 7
	c.Cmd = cell.Padding
	return c
}

func TestHealthyPlanPassesThrough(t *testing.T) {
	p := NewPlan(1)
	a, b := link.Pipe(4, "a", "b")
	wrapped := p.WrapLink(a, "a", "b")
	if wrapped != a {
		t.Fatal("healthy plan should not wrap the link")
	}
	if err := sendCell(wrapped, testCell()); err != nil {
		t.Fatal(err)
	}
	if _, err := recvCell(b); err != nil {
		t.Fatal(err)
	}
}

func TestDropLosesCellsSilently(t *testing.T) {
	p := NewPlan(2)
	p.SetLink("a", "b", LinkFaults{DropProb: 1})
	a, b := link.Pipe(4, "a", "b")
	w := p.WrapLink(a, "a", "b")
	if err := sendCell(w, testCell()); err != nil {
		t.Fatalf("dropped send must look successful, got %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		recvCell(b)
	}()
	select {
	case <-done:
		t.Fatal("cell arrived despite DropProb=1")
	case <-time.After(20 * time.Millisecond):
	}
	a.Close()
	b.Close()
	<-done
}

func TestResetAfterDeterministic(t *testing.T) {
	p := NewPlan(3)
	p.SetLink("a", "b", LinkFaults{ResetAfter: 3})
	a, b := link.Pipe(8, "a", "b")
	w := p.WrapLink(a, "a", "b")
	for i := 0; i < 2; i++ {
		if err := sendCell(w, testCell()); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	err := sendCell(w, testCell())
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("third send: %v, want injected reset", err)
	}
	// Both ends observe the closure (after draining what arrived).
	for i := 0; i < 2; i++ {
		if _, err := recvCell(b); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if _, err := recvCell(b); err == nil {
		t.Fatal("peer did not observe reset")
	}
}

func TestStallDelaysCell(t *testing.T) {
	p := NewPlan(4)
	p.SetLink("a", "b", LinkFaults{StallProb: 1, Stall: 30 * time.Millisecond})
	a, b := link.Pipe(4, "a", "b")
	w := p.WrapLink(a, "a", "b")
	start := time.Now()
	if err := sendCell(w, testCell()); err != nil {
		t.Fatal(err)
	}
	if _, err := recvCell(b); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("stalled cell arrived after %v, want ≥ 30ms", d)
	}
}

func TestSeededFaultSequenceReproducible(t *testing.T) {
	const sends = 50
	run := func() []bool {
		p := NewPlan(99)
		p.SetLink("a", "b", LinkFaults{DropProb: 0.5})
		a, b := link.Pipe(sends, "a", "b")
		w := p.WrapLink(a, "a", "b")
		for i := 0; i < sends; i++ {
			c := testCell()
			c.Circ = cell.CircID(i + 1)
			if err := sendCell(w, c); err != nil {
				t.Fatal(err)
			}
		}
		a.Close()
		// Drain delivered cells; their Circ tags say which sends survived.
		dropped := make([]bool, sends)
		for i := range dropped {
			dropped[i] = true
		}
		for {
			c, err := recvCell(b)
			if err != nil {
				break
			}
			dropped[int(c.Circ)-1] = false
		}
		b.Close()
		return dropped
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("fault sequence diverged at send %d under the same seed", i)
		}
	}
	// Sanity: both outcomes occur.
	var drops int
	for _, d := range x {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == len(x) {
		t.Errorf("degenerate drop pattern: %d/%d", drops, len(x))
	}
}

func TestWrapDialerRefusesDownRelay(t *testing.T) {
	pn := link.NewPipeNet()
	if _, err := pn.Listen("r0"); err != nil {
		t.Fatal(err)
	}
	p := NewPlan(5)
	p.Crash("r0")
	d := p.WrapDialer(pn, "host", nil)
	if _, err := d.Dial("r0"); !errors.Is(err, ErrDialRefused) {
		t.Fatalf("dial to crashed relay: %v, want refusal", err)
	}
}

func TestWrapDialerDialFailProb(t *testing.T) {
	pn := link.NewPipeNet()
	if _, err := pn.Listen("r0"); err != nil {
		t.Fatal(err)
	}
	p := NewPlan(6)
	p.SetLink(Wildcard, "r0", LinkFaults{DialFailProb: 1})
	d := p.WrapDialer(pn, "host", nil)
	if _, err := d.Dial("r0"); !errors.Is(err, ErrDialRefused) {
		t.Fatalf("dial: %v, want injected dial failure", err)
	}
	// A rule for a different relay does not leak.
	if _, err := pn.Listen("r1"); err != nil {
		t.Fatal(err)
	}
	lk, err := d.Dial("r1")
	if err != nil {
		t.Fatalf("unfaulted dial failed: %v", err)
	}
	lk.Close()
}

func TestRelayScheduleCrashAfterAndFlap(t *testing.T) {
	p := NewPlan(7)
	p.SetRelay("dead", RelaySchedule{CrashAfter: time.Millisecond})
	p.SetRelay("flappy", RelaySchedule{FlapPeriod: 40 * time.Millisecond, FlapDown: 20 * time.Millisecond})
	base := time.Unix(0, 0)
	clock := base
	var mu sync.Mutex
	p.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	if p.Down("dead") || p.Down("flappy") {
		t.Fatal("relays down before Begin")
	}
	p.Begin()
	if !p.Down("flappy") {
		t.Error("flappy should start a cycle down")
	}
	advance(25 * time.Millisecond)
	if !p.Down("dead") {
		t.Error("dead should be crashed after CrashAfter")
	}
	if p.Down("flappy") {
		t.Error("flappy should be up at 25ms into a 40ms cycle")
	}
	advance(20 * time.Millisecond) // 45ms: next cycle's down window
	if !p.Down("flappy") {
		t.Error("flappy should be down at start of second cycle")
	}
	if p.Down("healthy") {
		t.Error("unscheduled relay reported down")
	}
}

func TestDownRelayResetsExistingLinks(t *testing.T) {
	p := NewPlan(8)
	p.SetRelay("b", RelaySchedule{CrashAfter: time.Hour}) // schedule exists → links wrapped
	a, bHalf := link.Pipe(4, "a", "b")
	defer bHalf.Close()
	w := p.WrapLink(a, "a", "b")
	if w == a {
		t.Fatal("link with a scheduled peer must be wrapped")
	}
	if err := sendCell(w, testCell()); err != nil {
		t.Fatal(err)
	}
	p.Crash("b")
	if err := sendCell(w, testCell()); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("send to crashed relay: %v, want reset", err)
	}
}
