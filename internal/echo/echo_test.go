package echo

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestHandleEchoes(t *testing.T) {
	a, b := net.Pipe()
	go Handle(b)
	defer a.Close()
	msg := []byte("hello echo")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello echo" {
		t.Errorf("echoed %q", buf)
	}
}

func TestServerOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln)
	go srv.Serve()
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	c := NewClient(conn)
	rtt, err := c.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > 2*time.Second {
		t.Errorf("loopback RTT = %v", rtt)
	}
}

func TestProbeN(t *testing.T) {
	a, b := net.Pipe()
	go Handle(b)
	defer a.Close()
	c := NewClient(a)
	rtts, err := c.ProbeN(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 10 {
		t.Fatalf("got %d rtts", len(rtts))
	}
	for i, r := range rtts {
		if r <= 0 {
			t.Errorf("rtt[%d] = %v", i, r)
		}
	}
}

func TestMinRTT(t *testing.T) {
	a, b := net.Pipe()
	go Handle(b)
	defer a.Close()
	c := NewClient(a)
	min, err := c.MinRTT(20)
	if err != nil {
		t.Fatal(err)
	}
	rtts, err := c.ProbeN(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rtts {
		_ = r
	}
	if min <= 0 {
		t.Errorf("MinRTT = %v", min)
	}
	if _, err := c.MinRTT(0); err == nil {
		t.Error("MinRTT(0) should fail")
	}
}

func TestProbeSequenceMismatch(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	// A "server" that answers with the wrong sequence number.
	go func() {
		buf := make([]byte, ProbeSize)
		if _, err := io.ReadFull(b, buf); err != nil {
			return
		}
		buf[7] ^= 0xFF
		b.Write(buf)
	}()
	c := NewClient(a)
	if _, err := c.Probe(); err == nil {
		t.Error("mismatched sequence should error")
	}
}

func TestProbeOnClosedConn(t *testing.T) {
	a, b := net.Pipe()
	b.Close()
	c := NewClient(a)
	if _, err := c.Probe(); err == nil {
		t.Error("probe over dead conn should fail")
	}
}
