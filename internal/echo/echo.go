// Package echo implements the measurement endpoints of §3.1: "an end-to-end
// echo client and server to allow us to collect RTT measurements through
// Tor circuits. While similar in spirit to ping … our application operates
// over TCP, and can thus be used over Tor."
//
// The server echoes every byte back. The client writes fixed-size probes
// carrying a sequence number and times the round trip. Everything works
// over any io.ReadWriter, so the same client runs over a raw connection or
// over a circuit-attached stream.
package echo

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// ProbeSize is the size of one echo probe: an 8-byte sequence number plus
// an 8-byte client timestamp (opaque to the server).
const ProbeSize = 16

// Handle echoes conn back to itself until EOF. It is the entire server
// logic — "an extremely minimal TCP-based echo server" (§4.1).
func Handle(conn io.ReadWriteCloser) {
	defer conn.Close()
	_, _ = io.Copy(conn, conn)
}

// Server accepts and echoes connections.
type Server struct {
	ln net.Listener
}

// NewServer wraps a listener.
func NewServer(ln net.Listener) *Server { return &Server{ln: ln} }

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve echoes until the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		go Handle(conn)
	}
}

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

// Client sends echo probes over rw and measures round-trip times.
type Client struct {
	rw  io.ReadWriter
	seq uint64
	out [ProbeSize]byte
	in  [ProbeSize]byte
}

// NewClient creates an echo client over rw.
func NewClient(rw io.ReadWriter) *Client { return &Client{rw: rw} }

// Probe sends one probe and returns its round-trip time.
func (c *Client) Probe() (time.Duration, error) {
	c.seq++
	binary.BigEndian.PutUint64(c.out[0:8], c.seq)
	start := time.Now()
	binary.BigEndian.PutUint64(c.out[8:16], uint64(start.UnixNano()))
	if _, err := c.rw.Write(c.out[:]); err != nil {
		return 0, fmt.Errorf("echo: write probe: %w", err)
	}
	if _, err := io.ReadFull(c.rw, c.in[:]); err != nil {
		return 0, fmt.Errorf("echo: read probe: %w", err)
	}
	rtt := time.Since(start)
	if got := binary.BigEndian.Uint64(c.in[0:8]); got != c.seq {
		return 0, fmt.Errorf("echo: probe sequence %d, want %d", got, c.seq)
	}
	return rtt, nil
}

// ProbeN sends n probes back to back and returns every RTT.
func (c *Client) ProbeN(n int) ([]time.Duration, error) {
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		rtt, err := c.Probe()
		if err != nil {
			return out, err
		}
		out = append(out, rtt)
	}
	return out, nil
}

// MinRTT sends n probes and returns the smallest RTT — the aggregation Ting
// uses everywhere, since forwarding delays are strictly additive noise
// (§3.3).
func (c *Client) MinRTT(n int) (time.Duration, error) {
	if n <= 0 {
		return 0, fmt.Errorf("echo: need at least one probe")
	}
	rtts, err := c.ProbeN(n)
	if err != nil {
		return 0, err
	}
	min := rtts[0]
	for _, r := range rtts[1:] {
		if r < min {
			min = r
		}
	}
	return min, nil
}
