package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsNoOp pins the disabled mode: a nil registry hands out
// nil metrics whose methods do nothing, and snapshots read empty.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("x")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("x")
	h.Observe(3.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram accumulated")
	}
	r.Trace().Record("kind", "detail", 1)
	if r.Trace().Total() != 0 || r.Trace().Events() != nil {
		t.Error("nil trace accumulated")
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Error("nil-registry snapshot has nil maps")
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil-registry snapshot not empty: %+v", s)
	}
}

// TestRegistryReturnsSameMetric pins once-per-name registration: lookups
// by the same name share one underlying metric.
func TestRegistryReturnsSameMetric(t *testing.T) {
	r := New()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 2 {
		t.Errorf("counter a = %d, want 2", got)
	}
	r.Gauge("g").Set(5)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Errorf("gauge g = %d, want 5", got)
	}
	r.Histogram("h").Observe(1)
	if got := r.Histogram("h").Count(); got != 1 {
		t.Errorf("histogram h count = %d, want 1", got)
	}
	// Bounds are fixed at creation; a second lookup with different bounds
	// must not reset the histogram.
	if h := r.HistogramBuckets("h", []float64{1000}); h.Count() != 1 {
		t.Error("HistogramBuckets with new bounds replaced an existing histogram")
	}
}

// TestRegistryConcurrent is the -race test: metric creation, updates, and
// snapshots all race against each other and must stay consistent.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("shared").Inc()
				r.Gauge("busy").Add(1)
				r.Histogram("rtt").Observe(float64(j % 50))
				r.Trace().Record("ev", "x-y", float64(j))
				r.Gauge("busy").Add(-1)
			}
		}()
	}
	// Snapshot continuously while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := r.Snapshot()
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	want := int64(goroutines * perG)
	if got := r.Counter("shared").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("busy").Value(); got != 0 {
		t.Errorf("gauge did not return to 0: %d", got)
	}
	if got := r.Histogram("rtt").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := r.Trace().Total(); got != want {
		t.Errorf("trace total = %d, want %d", got, want)
	}
}

// TestHistogramQuantiles checks the interpolation math on a distribution
// engineered to land exactly on bucket edges: values 1..100 against decade
// bounds put ten observations in each bucket.
func TestHistogramQuantiles(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50},
		{0.9, 90},
		{0.25, 25},
		{1, 100},
		{0, 0}, // rank 0 interpolates to the first bucket's floor
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %v, want 5050", h.Sum())
	}
}

// TestHistogramOverflowClampsToMax: observations beyond the last bound go
// in the overflow bucket, and high quantiles clamp to the observed max
// rather than inventing an infinite bound.
func TestHistogramOverflowClampsToMax(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(1e6)
	if got := h.Quantile(1); got != 1e6 {
		t.Errorf("Quantile(1) = %v, want observed max 1e6", got)
	}
	s := h.snapshot()
	if s.Min != 5 || s.Max != 1e6 || s.Count != 2 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHistogramEmptyAndNaN(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(nan())
	if h.Count() != 0 {
		t.Error("NaN observation counted")
	}
	s := h.snapshot()
	if s != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v, want zero value", s)
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestSnapshotGolden pins the exposition schema byte-for-byte. If this
// test breaks, every dashboard and script parsing /metrics.json breaks
// with it — change the golden string only for a deliberate schema change.
func TestSnapshotGolden(t *testing.T) {
	r := New()
	r.Counter("ting.pairs_measured").Add(3)
	r.Counter("ting.retries").Add(1)
	r.Gauge("ting.scanner_active_workers").Set(2)
	h := r.HistogramBuckets("ting.pair_rtt_ms", []float64{50, 100})
	h.Observe(25)
	h.Observe(75)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "schema": 1,
  "counters": {
    "ting.pairs_measured": 3,
    "ting.retries": 1
  },
  "gauges": {
    "ting.scanner_active_workers": 2
  },
  "histograms": {
    "ting.pair_rtt_ms": {
      "count": 2,
      "sum": 100,
      "min": 25,
      "max": 75,
      "p50": 50,
      "p90": 90,
      "p99": 99
    }
  }
}
`
	if got := buf.String(); got != golden {
		t.Errorf("snapshot JSON drifted from golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	var text bytes.Buffer
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	wantText := "counter ting.pairs_measured 3\n" +
		"counter ting.retries 1\n" +
		"gauge ting.scanner_active_workers 2\n" +
		"histogram ting.pair_rtt_ms count=2 sum=100 min=25 max=75 p50=50 p90=90 p99=99\n"
	if got := text.String(); got != wantText {
		t.Errorf("text exposition drifted:\ngot:\n%s\nwant:\n%s", got, wantText)
	}
}

// TestTraceRing checks ordering, wrapping, and the injectable clock.
func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	tick := 0
	tr.Now = func() time.Time { tick++; return time.Unix(int64(tick), 0) }
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		tr.Record(k, "", 0)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events retained, want 3", len(evs))
	}
	for i, want := range []string{"c", "d", "e"} {
		if evs[i].Kind != want {
			t.Errorf("event %d = %q, want %q (oldest first)", i, evs[i].Kind, want)
		}
	}
	if !evs[0].At.Before(evs[2].At) {
		t.Error("events not in time order")
	}
	if tr.Total() != 5 {
		t.Errorf("total = %d, want 5", tr.Total())
	}
}

func TestTraceCapacityFloor(t *testing.T) {
	tr := NewTrace(0)
	tr.Record("only", "", 0)
	if len(tr.Events()) != 1 {
		t.Error("zero-capacity trace did not clamp to 1")
	}
}

// TestHandlerEndpoints drives the debug HTTP surface through httptest and
// checks each route serves what it promises.
func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("ting.pairs_measured").Add(4)
	r.Trace().Record("pair", "x-y", 73) // one event for /trace.json
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics.json") {
		t.Errorf("index: code %d body %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "counter ting.pairs_measured 4") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not parseable: %v", err)
	}
	if snap.Counters["ting.pairs_measured"] != 4 {
		t.Errorf("snapshot over HTTP = %+v", snap)
	}
	code, body = get("/trace.json")
	if code != 200 {
		t.Fatalf("/trace.json: code %d", code)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/trace.json not parseable: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != "pair" || evs[0].Ms != 73 {
		t.Errorf("trace over HTTP = %+v", evs)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof not wired: code %d", code)
	}
	if code, _ := get("/no-such-page"); code != 404 {
		t.Errorf("unknown path served: code %d", code)
	}
}

// TestServe binds :0, hits the live server, and shuts it down.
func TestServe(t *testing.T) {
	r := New()
	r.Counter("up").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "counter up 1") {
		t.Errorf("served metrics = %q", body)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestTraceJSONEmptyIsArray: an empty trace must encode as [] not null, so
// parsers on the other end never see a null where a list is promised.
func TestTraceJSONEmptyIsArray(t *testing.T) {
	srv := httptest.NewServer(New().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("empty trace = %q, want []", body)
	}
}
