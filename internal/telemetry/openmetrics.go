package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// OpenMetrics/Prometheus text exposition (the scrape format every
// Prometheus-compatible collector speaks), alongside the repo's own
// /metrics text and schema-versioned /metrics.json. Mapping:
//
//   - counters  → `# TYPE <name>_total counter` + one sample. The `_total`
//     suffix is the OpenMetrics counter convention; collectors strip it.
//   - gauges    → `# TYPE <name> gauge` + one sample.
//   - histograms → `# TYPE <name> summary`: three quantile samples
//     (0.5/0.9/0.99, as `{quantile="0.5"}` labels) plus `_sum` and
//     `_count`. A summary, not a histogram: the registry keeps exact
//     quantiles, not cumulative buckets, and inventing bucket bounds at
//     exposition time would be a lie.
//
// Metric names are sanitized to the [a-zA-Z_:][a-zA-Z0-9_:]* charset
// (dots — this repo's namespace separator — become underscores), and label
// values escape `\`, `"`, and newlines per the spec. The document ends
// with `# EOF`, the OpenMetrics terminator.

// WriteOpenMetrics writes the snapshot in OpenMetrics text format. Output
// is deterministic: families are emitted counters-gauges-histograms, each
// sorted by name.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s Cumulative counter %s.\n# TYPE %s counter\n%s %d\n",
			name, promLabelEscape(k), name, name, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %d\n",
			name, promLabelEscape(k), name, name, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# HELP %s Summary %s.\n# TYPE %s summary\n",
			name, promLabelEscape(k), name); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %s\n", name, q.label, ftoa(q.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, ftoa(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// promName sanitizes a registry metric name into the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (this repo's namespace separator)
// and any other invalid rune become underscores; a leading digit gains an
// underscore prefix.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelEscape escapes a string for use inside a double-quoted label
// value or HELP text: backslash, double quote, and newline, per the
// exposition-format spec.
func promLabelEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
