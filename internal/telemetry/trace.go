package telemetry

import (
	"sync"
	"time"
)

// DefaultTraceCap bounds the trace ring New installs: large enough to hold
// a full sweep's lifecycle events, small enough to stay cheap.
const DefaultTraceCap = 2048

// Event is one measurement-lifecycle record: a circuit build finishing, a
// retry being scheduled, a cache hit, a fault observed.
type Event struct {
	// At is the wall-clock event time.
	At time.Time `json:"at"`
	// Kind is the event class ("circuit", "retry", "cache", "pair",
	// "sweep", "fault", ...).
	Kind string `json:"kind"`
	// Detail is a short human-readable payload (pair names, error text).
	Detail string `json:"detail,omitempty"`
	// Ms carries the event's latency in milliseconds, when it has one.
	Ms float64 `json:"ms,omitempty"`
}

// Trace is a bounded ring of Events. Recording overwrites the oldest entry
// once full; a nil Trace ignores records. Safe for concurrent use.
type Trace struct {
	// Now is injectable for deterministic tests; nil means time.Now.
	Now func() time.Time

	mu    sync.Mutex
	buf   []Event
	next  int
	wrap  bool
	total int64
}

// NewTrace creates a trace holding up to capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends one event, stamping the time.
func (t *Trace) Record(kind, detail string, ms float64) {
	if t == nil {
		return
	}
	now := time.Now
	if t.Now != nil {
		now = t.Now
	}
	ev := Event{At: now(), Kind: kind, Detail: detail, Ms: ms}
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrap = true
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrap {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns how many events were ever recorded, including overwritten
// ones; zero for a nil Trace.
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
