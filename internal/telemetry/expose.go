package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// HistogramSnapshot is the exposition form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SchemaVersion is the version of the JSON exposition format, carried as
// the top-level "schema" field so consumers can detect incompatible
// changes. Bump it when a field is renamed, retyped, or removed — not for
// additions, which versioned consumers must tolerate. The plain-text
// format (WriteText) is the stable scrape surface and is not versioned.
const SchemaVersion = 1

// Snapshot is a point-in-time view of a registry. Encoding to JSON is
// deterministic (map keys sort), so tests can pin the schema.
type Snapshot struct {
	Schema     int                          `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. Counters, gauges, and histograms are
// each read atomically; the snapshot as a whole is not a single atomic cut
// across metrics, which exposition does not need. A nil registry yields an
// empty (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SchemaVersion,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as sorted "family name value" lines — the
// plain-text exposition format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%s min=%s max=%s p50=%s p90=%s p99=%s\n",
			k, h.Count, ftoa(h.Sum), ftoa(h.Min), ftoa(h.Max),
			ftoa(h.P50), ftoa(h.P90), ftoa(h.P99)); err != nil {
			return err
		}
	}
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler returns the debug surface for the registry:
//
//	/               index
//	/metrics        plain-text snapshot
//	/metrics.json   JSON snapshot
//	/metrics.prom   OpenMetrics/Prometheus text exposition
//	/trace.json     the event trace, oldest first
//	/debug/pprof/   the standard pprof handlers
//
// Works on a nil registry (all metrics read empty).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		io.WriteString(w, "ting telemetry\n\n/metrics\n/metrics.json\n/metrics.prom\n/trace.json\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		r.Snapshot().WriteOpenMetrics(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := r.Trace().Events()
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug HTTP server on addr in the background and returns
// the bound address (useful with ":0") and a shutdown function.
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
