package telemetry

import (
	"math"
	"sync/atomic"
)

// DefaultBuckets are the default histogram upper bounds, in milliseconds:
// powers of two from 0.5 ms to ~65 s, the span of circuit RTTs the stack
// sees between loopback pipes and heavily stalled transcontinental paths.
var DefaultBuckets = []float64{
	0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536,
}

// Histogram accumulates float64 observations into fixed buckets with
// atomic counters — safe for concurrent Observe from every layer of the
// stack. A nil Histogram ignores observations.
type Histogram struct {
	bounds []float64      // ascending upper bounds; final +Inf bucket implied
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat // valid only when count > 0
	max    atomicFloat
}

// NewHistogram creates a histogram with the given ascending upper bounds
// (nil means DefaultBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of observations; zero for a nil Histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket where the cumulative count crosses q. Values beyond
// the last bound clamp to the largest observed value. Returns 0 when empty
// or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max.load()
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo { // max below bucket floor cannot happen, but be safe
				hi = lo
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.max.load()
}

// snapshot captures the histogram for exposition.
func (h *Histogram) snapshot() HistogramSnapshot {
	count := h.count.Load()
	s := HistogramSnapshot{
		Count: count,
		Sum:   round6(h.sum.load()),
	}
	if count > 0 {
		s.Min = round6(h.min.load())
		s.Max = round6(h.max.load())
		s.P50 = round6(h.Quantile(0.5))
		s.P90 = round6(h.Quantile(0.9))
		s.P99 = round6(h.Quantile(0.99))
	}
	return s
}

// round6 trims float noise so snapshots encode stably.
func round6(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return math.Round(v*1e6) / 1e6
}

// atomicFloat is a float64 with atomic add/min/max via CAS on bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
