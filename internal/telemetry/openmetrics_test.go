package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestOpenMetricsGolden pins the OpenMetrics exposition byte-for-byte:
// sanitized names, _total counter suffix, summary quantile lines, and the
// # EOF terminator. Change the golden only for a deliberate format change.
func TestOpenMetricsGolden(t *testing.T) {
	r := New()
	r.Counter("ting.pairs_measured").Add(3)
	r.Gauge("ting.scanner_active_workers").Set(2)
	h := r.HistogramBuckets("ting.pair_rtt_ms", []float64{50, 100})
	h.Observe(25)
	h.Observe(75)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := "# HELP ting_pairs_measured_total Cumulative counter ting.pairs_measured.\n" +
		"# TYPE ting_pairs_measured_total counter\n" +
		"ting_pairs_measured_total 3\n" +
		"# HELP ting_scanner_active_workers Gauge ting.scanner_active_workers.\n" +
		"# TYPE ting_scanner_active_workers gauge\n" +
		"ting_scanner_active_workers 2\n" +
		"# HELP ting_pair_rtt_ms Summary ting.pair_rtt_ms.\n" +
		"# TYPE ting_pair_rtt_ms summary\n" +
		"ting_pair_rtt_ms{quantile=\"0.5\"} 50\n" +
		"ting_pair_rtt_ms{quantile=\"0.9\"} 90\n" +
		"ting_pair_rtt_ms{quantile=\"0.99\"} 99\n" +
		"ting_pair_rtt_ms_sum 100\n" +
		"ting_pair_rtt_ms_count 2\n" +
		"# EOF\n"
	if got := buf.String(); got != golden {
		t.Errorf("OpenMetrics exposition drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestPromName covers the sanitizer's edge cases: the namespace dot, runes
// outside the charset, leading digits, and the empty string.
func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"ting.pairs_measured", "ting_pairs_measured"},
		{"serve.bin_ms", "serve_bin_ms"},
		{"already_fine:name", "already_fine:name"},
		{"weird-chars räté", "weird_chars_r_t_"},
		{"9starts_with_digit", "_9starts_with_digit"},
		{"", "_"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestPromLabelEscape pins backslash, quote, and newline escaping.
func TestPromLabelEscape(t *testing.T) {
	if got := promLabelEscape(`a\b"c` + "\nd"); got != `a\\b\"c\nd` {
		t.Errorf("promLabelEscape = %q", got)
	}
	if got := promLabelEscape("plain"); got != "plain" {
		t.Errorf("promLabelEscape(plain) = %q", got)
	}
}

// TestMetricsPromEndpoint checks the /metrics.prom route serves the
// OpenMetrics document with the right content type, and that the JSON and
// plain-text surfaces are untouched by its addition.
func TestMetricsPromEndpoint(t *testing.T) {
	r := New()
	r.Counter("ting.pairs_measured").Add(4)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics.prom: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("/metrics.prom content type = %q", ct)
	}
	s := string(body)
	if !strings.Contains(s, "# TYPE ting_pairs_measured_total counter\n") ||
		!strings.Contains(s, "ting_pairs_measured_total 4\n") ||
		!strings.HasSuffix(s, "# EOF\n") {
		t.Errorf("/metrics.prom body = %q", s)
	}

	// The pre-existing surfaces keep their formats.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), "counter ting.pairs_measured 4") {
		t.Errorf("/metrics body = %q", body2)
	}
}
