// Package telemetry is the stdlib-only observability subsystem for the
// whole measurement stack. The paper's credibility rests on knowing what
// the pipeline actually did — how many circuits were built, how many
// samples each minimum came from, where retries and cache hits happened
// (§4.2, §4.5–4.6) — so every layer (relay, client, ting, tornet, faults)
// reports into a shared Registry of named counters, gauges, and
// histograms, plus a bounded trace of measurement-lifecycle events.
//
// Design constraints, in order:
//
//   - The disabled path must be near-free. A nil *Registry hands out nil
//     metrics, and every metric method is a nil-safe no-op, so
//     instrumented hot paths (cell forwarding, per-sample probes) cost one
//     predictable branch when telemetry is off. Hot paths resolve their
//     metrics once, up front, never per event.
//   - The enabled path must be safe under full concurrency: all metric
//     updates are atomic; registration is guarded by a lock but happens
//     once per name.
//   - Exposition is pull-based: Snapshot() captures a consistent-enough
//     view that encodes to JSON (stable key order) and plain text; see
//     expose.go for the HTTP surface with net/http/pprof wired in.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero for a nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (worker occupancy, open
// circuits). A nil Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; zero for a nil Gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. The zero value is not usable; create one
// with New. A nil *Registry is the disabled mode: every lookup returns a
// nil metric whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// TraceLog, if non-nil, records measurement-lifecycle events; New
	// installs one with a default capacity. Replace or nil it before
	// first use.
	TraceLog *Trace
}

// New creates an empty registry with a default trace buffer.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		TraceLog: NewTrace(DefaultTraceCap),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with DefaultBuckets, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the named histogram, creating it with the given
// upper bounds on first use (nil bounds means DefaultBuckets). Bounds are
// fixed at creation; later calls ignore the argument.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Trace returns the registry's trace buffer (nil when tracing is off or
// the registry is nil). Record through it directly: reg.Trace().Record(...).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.TraceLog
}

// names returns the sorted names of one metric family.
func sortedKeys[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
