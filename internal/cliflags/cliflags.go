// Package cliflags holds the flag plumbing shared by the ting commands
// (cmd/ting, cmd/tingnet, cmd/tingd): the -debug-addr telemetry surface,
// the -dir directory-server address, repeatable flags, and the
// -crash/-flap/-churn fault-plan knobs. Each command used to grow its own
// copy; one package means one spelling, one usage string, and one parser
// for each knob.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ting/internal/faults"
	"ting/internal/telemetry"
)

// DebugAddr registers -debug-addr on fs and returns the destination.
func DebugAddr(fs *flag.FlagSet) *string {
	return fs.String("debug-addr", "", "serve telemetry and pprof on this address (e.g. 127.0.0.1:6060)")
}

// Dir registers -dir on fs with a command-specific usage string.
func Dir(fs *flag.FlagSet, usage string) *string {
	return fs.String("dir", "", usage)
}

// BootTelemetry turns a -debug-addr value into a live debug surface. With
// an empty addr it returns a nil registry (the no-op telemetry mode), an
// empty bound address, and a no-op shutdown. Otherwise it boots
// telemetry.Serve, prints where the surface landed, and returns the
// registry, the bound address (so :0 binds are discoverable), and the
// server's shutdown.
func BootTelemetry(addr string) (reg *telemetry.Registry, bound string, shutdown func(), err error) {
	if addr == "" {
		return nil, "", func() {}, nil
	}
	reg = telemetry.New()
	bound, stop, err := telemetry.Serve(addr, reg)
	if err != nil {
		return nil, "", nil, err
	}
	fmt.Printf("telemetry: http://%s/metrics.json (pprof under /debug/pprof/)\n", bound)
	return reg, bound, func() { _ = stop() }, nil
}

// Multi collects every occurrence of a repeatable flag.
type Multi []string

func (m *Multi) String() string     { return strings.Join(*m, ",") }
func (m *Multi) Set(v string) error { *m = append(*m, v); return nil }

// FaultFlags are the fault-injection knobs of a command that embeds (or
// targets) a mintor overlay.
type FaultFlags struct {
	Crash Multi
	Flap  Multi
	Churn Multi
	Seed  int64
}

// Register installs -crash, -flap, -churn, and -fault-seed on fs.
func (f *FaultFlags) Register(fs *flag.FlagSet) {
	fs.Var(&f.Crash, "crash", "kill a relay permanently: name:delay (e.g. relay002:30s; repeatable)")
	fs.Var(&f.Flap, "flap", "flap a relay: name:period:down (e.g. relay001:10s:2s; repeatable)")
	fs.Var(&f.Churn, "churn", "churn the consensus: join:name:delay holds the relay out of the initial consensus and publishes it then; drain:name:delay drains it gracefully (e.g. drain:relay003:45s; repeatable)")
	fs.Int64Var(&f.Seed, "fault-seed", 7, "seed for the fault plan's probabilistic decisions")
}

// Empty reports whether no fault was requested.
func (f *FaultFlags) Empty() bool {
	return len(f.Crash) == 0 && len(f.Flap) == 0 && len(f.Churn) == 0
}

// BuildPlan turns the flags into a fault plan, or nil when no fault was
// requested. known validates relay names (nil accepts any). A relay may
// appear in several flags; the schedules merge.
func (f *FaultFlags) BuildPlan(known func(name string) bool) (*faults.Plan, error) {
	if f.Empty() {
		return nil, nil
	}
	schedules := map[string]faults.RelaySchedule{}
	relay := func(name string) (faults.RelaySchedule, error) {
		if known != nil && !known(name) {
			return faults.RelaySchedule{}, fmt.Errorf("fault plan: unknown relay %q", name)
		}
		return schedules[name], nil
	}
	for _, spec := range f.Crash {
		parts := strings.Split(spec, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -crash %q, want name:delay", spec)
		}
		rs, err := relay(parts[0])
		if err != nil {
			return nil, err
		}
		delay, err := time.ParseDuration(parts[1])
		if err != nil || delay <= 0 {
			return nil, fmt.Errorf("bad -crash delay %q: want a positive duration", parts[1])
		}
		rs.CrashAfter = delay
		schedules[parts[0]] = rs
	}
	for _, spec := range f.Flap {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -flap %q, want name:period:down", spec)
		}
		rs, err := relay(parts[0])
		if err != nil {
			return nil, err
		}
		period, err := time.ParseDuration(parts[1])
		if err != nil || period <= 0 {
			return nil, fmt.Errorf("bad -flap period %q: want a positive duration", parts[1])
		}
		down, err := time.ParseDuration(parts[2])
		if err != nil || down <= 0 || down >= period {
			return nil, fmt.Errorf("bad -flap downtime %q: want a positive duration shorter than the period", parts[2])
		}
		rs.FlapPeriod, rs.FlapDown = period, down
		schedules[parts[0]] = rs
	}
	for _, spec := range f.Churn {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 || (parts[0] != "join" && parts[0] != "drain") {
			return nil, fmt.Errorf("bad -churn %q, want join:name:delay or drain:name:delay", spec)
		}
		rs, err := relay(parts[1])
		if err != nil {
			return nil, err
		}
		delay, err := time.ParseDuration(parts[2])
		if err != nil || delay <= 0 {
			return nil, fmt.Errorf("bad -churn delay %q: want a positive duration", parts[2])
		}
		if parts[0] == "join" {
			rs.JoinAfter = delay
		} else {
			rs.DrainAfter = delay
		}
		schedules[parts[1]] = rs
	}
	plan := faults.NewPlan(f.Seed)
	for name, rs := range schedules {
		plan.SetRelay(name, rs)
	}
	return plan, nil
}

// PrintFaultPlan reports the injected failure schedule so a transcript of
// the run records what the network was doing to itself. Nil plans print
// nothing.
func PrintFaultPlan(w io.Writer, plan *faults.Plan) {
	if plan == nil {
		return
	}
	fmt.Fprintf(w, "fault plan (seed %d, clock starts now):\n", plan.Seed)
	relays := plan.Relays()
	names := make([]string, 0, len(relays))
	for name := range relays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := relays[name]
		if rs.CrashAfter > 0 {
			fmt.Fprintf(w, "  %s: crashes permanently after %v\n", name, rs.CrashAfter)
		}
		if rs.FlapPeriod > 0 {
			fmt.Fprintf(w, "  %s: down %v at the top of every %v\n", name, rs.FlapDown, rs.FlapPeriod)
		}
		if rs.JoinAfter > 0 {
			fmt.Fprintf(w, "  %s: held out of the consensus, joins after %v\n", name, rs.JoinAfter)
		}
		if rs.DrainAfter > 0 {
			fmt.Fprintf(w, "  %s: drains gracefully after %v\n", name, rs.DrainAfter)
		}
	}
}
