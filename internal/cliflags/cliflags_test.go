package cliflags

import (
	"flag"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) *FaultFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var f FaultFlags
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestFaultFlagsBuildPlan(t *testing.T) {
	f := parse(t,
		"-crash", "relay002:30s",
		"-flap", "relay001:10s:2s",
		"-churn", "drain:relay003:45s",
		"-churn", "join:relay004:1m",
		"-fault-seed", "11",
	)
	known := func(name string) bool { return strings.HasPrefix(name, "relay") }
	plan, err := f.BuildPlan(known)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 11 {
		t.Errorf("seed %d", plan.Seed)
	}
	relays := plan.Relays()
	if len(relays) != 4 {
		t.Fatalf("relays %v", relays)
	}
	if relays["relay002"].CrashAfter != 30*time.Second {
		t.Errorf("crash %v", relays["relay002"])
	}
	if rs := relays["relay001"]; rs.FlapPeriod != 10*time.Second || rs.FlapDown != 2*time.Second {
		t.Errorf("flap %v", rs)
	}
	if relays["relay003"].DrainAfter != 45*time.Second {
		t.Errorf("drain %v", relays["relay003"])
	}
	if relays["relay004"].JoinAfter != time.Minute {
		t.Errorf("join %v", relays["relay004"])
	}

	var out strings.Builder
	PrintFaultPlan(&out, plan)
	for _, want := range []string{"seed 11", "relay002: crashes", "relay001: down 2s", "relay003: drains", "relay004: held out"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plan print missing %q:\n%s", want, out.String())
		}
	}
}

func TestFaultFlagsEmptyIsNilPlan(t *testing.T) {
	f := parse(t)
	plan, err := f.BuildPlan(nil)
	if err != nil || plan != nil {
		t.Fatalf("plan=%v err=%v", plan, err)
	}
	var out strings.Builder
	PrintFaultPlan(&out, nil)
	if out.Len() != 0 {
		t.Errorf("nil plan printed %q", out.String())
	}
}

func TestFaultFlagsRejectsBadSpecs(t *testing.T) {
	cases := [][]string{
		{"-crash", "relay002"},
		{"-crash", "relay002:nope"},
		{"-crash", "relay002:-3s"},
		{"-flap", "relay001:2s:10s"}, // down ≥ period
		{"-churn", "explode:relay003:45s"},
		{"-churn", "drain:relay003:0s"},
	}
	for _, args := range cases {
		f := parse(t, args...)
		if _, err := f.BuildPlan(nil); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
	f := parse(t, "-crash", "ghost:30s")
	if _, err := f.BuildPlan(func(string) bool { return false }); err == nil {
		t.Error("unknown relay accepted")
	}
}

func TestBootTelemetryOffIsNoop(t *testing.T) {
	reg, bound, shutdown, err := BootTelemetry("")
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil || bound != "" {
		t.Errorf("registry/addr without -debug-addr: %v %q", reg, bound)
	}
	shutdown() // must not panic
}

func TestBootTelemetryBindsEphemeral(t *testing.T) {
	reg, bound, shutdown, err := BootTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if reg == nil {
		t.Fatal("no registry")
	}
	if strings.HasSuffix(bound, ":0") || bound == "" {
		t.Errorf("bound address %q not resolved", bound)
	}
	reg.Counter("x").Inc()
}
