package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Reference distances computed from the haversine formula with the mean
	// Earth radius; tolerances are generous since city coordinates are rough.
	cases := []struct {
		name string
		a, b Coord
		want float64 // km
		tol  float64
	}{
		{"nyc-london", Coord{40.7128, -74.0060}, Coord{51.5074, -0.1278}, 5570, 30},
		{"sf-tokyo", Coord{37.7749, -122.4194}, Coord{35.6762, 139.6503}, 8270, 40},
		{"sydney-perth", Coord{-33.8688, 151.2093}, Coord{-31.9523, 115.8613}, 3290, 30},
		{"same-point", Coord{12.34, 56.78}, Coord{12.34, 56.78}, 0, 0.001},
		{"equator-quarter", Coord{0, 0}, Coord{0, 90}, math.Pi / 2 * EarthRadiusKm, 1},
		{"pole-to-pole", Coord{90, 0}, Coord{-90, 0}, math.Pi * EarthRadiusKm, 1},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: DistanceKm = %.1f, want %.1f ± %.1f", c.name, got, c.want, c.tol)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(la1, lo1, la2, lo2 float64) bool {
		a := Coord{Lat: clampLat(la1), Lon: clampLon(lo1)}
		b := Coord{Lat: clampLat(la2), Lon: clampLon(lo2)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	f := func(la1, lo1, la2, lo2 float64) bool {
		a := Coord{Lat: clampLat(la1), Lon: clampLon(lo1)}
		b := Coord{Lat: clampLat(la2), Lon: clampLon(lo2)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	// Great-circle distance is a metric: geographic distances never violate
	// the triangle inequality (§5.2.1 — the point of contrast with RTTs).
	f := func(la1, lo1, la2, lo2, la3, lo3 float64) bool {
		a := Coord{Lat: clampLat(la1), Lon: clampLon(lo1)}
		b := Coord{Lat: clampLat(la2), Lon: clampLon(lo2)}
		c := Coord{Lat: clampLat(la3), Lon: clampLon(lo3)}
		return DistanceKm(a, b) <= DistanceKm(a, c)+DistanceKm(c, b)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 180) - 90 }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 360) - 180 }

func TestMinRTT(t *testing.T) {
	a := Coord{40.7128, -74.0060} // NYC
	b := Coord{51.5074, -0.1278}  // London
	rtt := MinRTTMs(a, b)
	// ~5570 km at 2/3 c ≈ 55.7 ms round trip.
	if rtt < 50 || rtt > 62 {
		t.Errorf("MinRTTMs(nyc, london) = %.2f, want ~56", rtt)
	}
	if MinRTTMsForDistance(0) != 0 {
		t.Error("zero distance should have zero minimum RTT")
	}
}

func TestCoordValid(t *testing.T) {
	valid := []Coord{{0, 0}, {90, 180}, {-90, -180}, {45.5, -122.6}}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	invalid := []Coord{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestRegionsWeightsSumToOne(t *testing.T) {
	var sum float64
	for _, r := range Regions() {
		if r.Weight <= 0 {
			t.Errorf("region %s has non-positive weight", r.Name)
		}
		if !r.Center.Valid() {
			t.Errorf("region %s has invalid center", r.Name)
		}
		sum += r.Weight
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("region weights sum to %v, want 1.0", sum)
	}
}

func TestRegionsCoverPaperAreas(t *testing.T) {
	// §4.1 requires Asia, South America, Australia, and the Middle East to
	// be represented alongside the US/EU concentration.
	want := []string{"asia-east", "south-america", "australia", "middle-east"}
	have := map[string]bool{}
	for _, r := range Regions() {
		have[r.Name] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("region %s missing from catalogue", w)
		}
	}
}

func TestGeoDBLookupAndErrors(t *testing.T) {
	names := make([]string, 0, 200)
	coords := make([]Coord, 0, 200)
	for i := 0; i < 200; i++ {
		names = append(names, string(rune('a'+i%26))+string(rune('0'+i/26)))
		coords = append(coords, Coord{Lat: float64(i%90) - 45, Lon: float64(i*3%360) - 180})
	}
	db, err := NewGeoDB(names, coords, GeoDBConfig{ErrorFraction: 0.1, ErrorShiftDeg: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 200 {
		t.Fatalf("Len = %d, want 200", db.Len())
	}
	if db.ErrorCount() == 0 || db.ErrorCount() > 50 {
		t.Fatalf("ErrorCount = %d, want within (0, 50] for 10%% of 200", db.ErrorCount())
	}
	errsSeen := 0
	for i, n := range names {
		c, ok := db.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if !c.Valid() {
			t.Fatalf("Lookup(%q) returned invalid coordinate %v", n, c)
		}
		if db.Erroneous(n) {
			errsSeen++
			if DistanceKm(c, coords[i]) < 100 {
				t.Errorf("entry %q marked erroneous but barely displaced", n)
			}
		} else if c != coords[i] {
			t.Errorf("entry %q not marked erroneous but coordinate changed", n)
		}
	}
	if errsSeen != db.ErrorCount() {
		t.Errorf("saw %d erroneous entries, ErrorCount says %d", errsSeen, db.ErrorCount())
	}
}

func TestGeoDBDeterministic(t *testing.T) {
	names := []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"}
	coords := make([]Coord, len(names))
	for i := range coords {
		coords[i] = Coord{Lat: float64(10 * i), Lon: float64(15 * i)}
	}
	cfg := GeoDBConfig{ErrorFraction: 0.5, Seed: 42}
	a, err := NewGeoDB(names, coords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGeoDB(names, coords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		ca, _ := a.Lookup(n)
		cb, _ := b.Lookup(n)
		if ca != cb {
			t.Errorf("lookup %q differs across identically-seeded DBs: %v vs %v", n, ca, cb)
		}
	}
}

func TestGeoDBRejectsMismatchedInput(t *testing.T) {
	if _, err := NewGeoDB([]string{"a"}, nil, GeoDBConfig{}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := NewGeoDB([]string{"a"}, []Coord{{Lat: 99}}, GeoDBConfig{}); err == nil {
		t.Error("expected error for invalid coordinate")
	}
}

func TestDisplaceStaysValid(t *testing.T) {
	f := func(la, lo float64, seed int64) bool {
		c := Coord{Lat: clampLat(la), Lon: clampLon(lo)}
		db, err := NewGeoDB([]string{"x"}, []Coord{c}, GeoDBConfig{ErrorFraction: 1, Seed: seed})
		if err != nil {
			return false
		}
		got, ok := db.Lookup("x")
		return ok && got.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
