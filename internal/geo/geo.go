// Package geo provides geographic coordinates, great-circle distance, and a
// synthetic geolocation database used by the Ting reproduction.
//
// The paper (§4.5, Figure 8) compares Ting-measured RTTs against great-circle
// distances derived from the Neustar IP geolocation service. We have no such
// service offline, so this package supplies (a) exact coordinates for
// synthetic topology nodes and (b) a GeoDB that deliberately injects lookup
// error into a small fraction of entries, reproducing the paper's observation
// that the handful of points below the 2/3 c line "are almost all likely
// errors in the underlying geolocation database".
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// SpeedOfLightKmPerMs is the vacuum speed of light expressed in km per
// millisecond. Packets in fiber travel at roughly 2/3 of this.
const SpeedOfLightKmPerMs = 299.792458

// FiberFactor is the generally accepted maximum fraction of c at which
// packets traverse the Internet (the "(2/3)c" line of Figure 8).
const FiberFactor = 2.0 / 3.0

// Coord is a point on the Earth's surface in decimal degrees.
type Coord struct {
	Lat float64 // latitude, -90..90
	Lon float64 // longitude, -180..180
}

// Valid reports whether the coordinate lies within the legal lat/lon ranges.
func (c Coord) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180
}

// String renders the coordinate as "lat,lon" with 4 decimal places.
func (c Coord) String() string {
	return fmt.Sprintf("%.4f,%.4f", c.Lat, c.Lon)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometers.
func DistanceKm(a, b Coord) float64 {
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp for numerical safety before Asin.
	h = math.Min(1, math.Max(0, h))
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// MinRTTMs returns the theoretical minimum round-trip time in milliseconds
// for the great-circle distance between a and b, assuming propagation at
// FiberFactor times the speed of light. This is the "(2/3)c" sanity line in
// Figure 8: no honest measurement should fall below it.
func MinRTTMs(a, b Coord) float64 {
	return MinRTTMsForDistance(DistanceKm(a, b))
}

// MinRTTMsForDistance is MinRTTMs for a precomputed distance in km.
func MinRTTMsForDistance(km float64) float64 {
	return 2 * km / (SpeedOfLightKmPerMs * FiberFactor)
}

// Region is a coarse geographic region used to shape synthetic topologies so
// they resemble the real Tor network's concentration in the US and Europe
// with sparse coverage elsewhere (§4.1).
type Region struct {
	Name string
	// Center of the region and the radius (in degrees) within which nodes
	// are scattered.
	Center Coord
	Spread float64
	// Weight is the relative probability that a relay lands in this region.
	Weight float64
}

// Regions returns the region catalogue used by the topology generator. The
// weights mirror the paper's testbed guidance: a concentration of relays in
// the US and Europe, and only a few nodes sparsely distributed elsewhere.
func Regions() []Region {
	return []Region{
		{Name: "us-east", Center: Coord{39.0, -77.0}, Spread: 6, Weight: 0.22},
		{Name: "us-central", Center: Coord{41.9, -93.1}, Spread: 7, Weight: 0.08},
		{Name: "us-west", Center: Coord{37.4, -122.1}, Spread: 5, Weight: 0.12},
		{Name: "eu-west", Center: Coord{48.8, 2.3}, Spread: 6, Weight: 0.20},
		{Name: "eu-central", Center: Coord{50.1, 8.7}, Spread: 5, Weight: 0.18},
		{Name: "eu-north", Center: Coord{59.3, 18.1}, Spread: 4, Weight: 0.06},
		{Name: "asia-east", Center: Coord{35.7, 139.7}, Spread: 6, Weight: 0.05},
		{Name: "south-america", Center: Coord{-23.5, -46.6}, Spread: 5, Weight: 0.03},
		{Name: "australia", Center: Coord{-33.9, 151.2}, Spread: 4, Weight: 0.03},
		{Name: "middle-east", Center: Coord{32.1, 34.8}, Spread: 4, Weight: 0.03},
	}
}
