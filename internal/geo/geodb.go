package geo

import (
	"fmt"
	"math/rand"
	"sort"
)

// GeoDB is a synthetic stand-in for the Neustar IP geolocation service the
// paper used (§4.5). Lookups return the true coordinate of a node, except
// for a configurable fraction of entries whose stored coordinate has been
// perturbed — these produce the impossible, below-(2/3)c points of Figure 8.
type GeoDB struct {
	entries map[string]Coord
	// erroneous records which entries carry injected error, for tests and
	// for the Figure 8 analysis of outliers.
	erroneous map[string]bool
}

// GeoDBConfig controls error injection in a synthetic GeoDB.
type GeoDBConfig struct {
	// ErrorFraction is the fraction of entries whose coordinate is replaced
	// with a far-away point (default 0.01).
	ErrorFraction float64
	// ErrorShiftDeg is the magnitude (in degrees, roughly) of the injected
	// displacement (default 60).
	ErrorShiftDeg float64
	// Seed drives the deterministic error injection.
	Seed int64
}

// NewGeoDB builds a database from node names to true coordinates, injecting
// errors per cfg. The zero-value config means 1% of entries are displaced by
// about 60 degrees.
func NewGeoDB(names []string, coords []Coord, cfg GeoDBConfig) (*GeoDB, error) {
	if len(names) != len(coords) {
		return nil, fmt.Errorf("geo: %d names but %d coords", len(names), len(coords))
	}
	if cfg.ErrorFraction == 0 {
		cfg.ErrorFraction = 0.01
	}
	if cfg.ErrorShiftDeg == 0 {
		cfg.ErrorShiftDeg = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &GeoDB{
		entries:   make(map[string]Coord, len(names)),
		erroneous: make(map[string]bool),
	}
	// Iterate in a stable order so error injection is deterministic.
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return names[idx[a]] < names[idx[b]] })
	for _, i := range idx {
		c := coords[i]
		if !c.Valid() {
			return nil, fmt.Errorf("geo: invalid coordinate %v for %q", c, names[i])
		}
		if rng.Float64() < cfg.ErrorFraction {
			c = displace(c, cfg.ErrorShiftDeg, rng)
			db.erroneous[names[i]] = true
		}
		db.entries[names[i]] = c
	}
	return db, nil
}

// displace moves c by roughly shift degrees in a random direction, clamping
// to legal ranges.
func displace(c Coord, shift float64, rng *rand.Rand) Coord {
	dLat := (rng.Float64()*2 - 1) * shift
	dLon := (rng.Float64()*2 - 1) * shift
	out := Coord{Lat: c.Lat + dLat, Lon: c.Lon + dLon}
	if out.Lat > 90 {
		out.Lat = 180 - out.Lat
	}
	if out.Lat < -90 {
		out.Lat = -180 - out.Lat
	}
	for out.Lon > 180 {
		out.Lon -= 360
	}
	for out.Lon < -180 {
		out.Lon += 360
	}
	return out
}

// Lookup returns the (possibly erroneous) stored coordinate for name.
func (db *GeoDB) Lookup(name string) (Coord, bool) {
	c, ok := db.entries[name]
	return c, ok
}

// Erroneous reports whether name's stored coordinate carries injected error.
func (db *GeoDB) Erroneous(name string) bool { return db.erroneous[name] }

// Len returns the number of entries.
func (db *GeoDB) Len() int { return len(db.entries) }

// ErrorCount returns how many entries carry injected error.
func (db *GeoDB) ErrorCount() int { return len(db.erroneous) }
