package ting

import (
	"context"
	"errors"
	"math/rand"

	"ting/internal/coords"
)

// budgetRounds is how many active-learning batches follow the bootstrap.
// More rounds mean fresher uncertainty estimates per selected pair but more
// refit/scheduling overhead; four keeps the selection adaptive without the
// batches degenerating into single pairs.
const budgetRounds = 4

// budgetFitPasses is how many relaxation passes each refit runs over the
// cumulative observation set. The embedding is incremental (coordinates
// persist between fits), so a modest count per batch converges.
const budgetFitPasses = 12

// ScanBudget measures at most budget unordered pairs among names and
// completes the rest of the matrix from a Vivaldi-style coordinate
// embedding (internal/coords) — the sub-quadratic campaign mode. The
// schedule is active: a bootstrap of k random peers per node (about half
// the budget) seeds the embedding, then each remaining batch measures the
// pairs whose endpoints the model is least certain about, refitting
// between batches. Unmeasured cells are filled with predicted RTTs under
// provenance ProvPredicted, carrying the model's per-cell confidence
// (Matrix.ConfAt); failed pairs degrade to predictions the same way, so
// the returned matrix is always complete.
//
// A budget of at least all pairs falls through to a plain Scan. The
// scanner's Checkpoint and Directory are not used by the batch scans (a
// budgeted campaign is cheap to re-run; churn reconciliation assumes an
// all-pairs schedule); everything else — workers, caches, retries,
// deadlines, breaker, observer — applies per batch, and one half-circuit
// cache spans all batches so bootstrap circuits keep paying off in the
// active rounds. Progress, if set, is called with done/total across the
// whole campaign's scheduled pairs.
func (s *Scanner) ScanBudget(ctx context.Context, names []string, budget int) (*Matrix, []PairError, error) {
	if budget <= 0 {
		return nil, nil, errors.New("ting: ScanBudget needs a positive budget")
	}
	n := len(names)
	allPairs := n * (n - 1) / 2
	if budget >= allPairs {
		return s.Scan(ctx, names)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	master, err := NewMatrix(names)
	if err != nil {
		return nil, nil, err
	}

	seed := s.Shuffle
	if seed == 0 {
		seed = 1
	}
	model, err := coords.New(n, coords.Config{Seed: seed})
	if err != nil {
		return nil, nil, err
	}

	// Batch scans share one half-circuit cache across the campaign (unless
	// the caller brought their own or opted out): a node's C_x series from
	// the bootstrap answers its active-round pairs too.
	sub := *s
	sub.Checkpoint = nil
	sub.Directory = nil
	if sub.HalfCircuits == nil && !sub.DisableHalfCache {
		sub.HalfCircuits = NewHalfCache(0)
	}
	// Progress across batches: each batch reports into its own slice of the
	// campaign's running totals.
	progress := s.Progress
	sub.Progress = nil

	measured := make(map[[2]string]bool, budget)
	measuredFn := func(i, j int) bool { return measured[pairKey(names[i], names[j])] }

	var (
		failures []PairError
		obs      []coords.Observation
		doneOff  int
	)
	runBatch := func(batch [][2]string) error {
		if len(batch) == 0 {
			return nil
		}
		for _, p := range batch {
			measured[pairKey(p[0], p[1])] = true
		}
		if progress != nil {
			off := doneOff
			total := doneOff + len(batch)
			sub.Progress = func(done, _ int) { progress(off+done, total) }
		}
		bm, fails, err := sub.run(ctx, names, nil, nil, false, batch)
		doneOff += len(batch)
		failures = append(failures, fails...)
		if bm != nil {
			for _, p := range batch {
				if bm.Prov(p[0], p[1]) != ProvFresh {
					continue
				}
				rtt, rerr := bm.RTT(p[0], p[1])
				if rerr != nil {
					continue
				}
				_ = master.Set(p[0], p[1], rtt)
				_ = master.SetProv(p[0], p[1], ProvFresh)
				i, _ := master.Index(p[0])
				j, _ := master.Index(p[1])
				obs = append(obs, coords.Observation{I: i, J: j, RTTMs: rtt})
			}
		}
		return err
	}

	// Bootstrap: k random peers per node, about half the budget. Every
	// node appears in at least k pairs, so no coordinate starts blind.
	rng := rand.New(rand.NewSource(seed))
	k := budget / n
	if k < 2 {
		k = 2
	}
	boot := make([][2]string, 0, n*k/2+n)
	bootSeen := make(map[[2]string]bool, n*k/2+n)
	for i := 0; i < n; i++ {
		for picked, tries := 0, 0; picked < k && tries < 4*k; tries++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			key := pairKey(names[i], names[j])
			if bootSeen[key] {
				continue
			}
			bootSeen[key] = true
			boot = append(boot, [2]string{names[i], names[j]})
			picked++
			if len(boot) >= budget {
				break
			}
		}
		if len(boot) >= budget {
			break
		}
	}
	if err := runBatch(boot); err != nil {
		s.completePredicted(master, model)
		return master, failures, err
	}
	model.Fit(obs, budgetFitPasses)

	// Active rounds: spend what's left on the pairs the embedding is least
	// sure about, refitting after each batch so later rounds chase the
	// model's current confusion, not its starting state.
	for round := 0; round < budgetRounds; round++ {
		remaining := budget - len(measured)
		if remaining <= 0 {
			break
		}
		size := remaining / (budgetRounds - round)
		if size < 1 {
			size = remaining
		}
		pairs := model.SelectUncertain(size, measuredFn, seed+int64(round)+1)
		if len(pairs) == 0 {
			break
		}
		batch := make([][2]string, len(pairs))
		for bi, p := range pairs {
			batch[bi] = [2]string{names[p.I], names[p.J]}
		}
		if err := runBatch(batch); err != nil {
			s.completePredicted(master, model)
			return master, failures, err
		}
		model.Fit(obs, budgetFitPasses)
	}

	s.completePredicted(master, model)
	s.Observer.budgetComplete(len(measured), allPairs)
	return master, failures, nil
}

// completePredicted fills every cell the campaign did not measure (or
// measured and lost) with the embedding's prediction and confidence.
func (s *Scanner) completePredicted(m *Matrix, model *coords.Model) {
	names := m.Names()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if m.Prov(names[i], names[j]) == ProvFresh {
				continue
			}
			rtt, conf := model.PredictWithConfidence(i, j)
			_ = m.SetPredicted(names[i], names[j], rtt, conf)
		}
	}
}
