package ting

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// tileNames returns n distinct relay names — enough to span several tile
// bands when n > TileDim.
func tileNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("r%03d", i)
	}
	return names
}

func TestMatrixEncodeGoldenDenseFormat(t *testing.T) {
	// The tiled store must keep the published dense document byte-for-byte:
	// existing datasets and their consumers predate the tiling.
	m, err := NewMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", "b", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b", "c", 42); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	want := "tingmatrix n=3\n" +
		"a b c\n" +
		"0 1.5 0\n" +
		"1.5 0 42\n" +
		"0 42 0\n"
	if buf.String() != want {
		t.Errorf("dense encoding changed:\ngot:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestMatrixAddNameProvCountsParity(t *testing.T) {
	// Growth must treat a never-annotated matrix and an annotated one
	// identically: the new relay's pairs are ProvMissing in both, and
	// existing annotations survive untouched.
	bare, err := NewMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	noted, err := NewMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := noted.SetProv("a", "b", ProvFresh); err != nil {
		t.Fatal(err)
	}
	if err := noted.SetProv("b", "c", ProvResumed); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Matrix{bare, noted} {
		if err := m.AddName("d"); err != nil {
			t.Fatal(err)
		}
	}
	if pc := bare.ProvCounts(); pc != (ProvCount{Missing: 6}) {
		t.Errorf("bare ProvCounts = %+v, want 0/0/0/0/6", pc)
	}
	if pc := noted.ProvCounts(); pc != (ProvCount{Fresh: 1, Resumed: 1, Missing: 4}) {
		t.Errorf("annotated ProvCounts = %+v, want 1/1/0/0/4", pc)
	}
	for _, m := range []*Matrix{bare, noted} {
		for _, x := range []string{"a", "b", "c"} {
			if p := m.Prov(x, "d"); p != ProvMissing {
				t.Errorf("Prov(%s,d) = %v after growth, want missing", x, p)
			}
		}
	}
}

func TestMatrixTileBoundaryGrowth(t *testing.T) {
	// Start one relay short of a tile band, write near the far edge, then
	// grow across the boundary: the grid is re-placed but cells must not
	// move or change.
	names := tileNames(TileDim - 1)
	m, err := NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set(names[0], names[TileDim-2], 7.25); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv(names[0], names[TileDim-2], ProvFresh); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < TileDim+2; i++ {
		if err := m.AddName(fmt.Sprintf("x%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.N() != 2*TileDim+1 {
		t.Fatalf("N = %d, want %d", m.N(), 2*TileDim+1)
	}
	if got, err := m.RTT(names[0], names[TileDim-2]); err != nil || got != 7.25 {
		t.Errorf("RTT after growth = %v, %v; want 7.25", got, err)
	}
	if p := m.Prov(names[0], names[TileDim-2]); p != ProvFresh {
		t.Errorf("Prov after growth = %v, want fresh", p)
	}
	// Writes across the new boundary land in freshly materialized tiles.
	if err := m.Set("x000", "x065", 3.5); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.RTT("x065", "x000"); got != 3.5 {
		t.Errorf("cross-boundary RTT = %v, want 3.5", got)
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m, err := NewMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", "b", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv("a", "b", ProvFresh); err != nil {
		t.Fatal(err)
	}
	cp := m.Clone()
	if err := m.Set("a", "b", 9); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv("a", "c", ProvRemoved); err != nil {
		t.Fatal(err)
	}
	if got, _ := cp.RTT("a", "b"); got != 5 {
		t.Errorf("clone RTT = %v after original mutated, want 5", got)
	}
	if p := cp.Prov("a", "c"); p != ProvMissing {
		t.Errorf("clone Prov = %v after original mutated, want missing", p)
	}
	if err := cp.AddName("d"); err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Error("growing the clone grew the original")
	}
}

func TestMatrixAtPanicsOutOfRange(t *testing.T) {
	m, err := NewMatrix([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	_ = m.At(0, 2)
}

func TestEncodeTilesRoundTrip(t *testing.T) {
	// Span three tile bands and write a scattered subset of pairs; the
	// tile document must reproduce every cell and re-encode identically
	// (sparsity included).
	names := tileNames(2*TileDim + 5)
	m, err := NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {0, TileDim}, {3, 2*TileDim + 1}, {TileDim - 1, TileDim}, {TileDim + 7, 2 * TileDim}}
	for k, p := range pairs {
		if err := m.Set(names[p[0]], names[p[1]], float64(k)*3.25+0.5); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.EncodeTiles(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	got, err := DecodeTiles(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("DecodeTiles: %v\ndoc:\n%s", err, doc)
	}
	if got.N() != m.N() {
		t.Fatalf("N = %d, want %d", got.N(), m.N())
	}
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("cell (%d,%d): %v vs %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
	var again bytes.Buffer
	if err := got.EncodeTiles(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != doc {
		t.Error("tile document not stable across a round trip")
	}
}

func TestEncodeTilesMatchesDenseValues(t *testing.T) {
	// The two formats are different serializations of the same matrix: a
	// dense decode of the dense encoding and a tile decode of the tile
	// encoding must agree cell for cell.
	names := tileNames(TileDim + 3)
	m, err := NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(names); i += 7 {
		for j := i + 1; j < len(names); j += 11 {
			if err := m.Set(names[i], names[j], float64(i*100+j)/8); err != nil {
				t.Fatal(err)
			}
		}
	}
	var dense, tiled bytes.Buffer
	if err := m.Encode(&dense); err != nil {
		t.Fatal(err)
	}
	if err := m.EncodeTiles(&tiled); err != nil {
		t.Fatal(err)
	}
	fromDense, err := DecodeMatrix(&dense)
	if err != nil {
		t.Fatal(err)
	}
	fromTiles, err := DecodeTiles(&tiled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if fromDense.At(i, j) != fromTiles.At(i, j) {
				t.Fatalf("cell (%d,%d): dense %v vs tiled %v", i, j, fromDense.At(i, j), fromTiles.At(i, j))
			}
		}
	}
}

func TestDecodeTilesErrors(t *testing.T) {
	valid := func() string {
		m, _ := NewMatrix([]string{"a", "b", "c"})
		_ = m.Set("a", "b", 1)
		var buf bytes.Buffer
		_ = m.EncodeTiles(&buf)
		return buf.String()
	}()
	cases := map[string]string{
		"empty":          "",
		"bad header":     "tingmatrix n=3\na b c\nend\n",
		"bad dim":        "tingtiles n=3 dim=32\na b c\nend\n",
		"tiny":           "tingtiles n=1 dim=64\na\nend\n",
		"missing names":  "tingtiles n=3 dim=64\n",
		"short names":    "tingtiles n=3 dim=64\na b\nend\n",
		"missing end":    strings.TrimSuffix(valid, "end\n"),
		"trailing junk":  valid + "extra\n",
		"bad record":     "tingtiles n=3 dim=64\na b c\nbogus 0 0\nend\n",
		"tile oob":       "tingtiles n=3 dim=64\na b c\ntile 4 0\n0 0 0\n0 0 0\n0 0 0\nend\n",
		"truncated tile": "tingtiles n=3 dim=64\na b c\ntile 0 0\n0 1 0\nend\n",
		"short row":      "tingtiles n=3 dim=64\na b c\ntile 0 0\n0 1\n1 0 0\n0 0 0\nend\n",
		"non-finite":     "tingtiles n=3 dim=64\na b c\ntile 0 0\n0 NaN 0\nNaN 0 0\n0 0 0\nend\n",
		"duplicate tile": "tingtiles n=3 dim=64\na b c\ntile 0 0\n0 1 0\n1 0 0\n0 0 0\ntile 0 0\n0 1 0\n1 0 0\n0 0 0\nend\n",
	}
	for name, doc := range cases {
		if _, err := DecodeTiles(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeTiles(strings.NewReader(valid)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestDecodeMatrixStaysSparse(t *testing.T) {
	// Dense documents full of zeros decode without materializing tiles:
	// the decoded matrix must still report zero everywhere but Encode
	// identically to its source.
	names := tileNames(TileDim + 1)
	m, err := NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set(names[0], names[TileDim], 2.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	got, err := DecodeMatrix(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tiles := 0
	for _, row := range got.tiles {
		for _, tl := range row {
			if tl != nil {
				tiles++
			}
		}
	}
	if tiles != 2 {
		t.Errorf("decode materialized %d tiles, want 2 (the mirrored written pair)", tiles)
	}
	var again bytes.Buffer
	if err := got.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != doc {
		t.Error("sparse decode re-encodes differently")
	}
}

func TestMatrixSetPredictedAndConfidence(t *testing.T) {
	m, err := NewMatrix(tileNames(TileDim + 3)) // span a tile boundary
	if err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	if err := m.Set(names[0], names[1], 10); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv(names[0], names[1], ProvFresh); err != nil {
		t.Fatal(err)
	}
	// Measured cells read confidence 1 both ways.
	if c := m.Conf(names[0], names[1]); c != 1 {
		t.Errorf("measured Conf = %v, want 1", c)
	}
	if c := m.ConfAt(1, 0); c != 1 {
		t.Errorf("measured ConfAt(j,i) = %v, want 1", c)
	}
	// Predicted cell across the tile boundary.
	x, y := names[2], names[TileDim+1]
	if err := m.SetPredicted(x, y, 73.5, 0.8); err != nil {
		t.Fatal(err)
	}
	if p := m.Prov(x, y); p != ProvPredicted {
		t.Errorf("Prov = %v, want predicted", p)
	}
	if p := m.Prov(y, x); p != ProvPredicted {
		t.Errorf("Prov transposed = %v, want predicted", p)
	}
	if v, err := m.RTT(x, y); err != nil || v != 73.5 {
		t.Errorf("RTT = %v, %v", v, err)
	}
	// Confidence is quantized to a byte: 0.8 → round(0.8·255)/255.
	q := 0.8*255 + 0.5
	want := float64(uint8(q)) / 255
	if c := m.Conf(x, y); c != want {
		t.Errorf("Conf = %v, want %v", c, want)
	}
	xi, _ := m.Index(x)
	yi, _ := m.Index(y)
	if m.ConfAt(xi, yi) != m.ConfAt(yi, xi) {
		t.Error("predicted confidence asymmetric")
	}
	// Out-of-range confidence clamps rather than wrapping the byte.
	if err := m.SetPredicted(names[3], names[4], 5, 1.7); err != nil {
		t.Fatal(err)
	}
	if c := m.Conf(names[3], names[4]); c != 1 {
		t.Errorf("clamped Conf = %v, want 1", c)
	}
	if err := m.SetPredicted(names[5], names[6], 5, -0.3); err != nil {
		t.Fatal(err)
	}
	if c := m.Conf(names[5], names[6]); c != 0 {
		t.Errorf("clamped Conf = %v, want 0", c)
	}
	// Diagonal and untouched cells.
	if c := m.ConfAt(2, 2); c != 1 {
		t.Errorf("diagonal ConfAt = %v, want 1", c)
	}
	if c := m.Conf(names[7], names[8]); c != 0 {
		t.Errorf("missing-cell Conf = %v, want 0", c)
	}
	// ProvCounts sees the predicted cells; a clone carries confidence.
	pc := m.ProvCounts()
	if pc.Predicted != 3 || pc.Fresh != 1 {
		t.Errorf("ProvCounts = %+v, want 3 predicted / 1 fresh", pc)
	}
	cl := m.Clone()
	if c := cl.Conf(x, y); c != want {
		t.Errorf("clone Conf = %v, want %v", c, want)
	}
	// SetPredicted on unknown names errors like Set does.
	if err := m.SetPredicted("nope", names[0], 1, 0.5); err == nil {
		t.Error("unknown relay accepted")
	}
	if err := m.SetPredicted(names[0], names[0], 1, 0.5); err == nil {
		t.Error("self pair accepted")
	}
}

// TestMatrixEncodePredictedRoundTrip: the text document must carry
// predicted provenance and confidence through a round trip (exactly — the
// quantized byte is persisted, not a float), and fully-measured matrices
// must encode with no trailer at all so old documents stay valid.
func TestMatrixEncodePredictedRoundTrip(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	m, err := NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			m.Set(names[i], names[j], float64(10*(i+j)))
			m.SetProv(names[i], names[j], ProvFresh)
		}
	}
	if err := m.SetPredicted("a", "c", 31.5, 0.73); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPredicted("b", "d", 44.25, 0.41); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "pred "); got != 2 {
		t.Fatalf("document has %d pred records, want 2:\n%s", got, buf.String())
	}
	got, err := DecodeMatrix(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Prov("a", "c"); p != ProvPredicted {
		t.Errorf("a-c provenance %v after round trip, want predicted", p)
	}
	if p := got.Prov("c", "a"); p != ProvPredicted {
		t.Errorf("pred record applied one-directionally")
	}
	if got.Conf("a", "c") != m.Conf("a", "c") || got.Conf("b", "d") != m.Conf("b", "d") {
		t.Errorf("confidence drifted: (%v,%v) vs (%v,%v)",
			got.Conf("a", "c"), got.Conf("b", "d"), m.Conf("a", "c"), m.Conf("b", "d"))
	}
	if v, _ := got.RTT("a", "c"); v != 31.5 {
		t.Errorf("predicted value %v after round trip, want 31.5", v)
	}
	// Measured provenance stays runtime-only.
	if p := got.Prov("a", "b"); p == ProvFresh {
		t.Error("measured provenance unexpectedly persisted")
	}

	// No predicted cells → no trailer.
	m2, _ := NewMatrix(names)
	m2.Set("a", "b", 5)
	var buf2 bytes.Buffer
	if err := m2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "pred") {
		t.Errorf("fully-measured matrix grew a trailer:\n%s", buf2.String())
	}

	// Malformed trailers are errors, not silent skips.
	for _, bad := range []string{"pred 0 9 100", "pred 1 1 100", "pred 0 2 300", "junk"} {
		doc := buf2.String() + bad + "\n"
		if _, err := DecodeMatrix(strings.NewReader(doc)); err == nil {
			t.Errorf("trailer %q accepted", bad)
		}
	}
}
