package ting

import (
	"sync"
	"time"
)

// DeadlineEstimator replaces the scanner's one-size-fits-all attempt
// deadline with an RTT-aware one. "Performance analysis of a Tor-like
// onion routing implementation" (PAPERS.md) observes that fixed deadlines
// make tail timeouts dominate campaign cost: one wedged pair holds a
// worker for the full PairTimeout even when every healthy pair completes
// in milliseconds. The estimator tracks an EWMA of observed successful
// attempt durations plus an EWMA of their absolute deviation (a robust
// MAD-style spread proxy) — globally and per relay — and bounds each
// attempt at
//
//	deadline = clamp(mean + K·dev, Min, Max)
//
// using the slower of the pair's two relay estimates (falling back to the
// global one until a relay has warmed up). Until Warmup observations
// exist, Deadline reports not-ready and the caller keeps its fixed
// deadline. All methods are safe for concurrent use by scanner workers.
type DeadlineEstimator struct {
	// Min and Max clamp every emitted deadline: Min keeps a lucky streak
	// of fast pairs from strangling a legitimately slow one, Max is the
	// campaign's fixed PairTimeout ceiling (0 = unbounded).
	Min, Max time.Duration
	// K is the spread multiplier; default 4.
	K float64
	// Alpha is the EWMA weight of each new observation; default 0.25.
	Alpha float64
	// Warmup is how many observations a statistic needs before it is
	// trusted; default 3.
	Warmup int
	// Observer, if non-nil, receives DeadlineSet for every adaptive
	// deadline handed out.
	Observer *Observer

	mu     sync.Mutex
	global ewmaStat
	relays map[string]*ewmaStat
}

// ewmaStat is one EWMA mean + EWMA absolute-deviation pair, in
// milliseconds.
type ewmaStat struct {
	n    int
	mean float64
	dev  float64
}

func (s *ewmaStat) observe(ms, alpha float64) {
	if s.n == 0 {
		s.mean = ms
	} else {
		d := ms - s.mean
		if d < 0 {
			d = -d
		}
		s.dev = (1-alpha)*s.dev + alpha*d
		s.mean = (1-alpha)*s.mean + alpha*ms
	}
	s.n++
}

// NewDeadlineEstimator creates an estimator clamped to [min, max].
func NewDeadlineEstimator(min, max time.Duration, obs *Observer) *DeadlineEstimator {
	return &DeadlineEstimator{
		Min:      min,
		Max:      max,
		Observer: obs,
		relays:   make(map[string]*ewmaStat),
	}
}

func (e *DeadlineEstimator) params() (k, alpha float64, warmup int) {
	k, alpha, warmup = e.K, e.Alpha, e.Warmup
	if k <= 0 {
		k = 4
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	if warmup <= 0 {
		warmup = 3
	}
	return k, alpha, warmup
}

// Observe feeds one successful attempt's wall-clock duration into the
// pair's relay statistics and the global one. Failures are never fed in:
// a timeout's duration is the old deadline, not the pair's RTT.
func (e *DeadlineEstimator) Observe(x, y string, elapsed time.Duration) {
	ms := float64(elapsed) / float64(time.Millisecond)
	_, alpha, _ := e.params()
	e.mu.Lock()
	e.global.observe(ms, alpha)
	for _, name := range []string{x, y} {
		s := e.relays[name]
		if s == nil {
			s = &ewmaStat{}
			e.relays[name] = s
		}
		s.observe(ms, alpha)
	}
	e.mu.Unlock()
}

// Forget drops one relay's statistics — churn invalidation: a rotated or
// re-joined relay's history does not describe its new incarnation.
func (e *DeadlineEstimator) Forget(name string) {
	e.mu.Lock()
	delete(e.relays, name)
	e.mu.Unlock()
}

// Deadline returns the adaptive attempt deadline for a pair, or ok=false
// while the estimator is still warming up (the caller falls back to its
// fixed deadline). The pair is bounded by the slower of its two relays'
// estimates so an asymmetric pair is not strangled by its fast end.
func (e *DeadlineEstimator) Deadline(x, y string) (time.Duration, bool) {
	k, _, warmup := e.params()
	e.mu.Lock()
	best := ewmaStat{}
	ready := false
	for _, name := range []string{x, y} {
		if s := e.relays[name]; s != nil && s.n >= warmup {
			ready = true
			if bound(s, k) > bound(&best, k) {
				best = *s
			}
		}
	}
	if !ready && e.global.n >= warmup {
		ready = true
		best = e.global
	}
	e.mu.Unlock()
	if !ready {
		return 0, false
	}
	d := time.Duration(bound(&best, k) * float64(time.Millisecond))
	if e.Min > 0 && d < e.Min {
		d = e.Min
	}
	if e.Max > 0 && d > e.Max {
		d = e.Max
	}
	e.Observer.deadlineSet(x, y, d)
	return d, true
}

// bound is the μ + K·dev envelope of one statistic, in milliseconds.
func bound(s *ewmaStat, k float64) float64 {
	return s.mean + k*s.dev
}
