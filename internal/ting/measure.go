package ting

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ting/internal/stats"
)

// DefaultSamples is the per-circuit sample count used for the paper's
// main experiments ("For the remainder of the experiments in this paper,
// we continue using 200 samples", §4.4).
const DefaultSamples = 200

// Config configures a Measurer.
type Config struct {
	// Prober takes the circuit samples. Required.
	Prober CircuitProber
	// W and Z name the measurer's two local relays. Required.
	W, Z string
	// Samples is the per-circuit sample count; default DefaultSamples.
	Samples int
	// Observer, if non-nil, receives measurement-lifecycle callbacks
	// (circuit timings, raw samples, pair results). Use
	// NewTelemetryObserver to feed a telemetry.Registry.
	Observer *Observer
	// HalfCircuits, if non-nil, memoizes min R_Cx per half circuit so
	// repeated pairs sharing an endpoint reuse the series (§3.3/§4.6)
	// instead of re-sampling it. Sharing one cache across the Measurers of
	// a scan — the Scanner does this automatically — cuts an N-node
	// all-pairs campaign from 3·pairs circuit series to pairs + N.
	HalfCircuits *HalfCache
}

// Measurer measures RTTs between arbitrary relay pairs.
//
// A Measurer is not safe for concurrent use: it reuses internal scratch
// (circuit paths, sample buffers) across measurements to keep the all-pairs
// scan loop allocation-free. The Scanner gives each worker its own Measurer
// via Config.NewMeasurer. Path slices handed to observers and probers alias
// that scratch and are only valid until the next measurement; anything that
// outlives the call (CircuitError, the half-circuit store hook) gets a
// private copy.
type Measurer struct {
	cfg Config
	// pathBuf backs the three circuit paths of one pair measurement:
	// [W x | W x y Z | W y].
	pathBuf [8]string
	// sbuf is the reused sample buffer for probers implementing SamplerInto.
	sbuf []float64
}

// SamplerInto is an optional CircuitProber extension: SampleCircuitInto
// takes len(out) samples into a caller-owned buffer instead of allocating a
// fresh slice per circuit. The Measurer detects it and reuses one buffer
// across every circuit it measures.
type SamplerInto interface {
	SampleCircuitInto(ctx context.Context, path []string, out []float64) error
}

// NewMeasurer validates cfg and returns a Measurer.
func NewMeasurer(cfg Config) (*Measurer, error) {
	if cfg.Prober == nil {
		return nil, errors.New("ting: config missing Prober")
	}
	if cfg.W == "" || cfg.Z == "" {
		return nil, errors.New("ting: config missing local relays W and Z")
	}
	if cfg.W == cfg.Z {
		return nil, errors.New("ting: W and Z must be distinct relays")
	}
	if cfg.Samples == 0 {
		cfg.Samples = DefaultSamples
	}
	if cfg.Samples < 0 {
		return nil, fmt.Errorf("ting: negative sample count %d", cfg.Samples)
	}
	return &Measurer{cfg: cfg}, nil
}

// Samples returns the configured per-circuit sample count.
func (m *Measurer) Samples() int { return m.cfg.Samples }

// Close releases resources the prober holds (cached circuits, open
// streams). Probers without a Close method make this a no-op.
func (m *Measurer) Close() {
	if c, ok := m.cfg.Prober.(interface{ Close() }); ok {
		c.Close()
	}
}

// Measurement is the result of one pair measurement.
type Measurement struct {
	X, Y string
	// RTT is the Eq. (4) estimate of R(x,y) in milliseconds. Its expected
	// error is +F_x+F_y, the two relays' floor forwarding delays.
	RTT float64
	// MinFull, MinX, MinY are the minimum sampled RTTs of C_xy, C_x, C_y.
	MinFull, MinX, MinY float64
	// SamplesPerCircuit records the sample count used.
	SamplesPerCircuit int
	// Elapsed is the wall-clock measurement time.
	Elapsed time.Duration
}

// CircuitError reports which of a pair measurement's three circuits
// failed. The health scoreboard uses Path to attribute the failure to the
// relay actually implicated (C_x charges x, C_y charges y, C_xy both)
// instead of blaming both endpoints of the pair.
type CircuitError struct {
	// Circuit is "C_x", "C_xy", or "C_y" (§3.3 naming).
	Circuit string
	// Path is the failing circuit's relay path.
	Path []string
	Err  error
}

func (e *CircuitError) Error() string { return "ting: " + e.Circuit + ": " + e.Err.Error() }

// Unwrap exposes the underlying transport or cancellation error.
func (e *CircuitError) Unwrap() error { return e.Err }

// MeasurePair measures R(x, y) per §3.3: it builds the full circuit
// (w,x,y,z) plus the two isolation circuits (w,x) and (w,y), min-filters
// the samples, and applies Eq. (4). Cancellation is cooperative: ctx is
// checked before each of the three circuit measurements, and every prober
// additionally aborts mid-circuit — so a cancelled scan stops within a
// few samples rather than burning the rest of the campaign. Failures are
// reported as *CircuitError naming the circuit that broke.
func (m *Measurer) MeasurePair(ctx context.Context, x, y string) (*Measurement, error) {
	if err := m.checkPair(x, y); err != nil {
		return nil, err
	}
	start := time.Now()
	minFull, minX, minY, cerr := m.measureMins(ctx, x, y)
	if cerr != nil {
		m.cfg.Observer.pairDone(x, y, nil, cerr.Err)
		return nil, cerr
	}
	res := &Measurement{
		X: x, Y: y,
		RTT:               Estimate(minFull, minX, minY),
		MinFull:           minFull,
		MinX:              minX,
		MinY:              minY,
		SamplesPerCircuit: m.cfg.Samples,
		Elapsed:           time.Since(start),
	}
	m.cfg.Observer.pairDone(x, y, res, nil)
	return res, nil
}

// measurePairRTT is the scanner's fast path: just the Eq. (4) estimate,
// with the full Measurement materialized only when an observer is
// listening for it — otherwise the per-pair loop performs no heap
// allocation at all.
func (m *Measurer) measurePairRTT(ctx context.Context, x, y string) (float64, error) {
	if err := m.checkPair(x, y); err != nil {
		return 0, err
	}
	wantPair := m.cfg.Observer != nil && m.cfg.Observer.PairDone != nil
	var start time.Time
	if wantPair {
		start = time.Now()
	}
	minFull, minX, minY, cerr := m.measureMins(ctx, x, y)
	if cerr != nil {
		m.cfg.Observer.pairDone(x, y, nil, cerr.Err)
		return 0, cerr
	}
	rtt := Estimate(minFull, minX, minY)
	if wantPair {
		m.cfg.Observer.PairDone(x, y, &Measurement{
			X: x, Y: y,
			RTT:               rtt,
			MinFull:           minFull,
			MinX:              minX,
			MinY:              minY,
			SamplesPerCircuit: m.cfg.Samples,
			Elapsed:           time.Since(start),
		}, nil)
	}
	return rtt, nil
}

// measureMins runs the three circuit series of one pair over scratch-backed
// paths. A non-nil *CircuitError names the failing circuit and carries a
// private copy of its path (the scratch is overwritten by the next pair).
func (m *Measurer) measureMins(ctx context.Context, x, y string) (minFull, minX, minY float64, cerr *CircuitError) {
	// C_x first, then the full circuit: the full path extends C_x's, so a
	// reusing prober (leaky-pipe extension) grows one circuit instead of
	// building two. The estimate is order-independent.
	m.pathBuf = [8]string{m.cfg.W, x, m.cfg.W, x, y, m.cfg.Z, m.cfg.W, y}
	pathX := m.pathBuf[0:2:2]
	pathFull := m.pathBuf[2:6:6]
	pathY := m.pathBuf[6:8:8]
	minX, err := m.minRTT(ctx, pathX)
	if err != nil {
		return 0, 0, 0, &CircuitError{Circuit: "C_x", Path: clonePath(pathX), Err: err}
	}
	minFull, err = m.minRTT(ctx, pathFull)
	if err != nil {
		return 0, 0, 0, &CircuitError{Circuit: "C_xy", Path: clonePath(pathFull), Err: err}
	}
	minY, err = m.minRTT(ctx, pathY)
	if err != nil {
		return 0, 0, 0, &CircuitError{Circuit: "C_y", Path: clonePath(pathY), Err: err}
	}
	return minFull, minX, minY, nil
}

func clonePath(path []string) []string { return append([]string(nil), path...) }

// Estimate applies Eq. (4): R(x,y) = R_Cxy − ½R_Cx − ½R_Cy.
func Estimate(minFull, minX, minY float64) float64 {
	return minFull - minX/2 - minY/2
}

func (m *Measurer) checkPair(x, y string) error {
	switch {
	case x == "" || y == "":
		return errors.New("ting: empty relay name")
	case x == y:
		return fmt.Errorf("ting: cannot measure %q against itself", x)
	case x == m.cfg.W || x == m.cfg.Z || y == m.cfg.W || y == m.cfg.Z:
		return errors.New("ting: target pair must not include the local relays")
	}
	return nil
}

// minRTT takes the configured number of samples through path and returns
// the minimum — the aggregation that makes forwarding delays vanish from
// the estimate (§3.3). Half circuits (w, x) are memoized through
// Config.HalfCircuits when one is set: min R_Cx depends only on x, so the
// series is worth exactly one measurement per freshness window.
func (m *Measurer) minRTT(ctx context.Context, path []string) (float64, error) {
	if m.cfg.HalfCircuits != nil && len(path) == 2 {
		return m.cfg.HalfCircuits.Do(ctx, path, m.cfg.Samples, m.cfg.Observer,
			func(ctx context.Context) (float64, error) {
				return m.measureMin(ctx, path)
			})
	}
	return m.measureMin(ctx, path)
}

// measureMin is the uncached sampling path behind minRTT. Probers
// implementing SamplerInto fill the Measurer's reused sample buffer;
// others keep the allocating SampleCircuit contract.
func (m *Measurer) measureMin(ctx context.Context, path []string) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	start := time.Now()
	var samples []float64
	var err error
	if si, ok := m.cfg.Prober.(SamplerInto); ok {
		if cap(m.sbuf) < m.cfg.Samples {
			m.sbuf = make([]float64, m.cfg.Samples)
		}
		samples = m.sbuf[:m.cfg.Samples]
		if err = si.SampleCircuitInto(ctx, path, samples); err != nil {
			samples = nil
		}
	} else {
		samples, err = m.cfg.Prober.SampleCircuit(ctx, path, m.cfg.Samples)
	}
	m.cfg.Observer.circuitDone(path, len(samples), time.Since(start), err)
	if err != nil {
		return 0, err
	}
	m.cfg.Observer.samples(path, samples)
	return stats.Min(samples)
}

// SampleSeries exposes the raw per-sample RTTs of one circuit — the data
// behind the sample-size analysis of §4.4 (Figure 6).
func (m *Measurer) SampleSeries(ctx context.Context, x, y string, n int) ([]float64, error) {
	if err := m.checkPair(x, y); err != nil {
		return nil, err
	}
	return m.cfg.Prober.SampleCircuit(ctx, []string{m.cfg.W, x, y, m.cfg.Z}, n)
}

// ForwardingEstimate is the §4.3 forwarding-delay estimate for one relay,
// computed with both ICMP- and TCP-based direct RTTs. On networks that
// treat protocols differently the two disagree and can go negative —
// Figure 5's "extremely odd behavior".
type ForwardingEstimate struct {
	X string
	// ICMPMs and TCPMs are F_x estimated with ping and tcptraceroute
	// respectively, in milliseconds.
	ICMPMs float64
	TCPMs  float64
	// LocalMs is F_w = F_z, the local relays' delay from step (4).
	LocalMs float64
}

// EstimateForwarding reproduces the §4.3 procedure for relay x:
//
//  1. measure R_C1 over circuit (w, z);
//  2. estimate F_w = F_z = (R_C1 − R̃(s,w) − R̃(z,d)) / 2;
//  3. measure R_C2 over circuit (w, x, z);
//  4. F_x = R_C2 − F_w − F_z − 2·R̃(w,x) − 2·R̃(s,w).
//
// Direct RTTs R̃ are min-of-pingSamples via ICMP and, separately, TCP.
func (m *Measurer) EstimateForwarding(ctx context.Context, x string, direct DirectProber, pingSamples int) (*ForwardingEstimate, error) {
	if x == "" || x == m.cfg.W || x == m.cfg.Z {
		return nil, fmt.Errorf("ting: invalid forwarding target %q", x)
	}
	if pingSamples <= 0 {
		return nil, errors.New("ting: pingSamples must be positive")
	}
	rc1, err := m.minRTT(ctx, []string{m.cfg.W, m.cfg.Z})
	if err != nil {
		return nil, fmt.Errorf("ting: C1: %w", err)
	}
	rc2, err := m.minRTT(ctx, []string{m.cfg.W, x, m.cfg.Z})
	if err != nil {
		return nil, fmt.Errorf("ting: C2: %w", err)
	}
	// w and z run on the measurement host: R̃(s,w) and R̃(z,d) are
	// loopback, effectively zero, and R̃(w,x) equals the host↔x direct RTT.
	fLocal := rc1 / 2

	icmp, err := minDirect(direct.Ping, x, pingSamples)
	if err != nil {
		return nil, fmt.Errorf("ting: ping %s: %w", x, err)
	}
	tcp, err := minDirect(direct.TCPPing, x, pingSamples)
	if err != nil {
		return nil, fmt.Errorf("ting: tcpping %s: %w", x, err)
	}
	// The (w,x,z) circuit crosses the host↔x distance twice per round trip
	// (w→x out, x→z back, and again on the pong), i.e. two direct RTTs.
	return &ForwardingEstimate{
		X:       x,
		ICMPMs:  rc2 - 2*fLocal - 2*icmp,
		TCPMs:   rc2 - 2*fLocal - 2*tcp,
		LocalMs: fLocal,
	}, nil
}

func minDirect(probe func(string) (float64, error), target string, n int) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		v, err := probe(target)
		if err != nil {
			return 0, err
		}
		if i == 0 || v < best {
			best = v
		}
	}
	return best, nil
}
