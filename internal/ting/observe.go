package ting

import (
	"fmt"
	"strings"
	"time"

	"ting/internal/telemetry"
)

// Observer receives measurement-lifecycle callbacks from the Measurer,
// Scanner, and Monitor. It is a struct of optional funcs rather than an
// interface so new hooks can be added without breaking implementors; a nil
// Observer — or any nil field — is a no-op. All callbacks may be invoked
// concurrently from scanner workers and must be safe for that.
type Observer struct {
	// CircuitDone fires after each circuit's sampling attempt, successful
	// or not. samples is the number of RTTs actually collected.
	CircuitDone func(path []string, samples int, elapsed time.Duration, err error)
	// Samples fires with the raw RTT series of one successful circuit.
	Samples func(path []string, rtts []float64)
	// PairDone fires once per MeasurePair: m is nil exactly when err is
	// non-nil.
	PairDone func(x, y string, m *Measurement, err error)
	// Retry fires when the scanner schedules another attempt for a pair.
	Retry func(x, y string, attempt int, delay time.Duration, err error)
	// CacheLookup fires on every scanner cache probe.
	CacheLookup func(x, y string, hit bool)
	// WorkerActive fires when a scanner worker starts (+1) or finishes
	// (−1) a measurement attempt — worker occupancy.
	WorkerActive func(delta int)
	// SweepDone fires after each monitor sweep with cumulative stats.
	SweepDone func(stats MonitorStats)
	// HalfCircuit fires on every half-circuit cache consultation with the
	// outcome: served from cache, measured fresh, or waited on another
	// worker's in-flight measurement.
	HalfCircuit func(path []string, ev HalfCircuitEvent)
	// CheckpointAppend fires after each record reaches the campaign log.
	CheckpointAppend func(rec *CheckpointRecord)
	// CheckpointReplay fires once per Resume with how many completed
	// pairs and memoized half-circuit series were rehydrated.
	CheckpointReplay func(pairs, halves int)
	// BreakerChange fires when a relay's circuit breaker transitions.
	BreakerChange func(relay string, from, to BreakerState)
	// Quarantine fires when the scanner defers a pair blocked by relay's
	// open breaker (final=false) and again if the pair is given up as
	// ErrQuarantined at the end of the scan (final=true).
	Quarantine func(x, y, relay string, final bool)
	// Churn fires once per consensus delta the scanner reconciled
	// mid-scan: a relay joined, left, or rotated its key.
	Churn func(ev ChurnEvent)
	// DeadlineSet fires when the adaptive deadline estimator bounds a
	// pair's attempt at d instead of the fixed PairTimeout.
	DeadlineSet func(x, y string, d time.Duration)
	// BudgetComplete fires once at the end of a ScanBudget campaign with
	// how many pairs were actually measured out of the full pair space —
	// the budgeted mode's savings summary.
	BudgetComplete func(measured, allPairs int)
}

// HalfCircuitEvent classifies one HalfCache consultation.
type HalfCircuitEvent int

const (
	// HalfCircuitHit: the half circuit was served from the cache.
	HalfCircuitHit HalfCircuitEvent = iota
	// HalfCircuitMiss: this caller measured the half circuit itself.
	HalfCircuitMiss
	// HalfCircuitWait: another worker was already measuring it; this
	// caller blocked on that flight instead of duplicating the series.
	HalfCircuitWait
)

// Nil-safe invocation helpers: call sites never branch on the observer.

func (o *Observer) circuitDone(path []string, samples int, elapsed time.Duration, err error) {
	if o != nil && o.CircuitDone != nil {
		o.CircuitDone(path, samples, elapsed, err)
	}
}

func (o *Observer) samples(path []string, rtts []float64) {
	if o != nil && o.Samples != nil {
		o.Samples(path, rtts)
	}
}

func (o *Observer) pairDone(x, y string, m *Measurement, err error) {
	if o != nil && o.PairDone != nil {
		o.PairDone(x, y, m, err)
	}
}

func (o *Observer) retry(x, y string, attempt int, delay time.Duration, err error) {
	if o != nil && o.Retry != nil {
		o.Retry(x, y, attempt, delay, err)
	}
}

func (o *Observer) cacheLookup(x, y string, hit bool) {
	if o != nil && o.CacheLookup != nil {
		o.CacheLookup(x, y, hit)
	}
}

func (o *Observer) workerActive(delta int) {
	if o != nil && o.WorkerActive != nil {
		o.WorkerActive(delta)
	}
}

func (o *Observer) sweepDone(stats MonitorStats) {
	if o != nil && o.SweepDone != nil {
		o.SweepDone(stats)
	}
}

func (o *Observer) halfCircuit(path []string, ev HalfCircuitEvent) {
	if o != nil && o.HalfCircuit != nil {
		o.HalfCircuit(path, ev)
	}
}

func (o *Observer) checkpointAppend(rec *CheckpointRecord) {
	if o != nil && o.CheckpointAppend != nil {
		o.CheckpointAppend(rec)
	}
}

func (o *Observer) checkpointReplay(pairs, halves int) {
	if o != nil && o.CheckpointReplay != nil {
		o.CheckpointReplay(pairs, halves)
	}
}

func (o *Observer) breakerChange(relay string, from, to BreakerState) {
	if o != nil && o.BreakerChange != nil {
		o.BreakerChange(relay, from, to)
	}
}

func (o *Observer) quarantine(x, y, relay string, final bool) {
	if o != nil && o.Quarantine != nil {
		o.Quarantine(x, y, relay, final)
	}
}

func (o *Observer) churn(ev ChurnEvent) {
	if o != nil && o.Churn != nil {
		o.Churn(ev)
	}
}

func (o *Observer) deadlineSet(x, y string, d time.Duration) {
	if o != nil && o.DeadlineSet != nil {
		o.DeadlineSet(x, y, d)
	}
}

func (o *Observer) budgetComplete(measured, allPairs int) {
	if o != nil && o.BudgetComplete != nil {
		o.BudgetComplete(measured, allPairs)
	}
}

// NewTelemetryObserver wires an Observer into a telemetry.Registry. All
// metrics are resolved once here, so the per-event cost is an atomic add
// (plus a trace record for lifecycle events). Metric names:
//
//	ting.circuits_sampled / ting.circuit_failures   counters
//	ting.circuit_ms                                 histogram
//	ting.samples                                    counter
//	ting.sample_rtt_ms                              histogram
//	ting.pairs_measured / ting.pair_failures        counters
//	ting.pair_rtt_ms                                histogram
//	ting.retries                                    counter
//	ting.cache_hits / ting.cache_misses             counters
//	ting.halfcircuit.hit / ting.halfcircuit.miss    counters
//	ting.halfcircuit.inflight_wait                  counter
//	ting.scanner_active_workers                     gauge
//	ting.sweeps                                     counter
//	ting.checkpoint.appended                        counter
//	ting.checkpoint.replayed                        counter
//	ting.health.breaker_open                        gauge (breakers currently open)
//	ting.quarantined_pairs                          counter
//	ting.churn.joined / ting.churn.removed          counters
//	ting.churn.rotated                              counter
//	ting.churn.tombstoned_pairs                     counter
//	ting.deadline.adaptive_ms                       histogram
//	ting.budget.measured_pairs                      counter
//	ting.budget.predicted_pairs                     counter
//
// A nil registry yields a valid Observer whose callbacks are no-ops.
func NewTelemetryObserver(reg *telemetry.Registry) *Observer {
	var (
		circuits     = reg.Counter("ting.circuits_sampled")
		circuitFails = reg.Counter("ting.circuit_failures")
		circuitMs    = reg.Histogram("ting.circuit_ms")
		samples      = reg.Counter("ting.samples")
		sampleRTT    = reg.Histogram("ting.sample_rtt_ms")
		pairs        = reg.Counter("ting.pairs_measured")
		pairFails    = reg.Counter("ting.pair_failures")
		pairRTT      = reg.Histogram("ting.pair_rtt_ms")
		retries      = reg.Counter("ting.retries")
		cacheHits    = reg.Counter("ting.cache_hits")
		cacheMisses  = reg.Counter("ting.cache_misses")
		halfHits     = reg.Counter("ting.halfcircuit.hit")
		halfMisses   = reg.Counter("ting.halfcircuit.miss")
		halfWaits    = reg.Counter("ting.halfcircuit.inflight_wait")
		active       = reg.Gauge("ting.scanner_active_workers")
		sweeps       = reg.Counter("ting.sweeps")
		cpAppended   = reg.Counter("ting.checkpoint.appended")
		cpReplayed   = reg.Counter("ting.checkpoint.replayed")
		breakersOpen = reg.Gauge("ting.health.breaker_open")
		quarantined  = reg.Counter("ting.quarantined_pairs")
		churnJoined  = reg.Counter("ting.churn.joined")
		churnRemoved = reg.Counter("ting.churn.removed")
		churnRotated = reg.Counter("ting.churn.rotated")
		tombstoned   = reg.Counter("ting.churn.tombstoned_pairs")
		adaptiveMs   = reg.Histogram("ting.deadline.adaptive_ms")
		budgetMeas   = reg.Counter("ting.budget.measured_pairs")
		budgetPred   = reg.Counter("ting.budget.predicted_pairs")
		trace        = reg.Trace()
	)
	return &Observer{
		CircuitDone: func(path []string, n int, elapsed time.Duration, err error) {
			ms := float64(elapsed) / float64(time.Millisecond)
			if err != nil {
				circuitFails.Inc()
				trace.Record("circuit", strings.Join(path, ",")+": "+err.Error(), ms)
				return
			}
			circuits.Inc()
			circuitMs.Observe(ms)
			trace.Record("circuit", strings.Join(path, ","), ms)
		},
		Samples: func(path []string, rtts []float64) {
			samples.Add(int64(len(rtts)))
			for _, v := range rtts {
				sampleRTT.Observe(v)
			}
		},
		PairDone: func(x, y string, m *Measurement, err error) {
			if err != nil {
				pairFails.Inc()
				trace.Record("pair", x+"-"+y+": "+err.Error(), 0)
				return
			}
			pairs.Inc()
			pairRTT.Observe(m.RTT)
			trace.Record("pair", x+"-"+y, m.RTT)
		},
		Retry: func(x, y string, attempt int, delay time.Duration, err error) {
			retries.Inc()
			detail := fmt.Sprintf("%s-%s attempt %d", x, y, attempt)
			if err != nil {
				detail += ": " + err.Error()
			}
			trace.Record("retry", detail, float64(delay)/float64(time.Millisecond))
		},
		CacheLookup: func(x, y string, hit bool) {
			if hit {
				cacheHits.Inc()
				trace.Record("cache", "hit "+x+"-"+y, 0)
			} else {
				cacheMisses.Inc()
			}
		},
		HalfCircuit: func(path []string, ev HalfCircuitEvent) {
			switch ev {
			case HalfCircuitHit:
				halfHits.Inc()
				trace.Record("halfcircuit", "hit "+strings.Join(path, ","), 0)
			case HalfCircuitMiss:
				halfMisses.Inc()
			case HalfCircuitWait:
				halfWaits.Inc()
			}
		},
		WorkerActive: func(delta int) {
			active.Add(int64(delta))
		},
		CheckpointAppend: func(rec *CheckpointRecord) {
			cpAppended.Inc()
		},
		CheckpointReplay: func(pairs, halves int) {
			cpReplayed.Add(int64(pairs + halves))
			trace.Record("checkpoint", fmt.Sprintf("replayed %d pairs, %d half circuits", pairs, halves), 0)
		},
		BreakerChange: func(relay string, from, to BreakerState) {
			if to == BreakerOpen {
				breakersOpen.Add(1)
			}
			if from == BreakerOpen {
				breakersOpen.Add(-1)
			}
			trace.Record("breaker", relay+": "+from.String()+" -> "+to.String(), 0)
		},
		Quarantine: func(x, y, relay string, final bool) {
			if final {
				quarantined.Inc()
				trace.Record("quarantine", x+"-"+y+" blocked by "+relay, 0)
			}
		},
		Churn: func(ev ChurnEvent) {
			switch ev.Kind {
			case ChurnJoined:
				churnJoined.Inc()
			case ChurnRemoved:
				churnRemoved.Inc()
			case ChurnRotated:
				churnRotated.Inc()
			}
			tombstoned.Add(int64(ev.Tombstoned))
			trace.Record("churn", fmt.Sprintf("%s %s at epoch %d (%d pairs tombstoned)",
				ev.Relay, ev.Kind, ev.Epoch, ev.Tombstoned), 0)
		},
		DeadlineSet: func(x, y string, d time.Duration) {
			adaptiveMs.Observe(float64(d) / float64(time.Millisecond))
		},
		BudgetComplete: func(measured, allPairs int) {
			budgetMeas.Add(int64(measured))
			budgetPred.Add(int64(allPairs - measured))
			trace.Record("budget", fmt.Sprintf("measured %d of %d pairs, predicted %d",
				measured, allPairs, allPairs-measured), 0)
		},
		SweepDone: func(stats MonitorStats) {
			sweeps.Inc()
			trace.Record("sweep", fmt.Sprintf("measured=%d skipped=%d failed=%d",
				stats.Measured, stats.Skipped, stats.Failed), 0)
		},
	}
}
