package ting

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"ting/internal/control"
	"ting/internal/faults"
	"ting/internal/geo"
	"ting/internal/inet"
	"ting/internal/stats"
	"ting/internal/telemetry"
	"ting/internal/tornet"
)

// buildOverlay builds an in-process overlay with exact, overridden RTTs
// for one (x, y) pair.
func buildOverlay(t *testing.T, scale float64) (*tornet.Net, string, string, float64) {
	t.Helper()
	topo, err := inet.Generate(inet.Config{N: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 48, Lon: 2}, 22)
	x, y := inet.NodeID(0), inet.NodeID(1)
	topo.OverrideRTT(host, x, 30)
	topo.OverrideRTT(host, y, 44)
	topo.OverrideRTT(x, y, 58)

	n, err := tornet.Build(tornet.Config{Topology: topo, Host: host, TimeScale: scale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	xName, _ := n.NodeName(x)
	yName, _ := n.NodeName(y)
	return n, xName, yName, 58
}

// TestFullStackTingMeasurement runs the complete technique over the real
// onion-routing stack: circuits built hop by hop with real handshakes,
// layered encryption, echo probes through the exit, Eq. (4) applied to
// minimums — and checks the estimate against the exact ground truth.
func TestFullStackTingMeasurement(t *testing.T) {
	n, xName, yName, truth := buildOverlay(t, 1.0)
	prober := &StackProber{
		Client:   n.Client,
		Registry: n.Registry,
		Target:   tornet.EchoTarget,
		ToMs:     n.VirtualMs,
	}
	m, err := NewMeasurer(Config{
		Prober:  prober,
		W:       tornet.WName,
		Z:       tornet.ZName,
		Samples: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.MeasurePair(context.Background(), xName, yName)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduling overhead inflates real-time measurements slightly; the
	// estimate must land within a few ms of the 58ms truth.
	if math.Abs(res.RTT-truth) > 12 {
		t.Errorf("full-stack Ting estimate %.2f ms, ground truth %.2f ms", res.RTT, truth)
	}
	if res.MinFull <= res.MinX/2+res.MinY/2 {
		t.Error("full-circuit RTT should exceed half-sums of isolation circuits")
	}
}

// TestControlProberTing drives the identical measurement through the
// control port — the deployment mode the paper used with Stem.
func TestControlProberTing(t *testing.T) {
	n, xName, yName, truth := buildOverlay(t, 1.0)

	srv, err := control.NewServer(control.ServerConfig{
		Client:   n.Client,
		Registry: n.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeControl(ctrlLn)
	go srv.ServeData(dataLn)

	conn, err := control.Dial(ctrlLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Authenticate(""); err != nil {
		t.Fatal(err)
	}

	prober := &ControlProber{
		Conn:     conn,
		DataAddr: dataLn.Addr().String(),
		Target:   tornet.EchoTarget,
		ToMs:     n.VirtualMs,
	}
	m, err := NewMeasurer(Config{
		Prober:  prober,
		W:       tornet.WName,
		Z:       tornet.ZName,
		Samples: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := m.MeasurePair(context.Background(), xName, yName)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RTT-truth) > 12 {
		t.Errorf("control-port Ting estimate %.2f ms, truth %.2f ms", res.RTT, truth)
	}
	if res.Elapsed <= 0 || time.Since(start) < res.Elapsed {
		t.Errorf("Elapsed bookkeeping wrong: %v", res.Elapsed)
	}
}

func TestControlProberValidation(t *testing.T) {
	p := &ControlProber{}
	if _, err := p.SampleCircuit(context.Background(), []string{"a", "b"}, 1); err == nil {
		t.Error("misconfigured control prober accepted")
	}
}

func TestReusingStackProber(t *testing.T) {
	n, xName, yName, truth := buildOverlay(t, 1.0)
	prober := &StackProber{
		Client:   n.Client,
		Registry: n.Registry,
		Target:   tornet.EchoTarget,
		ToMs:     n.VirtualMs,
		Reuse:    true,
	}
	defer prober.Close()
	m, err := NewMeasurer(Config{
		Prober:  prober,
		W:       tornet.WName,
		Z:       tornet.ZName,
		Samples: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.MeasurePair(context.Background(), xName, yName)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RTT-truth) > 12 {
		t.Errorf("reusing-prober estimate %.2f ms, truth %.2f ms", res.RTT, truth)
	}
	// The full circuit extended C_x instead of being rebuilt: w saw only
	// two CREATEs (C_x and C_y) for the pair's three circuits.
	circuits, _, _ := n.RelayByName(tornet.WName).Stats()
	if circuits != 2 {
		t.Errorf("entry relay built %d circuits, want 2 with reuse", circuits)
	}

	// A second pair on the same prober still measures correctly.
	res2, err := m.MeasurePair(context.Background(), xName, yName)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.RTT-truth) > 12 {
		t.Errorf("second reuse measurement %.2f ms, truth %.2f ms", res2.RTT, truth)
	}
}

func TestNonReusingProberBuildsThree(t *testing.T) {
	n, xName, yName, _ := buildOverlay(t, 0.25)
	prober := &StackProber{
		Client:   n.Client,
		Registry: n.Registry,
		Target:   tornet.EchoTarget,
		ToMs:     n.VirtualMs,
	}
	m, err := NewMeasurer(Config{
		Prober: prober, W: tornet.WName, Z: tornet.ZName, Samples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeasurePair(context.Background(), xName, yName); err != nil {
		t.Fatal(err)
	}
	circuits, _, _ := n.RelayByName(tornet.WName).Stats()
	if circuits != 3 {
		t.Errorf("entry relay built %d circuits, want 3 without reuse", circuits)
	}
}

// TestFullStackAllPairsScan is the capstone integration test: the complete
// §4.2-style workflow — parallel scanner, reusing probers, real circuits —
// over a compressed-time overlay, validated against exact ground truth by
// rank correlation (the paper reports Spearman 0.997).
func TestFullStackAllPairsScan(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack scan is seconds-long; skipped in -short")
	}
	topo, err := inet.Generate(inet.Config{N: 6, Seed: 31, FlatRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -74}, 32)
	n, err := tornet.Build(tornet.Config{Topology: topo, Host: host, TimeScale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	names := make([]string, 6)
	for i := range names {
		names[i], _ = n.NodeName(inet.NodeID(i))
	}
	var probers []*StackProber
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := &StackProber{
				Client:   n.Client,
				Registry: n.Registry,
				Target:   tornet.EchoTarget,
				ToMs:     n.VirtualMs,
				Reuse:    true,
			}
			probers = append(probers, p)
			return NewMeasurer(Config{Prober: p, W: tornet.WName, Z: tornet.ZName, Samples: 4})
		},
		Workers: 3,
		Shuffle: 33,
	}
	m, _, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probers {
		p.Close()
	}

	var est, truth []float64
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			v, err := m.RTT(names[i], names[j])
			if err != nil {
				t.Fatal(err)
			}
			if v <= 0 {
				t.Fatalf("pair (%s,%s) unmeasured", names[i], names[j])
			}
			est = append(est, v)
			truth = append(truth, topo.RTT(inet.NodeID(i), inet.NodeID(j)))
		}
	}
	sp, err := stats.Spearman(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full-stack scan: 15 pairs, spearman vs ground truth %.3f", sp)
	// Compressed time plus only 3 samples leaves scheduling noise; rank
	// order must still be essentially right.
	if sp < 0.85 {
		t.Errorf("spearman %.3f too low for a full-stack scan", sp)
	}
}

// TestFullStackScanTelemetry runs a seeded tornet scan with every layer
// reporting into one registry and checks the counters tell the story end
// to end: relays built circuits and relayed cells, the client completed
// handshakes, the measurement layer counted circuits, samples, and pairs,
// and the crashed relay shows up in the fault counters.
func TestFullStackScanTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack scan is seconds-long; skipped in -short")
	}
	reg := telemetry.New()
	obs := NewTelemetryObserver(reg)
	topo, err := inet.Generate(inet.Config{N: 3, Seed: 61, FlatRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -74}, 62)
	plan := faults.NewPlan(63)
	n, err := tornet.Build(tornet.Config{
		Topology:  topo,
		Host:      host,
		TimeScale: 0.06,
		Faults:    plan,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	names := make([]string, 3)
	for i := range names {
		names[i], _ = n.NodeName(inet.NodeID(i))
	}
	if !n.CrashRelay(names[2]) {
		t.Fatalf("relay %s unknown to the overlay", names[2])
	}

	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := &StackProber{
				Client:   n.Client,
				Registry: n.Registry,
				Target:   tornet.EchoTarget,
				ToMs:     n.VirtualMs,
			}
			return NewMeasurer(Config{
				Prober: p, W: tornet.WName, Z: tornet.ZName,
				Samples: 2, Observer: obs,
			})
		},
		Workers:      2,
		Shuffle:      64,
		SkipFailures: true,
		Observer:     obs,
	}
	_, failures, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want the 2 pairs touching the crashed relay", failures)
	}

	count := func(name string) int64 { return reg.Counter(name).Value() }
	for _, name := range []string{
		"relay.circuits_created", "relay.cells_relayed", "relay.streams_opened",
		"client.circuits_built", "client.handshakes", "client.streams_opened",
		"ting.circuits_sampled", "ting.samples", "ting.pairs_measured",
		"tornet.relay_crashes", "faults.crashes",
	} {
		if count(name) == 0 {
			t.Errorf("%s = 0 after a full-stack scan, want nonzero", name)
		}
	}
	// The crashed relay makes the surviving pair's circuits fail on dial.
	if count("client.circuit_build_failures") == 0 && count("faults.dial_refused") == 0 {
		t.Error("crashed relay produced neither build failures nor refused dials")
	}
	if count("ting.pair_failures") == 0 {
		t.Error("pairs touching the crashed relay not counted as failures")
	}
}
