package ting

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Scanner measures all pairs of a relay set in parallel — the workflow
// that produces the 930-pair validation dataset (§4.2) and the 50-node
// all-pairs dataset driving every Section 5 application.
type Scanner struct {
	// NewMeasurer builds one Measurer per worker. Probers are typically
	// not safe for concurrent use, so each worker gets its own. Required.
	NewMeasurer func(worker int) (*Measurer, error)
	// Workers is the parallelism; default 4.
	Workers int
	// Cache, if non-nil, is consulted before measuring and updated after.
	Cache *Cache
	// Shuffle, if non-zero, probes pairs in a seed-determined random order,
	// as the paper does ("We probe each pair in a randomized order", §4.2).
	Shuffle int64
	// Progress, if non-nil, is called after each pair completes.
	Progress func(done, total int)
	// SkipFailures keeps scanning when a pair fails (live relays churn;
	// aborting a 10,000-pair campaign for one dead relay is wrong). Failed
	// pairs stay zero in the matrix and are reported alongside it.
	SkipFailures bool
}

// PairError records one failed measurement in a tolerant scan.
type PairError struct {
	X, Y string
	Err  error
}

// AllPairs measures every unordered pair among names and returns the
// matrix. With SkipFailures, failed pairs are returned instead of aborting.
func (s *Scanner) AllPairs(names []string) (*Matrix, error) {
	m, _, err := s.AllPairsTolerant(names)
	return m, err
}

// AllPairsTolerant is AllPairs returning the failed pairs explicitly.
func (s *Scanner) AllPairsTolerant(names []string) (*Matrix, []PairError, error) {
	if s.NewMeasurer == nil {
		return nil, nil, errors.New("ting: scanner missing NewMeasurer")
	}
	m, err := NewMatrix(names)
	if err != nil {
		return nil, nil, err
	}
	type pair struct{ x, y string }
	var todo []pair
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			todo = append(todo, pair{names[i], names[j]})
		}
	}
	if s.Shuffle != 0 {
		rng := rand.New(rand.NewSource(s.Shuffle))
		rng.Shuffle(len(todo), func(a, b int) { todo[a], todo[b] = todo[b], todo[a] })
	}

	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	jobs := make(chan pair)
	var mu sync.Mutex // guards matrix writes, progress counter, errors
	var done int
	var firstErr error
	var failures []PairError
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		meas, err := s.NewMeasurer(w)
		if err != nil {
			close(jobs)
			return nil, nil, fmt.Errorf("ting: worker %d: %w", w, err)
		}
		wg.Add(1)
		go func(meas *Measurer) {
			defer wg.Done()
			for p := range jobs {
				rtt, err := s.measureOne(meas, p.x, p.y)
				mu.Lock()
				if err != nil {
					if s.SkipFailures {
						failures = append(failures, PairError{X: p.x, Y: p.y, Err: err})
					} else if firstErr == nil {
						firstErr = fmt.Errorf("ting: pair (%s,%s): %w", p.x, p.y, err)
					}
				} else {
					_ = m.Set(p.x, p.y, rtt)
					done++
					if s.Progress != nil {
						s.Progress(done, len(todo))
					}
				}
				mu.Unlock()
			}
		}(meas)
	}
	for _, p := range todo {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return m, failures, nil
}

func (s *Scanner) measureOne(meas *Measurer, x, y string) (float64, error) {
	if s.Cache != nil {
		if rtt, ok := s.Cache.Get(x, y); ok {
			return rtt, nil
		}
	}
	res, err := meas.MeasurePair(x, y)
	if err != nil {
		return 0, err
	}
	if s.Cache != nil {
		s.Cache.Put(x, y, res.RTT)
	}
	return res.RTT, nil
}
