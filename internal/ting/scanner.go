package ting

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ting/internal/directory"
	"ting/internal/stats"
)

// Scanner measures all pairs of a relay set in parallel — the workflow
// that produces the 930-pair validation dataset (§4.2) and the 50-node
// all-pairs dataset driving every Section 5 application. It is built for
// the live network's churn (§4.5): failed pairs can be retried with
// exponential backoff on a different worker, each attempt can carry a
// deadline, and a non-tolerant scan aborts promptly instead of measuring
// the rest of the campaign after the first error. With a Directory, the
// scan also tracks the consensus while it runs: relays that leave mid-scan
// have their pending pairs tombstoned instead of burning retries, relays
// that join are appended to the schedule, and key rotations invalidate the
// departed identity's cached state.
type Scanner struct {
	// NewMeasurer builds one Measurer per worker. Probers are typically
	// not safe for concurrent use, so each worker gets its own. Required.
	// Measurers are closed when the scan finishes.
	NewMeasurer func(worker int) (*Measurer, error)
	// Workers is the parallelism; default 4.
	Workers int
	// Cache, if non-nil, is consulted before measuring and updated after.
	Cache *Cache
	// HalfCircuits, if non-nil, is a cross-scan half-circuit cache: min
	// R_Cx series memoized in one campaign answer the next. If nil, each
	// Scan owns a private HalfCache for its own duration (unless
	// DisableHalfCache is set), which alone cuts an N-node all-pairs scan
	// from 3·pairs circuit series to pairs + N (§3.3/§4.6).
	HalfCircuits *HalfCache
	// DisableHalfCache turns half-circuit memoization off entirely, so
	// every pair re-measures C_x and C_y — the paper's literal §4.2
	// procedure, and the honest mode when relay-local delays drift faster
	// than a scan completes.
	DisableHalfCache bool
	// Shuffle, if non-zero, probes pairs in a seed-determined random order,
	// as the paper does ("We probe each pair in a randomized order", §4.2).
	// The same seed also drives backoff jitter, so a scan's retry schedule
	// is reproducible. When zero, the scanner instead groups each worker's
	// pairs by shared first endpoint (reuse-aware order), so a reusing
	// prober's prefix extension and the half-circuit cache see the same
	// relay back to back and workers never contend on one singleflight.
	Shuffle int64
	// Progress, if non-nil, is called after each pair reaches a final
	// disposition — success, (in tolerant mode) permanent failure, or a
	// churn tombstone — so done always reaches total on a completed scan.
	// total can grow mid-scan when a relay joins the consensus.
	Progress func(done, total int)
	// SkipFailures keeps scanning when a pair fails (live relays churn;
	// aborting a 10,000-pair campaign for one dead relay is wrong). Failed
	// pairs stay zero in the matrix and are reported alongside it.
	SkipFailures bool
	// Retry is how many additional attempts a failed pair gets before it
	// is reported (default 0). Retries are handed to a different worker
	// when one is free — a pair that failed because its worker's circuits
	// wedged gets a fresh prober.
	Retry int
	// Backoff is the wait before the first retry, doubled per attempt and
	// jittered ±50% from the Shuffle seed. Zero retries immediately.
	Backoff time.Duration
	// PairTimeout bounds each measurement attempt. Cancellation is
	// cooperative (checked between circuits and mid-circuit by every
	// prober), so a wedged transport is bounded by the prober's own
	// timeouts, not this one. Zero means no deadline.
	PairTimeout time.Duration
	// AdaptiveDeadline replaces the fixed PairTimeout with a per-pair
	// estimate — EWMA of observed attempt durations plus K× their EWMA
	// absolute deviation, clamped to [MinPairTimeout, PairTimeout] — once
	// enough attempts have been observed. A pair that times out under an
	// adaptive deadline retries with the full PairTimeout, so a
	// legitimately slow pair is bounded, not lost. Cuts the tail cost of
	// wedged pairs from PairTimeout to roughly MinPairTimeout each.
	AdaptiveDeadline bool
	// MinPairTimeout is the adaptive deadline's floor; default 100ms. It
	// keeps a streak of fast pairs from strangling a legitimately slow
	// one.
	MinPairTimeout time.Duration
	// Observer, if non-nil, receives scan-lifecycle callbacks (cache
	// lookups, retries, worker occupancy, churn reconciliations).
	// Per-measurement callbacks come from the Measurer's own Observer; set
	// both to the same value to see the whole picture.
	Observer *Observer
	// Checkpoint, if non-nil, makes the campaign durable: the relay set
	// and every completed pair (plus memoized half-circuit minima) are
	// appended to the log as they happen, so a crashed or cancelled scan
	// forfeits nothing — Resume replays the log and measures only the
	// rest. A checkpoint append failure aborts the scan: a campaign that
	// silently stopped being durable is worse than one that stopped.
	Checkpoint Checkpoint
	// Health, if non-nil, is the relay scoreboard driving per-relay
	// circuit breakers: a relay with FailureThreshold consecutive
	// failures is quarantined — its pending pairs are deferred to the end
	// of the scan instead of burning retries and stalling workers, and if
	// the breaker is still open when they come back up they are reported
	// as ErrQuarantined PairErrors. Share one Health across scans (and
	// with a Monitor) to carry relay reputation between campaigns. Nil
	// disables the breaker entirely.
	Health *Health
	// Directory, if non-nil, is the live consensus the scan reconciles
	// against. The scan subscribes to consensus deltas: a relay that
	// leaves mid-scan has its pending pairs tombstoned with *ChurnError
	// (provenance ProvRemoved, no retry budget burned, the scan is not
	// aborted even without SkipFailures); a relay that joins has its pairs
	// appended to the schedule; a key rotation invalidates the relay's
	// cached half circuits, breaker state, and deadline statistics. With a
	// Checkpoint too, the campaign header records the consensus epoch and
	// per-relay onion-key fingerprints, and every reconciled delta is
	// logged — so Resume against a newer consensus reconciles instead of
	// re-measuring ghosts.
	Directory *directory.Registry
}

// PairError records one failed measurement in a tolerant scan. It is an
// error itself, and Unwrap exposes the cause so callers can
// errors.Is(err, context.Canceled), errors.Is(err, ErrQuarantined), or
// errors.Is(err, ErrChurned) instead of string-matching.
type PairError struct {
	X, Y string
	Err  error
	// Attempts is how many measurement attempts the pair consumed.
	Attempts int
}

func (e PairError) Error() string {
	return fmt.Sprintf("ting: pair (%s,%s) after %d attempts: %v", e.X, e.Y, e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e PairError) Unwrap() error { return e.Err }

// pairJob is one queued measurement attempt.
type pairJob struct {
	x, y    string
	attempt int // attempts already consumed
	// deferred marks a job that was parked behind an open circuit breaker
	// once already; a deferred job that still cannot run is quarantined
	// rather than parked again, so the scan always terminates.
	deferred bool
	// fullDeadline marks a retry of an attempt that timed out under an
	// adaptive deadline: this attempt gets the full PairTimeout, so the
	// estimator being wrong about a slow pair costs one retry, not the
	// pair.
	fullDeadline bool
}

// workQueue is an unbounded FIFO with blocking pop. Each worker owns one,
// so the reuse-aware assignment below survives into execution order —
// a shared channel would let any worker steal the next (x, ·) pair and
// split x's group across probers.
type workQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	jobs   []pairJob
	head   int
	closed bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *workQueue) push(job pairJob) {
	q.mu.Lock()
	// Compact lazily: the consumed prefix is reclaimed only when it
	// dominates the slice, so push/pop stay O(1) amortized.
	if q.head > len(q.jobs)/2 {
		q.jobs = append(q.jobs[:0], q.jobs[q.head:]...)
		q.head = 0
	}
	q.jobs = append(q.jobs, job)
	q.mu.Unlock()
	q.cond.Signal()
}

// pushAll enqueues a batch with at most one slice growth — the initial
// assignment fill, where per-job push would re-grow the backing slice
// log(n) times per worker.
func (q *workQueue) pushAll(jobs []pairJob) {
	if len(jobs) == 0 {
		return
	}
	q.mu.Lock()
	if need := len(q.jobs) + len(jobs); cap(q.jobs) < need {
		grown := make([]pairJob, len(q.jobs), need)
		copy(grown, q.jobs)
		q.jobs = grown
	}
	q.jobs = append(q.jobs, jobs...)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a job is available or the queue is closed and empty.
func (q *workQueue) pop() (pairJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.jobs) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.jobs) {
		return pairJob{}, false
	}
	job := q.jobs[q.head]
	q.head++
	return job, true
}

func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// assignJobs distributes todo across workers. With a shuffle seed the
// randomized global order is preserved by dealing the shuffled list
// round-robin. Otherwise pairs are grouped by first endpoint and groups
// are placed longest-first onto the least-loaded worker (LPT greedy), so
// one worker owns all of (x, ·): its prober extends C_x into C_xy once,
// the half-circuit cache turns the group's remaining C_x lookups into
// hits, and no two workers block on the same singleflight.
func assignJobs(todo []pairJob, workers int, shuffled bool) [][]pairJob {
	queues := make([][]pairJob, workers)
	if shuffled {
		if workers > 0 && len(todo) > 0 {
			per := (len(todo) + workers - 1) / workers
			for w := range queues {
				queues[w] = make([]pairJob, 0, per)
			}
		}
		for i, job := range todo {
			queues[i%workers] = append(queues[i%workers], job)
		}
		return queues
	}
	// Group by first endpoint in two passes — count, then carve each
	// group as a contiguous sub-slice of one backing array — so grouping
	// costs a handful of allocations, not one append chain per relay.
	order := make([]string, 0, 64)
	counts := make(map[string]int, 64)
	for _, job := range todo {
		if counts[job.x] == 0 {
			order = append(order, job.x)
		}
		counts[job.x]++
	}
	backing := make([]pairJob, len(todo))
	groups := make(map[string][]pairJob, len(order))
	pos := 0
	for _, x := range order {
		n := counts[x]
		groups[x] = backing[pos : pos : pos+n]
		pos += n
	}
	for _, job := range todo {
		groups[job.x] = append(groups[job.x], job)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(groups[order[a]]) > len(groups[order[b]])
	})
	// First LPT pass computes each worker's final load so the queues can
	// be allocated exactly once; the second fills them in the same order.
	load := make([]int, workers)
	homes := make([]int, len(order))
	for oi, x := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		homes[oi] = w
		load[w] += len(groups[x])
	}
	for w := range queues {
		if load[w] > 0 {
			queues[w] = make([]pairJob, 0, load[w])
		}
	}
	for oi, x := range order {
		w := homes[oi]
		queues[w] = append(queues[w], groups[x]...)
	}
	return queues
}

// Scan measures every unordered pair among names and returns the matrix
// plus the failed pairs (tolerant mode), sorted by pair name for
// reproducibility. Without SkipFailures the failure slice holds only
// churn tombstones (*ChurnError pairs, which never abort a scan): the
// first real error aborts the scan. Cancelling ctx aborts the scan:
// in-flight attempts finish (or hit their cooperative cancellation points)
// and ctx.Err() is returned.
//
// Scans degrade gracefully: even on error or cancellation the partial
// matrix measured so far is returned alongside the error, with per-cell
// provenance (Matrix.Prov) distinguishing fresh, resumed, removed, and
// missing cells — with a Checkpoint configured, nothing measured is ever
// lost.
func (s *Scanner) Scan(ctx context.Context, names []string) (*Matrix, []PairError, error) {
	return s.run(ctx, names, nil, s.Checkpoint, false, nil)
}

// ScanPairs measures only the listed unordered pairs among names and
// returns a matrix over the full name set — the distributed-campaign
// entry point, where a worker's shard lease names a slice of the pair
// space but the matrix (and the checkpoint's campaign header) must be
// framed over the whole campaign so per-worker results merge without
// re-indexing. Every endpoint must appear in names and no pair may be a
// self-pair. Restricted pairs flow through the same retry, churn, breaker,
// and checkpoint machinery as a full Scan; the contract is otherwise
// Scan's.
func (s *Scanner) ScanPairs(ctx context.Context, names []string, pairs [][2]string) (*Matrix, []PairError, error) {
	known := make(map[string]bool, len(names))
	for _, n := range names {
		known[n] = true
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			return nil, nil, fmt.Errorf("ting: ScanPairs: self-pair (%s,%s)", p[0], p[1])
		}
		if !known[p[0]] {
			return nil, nil, fmt.Errorf("ting: ScanPairs: pair endpoint %q not in names", p[0])
		}
		if !known[p[1]] {
			return nil, nil, fmt.Errorf("ting: ScanPairs: pair endpoint %q not in names", p[1])
		}
	}
	if pairs == nil {
		// nil restrict means "all pairs" to run; an explicitly empty
		// restriction must stay empty.
		pairs = [][2]string{}
	}
	return s.run(ctx, names, nil, s.Checkpoint, false, pairs)
}

// Resume continues the interrupted campaign recorded in cp: the log is
// replayed to seed the matrix (cells marked ProvResumed) and the
// half-circuit cache, and only unfinished pairs are scheduled. New
// completions are appended to the same log, so Resume itself is
// interruptible — a campaign survives any number of crashes. The relay
// set comes from the log's campaign header; with a Directory it is then
// reconciled against the current consensus — relays that vanished while
// the campaign was down are tombstoned (their replayed pairs are kept:
// measured data is data), relays that appeared are appended, and a relay
// whose onion-key fingerprint changed is treated as rotated (its replayed
// half circuits are dropped, its breaker reset). The contract is Scan's.
func (s *Scanner) Resume(ctx context.Context, cp Checkpoint) (*Matrix, []PairError, error) {
	if cp == nil {
		return nil, nil, errors.New("ting: Resume needs a checkpoint")
	}
	st, err := ReplayState(cp)
	if err != nil {
		return nil, nil, err
	}
	if len(st.Names) == 0 {
		return nil, nil, errors.New("ting: checkpoint has no campaign header; nothing to resume")
	}
	return s.run(ctx, st.Names, st, cp, true, nil)
}

// run executes one scan over names. With restrict nil every unordered pair
// is scheduled (the all-pairs campaign); otherwise only the listed pairs
// are — the budgeted scanner's batches. Restricted pairs still flow
// through the same replay/tombstone gates as the full sweep.
func (s *Scanner) run(ctx context.Context, names []string, resumed *CheckpointState, cp Checkpoint, resuming bool, restrict [][2]string) (*Matrix, []PairError, error) {
	if s.NewMeasurer == nil {
		return nil, nil, errors.New("ting: scanner missing NewMeasurer")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Consensus snapshot and (on resume) reconciliation: the campaign's
	// name list is extended with relays that joined while it was down, and
	// relays that vanished are marked for build-time tombstoning.
	var (
		startEpoch     uint64
		startFps       map[string]string
		removedAtStart map[string]uint64
		joinedAtStart  []string
		rotatedAtStart []string
	)
	if s.Directory != nil {
		startEpoch = s.Directory.Epoch()
		inConsensus := make(map[string]string)
		var consensusOrder []string
		for _, d := range s.Directory.Consensus() {
			inConsensus[d.Nickname] = d.Fingerprint()
			consensusOrder = append(consensusOrder, d.Nickname)
		}
		if resuming {
			base := append([]string(nil), names...)
			seen := make(map[string]bool, len(base))
			for _, n := range base {
				seen[n] = true
			}
			for _, n := range resumed.Joined {
				if !seen[n] {
					base = append(base, n)
					seen[n] = true
				}
			}
			removedAtStart = make(map[string]uint64)
			for _, n := range base {
				if _, ok := inConsensus[n]; !ok {
					removedAtStart[n] = startEpoch
				}
			}
			// Joins are appended in consensus (publish) order — the same
			// order a live scan appends them in as deltas arrive, so a
			// resumed campaign converges to a bytewise-identical matrix.
			for _, n := range consensusOrder {
				if !seen[n] {
					base = append(base, n)
					seen[n] = true
					joinedAtStart = append(joinedAtStart, n)
				}
			}
			for n, fp := range resumed.Fps {
				if cur, ok := inConsensus[n]; ok && cur != fp {
					rotatedAtStart = append(rotatedAtStart, n)
				}
			}
			sort.Strings(rotatedAtStart)
			names = base
		}
		startFps = make(map[string]string, len(names))
		for _, n := range names {
			if fp, ok := inConsensus[n]; ok {
				startFps[n] = fp
			}
		}
	}

	m, err := NewMatrix(names)
	if err != nil {
		return nil, nil, err
	}
	var failures []PairError
	todoCap := len(names) * (len(names) - 1) / 2
	if restrict != nil {
		todoCap = len(restrict)
	}
	todo := make([]pairJob, 0, todoCap)
	replayedPairs := 0
	startTombstoned := make(map[string]int)
	addPair := func(x, y string) {
		if resumed != nil {
			if rtt, ok := resumed.Pairs[pairKey(x, y)]; ok {
				_ = m.Set(x, y, rtt)
				_ = m.SetProv(x, y, ProvResumed)
				replayedPairs++
				return
			}
		}
		if len(removedAtStart) > 0 {
			relay, ok := "", false
			if ep, hit := removedAtStart[x]; hit {
				relay, ok = x, true
				_ = ep
			} else if _, hit := removedAtStart[y]; hit {
				relay, ok = y, true
			}
			if ok {
				// The relay left while the campaign was down: its
				// unfinished pairs are settled here, outside the
				// progress totals (like replayed pairs, they are not
				// work this run will do).
				_ = m.SetProv(x, y, ProvRemoved)
				failures = append(failures, PairError{
					X: x, Y: y,
					Err: &ChurnError{Relay: relay, Epoch: removedAtStart[relay]},
				})
				startTombstoned[relay]++
				return
			}
		}
		todo = append(todo, pairJob{x: x, y: y})
	}
	if restrict != nil {
		for _, p := range restrict {
			addPair(p[0], p[1])
		}
	} else {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				addPair(names[i], names[j])
			}
		}
	}
	if s.Shuffle != 0 {
		rng := rand.New(rand.NewSource(s.Shuffle))
		rng.Shuffle(len(todo), func(a, b int) { todo[a], todo[b] = todo[b], todo[a] })
	}

	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	// Build every worker's measurer up front: if the k-th fails, the
	// earlier ones are closed and no goroutine has started — nothing to
	// drain, no leaked circuits.
	measurers := make([]*Measurer, 0, workers)
	for w := 0; w < workers; w++ {
		meas, err := s.NewMeasurer(w)
		if err != nil {
			for _, m := range measurers {
				m.Close()
			}
			return nil, nil, fmt.Errorf("ting: worker %d: %w", w, err)
		}
		measurers = append(measurers, meas)
	}
	defer func() {
		for _, m := range measurers {
			m.Close()
		}
	}()

	// Half-circuit memoization (§3.3/§4.6): the scan owns a cache unless
	// the caller supplied a cross-scan one or opted out. Measurers that
	// already carry their own keep it.
	hc := s.HalfCircuits
	if hc == nil && !s.DisableHalfCache {
		hc = NewHalfCache(0)
	}
	if hc != nil {
		for _, meas := range measurers {
			if meas.cfg.HalfCircuits == nil {
				meas.cfg.HalfCircuits = hc
			}
		}
	}

	// Adaptive attempt deadlines: bounded below so a run of fast pairs
	// cannot strangle a legitimately slow one, above by the fixed
	// PairTimeout.
	var est *DeadlineEstimator
	if s.AdaptiveDeadline {
		min := s.MinPairTimeout
		if min <= 0 {
			min = 100 * time.Millisecond
		}
		est = NewDeadlineEstimator(min, s.PairTimeout, s.Observer)
	}

	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Checkpointing: append failures latch and abort the scan — a
	// campaign that silently stopped being durable would betray a later
	// Resume.
	var cpMu sync.Mutex
	var cpErr error
	appendRec := func(rec CheckpointRecord) {
		if cp == nil {
			return
		}
		if err := cp.Append(rec); err != nil {
			cpMu.Lock()
			if cpErr == nil {
				cpErr = err
				cancel()
			}
			cpMu.Unlock()
			return
		}
		// Copy before taking the address: &rec itself would force the
		// parameter to the heap on every call, including the early return
		// above — checkpoint-less scans record nothing and must allocate
		// nothing here.
		r := rec
		s.Observer.checkpointAppend(&r)
	}
	if cp != nil {
		if !resuming {
			// The header first, so even an immediately-killed scan leaves
			// a resumable log. With a directory it pins the consensus
			// epoch and each relay's onion-key fingerprint, so a later
			// Resume can tell churn from continuity.
			header := CheckpointRecord{Kind: RecordCampaign, Names: names, Epoch: startEpoch, Fps: startFps}
			if err := cp.Append(header); err != nil {
				return nil, nil, fmt.Errorf("ting: checkpoint header: %w", err)
			}
			s.Observer.checkpointAppend(&header)
		}
		if hc != nil {
			hc.SetStoreHook(func(path []string, samples int, min float64) {
				appendRec(CheckpointRecord{Kind: RecordHalf, Path: path, Samples: samples, Min: min})
			})
			defer hc.SetStoreHook(nil)
		}
	}
	// Rehydrate the half-circuit memo from the log: a resumed scan's
	// unfinished pairs reuse the interrupted run's series instead of
	// re-sampling them.
	replayedHalves := 0
	if resumed != nil && hc != nil {
		for _, h := range resumed.Halves {
			hc.Seed(h.Path, h.Samples, h.Min)
			replayedHalves++
		}
	}
	if resuming {
		s.Observer.checkpointReplay(replayedPairs, replayedHalves)
	}

	// Report and log the build-time reconciliation (after half-circuit
	// seeding, so a rotated relay's replayed series are dropped, not
	// resurrected).
	if s.Directory != nil && resuming {
		removedNames := make([]string, 0, len(removedAtStart))
		for n := range removedAtStart {
			removedNames = append(removedNames, n)
		}
		sort.Strings(removedNames)
		for _, relay := range removedNames {
			s.Observer.churn(ChurnEvent{
				Kind: ChurnRemoved, Relay: relay, Epoch: removedAtStart[relay],
				Tombstoned: startTombstoned[relay],
			})
			appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpLeave, Relay: relay, Epoch: removedAtStart[relay]})
		}
		for _, name := range joinedAtStart {
			s.Observer.churn(ChurnEvent{Kind: ChurnJoined, Relay: name, Epoch: startEpoch})
			appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpJoin, Relay: name, Fp: startFps[name], Epoch: startEpoch})
		}
		for _, name := range rotatedAtStart {
			if hc != nil {
				hc.InvalidateRelay(name)
			}
			if s.Health != nil {
				s.Health.Reset(name)
			}
			s.Observer.churn(ChurnEvent{Kind: ChurnRotated, Relay: name, Epoch: startEpoch})
			appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpRotate, Relay: name, Fp: startFps[name], Epoch: startEpoch})
		}
	}

	backoff := stats.Backoff{Base: s.Backoff, Factor: 2, Jitter: 0.5}
	var jitterMu sync.Mutex
	jitterRNG := rand.New(rand.NewSource(s.Shuffle ^ 0x7107))
	nextDelay := func(attempt int) time.Duration {
		jitterMu.Lock()
		defer jitterMu.Unlock()
		return backoff.Delay(attempt, jitterRNG)
	}

	// Every initial pair is assigned to a worker queue up front; retries
	// and churn-joined pairs are the only later traffic. The queues close
	// once every open pair has settled, regardless of how many attempts it
	// consumed. remaining is a mutex-guarded counter rather than a
	// WaitGroup because consensus joins add jobs mid-scan, and a WaitGroup
	// forbids Add once Wait may have returned — addJobs refuses instead,
	// atomically with completion, so a join that loses the race with the
	// end of the scan is dropped, not deadlocked.
	queues := make([]*workQueue, workers)
	for w := range queues {
		queues[w] = newWorkQueue()
	}
	for w, jobs := range assignJobs(todo, workers, s.Shuffle != 0) {
		queues[w].pushAll(jobs)
	}
	var remMu sync.Mutex
	remaining := len(todo)
	settledAll := false
	allSettled := make(chan struct{})
	remMu.Lock()
	if remaining == 0 {
		settledAll = true
		close(allSettled)
	}
	remMu.Unlock()
	addJobs := func(k int) bool {
		remMu.Lock()
		defer remMu.Unlock()
		if settledAll {
			return false
		}
		remaining += k
		return true
	}
	jobDone := func() {
		remMu.Lock()
		remaining--
		if remaining == 0 && !settledAll {
			settledAll = true
			close(allSettled)
		}
		remMu.Unlock()
	}
	go func() {
		<-allSettled
		for _, q := range queues {
			q.close()
		}
	}()

	// Quarantine deferral: pairs blocked by an open breaker are parked here
	// instead of burning retries against a dead relay. Once every
	// non-parked pair has settled the parked ones are flushed back for a
	// final verdict (the breaker may have half-opened by then); a deferred
	// job that is still blocked settles as ErrQuarantined. undeferred
	// counts unsettled pairs NOT currently parked — when it reaches zero,
	// only the parked jobs remain and it is time to flush.
	var defMu sync.Mutex
	var deferredJobs []pairJob
	undeferred := len(todo)
	drained := false
	flushDeferred := func() { // caller holds defMu
		for i, job := range deferredJobs {
			queues[i%workers].push(job)
		}
		undeferred += len(deferredJobs)
		deferredJobs = nil
	}
	noteSettled := func() {
		defMu.Lock()
		undeferred--
		if undeferred == 0 && len(deferredJobs) > 0 && !drained {
			flushDeferred()
		}
		defMu.Unlock()
		jobDone()
	}
	deferJob := func(job pairJob) {
		defMu.Lock()
		if drained {
			// The scan was cancelled while this job was in flight toward
			// the parking lot: release it unsettled, like the worker drain
			// path, so the queues can close.
			defMu.Unlock()
			jobDone()
			return
		}
		job.deferred = true
		deferredJobs = append(deferredJobs, job)
		undeferred--
		if undeferred == 0 {
			flushDeferred()
		}
		defMu.Unlock()
	}
	// Parked jobs are invisible to the workers, so a cancelled scan would
	// deadlock waiting for them without this watcher draining the lot.
	go func() {
		<-scanCtx.Done()
		defMu.Lock()
		drained = true
		parked := deferredJobs
		deferredJobs = nil
		defMu.Unlock()
		for range parked {
			jobDone()
		}
	}()

	maxAttempts := s.Retry + 1
	var mu sync.Mutex // guards matrix writes, progress counters, errors
	done := 0
	total := len(todo)
	var firstErr error

	settle := func(job pairJob, err error) {
		mu.Lock()
		if err == nil {
			done++
		} else if s.SkipFailures {
			failures = append(failures, PairError{X: job.x, Y: job.y, Err: err, Attempts: job.attempt})
			// A failed pair is still completed work: without this,
			// Progress(done, total) never reaches total on a tolerant
			// scan with failures.
			done++
		} else {
			if firstErr == nil {
				firstErr = fmt.Errorf("ting: pair (%s,%s): %w", job.x, job.y, err)
			}
			// Latch and stop: cancel the scan so no new measurements are
			// dispatched; in-flight ones notice cooperatively.
			cancel()
		}
		if err == nil || s.SkipFailures {
			if s.Progress != nil {
				s.Progress(done, total)
			}
		}
		mu.Unlock()
		noteSettled()
	}

	// Live churn state. removed is the set of campaign relays the
	// consensus dropped mid-scan (pre-seeded with build-time removals so a
	// joining relay never pairs against a ghost); nameSet/curNames track
	// the campaign roster as joins extend it.
	type churnState struct {
		mu       sync.Mutex
		epoch    uint64
		removed  map[string]uint64
		fps      map[string]string
		nameSet  map[string]bool
		curNames []string
	}
	churn := &churnState{
		epoch:    startEpoch,
		removed:  make(map[string]uint64),
		fps:      make(map[string]string),
		nameSet:  make(map[string]bool, len(names)),
		curNames: append([]string(nil), names...),
	}
	for n, ep := range removedAtStart {
		churn.removed[n] = ep
	}
	for n, fp := range startFps {
		churn.fps[n] = fp
	}
	for _, n := range names {
		churn.nameSet[n] = true
	}
	removedRelay := func(x, y string) (string, uint64, bool) {
		churn.mu.Lock()
		defer churn.mu.Unlock()
		if ep, ok := churn.removed[x]; ok {
			return x, ep, true
		}
		if ep, ok := churn.removed[y]; ok {
			return y, ep, true
		}
		return "", 0, false
	}
	// tombstone settles one pending pair abandoned to churn. It counts as
	// completed work (it was scheduled), never aborts the scan, and burns
	// no retry budget.
	tombstone := func(job pairJob, relay string, epoch uint64) {
		mu.Lock()
		_ = m.SetProv(job.x, job.y, ProvRemoved)
		failures = append(failures, PairError{
			X: job.x, Y: job.y,
			Err:      &ChurnError{Relay: relay, Epoch: epoch},
			Attempts: job.attempt,
		})
		done++
		if s.Progress != nil {
			s.Progress(done, total)
		}
		mu.Unlock()
		s.Observer.churn(ChurnEvent{
			Kind: ChurnTombstoned, Relay: relay, Epoch: epoch,
			X: job.x, Y: job.y, Tombstoned: 1,
		})
		noteSettled()
	}

	handleDelta := func(delta directory.ConsensusDelta) {
		churn.mu.Lock()
		if delta.Epoch <= churn.epoch {
			// Already seen: the catch-up DeltasSince pass and the live
			// watch overlap by design; epochs are the dedup key.
			churn.mu.Unlock()
			return
		}
		churn.epoch = delta.Epoch
		known := churn.nameSet[delta.Name]
		switch delta.Kind {
		case directory.DeltaLeave:
			if !known {
				churn.mu.Unlock()
				return
			}
			if _, already := churn.removed[delta.Name]; already {
				churn.mu.Unlock()
				return
			}
			churn.removed[delta.Name] = delta.Epoch
			churn.mu.Unlock()
			s.Observer.churn(ChurnEvent{Kind: ChurnRemoved, Relay: delta.Name, Epoch: delta.Epoch})
			appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpLeave, Relay: delta.Name, Epoch: delta.Epoch})

		case directory.DeltaJoin:
			fp := ""
			if delta.Desc != nil {
				fp = delta.Desc.Fingerprint()
			}
			if known {
				// A campaign relay rejoined. Its not-yet-tombstoned pairs
				// simply resume being measured; already-tombstoned ones
				// stay tombstoned (their verdicts were already reported).
				// A new fingerprint means a new incarnation: rotation.
				_, wasRemoved := churn.removed[delta.Name]
				delete(churn.removed, delta.Name)
				oldFp := churn.fps[delta.Name]
				churn.fps[delta.Name] = fp
				churn.mu.Unlock()
				if oldFp != "" && fp != "" && oldFp != fp {
					if hc != nil {
						hc.InvalidateRelay(delta.Name)
					}
					if s.Health != nil {
						s.Health.Reset(delta.Name)
					}
					if est != nil {
						est.Forget(delta.Name)
					}
					s.Observer.churn(ChurnEvent{Kind: ChurnRotated, Relay: delta.Name, Epoch: delta.Epoch})
					appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpRotate, Relay: delta.Name, Fp: fp, Epoch: delta.Epoch})
				} else if wasRemoved {
					s.Observer.churn(ChurnEvent{Kind: ChurnJoined, Relay: delta.Name, Epoch: delta.Epoch})
					appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpJoin, Relay: delta.Name, Fp: fp, Epoch: delta.Epoch})
				}
				return
			}
			// A genuinely new relay: extend the matrix and schedule its
			// pairs against every live campaign relay.
			peers := make([]string, 0, len(churn.curNames))
			for _, n := range churn.curNames {
				if _, gone := churn.removed[n]; !gone {
					peers = append(peers, n)
				}
			}
			churn.nameSet[delta.Name] = true
			churn.curNames = append(churn.curNames, delta.Name)
			churn.fps[delta.Name] = fp
			churn.mu.Unlock()
			if len(peers) == 0 || !addJobs(len(peers)) {
				// The scan already settled (or there is nobody to pair
				// with): too late to measure this relay in this campaign.
				churn.mu.Lock()
				delete(churn.nameSet, delta.Name)
				churn.curNames = churn.curNames[:len(churn.curNames)-1]
				churn.mu.Unlock()
				return
			}
			defMu.Lock()
			undeferred += len(peers)
			defMu.Unlock()
			mu.Lock()
			_ = m.AddName(delta.Name)
			total += len(peers)
			mu.Unlock()
			for i, p := range peers {
				queues[i%workers].push(pairJob{x: delta.Name, y: p})
			}
			s.Observer.churn(ChurnEvent{Kind: ChurnJoined, Relay: delta.Name, Epoch: delta.Epoch})
			appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpJoin, Relay: delta.Name, Fp: fp, Epoch: delta.Epoch})

		case directory.DeltaRotate:
			newFp := ""
			if delta.Desc != nil {
				newFp = delta.Desc.Fingerprint()
			}
			if known {
				churn.fps[delta.Name] = newFp
			}
			churn.mu.Unlock()
			if !known {
				return
			}
			// New key, same nickname: the cached half circuits, breaker
			// history, and deadline statistics describe the old
			// incarnation. Completed pair RTTs are kept — a key rotation
			// does not move the relay.
			if hc != nil {
				hc.InvalidateRelay(delta.Name)
			}
			if s.Health != nil {
				s.Health.Reset(delta.Name)
			}
			if est != nil {
				est.Forget(delta.Name)
			}
			s.Observer.churn(ChurnEvent{Kind: ChurnRotated, Relay: delta.Name, Epoch: delta.Epoch})
			appendRec(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpRotate, Relay: delta.Name, Fp: newFp, Epoch: delta.Epoch})

		default:
			churn.mu.Unlock()
		}
	}

	var churnWg sync.WaitGroup
	if s.Directory != nil {
		deltaCh := s.Directory.Watch(scanCtx)
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			// Catch up on deltas that slipped between the snapshot above
			// and the watch registration; the epoch guard in handleDelta
			// dedups any overlap with the live stream.
			if missed, ok := s.Directory.DeltasSince(startEpoch); ok {
				for _, d := range missed {
					handleDelta(d)
				}
			}
			for d := range deltaCh {
				handleDelta(d)
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, meas *Measurer) {
			defer wg.Done()
			for {
				job, ok := queues[w].pop()
				if !ok {
					return
				}
				if scanCtx.Err() != nil {
					// Aborted scan: drain without measuring. The scan's
					// result is partial, so abandoned pairs are not
					// settled — progress must not count them as done.
					noteSettled()
					continue
				}
				// Churn gate: a pair touching a relay the consensus
				// dropped is tombstoned, not measured — no circuits, no
				// retries, no breaker charges against a relay that is
				// simply gone.
				if relay, ep, hit := removedRelay(job.x, job.y); hit {
					tombstone(job, relay, ep)
					continue
				}
				// Breaker gate: a pair touching a quarantined relay is
				// parked on first contact and given up on second.
				if s.Health != nil {
					if qe := s.Health.Allow(job.x, job.y); qe != nil {
						if job.deferred {
							s.Observer.quarantine(job.x, job.y, qe.Relay, true)
							settle(job, qe)
						} else {
							s.Observer.quarantine(job.x, job.y, qe.Relay, false)
							deferJob(job)
						}
						continue
					}
				}
				attemptCtx := scanCtx
				var cancelAttempt context.CancelFunc
				timeout := s.PairTimeout
				adaptive := false
				if est != nil && !job.fullDeadline {
					if d, ok := est.Deadline(job.x, job.y); ok && (timeout <= 0 || d < timeout) {
						timeout = d
						adaptive = true
					}
				}
				if timeout > 0 {
					attemptCtx, cancelAttempt = context.WithTimeout(scanCtx, timeout)
				}
				s.Observer.workerActive(1)
				start := time.Now()
				rtt, err := s.measureOne(attemptCtx, meas, job.x, job.y)
				elapsed := time.Since(start)
				s.Observer.workerActive(-1)
				if cancelAttempt != nil {
					cancelAttempt()
				}
				job.attempt++
				if err == nil {
					if est != nil {
						est.Observe(job.x, job.y, elapsed)
					}
					mu.Lock()
					_ = m.Set(job.x, job.y, rtt)
					_ = m.SetProv(job.x, job.y, ProvFresh)
					mu.Unlock()
					appendRec(CheckpointRecord{Kind: RecordPair, X: job.x, Y: job.y, RTT: rtt})
					if s.Health != nil {
						s.Health.Success(job.x)
						s.Health.Success(job.y)
					}
					settle(job, nil)
					continue
				}
				// A failure whose relay left the consensus mid-attempt is
				// churn fallout (the relay DESTROYed its circuits on the
				// way out), not evidence against anyone still present.
				if relay, ep, hit := removedRelay(job.x, job.y); hit {
					tombstone(job, relay, ep)
					continue
				}
				if s.Health != nil && scanCtx.Err() == nil {
					// Charge only the relays on the failing circuit's path
					// (CircuitError), not both pair endpoints blindly.
					for _, relay := range culprits(job.x, job.y, err) {
						s.Health.Failure(relay, err, elapsed)
					}
				}
				if !job.deferred && job.attempt < maxAttempts && scanCtx.Err() == nil {
					if adaptive && errors.Is(err, context.DeadlineExceeded) {
						// The estimator may have strangled a legitimately
						// slow pair: the retry gets the full PairTimeout.
						job.fullDeadline = true
					}
					d := nextDelay(job.attempt)
					s.Observer.retry(job.x, job.y, job.attempt, d, err)
					if d > 0 {
						t := time.NewTimer(d)
						select {
						case <-scanCtx.Done():
						case <-t.C:
						}
						t.Stop()
					}
					// Hand the retry to the next worker: a pair that failed
					// because this worker's circuits wedged gets a fresh
					// prober, deterministically.
					queues[(w+1)%workers].push(job)
					continue
				}
				if job.deferred && scanCtx.Err() == nil {
					// A deferred pair got exactly one end-of-scan attempt
					// (often the breaker's half-open probe); its failure is
					// part of the quarantine story, not a fresh one.
					relay := job.x
					if c := culprits(job.x, job.y, err); len(c) > 0 {
						relay = c[0]
					}
					s.Observer.quarantine(job.x, job.y, relay, true)
					err = &QuarantineError{Relay: relay, Cause: err}
				}
				settle(job, err)
			}
		}(w, measurers[w])
	}
	wg.Wait()
	// The scan is over: detach the consensus watch and wait for the delta
	// goroutine so it cannot mutate the failure list mid-sort below. Any
	// still-queued deltas are drained harmlessly — addJobs refuses new
	// work once every pair has settled.
	cancel()
	churnWg.Wait()

	sort.Slice(failures, func(i, j int) bool {
		if failures[i].X != failures[j].X {
			return failures[i].X < failures[j].X
		}
		return failures[i].Y < failures[j].Y
	})
	// Graceful degradation: every exit hands back the partial matrix and
	// the failures gathered so far — with a checkpoint configured, what was
	// measured before the error is also already on disk.
	if err := ctx.Err(); err != nil {
		return m, failures, err
	}
	cpMu.Lock()
	latchedCpErr := cpErr
	cpMu.Unlock()
	if latchedCpErr != nil {
		return m, failures, fmt.Errorf("ting: checkpoint append: %w", latchedCpErr)
	}
	if firstErr != nil {
		return m, failures, firstErr
	}
	return m, failures, nil
}

func (s *Scanner) measureOne(ctx context.Context, meas *Measurer, x, y string) (float64, error) {
	if s.Cache != nil {
		rtt, ok := s.Cache.Get(x, y)
		s.Observer.cacheLookup(x, y, ok)
		if ok {
			return rtt, nil
		}
	}
	rtt, err := meas.measurePairRTT(ctx, x, y)
	if err != nil {
		return 0, err
	}
	if s.Cache != nil {
		s.Cache.Put(x, y, rtt)
	}
	return rtt, nil
}
