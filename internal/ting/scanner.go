package ting

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ting/internal/stats"
)

// Scanner measures all pairs of a relay set in parallel — the workflow
// that produces the 930-pair validation dataset (§4.2) and the 50-node
// all-pairs dataset driving every Section 5 application. It is built for
// the live network's churn (§4.5): failed pairs can be retried with
// exponential backoff on a different worker, each attempt can carry a
// deadline, and a non-tolerant scan aborts promptly instead of measuring
// the rest of the campaign after the first error.
type Scanner struct {
	// NewMeasurer builds one Measurer per worker. Probers are typically
	// not safe for concurrent use, so each worker gets its own. Required.
	// Measurers are closed when the scan finishes.
	NewMeasurer func(worker int) (*Measurer, error)
	// Workers is the parallelism; default 4.
	Workers int
	// Cache, if non-nil, is consulted before measuring and updated after.
	Cache *Cache
	// Shuffle, if non-zero, probes pairs in a seed-determined random order,
	// as the paper does ("We probe each pair in a randomized order", §4.2).
	// The same seed also drives backoff jitter, so a scan's retry schedule
	// is reproducible.
	Shuffle int64
	// Progress, if non-nil, is called after each pair reaches a final
	// disposition — success or (in tolerant mode) permanent failure — so
	// done always reaches total on a completed scan.
	Progress func(done, total int)
	// SkipFailures keeps scanning when a pair fails (live relays churn;
	// aborting a 10,000-pair campaign for one dead relay is wrong). Failed
	// pairs stay zero in the matrix and are reported alongside it.
	SkipFailures bool
	// Retry is how many additional attempts a failed pair gets before it
	// is reported (default 0). Retries are handed to a different worker
	// when one is free — a pair that failed because its worker's circuits
	// wedged gets a fresh prober.
	Retry int
	// Backoff is the wait before the first retry, doubled per attempt and
	// jittered ±50% from the Shuffle seed. Zero retries immediately.
	Backoff time.Duration
	// PairTimeout bounds each measurement attempt. Cancellation is
	// cooperative (checked between circuits and mid-circuit by every
	// prober), so a wedged transport is bounded by the prober's own
	// timeouts, not this one. Zero means no deadline.
	PairTimeout time.Duration
	// Observer, if non-nil, receives scan-lifecycle callbacks (cache
	// lookups, retries, worker occupancy). Per-measurement callbacks come
	// from the Measurer's own Observer; set both to the same value to see
	// the whole picture.
	Observer *Observer
}

// PairError records one failed measurement in a tolerant scan.
type PairError struct {
	X, Y string
	Err  error
	// Attempts is how many measurement attempts the pair consumed.
	Attempts int
}

// pairJob is one queued measurement attempt.
type pairJob struct {
	x, y    string
	attempt int // attempts already consumed
	prev    int // worker that last failed this pair, -1 initially
	bounce  int // hand-offs to avoid retrying on the same worker
}

// Scan measures every unordered pair among names and returns the matrix
// plus the failed pairs (tolerant mode), sorted by pair name for
// reproducibility. Without SkipFailures the failure slice is always empty:
// the first error aborts the scan. Cancelling ctx aborts the scan:
// in-flight attempts finish (or hit their cooperative cancellation points)
// and ctx.Err() is returned.
func (s *Scanner) Scan(ctx context.Context, names []string) (*Matrix, []PairError, error) {
	if s.NewMeasurer == nil {
		return nil, nil, errors.New("ting: scanner missing NewMeasurer")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := NewMatrix(names)
	if err != nil {
		return nil, nil, err
	}
	var todo []pairJob
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			todo = append(todo, pairJob{x: names[i], y: names[j], prev: -1})
		}
	}
	if s.Shuffle != 0 {
		rng := rand.New(rand.NewSource(s.Shuffle))
		rng.Shuffle(len(todo), func(a, b int) { todo[a], todo[b] = todo[b], todo[a] })
	}

	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	// Build every worker's measurer up front: if the k-th fails, the
	// earlier ones are closed and no goroutine has started — nothing to
	// drain, no leaked circuits.
	measurers := make([]*Measurer, 0, workers)
	for w := 0; w < workers; w++ {
		meas, err := s.NewMeasurer(w)
		if err != nil {
			for _, m := range measurers {
				m.Close()
			}
			return nil, nil, fmt.Errorf("ting: worker %d: %w", w, err)
		}
		measurers = append(measurers, meas)
	}
	defer func() {
		for _, m := range measurers {
			m.Close()
		}
	}()

	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	backoff := stats.Backoff{Base: s.Backoff, Factor: 2, Jitter: 0.5}
	var jitterMu sync.Mutex
	jitterRNG := rand.New(rand.NewSource(s.Shuffle ^ 0x7107))
	nextDelay := func(attempt int) time.Duration {
		jitterMu.Lock()
		defer jitterMu.Unlock()
		return backoff.Delay(attempt, jitterRNG)
	}

	// The channel holds at most one instance of each pair (retries are
	// enqueued only after the failed instance was consumed), so this
	// capacity guarantees workers never block on requeue.
	jobs := make(chan pairJob, len(todo)+workers)
	var remaining sync.WaitGroup // open pairs, regardless of attempt count
	remaining.Add(len(todo))
	go func() {
		remaining.Wait()
		close(jobs)
	}()

	maxAttempts := s.Retry + 1
	var mu sync.Mutex // guards matrix writes, progress counter, errors
	var done int
	var firstErr error
	var failures []PairError
	var wg sync.WaitGroup

	settle := func(job pairJob, err error) {
		mu.Lock()
		if err == nil {
			done++
		} else if s.SkipFailures {
			failures = append(failures, PairError{X: job.x, Y: job.y, Err: err, Attempts: job.attempt})
			// A failed pair is still completed work: without this,
			// Progress(done, total) never reaches total on a tolerant
			// scan with failures.
			done++
		} else {
			if firstErr == nil {
				firstErr = fmt.Errorf("ting: pair (%s,%s): %w", job.x, job.y, err)
			}
			// Latch and stop: cancel the scan so no new measurements are
			// dispatched; in-flight ones notice cooperatively.
			cancel()
		}
		if err == nil || s.SkipFailures {
			if s.Progress != nil {
				s.Progress(done, len(todo))
			}
		}
		mu.Unlock()
		remaining.Done()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, meas *Measurer) {
			defer wg.Done()
			for job := range jobs {
				if scanCtx.Err() != nil {
					// Aborted scan: drain without measuring. The scan's
					// result is discarded, so abandoned pairs are not
					// settled — progress must not count them as done.
					remaining.Done()
					continue
				}
				if job.prev == w && workers > 1 && job.bounce < workers {
					// This worker already failed the pair; hand the retry
					// to a different one.
					job.bounce++
					jobs <- job
					continue
				}
				attemptCtx := scanCtx
				var cancelAttempt context.CancelFunc
				if s.PairTimeout > 0 {
					attemptCtx, cancelAttempt = context.WithTimeout(scanCtx, s.PairTimeout)
				}
				s.Observer.workerActive(1)
				rtt, err := s.measureOne(attemptCtx, meas, job.x, job.y)
				s.Observer.workerActive(-1)
				if cancelAttempt != nil {
					cancelAttempt()
				}
				job.attempt++
				if err == nil {
					mu.Lock()
					_ = m.Set(job.x, job.y, rtt)
					mu.Unlock()
					settle(job, nil)
					continue
				}
				if job.attempt < maxAttempts && scanCtx.Err() == nil {
					d := nextDelay(job.attempt)
					s.Observer.retry(job.x, job.y, job.attempt, d, err)
					if d > 0 {
						t := time.NewTimer(d)
						select {
						case <-scanCtx.Done():
						case <-t.C:
						}
						t.Stop()
					}
					job.prev, job.bounce = w, 0
					jobs <- job
					continue
				}
				settle(job, err)
			}
		}(w, measurers[w])
	}

	for _, job := range todo {
		select {
		case <-scanCtx.Done():
			// Stop dispatching; the pairs never handed out are settled
			// here so the drain above terminates.
		case jobs <- job:
			continue
		}
		remaining.Done()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	sort.Slice(failures, func(i, j int) bool {
		if failures[i].X != failures[j].X {
			return failures[i].X < failures[j].X
		}
		return failures[i].Y < failures[j].Y
	})
	return m, failures, nil
}

func (s *Scanner) measureOne(ctx context.Context, meas *Measurer, x, y string) (float64, error) {
	if s.Cache != nil {
		rtt, ok := s.Cache.Get(x, y)
		s.Observer.cacheLookup(x, y, ok)
		if ok {
			return rtt, nil
		}
	}
	res, err := meas.MeasurePair(ctx, x, y)
	if err != nil {
		return 0, err
	}
	if s.Cache != nil {
		s.Cache.Put(x, y, res.RTT)
	}
	return res.RTT, nil
}
