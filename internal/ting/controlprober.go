package ting

import (
	"errors"
	"fmt"
	"time"

	"ting/internal/control"
	"ting/internal/echo"
)

// ControlProber drives Ting through a control port, the way the paper's
// Python client drove an unmodified Tor via Stem (§4.1): EXTENDCIRCUIT to
// build each circuit, the data port to attach an echo stream, CLOSECIRCUIT
// when done.
type ControlProber struct {
	// Conn is an authenticated control connection. Required.
	Conn *control.Conn
	// DataAddr is the onion proxy's data-port address. Required.
	DataAddr string
	// Target is the echo destination. Required.
	Target string
	// ToMs converts wall-clock durations to milliseconds; nil means plain
	// milliseconds.
	ToMs func(time.Duration) float64
}

// SampleCircuit implements CircuitProber over the control protocol.
func (p *ControlProber) SampleCircuit(path []string, n int) ([]float64, error) {
	if p.Conn == nil || p.DataAddr == "" || p.Target == "" {
		return nil, errors.New("ting: control prober misconfigured")
	}
	if n <= 0 {
		return nil, errors.New("ting: sample count must be positive")
	}
	circID, err := p.Conn.ExtendCircuit(path)
	if err != nil {
		return nil, fmt.Errorf("ting: extend circuit: %w", err)
	}
	defer p.Conn.CloseCircuit(circID)

	conn, err := control.DialStream(p.DataAddr, circID, p.Target)
	if err != nil {
		return nil, fmt.Errorf("ting: attach stream: %w", err)
	}
	defer conn.Close()

	rtts, err := echo.NewClient(conn).ProbeN(n)
	if err != nil {
		return nil, fmt.Errorf("ting: probe: %w", err)
	}
	out := make([]float64, len(rtts))
	for i, d := range rtts {
		if p.ToMs != nil {
			out[i] = p.ToMs(d)
		} else {
			out[i] = float64(d) / float64(time.Millisecond)
		}
	}
	return out, nil
}
