package ting

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ting/internal/control"
	"ting/internal/echo"
)

// ControlProber drives Ting through a control port, the way the paper's
// Python client drove an unmodified Tor via Stem (§4.1): EXTENDCIRCUIT to
// build each circuit, the data port to attach an echo stream, CLOSECIRCUIT
// when done.
type ControlProber struct {
	// Conn is an authenticated control connection. Required.
	Conn *control.Conn
	// DataAddr is the onion proxy's data-port address. Required.
	DataAddr string
	// Target is the echo destination. Required.
	Target string
	// ToMs converts wall-clock durations to milliseconds; nil means plain
	// milliseconds.
	ToMs func(time.Duration) float64
}

// SampleCircuit implements CircuitProber over the control protocol.
// Cancellation is checked between protocol steps and between probe
// batches, so a cancelled scan releases its circuit and its control
// connection promptly instead of finishing the full sample count.
func (p *ControlProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	if p.Conn == nil || p.DataAddr == "" || p.Target == "" {
		return nil, errors.New("ting: control prober misconfigured")
	}
	if n <= 0 {
		return nil, errors.New("ting: sample count must be positive")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	circID, err := p.Conn.ExtendCircuit(path)
	if err != nil {
		return nil, fmt.Errorf("ting: extend circuit: %w", err)
	}
	defer p.Conn.CloseCircuit(circID)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := control.DialStream(p.DataAddr, circID, p.Target)
	if err != nil {
		return nil, fmt.Errorf("ting: attach stream: %w", err)
	}
	defer conn.Close()

	// Probe in small batches so cancellation lands within a few samples
	// even when each round trip is fast.
	const batch = 8
	ec := echo.NewClient(conn)
	out := make([]float64, 0, n)
	for len(out) < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k := batch
		if rem := n - len(out); rem < k {
			k = rem
		}
		rtts, err := ec.ProbeN(k)
		if err != nil {
			return nil, fmt.Errorf("ting: probe: %w", err)
		}
		for _, d := range rtts {
			if p.ToMs != nil {
				out = append(out, p.ToMs(d))
			} else {
				out = append(out, float64(d)/float64(time.Millisecond))
			}
		}
	}
	return out, nil
}
