package ting

import (
	"context"
	"strings"
	"testing"
)

func TestScanPairsRestrictsToListedPairs(t *testing.T) {
	f := bigFakeWorld()
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Workers: 2,
	}
	names := []string{"x", "y", "u", "v"}
	m, failures, err := sc.ScanPairs(context.Background(), names, [][2]string{{"x", "y"}, {"u", "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if len(m.Names()) != 4 {
		t.Fatalf("matrix over %d relays, want the full name set 4", len(m.Names()))
	}
	for _, p := range [][2]string{{"x", "y"}, {"u", "v"}} {
		if prov := m.Prov(p[0], p[1]); prov != ProvFresh {
			t.Errorf("pair %v prov = %v, want fresh", p, prov)
		}
		if v, _ := m.RTT(p[0], p[1]); v <= 0 {
			t.Errorf("pair %v rtt = %g, want measured", p, v)
		}
	}
	for _, p := range [][2]string{{"x", "u"}, {"x", "v"}, {"y", "u"}, {"y", "v"}} {
		if prov := m.Prov(p[0], p[1]); prov != ProvMissing {
			t.Errorf("unlisted pair %v prov = %v, want missing", p, prov)
		}
	}
}

func TestScanPairsValidation(t *testing.T) {
	f := bigFakeWorld()
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
	}
	names := []string{"x", "y"}
	if _, _, err := sc.ScanPairs(context.Background(), names, [][2]string{{"x", "x"}}); err == nil || !strings.Contains(err.Error(), "self-pair") {
		t.Errorf("self-pair err = %v", err)
	}
	if _, _, err := sc.ScanPairs(context.Background(), names, [][2]string{{"x", "nope"}}); err == nil || !strings.Contains(err.Error(), "not in names") {
		t.Errorf("unknown endpoint err = %v", err)
	}
	// An explicitly empty restriction measures nothing — and is not an
	// all-pairs scan.
	m, failures, err := sc.ScanPairs(context.Background(), names, [][2]string{})
	if err != nil || len(failures) != 0 {
		t.Fatalf("empty restriction: %v %v", failures, err)
	}
	if prov := m.Prov("x", "y"); prov != ProvMissing {
		t.Errorf("empty restriction measured x-y (prov %v)", prov)
	}
}

func TestScanPairsCheckpointsLikeScan(t *testing.T) {
	f := bigFakeWorld()
	cp := &MemCheckpoint{}
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Checkpoint: cp,
	}
	names := []string{"x", "y", "u", "v"}
	if _, _, err := sc.ScanPairs(context.Background(), names, [][2]string{{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayState(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !equalNames(st.Names, names) {
		t.Errorf("checkpoint header names = %v, want the full campaign set %v", st.Names, names)
	}
	if _, ok := st.Pairs[pairKey("x", "y")]; !ok {
		t.Error("measured pair not in checkpoint")
	}
	if len(st.Pairs) != 1 {
		t.Errorf("checkpoint has %d pairs, want 1", len(st.Pairs))
	}
}

func TestReplayShardRecords(t *testing.T) {
	cp := &MemCheckpoint{}
	recs := []CheckpointRecord{
		{Kind: RecordCampaign, Names: []string{"a", "b", "c"}},
		{Kind: RecordShard, Shard: "t0-0.p0-3", Lease: 1, Worker: "w1"},
		{Kind: RecordPair, X: "a", Y: "b", RTT: 5},
		// Re-granted at a higher epoch after an expiry: the highest wins.
		{Kind: RecordShard, Shard: "t0-0.p0-3", Lease: 4, Worker: "w1"},
		{Kind: RecordShard, Shard: "t0-0.p0-3", Lease: 2, Worker: "w1"},
	}
	for _, r := range recs {
		if err := cp.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st, err := ReplayState(cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Shards["t0-0.p0-3"]; got != 4 {
		t.Errorf("shard lease epoch = %d, want the highest seen (4)", got)
	}
	if len(st.Pairs) != 1 {
		t.Errorf("pairs = %d, want 1 (shard records must not eat pair records)", len(st.Pairs))
	}
	// A shard record without an ID is malformed.
	bad := &MemCheckpoint{}
	_ = bad.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "b"}})
	_ = bad.Append(CheckpointRecord{Kind: RecordShard, Lease: 1})
	if _, err := ReplayState(bad); err == nil {
		t.Error("shard record without ID replayed, want error")
	}
}
