package ting

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ting/internal/telemetry"
)

// TestObserverNilSafe: a nil Observer, an Observer with nil fields, and a
// telemetry observer over a nil registry must all absorb every callback.
func TestObserverNilSafe(t *testing.T) {
	for _, o := range []*Observer{nil, {}, NewTelemetryObserver(nil)} {
		o.circuitDone([]string{"w", "x", "y", "z"}, 3, time.Millisecond, nil)
		o.samples([]string{"w", "x"}, []float64{1, 2})
		o.pairDone("x", "y", &Measurement{RTT: 73}, nil)
		o.retry("x", "y", 1, time.Millisecond, nil)
		o.cacheLookup("x", "y", true)
		o.workerActive(1)
		o.sweepDone(MonitorStats{})
		o.halfCircuit([]string{"w", "x"}, HalfCircuitHit)
		o.halfCircuit([]string{"w", "x"}, HalfCircuitMiss)
		o.halfCircuit([]string{"w", "x"}, HalfCircuitWait)
		o.checkpointAppend(&CheckpointRecord{Kind: RecordPair, X: "x", Y: "y", RTT: 73})
		o.checkpointReplay(3, 4)
		o.breakerChange("x", BreakerClosed, BreakerOpen)
		o.quarantine("x", "y", "x", true)
		o.quarantine("x", "y", "x", false)
	}
}

// TestDurabilityTelemetry drives a checkpointed, breaker-guarded scan and a
// resume through a telemetry observer and checks the four durability
// metrics: checkpoint appends/replays, the open-breaker gauge, and the
// quarantined-pair counter.
func TestDurabilityTelemetry(t *testing.T) {
	reg := telemetry.New()
	obs := NewTelemetryObserver(reg)
	f := bigFakeWorld()
	f.errs["x"] = fmt.Errorf("x is down")
	cp := &MemCheckpoint{}
	h := NewHealth(HealthConfig{FailureThreshold: 2, Cooldown: time.Hour, Observer: obs})
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Workers:      1,
		SkipFailures: true,
		Health:       h,
		Checkpoint:   cp,
		Observer:     obs,
	}
	if _, _, err := sc.Scan(context.Background(), []string{"x", "y", "u", "v"}); err != nil {
		t.Fatal(err)
	}
	// Header + 3 successful pairs + their half circuits all hit the log.
	if got := reg.Counter("ting.checkpoint.appended").Value(); got < 4 {
		t.Errorf("checkpoint.appended = %d, want ≥ 4", got)
	}
	if got := reg.Gauge("ting.health.breaker_open").Value(); got != 1 {
		t.Errorf("breaker_open gauge = %d, want 1 (x is quarantined)", got)
	}
	if got := reg.Counter("ting.quarantined_pairs").Value(); got != 1 {
		t.Errorf("quarantined_pairs = %d, want 1", got)
	}
	if got := reg.Counter("ting.checkpoint.replayed").Value(); got != 0 {
		t.Errorf("checkpoint.replayed = %d before any resume", got)
	}

	// A resume of the same log replays the three finished pairs (plus the
	// memoized half circuits) through the replay counter.
	f.errs = map[string]error{} // x recovered; fresh health, no quarantine
	sc2 := &Scanner{
		NewMeasurer: sc.NewMeasurer,
		Workers:     1,
		Observer:    obs,
	}
	if _, _, err := sc2.Resume(context.Background(), cp); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ting.checkpoint.replayed").Value(); got < 3 {
		t.Errorf("checkpoint.replayed = %d after resume, want ≥ 3", got)
	}
}

// TestScanTelemetryCounts drives a tolerant scan with transient failures
// and a shared cache through a telemetry-backed observer, then checks the
// registry recorded the full measurement lifecycle: circuits, samples,
// pairs, retries, and cache traffic.
func TestScanTelemetryCounts(t *testing.T) {
	reg := telemetry.New()
	obs := NewTelemetryObserver(reg)
	p := &flakyProber{fakeProber: newFakeWorld(), left: 2}
	cache := NewCache(0)
	newScanner := func() *Scanner {
		return &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1, Observer: obs})
			},
			Cache:    cache,
			Observer: obs,
			Retry:    2,
			Backoff:  time.Millisecond,
		}
	}
	m, failures, err := newScanner().Scan(context.Background(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if v, _ := m.RTT("x", "y"); v != 73 {
		t.Fatalf("RTT = %v, want 73", v)
	}

	count := func(name string) int64 { return reg.Counter(name).Value() }
	// The two injected transient failures each cost one failed circuit,
	// one failed pair attempt, and one scheduled retry; the third attempt
	// measures the pair with three clean circuits of one sample each.
	if got := count("ting.circuits_sampled"); got != 3 {
		t.Errorf("circuits_sampled = %d, want 3", got)
	}
	if got := count("ting.circuit_failures"); got != 2 {
		t.Errorf("circuit_failures = %d, want 2", got)
	}
	if got := count("ting.samples"); got != 3 {
		t.Errorf("samples = %d, want 3", got)
	}
	if got := count("ting.pairs_measured"); got != 1 {
		t.Errorf("pairs_measured = %d, want 1", got)
	}
	if got := count("ting.pair_failures"); got != 2 {
		t.Errorf("pair_failures = %d, want 2", got)
	}
	if got := count("ting.retries"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	// All three attempts probed the cache before measuring; none hit.
	if got := count("ting.cache_misses"); got != 3 {
		t.Errorf("cache_misses = %d, want 3", got)
	}
	if got := count("ting.cache_hits"); got != 0 {
		t.Errorf("cache_hits = %d before a second scan", got)
	}
	if got := reg.Gauge("ting.scanner_active_workers").Value(); got != 0 {
		t.Errorf("active workers = %d after scan, want 0", got)
	}
	if got := reg.Histogram("ting.pair_rtt_ms").Count(); got != 1 {
		t.Errorf("pair_rtt_ms count = %d, want 1", got)
	}
	if reg.Trace().Total() == 0 {
		t.Error("no lifecycle events traced")
	}

	// A second scan over the same cache answers from it: one hit, no new
	// measurement.
	if _, _, err := newScanner().Scan(context.Background(), []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if got := count("ting.cache_hits"); got != 1 {
		t.Errorf("cache_hits = %d after cached rescan, want 1", got)
	}
	if got := count("ting.pairs_measured"); got != 1 {
		t.Errorf("cached rescan re-measured: pairs = %d", got)
	}
}

// TestDebugEndpointDuringScan is the acceptance check for the tentpole:
// the HTTP debug surface, queried after a scan with failures and retries,
// serves a JSON snapshot whose circuit, sample, retry, and cache counters
// are all nonzero.
func TestDebugEndpointDuringScan(t *testing.T) {
	reg := telemetry.New()
	obs := NewTelemetryObserver(reg)
	p := &flakyProber{fakeProber: newFakeWorld(), left: 1}
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 2, Observer: obs})
		},
		Cache:    NewCache(0),
		Observer: obs,
		Retry:    1,
		Backoff:  time.Millisecond,
	}
	if _, _, err := sc.Scan(context.Background(), []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ting.circuits_sampled", "ting.samples", "ting.retries", "ting.cache_misses",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("%s = 0 in served snapshot, want nonzero", name)
		}
	}
	if h, ok := snap.Histograms["ting.pair_rtt_ms"]; !ok || h.Count == 0 {
		t.Errorf("pair_rtt_ms missing from served snapshot: %+v", snap.Histograms)
	}
}

// TestMonitorSweepTelemetry: monitor sweeps report through the same
// observer, including empty sweeps (an idle monitor is observable too).
func TestMonitorSweepTelemetry(t *testing.T) {
	reg := telemetry.New()
	obs := NewTelemetryObserver(reg)
	f := newFakeWorld()
	cfg := monitorConfig(t, f, []string{"x", "y"})
	cfg.Observer = obs
	cfg.MaxAge = time.Hour
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Second sweep finds everything fresh — still a sweep.
	if _, err := mon.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ting.sweeps").Value(); got != 2 {
		t.Errorf("sweeps = %d, want 2 (empty sweeps count)", got)
	}
}

// TestCacheZeroTTLNeverExpires pins the ttl ≤ 0 semantics: "never
// expires", not "expires immediately".
func TestCacheZeroTTLNeverExpires(t *testing.T) {
	for _, ttl := range []time.Duration{0, -time.Second} {
		c := NewCache(ttl)
		now := time.Unix(0, 0)
		c.now = func() time.Time { return now }
		c.Put("x", "y", 73)
		now = now.Add(1000 * time.Hour)
		if v, ok := c.Get("x", "y"); !ok || v != 73 {
			t.Errorf("ttl=%v: entry expired (%v, %v), want eternal hit", ttl, v, ok)
		}
		if c.Len() != 1 {
			t.Errorf("ttl=%v: Len = %d", ttl, c.Len())
		}
	}
}

// TestCachePutPrunesExpired: with a TTL set, Put evicts entries that have
// already lapsed so the map does not grow with dead pairs. Pruning is
// amortized — expired entries may linger until the map grows past its
// threshold — but Get never serves them, and growth always reclaims them.
func TestCachePutPrunesExpired(t *testing.T) {
	c := NewCache(time.Minute)
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	// Fill to the first prune threshold; nothing is expired yet, so the
	// sweep keeps everything and the threshold doubles.
	for i := 0; i < cachePruneFloor; i++ {
		c.Put(fmt.Sprintf("a%02d", i), "b", float64(i))
	}
	if c.Len() != cachePruneFloor {
		t.Fatalf("Len = %d after %d fresh puts", c.Len(), cachePruneFloor)
	}
	now = now.Add(time.Hour) // every entry above lapses

	// One more Put must NOT pay for a sweep (that is the amortization):
	// the dead entries linger, but Get refuses to serve them.
	c.Put("e", "f", 3)
	if c.Len() != cachePruneFloor+1 {
		t.Errorf("Len = %d right after expiry, want lazy %d", c.Len(), cachePruneFloor+1)
	}
	if _, ok := c.Get("a00", "b"); ok {
		t.Error("Get served an expired entry")
	}

	// Growing past the threshold triggers the sweep: all expired entries
	// vanish, fresh ones survive.
	fresh := 1
	for i := 0; c.Len() > cachePruneFloor && i < 4*cachePruneFloor; i++ {
		c.Put(fmt.Sprintf("g%02d", i), "h", float64(i))
		fresh++
	}
	if c.Len() != fresh {
		t.Errorf("Len = %d after pruning growth, want only the %d fresh entries", c.Len(), fresh)
	}
	if _, ok := c.Get("a00", "b"); ok {
		t.Error("expired entry survived the sweep")
	}
	if v, ok := c.Get("e", "f"); !ok || v != 3 {
		t.Error("fresh entry lost in prune")
	}
}
