package ting

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ting/internal/inet"
)

// budgetScanner builds a scanner over a model world for budget tests.
func budgetScanner(t *testing.T, n int, seed int64, workers int) (*Scanner, []string) {
	t.Helper()
	topo, host, nodeOf := modelWorld(t, n, seed)
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := NewModelProber(topo, host, nodeOf, seed+10+int64(worker))
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 4})
		},
		Workers: workers,
		Shuffle: seed,
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = topo.Node(inet.NodeID(i)).Name
	}
	return sc, names
}

// TestScanBudgetCompletesMatrix: a budgeted scan must return a complete
// matrix — measured cells fresh at confidence 1, every other cell
// predicted with a confidence in (0, 1].
func TestScanBudgetCompletesMatrix(t *testing.T) {
	sc, names := budgetScanner(t, 16, 700, 2)
	n := len(names)
	allPairs := n * (n - 1) / 2
	budget := allPairs / 3

	m, failures, err := sc.ScanBudget(context.Background(), names, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("healthy world produced failures: %v", failures)
	}
	pc := m.ProvCounts()
	if pc.Missing != 0 {
		t.Errorf("%d cells missing from a completed matrix", pc.Missing)
	}
	if pc.Fresh == 0 || pc.Fresh > budget {
		t.Errorf("fresh cells %d outside (0, budget %d]", pc.Fresh, budget)
	}
	if pc.Predicted != allPairs-pc.Fresh {
		t.Errorf("predicted %d + fresh %d != %d pairs", pc.Predicted, pc.Fresh, allPairs)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conf := m.ConfAt(i, j)
			switch m.ProvAt(i, j) {
			case ProvFresh:
				if conf != 1 {
					t.Fatalf("measured cell (%d,%d) confidence %v, want 1", i, j, conf)
				}
			case ProvPredicted:
				if conf <= 0 || conf > 1 {
					t.Fatalf("predicted cell (%d,%d) confidence %v outside (0,1]", i, j, conf)
				}
				if m.At(i, j) <= 0 {
					t.Fatalf("predicted cell (%d,%d) has no value", i, j)
				}
			default:
				t.Fatalf("cell (%d,%d) provenance %v", i, j, m.ProvAt(i, j))
			}
			if m.ConfAt(j, i) != conf {
				t.Fatalf("confidence asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestScanBudgetSeriesEconomy is the tentpole's cost claim, counted at the
// mechanism: each CircuitDone is one sampled circuit series. A 20-node
// budgeted scan at ~15% budget must cost at least 4× fewer series than the
// memoized all-pairs scan.
func TestScanBudgetSeriesEconomy(t *testing.T) {
	const n = 20
	topo, host, nodeOf := modelWorld(t, n, 800)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = topo.Node(inet.NodeID(i)).Name
	}
	count := func(run func(sc *Scanner) error) int64 {
		var series atomic.Int64
		obs := &Observer{
			CircuitDone: func(_ []string, _ int, _ time.Duration, _ error) { series.Add(1) },
		}
		sc := &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				p := NewModelProber(topo, host, nodeOf, 810+int64(worker))
				return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 4, Observer: obs})
			},
			Workers: 2,
			Shuffle: 800,
		}
		if err := run(sc); err != nil {
			t.Fatal(err)
		}
		return series.Load()
	}
	allPairs := n * (n - 1) / 2 // 190
	budget := 30

	full := count(func(sc *Scanner) error {
		_, _, err := sc.Scan(context.Background(), names)
		return err
	})
	budgeted := count(func(sc *Scanner) error {
		_, _, err := sc.ScanBudget(context.Background(), names, budget)
		return err
	})
	// Memoized all-pairs costs pairs + N series; the budgeted scan should
	// cost about budget + touched-node halves.
	if full < int64(allPairs) {
		t.Fatalf("all-pairs scan sampled %d series, fewer than %d pairs?", full, allPairs)
	}
	if budgeted*4 > full {
		t.Errorf("budgeted scan sampled %d series vs %d all-pairs — less than the promised 4× saving", budgeted, full)
	}
}

// TestScanBudgetFallsThroughToScan: budget ≥ all pairs is a plain scan —
// no predicted cells.
func TestScanBudgetFallsThroughToScan(t *testing.T) {
	sc, names := budgetScanner(t, 6, 900, 2)
	allPairs := 6 * 5 / 2
	m, _, err := sc.ScanBudget(context.Background(), names, allPairs)
	if err != nil {
		t.Fatal(err)
	}
	pc := m.ProvCounts()
	if pc.Fresh != allPairs || pc.Predicted != 0 {
		t.Errorf("ProvCounts = %+v, want all %d fresh", pc, allPairs)
	}
}

// TestScanBudgetRejectsNonPositive pins the argument contract.
func TestScanBudgetRejectsNonPositive(t *testing.T) {
	sc, names := budgetScanner(t, 6, 901, 1)
	if _, _, err := sc.ScanBudget(context.Background(), names, 0); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, _, err := sc.ScanBudget(context.Background(), names, -5); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestScanBudgetObserver: the BudgetComplete hook reports the campaign's
// measured/total split, and the telemetry observer turns it into the
// budget counters.
func TestScanBudgetObserver(t *testing.T) {
	sc, names := budgetScanner(t, 12, 902, 2)
	n := len(names)
	allPairs := n * (n - 1) / 2
	budget := allPairs / 4

	var gotMeasured, gotAll atomic.Int64
	sc.Observer = &Observer{
		BudgetComplete: func(measured, all int) {
			gotMeasured.Store(int64(measured))
			gotAll.Store(int64(all))
		},
	}
	m, _, err := sc.ScanBudget(context.Background(), names, budget)
	if err != nil {
		t.Fatal(err)
	}
	if gotAll.Load() != int64(allPairs) {
		t.Errorf("BudgetComplete allPairs = %d, want %d", gotAll.Load(), allPairs)
	}
	meas := gotMeasured.Load()
	if meas <= 0 || meas > int64(budget) {
		t.Errorf("BudgetComplete measured = %d, want in (0, %d]", meas, budget)
	}
	pc := m.ProvCounts()
	if int64(pc.Fresh) > meas {
		t.Errorf("matrix has %d fresh cells but only %d were reported measured", pc.Fresh, meas)
	}
}

// TestScanBudgetProgressMonotonic: the cross-batch progress wrapper must
// report a monotonically nondecreasing done count.
func TestScanBudgetProgressMonotonic(t *testing.T) {
	sc, names := budgetScanner(t, 12, 903, 2)
	var mu sync.Mutex
	last := 0
	sc.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done < last {
			t.Errorf("progress went backwards: %d after %d", done, last)
		}
		last = done
		if done > total {
			t.Errorf("done %d > total %d", done, total)
		}
	}
	if _, _, err := sc.ScanBudget(context.Background(), names, 20); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last == 0 {
		t.Error("progress never reported")
	}
}
