package ting

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Monitor keeps an all-pairs RTT matrix fresh over time. §4.6 shows Ting's
// measurements are stable for at least a week, so "taking measurements
// with Ting infrequently and caching them is sufficient" — the monitor
// embodies that workflow: it re-measures the stalest pairs on each sweep,
// spreading load instead of re-scanning everything at once.
type MonitorConfig struct {
	// NewMeasurer builds one measurer per sweep worker. Required.
	NewMeasurer func(worker int) (*Measurer, error)
	// Names are the relays to track. Required, ≥ 2.
	Names []string
	// MaxAge is how old a pair measurement may grow before a sweep
	// refreshes it. Default 24h (well inside the week of §4.6).
	MaxAge time.Duration
	// PairsPerSweep bounds how many pairs one sweep refreshes (load
	// spreading). Default: all stale pairs.
	PairsPerSweep int
	// Workers is the sweep parallelism. Default 2.
	Workers int
	// Observer, if non-nil, receives a SweepDone callback after each sweep
	// with the cumulative stats.
	Observer *Observer
	// Health, if non-nil, is the relay scoreboard consulted before each
	// pair: pairs touching a quarantined relay are skipped for the sweep
	// (they stay stale and are reconsidered next time, when the breaker may
	// have half-opened). Sweep outcomes feed back into the same scoreboard.
	// Share the instance with a Scanner to carry reputation across both.
	Health *Health
	// now is injectable for tests.
	now func() time.Time
}

// Monitor is created by NewMonitor and driven by Sweep (or RunEvery).
type Monitor struct {
	cfg    MonitorConfig
	matrix *Matrix

	mu    sync.Mutex
	when  map[[2]string]time.Time
	stats MonitorStats
}

// MonitorStats counts monitor activity.
type MonitorStats struct {
	Sweeps      int
	Measured    int
	Skipped     int // fresh pairs left alone
	Failed      int // pair measurements that errored (stay stale, retried next sweep)
	Quarantined int // stale pairs skipped because a relay's breaker was open
	LastSweep   time.Time
}

// NewMonitor creates a monitor with an empty (all-stale) matrix.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.NewMeasurer == nil {
		return nil, errors.New("ting: monitor missing NewMeasurer")
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = 24 * time.Hour
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	m, err := NewMatrix(cfg.Names)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:    cfg,
		matrix: m,
		when:   make(map[[2]string]time.Time),
	}, nil
}

// Matrix returns a snapshot copy of the current matrix.
func (mon *Monitor) Matrix() *Matrix {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	return mon.matrix.Clone()
}

// Stats returns a snapshot of monitor counters.
func (mon *Monitor) Stats() MonitorStats {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	return mon.stats
}

// StalePairs lists the pairs older than MaxAge, stalest first.
func (mon *Monitor) StalePairs() [][2]string {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	return mon.stalePairsLocked()
}

func (mon *Monitor) stalePairsLocked() [][2]string {
	now := mon.cfg.now()
	var out [][2]string
	names := mon.matrix.Names()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			key := pairKey(names[i], names[j])
			if t, ok := mon.when[key]; !ok || now.Sub(t) > mon.cfg.MaxAge {
				out = append(out, [2]string{names[i], names[j]})
			}
		}
	}
	// Stalest first: zero-time (never measured) pairs sort ahead.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			ta := mon.when[pairKey(out[j][0], out[j][1])]
			tb := mon.when[pairKey(out[j-1][0], out[j-1][1])]
			if ta.Before(tb) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// Sweep refreshes up to PairsPerSweep stale pairs and returns how many it
// measured. Cancelling ctx stops the sweep cooperatively: in-flight pairs
// finish, unmeasured ones stay stale for the next sweep, and ctx.Err() is
// returned.
func (mon *Monitor) Sweep(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mon.mu.Lock()
	stale := mon.stalePairsLocked()
	total := mon.matrix.N() * (mon.matrix.N() - 1) / 2
	limit := mon.cfg.PairsPerSweep
	if limit <= 0 || limit > len(stale) {
		limit = len(stale)
	}
	mon.mu.Unlock()

	// Select up to limit sweepable pairs, consulting the breaker scoreboard
	// as we go: quarantined pairs stay stale for a later sweep instead of
	// consuming budget on a dead relay. Stale pairs beyond the budget are
	// left unexamined so no half-open probe slot is claimed for a pair this
	// sweep will not measure.
	todo := make([][2]string, 0, limit)
	quarantined := 0
	for _, p := range stale {
		if len(todo) >= limit {
			break
		}
		if h := mon.cfg.Health; h != nil {
			if qe := h.Allow(p[0], p[1]); qe != nil {
				quarantined++
				continue
			}
		}
		todo = append(todo, p)
	}

	mon.mu.Lock()
	mon.stats.Sweeps++
	mon.stats.Skipped += total - len(todo) - quarantined
	mon.stats.Quarantined += quarantined
	mon.stats.LastSweep = mon.cfg.now()
	mon.mu.Unlock()

	if len(todo) == 0 {
		mon.cfg.Observer.sweepDone(mon.Stats())
		return 0, nil
	}

	workers := mon.cfg.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	// Build all measurers before starting any worker, so a failure midway
	// leaves no goroutine to join and every created measurer is closed.
	measurers := make([]*Measurer, 0, workers)
	for w := 0; w < workers; w++ {
		meas, err := mon.cfg.NewMeasurer(w)
		if err != nil {
			for _, m := range measurers {
				m.Close()
			}
			return 0, fmt.Errorf("ting: monitor worker %d: %w", w, err)
		}
		measurers = append(measurers, meas)
	}
	defer func() {
		for _, m := range measurers {
			m.Close()
		}
	}()

	jobs := make(chan [2]string)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, meas := range measurers {
		wg.Add(1)
		go func(meas *Measurer) {
			defer wg.Done()
			for p := range jobs {
				if ctx.Err() != nil {
					continue // drain; pair stays stale
				}
				start := time.Now()
				res, err := meas.MeasurePair(ctx, p[0], p[1])
				if err != nil {
					// A dead relay must not wedge the monitor: record the
					// failure and let the pair stay stale for the next
					// sweep. The first error is still surfaced.
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					mon.mu.Lock()
					mon.stats.Failed++
					mon.mu.Unlock()
					if h := mon.cfg.Health; h != nil && ctx.Err() == nil {
						for _, relay := range culprits(p[0], p[1], err) {
							h.Failure(relay, err, time.Since(start))
						}
					}
					continue
				}
				mon.mu.Lock()
				_ = mon.matrix.Set(p[0], p[1], res.RTT)
				_ = mon.matrix.SetProv(p[0], p[1], ProvFresh)
				mon.when[pairKey(p[0], p[1])] = mon.cfg.now()
				mon.stats.Measured++
				mon.mu.Unlock()
				if h := mon.cfg.Health; h != nil {
					h.Success(p[0])
					h.Success(p[1])
				}
			}
		}(meas)
	}
feed:
	for _, p := range todo {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- p:
		}
	}
	close(jobs)
	wg.Wait()
	mon.cfg.Observer.sweepDone(mon.Stats())
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return len(todo), nil
}

// RunEvery sweeps on the interval until ctx is cancelled (which returns
// nil: a cancelled monitor stopped on request). It runs one sweep
// immediately.
func (mon *Monitor) RunEvery(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return errors.New("ting: non-positive monitor interval")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := mon.Sweep(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			if _, err := mon.Sweep(ctx); err != nil {
				if errors.Is(err, context.Canceled) {
					return nil
				}
				return err
			}
		}
	}
}
