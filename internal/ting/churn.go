package ting

import (
	"errors"
	"fmt"
)

// ErrChurned is the sentinel matched by errors.Is for every pair the
// scanner tombstoned because consensus churn removed one of its relays
// mid-campaign. Like ErrQuarantined, it is a scheduling verdict, not a
// measurement failure: no circuits were built and no retry budget was
// burned.
var ErrChurned = errors.New("relay left the consensus")

// ChurnError reports that a pair was abandoned because one of its relays
// left the consensus (or rejoined under a new identity) while the scan was
// running. Relay is the departed relay and Epoch the consensus epoch at
// which the scanner learned of the departure.
type ChurnError struct {
	Relay string
	Epoch uint64
}

func (e *ChurnError) Error() string {
	return fmt.Sprintf("relay %s left the consensus at epoch %d", e.Relay, e.Epoch)
}

// Is makes errors.Is(err, ErrChurned) match any *ChurnError.
func (e *ChurnError) Is(target error) bool { return target == ErrChurned }

// ChurnKind classifies one consensus-churn event the scanner reconciled.
type ChurnKind int

const (
	// ChurnJoined: a relay entered the consensus mid-scan; its pairs were
	// appended to the schedule.
	ChurnJoined ChurnKind = iota
	// ChurnRemoved: a relay left the consensus mid-scan; its pending pairs
	// were tombstoned.
	ChurnRemoved
	// ChurnRotated: a relay rotated its onion key (or rejoined under the
	// same nickname with a new key); its cached half circuits and breaker
	// state were invalidated.
	ChurnRotated
	// ChurnTombstoned: one pending pair was abandoned because a relay it
	// touches left the consensus. Fired once per tombstoned pair, after
	// the relay's own ChurnRemoved event.
	ChurnTombstoned
)

// String names the kind for logs.
func (k ChurnKind) String() string {
	switch k {
	case ChurnJoined:
		return "joined"
	case ChurnRemoved:
		return "removed"
	case ChurnRotated:
		return "rotated"
	case ChurnTombstoned:
		return "tombstoned"
	default:
		return "unknown"
	}
}

// ChurnEvent is one consensus reconciliation the scanner performed,
// reported through Observer.Churn. Relay is the relay the delta named;
// for ChurnTombstoned events X, Y identify the abandoned pair and
// Tombstoned is 1 (it is also set on a ChurnRemoved fired during resume
// reconciliation, where the abandoned pairs are counted in bulk).
type ChurnEvent struct {
	Kind       ChurnKind
	Relay      string
	Epoch      uint64
	X, Y       string
	Tombstoned int
}
