package ting

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ting/internal/inet"
)

// halfEvents is a concurrency-safe HalfCircuit observer for tests.
type halfEvents struct {
	hits, misses, waits atomic.Int64
}

func (h *halfEvents) observer() *Observer {
	return &Observer{
		HalfCircuit: func(path []string, ev HalfCircuitEvent) {
			switch ev {
			case HalfCircuitHit:
				h.hits.Add(1)
			case HalfCircuitMiss:
				h.misses.Add(1)
			case HalfCircuitWait:
				h.waits.Add(1)
			}
		},
	}
}

// TestHalfCacheSingleflight: N concurrent callers for the same key share
// one measurement — fn runs exactly once, one caller reports a miss, and
// everyone else either waited on the flight or hit the completed entry.
func TestHalfCacheSingleflight(t *testing.T) {
	c := NewHalfCache(0)
	ev := &halfEvents{}
	obs := ev.observer()
	path := []string{"w", "x"}

	const callers = 16
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]float64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(context.Background(), path, 50, obs,
				func(context.Context) (float64, error) {
					calls.Add(1)
					<-release // hold the flight until every caller launched
					return 41.5, nil
				})
		}(i)
	}
	close(release)
	wg.Wait()

	for i := range results {
		if errs[i] != nil || results[i] != 41.5 {
			t.Fatalf("caller %d: (%v, %v), want (41.5, nil)", i, results[i], errs[i])
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want exactly 1", got)
	}
	if ev.misses.Load() != 1 {
		t.Errorf("misses = %d, want 1", ev.misses.Load())
	}
	if got := ev.hits.Load() + ev.waits.Load(); got != callers-1 {
		t.Errorf("hits+waits = %d, want %d", got, callers-1)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

// TestHalfCacheKeying: different paths and different sample counts are
// distinct series — a cross-scan handle must never conflate a 10-sample
// min with a 200-sample min.
func TestHalfCacheKeying(t *testing.T) {
	c := NewHalfCache(0)
	measure := func(v float64) func(context.Context) (float64, error) {
		return func(context.Context) (float64, error) { return v, nil }
	}
	if v, _ := c.Do(context.Background(), []string{"w", "x"}, 10, nil, measure(1)); v != 1 {
		t.Fatalf("first series = %v", v)
	}
	if v, _ := c.Do(context.Background(), []string{"w", "x"}, 200, nil, measure(2)); v != 2 {
		t.Errorf("sample count not part of the key: %v", v)
	}
	if v, _ := c.Do(context.Background(), []string{"w", "y"}, 10, nil, measure(3)); v != 3 {
		t.Errorf("path not part of the key: %v", v)
	}
	if v, _ := c.Do(context.Background(), []string{"w", "x"}, 10, nil, measure(99)); v != 1 {
		t.Errorf("memoized series re-measured: %v", v)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

// TestHalfCacheLeaderFailureTakeover: a waiter whose leader fails measures
// with its own fn instead of inheriting the error, and the failed series is
// never cached.
func TestHalfCacheLeaderFailureTakeover(t *testing.T) {
	c := NewHalfCache(0)
	ev := &halfEvents{}
	obs := ev.observer()
	path := []string{"w", "x"}

	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), path, 5, obs,
			func(context.Context) (float64, error) {
				close(leaderIn)
				<-leaderGo
				return 0, errors.New("leader's prober wedged")
			})
		leaderDone <- err
	}()
	<-leaderIn // the flight is registered and in fn

	var takeoverCalls atomic.Int64
	waiterDone := make(chan struct{})
	var waiterVal float64
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterVal, waiterErr = c.Do(context.Background(), path, 5, obs,
			func(context.Context) (float64, error) {
				takeoverCalls.Add(1)
				return 77, nil
			})
	}()
	// The waiter must be blocked on the flight before the leader fails.
	for ev.waits.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(leaderGo)

	if err := <-leaderDone; err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("leader error = %v", err)
	}
	<-waiterDone
	if waiterErr != nil || waiterVal != 77 {
		t.Fatalf("waiter = (%v, %v), want (77, nil)", waiterVal, waiterErr)
	}
	if takeoverCalls.Load() != 1 {
		t.Errorf("takeover measured %d times", takeoverCalls.Load())
	}
	// The takeover shows up as a second miss; the failed series was not
	// cached, the successful one was.
	if ev.misses.Load() != 2 {
		t.Errorf("misses = %d, want 2 (leader + takeover)", ev.misses.Load())
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (errors never cached)", c.Len())
	}
	if v, err := c.Do(context.Background(), path, 5, obs,
		func(context.Context) (float64, error) {
			t.Error("cached series re-measured after takeover")
			return 0, nil
		}); err != nil || v != 77 {
		t.Errorf("post-takeover hit = (%v, %v)", v, err)
	}
}

// TestHalfCacheTTL: entries lapse after the TTL and are re-measured; a
// ttl ≤ 0 cache never expires.
func TestHalfCacheTTL(t *testing.T) {
	c := NewHalfCache(time.Minute)
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	path := []string{"w", "x"}

	v, err := c.Do(context.Background(), path, 5, nil,
		func(context.Context) (float64, error) { return 10, nil })
	if err != nil || v != 10 {
		t.Fatalf("first Do = (%v, %v)", v, err)
	}
	now = now.Add(30 * time.Second) // still fresh
	v, _ = c.Do(context.Background(), path, 5, nil,
		func(context.Context) (float64, error) { return 20, nil })
	if v != 10 {
		t.Errorf("fresh entry re-measured: %v", v)
	}
	now = now.Add(time.Hour) // lapsed
	v, _ = c.Do(context.Background(), path, 5, nil,
		func(context.Context) (float64, error) { return 20, nil })
	if v != 20 {
		t.Errorf("stale entry served: %v", v)
	}

	eternal := NewHalfCache(0)
	enow := time.Unix(0, 0)
	eternal.now = func() time.Time { return enow }
	eternal.Do(context.Background(), path, 5, nil,
		func(context.Context) (float64, error) { return 1, nil })
	enow = enow.Add(1000 * time.Hour)
	if v, _ := eternal.Do(context.Background(), path, 5, nil,
		func(context.Context) (float64, error) { return 2, nil }); v != 1 {
		t.Errorf("ttl=0 entry expired: %v", v)
	}
}

// TestHalfCacheCancelledWaiter: a waiter whose own context dies while the
// leader is still measuring returns promptly with the context error; the
// leader is unaffected.
func TestHalfCacheCancelledWaiter(t *testing.T) {
	c := NewHalfCache(0)
	ev := &halfEvents{}
	obs := ev.observer()
	path := []string{"w", "x"}

	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	leaderDone := make(chan float64, 1)
	go func() {
		v, _ := c.Do(context.Background(), path, 5, obs,
			func(context.Context) (float64, error) {
				close(leaderIn)
				<-leaderGo
				return 55, nil
			})
		leaderDone <- v
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, path, 5, obs,
			func(context.Context) (float64, error) {
				t.Error("cancelled waiter measured")
				return 0, nil
			})
		waiterDone <- err
	}()
	for ev.waits.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on the flight")
	}
	close(leaderGo)
	if v := <-leaderDone; v != 55 {
		t.Errorf("leader = %v, want 55", v)
	}
}

// TestHalfCacheHammer floods one cache from many goroutines over a small
// key set with an aggressive TTL, so hits, misses, waits, takeovers, and
// expiry all interleave — primarily a -race workout, but every returned
// value must still be the key's own.
func TestHalfCacheHammer(t *testing.T) {
	c := NewHalfCache(200 * time.Microsecond)
	ev := &halfEvents{}
	obs := ev.observer()

	const (
		goroutines = 32
		iters      = 200
		keys       = 8
	)
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				path := []string{"w", fmt.Sprintf("r%d", k)}
				want := float64(100 + k)
				v, err := c.Do(context.Background(), path, 3, obs,
					func(context.Context) (float64, error) {
						if i%7 == 0 {
							time.Sleep(10 * time.Microsecond) // widen the flight window
						}
						if i%13 == 0 {
							return 0, errors.New("transient")
						}
						return want, nil
					})
				if err == nil && v != want {
					bad.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d calls returned another key's value", bad.Load())
	}
	total := ev.hits.Load() + ev.misses.Load() + ev.waits.Load()
	if total < goroutines*iters {
		t.Errorf("observer saw %d events for ≥ %d consultations", total, goroutines*iters)
	}
}

// seriesCounter tallies circuit series by path through an Observer; it is
// how the tests below prove how many measurements a scan actually issued.
type seriesCounter struct {
	mu     sync.Mutex
	byPath map[string]int
}

func newSeriesCounter() *seriesCounter {
	return &seriesCounter{byPath: make(map[string]int)}
}

func (s *seriesCounter) observer(inner *Observer) *Observer {
	o := &Observer{}
	if inner != nil {
		*o = *inner
	}
	prev := o.CircuitDone
	o.CircuitDone = func(path []string, n int, elapsed time.Duration, err error) {
		if err == nil {
			s.mu.Lock()
			s.byPath[strings.Join(path, ",")]++
			s.mu.Unlock()
		}
		if prev != nil {
			prev(path, n, elapsed, err)
		}
	}
	return o
}

// counts returns (half-circuit series, full-circuit series, distinct half
// circuits measured more than once).
func (s *seriesCounter) counts() (halves, fulls, dupHalves int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for path, n := range s.byPath {
		if strings.Count(path, ",") == 1 { // (w, x)
			halves += n
			if n > 1 {
				dupHalves++
			}
		} else {
			fulls += n
		}
	}
	return
}

// TestScanMeasuresEachHalfCircuitOnce is the acceptance check for
// half-circuit memoization: a 20-node all-pairs scan over the model world
// issues exactly N + pairs circuit series — each of the 20 half circuits
// measured once, each of the 190 full circuits once — instead of the
// unmemoized 3·pairs = 570.
func TestScanMeasuresEachHalfCircuitOnce(t *testing.T) {
	const n = 20
	topo, host, nodeOf := modelWorld(t, n, 200)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = topo.Node(inet.NodeID(i)).Name
	}

	sc := newSeriesCounter()
	ev := &halfEvents{}
	obs := sc.observer(ev.observer())
	scanner := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := NewModelProber(topo, host, nodeOf, 300+int64(worker))
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 2, Observer: obs})
		},
		Workers:  4,
		Observer: obs,
	}
	m, failures, err := scanner.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}

	pairs := n * (n - 1) / 2
	halves, fulls, dups := sc.counts()
	t.Logf("series: %d half + %d full = %d (budget N+pairs = %d)",
		halves, fulls, halves+fulls, n+pairs)
	if dups != 0 {
		t.Errorf("%d half circuits measured more than once", dups)
	}
	if halves != n {
		t.Errorf("half-circuit series = %d, want exactly N = %d", halves, n)
	}
	if fulls != pairs {
		t.Errorf("full-circuit series = %d, want pairs = %d", fulls, pairs)
	}
	if total := halves + fulls; total > n+pairs {
		t.Errorf("scan issued %d series, budget is N + pairs = %d", total, n+pairs)
	}
	// Every pair consults the cache twice (C_x and C_y): N misses measured,
	// the rest answered by a hit or by waiting on the one in-flight series.
	if ev.misses.Load() != n {
		t.Errorf("half-circuit misses = %d, want %d", ev.misses.Load(), n)
	}
	if got := ev.hits.Load() + ev.waits.Load() + ev.misses.Load(); got != int64(2*pairs) {
		t.Errorf("half-circuit consultations = %d, want 2·pairs = %d", got, 2*pairs)
	}
	// The matrix itself is intact: spot-check symmetry and positivity.
	for i := 1; i < n; i++ {
		v, err := m.RTT(names[0], names[i])
		if err != nil || v <= 0 {
			t.Errorf("RTT(%s,%s) = %v, %v", names[0], names[i], v, err)
		}
	}
}

// TestScannerDisableHalfCache pins the opt-out: with memoization off the
// scan is the paper's literal §4.2 procedure, 3 series per pair.
func TestScannerDisableHalfCache(t *testing.T) {
	f := newFakeWorld()
	sc := newSeriesCounter()
	ev := &halfEvents{}
	obs := sc.observer(ev.observer())
	scanner := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1, Observer: obs})
		},
		DisableHalfCache: true,
		Observer:         obs,
	}
	if _, _, err := scanner.Scan(context.Background(), []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	halves, fulls, _ := sc.counts()
	if halves != 2 || fulls != 1 {
		t.Errorf("series = %d half + %d full, want 2 + 1 (no memoization)", halves, fulls)
	}
	if ev.hits.Load()+ev.misses.Load()+ev.waits.Load() != 0 {
		t.Errorf("half-circuit cache consulted with DisableHalfCache set")
	}
}

// TestScannerCrossScanHalfCache: a caller-supplied HalfCache carries
// memoized half circuits from one campaign into the next — the second scan
// measures zero new half-circuit series.
func TestScannerCrossScanHalfCache(t *testing.T) {
	f := newFakeWorld()
	hc := NewHalfCache(0)
	ev := &halfEvents{}
	newScanner := func(sc *seriesCounter) *Scanner {
		obs := sc.observer(ev.observer())
		return &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1, Observer: obs})
			},
			HalfCircuits: hc,
			Observer:     obs,
		}
	}
	first := newSeriesCounter()
	if _, _, err := newScanner(first).Scan(context.Background(), []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if halves, _, _ := first.counts(); halves != 2 {
		t.Fatalf("first scan measured %d half circuits, want 2", halves)
	}
	second := newSeriesCounter()
	m, _, err := newScanner(second).Scan(context.Background(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if halves, fulls, _ := second.counts(); halves != 0 || fulls != 1 {
		t.Errorf("second scan: %d half + %d full series, want 0 + 1 (cross-scan reuse)", halves, fulls)
	}
	if v, _ := m.RTT("x", "y"); v != 73 {
		t.Errorf("RTT = %v, want 73", v)
	}
}

// TestAssignJobsReuseGrouping pins the reuse-aware scheduler: all pairs
// sharing a first endpoint land on one worker, and the LPT placement keeps
// worker loads within the largest group of each other.
func TestAssignJobsReuseGrouping(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	var todo []pairJob
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			todo = append(todo, pairJob{x: names[i], y: names[j]})
		}
	}
	const workers = 3
	queues := assignJobs(todo, workers, false)

	ownerOf := make(map[string]int)
	total := 0
	for w, jobs := range queues {
		total += len(jobs)
		for _, job := range jobs {
			if prev, ok := ownerOf[job.x]; ok && prev != w {
				t.Errorf("group %q split across workers %d and %d", job.x, prev, w)
			}
			ownerOf[job.x] = w
		}
	}
	if total != len(todo) {
		t.Errorf("assigned %d jobs, want %d", total, len(todo))
	}
	// Largest group is (a, ·) with 6 jobs; LPT keeps the spread under it.
	min, max := len(queues[0]), len(queues[0])
	for _, q := range queues[1:] {
		if len(q) < min {
			min = len(q)
		}
		if len(q) > max {
			max = len(q)
		}
	}
	if max-min > 6 {
		t.Errorf("load spread %d (min %d, max %d) exceeds the largest group", max-min, min, max)
	}

	// Shuffled mode deals the given order round-robin, preserving it.
	shuffled := assignJobs(todo, workers, true)
	for w, jobs := range shuffled {
		for i, job := range jobs {
			if want := todo[i*workers+w]; job != want {
				t.Fatalf("shuffled deal broke order at worker %d slot %d", w, i)
			}
		}
	}
}
