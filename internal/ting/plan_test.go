package ting

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestPlanCampaignAnchorsToPaper(t *testing.T) {
	// §4.4: "Ting took an average of 2.5 minutes to measure a pair using
	// 200 samples". 3×200 samples + builds at ~240ms mean RTT ≈ 2.5 min.
	plan, err := PlanCampaign(CampaignConfig{
		Relays:  31,
		Samples: 200,
		MeanRTT: 240 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pairs != 31*30/2 {
		t.Errorf("pairs = %d", plan.Pairs)
	}
	minutes := plan.PerPair.Minutes()
	t.Logf("per-pair at 200 samples: %.1f min (paper: ~2.5)", minutes)
	if minutes < 1.5 || minutes > 3.5 {
		t.Errorf("per-pair %.1f min outside the paper's ~2.5 min", minutes)
	}

	// "less than 15 seconds" at the 5%-error operating point (§4.4 found
	// within-5% medians of just a handful of samples; ~15 gives margin).
	fast, err := PlanCampaign(CampaignConfig{
		Relays:  31,
		Samples: 15,
		MeanRTT: 240 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("per-pair at 15 samples: %.1fs (paper: <15s)", fast.PerPair.Seconds())
	if fast.PerPair > 15*time.Second {
		t.Errorf("fast per-pair %.1fs, want < 15s", fast.PerPair.Seconds())
	}
}

func TestPlanCampaignScaling(t *testing.T) {
	// Parallelism divides total time; reuse trims build cost.
	base, err := PlanCampaign(CampaignConfig{Relays: 100, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	par, err := PlanCampaign(CampaignConfig{Relays: 100, Samples: 50, Parallel: 10})
	if err != nil {
		t.Fatal(err)
	}
	if par.Total*10 != base.Total {
		t.Errorf("parallel scaling wrong: %v vs %v", par.Total, base.Total)
	}
	reuse, err := PlanCampaign(CampaignConfig{Relays: 100, Samples: 50, BuildRTTs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if reuse.PerPair >= base.PerPair {
		t.Error("leaky-pipe reuse does not reduce the plan")
	}

	// Explicit pair counts for non-all-pairs campaigns (e.g. the paper's
	// 10,000 live pairs).
	live, err := PlanCampaign(CampaignConfig{Pairs: 10000, Samples: 200, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10,000 pairs at 200 samples, 8-way parallel: %.1f days", live.Total.Hours()/24)
	if live.Pairs != 10000 {
		t.Errorf("pairs = %d", live.Pairs)
	}
}

func TestPlanCampaignMemoized(t *testing.T) {
	// §4.6 memoization: an N-relay all-pairs campaign samples Pairs + N
	// circuit series instead of 3·Pairs — for N = 100 (4950 pairs) the
	// sample budget shrinks ~2.9×, and so must the projected duration.
	base, err := PlanCampaign(CampaignConfig{Relays: 100, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	memo, err := PlanCampaign(CampaignConfig{Relays: 100, Samples: 50, Memoized: true})
	if err != nil {
		t.Fatal(err)
	}
	if memo.Pairs != base.Pairs {
		t.Errorf("memoized pairs = %d, want %d", memo.Pairs, base.Pairs)
	}
	ratio := float64(base.Total) / float64(memo.Total)
	t.Logf("memoization shrinks the campaign %.2fx", ratio)
	if ratio < 2.5 {
		t.Errorf("memoized plan only %.2fx cheaper, want ~3x", ratio)
	}
	if memo.PerPair >= base.PerPair {
		t.Error("memoized per-pair average did not shrink")
	}
	// Memoization reasons about half circuits per relay: a pairs-only
	// config cannot say how many distinct relays those pairs touch.
	if _, err := PlanCampaign(CampaignConfig{Pairs: 100, Samples: 50, Memoized: true}); err == nil {
		t.Error("memoized plan without Relays accepted")
	}
}

func TestPlanCampaignValidation(t *testing.T) {
	if _, err := PlanCampaign(CampaignConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := PlanCampaign(CampaignConfig{Relays: 1}); err == nil {
		t.Error("1-relay campaign accepted")
	}
	if _, err := PlanCampaign(CampaignConfig{Pairs: -1}); err == nil {
		t.Error("negative pairs accepted")
	}
	if _, err := PlanCampaign(CampaignConfig{Relays: 5, Samples: -1}); err == nil {
		t.Error("negative samples accepted")
	}
}

func TestScannerSkipFailures(t *testing.T) {
	f := newFakeWorld()
	f.fwd["v"] = 0.5
	for _, peer := range []string{"h", "w", "z", "x", "y"} {
		f.rtt[[2]string{peer, "v"}] = 25
	}
	f.errs["x"] = errors.New("x is down")
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		SkipFailures: true,
	}
	m, failures, err := sc.Scan(context.Background(), []string{"x", "y", "v"})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs touching x fail; (y,v) succeeds.
	if len(failures) != 2 {
		t.Fatalf("%d failures, want 2: %v", len(failures), failures)
	}
	for _, pe := range failures {
		if pe.X != "x" && pe.Y != "x" {
			t.Errorf("unexpected failed pair %s-%s", pe.X, pe.Y)
		}
		if !strings.Contains(pe.Err.Error(), "down") {
			t.Errorf("failure cause lost: %v", pe.Err)
		}
	}
	if v, _ := m.RTT("y", "v"); v <= 0 {
		t.Error("surviving pair not measured")
	}
	if v, _ := m.RTT("x", "y"); v != 0 {
		t.Error("failed pair has nonzero value")
	}
}

func TestMonitorCountsFailures(t *testing.T) {
	f := newFakeWorld()
	f.errs["x"] = errors.New("x offline")
	mon, err := NewMonitor(monitorConfig(t, f, []string{"x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Sweep(context.Background()); err == nil {
		t.Error("first error not surfaced")
	}
	if mon.Stats().Failed != 1 {
		t.Errorf("Failed = %d", mon.Stats().Failed)
	}
	// The pair stays stale and is retried once the relay recovers.
	delete(f.errs, "x")
	if _, err := mon.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := mon.Matrix().RTT("x", "y"); v <= 0 {
		t.Error("recovered pair not measured on retry")
	}
}
