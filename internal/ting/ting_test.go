package ting

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ting/internal/geo"
	"ting/internal/inet"
)

// fakeProber returns deterministic RTTs computed from a fixed link map, no
// noise — Eq. (4) must then be exact.
type fakeProber struct {
	rtt  map[[2]string]float64 // symmetric link RTTs
	fwd  map[string]float64    // per-relay per-traversal forwarding delay
	host string
	errs map[string]error // relay → error to fail with
}

func (f *fakeProber) link(a, b string) float64 {
	if a == b {
		return 0
	}
	if v, ok := f.rtt[[2]string{a, b}]; ok {
		return v
	}
	return f.rtt[[2]string{b, a}]
}

func (f *fakeProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var total float64
	prev := f.host
	for _, r := range path {
		if err := f.errs[r]; err != nil {
			return nil, err
		}
		total += f.link(prev, r)
		total += 2 * f.fwd[r]
		prev = r
	}
	total += f.link(prev, f.host)
	out := make([]float64, n)
	for i := range out {
		out[i] = total
	}
	return out, nil
}

func newFakeWorld() *fakeProber {
	// w and z are colocated with the host; x and y are remote.
	f := &fakeProber{
		rtt:  map[[2]string]float64{},
		fwd:  map[string]float64{"w": 0, "z": 0, "x": 1, "y": 2},
		host: "h",
		errs: map[string]error{},
	}
	set := func(a, b string, v float64) { f.rtt[[2]string{a, b}] = v }
	set("h", "w", 0)
	set("h", "z", 0)
	set("w", "z", 0)
	set("h", "x", 40)
	set("w", "x", 40)
	set("z", "x", 40)
	set("h", "y", 50)
	set("w", "y", 50)
	set("z", "y", 50)
	set("x", "y", 70)
	return f
}

func TestMeasurePairExactEq4(t *testing.T) {
	f := newFakeWorld()
	m, err := NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.MeasurePair(context.Background(), "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	// Full circuit: h→w(0) →x(40) →y(70) →z(50) →h(0) + 2(Fx+Fy) = 166.
	if math.Abs(res.MinFull-166) > 1e-9 {
		t.Errorf("MinFull = %v, want 166", res.MinFull)
	}
	// C_x: h→w→x→h = 80 + 2Fx = 82; C_y: 100 + 2Fy = 104.
	if math.Abs(res.MinX-82) > 1e-9 || math.Abs(res.MinY-104) > 1e-9 {
		t.Errorf("MinX=%v MinY=%v, want 82, 104", res.MinX, res.MinY)
	}
	// Eq. (4): 166 − 41 − 52 = 73 = R(x,y) + Fx + Fy = 70 + 1 + 2. The
	// estimate's error is exactly the two floor forwarding delays.
	if math.Abs(res.RTT-73) > 1e-9 {
		t.Errorf("RTT = %v, want 73", res.RTT)
	}
	if res.SamplesPerCircuit != 3 {
		t.Errorf("SamplesPerCircuit = %d", res.SamplesPerCircuit)
	}
}

func TestEstimateFunction(t *testing.T) {
	if got := Estimate(100, 40, 60); got != 50 {
		t.Errorf("Estimate = %v, want 50", got)
	}
}

func TestMeasurerValidation(t *testing.T) {
	f := newFakeWorld()
	if _, err := NewMeasurer(Config{W: "w", Z: "z"}); err == nil {
		t.Error("missing prober accepted")
	}
	if _, err := NewMeasurer(Config{Prober: f, W: "w"}); err == nil {
		t.Error("missing Z accepted")
	}
	if _, err := NewMeasurer(Config{Prober: f, W: "w", Z: "w"}); err == nil {
		t.Error("W == Z accepted")
	}
	if _, err := NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: -1}); err == nil {
		t.Error("negative samples accepted")
	}
	m, err := NewMeasurer(Config{Prober: f, W: "w", Z: "z"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Samples() != DefaultSamples {
		t.Errorf("default samples = %d, want %d", m.Samples(), DefaultSamples)
	}
	for _, bad := range [][2]string{{"", "x"}, {"x", ""}, {"x", "x"}, {"w", "x"}, {"x", "z"}} {
		if _, err := m.MeasurePair(context.Background(), bad[0], bad[1]); err == nil {
			t.Errorf("MeasurePair(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

func TestMeasurePairPropagatesProberErrors(t *testing.T) {
	f := newFakeWorld()
	f.errs["y"] = fmt.Errorf("relay y went away")
	m, err := NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeasurePair(context.Background(), "x", "y"); err == nil || !strings.Contains(err.Error(), "went away") {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestSampleSeries(t *testing.T) {
	f := newFakeWorld()
	m, _ := NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 5})
	series, err := m.SampleSeries(context.Background(), "x", "y", 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 17 {
		t.Errorf("series length %d", len(series))
	}
	if _, err := m.SampleSeries(context.Background(), "x", "x", 5); err == nil {
		t.Error("self pair accepted")
	}
}

// modelWorld builds a synthetic topology plus host and colocated w, z, and
// the name→node map a ModelProber needs.
func modelWorld(t *testing.T, n int, seed int64) (*inet.Topology, inet.NodeID, map[string]inet.NodeID) {
	t.Helper()
	topo, err := inet.Generate(inet.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -75}, seed+1)
	w := topo.AddColocated(host, "w")
	z := topo.AddColocated(host, "z")
	nodeOf := map[string]inet.NodeID{"w": w, "z": z}
	for i := 0; i < n; i++ {
		nodeOf[topo.Node(inet.NodeID(i)).Name] = inet.NodeID(i)
	}
	return topo, host, nodeOf
}

func TestModelProberAccuracy(t *testing.T) {
	topo, host, nodeOf := modelWorld(t, 12, 100)
	p := NewModelProber(topo, host, nodeOf, 7)
	m, err := NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		x := topo.Node(inet.NodeID(i)).Name
		y := topo.Node(inet.NodeID(i + 5)).Name
		res, err := m.MeasurePair(context.Background(), x, y)
		if err != nil {
			t.Fatal(err)
		}
		truth := topo.RTT(inet.NodeID(i), inet.NodeID(i+5))
		// The estimate overshoots by about Fx+Fy (floors ≤ ~1.5ms) plus
		// residual queueing; it must never be wildly off.
		ratio := res.RTT / truth
		if ratio < 0.9 || ratio > 1.25 {
			t.Errorf("pair %d: estimate %.2f vs truth %.2f (ratio %.3f)", i, res.RTT, truth, ratio)
		}
	}
}

func TestModelProberUnknownRelay(t *testing.T) {
	topo, host, nodeOf := modelWorld(t, 5, 101)
	p := NewModelProber(topo, host, nodeOf, 8)
	if _, err := p.SampleCircuit(context.Background(), []string{"w", "ghost"}, 3); err == nil {
		t.Error("unknown relay accepted")
	}
	if _, err := p.SampleCircuit(context.Background(), []string{"w"}, 0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := p.Ping("ghost"); err == nil {
		t.Error("ping to ghost accepted")
	}
	if _, err := p.TCPPing("ghost"); err == nil {
		t.Error("tcpping to ghost accepted")
	}
}

func TestEstimateForwardingUnbiasedNode(t *testing.T) {
	topo, host, nodeOf := modelWorld(t, 10, 102)
	// Make node 0 unbiased with a known floor.
	n0 := topo.Node(0)
	n0.Biased, n0.ICMPBiasMs, n0.TCPBiasMs = false, 0, 0
	n0.Fwd = inet.ForwardingModel{BaseMs: 1.0, QueueMeanMs: 0.3}

	p := NewModelProber(topo, host, nodeOf, 9)
	m, _ := NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 300})
	est, err := m.EstimateForwarding(context.Background(), n0.Name, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	// True total forwarding floor is 2×1.0 ms; estimates carry residual
	// queueing and jitter.
	for _, v := range []float64{est.ICMPMs, est.TCPMs} {
		if v < 0.5 || v > 6 {
			t.Errorf("forwarding estimate %v, want ≈ 2ms (unbiased node): %+v", v, est)
		}
	}
	if est.LocalMs < 0 || est.LocalMs > 2 {
		t.Errorf("local forwarding estimate %v", est.LocalMs)
	}
}

func TestEstimateForwardingBiasedNodeDeviates(t *testing.T) {
	topo, host, nodeOf := modelWorld(t, 10, 103)
	n0 := topo.Node(0)
	n0.Biased = true
	n0.ICMPBiasMs = 15 // ping reads 15ms high → F estimate ~30ms negative
	n0.TCPBiasMs = -10
	n0.Fwd = inet.ForwardingModel{BaseMs: 0.5, QueueMeanMs: 0.3}

	p := NewModelProber(topo, host, nodeOf, 10)
	m, _ := NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 300})
	est, err := m.EstimateForwarding(context.Background(), n0.Name, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.ICMPMs > -20 {
		t.Errorf("ICMP estimate %v, want strongly negative for +15ms ping bias", est.ICMPMs)
	}
	if est.TCPMs < 15 {
		t.Errorf("TCP estimate %v, want strongly positive for −10ms TCP bias", est.TCPMs)
	}
	if math.Abs(est.ICMPMs-est.TCPMs) < 10 {
		t.Error("biased node's ICMP and TCP estimates should visibly disagree")
	}
}

func TestEstimateForwardingValidation(t *testing.T) {
	f := newFakeWorld()
	m, _ := NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
	if _, err := m.EstimateForwarding(context.Background(), "w", nil, 10); err == nil {
		t.Error("forwarding estimate for local relay accepted")
	}
	topo, host, nodeOf := modelWorld(t, 5, 104)
	p := NewModelProber(topo, host, nodeOf, 11)
	m2, _ := NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 5})
	if _, err := m2.EstimateForwarding(context.Background(), topo.Node(0).Name, p, 0); err == nil {
		t.Error("zero ping samples accepted")
	}
}

func TestMatrixBasics(t *testing.T) {
	m, err := NewMatrix([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b", "c", 20); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", "c", 30); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.RTT("b", "a"); v != 10 {
		t.Errorf("RTT(b,a) = %v", v)
	}
	if m.Mean() != 20 {
		t.Errorf("Mean = %v, want 20", m.Mean())
	}
	if m.N() != 3 {
		t.Errorf("N = %d", m.N())
	}
	pv := m.PairValues()
	if len(pv) != 3 {
		t.Errorf("PairValues = %v", pv)
	}
	if _, err := m.RTT("a", "ghost"); err == nil {
		t.Error("ghost lookup accepted")
	}
	if err := m.Set("ghost", "a", 1); err == nil {
		t.Error("ghost set accepted")
	}
	if _, err := NewMatrix([]string{"solo"}); err == nil {
		t.Error("1-relay matrix accepted")
	}
	if _, err := NewMatrix([]string{"dup", "dup"}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewMatrix([]string{"", "b"}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestMatrixEncodeDecode(t *testing.T) {
	m, _ := NewMatrix([]string{"r1", "r2", "r3", "r4"})
	m.Set("r1", "r2", 10.5)
	m.Set("r1", "r3", 20.25)
	m.Set("r1", "r4", 30)
	m.Set("r2", "r3", 40)
	m.Set("r2", "r4", 50)
	m.Set("r3", "r4", 60.125)

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("cell (%d,%d): %v vs %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestMatrixEncodeDecodeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		m, _ := NewMatrix([]string{"a", "b", "c"})
		idx := 0
		pick := func() float64 {
			if idx < len(vals) && !math.IsNaN(vals[idx]) && !math.IsInf(vals[idx], 0) {
				v := math.Abs(vals[idx])
				idx++
				return v
			}
			idx++
			return 1
		}
		m.Set("a", "b", pick())
		m.Set("a", "c", pick())
		m.Set("b", "c", pick())
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			return false
		}
		got, err := DecodeMatrix(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < m.N(); i++ {
			for j := 0; j < m.N(); j++ {
				if got.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMatrixErrors(t *testing.T) {
	bad := []string{
		"",
		"nonsense\n",
		"tingmatrix n=2\na\n",             // wrong name count
		"tingmatrix n=2\na b\n1 2\n",      // truncated rows
		"tingmatrix n=2\na b\n1 2\n3\n",   // short row
		"tingmatrix n=2\na b\n1 x\n3 4\n", // bad float
		"tingmatrix n=1\na\n0\n",          // too few relays
	}
	for _, in := range bad {
		if _, err := DecodeMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("DecodeMatrix(%q) accepted", in)
		}
	}
}

func TestCache(t *testing.T) {
	c := NewCache(time.Hour)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	if _, ok := c.Get("a", "b"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", "b", 42)
	if v, ok := c.Get("b", "a"); !ok || v != 42 {
		t.Errorf("Get(b,a) = %v, %v; pair keys must be unordered", v, ok)
	}
	now = now.Add(2 * time.Hour)
	if _, ok := c.Get("a", "b"); ok {
		t.Error("stale entry served")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestScannerScan(t *testing.T) {
	f := newFakeWorld()
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 2})
		},
		Workers: 2,
		Shuffle: 1,
	}
	var calls int
	sc.Progress = func(done, total int) { calls++ }
	m, _, err := sc.Scan(context.Background(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.RTT("x", "y")
	if math.Abs(v-73) > 1e-9 {
		t.Errorf("scanned RTT = %v, want 73", v)
	}
	if calls != 1 {
		t.Errorf("progress calls = %d", calls)
	}
}

func TestScannerErrors(t *testing.T) {
	sc := &Scanner{}
	if _, _, err := sc.Scan(context.Background(), []string{"a", "b"}); err == nil {
		t.Error("missing NewMeasurer accepted")
	}
	f := newFakeWorld()
	f.errs["x"] = fmt.Errorf("x is down")
	sc2 := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
	}
	if _, _, err := sc2.Scan(context.Background(), []string{"x", "y"}); err == nil || !strings.Contains(err.Error(), "x is down") {
		t.Errorf("scanner error = %v", err)
	}
}

func TestScannerUsesCache(t *testing.T) {
	f := newFakeWorld()
	cache := NewCache(time.Hour)
	cache.Put("x", "y", 999)
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Cache: cache,
	}
	m, _, err := sc.Scan(context.Background(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.RTT("x", "y"); v != 999 {
		t.Errorf("cache not used: %v", v)
	}
}
