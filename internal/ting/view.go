package ting

import "fmt"

// MatrixView is the read side of the all-pairs dataset. It is the contract
// every consumer of a matrix takes — pathsel's circuit selection, deanon's
// attacker, and the serving plane's query handlers — so that readers are
// decoupled from the writer (*Matrix) and can be handed an immutable
// epoch-stamped snapshot (*PublishedMatrix) without knowing the difference.
//
// Implementations must make all methods safe for concurrent readers. For
// *Matrix that holds only while no writer is mutating it concurrently; a
// matrix that is being written (a live scan, a monitor between sweeps) must
// be snapshotted (Clone, or Monitor.Matrix) and published before it is
// shared with readers.
type MatrixView interface {
	// N is the number of relays.
	N() int
	// Names lists the relay names, index-aligned with At/ProvAt. Callers
	// must treat the slice as read-only.
	Names() []string
	// Index resolves a relay name to its row/column index.
	Index(name string) (int, bool)
	// At returns the RTT between relays i and j in milliseconds; it panics
	// on out-of-range indices.
	At(i, j int) float64
	// ProvAt returns the provenance of cell (i, j); it panics on
	// out-of-range indices.
	ProvAt(i, j int) Provenance
	// ConfAt returns the confidence of cell (i, j) in [0, 1]: 1 for
	// measured cells, the embedding's score for ProvPredicted cells, 0 for
	// missing. It panics on out-of-range indices.
	ConfAt(i, j int) float64
	// RTT returns the RTT between two named relays.
	RTT(x, y string) (float64, error)
	// Prov returns a cell's provenance by name; unknown relays report
	// ProvMissing.
	Prov(x, y string) Provenance
	// Mean returns µ, the average RTT over all unordered pairs.
	Mean() float64
	// Dense materializes the matrix as row slices over one backing array,
	// for O(N²)-and-up analysis loops. The copy is independent of the view.
	Dense() [][]float64
	// Epoch identifies which published snapshot this view is. A live,
	// still-mutable *Matrix reports 0 ("unpublished"); published snapshots
	// report the monotonic epoch they were stamped with.
	Epoch() uint64
}

// Both the writable matrix and the published snapshot satisfy the read
// contract; consumers never need to branch on which they were given.
var (
	_ MatrixView = (*Matrix)(nil)
	_ MatrixView = (*PublishedMatrix)(nil)
)

// Names implements MatrixView. The returned slice is the matrix's backing
// store: callers must not mutate it.
func (m *Matrix) Names() []string { return m.names }

// Index implements MatrixView.
func (m *Matrix) Index(name string) (int, bool) {
	i, ok := m.index[name]
	return i, ok
}

// ProvAt implements MatrixView; like At it panics on out-of-range indices.
func (m *Matrix) ProvAt(i, j int) Provenance {
	n := len(m.names)
	if i < 0 || j < 0 || i >= n || j >= n {
		panic(fmt.Sprintf("ting: matrix index (%d,%d) out of range [0,%d)", i, j, n))
	}
	t := m.tiles[i>>TileShift][j>>TileShift]
	if t == nil {
		return ProvMissing
	}
	return t.prov[tidx(i, j)]
}

// Epoch implements MatrixView. A *Matrix is the writable, unpublished form
// of the dataset, so its epoch is always 0; Publish stamps a real epoch.
func (m *Matrix) Epoch() uint64 { return 0 }

// PublishedMatrix is an immutable, epoch-stamped view of a matrix — the
// unit the serving plane swaps atomically between a sweeper and its
// readers. It adds nothing but the epoch: immutability is a contract, not
// an enforcement, so Publish must be handed a matrix no writer will touch
// again (a Clone, or Monitor.Matrix()'s private snapshot).
type PublishedMatrix struct {
	m     *Matrix
	epoch uint64
}

// Publish stamps m as the published snapshot for the given epoch. It does
// not copy: the caller transfers ownership, and m must not be written
// afterwards. Epoch 0 is reserved for unpublished matrices.
func Publish(m *Matrix, epoch uint64) (*PublishedMatrix, error) {
	if m == nil {
		return nil, fmt.Errorf("ting: publish nil matrix")
	}
	if epoch == 0 {
		return nil, fmt.Errorf("ting: epoch 0 is reserved for unpublished matrices")
	}
	return &PublishedMatrix{m: m, epoch: epoch}, nil
}

// N implements MatrixView.
func (p *PublishedMatrix) N() int { return p.m.N() }

// Names implements MatrixView; the slice is read-only.
func (p *PublishedMatrix) Names() []string { return p.m.Names() }

// Index implements MatrixView.
func (p *PublishedMatrix) Index(name string) (int, bool) { return p.m.Index(name) }

// At implements MatrixView.
func (p *PublishedMatrix) At(i, j int) float64 { return p.m.At(i, j) }

// ProvAt implements MatrixView.
func (p *PublishedMatrix) ProvAt(i, j int) Provenance { return p.m.ProvAt(i, j) }

// ConfAt implements MatrixView.
func (p *PublishedMatrix) ConfAt(i, j int) float64 { return p.m.ConfAt(i, j) }

// RTT implements MatrixView.
func (p *PublishedMatrix) RTT(x, y string) (float64, error) { return p.m.RTT(x, y) }

// Prov implements MatrixView.
func (p *PublishedMatrix) Prov(x, y string) Provenance { return p.m.Prov(x, y) }

// Mean implements MatrixView.
func (p *PublishedMatrix) Mean() float64 { return p.m.Mean() }

// Dense implements MatrixView.
func (p *PublishedMatrix) Dense() [][]float64 { return p.m.Dense() }

// Epoch implements MatrixView: the monotonic epoch this snapshot was
// published as.
func (p *PublishedMatrix) Epoch() uint64 { return p.epoch }

// ProvCounts tallies the upper triangle's provenance, like
// (*Matrix).ProvCounts — the completeness summary a served epoch reports.
func (p *PublishedMatrix) ProvCounts() ProvCount {
	return p.m.ProvCounts()
}
