package ting

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HalfCache memoizes half-circuit measurements — min R_Cx for circuits of
// the form (w, x) — with singleflight semantics. It is the scanner-side
// embodiment of the paper's own optimization (§3.3, §4.6): min R_Cx depends
// only on x, so an N-node all-pairs campaign needs N half-circuit series,
// not one per pair per side. Without it, every MeasurePair re-samples C_x
// and C_y, tripling the sample budget of a scan.
//
// Entries are keyed by the full circuit path plus the sample count, so a
// cross-scan handle shared between campaigns with different local relays or
// sample budgets never conflates incompatible series. Like Cache, entries
// carry a freshness horizon: ttl ≤ 0 means they never expire (§4.6 says a
// week of stability, so "measure once, cache for the campaign" is sound).
//
// Singleflight: when two workers need the same half circuit concurrently,
// one measures and the others wait for its series instead of duplicating
// the 200 samples. A waiter whose leader fails takes over and measures with
// its own prober (the leader's failure may be its prober's, not the
// relay's), so transient errors do not poison the cache — errors are never
// stored.
type HalfCache struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	entries map[string]halfEntry
	flights map[string]*halfFlight
	onStore func(path []string, samples int, min float64)
}

type halfEntry struct {
	min  float64
	when time.Time
}

// halfFlight is one in-progress measurement; min and err are written
// exactly once before done is closed.
type halfFlight struct {
	done chan struct{}
	min  float64
	err  error
}

// NewHalfCache creates a half-circuit cache whose entries expire after
// ttl. A ttl ≤ 0 means entries never expire.
func NewHalfCache(ttl time.Duration) *HalfCache {
	return &HalfCache{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]halfEntry, 64),
		flights: make(map[string]*halfFlight, 8),
	}
}

// halfKey identifies one half-circuit series: the exact path plus the
// sample count it was measured with.
func halfKey(path []string, samples int) string {
	return strings.Join(path, ",") + "#" + strconv.Itoa(samples)
}

// halfKeyInto appends the same key to a caller-owned buffer. Do builds its
// key on the stack and looks it up via map[string(buf)] — which the
// compiler performs without materializing the string — so cache hits, the
// all-pairs steady state, allocate nothing.
func halfKeyInto(buf []byte, path []string, samples int) []byte {
	for i, hop := range path {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, hop...)
	}
	buf = append(buf, '#')
	return strconv.AppendInt(buf, int64(samples), 10)
}

// Len returns the number of memoized half circuits (completed series only,
// fresh or stale).
func (c *HalfCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Seed installs a series without measuring — checkpoint replay. The entry
// is stored as freshly measured and does not fire the store hook (it is
// already in the log it came from).
func (c *HalfCache) Seed(path []string, samples int, min float64) {
	c.mu.Lock()
	c.entries[halfKey(path, samples)] = halfEntry{min: min, when: c.now()}
	c.mu.Unlock()
}

// SetStoreHook registers fn to run after each freshly measured series is
// stored — the scanner's checkpoint append hook. A nil fn unregisters.
// The hook runs outside the cache lock and must be safe for concurrent
// calls from scanner workers.
func (c *HalfCache) SetStoreHook(fn func(path []string, samples int, min float64)) {
	c.mu.Lock()
	c.onStore = fn
	c.mu.Unlock()
}

// InvalidateRelay drops every memoized series whose path contains the
// named relay and returns how many were dropped — churn invalidation: a
// rotated key means new crypto (and possibly a new host) behind the same
// nickname, so its cached minima no longer describe the relay. In-flight
// measurements are left to finish; their stale result is overwritten the
// next time the key is invalidated or expires.
func (c *HalfCache) InvalidateRelay(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key := range c.entries {
		pathPart, _, _ := strings.Cut(key, "#")
		for _, hop := range strings.Split(pathPart, ",") {
			if hop == name {
				delete(c.entries, key)
				dropped++
				break
			}
		}
	}
	return dropped
}

// Do returns the memoized minimum RTT for the half circuit, measuring it
// with fn on a miss. Concurrent calls for the same key share one
// measurement; obs (nil-safe) is told whether this call hit, measured, or
// waited on another worker's in-flight series.
func (c *HalfCache) Do(ctx context.Context, path []string, samples int, obs *Observer, fn func(context.Context) (float64, error)) (float64, error) {
	// The key lives on the stack; the string conversions inside the map
	// indexes below do not allocate. A real string is only made on the miss
	// path, where a measurement is about to dwarf it.
	var kb [96]byte
	key := halfKeyInto(kb[:0], path, samples)
	for {
		c.mu.Lock()
		if e, ok := c.entries[string(key)]; ok && !c.expired(e) {
			c.mu.Unlock()
			obs.halfCircuit(path, HalfCircuitHit)
			return e.min, nil
		}
		if f, ok := c.flights[string(key)]; ok {
			c.mu.Unlock()
			obs.halfCircuit(path, HalfCircuitWait)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-f.done:
			}
			if f.err == nil {
				return f.min, nil
			}
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			// The leader failed but we are still live: loop and either find
			// a fresher flight to join or measure ourselves.
			continue
		}
		skey := string(key)
		f := &halfFlight{done: make(chan struct{})}
		c.flights[skey] = f
		c.mu.Unlock()

		obs.halfCircuit(path, HalfCircuitMiss)
		min, err := fn(ctx)
		f.min, f.err = min, err
		c.mu.Lock()
		delete(c.flights, skey)
		var hook func(path []string, samples int, min float64)
		if err == nil {
			c.entries[skey] = halfEntry{min: min, when: c.now()}
			hook = c.onStore
		}
		c.mu.Unlock()
		close(f.done)
		if hook != nil {
			// The hook outlives this call (it appends to the checkpoint
			// asynchronously in principle); the path it sees must not alias
			// the Measurer's scratch.
			hook(clonePath(path), samples, min)
		}
		return min, err
	}
}

func (c *HalfCache) expired(e halfEntry) bool {
	return c.ttl > 0 && c.now().Sub(e.when) > c.ttl
}
