package ting

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ting/internal/faults"
	"ting/internal/geo"
	"ting/internal/inet"
	"ting/internal/tornet"
)

// bigFakeWorld is newFakeWorld extended with relays u and v so scans have
// six pairs to chew on.
func bigFakeWorld() *fakeProber {
	f := newFakeWorld()
	for _, r := range []string{"u", "v"} {
		f.fwd[r] = 0.5
		for _, peer := range []string{"h", "w", "z", "x", "y"} {
			f.rtt[[2]string{peer, r}] = 25
		}
	}
	f.rtt[[2]string{"u", "v"}] = 33
	return f
}

// TestScannerProgressReachesTotal is the regression test for the tolerant
// progress bug: failed pairs are completed work, so a SkipFailures scan
// with dead relays must still drive Progress(done, total) to done == total.
func TestScannerProgressReachesTotal(t *testing.T) {
	f := bigFakeWorld()
	f.errs["x"] = errors.New("x is down")
	var mu sync.Mutex
	var lastDone, lastTotal, calls int
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Workers:      2,
		SkipFailures: true,
		Progress: func(done, total int) {
			mu.Lock()
			if done < lastDone {
				t.Errorf("progress went backwards: %d after %d", done, lastDone)
			}
			lastDone, lastTotal = done, total
			calls++
			mu.Unlock()
		},
	}
	names := []string{"x", "y", "u", "v"}
	_, failures, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 3 { // the three pairs touching x
		t.Fatalf("failures = %v, want the 3 pairs touching x", failures)
	}
	if lastTotal != 6 || lastDone != 6 {
		t.Errorf("final progress %d/%d, want 6/6", lastDone, lastTotal)
	}
	if calls != 6 {
		t.Errorf("progress called %d times, want once per pair", calls)
	}
}

// countingProber fails every circuit after a short synchronizing delay and
// counts how many measurement attempts actually reached the network. Each
// failed attempt costs exactly one SampleCircuit call (C_x errors first).
type countingProber struct {
	attempts atomic.Int64
}

func (p *countingProber) SampleCircuit(_ context.Context, path []string, n int) ([]float64, error) {
	p.attempts.Add(1)
	time.Sleep(2 * time.Millisecond)
	return nil, errors.New("relay unreachable")
}

// TestScannerNonTolerantStopsDispatching is the regression test for the
// keep-scanning-after-fatal-error bug: without SkipFailures the first
// failure must abort the scan, with at most the already-in-flight
// measurements (one per worker) hitting the network.
func TestScannerNonTolerantStopsDispatching(t *testing.T) {
	p := &countingProber{}
	const workers = 3
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers: workers,
	}
	names := []string{"a", "b", "c", "d", "e", "f"} // 15 pairs
	_, _, err := sc.Scan(context.Background(), names)
	if err == nil {
		t.Fatal("scan with failing prober succeeded")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("cause lost: %v", err)
	}
	// One attempt fails first; every other worker can have at most one
	// measurement already committed. 15 would mean the bug is back.
	if got := p.attempts.Load(); got > workers {
		t.Errorf("%d measurements ran, want ≤ %d after first failure", got, workers)
	}
}

// closeProber records whether the scanner released it.
type closeProber struct {
	*fakeProber
	closed atomic.Bool
}

func (p *closeProber) Close() { p.closed.Store(true) }

func TestScannerClosesMeasurersAfterScan(t *testing.T) {
	f := bigFakeWorld()
	var probers []*closeProber
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := &closeProber{fakeProber: f}
			probers = append(probers, p)
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers: 2,
	}
	if _, _, err := sc.Scan(context.Background(), []string{"x", "y", "v"}); err != nil {
		t.Fatal(err)
	}
	if len(probers) != 2 {
		t.Fatalf("%d measurers built, want 2", len(probers))
	}
	for i, p := range probers {
		if !p.closed.Load() {
			t.Errorf("worker %d's prober not closed", i)
		}
	}
}

// TestScannerCleansUpOnMeasurerFailure is the regression test for the
// leaked-measurer bug: when the k-th worker's measurer fails to build, the
// ones already built must be closed before the scan errors out.
func TestScannerCleansUpOnMeasurerFailure(t *testing.T) {
	f := bigFakeWorld()
	var probers []*closeProber
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			if worker == 2 {
				return nil, errors.New("no control connection left")
			}
			p := &closeProber{fakeProber: f}
			probers = append(probers, p)
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers: 3,
	}
	_, _, err := sc.Scan(context.Background(), []string{"x", "y", "v"})
	if err == nil || !strings.Contains(err.Error(), "worker 2") {
		t.Fatalf("err = %v, want worker 2 build failure", err)
	}
	if len(probers) != 2 {
		t.Fatalf("%d measurers built before the failure, want 2", len(probers))
	}
	for i, p := range probers {
		if !p.closed.Load() {
			t.Errorf("worker %d's measurer leaked after build failure", i)
		}
	}
}

// workerProber fails or succeeds depending on which worker owns it.
type workerProber struct {
	*fakeProber
	fail     bool
	attempts *atomic.Int64
}

func (p *workerProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	if p.fail {
		p.attempts.Add(1)
		return nil, errors.New("this worker's circuits are wedged")
	}
	return p.fakeProber.SampleCircuit(ctx, path, n)
}

// TestScannerRetriesOnDifferentWorker: worker 0's prober always fails;
// every pair still completes because retries are handed to another worker
// with a healthy measurer.
func TestScannerRetriesOnDifferentWorker(t *testing.T) {
	f := bigFakeWorld()
	var badAttempts atomic.Int64
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := &workerProber{fakeProber: f, fail: worker == 0, attempts: &badAttempts}
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers: 2,
		// Generous budget: a retry is only *handed toward* another worker —
		// it lands there once that worker is free, which the backoff pause
		// guarantees long before the budget runs out.
		Retry:   8,
		Backoff: 2 * time.Millisecond,
		Shuffle: 7,
	}
	names := []string{"x", "y", "u", "v"}
	m, failures, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures despite a healthy worker: %v", failures)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if v, _ := m.RTT(names[i], names[j]); v <= 0 {
				t.Errorf("pair (%s,%s) unmeasured", names[i], names[j])
			}
		}
	}
	t.Logf("wedged worker consumed %d attempts before hand-offs", badAttempts.Load())
}

// flakyProber fails its first n calls, then behaves.
type flakyProber struct {
	*fakeProber
	mu   sync.Mutex
	left int
}

func (p *flakyProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	p.mu.Lock()
	if p.left > 0 {
		p.left--
		p.mu.Unlock()
		return nil, errors.New("transient circuit failure")
	}
	p.mu.Unlock()
	return p.fakeProber.SampleCircuit(ctx, path, n)
}

func TestScannerRetryRecoversTransientFailures(t *testing.T) {
	p := &flakyProber{fakeProber: newFakeWorld(), left: 2}
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Retry:   2,
		Backoff: time.Millisecond,
	}
	m, failures, err := sc.Scan(context.Background(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("transient failure not retried away: %v", failures)
	}
	if v, _ := m.RTT("x", "y"); v != 73 {
		t.Errorf("recovered measurement = %v, want 73", v)
	}
}

func TestScannerReportsAttemptCounts(t *testing.T) {
	f := newFakeWorld()
	f.errs["x"] = errors.New("x is gone for good")
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		SkipFailures: true,
		Retry:        2,
		Backoff:      time.Millisecond,
	}
	_, failures, err := sc.Scan(context.Background(), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 {
		t.Fatalf("failures = %v", failures)
	}
	if failures[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 1 initial + 2 retries", failures[0].Attempts)
	}
}

// planProber consults a fault plan before sampling: any circuit through a
// Down relay fails, exactly as the overlay's dial refusal would make it.
type planProber struct {
	*fakeProber
	plan *faults.Plan
}

func (p *planProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	for _, r := range path {
		if p.plan.Down(r) {
			return nil, fmt.Errorf("relay %s is down", r)
		}
	}
	return p.fakeProber.SampleCircuit(ctx, path, n)
}

// TestScannerFaultPlanReproducible is the acceptance test: two tolerant
// scans of the same faulty overlay with the same seed produce byte-identical
// matrices, identical failed-pair sets, and progress that reaches the total.
func TestScannerFaultPlanReproducible(t *testing.T) {
	names := []string{"x", "y", "u", "v"}
	run := func() (matrix []byte, failed []string, done, total int) {
		plan := faults.NewPlan(42)
		plan.Begin()
		plan.Crash("v")
		p := &planProber{fakeProber: bigFakeWorld(), plan: plan}
		sc := &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
			},
			Workers:      2,
			Shuffle:      42,
			SkipFailures: true,
			Retry:        1,
			Backoff:      time.Millisecond,
			Progress:     func(d, tot int) { done, total = d, tot },
		}
		m, failures, err := sc.Scan(context.Background(), names)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			failed = append(failed, fmt.Sprintf("%s|%s|%d|%v", f.X, f.Y, f.Attempts, f.Err))
		}
		return buf.Bytes(), failed, done, total
	}

	m1, f1, done1, total1 := run()
	m2, f2, done2, total2 := run()
	if done1 != 6 || total1 != 6 {
		t.Errorf("progress stalled at %d/%d, want 6/6", done1, total1)
	}
	if done2 != done1 || total2 != total1 {
		t.Errorf("progress differs across runs: %d/%d vs %d/%d", done1, total1, done2, total2)
	}
	if !bytes.Equal(m1, m2) {
		t.Error("matrices of two same-seed scans differ")
	}
	if len(f1) != 3 {
		t.Fatalf("failed pairs = %v, want the 3 pairs touching crashed v", f1)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Errorf("failure %d differs: %q vs %q", i, f1[i], f2[i])
		}
		if !strings.Contains(f1[i], "|2|") {
			t.Errorf("failure %q did not consume 1 initial + 1 retry attempt", f1[i])
		}
	}
}

// TestScannerSharedCacheConcurrent runs two scans concurrently against one
// Cache — the -race test for the scanner's and cache's locking.
func TestScannerSharedCacheConcurrent(t *testing.T) {
	f := bigFakeWorld()
	cache := NewCache(time.Hour)
	names := []string{"x", "y", "u", "v"}
	scan := func() (*Matrix, error) {
		sc := &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 2})
			},
			Workers: 4,
			Cache:   cache,
			Shuffle: 5,
		}
		m, _, err := sc.Scan(context.Background(), names)
		return m, err
	}
	var wg sync.WaitGroup
	results := make([]*Matrix, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = scan()
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for a := 0; a < len(names); a++ {
			for b := a + 1; b < len(names); b++ {
				if v, _ := results[i].RTT(names[a], names[b]); v <= 0 {
					t.Errorf("scan %d: pair (%s,%s) unmeasured", i, names[a], names[b])
				}
			}
		}
	}
	if cache.Len() != 6 {
		t.Errorf("cache holds %d pairs, want 6", cache.Len())
	}
}

// cancellingProber cancels the scan context from inside the first sample.
type cancellingProber struct {
	*fakeProber
	cancel context.CancelFunc
	once   sync.Once
}

func (p *cancellingProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	p.once.Do(p.cancel)
	return p.fakeProber.SampleCircuit(ctx, path, n)
}

func TestScannerContextCancellation(t *testing.T) {
	// Already-cancelled context: nothing measured, ctx error returned.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	p := &countingProber{}
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		SkipFailures: true,
	}
	if _, _, err := sc.Scan(cancelled, []string{"x", "y", "v"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if p.attempts.Load() != 0 {
		t.Errorf("%d measurements ran under a dead context", p.attempts.Load())
	}

	// Mid-scan cancellation: even a tolerant scan reports the abort rather
	// than pretending the unmeasured pairs merely failed.
	ctx, cancelMid := context.WithCancel(context.Background())
	cp := &cancellingProber{fakeProber: bigFakeWorld(), cancel: cancelMid}
	sc2 := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: cp, W: "w", Z: "z", Samples: 1})
		},
		Workers:      1,
		SkipFailures: true,
	}
	if _, _, err := sc2.Scan(ctx, []string{"x", "y", "u", "v"}); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-scan cancel: err = %v, want context.Canceled", err)
	}
}

// stuckProber hangs until its context is cancelled — a wedged transport as
// seen by a context-aware prober.
type stuckProber struct{}

func (stuckProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestScannerPairTimeout(t *testing.T) {
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: stuckProber{}, W: "w", Z: "z", Samples: 1})
		},
		SkipFailures: true,
		PairTimeout:  10 * time.Millisecond,
	}
	done := make(chan struct{})
	var failures []PairError
	var err error
	go func() {
		defer close(done)
		_, failures, err = sc.Scan(context.Background(), []string{"x", "y"})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PairTimeout did not bound a wedged measurement")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !errors.Is(failures[0].Err, context.DeadlineExceeded) {
		t.Errorf("failures = %v, want one deadline-exceeded pair", failures)
	}
}

// TestFullStackTolerantScanWithCrash is the end-to-end fault test: a relay
// of a real in-process overlay is killed mid-run, and a tolerant scan over
// the live circuit machinery completes with exactly that relay's pairs
// reported failed.
func TestFullStackTolerantScanWithCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack scan is seconds-long; skipped in -short")
	}
	topo, err := inet.Generate(inet.Config{N: 4, Seed: 51, FlatRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -74}, 52)
	plan := faults.NewPlan(53)
	n, err := tornet.Build(tornet.Config{
		Topology:  topo,
		Host:      host,
		TimeScale: 0.06,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	names := make([]string, 4)
	for i := range names {
		names[i], _ = n.NodeName(inet.NodeID(i))
	}
	crashed := names[2]
	if !n.CrashRelay(crashed) {
		t.Fatalf("relay %s unknown to the overlay", crashed)
	}

	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := &StackProber{
				Client:   n.Client,
				Registry: n.Registry,
				Target:   tornet.EchoTarget,
				ToMs:     n.VirtualMs,
			}
			return NewMeasurer(Config{Prober: p, W: tornet.WName, Z: tornet.ZName, Samples: 2})
		},
		Workers:      2,
		Shuffle:      54,
		SkipFailures: true,
	}
	var lastDone, lastTotal int
	var progressMu sync.Mutex
	sc.Progress = func(done, total int) {
		progressMu.Lock()
		lastDone, lastTotal = done, total
		progressMu.Unlock()
	}
	m, failures, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 6 || lastTotal != 6 {
		t.Errorf("progress stalled at %d/%d with a crashed relay", lastDone, lastTotal)
	}
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want the 3 pairs touching crashed %s", failures, crashed)
	}
	for _, pe := range failures {
		if pe.X != crashed && pe.Y != crashed {
			t.Errorf("healthy pair (%s,%s) reported failed: %v", pe.X, pe.Y, pe.Err)
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			v, _ := m.RTT(names[i], names[j])
			touchesCrash := names[i] == crashed || names[j] == crashed
			if touchesCrash && v != 0 {
				t.Errorf("crashed pair (%s,%s) has value %v", names[i], names[j], v)
			}
			if !touchesCrash && v <= 0 {
				t.Errorf("surviving pair (%s,%s) unmeasured", names[i], names[j])
			}
		}
	}
}
