package ting

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	cp, err := OpenFileCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []CheckpointRecord{
		{Kind: RecordCampaign, Names: []string{"x", "y", "u"}},
		{Kind: RecordPair, X: "x", Y: "y", RTT: 73},
		{Kind: RecordHalf, Path: []string{"w", "x"}, Samples: 2, Min: 82},
		{Kind: RecordPair, X: "x", Y: "u", RTT: 51.5},
	}
	for _, rec := range recs {
		if err := cp.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Append(CheckpointRecord{Kind: RecordPair, X: "a", Y: "b", RTT: 1}); err == nil {
		t.Error("Append after Close accepted")
	}

	// Recovery path: reopen the log and aggregate it.
	cp2, err := OpenFileCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	st, err := ReplayState(cp2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Names) != 3 || st.Names[0] != "x" {
		t.Errorf("Names = %v", st.Names)
	}
	if st.Records != len(recs) {
		t.Errorf("Records = %d, want %d", st.Records, len(recs))
	}
	if v := st.Pairs[pairKey("y", "x")]; v != 73 {
		t.Errorf("pair (x,y) = %v; pair keys must be unordered", v)
	}
	if v := st.Pairs[pairKey("x", "u")]; v != 51.5 {
		t.Errorf("pair (x,u) = %v", v)
	}
	if len(st.Halves) != 1 || st.Halves[0].Min != 82 || st.Halves[0].Samples != 2 {
		t.Errorf("Halves = %+v", st.Halves)
	}

	// Appending across reopens extends the same campaign.
	if err := cp2.Append(CheckpointRecord{Kind: RecordPair, X: "y", Y: "u", RTT: 9}); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Sync(); err != nil {
		t.Fatal(err)
	}
	st2, err := ReplayState(cp2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Pairs) != 3 {
		t.Errorf("pairs after reopen-append = %d, want 3", len(st2.Pairs))
	}
}

func TestFileCheckpointMissingFileReplaysEmpty(t *testing.T) {
	cp := &FileCheckpoint{path: filepath.Join(t.TempDir(), "never-written.ckpt")}
	n := 0
	if err := cp.Replay(func(CheckpointRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d records from a missing file", n)
	}
}

func TestReplayRecordsTornTailTolerated(t *testing.T) {
	in := `{"t":"campaign","names":["a","b"]}
{"t":"pair","x":"a","y":"b","rtt":5}
{"t":"pair","x":"a","y":`
	var kinds []string
	err := replayRecords(strings.NewReader(in), func(rec CheckpointRecord) error {
		kinds = append(kinds, rec.Kind)
		return nil
	})
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	if len(kinds) != 2 {
		t.Errorf("replayed %d records, want 2 (torn tail dropped)", len(kinds))
	}
}

func TestReplayRecordsCorruptMiddleErrors(t *testing.T) {
	in := `{"t":"campaign","names":["a","b"]}
this is not json
{"t":"pair","x":"a","y":"b","rtt":5}
`
	err := replayRecords(strings.NewReader(in), func(CheckpointRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("mid-file corruption not reported: %v", err)
	}
}

func TestReplayRecordsSkipsBlankLines(t *testing.T) {
	in := "\n{\"t\":\"pair\",\"x\":\"a\",\"y\":\"b\",\"rtt\":5}\n\n"
	n := 0
	if err := replayRecords(strings.NewReader(in), func(CheckpointRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("replayed %d records, want 1", n)
	}
}

func TestReplayStateLastRecordWins(t *testing.T) {
	cp := &MemCheckpoint{}
	for _, rec := range []CheckpointRecord{
		{Kind: RecordCampaign, Names: []string{"a", "b"}},
		{Kind: RecordPair, X: "a", Y: "b", RTT: 10},
		{Kind: RecordHalf, Path: []string{"w", "a"}, Samples: 3, Min: 4},
		{Kind: RecordCampaign, Names: []string{"a", "b"}}, // idempotent header
		{Kind: RecordPair, X: "b", Y: "a", RTT: 12},       // re-measured across resumes
		{Kind: RecordHalf, Path: []string{"w", "a"}, Samples: 3, Min: 5},
		{Kind: "future-kind"}, // unknown kinds skipped, not errors
	} {
		if err := cp.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if cp.Len() != 7 {
		t.Fatalf("Len = %d", cp.Len())
	}
	st, err := ReplayState(cp)
	if err != nil {
		t.Fatal(err)
	}
	if v := st.Pairs[pairKey("a", "b")]; v != 12 {
		t.Errorf("pair (a,b) = %v, want the newest value 12", v)
	}
	if len(st.Halves) != 1 || st.Halves[0].Min != 5 {
		t.Errorf("Halves = %+v, want one deduped series with min 5", st.Halves)
	}
}

func TestReplayStateRejectsMalformedRecords(t *testing.T) {
	cases := []CheckpointRecord{
		{Kind: RecordCampaign, Names: []string{"solo"}},
		{Kind: RecordPair, X: "", Y: "b", RTT: 1},
		{Kind: RecordPair, X: "a", Y: "a", RTT: 1},
		{Kind: RecordPair, X: "a", Y: "b", RTT: math.NaN()},
		{Kind: RecordPair, X: "a", Y: "b", RTT: math.Inf(1)},
		{Kind: RecordHalf, Path: []string{"w"}, Samples: 3, Min: 4},
		{Kind: RecordHalf, Path: []string{"w", "a"}, Samples: 0, Min: 4},
		{Kind: RecordHalf, Path: []string{"w", "a"}, Samples: 3, Min: math.Inf(-1)},
	}
	for i, bad := range cases {
		cp := &MemCheckpoint{}
		cp.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "b"}})
		cp.Append(bad)
		if _, err := ReplayState(cp); err == nil {
			t.Errorf("case %d: malformed record %+v accepted", i, bad)
		}
	}
}

func TestReplayStateRejectsConflictingCampaigns(t *testing.T) {
	cp := &MemCheckpoint{}
	cp.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "b"}})
	cp.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "c"}})
	if _, err := ReplayState(cp); err == nil {
		t.Error("log spanning two different relay sets accepted")
	}
}

func TestFileCheckpointSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.ckpt")
	cp, err := OpenFileCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	cp.SyncEvery = 2
	for i := 0; i < 5; i++ {
		if err := cp.Append(CheckpointRecord{Kind: RecordPair, X: "a", Y: "b", RTT: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every record reached the kernel via its own write syscall, batching
	// only affects fsync — all five lines must be visible immediately.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 5 {
		t.Errorf("%d lines on disk, want 5", n)
	}
	if err := cp.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRequiresUsableCheckpoint(t *testing.T) {
	sc := &Scanner{NewMeasurer: func(int) (*Measurer, error) {
		return NewMeasurer(Config{Prober: newFakeWorld(), W: "w", Z: "z", Samples: 1})
	}}
	if _, _, err := sc.Resume(context.Background(), nil); err == nil {
		t.Error("Resume(nil) accepted")
	}
	if _, _, err := sc.Resume(context.Background(), &MemCheckpoint{}); err == nil || !strings.Contains(err.Error(), "campaign header") {
		t.Errorf("Resume of headerless log: %v", err)
	}
	broken := &MemCheckpoint{}
	broken.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"x"}})
	if _, _, err := sc.Resume(context.Background(), broken); err == nil {
		t.Error("Resume of malformed log accepted")
	}
}
