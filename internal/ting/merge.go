package ting

import (
	"fmt"
)

// MergeConflictError reports a cell that two matrices both claim to have
// measured, with different values — the one disagreement Merge refuses to
// resolve silently, because in a correctly partitioned distributed
// campaign it cannot happen: every pair belongs to exactly one shard and
// the coordinator's lease fencing admits exactly one submission per
// shard. Seeing this error means a partitioning or fencing invariant was
// violated, and a loud typed error beats a quietly corrupted dataset.
type MergeConflictError struct {
	X, Y string
	// Have/HaveProv are the destination cell's value and provenance;
	// Incoming/IncomingProv the source's.
	Have, Incoming         float64
	HaveProv, IncomingProv Provenance
}

func (e *MergeConflictError) Error() string {
	return fmt.Sprintf("ting: merge conflict on pair (%s,%s): have %g (%s), incoming %g (%s)",
		e.X, e.Y, e.Have, e.HaveProv, e.Incoming, e.IncomingProv)
}

// measured reports whether a provenance class is backed by a real
// measurement.
func measured(p Provenance) bool { return p == ProvFresh || p == ProvResumed }

// Merge folds src's cells into m, pair by pair over src's upper triangle.
// Every src relay must already be a relay of m (merging never grows the
// matrix); cells are matched by name, so src may cover any subset of m's
// relays in any order.
//
// The rules make merging idempotent and measurement-preserving:
//
//   - a src cell with no value and no provenance is skipped;
//   - an empty destination cell takes the src cell verbatim;
//   - a measured cell (fresh or resumed) always beats a predicted or
//     tombstoned one, in either direction — model opinion and churn
//     verdicts never overwrite data;
//   - two measured cells that agree on the value are a no-op (the
//     double-measured pair of an idempotent retry), regardless of
//     fresh-vs-resumed provenance;
//   - two measured cells that disagree on the value are a
//     *MergeConflictError, returned with the matrix untouched beyond the
//     cells already merged;
//   - two predicted cells take the src prediction (last writer wins — the
//     newer embedding saw more data).
//
// The coordinator merges shard submissions in canonical shard order, so a
// completed campaign's merge output is a pure function of the submissions,
// not of network timing.
func (m *Matrix) Merge(src *Matrix) error {
	srcNames := src.Names()
	for _, n := range srcNames {
		if _, ok := m.index[n]; !ok {
			return fmt.Errorf("ting: merge: relay %q not in destination matrix", n)
		}
	}
	for i := 0; i < len(srcNames); i++ {
		for j := i + 1; j < len(srcNames); j++ {
			x, y := srcNames[i], srcNames[j]
			sv := src.at(i, j)
			sp := src.Prov(x, y)
			if sv == 0 && sp == ProvMissing {
				continue
			}
			di, dj := m.index[x], m.index[y]
			dv := m.at(di, dj)
			dp := m.Prov(x, y)
			if dv == 0 && dp == ProvMissing {
				m.copyCell(src, x, y, sv, sp)
				continue
			}
			switch {
			case measured(dp) && measured(sp):
				if dv != sv {
					return &MergeConflictError{
						X: x, Y: y,
						Have: dv, Incoming: sv,
						HaveProv: dp, IncomingProv: sp,
					}
				}
				// Same measurement twice: idempotent, keep the destination.
			case measured(dp):
				// Data beats model opinion and tombstones.
			case measured(sp):
				m.copyCell(src, x, y, sv, sp)
			case dp == ProvPredicted && sp == ProvPredicted:
				m.copyCell(src, x, y, sv, sp)
			case sp == ProvPredicted:
				// Prediction never overwrites a non-missing cell.
			default:
				// Tombstone onto tombstone (or onto a bare value): keep the
				// destination — neither side carries information the other
				// lacks.
			}
		}
	}
	return nil
}

// copyCell writes one cell of src into m, carrying value, provenance, and
// (for predicted cells) the model confidence.
func (m *Matrix) copyCell(src *Matrix, x, y string, v float64, p Provenance) {
	if p == ProvPredicted {
		_ = m.SetPredicted(x, y, v, src.Conf(x, y))
		return
	}
	_ = m.Set(x, y, v)
	if p != ProvMissing {
		_ = m.SetProv(x, y, p)
	}
}
