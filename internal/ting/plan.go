package ting

import (
	"errors"
	"fmt"
	"time"
)

// Campaign planning: §4.4 and §4.6 frame the practical cost of Ting at
// scale — "Ting took an average of 2.5 minutes to measure a pair using 200
// samples … if one were willing to accept 5% error, then Ting could
// measure a pair in less than 15 seconds", and "an all-pairs matrix can be
// time-consuming to calculate". CampaignPlan turns those knobs into a
// projected duration for a scan over any relay population.

// CampaignConfig describes a planned measurement campaign.
type CampaignConfig struct {
	// Relays is the population size (all-pairs scans measure
	// Relays·(Relays−1)/2 pairs).
	Relays int
	// Pairs overrides the pair count for non-all-pairs campaigns (0 means
	// all pairs of Relays).
	Pairs int
	// Samples per circuit; three circuits per pair (C_xy, C_x, C_y).
	// Default DefaultSamples (200).
	Samples int
	// MeanRTT is the expected mean circuit RTT (one sample costs one
	// round trip). Default 300ms, a typical full-circuit figure from the
	// paper's live measurements.
	MeanRTT time.Duration
	// BuildRTTs is the round trips spent building circuits per pair: each
	// hop costs one, so (w,x,y,z)+(w,x)+(w,y) ≈ 8; with leaky-pipe reuse
	// (StackProber.Reuse) it drops to 6. Default 8.
	BuildRTTs int
	// Parallel is how many measurements run concurrently — one per vantage
	// point or per control session. Default 1.
	Parallel int
	// Memoized models §4.6 half-circuit memoization: min R_Cx depends only
	// on x, so an all-pairs campaign samples Pairs + Relays circuit series
	// (one C_xy per pair, one C_x per relay) instead of 3·Pairs. Requires
	// Relays, since the half-circuit count is the relay population.
	Memoized bool
	// Budget, if positive, models a ScanBudget campaign: only Budget pairs
	// are measured (the coordinate embedding completes the rest for free),
	// so the effective pair count is min(Budget, Pairs). Composes with
	// Memoized — a budgeted memoized campaign samples Budget + Relays
	// series.
	Budget int
}

func (c *CampaignConfig) setDefaults() error {
	if c.Pairs == 0 {
		if c.Relays < 2 {
			return errors.New("ting: campaign needs Relays ≥ 2 or explicit Pairs")
		}
		c.Pairs = c.Relays * (c.Relays - 1) / 2
	}
	if c.Pairs <= 0 {
		return fmt.Errorf("ting: campaign pairs %d", c.Pairs)
	}
	if c.Samples == 0 {
		c.Samples = DefaultSamples
	}
	if c.Samples < 0 {
		return fmt.Errorf("ting: campaign samples %d", c.Samples)
	}
	if c.MeanRTT == 0 {
		c.MeanRTT = 300 * time.Millisecond
	}
	if c.BuildRTTs == 0 {
		c.BuildRTTs = 8
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.Budget < 0 {
		return fmt.Errorf("ting: campaign budget %d", c.Budget)
	}
	if c.Budget > 0 && c.Budget < c.Pairs {
		c.Pairs = c.Budget
	}
	return nil
}

// CampaignPlan is the projected cost.
type CampaignPlan struct {
	Pairs   int
	PerPair time.Duration
	Total   time.Duration
}

// PlanCampaign projects the wall-clock cost of a campaign. Echo probes are
// pipelined one-at-a-time per circuit (each costs one circuit RTT), which
// matches the paper's measured per-pair times within ~20%. With Memoized
// set, PerPair is the campaign average: pairs sharing an endpoint with an
// already-measured pair skip the shared half circuits, so early pairs cost
// more than late ones.
func PlanCampaign(cfg CampaignConfig) (*CampaignPlan, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.Memoized {
		if cfg.Relays < 2 {
			return nil, errors.New("ting: memoized campaign needs Relays (the half-circuit count)")
		}
		series := cfg.Pairs + cfg.Relays
		total := time.Duration(int64(series*cfg.Samples+cfg.Pairs*cfg.BuildRTTs) *
			int64(cfg.MeanRTT) / int64(cfg.Parallel))
		perPair := time.Duration(int64(total) * int64(cfg.Parallel) / int64(cfg.Pairs))
		return &CampaignPlan{Pairs: cfg.Pairs, PerPair: perPair, Total: total}, nil
	}
	perPair := time.Duration(3*cfg.Samples+cfg.BuildRTTs) * cfg.MeanRTT
	total := time.Duration(int64(perPair) * int64(cfg.Pairs) / int64(cfg.Parallel))
	return &CampaignPlan{Pairs: cfg.Pairs, PerPair: perPair, Total: total}, nil
}
