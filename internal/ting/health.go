package ting

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// BreakerState is one relay's circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed: the relay is healthy; measurements flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the relay accumulated FailureThreshold consecutive
	// failures; its pending pairs are quarantined until a cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe
	// measurement is allowed through; its outcome closes or reopens the
	// breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ErrQuarantined marks a pair that was not measured because a relay's
// circuit breaker was open. Match with errors.Is(err, ErrQuarantined).
var ErrQuarantined = errors.New("relay quarantined by open circuit breaker")

// QuarantineError is the concrete error a quarantined pair carries: which
// relay blocked it and, when known, the failure that opened the breaker.
type QuarantineError struct {
	Relay string
	Cause error
}

func (e *QuarantineError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("ting: relay %s quarantined (last failure: %v)", e.Relay, e.Cause)
	}
	return fmt.Sprintf("ting: relay %s quarantined", e.Relay)
}

// Is makes errors.Is(err, ErrQuarantined) match.
func (e *QuarantineError) Is(target error) bool { return target == ErrQuarantined }

// Unwrap exposes the failure that opened the breaker.
func (e *QuarantineError) Unwrap() error { return e.Cause }

// HealthConfig configures a relay scoreboard.
type HealthConfig struct {
	// FailureThreshold is how many consecutive failures open a relay's
	// breaker. Default 3.
	FailureThreshold int
	// Cooldown is how long an open breaker waits before admitting one
	// half-open probe. It also bounds how long a granted probe may stay
	// unresolved before its slot is considered abandoned. Default 30s.
	Cooldown time.Duration
	// Observer, if non-nil, receives BreakerChange callbacks.
	Observer *Observer
	// now is injectable for tests.
	now func() time.Time
}

// Health is the per-relay scoreboard behind the scanner's and monitor's
// circuit breakers. The paper's campaigns ran for weeks against live
// relays that crash and flap (§4.5, §5.1); a persistently sick relay must
// not burn retry budget — or stall workers — on every pair it touches, so
// after FailureThreshold consecutive failures the relay is quarantined:
// closed → open on the K-th failure, open → half-open after Cooldown
// (one probe allowed), half-open → closed on probe success, back to open
// on probe failure. All methods are safe for concurrent use.
type Health struct {
	cfg HealthConfig

	mu     sync.Mutex
	relays map[string]*relayHealth
}

type relayHealth struct {
	state        BreakerState
	consecutive  int // consecutive failures since the last success
	successes    int
	failures     int
	opens        int // times the breaker opened
	failMsSum    float64
	lastErr      error
	openedAt     time.Time
	probing      bool
	probeStarted time.Time
}

// RelayHealth is one relay's scoreboard snapshot.
type RelayHealth struct {
	Name                string
	State               BreakerState
	Successes           int
	Failures            int
	ConsecutiveFailures int
	Opens               int
	// MeanFailureMs is the mean wall-clock latency of this relay's failed
	// measurement attempts — a relay that fails slowly (timeouts) is more
	// expensive than one that fails fast (refused dials).
	MeanFailureMs float64
	LastFailure   string
}

// NewHealth creates a scoreboard.
func NewHealth(cfg HealthConfig) *Health {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Health{cfg: cfg, relays: make(map[string]*relayHealth)}
}

// get returns the relay's record, creating it closed. Callers hold h.mu.
func (h *Health) get(name string) *relayHealth {
	rh := h.relays[name]
	if rh == nil {
		rh = &relayHealth{}
		h.relays[name] = rh
	}
	return rh
}

// setState transitions one relay, firing the observer outside no lock —
// callers hold h.mu, so the callback is deferred to the returned func.
func (h *Health) setState(name string, rh *relayHealth, to BreakerState) func() {
	from := rh.state
	if from == to {
		return nil
	}
	rh.state = to
	obs := h.cfg.Observer
	return func() { obs.breakerChange(name, from, to) }
}

// Allow reports whether a measurement touching the named relays may
// proceed. nil means yes; a non-nil *QuarantineError names the first
// blocking relay. Allow is where open breakers age: once Cooldown has
// elapsed the breaker turns half-open and this caller becomes its single
// probe (a probe abandoned for longer than Cooldown forfeits its slot).
// A caller granted a probe must report the outcome via Success or
// Failure for the implicated relays.
func (h *Health) Allow(names ...string) *QuarantineError {
	h.mu.Lock()
	now := h.cfg.now()
	// Decide for every relay before committing probe slots, so a pair
	// blocked by its second relay does not burn the first one's probe.
	type decision struct {
		rh    *relayHealth
		probe bool
	}
	decisions := make([]decision, 0, len(names))
	var fired []func()
	for _, name := range names {
		rh := h.get(name)
		switch rh.state {
		case BreakerClosed:
			decisions = append(decisions, decision{rh: rh, probe: false})
		case BreakerOpen:
			if now.Sub(rh.openedAt) < h.cfg.Cooldown {
				q := &QuarantineError{Relay: name, Cause: rh.lastErr}
				h.mu.Unlock()
				return q
			}
			decisions = append(decisions, decision{rh: rh, probe: true})
		case BreakerHalfOpen:
			if rh.probing && now.Sub(rh.probeStarted) < h.cfg.Cooldown {
				q := &QuarantineError{Relay: name, Cause: rh.lastErr}
				h.mu.Unlock()
				return q
			}
			decisions = append(decisions, decision{rh: rh, probe: true})
		}
	}
	for i, d := range decisions {
		if !d.probe {
			continue
		}
		if f := h.setState(names[i], d.rh, BreakerHalfOpen); f != nil {
			fired = append(fired, f)
		}
		d.rh.probing = true
		d.rh.probeStarted = now
	}
	h.mu.Unlock()
	for _, f := range fired {
		f()
	}
	return nil
}

// Success credits the relay with one successful measurement: consecutive
// failures reset, and a half-open breaker closes.
func (h *Health) Success(name string) {
	h.mu.Lock()
	rh := h.get(name)
	rh.successes++
	rh.consecutive = 0
	rh.probing = false
	fire := h.setState(name, rh, BreakerClosed)
	h.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Failure charges the relay with one failed measurement attempt that took
// elapsed wall-clock time. The K-th consecutive failure opens the
// breaker; a failed half-open probe reopens it immediately.
func (h *Health) Failure(name string, err error, elapsed time.Duration) {
	h.mu.Lock()
	now := h.cfg.now()
	rh := h.get(name)
	rh.failures++
	rh.consecutive++
	rh.failMsSum += float64(elapsed) / float64(time.Millisecond)
	rh.lastErr = err
	var fire func()
	switch rh.state {
	case BreakerHalfOpen:
		rh.probing = false
		rh.openedAt = now
		rh.opens++
		fire = h.setState(name, rh, BreakerOpen)
	case BreakerClosed:
		if rh.consecutive >= h.cfg.FailureThreshold {
			rh.openedAt = now
			rh.opens++
			fire = h.setState(name, rh, BreakerOpen)
		}
	}
	h.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Reset forgets the relay's scoreboard entirely — churn invalidation: a
// relay that rotated its key or rejoined the consensus is a new
// incarnation whose past failures (and open breaker) say nothing about
// it. If the breaker was open or half-open, the observer sees it close.
func (h *Health) Reset(name string) {
	h.mu.Lock()
	rh := h.relays[name]
	var fire func()
	if rh != nil {
		fire = h.setState(name, rh, BreakerClosed)
		delete(h.relays, name)
	}
	h.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// State returns the relay's breaker position (closed for unknown relays).
func (h *Health) State(name string) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rh := h.relays[name]; rh != nil {
		return rh.state
	}
	return BreakerClosed
}

// Snapshot returns every tracked relay's scoreboard row, sorted by name.
func (h *Health) Snapshot() []RelayHealth {
	h.mu.Lock()
	out := make([]RelayHealth, 0, len(h.relays))
	for name, rh := range h.relays {
		row := RelayHealth{
			Name:                name,
			State:               rh.state,
			Successes:           rh.successes,
			Failures:            rh.failures,
			ConsecutiveFailures: rh.consecutive,
			Opens:               rh.opens,
		}
		if rh.failures > 0 {
			row.MeanFailureMs = rh.failMsSum / float64(rh.failures)
		}
		if rh.lastErr != nil {
			row.LastFailure = rh.lastErr.Error()
		}
		out = append(out, row)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// culprits attributes a pair failure to the relays actually implicated:
// the pair's relays on the failing circuit's path when the error names
// one (a *CircuitError from MeasurePair — C_x charges x, C_y charges y,
// C_xy both), or both endpoints when it does not.
func culprits(x, y string, err error) []string {
	var ce *CircuitError
	if errors.As(err, &ce) {
		var out []string
		for _, r := range ce.Path {
			if r == x || r == y {
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []string{x, y}
}
