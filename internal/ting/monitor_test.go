package ting

import (
	"context"
	"errors"
	"testing"
	"time"
)

func monitorConfig(t *testing.T, f *fakeProber, names []string) MonitorConfig {
	t.Helper()
	return MonitorConfig{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Names: names,
	}
}

func TestMonitorSweepMeasuresAllWhenEmpty(t *testing.T) {
	f := newFakeWorld()
	mon, err := NewMonitor(monitorConfig(t, f, []string{"x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mon.StalePairs()); got != 1 {
		t.Fatalf("stale pairs = %d, want 1", got)
	}
	n, err := mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("swept %d pairs", n)
	}
	v, err := mon.Matrix().RTT("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if v != 73 { // the fake world's exact Eq. (4) result
		t.Errorf("monitored RTT = %v, want 73", v)
	}
	st := mon.Stats()
	if st.Sweeps != 1 || st.Measured != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMonitorSkipsFreshPairs(t *testing.T) {
	f := newFakeWorld()
	cfg := monitorConfig(t, f, []string{"x", "y"})
	now := time.Unix(1000, 0)
	cfg.now = func() time.Time { return now }
	cfg.MaxAge = time.Hour
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Still fresh: nothing to do.
	n, err := mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("second sweep measured %d pairs, want 0", n)
	}
	// Age past MaxAge: stale again.
	now = now.Add(2 * time.Hour)
	n, err = mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("post-expiry sweep measured %d pairs, want 1", n)
	}
}

func TestMonitorPairsPerSweepSpreadsLoad(t *testing.T) {
	f := newFakeWorld()
	// Add a third measurable relay to the fake world.
	f.fwd["v"] = 0.5
	for _, peer := range []string{"h", "w", "z"} {
		f.rtt[[2]string{peer, "v"}] = 30
	}
	f.rtt[[2]string{"x", "v"}] = 35
	f.rtt[[2]string{"y", "v"}] = 45

	cfg := monitorConfig(t, f, []string{"x", "y", "v"})
	cfg.PairsPerSweep = 1
	now := time.Unix(0, 0)
	cfg.now = func() time.Time { now = now.Add(time.Minute); return now }
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 1; sweep <= 3; sweep++ {
		n, err := mon.Sweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("sweep %d measured %d pairs, want 1", sweep, n)
		}
	}
	if got := len(mon.StalePairs()); got != 0 {
		t.Errorf("%d pairs still stale after 3 single-pair sweeps", got)
	}
	// All three values present.
	m := mon.Matrix()
	for _, p := range [][2]string{{"x", "y"}, {"x", "v"}, {"y", "v"}} {
		v, err := m.RTT(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Errorf("pair %v unmeasured", p)
		}
	}
}

func TestMonitorStalestFirst(t *testing.T) {
	f := newFakeWorld()
	f.fwd["v"] = 0.5
	for _, peer := range []string{"h", "w", "z", "x", "y"} {
		f.rtt[[2]string{peer, "v"}] = 25
	}
	cfg := monitorConfig(t, f, []string{"x", "y", "v"})
	cfg.PairsPerSweep = 1
	now := time.Unix(0, 0)
	cfg.now = func() time.Time { now = now.Add(time.Hour); return now }
	cfg.MaxAge = time.Nanosecond // everything immediately stale
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three sweeps must cycle through all three pairs (stalest first means
	// never-measured pairs before re-measured ones).
	seen := map[[2]string]int{}
	for i := 0; i < 3; i++ {
		before := mon.Stats().Measured
		if _, err := mon.Sweep(context.Background()); err != nil {
			t.Fatal(err)
		}
		if mon.Stats().Measured != before+1 {
			t.Fatal("sweep did not measure exactly one pair")
		}
		for _, p := range mon.StalePairs() {
			seen[p]++
		}
	}
	m := mon.Matrix()
	measured := 0
	for _, p := range [][2]string{{"x", "y"}, {"x", "v"}, {"y", "v"}} {
		if v, _ := m.RTT(p[0], p[1]); v > 0 {
			measured++
		}
	}
	if measured != 3 {
		t.Errorf("round-robin broke: %d of 3 pairs measured", measured)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Names: []string{"a", "b"}}); err == nil {
		t.Error("missing NewMeasurer accepted")
	}
	f := newFakeWorld()
	if _, err := NewMonitor(monitorConfig(t, f, []string{"only"})); err == nil {
		t.Error("1-name monitor accepted")
	}
}

func TestMonitorPropagatesErrors(t *testing.T) {
	f := newFakeWorld()
	f.errs["x"] = errors.New("x offline")
	mon, err := NewMonitor(monitorConfig(t, f, []string{"x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Sweep(context.Background()); err == nil {
		t.Error("sweep error swallowed")
	}
}

// TestMonitorSkipsQuarantinedRelays: a sweep consults the shared health
// scoreboard — pairs touching an open breaker stay stale instead of burning
// the sweep budget, and outcomes feed the scoreboard back.
func TestMonitorSkipsQuarantinedRelays(t *testing.T) {
	f := bigFakeWorld()
	h := NewHealth(HealthConfig{FailureThreshold: 2, Cooldown: time.Hour})
	// x's breaker is already open, e.g. from a scanner sharing the board.
	h.Failure("x", errors.New("x is down"), time.Millisecond)
	h.Failure("x", errors.New("x is down"), time.Millisecond)
	if h.State("x") != BreakerOpen {
		t.Fatal("setup: x's breaker not open")
	}
	cfg := monitorConfig(t, f, []string{"x", "y", "u", "v"})
	cfg.Health = h
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("swept %d pairs, want the 3 not touching x", n)
	}
	st := mon.Stats()
	if st.Measured != 3 || st.Quarantined != 3 || st.Failed != 0 {
		t.Errorf("stats = %+v, want 3 measured, 3 quarantined, 0 failed", st)
	}
	// x's pairs are still stale — the monitor will retry them once the
	// breaker half-opens.
	if got := len(mon.StalePairs()); got != 3 {
		t.Errorf("%d stale pairs after sweep, want x's 3", got)
	}
	// Sweep successes were credited to the healthy relays.
	for _, r := range h.Snapshot() {
		if r.Name != "x" && r.Successes == 0 {
			t.Errorf("relay %s got no success credit", r.Name)
		}
	}
}

// TestMonitorFailuresFeedHealth: sweep failures open the breaker for the
// implicated relay, and the next sweep quarantines it.
func TestMonitorFailuresFeedHealth(t *testing.T) {
	f := bigFakeWorld()
	f.errs["x"] = errors.New("x offline")
	h := NewHealth(HealthConfig{FailureThreshold: 3, Cooldown: time.Hour})
	cfg := monitorConfig(t, f, []string{"x", "y", "u", "v"})
	cfg.Health = h
	cfg.Workers = 1
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First sweep: x's three pairs fail (charging x three times → open),
	// the other three measure.
	if _, err := mon.Sweep(context.Background()); err == nil {
		t.Fatal("sweep with failing relay reported no error")
	}
	if got := h.State("x"); got != BreakerOpen {
		t.Fatalf("x's breaker = %v after failed sweep, want open", got)
	}
	if got := h.State("y"); got != BreakerClosed {
		t.Errorf("bystander y's breaker = %v", got)
	}
	st := mon.Stats()
	if st.Failed != 3 || st.Measured != 3 {
		t.Fatalf("stats = %+v, want 3 failed, 3 measured", st)
	}
	// Second sweep: the stale x-pairs are quarantined, nothing fails, no
	// error surfaces.
	n, err := mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("quarantined sweep measured %d pairs", n)
	}
	st = mon.Stats()
	if st.Failed != 3 || st.Quarantined != 3 {
		t.Errorf("stats after quarantined sweep = %+v", st)
	}
}

func TestMonitorRunEvery(t *testing.T) {
	f := newFakeWorld()
	cfg := monitorConfig(t, f, []string{"x", "y"})
	cfg.MaxAge = time.Nanosecond
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mon.RunEvery(ctx, 5*time.Millisecond) }()
	deadline := time.After(3 * time.Second)
	for mon.Stats().Sweeps < 3 {
		select {
		case <-deadline:
			t.Fatal("monitor did not sweep repeatedly")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := mon.RunEvery(context.Background(), 0); err == nil {
		t.Error("zero interval accepted")
	}
}
