package ting

import (
	"context"
	"errors"
	"testing"
	"time"
)

func monitorConfig(t *testing.T, f *fakeProber, names []string) MonitorConfig {
	t.Helper()
	return MonitorConfig{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Names: names,
	}
}

func TestMonitorSweepMeasuresAllWhenEmpty(t *testing.T) {
	f := newFakeWorld()
	mon, err := NewMonitor(monitorConfig(t, f, []string{"x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mon.StalePairs()); got != 1 {
		t.Fatalf("stale pairs = %d, want 1", got)
	}
	n, err := mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("swept %d pairs", n)
	}
	v, err := mon.Matrix().RTT("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if v != 73 { // the fake world's exact Eq. (4) result
		t.Errorf("monitored RTT = %v, want 73", v)
	}
	st := mon.Stats()
	if st.Sweeps != 1 || st.Measured != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMonitorSkipsFreshPairs(t *testing.T) {
	f := newFakeWorld()
	cfg := monitorConfig(t, f, []string{"x", "y"})
	now := time.Unix(1000, 0)
	cfg.now = func() time.Time { return now }
	cfg.MaxAge = time.Hour
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Still fresh: nothing to do.
	n, err := mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("second sweep measured %d pairs, want 0", n)
	}
	// Age past MaxAge: stale again.
	now = now.Add(2 * time.Hour)
	n, err = mon.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("post-expiry sweep measured %d pairs, want 1", n)
	}
}

func TestMonitorPairsPerSweepSpreadsLoad(t *testing.T) {
	f := newFakeWorld()
	// Add a third measurable relay to the fake world.
	f.fwd["v"] = 0.5
	for _, peer := range []string{"h", "w", "z"} {
		f.rtt[[2]string{peer, "v"}] = 30
	}
	f.rtt[[2]string{"x", "v"}] = 35
	f.rtt[[2]string{"y", "v"}] = 45

	cfg := monitorConfig(t, f, []string{"x", "y", "v"})
	cfg.PairsPerSweep = 1
	now := time.Unix(0, 0)
	cfg.now = func() time.Time { now = now.Add(time.Minute); return now }
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 1; sweep <= 3; sweep++ {
		n, err := mon.Sweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("sweep %d measured %d pairs, want 1", sweep, n)
		}
	}
	if got := len(mon.StalePairs()); got != 0 {
		t.Errorf("%d pairs still stale after 3 single-pair sweeps", got)
	}
	// All three values present.
	m := mon.Matrix()
	for _, p := range [][2]string{{"x", "y"}, {"x", "v"}, {"y", "v"}} {
		v, err := m.RTT(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Errorf("pair %v unmeasured", p)
		}
	}
}

func TestMonitorStalestFirst(t *testing.T) {
	f := newFakeWorld()
	f.fwd["v"] = 0.5
	for _, peer := range []string{"h", "w", "z", "x", "y"} {
		f.rtt[[2]string{peer, "v"}] = 25
	}
	cfg := monitorConfig(t, f, []string{"x", "y", "v"})
	cfg.PairsPerSweep = 1
	now := time.Unix(0, 0)
	cfg.now = func() time.Time { now = now.Add(time.Hour); return now }
	cfg.MaxAge = time.Nanosecond // everything immediately stale
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three sweeps must cycle through all three pairs (stalest first means
	// never-measured pairs before re-measured ones).
	seen := map[[2]string]int{}
	for i := 0; i < 3; i++ {
		before := mon.Stats().Measured
		if _, err := mon.Sweep(context.Background()); err != nil {
			t.Fatal(err)
		}
		if mon.Stats().Measured != before+1 {
			t.Fatal("sweep did not measure exactly one pair")
		}
		for _, p := range mon.StalePairs() {
			seen[p]++
		}
	}
	m := mon.Matrix()
	measured := 0
	for _, p := range [][2]string{{"x", "y"}, {"x", "v"}, {"y", "v"}} {
		if v, _ := m.RTT(p[0], p[1]); v > 0 {
			measured++
		}
	}
	if measured != 3 {
		t.Errorf("round-robin broke: %d of 3 pairs measured", measured)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Names: []string{"a", "b"}}); err == nil {
		t.Error("missing NewMeasurer accepted")
	}
	f := newFakeWorld()
	if _, err := NewMonitor(monitorConfig(t, f, []string{"only"})); err == nil {
		t.Error("1-name monitor accepted")
	}
}

func TestMonitorPropagatesErrors(t *testing.T) {
	f := newFakeWorld()
	f.errs["x"] = errors.New("x offline")
	mon, err := NewMonitor(monitorConfig(t, f, []string{"x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Sweep(context.Background()); err == nil {
		t.Error("sweep error swallowed")
	}
}

func TestMonitorRunEvery(t *testing.T) {
	f := newFakeWorld()
	cfg := monitorConfig(t, f, []string{"x", "y"})
	cfg.MaxAge = time.Nanosecond
	mon, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mon.RunEvery(ctx, 5*time.Millisecond) }()
	deadline := time.After(3 * time.Second)
	for mon.Stats().Sweeps < 3 {
		select {
		case <-deadline:
			t.Fatal("monitor did not sweep repeatedly")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := mon.RunEvery(context.Background(), 0); err == nil {
		t.Error("zero interval accepted")
	}
}
