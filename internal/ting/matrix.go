package ting

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TileShift is log2 of the matrix tile dimension: cells are stored in
// TileDim×TileDim blocks, allocated on first write.
const TileShift = 6

const (
	// TileDim is the tile edge length in cells.
	TileDim  = 1 << TileShift
	tileMask = TileDim - 1
)

// tile is one TileDim×TileDim block of the matrix, row-major. Value,
// provenance, and confidence live side by side so a cell's full state has
// one owner; the zero value of all three arrays (0.0, ProvMissing, conf 0)
// is exactly the meaning of an unwritten cell, so tiles need no
// initialization beyond allocation.
type tile struct {
	r    [TileDim * TileDim]float64
	prov [TileDim * TileDim]Provenance
	// conf quantizes per-cell confidence to 1/255 steps: 255 for measured
	// cells, the embedding's Confidence score for predicted ones, 0 for
	// missing. A byte per cell keeps the completed matrix's annotation
	// overhead at 1/8th of the values themselves.
	conf [TileDim * TileDim]uint8
}

// tidx maps global indices to a cell's offset within its tile.
func tidx(i, j int) int { return (i&tileMask)<<TileShift | (j & tileMask) }

// Matrix is an all-pairs RTT dataset over named relays — the artifact
// Ting exists to produce and every Section 5 application consumes.
// R[i][j], read via At/RTT, is the measured RTT between Names()[i] and
// Names()[j] in milliseconds; symmetric with zero diagonal.
//
// Matrix is the *write side* of the dataset: scanners and monitors call
// Set/SetProv/AddName. Read-only consumers (pathsel, deanon, the serving
// plane) take the MatrixView interface instead, which *Matrix implements —
// see view.go for the read-side contract and the epoch-stamped immutable
// PublishedMatrix.
//
// Storage is tiled: cells live in TileDim×TileDim blocks materialized on
// first write, so a 10k-relay campaign that has measured 1% of its pairs
// holds 1% (plus block rounding) of the 800 MB a dense N² array would
// pin. Unmaterialized tiles read as zero / ProvMissing.
type Matrix struct {
	names []string

	index map[string]int
	// tiles[ti][tj] covers rows [ti·TileDim, (ti+1)·TileDim) × the
	// matching column band; nil until a cell in the block is written. The
	// grid itself is N²/TileDim² pointers — negligible next to the cells.
	tiles [][]*tile
}

// Provenance classifies how a matrix cell got its value — the per-cell
// story a durable, resumable campaign must tell (a zero cell could be a
// failed pair or one the scan never reached).
type Provenance uint8

const (
	// ProvMissing: never measured — failed, quarantined, or not attempted.
	ProvMissing Provenance = iota
	// ProvFresh: measured by this scan.
	ProvFresh
	// ProvResumed: replayed from a checkpoint by Scanner.Resume.
	ProvResumed
	// ProvRemoved: tombstoned — a relay of the pair left the consensus
	// before the pair could be measured (churn, not failure).
	ProvRemoved
	// ProvPredicted: completed by the coordinate embedding, not measured —
	// the value is a model prediction carrying a per-cell confidence
	// (ConfAt), and consumers that must not act on synthetic data (TIV
	// witnesses, high-stakes path selection) filter on this.
	ProvPredicted
)

func (p Provenance) String() string {
	switch p {
	case ProvMissing:
		return "missing"
	case ProvFresh:
		return "fresh"
	case ProvResumed:
		return "resumed"
	case ProvRemoved:
		return "removed"
	case ProvPredicted:
		return "predicted"
	}
	return fmt.Sprintf("Provenance(%d)", int(p))
}

// NewMatrix allocates a zeroed matrix over names. No cell tiles are
// materialized: a fresh matrix costs O(N²/TileDim²) pointers, not O(N²)
// cells.
func NewMatrix(names []string) (*Matrix, error) {
	if len(names) < 2 {
		return nil, errors.New("ting: matrix needs at least two relays")
	}
	m := &Matrix{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range m.names {
		if n == "" {
			return nil, errors.New("ting: empty relay name")
		}
		if _, dup := m.index[n]; dup {
			return nil, fmt.Errorf("ting: duplicate relay %q", n)
		}
		m.index[n] = i
	}
	m.tiles = newTileGrid(tileCount(len(names)), nil)
	return m, nil
}

// tileCount is how many tile bands cover n cells per axis.
func tileCount(n int) int { return (n + tileMask) >> TileShift }

// newTileGrid allocates a tn×tn grid of nil tile pointers in one backing
// slice, copying old's pointers into the top-left corner when growing.
// Tiling is index-stable — cell (i,j) lives in tile (i»TileShift,
// j»TileShift) no matter how large the matrix is — so growth never moves
// cells, only re-places tile pointers on the wider grid.
func newTileGrid(tn int, old [][]*tile) [][]*tile {
	grid := make([][]*tile, tn)
	backing := make([]*tile, tn*tn)
	for ti := range grid {
		grid[ti] = backing[ti*tn : (ti+1)*tn : (ti+1)*tn]
		if ti < len(old) {
			copy(grid[ti], old[ti])
		}
	}
	return grid
}

// N returns the number of relays.
func (m *Matrix) N() int { return len(m.names) }

// at reads a cell without bounds checking; unmaterialized tiles are zero.
func (m *Matrix) at(i, j int) float64 {
	t := m.tiles[i>>TileShift][j>>TileShift]
	if t == nil {
		return 0
	}
	return t.r[tidx(i, j)]
}

// cellTile returns the tile holding (i,j), materializing it on first
// write.
func (m *Matrix) cellTile(i, j int) *tile {
	ti, tj := i>>TileShift, j>>TileShift
	t := m.tiles[ti][tj]
	if t == nil {
		t = new(tile)
		m.tiles[ti][tj] = t
	}
	return t
}

// AddName grows the matrix by one relay: a new zeroed row and column whose
// cells are ProvMissing until measured. This is how a mid-scan consensus
// join enters an in-progress campaign's matrix. Crossing a tile boundary
// re-places the existing tile pointers on a wider grid; cell blocks
// themselves never move or reallocate.
func (m *Matrix) AddName(name string) error {
	if name == "" {
		return errors.New("ting: empty relay name")
	}
	if _, dup := m.index[name]; dup {
		return fmt.Errorf("ting: duplicate relay %q", name)
	}
	m.index[name] = len(m.names)
	m.names = append(m.names, name)
	if tn := tileCount(len(m.names)); tn > len(m.tiles) {
		m.tiles = newTileGrid(tn, m.tiles)
	}
	return nil
}

// Set records the RTT for a pair, both directions.
func (m *Matrix) Set(x, y string, ms float64) error {
	i, ok := m.index[x]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", y)
	}
	m.cellTile(i, j).r[tidx(i, j)] = ms
	m.cellTile(j, i).r[tidx(j, i)] = ms
	return nil
}

// RTT returns the RTT between two named relays.
func (m *Matrix) RTT(x, y string) (float64, error) {
	i, ok := m.index[x]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", y)
	}
	return m.at(i, j), nil
}

// At returns the RTT by index; it panics on out-of-range indices like the
// slice access it replaces.
func (m *Matrix) At(i, j int) float64 {
	n := len(m.names)
	if i < 0 || j < 0 || i >= n || j >= n {
		panic(fmt.Sprintf("ting: matrix index (%d,%d) out of range [0,%d)", i, j, n))
	}
	return m.at(i, j)
}

// Dense materializes the matrix as row slices over one backing array —
// for O(N²)-and-up analysis loops (TIV scans, path enumeration) where
// per-cell At calls would pay the tile indirection N³ times. The copy is
// independent of the matrix; mutate neither expecting the other to see
// it.
func (m *Matrix) Dense() [][]float64 {
	n := len(m.names)
	rows := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := 0; i < n; i++ {
		rows[i] = backing[i*n : (i+1)*n : (i+1)*n]
		trow := m.tiles[i>>TileShift]
		for j := 0; j < n; j++ {
			if t := trow[j>>TileShift]; t != nil {
				rows[i][j] = t.r[tidx(i, j)]
			}
		}
	}
	return rows
}

// Clone returns a deep copy: only materialized tiles are copied, so a
// snapshot of a sparse matrix is as cheap as the matrix itself.
func (m *Matrix) Clone() *Matrix {
	cp := &Matrix{
		names: append([]string(nil), m.names...),
		index: make(map[string]int, len(m.index)),
	}
	for k, v := range m.index {
		cp.index[k] = v
	}
	cp.tiles = newTileGrid(len(m.tiles), nil)
	for ti, row := range m.tiles {
		for tj, t := range row {
			if t != nil {
				dup := *t
				cp.tiles[ti][tj] = &dup
			}
		}
	}
	return cp
}

// SetProv records a cell's provenance, both directions. Confidence is
// derived: measured cells (fresh or resumed) are fully trusted, everything
// else scores zero — predicted cells carry a real model confidence and go
// through SetPredicted instead.
func (m *Matrix) SetProv(x, y string, p Provenance) error {
	i, ok := m.index[x]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", y)
	}
	var conf uint8
	if p == ProvFresh || p == ProvResumed {
		conf = 255
	}
	ij, ji := tidx(i, j), tidx(j, i)
	tij, tji := m.cellTile(i, j), m.cellTile(j, i)
	tij.prov[ij] = p
	tij.conf[ij] = conf
	tji.prov[ji] = p
	tji.conf[ji] = conf
	return nil
}

// SetPredicted fills a cell from the coordinate embedding: value, the
// ProvPredicted provenance, and the model's confidence (clamped to [0, 1],
// quantized to 1/255 steps), both directions. This is the completion
// layer's single write path, so a predicted cell can never masquerade as a
// measured one.
func (m *Matrix) SetPredicted(x, y string, ms, conf float64) error {
	i, ok := m.index[x]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", y)
	}
	if i == j {
		return fmt.Errorf("ting: refusing to predict self-pair %q", x)
	}
	if conf < 0 {
		conf = 0
	}
	if conf > 1 {
		conf = 1
	}
	q := uint8(conf*255 + 0.5)
	ij, ji := tidx(i, j), tidx(j, i)
	tij, tji := m.cellTile(i, j), m.cellTile(j, i)
	tij.r[ij] = ms
	tij.prov[ij] = ProvPredicted
	tij.conf[ij] = q
	tji.r[ji] = ms
	tji.prov[ji] = ProvPredicted
	tji.conf[ji] = q
	return nil
}

// Prov returns a cell's provenance; unknown relays and unwritten cells
// report ProvMissing.
func (m *Matrix) Prov(x, y string) Provenance {
	i, ok := m.index[x]
	if !ok {
		return ProvMissing
	}
	j, ok := m.index[y]
	if !ok {
		return ProvMissing
	}
	t := m.tiles[i>>TileShift][j>>TileShift]
	if t == nil {
		return ProvMissing
	}
	return t.prov[tidx(i, j)]
}

// Conf returns a cell's confidence in [0, 1] by name: 1 for measured
// cells, the embedding's (quantized) score for predicted ones, 0 for
// missing cells and unknown relays.
func (m *Matrix) Conf(x, y string) float64 {
	i, ok := m.index[x]
	if !ok {
		return 0
	}
	j, ok := m.index[y]
	if !ok {
		return 0
	}
	t := m.tiles[i>>TileShift][j>>TileShift]
	if t == nil {
		return 0
	}
	return float64(t.conf[tidx(i, j)]) / 255
}

// ConfAt returns a cell's confidence by index; it panics on out-of-range
// indices like At. The diagonal is fully trusted by definition.
func (m *Matrix) ConfAt(i, j int) float64 {
	n := len(m.names)
	if i < 0 || j < 0 || i >= n || j >= n {
		panic(fmt.Sprintf("ting: matrix index (%d,%d) out of range [0,%d)", i, j, n))
	}
	if i == j {
		return 1
	}
	t := m.tiles[i>>TileShift][j>>TileShift]
	if t == nil {
		return 0
	}
	return float64(t.conf[tidx(i, j)]) / 255
}

// ProvCount is the upper-triangle provenance tally — the "how complete is
// this campaign" summary. A struct (rather than positional returns) so
// new provenance classes extend it without breaking every caller.
type ProvCount struct {
	Fresh     int
	Resumed   int
	Removed   int
	Predicted int
	Missing   int
}

// Measured is the number of pairs backed by real measurements (fresh or
// resumed) — the numerator of a budgeted campaign's measured fraction.
func (c ProvCount) Measured() int { return c.Fresh + c.Resumed }

// Total is the number of unordered pairs tallied.
func (c ProvCount) Total() int {
	return c.Fresh + c.Resumed + c.Removed + c.Predicted + c.Missing
}

// ProvCounts tallies the upper triangle's provenance. Unmaterialized
// tiles count as all-missing without being touched.
func (m *Matrix) ProvCounts() ProvCount {
	var c ProvCount
	n := len(m.names)
	for i := 0; i < n; i++ {
		trow := m.tiles[i>>TileShift]
		for j := i + 1; j < n; j++ {
			t := trow[j>>TileShift]
			if t == nil {
				c.Missing++
				continue
			}
			switch t.prov[tidx(i, j)] {
			case ProvFresh:
				c.Fresh++
			case ProvResumed:
				c.Resumed++
			case ProvRemoved:
				c.Removed++
			case ProvPredicted:
				c.Predicted++
			default:
				c.Missing++
			}
		}
	}
	return c
}

// Mean returns µ, the average RTT over all unordered pairs — the term
// Algorithm 1 uses to approximate the unknown source→entry RTT.
func (m *Matrix) Mean() float64 {
	n := len(m.names)
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		trow := m.tiles[i>>TileShift]
		for j := i + 1; j < n; j++ {
			if t := trow[j>>TileShift]; t != nil {
				sum += t.r[tidx(i, j)]
			}
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// PairValues returns the RTTs of all unordered pairs.
func (m *Matrix) PairValues() []float64 {
	n := len(m.names)
	out := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		trow := m.tiles[i>>TileShift]
		for j := i + 1; j < n; j++ {
			var v float64
			if t := trow[j>>TileShift]; t != nil {
				v = t.r[tidx(i, j)]
			}
			out = append(out, v)
		}
	}
	return out
}

// Encode writes the matrix as a text document (names header plus one row
// per line), the published-dataset format. The encoder streams: each
// number is appended to one reused scratch buffer and written through the
// bufio.Writer, so encoding never builds a row's (let alone the
// document's) text in memory — the dense-encode double-buffer a 10k-node
// matrix cannot afford.
//
// Measured provenance (fresh/resumed/removed) is runtime annotation and
// not persisted, but predicted cells are: a budgeted campaign's document
// gains one "pred i j q" trailer line per model-completed pair (q the
// quantized confidence, 0–255), so a consumer of the published dataset
// can still tell measurement from model opinion. Fully-measured matrices
// encode byte-identically to the pre-trailer format.
func (m *Matrix) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "tingmatrix n=%d\n", len(m.names))
	for i, name := range m.names {
		if i > 0 {
			bw.WriteByte(' ')
		}
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	n := len(m.names)
	num := make([]byte, 0, 32)
	for i := 0; i < n; i++ {
		trow := m.tiles[i>>TileShift]
		for j := 0; j < n; j++ {
			if j > 0 {
				bw.WriteByte(' ')
			}
			var v float64
			if t := trow[j>>TileShift]; t != nil {
				v = t.r[tidx(i, j)]
			}
			num = strconv.AppendFloat(num[:0], v, 'g', -1, 64)
			bw.Write(num)
		}
		bw.WriteByte('\n')
	}
	for i := 0; i < n; i++ {
		trow := m.tiles[i>>TileShift]
		for j := i + 1; j < n; j++ {
			t := trow[j>>TileShift]
			if t == nil || t.prov[tidx(i, j)] != ProvPredicted {
				continue
			}
			fmt.Fprintf(bw, "pred %d %d %d\n", i, j, t.conf[tidx(i, j)])
		}
	}
	return bw.Flush()
}

// DecodeMatrix parses a matrix document. Malformed documents — bad
// header, truncated or oversized rows, non-finite cells, trailing data —
// are explicit errors, never panics or silent truncation: a matrix that
// decodes is structurally sound.
func DecodeMatrix(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: matrix header: %w", err)
		}
		return nil, errors.New("ting: empty matrix document")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "tingmatrix n=%d", &n); err != nil {
		return nil, fmt.Errorf("ting: bad matrix header %q", sc.Text())
	}
	if n < 2 {
		return nil, fmt.Errorf("ting: matrix dimension %d, need at least 2", n)
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: matrix names: %w", err)
		}
		return nil, errors.New("ting: matrix missing names")
	}
	names := strings.Fields(sc.Text())
	if len(names) != n {
		return nil, fmt.Errorf("ting: header says %d names, got %d", n, len(names))
	}
	m, err := NewMatrix(names)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("ting: matrix row %d: %w", i, err)
			}
			return nil, fmt.Errorf("ting: matrix truncated at row %d", i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != n {
			return nil, fmt.Errorf("ting: row %d has %d values, want %d", i, len(fields), n)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("ting: row %d col %d: %w", i, j, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ting: row %d col %d: non-finite cell %q", i, j, f)
			}
			// Zero cells stay unmaterialized: decoding a sparse campaign's
			// dense document reconstructs a sparse matrix.
			if v != 0 {
				m.cellTile(i, j).r[tidx(i, j)] = v
			}
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// Optional predicted-cell trailer: "pred i j q" marks cell (i,j) as
		// model-completed with quantized confidence q. The raw 0–255 byte is
		// persisted (not a dequantized float) so a round trip is exact.
		var i, j, q int
		if _, err := fmt.Sscanf(line, "pred %d %d %d", &i, &j, &q); err != nil {
			return nil, fmt.Errorf("ting: trailing data after %d matrix rows: %q", n, line)
		}
		if i < 0 || j < 0 || i >= n || j >= n || i == j {
			return nil, fmt.Errorf("ting: pred record (%d,%d) out of range for n=%d", i, j, n)
		}
		if q < 0 || q > 255 {
			return nil, fmt.Errorf("ting: pred record (%d,%d) confidence %d outside [0,255]", i, j, q)
		}
		ij, ji := tidx(i, j), tidx(j, i)
		tij, tji := m.cellTile(i, j), m.cellTile(j, i)
		tij.prov[ij] = ProvPredicted
		tij.conf[ij] = uint8(q)
		tji.prov[ji] = ProvPredicted
		tji.conf[ji] = uint8(q)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ting: matrix document: %w", err)
	}
	return m, nil
}

// EncodeTiles writes the matrix in the sparse tile format: a header, the
// names line, one record per materialized tile (clipped to the matrix
// extent), and an "end" terminator. Unmaterialized tiles are simply
// absent, so the document size tracks cells measured, not N² — the format
// a partially-scanned 10k-node campaign publishes without emitting 99
// million zeros. Unlike Encode, the tile format carries no provenance at
// all — it is the campaign-internal interchange format, not the published
// dataset.
func (m *Matrix) EncodeTiles(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := len(m.names)
	fmt.Fprintf(bw, "tingtiles n=%d dim=%d\n", n, TileDim)
	for i, name := range m.names {
		if i > 0 {
			bw.WriteByte(' ')
		}
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	num := make([]byte, 0, 32)
	for ti, row := range m.tiles {
		for tj, t := range row {
			if t == nil {
				continue
			}
			h, wdt := tileExtent(ti, n), tileExtent(tj, n)
			fmt.Fprintf(bw, "tile %d %d\n", ti, tj)
			for r := 0; r < h; r++ {
				for c := 0; c < wdt; c++ {
					if c > 0 {
						bw.WriteByte(' ')
					}
					num = strconv.AppendFloat(num[:0], t.r[r<<TileShift|c], 'g', -1, 64)
					bw.Write(num)
				}
				bw.WriteByte('\n')
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// tileExtent is how many rows (or columns) of tile band t are inside an
// n-cell matrix: TileDim for interior bands, the remainder for the last.
func tileExtent(t, n int) int {
	if e := n - t<<TileShift; e < TileDim {
		return e
	}
	return TileDim
}

// DecodeTiles parses a tile document. Exactly the listed tiles are
// materialized, so a round trip preserves sparsity as well as values.
// Malformed documents — bad header, unknown dim, out-of-range or
// duplicate tiles, short or oversized rows, non-finite cells, a missing
// "end", trailing data — are explicit errors.
func DecodeTiles(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: tiles header: %w", err)
		}
		return nil, errors.New("ting: empty tile document")
	}
	var n, dim int
	if _, err := fmt.Sscanf(sc.Text(), "tingtiles n=%d dim=%d", &n, &dim); err != nil {
		return nil, fmt.Errorf("ting: bad tiles header %q", sc.Text())
	}
	if n < 2 {
		return nil, fmt.Errorf("ting: matrix dimension %d, need at least 2", n)
	}
	if dim != TileDim {
		return nil, fmt.Errorf("ting: unsupported tile dim %d (want %d)", dim, TileDim)
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: tiles names: %w", err)
		}
		return nil, errors.New("ting: tile document missing names")
	}
	names := strings.Fields(sc.Text())
	if len(names) != n {
		return nil, fmt.Errorf("ting: header says %d names, got %d", n, len(names))
	}
	m, err := NewMatrix(names)
	if err != nil {
		return nil, err
	}
	tn := tileCount(n)
	ended := false
	for sc.Scan() {
		line := sc.Text()
		if line == "end" {
			ended = true
			break
		}
		var ti, tj int
		if _, err := fmt.Sscanf(line, "tile %d %d", &ti, &tj); err != nil {
			return nil, fmt.Errorf("ting: bad tile record %q", line)
		}
		if ti < 0 || tj < 0 || ti >= tn || tj >= tn {
			return nil, fmt.Errorf("ting: tile (%d,%d) out of range for n=%d", ti, tj, n)
		}
		if m.tiles[ti][tj] != nil {
			return nil, fmt.Errorf("ting: duplicate tile (%d,%d)", ti, tj)
		}
		t := new(tile)
		m.tiles[ti][tj] = t
		h, wdt := tileExtent(ti, n), tileExtent(tj, n)
		for r := 0; r < h; r++ {
			if !sc.Scan() {
				if err := sc.Err(); err != nil {
					return nil, fmt.Errorf("ting: tile (%d,%d) row %d: %w", ti, tj, r, err)
				}
				return nil, fmt.Errorf("ting: tile (%d,%d) truncated at row %d", ti, tj, r)
			}
			fields := strings.Fields(sc.Text())
			if len(fields) != wdt {
				return nil, fmt.Errorf("ting: tile (%d,%d) row %d has %d values, want %d", ti, tj, r, len(fields), wdt)
			}
			for c, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("ting: tile (%d,%d) cell (%d,%d): %w", ti, tj, r, c, err)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("ting: tile (%d,%d) cell (%d,%d): non-finite %q", ti, tj, r, c, f)
				}
				t.r[r<<TileShift|c] = v
			}
		}
	}
	if !ended {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: tile document: %w", err)
		}
		return nil, errors.New("ting: tile document missing end terminator")
	}
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			return nil, fmt.Errorf("ting: trailing data after tile end")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ting: tile document: %w", err)
	}
	return m, nil
}

// Cache memoizes pair measurements with a freshness horizon. §4.6 shows
// Ting's measurements are stable over at least a week, so "taking
// measurements with Ting infrequently and caching them is sufficient".
type Cache struct {
	ttl time.Duration
	now func() time.Time

	mu sync.Mutex
	m  map[[2]string]cacheEntry
	// pruneAt is the map size that triggers the next expiry sweep. Doubling
	// it after each sweep makes pruning amortized O(1) per Put instead of
	// the former O(n) walk on every insert.
	pruneAt int
}

// cachePruneFloor is the smallest prune threshold: sweeping tiny maps is
// pointless, and a floor keeps the doubling schedule from degenerating.
const cachePruneFloor = 16

type cacheEntry struct {
	rtt  float64
	when time.Time
}

// NewCache creates a cache whose entries expire after ttl. A ttl ≤ 0
// means entries never expire — the §4.6 "measure once, cache for the
// campaign" mode — not "expire immediately".
func NewCache(ttl time.Duration) *Cache {
	return &Cache{ttl: ttl, now: time.Now, m: make(map[[2]string]cacheEntry), pruneAt: cachePruneFloor}
}

func pairKey(x, y string) [2]string {
	if x > y {
		x, y = y, x
	}
	return [2]string{x, y}
}

// Get returns a fresh cached RTT for the pair, if any. With ttl ≤ 0 every
// stored entry is fresh forever.
func (c *Cache) Get(x, y string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[pairKey(x, y)]
	if !ok || c.expired(e) {
		return 0, false
	}
	return e.rtt, true
}

// Put records a measurement and, when a TTL is set, occasionally prunes
// entries that have already expired so a long-running scanner's cache does
// not grow with dead pairs. Pruning is lazy: expired entries may linger
// (Get never returns them) until the map grows past its prune threshold,
// at which point one sweep reclaims them — amortized O(1) per Put.
func (c *Cache) Put(x, y string, rtt float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[pairKey(x, y)] = cacheEntry{rtt: rtt, when: c.now()}
	if c.ttl > 0 && len(c.m) >= c.pruneAt {
		for k, e := range c.m {
			if c.expired(e) {
				delete(c.m, k)
			}
		}
		c.pruneAt = 2 * len(c.m)
		if c.pruneAt < cachePruneFloor {
			c.pruneAt = cachePruneFloor
		}
	}
}

// expired reports whether an entry is past the TTL. Callers hold c.mu.
func (c *Cache) expired(e cacheEntry) bool {
	return c.ttl > 0 && c.now().Sub(e.when) > c.ttl
}

// Len returns the number of cached pairs, fresh or stale: stale entries
// linger until growth triggers the next amortized prune, and Len reports
// what is actually held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
