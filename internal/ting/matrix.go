package ting

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Matrix is an all-pairs RTT dataset over named relays — the artifact
// Ting exists to produce and every Section 5 application consumes.
type Matrix struct {
	Names []string
	// R[i][j] is the measured RTT between Names[i] and Names[j] in
	// milliseconds. Symmetric with zero diagonal.
	R [][]float64

	index map[string]int
	// prov is lazily allocated cell provenance; nil means every cell is
	// ProvMissing. Runtime annotation only — Encode does not persist it.
	prov [][]Provenance
}

// Provenance classifies how a matrix cell got its value — the per-cell
// story a durable, resumable campaign must tell (a zero cell could be a
// failed pair or one the scan never reached).
type Provenance uint8

const (
	// ProvMissing: never measured — failed, quarantined, or not attempted.
	ProvMissing Provenance = iota
	// ProvFresh: measured by this scan.
	ProvFresh
	// ProvResumed: replayed from a checkpoint by Scanner.Resume.
	ProvResumed
	// ProvRemoved: tombstoned — a relay of the pair left the consensus
	// before the pair could be measured (churn, not failure).
	ProvRemoved
)

func (p Provenance) String() string {
	switch p {
	case ProvMissing:
		return "missing"
	case ProvFresh:
		return "fresh"
	case ProvResumed:
		return "resumed"
	case ProvRemoved:
		return "removed"
	}
	return fmt.Sprintf("Provenance(%d)", int(p))
}

// NewMatrix allocates a zeroed matrix over names.
func NewMatrix(names []string) (*Matrix, error) {
	if len(names) < 2 {
		return nil, errors.New("ting: matrix needs at least two relays")
	}
	m := &Matrix{
		Names: append([]string(nil), names...),
		R:     make([][]float64, len(names)),
		index: make(map[string]int, len(names)),
	}
	for i, n := range m.Names {
		if n == "" {
			return nil, errors.New("ting: empty relay name")
		}
		if _, dup := m.index[n]; dup {
			return nil, fmt.Errorf("ting: duplicate relay %q", n)
		}
		m.index[n] = i
		m.R[i] = make([]float64, len(names))
	}
	return m, nil
}

// N returns the number of relays.
func (m *Matrix) N() int { return len(m.Names) }

// AddName grows the matrix by one relay: a new zeroed row and column whose
// cells are ProvMissing until measured. This is how a mid-scan consensus
// join enters an in-progress campaign's matrix.
func (m *Matrix) AddName(name string) error {
	if name == "" {
		return errors.New("ting: empty relay name")
	}
	if _, dup := m.index[name]; dup {
		return fmt.Errorf("ting: duplicate relay %q", name)
	}
	m.index[name] = len(m.Names)
	m.Names = append(m.Names, name)
	n := len(m.Names)
	for i := range m.R {
		m.R[i] = append(m.R[i], 0)
	}
	m.R = append(m.R, make([]float64, n))
	if m.prov != nil {
		for i := range m.prov {
			m.prov[i] = append(m.prov[i], ProvMissing)
		}
		m.prov = append(m.prov, make([]Provenance, n))
	}
	return nil
}

// Set records the RTT for a pair, both directions.
func (m *Matrix) Set(x, y string, ms float64) error {
	i, ok := m.index[x]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", y)
	}
	m.R[i][j] = ms
	m.R[j][i] = ms
	return nil
}

// RTT returns the RTT between two named relays.
func (m *Matrix) RTT(x, y string) (float64, error) {
	i, ok := m.index[x]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", y)
	}
	return m.R[i][j], nil
}

// At returns the RTT by index.
func (m *Matrix) At(i, j int) float64 { return m.R[i][j] }

// SetProv records a cell's provenance, both directions.
func (m *Matrix) SetProv(x, y string, p Provenance) error {
	i, ok := m.index[x]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", x)
	}
	j, ok := m.index[y]
	if !ok {
		return fmt.Errorf("ting: unknown relay %q", y)
	}
	if m.prov == nil {
		m.prov = make([][]Provenance, len(m.Names))
		for k := range m.prov {
			m.prov[k] = make([]Provenance, len(m.Names))
		}
	}
	m.prov[i][j] = p
	m.prov[j][i] = p
	return nil
}

// Prov returns a cell's provenance; unknown relays and unannotated
// matrices report ProvMissing.
func (m *Matrix) Prov(x, y string) Provenance {
	if m.prov == nil {
		return ProvMissing
	}
	i, ok := m.index[x]
	if !ok {
		return ProvMissing
	}
	j, ok := m.index[y]
	if !ok {
		return ProvMissing
	}
	return m.prov[i][j]
}

// ProvCounts tallies the upper triangle's provenance — the "how complete
// is this campaign" summary.
func (m *Matrix) ProvCounts() (fresh, resumed, removed, missing int) {
	n := len(m.Names)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.prov == nil {
				missing++
				continue
			}
			switch m.prov[i][j] {
			case ProvFresh:
				fresh++
			case ProvResumed:
				resumed++
			case ProvRemoved:
				removed++
			default:
				missing++
			}
		}
	}
	return fresh, resumed, removed, missing
}

// Mean returns µ, the average RTT over all unordered pairs — the term
// Algorithm 1 uses to approximate the unknown source→entry RTT.
func (m *Matrix) Mean() float64 {
	n := len(m.Names)
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += m.R[i][j]
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// PairValues returns the RTTs of all unordered pairs.
func (m *Matrix) PairValues() []float64 {
	n := len(m.Names)
	out := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, m.R[i][j])
		}
	}
	return out
}

// Encode writes the matrix as a text document (names header plus one row
// per line), the published-dataset format.
func (m *Matrix) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "tingmatrix n=%d\n", len(m.Names))
	fmt.Fprintln(bw, strings.Join(m.Names, " "))
	for _, row := range m.R {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		fmt.Fprintln(bw, strings.Join(parts, " "))
	}
	return bw.Flush()
}

// DecodeMatrix parses a matrix document. Malformed documents — bad
// header, truncated or oversized rows, non-finite cells, trailing data —
// are explicit errors, never panics or silent truncation: a matrix that
// decodes is structurally sound.
func DecodeMatrix(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: matrix header: %w", err)
		}
		return nil, errors.New("ting: empty matrix document")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "tingmatrix n=%d", &n); err != nil {
		return nil, fmt.Errorf("ting: bad matrix header %q", sc.Text())
	}
	if n < 2 {
		return nil, fmt.Errorf("ting: matrix dimension %d, need at least 2", n)
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("ting: matrix names: %w", err)
		}
		return nil, errors.New("ting: matrix missing names")
	}
	names := strings.Fields(sc.Text())
	if len(names) != n {
		return nil, fmt.Errorf("ting: header says %d names, got %d", n, len(names))
	}
	m, err := NewMatrix(names)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("ting: matrix row %d: %w", i, err)
			}
			return nil, fmt.Errorf("ting: matrix truncated at row %d", i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != n {
			return nil, fmt.Errorf("ting: row %d has %d values, want %d", i, len(fields), n)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("ting: row %d col %d: %w", i, j, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ting: row %d col %d: non-finite cell %q", i, j, f)
			}
			m.R[i][j] = v
		}
	}
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			return nil, fmt.Errorf("ting: trailing data after %d matrix rows", n)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ting: matrix document: %w", err)
	}
	return m, nil
}

// Cache memoizes pair measurements with a freshness horizon. §4.6 shows
// Ting's measurements are stable over at least a week, so "taking
// measurements with Ting infrequently and caching them is sufficient".
type Cache struct {
	ttl time.Duration
	now func() time.Time

	mu sync.Mutex
	m  map[[2]string]cacheEntry
	// pruneAt is the map size that triggers the next expiry sweep. Doubling
	// it after each sweep makes pruning amortized O(1) per Put instead of
	// the former O(n) walk on every insert.
	pruneAt int
}

// cachePruneFloor is the smallest prune threshold: sweeping tiny maps is
// pointless, and a floor keeps the doubling schedule from degenerating.
const cachePruneFloor = 16

type cacheEntry struct {
	rtt  float64
	when time.Time
}

// NewCache creates a cache whose entries expire after ttl. A ttl ≤ 0
// means entries never expire — the §4.6 "measure once, cache for the
// campaign" mode — not "expire immediately".
func NewCache(ttl time.Duration) *Cache {
	return &Cache{ttl: ttl, now: time.Now, m: make(map[[2]string]cacheEntry), pruneAt: cachePruneFloor}
}

func pairKey(x, y string) [2]string {
	if x > y {
		x, y = y, x
	}
	return [2]string{x, y}
}

// Get returns a fresh cached RTT for the pair, if any. With ttl ≤ 0 every
// stored entry is fresh forever.
func (c *Cache) Get(x, y string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[pairKey(x, y)]
	if !ok || c.expired(e) {
		return 0, false
	}
	return e.rtt, true
}

// Put records a measurement and, when a TTL is set, occasionally prunes
// entries that have already expired so a long-running scanner's cache does
// not grow with dead pairs. Pruning is lazy: expired entries may linger
// (Get never returns them) until the map grows past its prune threshold,
// at which point one sweep reclaims them — amortized O(1) per Put.
func (c *Cache) Put(x, y string, rtt float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[pairKey(x, y)] = cacheEntry{rtt: rtt, when: c.now()}
	if c.ttl > 0 && len(c.m) >= c.pruneAt {
		for k, e := range c.m {
			if c.expired(e) {
				delete(c.m, k)
			}
		}
		c.pruneAt = 2 * len(c.m)
		if c.pruneAt < cachePruneFloor {
			c.pruneAt = cachePruneFloor
		}
	}
}

// expired reports whether an entry is past the TTL. Callers hold c.mu.
func (c *Cache) expired(e cacheEntry) bool {
	return c.ttl > 0 && c.now().Sub(e.when) > c.ttl
}

// Len returns the number of cached pairs, fresh or stale: stale entries
// linger until growth triggers the next amortized prune, and Len reports
// what is actually held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
