package ting

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzDecodeMatrix(f *testing.F) {
	m, _ := NewMatrix([]string{"a", "b", "c"})
	m.Set("a", "b", 10)
	m.Set("a", "c", 20.5)
	m.Set("b", "c", 30)
	var buf bytes.Buffer
	m.Encode(&buf)
	f.Add(buf.String())
	f.Add("tingmatrix n=2\na b\n0 1\n1 0\n")
	f.Add("")
	f.Add("tingmatrix n=9999999\n")
	f.Fuzz(func(t *testing.T, doc string) {
		got, err := DecodeMatrix(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Anything decodable re-encodes and decodes to identical cells.
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeMatrix(&out)
		if err != nil {
			t.Fatalf("canonical matrix does not decode: %v", err)
		}
		if again.N() != got.N() {
			t.Fatal("size changed across round trip")
		}
		for i := range got.R {
			for j := range got.R[i] {
				a, b := got.R[i][j], again.R[i][j]
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatalf("cell (%d,%d) changed: %v → %v", i, j, a, b)
				}
			}
		}
	})
}
