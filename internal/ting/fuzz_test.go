package ting

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzDecodeMatrix(f *testing.F) {
	m, _ := NewMatrix([]string{"a", "b", "c"})
	m.Set("a", "b", 10)
	m.Set("a", "c", 20.5)
	m.Set("b", "c", 30)
	var buf bytes.Buffer
	m.Encode(&buf)
	f.Add(buf.String())
	f.Add("tingmatrix n=2\na b\n0 1\n1 0\n")
	f.Add("")
	f.Add("tingmatrix n=9999999\n")
	f.Add("tingmatrix n=2\na b\n0 NaN\nNaN 0\n")          // non-finite cells
	f.Add("tingmatrix n=2\na b\n0 +Inf\n-Inf 0\n")        // non-finite cells
	f.Add("tingmatrix n=2\na b\n0 1\n")                   // truncated rows
	f.Add("tingmatrix n=3\na b\n0 1\n1 0\n")              // dimension/name mismatch
	f.Add("tingmatrix n=2\na b\n0 1\n1 0\ntrailing junk") // data after the rows
	f.Fuzz(func(t *testing.T, doc string) {
		got, err := DecodeMatrix(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Anything decodable re-encodes and decodes to identical cells.
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeMatrix(&out)
		if err != nil {
			t.Fatalf("canonical matrix does not decode: %v", err)
		}
		if again.N() != got.N() {
			t.Fatal("size changed across round trip")
		}
		for i := 0; i < got.N(); i++ {
			for j := 0; j < got.N(); j++ {
				a, b := got.At(i, j), again.At(i, j)
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatalf("cell (%d,%d) changed: %v → %v", i, j, a, b)
				}
			}
		}
	})
}

// FuzzReplayCheckpoint: arbitrary bytes fed to the campaign-log replayer
// must never panic, and whatever it accepts must also survive ReplayState's
// stricter aggregation path without crashing.
func FuzzReplayCheckpoint(f *testing.F) {
	f.Add(`{"t":"campaign","names":["a","b"]}` + "\n" +
		`{"t":"pair","x":"a","y":"b","rtt":73}` + "\n" +
		`{"t":"half","path":["w","a"],"n":200,"min":41}` + "\n")
	f.Add(`{"t":"pair","x":"a","y":`) // torn tail
	f.Add("not json\n{\"t\":\"pair\"}\n")
	f.Add(`{"t":"campaign","names":["a"]}` + "\n")
	f.Add(`{"t":"pair","x":"a","y":"b","rtt":1e999}` + "\n")
	f.Add("\n\n")
	f.Fuzz(func(t *testing.T, doc string) {
		var recs []CheckpointRecord
		err := replayRecords(strings.NewReader(doc), func(rec CheckpointRecord) error {
			recs = append(recs, rec)
			return nil
		})
		if err != nil {
			return
		}
		// Replayable logs aggregate without panicking; errors are fine
		// (ReplayState enforces semantic validity on top of syntax).
		cp := &MemCheckpoint{}
		for _, rec := range recs {
			cp.Append(rec)
		}
		if st, err := ReplayState(cp); err == nil && st.Records != len(recs) {
			t.Fatalf("aggregated %d records from %d replayed", st.Records, len(recs))
		}
	})
}
