package ting

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ting/internal/faults"
	"ting/internal/geo"
	"ting/internal/inet"
	"ting/internal/tornet"
)

// pairRecorder tracks which pairs a phase actually measured (successful
// MeasurePair calls), so resume tests can pin re-measurement to exactly the
// unfinished pairs.
type pairRecorder struct {
	mu    sync.Mutex
	pairs map[[2]string]bool
}

func newPairRecorder() *pairRecorder {
	return &pairRecorder{pairs: make(map[[2]string]bool)}
}

func (r *pairRecorder) observer() *Observer {
	return &Observer{PairDone: func(x, y string, m *Measurement, err error) {
		if err != nil || m == nil {
			return
		}
		r.mu.Lock()
		r.pairs[pairKey(x, y)] = true
		r.mu.Unlock()
	}}
}

func (r *pairRecorder) has(x, y string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pairs[pairKey(x, y)]
}

func (r *pairRecorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pairs)
}

// TestScannerResumeAfterCancel is the durability acceptance test: a scan
// over a deterministic world is cancelled at 50%, then resumed from its
// checkpoint. The resumed scan must re-measure only the unfinished pairs,
// and the final matrix must be byte-identical to an uninterrupted run.
func TestScannerResumeAfterCancel(t *testing.T) {
	names := []string{"x", "y", "u", "v"} // 6 pairs
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	newScanner := func(rec *pairRecorder, cp Checkpoint, obs *Observer) *Scanner {
		return &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				return NewMeasurer(Config{Prober: bigFakeWorld(), W: "w", Z: "z",
					Samples: 2, Observer: rec.observer()})
			},
			Workers:    1, // deterministic order: all of x's pairs first
			Checkpoint: cp,
			Observer:   obs,
		}
	}

	// Phase 1: cancel once half the pairs are done.
	cp1, err := OpenFileCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec1 := newPairRecorder()
	var appends int
	sc1 := newScanner(rec1, cp1, &Observer{CheckpointAppend: func(*CheckpointRecord) { appends++ }})
	sc1.Progress = func(done, total int) {
		if done >= 3 {
			cancel()
		}
	}
	partial, failures, err := sc1.Scan(ctx, names)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 err = %v, want context.Canceled", err)
	}
	if len(failures) != 0 {
		t.Fatalf("phase 1 failures = %v", failures)
	}
	if partial == nil {
		t.Fatal("cancelled scan returned no partial matrix")
	}
	if pc := partial.ProvCounts(); pc.Fresh != 3 || pc.Resumed != 0 || pc.Missing != 3 {
		t.Fatalf("phase 1 provenance = %+v, want 3 fresh, 0 resumed, 3 missing", pc)
	}
	if rec1.len() != 3 {
		t.Fatalf("phase 1 measured %d pairs, want 3", rec1.len())
	}
	// 1 campaign header + 3 pairs + 4 half circuits (C_x, C_y, C_u, C_v).
	if appends != 8 {
		t.Errorf("phase 1 checkpoint appends = %d, want 8", appends)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume from the log in a fresh process's shoes.
	cp2, err := OpenFileCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	rec2 := newPairRecorder()
	var gotPairs, gotHalves int
	sc2 := newScanner(rec2, nil, &Observer{CheckpointReplay: func(pairs, halves int) {
		gotPairs, gotHalves = pairs, halves
	}})
	m, failures, err := sc2.Resume(context.Background(), cp2)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("phase 2 failures = %v", failures)
	}
	if gotPairs != 3 || gotHalves != 4 {
		t.Errorf("replayed %d pairs, %d halves, want 3 and 4", gotPairs, gotHalves)
	}
	if rec2.len() != 3 {
		t.Errorf("phase 2 measured %d pairs, want only the 3 unfinished", rec2.len())
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			x, y := names[i], names[j]
			in1, in2 := rec1.has(x, y), rec2.has(x, y)
			if in1 && in2 {
				t.Errorf("pair (%s,%s) measured in both phases", x, y)
			}
			if !in1 && !in2 {
				t.Errorf("pair (%s,%s) measured in neither phase", x, y)
			}
			wantProv := ProvFresh
			if in1 {
				wantProv = ProvResumed
			}
			if got := m.Prov(x, y); got != wantProv {
				t.Errorf("Prov(%s,%s) = %v, want %v", x, y, got, wantProv)
			}
		}
	}
	if pc := m.ProvCounts(); pc.Fresh != 3 || pc.Resumed != 3 || pc.Missing != 0 {
		t.Errorf("final provenance = %+v, want 3/3/0", pc)
	}

	// The resumed campaign's matrix is indistinguishable from one that was
	// never interrupted.
	un := newScanner(newPairRecorder(), nil, nil)
	want, _, err := un.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := m.Encode(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if err := want.Encode(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Errorf("resumed matrix differs from uninterrupted run:\n%s\nvs\n%s", gotBuf.String(), wantBuf.String())
	}
}

// TestScannerQuarantinesDeadRelay is the breaker acceptance test: a relay
// that is down for the whole scan opens its breaker within K failures, the
// scan completes without stalling, and the relay's remaining pairs are
// reported as ErrQuarantined instead of burning attempts.
func TestScannerQuarantinesDeadRelay(t *testing.T) {
	f := bigFakeWorld()
	f.errs["x"] = errors.New("x is toast")
	h := NewHealth(HealthConfig{FailureThreshold: 2, Cooldown: time.Hour})
	var quarNonFinal, quarFinal int
	var quarMu sync.Mutex
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Workers:      1, // x's three pairs are attempted back to back
		SkipFailures: true,
		Health:       h,
		Observer: &Observer{Quarantine: func(x, y, relay string, final bool) {
			quarMu.Lock()
			if final {
				quarFinal++
			} else {
				quarNonFinal++
			}
			quarMu.Unlock()
		}},
	}
	var lastDone, lastTotal int
	sc.Progress = func(done, total int) { lastDone, lastTotal = done, total }
	names := []string{"x", "y", "u", "v"}
	m, failures, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 6 || lastTotal != 6 {
		t.Errorf("progress stalled at %d/%d", lastDone, lastTotal)
	}
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want the 3 pairs touching x", failures)
	}
	var quarantined, plain int
	for _, pe := range failures {
		if pe.X != "x" && pe.Y != "x" {
			t.Errorf("healthy pair (%s,%s) failed: %v", pe.X, pe.Y, pe.Err)
		}
		if errors.Is(pe.Err, ErrQuarantined) {
			quarantined++
			if pe.Attempts != 0 {
				t.Errorf("quarantined pair consumed %d attempts, want 0", pe.Attempts)
			}
		} else {
			plain++
		}
	}
	// Two failures open the breaker (K=2); the third pair never measures.
	if plain != 2 || quarantined != 1 {
		t.Errorf("plain=%d quarantined=%d, want 2 and 1", plain, quarantined)
	}
	if got := h.State("x"); got != BreakerOpen {
		t.Errorf("x's breaker = %v, want open", got)
	}
	if quarNonFinal != 1 || quarFinal != 1 {
		t.Errorf("quarantine callbacks: %d deferrals, %d finals, want 1 and 1", quarNonFinal, quarFinal)
	}
	// Healthy relays never charged, their pairs all measured.
	for _, pair := range [][2]string{{"y", "u"}, {"y", "v"}, {"u", "v"}} {
		if v, _ := m.RTT(pair[0], pair[1]); v <= 0 {
			t.Errorf("healthy pair %v unmeasured", pair)
		}
	}
	for _, relay := range []string{"y", "u", "v"} {
		if got := h.State(relay); got != BreakerClosed {
			t.Errorf("%s's breaker = %v", relay, got)
		}
	}
}

// relayFlakyProber fails any circuit through relay for its first n calls,
// then recovers — a relay coming back from a flap.
type relayFlakyProber struct {
	*fakeProber
	mu    sync.Mutex
	relay string
	left  int
}

func (p *relayFlakyProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	touches := false
	for _, r := range path {
		if r == p.relay {
			touches = true
			break
		}
	}
	if touches {
		p.mu.Lock()
		if p.left > 0 {
			p.left--
			p.mu.Unlock()
			return nil, errors.New("relay flapping")
		}
		p.mu.Unlock()
	}
	return p.fakeProber.SampleCircuit(ctx, path, n)
}

// TestScannerQuarantineRecovery: the breaker half-opens once the cooldown
// passes, the deferred pair becomes the probe, and its success closes the
// breaker — the relay rejoins the campaign instead of being written off.
func TestScannerQuarantineRecovery(t *testing.T) {
	p := &relayFlakyProber{fakeProber: bigFakeWorld(), relay: "x", left: 2}
	h := NewHealth(HealthConfig{FailureThreshold: 2, Cooldown: time.Nanosecond})
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers:      1,
		SkipFailures: true,
		Health:       h,
	}
	names := []string{"x", "y", "u", "v"}
	m, failures, err := sc.Scan(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	// The first two x-pairs burned the flap; the third was deferred, came
	// back as the half-open probe, and succeeded.
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want the 2 pre-recovery pairs", failures)
	}
	for _, pe := range failures {
		if errors.Is(pe.Err, ErrQuarantined) {
			t.Errorf("pre-recovery failure reported as quarantined: %v", pe)
		}
	}
	if v, _ := m.RTT("x", "v"); v <= 0 {
		t.Error("recovered relay's deferred pair not measured")
	}
	if got := h.State("x"); got != BreakerClosed {
		t.Errorf("x's breaker = %v after successful probe, want closed", got)
	}
}

// TestScannerQuarantineCancelDuringDeferral: cancelling a scan while pairs
// sit in the deferred parking lot must not deadlock the queue-close logic.
func TestScannerQuarantineCancelDuringDeferral(t *testing.T) {
	f := bigFakeWorld()
	f.errs["x"] = errors.New("x is down")
	h := NewHealth(HealthConfig{FailureThreshold: 1, Cooldown: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
		},
		Workers:      1,
		SkipFailures: true,
		Health:       h,
		// Cancel while x's later pairs are parked behind the open breaker.
		Progress: func(done, total int) {
			if done >= 2 {
				cancel()
			}
		},
	}
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, _, err = sc.Scan(ctx, []string{"x", "y", "u", "v"})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scan deadlocked with deferred jobs at cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestChaosSoakFlapCancelResume is the full-stack chaos soak driven by CI:
// a live in-process overlay with a seeded flap plan on one relay, a scan
// cancelled mid-campaign, then a resume that must finish the job. The
// checkpoint lands in TING_SOAK_DIR when set, so a failing CI run uploads
// the log as an artifact.
func TestChaosSoakFlapCancelResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack soak is seconds-long; skipped in -short")
	}
	dir := os.Getenv("TING_SOAK_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "chaos-soak.ckpt")
	os.Remove(ckptPath) // a fresh campaign each run

	topo, err := inet.Generate(inet.Config{N: 4, Seed: 61, FlatRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -74}, 62)
	plan := faults.NewPlan(63)
	flappy := topo.Node(2).Name
	plan.SetRelay(flappy, faults.RelaySchedule{FlapPeriod: 400 * time.Millisecond, FlapDown: 80 * time.Millisecond})
	n, err := tornet.Build(tornet.Config{
		Topology:  topo,
		Host:      host,
		TimeScale: 0.06,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	names := make([]string, 4)
	for i := range names {
		names[i], _ = n.NodeName(inet.NodeID(i))
	}
	newScanner := func(cp Checkpoint, progress func(done, total int)) *Scanner {
		return &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				p := &StackProber{
					Client:   n.Client,
					Registry: n.Registry,
					Target:   tornet.EchoTarget,
					ToMs:     n.VirtualMs,
				}
				return NewMeasurer(Config{Prober: p, W: tornet.WName, Z: tornet.ZName, Samples: 2})
			},
			Workers:      2,
			Shuffle:      64,
			SkipFailures: true,
			Retry:        2,
			Backoff:      30 * time.Millisecond,
			Health:       NewHealth(HealthConfig{FailureThreshold: 3, Cooldown: 100 * time.Millisecond}),
			Checkpoint:   cp,
			Progress:     progress,
		}
	}

	// Phase 1: kill the campaign after two completed pairs.
	cp1, err := OpenFileCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc1 := newScanner(cp1, func(done, total int) {
		if done >= 2 {
			cancel()
		}
	})
	if _, _, err := sc1.Scan(ctx, names); !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 err = %v, want context.Canceled", err)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// What survived the kill is what Resume must not re-measure.
	cp2, err := OpenFileCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	st, err := ReplayState(cp2)
	if err != nil {
		t.Fatalf("checkpoint unreadable after cancel: %v", err)
	}
	if len(st.Pairs) == 0 {
		t.Fatal("no completed pairs reached the checkpoint before cancellation")
	}

	// Phase 2: resume against the still-flapping overlay, bounded so a
	// stall is a failure rather than a hung job.
	resumeCtx, cancelResume := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelResume()
	sc2 := newScanner(cp2, nil)
	m, failures, err := sc2.Resume(resumeCtx, cp2)
	if err != nil {
		t.Fatalf("resume err = %v (failures: %v)", err, failures)
	}
	pc := m.ProvCounts()
	if pc.Resumed != len(st.Pairs) {
		t.Errorf("resumed %d pairs, checkpoint held %d", pc.Resumed, len(st.Pairs))
	}
	if pc.Fresh+pc.Resumed+pc.Missing != 6 {
		t.Errorf("provenance %+v does not cover 6 pairs", pc)
	}
	if pc.Missing != len(failures) {
		t.Errorf("%d missing cells but %d reported failures", pc.Missing, len(failures))
	}
	// Every replayed pair kept its checkpointed value — resume measured
	// only the rest.
	for key, rtt := range st.Pairs {
		if v, _ := m.RTT(key[0], key[1]); v != rtt {
			t.Errorf("replayed pair %v changed: %v -> %v", key, rtt, v)
		}
		if got := m.Prov(key[0], key[1]); got != ProvResumed {
			t.Errorf("replayed pair %v provenance = %v", key, got)
		}
	}
}
