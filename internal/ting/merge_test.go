package ting

import (
	"errors"
	"testing"
)

func mustMatrix(t *testing.T, names ...string) *Matrix {
	t.Helper()
	m, err := NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func setFresh(t *testing.T, m *Matrix, x, y string, v float64) {
	t.Helper()
	if err := m.Set(x, y, v); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv(x, y, ProvFresh); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCopiesIntoEmpty(t *testing.T) {
	dst := mustMatrix(t, "a", "b", "c")
	src := mustMatrix(t, "a", "b", "c")
	setFresh(t, src, "a", "b", 10)
	setFresh(t, src, "b", "c", 20)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("a", "b"); v != 10 {
		t.Errorf("a-b = %g, want 10", v)
	}
	if p := dst.Prov("a", "b"); p != ProvFresh {
		t.Errorf("a-b prov = %v, want fresh", p)
	}
	if p := dst.Prov("a", "c"); p != ProvMissing {
		t.Errorf("a-c prov = %v, want missing (src never measured it)", p)
	}
	// Idempotent: merging the same submission again changes nothing.
	if err := dst.Merge(src); err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	if v, _ := dst.RTT("b", "c"); v != 20 {
		t.Errorf("b-c = %g after re-merge, want 20", v)
	}
}

func TestMergeSubsetNames(t *testing.T) {
	dst := mustMatrix(t, "a", "b", "c", "d")
	src := mustMatrix(t, "b", "d")
	setFresh(t, src, "b", "d", 7)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("b", "d"); v != 7 {
		t.Errorf("b-d = %g, want 7", v)
	}
	// A src relay the destination lacks is an error, not a silent grow.
	stranger := mustMatrix(t, "a", "zz")
	setFresh(t, stranger, "a", "zz", 1)
	if err := dst.Merge(stranger); err == nil {
		t.Fatal("merging unknown relay succeeded, want error")
	}
}

func TestMergeConflictIsTyped(t *testing.T) {
	dst := mustMatrix(t, "a", "b")
	src := mustMatrix(t, "a", "b")
	setFresh(t, dst, "a", "b", 10)
	setFresh(t, src, "a", "b", 11)
	err := dst.Merge(src)
	var mc *MergeConflictError
	if !errors.As(err, &mc) {
		t.Fatalf("err = %v, want *MergeConflictError", err)
	}
	if mc.X != "a" || mc.Y != "b" || mc.Have != 10 || mc.Incoming != 11 {
		t.Errorf("conflict = %+v, want a-b 10 vs 11", mc)
	}
	// Agreeing measurements are not a conflict, whatever the provenance mix.
	agree := mustMatrix(t, "a", "b")
	if err := agree.Set("a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := agree.SetProv("a", "b", ProvResumed); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(agree); err != nil {
		t.Fatalf("agreeing merge: %v", err)
	}
}

func TestMergeMeasuredBeatsPredicted(t *testing.T) {
	// Incoming measurement overwrites a destination prediction.
	dst := mustMatrix(t, "a", "b")
	if err := dst.SetPredicted("a", "b", 99, 0.5); err != nil {
		t.Fatal(err)
	}
	src := mustMatrix(t, "a", "b")
	setFresh(t, src, "a", "b", 12)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("a", "b"); v != 12 {
		t.Errorf("a-b = %g, want the measurement 12", v)
	}
	if p := dst.Prov("a", "b"); p != ProvFresh {
		t.Errorf("a-b prov = %v, want fresh", p)
	}

	// And an incoming prediction never overwrites a destination measurement.
	pred := mustMatrix(t, "a", "b")
	if err := pred.SetPredicted("a", "b", 99, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(pred); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("a", "b"); v != 12 {
		t.Errorf("a-b = %g after predicted merge, want 12 kept", v)
	}
}

func TestMergePredictedLastWriterWins(t *testing.T) {
	dst := mustMatrix(t, "a", "b")
	if err := dst.SetPredicted("a", "b", 50, 0.25); err != nil {
		t.Fatal(err)
	}
	src := mustMatrix(t, "a", "b")
	if err := src.SetPredicted("a", "b", 60, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("a", "b"); v != 60 {
		t.Errorf("a-b = %g, want the newer prediction 60", v)
	}
	if p := dst.Prov("a", "b"); p != ProvPredicted {
		t.Errorf("a-b prov = %v, want predicted", p)
	}
}

func TestMergeMeasurementBeatsTombstone(t *testing.T) {
	dst := mustMatrix(t, "a", "b")
	if err := dst.SetProv("a", "b", ProvRemoved); err != nil {
		t.Fatal(err)
	}
	src := mustMatrix(t, "a", "b")
	setFresh(t, src, "a", "b", 8)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("a", "b"); v != 8 {
		t.Errorf("a-b = %g, want 8 (measurement beats tombstone)", v)
	}
	// The reverse: a tombstone does not erase a measurement.
	tomb := mustMatrix(t, "a", "b")
	if err := tomb.SetProv("a", "b", ProvRemoved); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(tomb); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.RTT("a", "b"); v != 8 {
		t.Errorf("a-b = %g after tombstone merge, want 8 kept", v)
	}
}
