package ting

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ting/internal/directory"
	"ting/internal/faults"
	"ting/internal/geo"
	"ting/internal/inet"
	"ting/internal/onion"
	"ting/internal/telemetry"
	"ting/internal/tornet"
)

// churnDesc builds a publishable descriptor with a seed-determined onion
// key, so two calls with different seeds model a key rotation of the same
// nickname.
func churnDesc(t testing.TB, name string, seed int64) *directory.Descriptor {
	t.Helper()
	id, err := onion.NewIdentity(mrand.New(mrand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return &directory.Descriptor{
		Nickname:      name,
		Addr:          "addr-" + name,
		OnionKey:      id.Public(),
		BandwidthKBps: 100,
	}
}

func TestDeadlineEstimator(t *testing.T) {
	var sets atomic.Int64
	obs := &Observer{DeadlineSet: func(x, y string, d time.Duration) { sets.Add(1) }}
	est := NewDeadlineEstimator(50*time.Millisecond, time.Second, obs)

	if _, ok := est.Deadline("a", "b"); ok {
		t.Fatal("estimator ready before any observation")
	}
	est.Observe("a", "b", 100*time.Millisecond)
	est.Observe("a", "b", 100*time.Millisecond)
	if _, ok := est.Deadline("a", "b"); ok {
		t.Fatal("estimator ready before warmup")
	}
	est.Observe("a", "b", 100*time.Millisecond)
	d, ok := est.Deadline("a", "b")
	if !ok {
		t.Fatal("estimator not ready after warmup")
	}
	// Identical observations: mean 100ms, deviation 0 — the bound is the
	// mean itself, above the 50ms floor and below the 1s ceiling.
	if d != 100*time.Millisecond {
		t.Errorf("deadline = %v, want 100ms", d)
	}
	if sets.Load() == 0 {
		t.Error("DeadlineSet observer never fired")
	}

	// The pair is bounded by its SLOWER relay, so an asymmetric pair is
	// not strangled by its fast end.
	for i := 0; i < 3; i++ {
		est.Observe("c", "d", 400*time.Millisecond)
	}
	if d, _ := est.Deadline("a", "c"); d != 400*time.Millisecond {
		t.Errorf("mixed-pair deadline = %v, want the slower relay's 400ms", d)
	}

	// Floor clamp: a streak of near-zero observations cannot emit less
	// than Min.
	for i := 0; i < 3; i++ {
		est.Observe("e", "f", time.Millisecond)
	}
	if d, _ := est.Deadline("e", "f"); d != 50*time.Millisecond {
		t.Errorf("deadline = %v, want the 50ms floor", d)
	}

	// Ceiling clamp.
	for i := 0; i < 3; i++ {
		est.Observe("g", "h", 10*time.Second)
	}
	if d, _ := est.Deadline("g", "h"); d != time.Second {
		t.Errorf("deadline = %v, want the 1s ceiling", d)
	}

	// Forget drops the relay's history; the pair falls back to the global
	// statistic instead of the forgotten one.
	est.Forget("g")
	est.Forget("h")
	if _, ok := est.Deadline("g", "h"); !ok {
		t.Error("after Forget, the global statistic should still answer")
	}
	est.mu.Lock()
	_, gKept := est.relays["g"]
	est.mu.Unlock()
	if gKept {
		t.Error("Forget left the relay's statistics behind")
	}
}

func TestHalfCacheInvalidateRelay(t *testing.T) {
	hc := NewHalfCache(0)
	hc.Seed([]string{"w", "x"}, 2, 40)
	hc.Seed([]string{"w", "y"}, 2, 50)
	hc.Seed([]string{"w", "x", "q"}, 2, 70)
	hc.Seed([]string{"w", "xx"}, 2, 10) // name-prefix trap: must survive
	if n := hc.InvalidateRelay("x"); n != 2 {
		t.Errorf("InvalidateRelay dropped %d series, want 2", n)
	}
	if hc.Len() != 2 {
		t.Errorf("cache holds %d series after invalidation, want 2", hc.Len())
	}
	if n := hc.InvalidateRelay("x"); n != 0 {
		t.Errorf("second invalidation dropped %d series, want 0", n)
	}
}

func TestHealthReset(t *testing.T) {
	var transitions []string
	obs := &Observer{BreakerChange: func(relay string, from, to BreakerState) {
		transitions = append(transitions, fmt.Sprintf("%s:%v->%v", relay, from, to))
	}}
	h := NewHealth(HealthConfig{FailureThreshold: 2, Cooldown: time.Hour, Observer: obs})
	boom := errors.New("boom")
	h.Failure("x", boom, 0)
	h.Failure("x", boom, 0)
	if h.State("x") != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", h.State("x"))
	}
	if qe := h.Allow("x", "y"); qe == nil {
		t.Fatal("open breaker granted a probe before cooldown")
	}
	h.Reset("x")
	if h.State("x") != BreakerClosed {
		t.Errorf("state = %v after Reset, want closed", h.State("x"))
	}
	if qe := h.Allow("x", "y"); qe != nil {
		t.Errorf("Allow after Reset = %v, want nil", qe)
	}
	want := 2 // closed->open on the threshold failure, open->closed on Reset
	if len(transitions) != want {
		t.Errorf("breaker transitions = %v, want %d entries", transitions, want)
	}
}

func TestMatrixAddNameGrowsProvenance(t *testing.T) {
	m, err := NewMatrix([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddName("c"); err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d after AddName, want 3", m.N())
	}
	if err := m.Set("a", "c", 12.5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv("a", "c", ProvFresh); err != nil {
		t.Fatal(err)
	}
	if err := m.SetProv("b", "c", ProvRemoved); err != nil {
		t.Fatal(err)
	}
	pc := m.ProvCounts()
	if pc.Fresh != 1 || pc.Resumed != 0 || pc.Removed != 1 || pc.Missing != 1 {
		t.Errorf("ProvCounts = %+v, want 1/0/1/1", pc)
	}
	if err := m.AddName("a"); err == nil {
		t.Error("AddName accepted a duplicate name")
	}
}

func TestReplayStateFoldsChurnRecords(t *testing.T) {
	cp := &MemCheckpoint{}
	must := func(rec CheckpointRecord) {
		t.Helper()
		if err := cp.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "b", "c"},
		Epoch: 3, Fps: map[string]string{"a": "f1", "b": "f2", "c": "f3"}})
	must(CheckpointRecord{Kind: RecordPair, X: "a", Y: "b", RTT: 1.5})
	must(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpLeave, Relay: "c", Epoch: 4})
	must(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpJoin, Relay: "d", Fp: "f4", Epoch: 5})
	must(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpRotate, Relay: "a", Fp: "f9", Epoch: 6})
	must(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpLeave, Relay: "d", Epoch: 7})
	must(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpJoin, Relay: "d", Fp: "f5", Epoch: 8})

	st, err := ReplayState(cp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 8 {
		t.Errorf("Epoch = %d, want the newest record's 8", st.Epoch)
	}
	if len(st.Removed) != 1 || !st.Removed["c"] {
		t.Errorf("Removed = %v, want exactly {c} (d rejoined)", st.Removed)
	}
	if len(st.Joined) != 1 || st.Joined[0] != "d" {
		t.Errorf("Joined = %v, want [d] deduplicated", st.Joined)
	}
	if st.Fps["a"] != "f9" || st.Fps["d"] != "f5" || st.Fps["b"] != "f2" {
		t.Errorf("Fps = %v, want rotation and rejoin to win", st.Fps)
	}

	bad := &MemCheckpoint{}
	_ = bad.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "b"}})
	_ = bad.Append(CheckpointRecord{Kind: RecordChurn, Op: "frobnicate", Relay: "a"})
	if _, err := ReplayState(bad); err == nil {
		t.Error("unknown churn op replayed without error")
	}
	bad2 := &MemCheckpoint{}
	_ = bad2.Append(CheckpointRecord{Kind: RecordCampaign, Names: []string{"a", "b"}})
	_ = bad2.Append(CheckpointRecord{Kind: RecordChurn, Op: ChurnOpLeave})
	if _, err := ReplayState(bad2); err == nil {
		t.Error("churn record without a relay replayed without error")
	}
}

// hookProber runs a hook before every circuit sample — the test's lever
// for triggering consensus churn at an exact point of the scan, from the
// worker goroutine (where no scanner lock is held).
type hookProber struct {
	f    *fakeProber
	hook func(path []string)
}

func (p *hookProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	if p.hook != nil {
		p.hook(path)
	}
	return p.f.SampleCircuit(ctx, path, n)
}

// drainChurn consumes buffered churn events until one of the wanted kind
// arrives (or a timeout turns into a test error — never a hang).
func drainChurn(t testing.TB, ch <-chan ChurnEvent, kind ChurnKind) {
	deadline := time.NewTimer(10 * time.Second)
	defer deadline.Stop()
	for {
		select {
		case ev := <-ch:
			if ev.Kind == kind {
				return
			}
		case <-deadline.C:
			t.Errorf("timed out waiting for churn event %v", kind)
			return
		}
	}
}

func pathHas(path []string, name string) bool {
	for _, r := range path {
		if r == name {
			return true
		}
	}
	return false
}

// TestScanChurnRemoveJoinMidScan is the seeded churn acceptance test: one
// relay (v) leaves the consensus mid-scan and another (q) joins. The scan
// must complete without burning retries on v's pairs, tombstone exactly the
// pairs touching v, measure q against every survivor — and a Resume from
// the pre-churn checkpoint prefix must reconcile against the post-churn
// consensus to a bytewise-identical matrix.
func TestScanChurnRemoveJoinMidScan(t *testing.T) {
	f := bigFakeWorld()
	f.fwd["q"] = 0.5
	for _, peer := range []string{"h", "w", "z", "x", "y", "u", "v"} {
		f.rtt[[2]string{peer, "q"}] = 30
	}

	reg := directory.NewRegistry()
	for i, name := range []string{"x", "y", "u", "v"} {
		if err := reg.Publish(churnDesc(t, name, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	qDesc := churnDesc(t, "q", 99)

	churnCh := make(chan ChurnEvent, 64)
	var retries atomic.Int64
	obs := &Observer{
		Churn: func(ev ChurnEvent) { churnCh <- ev },
		Retry: func(x, y string, attempt int, delay time.Duration, err error) { retries.Add(1) },
	}

	// The hook fires once, on the first circuit that touches v (the pair
	// (x,v) with one worker and reuse-aware order): v starts failing, is
	// removed from the consensus, and q is published. Both deltas are
	// awaited so the scanner has reconciled before the sample proceeds.
	// Workers: 1, so the hook and every errs read share one goroutine.
	var once sync.Once
	hook := func(path []string) {
		if !pathHas(path, "v") {
			return
		}
		once.Do(func() {
			f.errs["v"] = errors.New("circuit destroyed: relay departing")
			if !reg.Remove("v") {
				t.Error("Remove(v) found no relay")
			}
			drainChurn(t, churnCh, ChurnRemoved)
			if err := reg.Publish(qDesc); err != nil {
				t.Error(err)
			}
			drainChurn(t, churnCh, ChurnJoined)
		})
	}

	cp1 := &MemCheckpoint{}
	var lastDone, lastTotal int
	var progMu sync.Mutex
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: &hookProber{f: f, hook: hook}, W: "w", Z: "z", Samples: 1})
		},
		Workers:    1,
		Retry:      2, // must stay unspent: tombstones bypass the retry budget
		Directory:  reg,
		Checkpoint: cp1,
		Observer:   obs,
		Progress: func(done, total int) {
			progMu.Lock()
			lastDone, lastTotal = done, total
			progMu.Unlock()
		},
	}

	m1, failures, err := sc.Scan(context.Background(), []string{"x", "y", "u", "v"})
	// No SkipFailures: churn tombstones must not abort even a non-tolerant
	// scan.
	if err != nil {
		t.Fatalf("scan err = %v, want nil (tombstones never abort)", err)
	}
	if got := retries.Load(); got != 0 {
		t.Errorf("retries = %d, want 0 — tombstoned pairs must not burn the retry budget", got)
	}
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want the 3 pairs touching v", failures)
	}
	for _, pe := range failures {
		var ce *ChurnError
		if !errors.As(pe.Err, &ce) || !errors.Is(pe.Err, ErrChurned) {
			t.Errorf("pair (%s,%s) failed with %v, want *ChurnError", pe.X, pe.Y, pe.Err)
			continue
		}
		if ce.Relay != "v" || ce.Epoch != 5 {
			t.Errorf("pair (%s,%s): churn error %+v, want relay v at epoch 5", pe.X, pe.Y, ce)
		}
		if pe.X != "v" && pe.Y != "v" {
			t.Errorf("pair (%s,%s) tombstoned but does not touch v", pe.X, pe.Y)
		}
	}

	wantNames := []string{"x", "y", "u", "v", "q"}
	if len(m1.Names()) != len(wantNames) {
		t.Fatalf("matrix names = %v, want %v", m1.Names(), wantNames)
	}
	for i, n := range wantNames {
		if m1.Names()[i] != n {
			t.Fatalf("matrix names = %v, want %v", m1.Names(), wantNames)
		}
	}
	pc1 := m1.ProvCounts()
	if pc1.Fresh != 6 || pc1.Resumed != 0 || pc1.Removed != 3 || pc1.Missing != 1 {
		t.Errorf("provenance = %+v, want 6 fresh, 3 removed, 1 missing (v,q)", pc1)
	}
	if p := m1.Prov("v", "q"); p != ProvMissing {
		t.Errorf("Prov(v,q) = %v, want missing — the ghost pair must never be scheduled", p)
	}
	for _, peer := range []string{"x", "y", "u"} {
		rtt, err := m1.RTT("q", peer)
		if err != nil || rtt <= 0 {
			t.Errorf("RTT(q,%s) = (%v, %v), want a fresh measurement for the joined relay", peer, rtt, err)
		}
	}
	progMu.Lock()
	if lastDone != 9 || lastTotal != 9 {
		t.Errorf("final progress %d/%d, want 9/9 (6 initial + 3 joined pairs)", lastDone, lastTotal)
	}
	progMu.Unlock()
	tombstoneEvents := 0
	for {
		select {
		case ev := <-churnCh:
			if ev.Kind == ChurnTombstoned {
				tombstoneEvents += ev.Tombstoned
			}
		default:
			if tombstoneEvents != 3 {
				t.Errorf("ChurnTombstoned events covered %d pairs, want 3", tombstoneEvents)
			}
			goto resume
		}
	}

resume:
	// The campaign header must pin the pre-churn consensus.
	var header CheckpointRecord
	gotHeader := false
	_ = cp1.Replay(func(rec CheckpointRecord) error {
		if !gotHeader && rec.Kind == RecordCampaign {
			header, gotHeader = rec, true
		}
		return nil
	})
	if !gotHeader || header.Epoch != 4 || len(header.Fps) != 4 {
		t.Fatalf("campaign header = %+v, want epoch 4 with 4 fingerprints", header)
	}

	// Resume from the pre-churn prefix of the log — the campaign as a
	// crash would have left it just before the churn hit — against the
	// post-churn consensus. Reconciliation must converge to the same
	// matrix, bytewise.
	pre := &MemCheckpoint{}
	cut := false
	_ = cp1.Replay(func(rec CheckpointRecord) error {
		if cut || rec.Kind == RecordChurn {
			cut = true
			return nil
		}
		return pre.Append(rec)
	})
	if !cut {
		t.Fatal("no churn record reached the checkpoint log")
	}

	f2 := bigFakeWorld()
	f2.fwd["q"] = 0.5
	for _, peer := range []string{"h", "w", "z", "x", "y", "u", "v"} {
		f2.rtt[[2]string{peer, "q"}] = 30
	}
	sc2 := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: f2, W: "w", Z: "z", Samples: 1})
		},
		Workers:   1,
		Directory: reg,
	}
	m2, failures2, err := sc2.Resume(context.Background(), pre)
	if err != nil {
		t.Fatalf("resume err = %v (failures: %v)", err, failures2)
	}
	// The resume settles (v,q) too — a build-time tombstone instead of the
	// live scan's never-scheduled ghost pair — so it reports 4 churned
	// pairs, but the matrix VALUES are identical.
	pc2 := m2.ProvCounts()
	if pc2.Fresh != 4 || pc2.Resumed != 2 || pc2.Removed != 4 || pc2.Missing != 0 {
		t.Errorf("resume provenance = %+v, want 4/2/4/0", pc2)
	}
	for _, pe := range failures2 {
		if !errors.Is(pe.Err, ErrChurned) {
			t.Errorf("resume pair (%s,%s) failed with %v, want churn tombstones only", pe.X, pe.Y, pe.Err)
		}
	}
	var b1, b2 bytes.Buffer
	if err := m1.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("resumed matrix differs from the live scan's:\nlive:\n%s\nresumed:\n%s", b1.String(), b2.String())
	}
}

// TestScanChurnRotationInvalidatesHalves: a mid-scan key rotation (same
// nickname, new onion key) must drop the relay's memoized half circuits —
// they describe the old incarnation — while completed pair RTTs are kept.
func TestScanChurnRotationInvalidatesHalves(t *testing.T) {
	f := bigFakeWorld()
	reg := directory.NewRegistry()
	for i, name := range []string{"x", "y", "u", "v"} {
		if err := reg.Publish(churnDesc(t, name, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	churnCh := make(chan ChurnEvent, 16)
	hc := NewHalfCache(0)
	// Rotate x's key while the final pair (u,v) samples its full circuit;
	// x's pairs are all complete by then, so nothing repopulates its halves.
	var once sync.Once
	hook := func(path []string) {
		if !pathHas(path, "u") || !pathHas(path, "v") {
			return
		}
		once.Do(func() {
			if err := reg.Update(churnDesc(t, "x", 1000)); err != nil {
				t.Error(err)
			}
			drainChurn(t, churnCh, ChurnRotated)
		})
	}
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: &hookProber{f: f, hook: hook}, W: "w", Z: "z", Samples: 1})
		},
		Workers:      1,
		HalfCircuits: hc,
		Directory:    reg,
		Observer:     &Observer{Churn: func(ev ChurnEvent) { churnCh <- ev }},
	}
	m, failures, err := sc.Scan(context.Background(), []string{"x", "y", "u", "v"})
	if err != nil || len(failures) != 0 {
		t.Fatalf("scan = (%v, %v), want clean", failures, err)
	}
	// Four half-circuit series were memoized; the rotation dropped x's.
	if hc.Len() != 3 {
		t.Errorf("half cache holds %d series after rotation, want 3 (x invalidated)", hc.Len())
	}
	if n := hc.InvalidateRelay("x"); n != 0 {
		t.Errorf("x still had %d cached series after the rotation", n)
	}
	// Rotation keeps measured data: every pair has a value.
	if rtt, err := m.RTT("x", "y"); err != nil || rtt <= 0 {
		t.Errorf("RTT(x,y) = (%v, %v): rotation must not discard completed pairs", rtt, err)
	}
}

// wedgeProber wedges the full circuit of one pair until its context
// deadline; everything else answers from the link map instantly. delay > 0
// turns the wedge into a legitimate slow pair instead.
type wedgeProber struct {
	f          *fakeProber
	x, y       string
	delay      time.Duration
	slowCalls  atomic.Int64
	totalCalls atomic.Int64
}

func (p *wedgeProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	p.totalCalls.Add(1)
	if pathHas(path, p.x) && pathHas(path, p.y) {
		p.slowCalls.Add(1)
		if p.delay <= 0 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(p.delay):
		}
	}
	return p.f.SampleCircuit(ctx, path, n)
}

// TestScannerAdaptiveDeadlineCutsTail: with adaptive deadlines on, a
// wedged pair costs roughly MinPairTimeout instead of the full PairTimeout.
func TestScannerAdaptiveDeadlineCutsTail(t *testing.T) {
	f := bigFakeWorld()
	p := &wedgeProber{f: f, x: "u", y: "v"} // (u,v) runs last in reuse-aware order
	var deadlines atomic.Int64
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers:          1,
		SkipFailures:     true,
		PairTimeout:      10 * time.Second,
		AdaptiveDeadline: true,
		MinPairTimeout:   30 * time.Millisecond,
		Observer:         &Observer{DeadlineSet: func(x, y string, d time.Duration) { deadlines.Add(1) }},
	}
	start := time.Now()
	_, failures, err := sc.Scan(context.Background(), []string{"x", "y", "u", "v"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].X != "u" || failures[0].Y != "v" {
		t.Fatalf("failures = %v, want exactly the wedged (u,v)", failures)
	}
	if !errors.Is(failures[0].Err, context.DeadlineExceeded) {
		t.Errorf("wedged pair failed with %v, want deadline exceeded", failures[0].Err)
	}
	// Five fast pairs warm the estimator, then the wedge costs ~30ms, not
	// the 10s fixed timeout. Seconds of headroom for slow CI.
	if elapsed > 5*time.Second {
		t.Errorf("scan took %v; adaptive deadline did not cut the wedged pair's tail", elapsed)
	}
	if deadlines.Load() == 0 {
		t.Error("no adaptive deadline was ever handed out")
	}
}

// TestScannerAdaptiveDeadlineRetryGetsFullTimeout: when the estimator
// strangles a legitimately slow pair, the retry runs with the full
// PairTimeout, so the pair is measured, not lost.
func TestScannerAdaptiveDeadlineRetryGetsFullTimeout(t *testing.T) {
	f := bigFakeWorld()
	p := &wedgeProber{f: f, x: "u", y: "v", delay: 120 * time.Millisecond}
	var retries atomic.Int64
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
		},
		Workers:          1,
		SkipFailures:     true,
		Retry:            1,
		Backoff:          time.Millisecond,
		PairTimeout:      10 * time.Second,
		AdaptiveDeadline: true,
		MinPairTimeout:   20 * time.Millisecond,
		Observer:         &Observer{Retry: func(x, y string, attempt int, delay time.Duration, err error) { retries.Add(1) }},
	}
	m, failures, err := sc.Scan(context.Background(), []string{"x", "y", "u", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %v, want none — the full-timeout retry must rescue the slow pair", failures)
	}
	if got := retries.Load(); got != 1 {
		t.Errorf("retries = %d, want exactly 1 (the strangled first attempt)", got)
	}
	if rtt, err := m.RTT("u", "v"); err != nil || rtt <= 0 {
		t.Errorf("RTT(u,v) = (%v, %v), want the slow pair measured on retry", rtt, err)
	}
}

// TestScannerDrainMidScanFullStack drains a live overlay relay mid-scan:
// the in-flight and pending pairs touching it must settle as *ChurnError
// tombstones (no retry exhaustion, no abort) while every other pair is
// measured. Run under -race in CI.
func TestScannerDrainMidScanFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack churn test is seconds-long; skipped in -short")
	}
	topo, err := inet.Generate(inet.Config{N: 4, Seed: 91, FlatRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -74}, 92)
	n, err := tornet.Build(tornet.Config{Topology: topo, Host: host, TimeScale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	names := make([]string, 4)
	for i := range names {
		names[i], _ = n.NodeName(inet.NodeID(i))
	}
	victim := names[3]

	churnCh := make(chan ChurnEvent, 64)
	var once sync.Once
	sc := &Scanner{
		NewMeasurer: func(worker int) (*Measurer, error) {
			p := &StackProber{
				Client:   n.Client,
				Registry: n.Registry,
				Target:   tornet.EchoTarget,
				ToMs:     n.VirtualMs,
			}
			return NewMeasurer(Config{Prober: p, W: tornet.WName, Z: tornet.ZName, Samples: 2})
		},
		Workers:      2,
		SkipFailures: true,
		Retry:        2,
		Backoff:      50 * time.Millisecond,
		Directory:    n.Registry,
		Observer: &Observer{Churn: func(ev ChurnEvent) {
			select {
			case churnCh <- ev:
			default:
			}
		}},
		Progress: func(done, total int) {
			if done >= 1 {
				once.Do(func() { n.DrainRelay(victim) })
			}
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	m, failures, err := sc.Scan(ctx, names)
	if err != nil {
		t.Fatalf("scan err = %v, want graceful completion despite the drain", err)
	}
	for _, pe := range failures {
		if pe.X != victim && pe.Y != victim {
			t.Errorf("pair (%s,%s) failed but does not touch the drained relay: %v", pe.X, pe.Y, pe.Err)
			continue
		}
		if !errors.Is(pe.Err, ErrChurned) {
			t.Errorf("pair (%s,%s) failed with %v, want a churn tombstone", pe.X, pe.Y, pe.Err)
		}
	}
	// Every pair among the survivors must be measured.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if rtt, err := m.RTT(names[i], names[j]); err != nil || rtt <= 0 {
				t.Errorf("RTT(%s,%s) = (%v, %v), want measured", names[i], names[j], rtt, err)
			}
		}
	}
	drainChurn(t, churnCh, ChurnRemoved)
}

// TestChurnSoakJoinLeaveCancelResume is the churn soak driven by CI: a
// live overlay with a scheduled mid-campaign join and graceful drain, a
// scan cancelled early, and a resume across the consensus epoch bump that
// must reconcile and finish. Artifacts (checkpoint + consensus log) land in
// TING_SOAK_DIR when set so a failing CI run uploads them.
func TestChurnSoakJoinLeaveCancelResume(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak is seconds-long; skipped in -short")
	}
	dir := os.Getenv("TING_SOAK_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(dir, "churn-soak.ckpt")
	os.Remove(ckptPath) // a fresh campaign each run
	consensusPath := filepath.Join(dir, "churn-soak.consensus.log")

	topo, err := inet.Generate(inet.Config{N: 6, Seed: 81, FlatRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 40, Lon: -74}, 82)
	plan := faults.NewPlan(83)
	joiner := topo.Node(4).Name
	leaver := topo.Node(5).Name
	plan.SetRelay(joiner, faults.RelaySchedule{JoinAfter: 300 * time.Millisecond})
	plan.SetRelay(leaver, faults.RelaySchedule{DrainAfter: 500 * time.Millisecond})
	n, err := tornet.Build(tornet.Config{
		Topology:  topo,
		Host:      host,
		TimeScale: 0.06,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var names []string
	for _, d := range n.Registry.Consensus() {
		names = append(names, d.Nickname)
	}
	if len(names) != 5 {
		t.Fatalf("initial consensus has %d relays, want 5 (joiner held out)", len(names))
	}

	// One telemetry registry across both phases: the ting.churn.* counters
	// and the adaptive-deadline histogram accumulate the whole campaign.
	treg := telemetry.New()
	var evMu sync.Mutex
	var churnLog []string
	newScanner := func(cp Checkpoint, progress func(done, total int)) *Scanner {
		obs := NewTelemetryObserver(treg)
		inner := obs.Churn
		obs.Churn = func(ev ChurnEvent) {
			inner(ev)
			evMu.Lock()
			churnLog = append(churnLog, fmt.Sprintf("epoch=%d kind=%v relay=%s pair=(%s,%s) tombstoned=%d",
				ev.Epoch, ev.Kind, ev.Relay, ev.X, ev.Y, ev.Tombstoned))
			evMu.Unlock()
		}
		return &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				p := &StackProber{
					Client:   n.Client,
					Registry: n.Registry,
					Target:   tornet.EchoTarget,
					ToMs:     n.VirtualMs,
				}
				return NewMeasurer(Config{Prober: p, W: tornet.WName, Z: tornet.ZName, Samples: 2})
			},
			Workers:          2,
			Shuffle:          84,
			SkipFailures:     true,
			Retry:            2,
			Backoff:          30 * time.Millisecond,
			Health:           NewHealth(HealthConfig{FailureThreshold: 3, Cooldown: 100 * time.Millisecond}),
			Checkpoint:       cp,
			Directory:        n.Registry,
			AdaptiveDeadline: true,
			MinPairTimeout:   500 * time.Millisecond,
			PairTimeout:      10 * time.Second,
			Observer:         obs,
			Progress:         progress,
		}
	}
	writeConsensusLog := func() {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "# churn soak consensus trail, final epoch %d\n", n.Registry.Epoch())
		if err := n.Registry.EncodeConsensus(&buf); err != nil {
			fmt.Fprintf(&buf, "# encode error: %v\n", err)
		}
		evMu.Lock()
		for _, line := range churnLog {
			fmt.Fprintln(&buf, line)
		}
		evMu.Unlock()
		if err := os.WriteFile(consensusPath, buf.Bytes(), 0o644); err != nil {
			t.Logf("consensus log not written: %v", err)
		}
	}
	defer writeConsensusLog()

	// Phase 1: kill the campaign after the first completed pair.
	cp1, err := OpenFileCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelScan := context.WithCancel(context.Background())
	defer cancelScan()
	sc1 := newScanner(cp1, func(done, total int) {
		if done >= 1 {
			cancelScan()
		}
	})
	if _, _, err := sc1.Scan(ctx, names); !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 err = %v, want context.Canceled", err)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Let the scheduled churn land before resuming: the joiner must be in
	// the consensus and the leaver gone, so the resume reconciles across
	// both epoch bumps.
	waitUntil := time.Now().Add(15 * time.Second)
	for {
		_, joined := n.Registry.Lookup(joiner)
		_, leaverIn := n.Registry.Lookup(leaver)
		if joined && !leaverIn {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("churn plan did not fire (joined=%v leaverGone=%v)", joined, !leaverIn)
		}
		time.Sleep(25 * time.Millisecond)
	}

	cp2, err := OpenFileCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	st, err := ReplayState(cp2)
	if err != nil {
		t.Fatalf("checkpoint unreadable after cancel: %v", err)
	}
	if st.Epoch < 5 {
		t.Errorf("checkpoint epoch = %d, want the campaign header's >= 5", st.Epoch)
	}

	// Phase 2: resume against the churned consensus, bounded so a stall is
	// a failure rather than a hung job.
	resumeCtx, cancelResume := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelResume()
	sc2 := newScanner(cp2, nil)
	m, failures, err := sc2.Resume(resumeCtx, cp2)
	if err != nil {
		t.Fatalf("resume err = %v (failures: %v)", err, failures)
	}

	// The matrix covers the original five relays plus the joiner.
	if len(m.Names()) != 6 {
		t.Fatalf("matrix names = %v, want all 6 relays including the joiner", m.Names())
	}
	pc := m.ProvCounts()
	if pc.Total() != 15 {
		t.Errorf("provenance %+v does not cover 15 pairs", pc)
	}
	if pc.Removed == 0 {
		t.Error("no pair was tombstoned although the leaver drained mid-campaign")
	}
	joinerMeasured := 0
	for _, peer := range m.Names() {
		if peer == joiner {
			continue
		}
		if rtt, err := m.RTT(joiner, peer); err == nil && rtt > 0 {
			joinerMeasured++
		}
	}
	if joinerMeasured == 0 {
		t.Error("the joined relay has no measured pairs")
	}

	// Telemetry: the churn counters and the adaptive-deadline histogram
	// must have seen the campaign.
	if v := treg.Counter("ting.churn.joined").Value(); v < 1 {
		t.Errorf("ting.churn.joined = %d, want >= 1", v)
	}
	if v := treg.Counter("ting.churn.removed").Value(); v < 1 {
		t.Errorf("ting.churn.removed = %d, want >= 1", v)
	}
	if v := treg.Counter("ting.churn.tombstoned_pairs").Value(); v < 1 {
		t.Errorf("ting.churn.tombstoned_pairs = %d, want >= 1", v)
	}
	if c := treg.Histogram("ting.deadline.adaptive_ms").Count(); c < 1 {
		t.Errorf("ting.deadline.adaptive_ms observations = %d, want >= 1", c)
	}
}

// The committed tail-cost benchmark pair: one wedged pair under a fixed
// 150ms PairTimeout versus adaptive deadlines floored at 20ms. The wedge
// dominates both scans, so ns/op is the tail cost — adaptive cuts it
// roughly PairTimeout/MinPairTimeout-fold.
func benchmarkChurnScan(b *testing.B, adaptive bool) {
	f := bigFakeWorld()
	for i := 0; i < b.N; i++ {
		p := &wedgeProber{f: f, x: "u", y: "v"}
		sc := &Scanner{
			NewMeasurer: func(worker int) (*Measurer, error) {
				return NewMeasurer(Config{Prober: p, W: "w", Z: "z", Samples: 1})
			},
			Workers:      1,
			SkipFailures: true,
			PairTimeout:  150 * time.Millisecond,
		}
		if adaptive {
			sc.AdaptiveDeadline = true
			sc.MinPairTimeout = 20 * time.Millisecond
		}
		if _, failures, err := sc.Scan(context.Background(), []string{"x", "y", "u", "v"}); err != nil || len(failures) != 1 {
			b.Fatalf("scan = (%v, %v), want exactly the wedged pair failing", failures, err)
		}
	}
}

func BenchmarkScanFixedDeadline(b *testing.B)    { benchmarkChurnScan(b, false) }
func BenchmarkScanAdaptiveDeadline(b *testing.B) { benchmarkChurnScan(b, true) }
