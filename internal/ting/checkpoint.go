package ting

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Checkpoint record kinds. A campaign log is a sequence of records: one
// (or more, idempotent) campaign headers naming the relay set, then one
// pair record per completed measurement and one half record per memoized
// half-circuit series. The log is append-only: a crashed or cancelled
// scan never has to undo anything, and Resume replays whatever prefix
// survived.
const (
	RecordCampaign = "campaign"
	RecordPair     = "pair"
	RecordHalf     = "half"
	RecordChurn    = "churn"
	// RecordShard marks a distributed-campaign worker taking up a shard
	// lease: the shard ID and the lease's fencing epoch, written before the
	// shard's first pair so a crashed worker's log shows what it was
	// holding. Readers that predate the record kind skip it (ReplayState
	// ignores unknown kinds), so shard-annotated logs stay replayable
	// everywhere.
	RecordShard = "shard"
)

// Churn record operations.
const (
	ChurnOpJoin   = "join"
	ChurnOpLeave  = "leave"
	ChurnOpRotate = "rotate"
)

// CheckpointRecord is one entry of a campaign log.
type CheckpointRecord struct {
	Kind string `json:"t"`
	// Campaign: the relay set of the scan.
	Names []string `json:"names,omitempty"`
	// Campaign/churn: the consensus epoch the scan observed when the
	// record was written, so Resume against a newer consensus knows how
	// stale the log is.
	Epoch uint64 `json:"epoch,omitempty"`
	// Campaign: onion-key fingerprints per relay, so a same-nickname
	// rejoin with a new key is detected as a rotation on resume.
	Fps map[string]string `json:"fps,omitempty"`
	// Pair: one completed measurement.
	X   string  `json:"x,omitempty"`
	Y   string  `json:"y,omitempty"`
	RTT float64 `json:"rtt,omitempty"`
	// Half: one memoized half-circuit series (min R_Cx), so a resumed
	// scan's HalfCache rehydrates instead of re-sampling (§3.3/§4.6).
	Path    []string `json:"path,omitempty"`
	Samples int      `json:"n,omitempty"`
	Min     float64  `json:"min,omitempty"`
	// Churn: one consensus delta the scan reconciled mid-campaign.
	Op    string `json:"op,omitempty"`
	Relay string `json:"relay,omitempty"`
	Fp    string `json:"fp,omitempty"`
	// Shard: one distributed-campaign lease this worker took up — the
	// shard's ID, the lease's fencing epoch, and the worker's name.
	Shard  string `json:"shard,omitempty"`
	Lease  uint64 `json:"lease,omitempty"`
	Worker string `json:"worker,omitempty"`
}

// Checkpoint is a durable campaign log. Implementations must be safe for
// concurrent Appends (scanner workers append as pairs settle) and must
// make an appended record visible to a later Replay even if the process
// dies right after Append returns — modulo the fsync batching window a
// file-backed implementation documents.
type Checkpoint interface {
	// Append records one entry.
	Append(rec CheckpointRecord) error
	// Replay streams every surviving entry in append order.
	Replay(fn func(rec CheckpointRecord) error) error
}

// FileCheckpoint is the file-backed Checkpoint: one JSON record per line,
// appended with a single write syscall each (so a killed process loses
// nothing the kernel accepted) and fsynced every SyncEvery records (so a
// machine crash loses at most the current batch). The format is
// self-describing JSONL — greppable mid-campaign, and a torn final line
// from a crash is tolerated on replay.
type FileCheckpoint struct {
	// SyncEvery is the fsync batch size; default 8. 1 fsyncs every
	// record — maximum durability, one disk flush per measured pair.
	// Set before the first Append.
	SyncEvery int

	path string

	mu       sync.Mutex
	f        *os.File
	unsynced int
}

// OpenFileCheckpoint opens (creating if needed) a campaign log for
// appending. The existing content is left untouched and remains
// replayable — opening an interrupted campaign's log and handing it to
// Scanner.Resume is the recovery path.
func OpenFileCheckpoint(path string) (*FileCheckpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ting: checkpoint: %w", err)
	}
	return &FileCheckpoint{path: path, f: f}, nil
}

// Path returns the log's file path.
func (c *FileCheckpoint) Path() string { return c.path }

// Append writes one record as a JSON line. Each record reaches the kernel
// before Append returns; every SyncEvery-th append also fsyncs.
func (c *FileCheckpoint) Append(rec CheckpointRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("ting: checkpoint: %w", err)
	}
	b = append(b, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return errors.New("ting: checkpoint: closed")
	}
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("ting: checkpoint: %w", err)
	}
	c.unsynced++
	every := c.SyncEvery
	if every <= 0 {
		every = 8
	}
	if c.unsynced >= every {
		if err := c.f.Sync(); err != nil {
			return fmt.Errorf("ting: checkpoint: %w", err)
		}
		c.unsynced = 0
	}
	return nil
}

// Sync forces any unsynced batch to disk.
func (c *FileCheckpoint) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil || c.unsynced == 0 {
		return nil
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("ting: checkpoint: %w", err)
	}
	c.unsynced = 0
	return nil
}

// Close syncs and closes the log. Appending afterwards errors.
func (c *FileCheckpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	syncErr := c.f.Sync()
	closeErr := c.f.Close()
	c.f = nil
	if syncErr != nil {
		return fmt.Errorf("ting: checkpoint: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("ting: checkpoint: %w", closeErr)
	}
	return nil
}

// Replay reads the log from the start. A record whose line cannot be
// parsed is a torn tail if nothing follows it — the partial write of a
// crash, silently dropped — and corruption if more records do.
func (c *FileCheckpoint) Replay(fn func(rec CheckpointRecord) error) error {
	rf, err := os.Open(c.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ting: checkpoint: %w", err)
	}
	defer rf.Close()
	return replayRecords(rf, fn)
}

// DecodeError marks a record ReplayJSONL's callback could not parse. A
// decode failure on the log's final line is a torn tail — the partial
// write of a crash, silently dropped; anywhere earlier it is corruption.
// Callback errors that are not DecodeErrors abort the replay immediately.
type DecodeError struct{ Err error }

func (e *DecodeError) Error() string { return e.Err.Error() }
func (e *DecodeError) Unwrap() error { return e.Err }

// ReplayJSONL streams the non-empty lines of an append-only JSONL log to
// fn, tolerating exactly one undecodable record at the very end (a torn
// final write). fn signals "this line does not parse" by returning a
// *DecodeError; any other error is the caller's own and aborts the
// replay as-is. Both the scan checkpoint and the campaign coordinator's
// journal replay through this helper, so their crash-tolerance semantics
// cannot drift apart.
func ReplayJSONL(r io.Reader, fn func(raw []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var badErr error
	badLine := 0
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if badErr != nil {
			return fmt.Errorf("ting: corrupt record at line %d: %w", badLine, badErr)
		}
		if err := fn(raw); err != nil {
			var de *DecodeError
			if errors.As(err, &de) {
				badErr, badLine = de.Err, line
				continue
			}
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ting: replay: %w", err)
	}
	return nil
}

// replayRecords decodes a JSONL record stream, tolerating exactly one
// undecodable record at the very end (a torn final write).
func replayRecords(r io.Reader, fn func(rec CheckpointRecord) error) error {
	return ReplayJSONL(r, func(raw []byte) error {
		var rec CheckpointRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return &DecodeError{Err: err}
		}
		return fn(rec)
	})
}

// MemCheckpoint is an in-memory Checkpoint for tests and dry runs: same
// semantics, no durability.
type MemCheckpoint struct {
	mu   sync.Mutex
	recs []CheckpointRecord
}

// Append records one entry.
func (c *MemCheckpoint) Append(rec CheckpointRecord) error {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
	return nil
}

// Replay streams the recorded entries.
func (c *MemCheckpoint) Replay(fn func(rec CheckpointRecord) error) error {
	c.mu.Lock()
	recs := append([]CheckpointRecord(nil), c.recs...)
	c.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of recorded entries.
func (c *MemCheckpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// HalfSeries is one replayed half-circuit series.
type HalfSeries struct {
	Path    []string
	Samples int
	Min     float64
}

// CheckpointState is the aggregated view of a campaign log: what Resume
// seeds the matrix and half-circuit cache with.
type CheckpointState struct {
	// Names is the campaign's relay set, from the header record.
	Names []string
	// Pairs maps each completed pair to its measured RTT; later records
	// win, so a pair re-measured across resumes keeps the newest value.
	Pairs map[[2]string]float64
	// Halves are the memoized half-circuit minima, deduplicated by series.
	Halves []HalfSeries
	// Records is how many log entries were replayed.
	Records int
	// Epoch is the newest consensus epoch the log recorded (0 when the
	// campaign ran without a directory).
	Epoch uint64
	// Fps are the onion-key fingerprints the log last associated with each
	// relay (campaign header merged with churn records in order).
	Fps map[string]string
	// Removed are relays the log saw leave the consensus mid-campaign.
	Removed map[string]bool
	// Joined are relays the log saw join mid-campaign, in join order.
	Joined []string
	// Shards maps each shard this worker leased to the highest lease epoch
	// it held — distributed-campaign provenance, also the record a crashed
	// worker's log leaves of what it was holding.
	Shards map[string]uint64
}

// ReplayState replays a campaign log into its aggregated state. Records
// of unknown kinds are skipped (forward compatibility); malformed records
// of known kinds are errors.
func ReplayState(cp Checkpoint) (*CheckpointState, error) {
	st := &CheckpointState{
		Pairs:   make(map[[2]string]float64),
		Fps:     make(map[string]string),
		Removed: make(map[string]bool),
		Shards:  make(map[string]uint64),
	}
	halfAt := make(map[string]int)
	err := cp.Replay(func(rec CheckpointRecord) error {
		st.Records++
		switch rec.Kind {
		case RecordCampaign:
			if len(rec.Names) < 2 {
				return fmt.Errorf("ting: checkpoint: campaign header with %d relays", len(rec.Names))
			}
			if st.Names != nil && !equalNames(st.Names, rec.Names) {
				return errors.New("ting: checkpoint: log spans campaigns with different relay sets")
			}
			st.Names = rec.Names
			if rec.Epoch > st.Epoch {
				st.Epoch = rec.Epoch
			}
			for name, fp := range rec.Fps {
				st.Fps[name] = fp
			}
		case RecordPair:
			if rec.X == "" || rec.Y == "" || rec.X == rec.Y {
				return fmt.Errorf("ting: checkpoint: invalid pair record (%q,%q)", rec.X, rec.Y)
			}
			if !finite(rec.RTT) {
				return fmt.Errorf("ting: checkpoint: non-finite RTT for pair (%s,%s)", rec.X, rec.Y)
			}
			st.Pairs[pairKey(rec.X, rec.Y)] = rec.RTT
		case RecordHalf:
			if len(rec.Path) < 2 || rec.Samples <= 0 {
				return errors.New("ting: checkpoint: invalid half-circuit record")
			}
			if !finite(rec.Min) {
				return errors.New("ting: checkpoint: non-finite half-circuit minimum")
			}
			key := halfKey(rec.Path, rec.Samples)
			if i, ok := halfAt[key]; ok {
				st.Halves[i].Min = rec.Min
			} else {
				halfAt[key] = len(st.Halves)
				st.Halves = append(st.Halves, HalfSeries{Path: rec.Path, Samples: rec.Samples, Min: rec.Min})
			}
		case RecordShard:
			if rec.Shard == "" {
				return errors.New("ting: checkpoint: shard record without shard ID")
			}
			if rec.Lease > st.Shards[rec.Shard] {
				st.Shards[rec.Shard] = rec.Lease
			}
		case RecordChurn:
			if rec.Relay == "" {
				return errors.New("ting: checkpoint: churn record without relay")
			}
			if rec.Epoch > st.Epoch {
				st.Epoch = rec.Epoch
			}
			switch rec.Op {
			case ChurnOpLeave:
				st.Removed[rec.Relay] = true
			case ChurnOpJoin:
				delete(st.Removed, rec.Relay)
				joined := false
				for _, n := range st.Joined {
					if n == rec.Relay {
						joined = true
						break
					}
				}
				if !joined {
					st.Joined = append(st.Joined, rec.Relay)
				}
				if rec.Fp != "" {
					st.Fps[rec.Relay] = rec.Fp
				}
			case ChurnOpRotate:
				if rec.Fp != "" {
					st.Fps[rec.Relay] = rec.Fp
				}
			default:
				return fmt.Errorf("ting: checkpoint: unknown churn op %q", rec.Op)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
