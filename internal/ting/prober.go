// Package ting implements the paper's core contribution: measuring the
// round-trip time between two arbitrary Tor relays x and y from a single
// vantage point, with no modification to relays and no cooperation from
// other users (§3).
//
// The measurer owns two local relays w and z colocated with its echo
// client/server pair (all "on the same host h"). For a pair (x, y) it
// builds three circuits —
//
//	C_xy = (w, x, y, z)    the full circuit
//	C_x  = (w, x)          isolates the RTT to x
//	C_y  = (w, y)          isolates the RTT to y
//
// — samples each many times, takes minimums, and applies Eq. (4):
//
//	R(x,y) ≈ min R_Cxy − ½ min R_Cx − ½ min R_Cy
//
// with expected error F_x + F_y, the two relays' floor forwarding delays.
//
// Sampling is abstracted behind CircuitProber so the same algorithm runs
// over the full onion-routing stack (StackProber), over a live control
// port (ControlProber, see package control), or directly against the
// synthetic Internet model (ModelProber) when experiments need millions of
// samples.
package ting

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ting/internal/client"
	"ting/internal/directory"
	"ting/internal/echo"
	"ting/internal/inet"
)

// CircuitProber takes RTT samples through a circuit of named relays. The
// interface is context-first: every prober accepts a context and aborts
// sampling as early as it can when the context is cancelled or its
// deadline expires, so a cancelled scan stops within a few samples rather
// than burning the rest of the campaign.
type CircuitProber interface {
	// SampleCircuit builds (or reuses) a circuit through the named relays
	// in order and returns n end-to-end RTT samples in milliseconds.
	// Cancellation is cooperative: implementations check ctx between
	// protocol steps and between samples (or small batches of samples).
	SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error)
}

// DirectProber takes non-Tor RTT samples from the measurement host to a
// relay — the ping / tcptraceroute measurements of §4.3. Ting's estimator
// never uses these (mixing Tor and non-Tor paths is exactly the strawman
// §3.2 rejects); they exist to reproduce the forwarding-delay validation
// and the strawman ablation.
type DirectProber interface {
	Ping(target string) (float64, error)
	TCPPing(target string) (float64, error)
}

// ModelProber samples circuits directly from the synthetic Internet's
// ground-truth model. It is exact by construction and fast enough for the
// paper's large sweeps (930 pairs × 1000 samples, 10,000 live pairs).
//
// A ModelProber is not safe for concurrent use: its underlying model
// prober draws from one RNG stream and SampleCircuitInto reuses a node-ID
// scratch. Give each scanner worker its own (seeded differently), as the
// experiments' World helper does.
type ModelProber struct {
	// Exact replaces stochastic sampling with the model's deterministic
	// floor: every sample is exactly the path's propagation legs plus the
	// relays' forwarding floors, with no queueing or jitter and no RNG
	// draws. Under Exact the measured value of a pair depends only on the
	// topology — not on which worker measures it, in what order, or in
	// which process — which is what lets a sharded campaign's merged
	// matrix be bytewise equal to a single-process scan of the same world.
	Exact bool

	prober *inet.Prober
	host   inet.NodeID
	nodeOf map[string]inet.NodeID
	ids    []inet.NodeID
}

// NewModelProber creates a prober at the given host node. nodeOf maps
// relay names (as used in circuit paths) to topology nodes.
func NewModelProber(topo *inet.Topology, host inet.NodeID, nodeOf map[string]inet.NodeID, seed int64) *ModelProber {
	m := make(map[string]inet.NodeID, len(nodeOf))
	for k, v := range nodeOf {
		m[k] = v
	}
	return &ModelProber{
		prober: inet.NewProber(topo, seed),
		host:   host,
		nodeOf: m,
	}
}

// SampleCircuit implements CircuitProber. The model world has no real I/O
// to interrupt, so cancellation is checked between batches of samples —
// one branch per stackProbeBatch samples, mirroring StackProber, instead
// of a context poll inside the million-sample hot loop.
func (p *ModelProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("ting: sample count must be positive")
	}
	out := make([]float64, n)
	if err := p.SampleCircuitInto(ctx, path, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SampleCircuitInto implements SamplerInto: like SampleCircuit but filling
// a caller-owned buffer, so a scan's million-sample inner loop allocates
// nothing. The path→node resolution scratch is reused across calls.
func (p *ModelProber) SampleCircuitInto(ctx context.Context, path []string, out []float64) error {
	if len(out) == 0 {
		return errors.New("ting: sample count must be positive")
	}
	if cap(p.ids) < len(path) {
		p.ids = make([]inet.NodeID, len(path))
	}
	ids := p.ids[:len(path)]
	for i, name := range path {
		id, ok := p.nodeOf[name]
		if !ok {
			return fmt.Errorf("ting: unknown relay %q", name)
		}
		ids[i] = id
	}
	if p.Exact {
		s, err := p.prober.TorPathFloorRTT(p.host, ids)
		if err != nil {
			return err
		}
		for i := range out {
			out[i] = s
		}
		return ctx.Err()
	}
	for i := range out {
		if i%stackProbeBatch == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s, err := p.prober.TorPathRTT(p.host, ids)
		if err != nil {
			return err
		}
		out[i] = s
	}
	return nil
}

// Ping implements DirectProber with one ICMP sample host↔target.
func (p *ModelProber) Ping(target string) (float64, error) {
	id, ok := p.nodeOf[target]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", target)
	}
	return p.prober.Ping(p.host, id), nil
}

// PingBetween returns one ICMP sample between two relays directly — the
// all-pairs ping ground truth the paper's PlanetLab validation compares
// against (§4.2). Only the model world can do this; on the real network
// the whole point of Ting is that third parties cannot.
func (p *ModelProber) PingBetween(a, b string) (float64, error) {
	ai, ok := p.nodeOf[a]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", a)
	}
	bi, ok := p.nodeOf[b]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", b)
	}
	return p.prober.Ping(ai, bi), nil
}

// TCPPing implements DirectProber with one TCP sample host↔target.
func (p *ModelProber) TCPPing(target string) (float64, error) {
	id, ok := p.nodeOf[target]
	if !ok {
		return 0, fmt.Errorf("ting: unknown relay %q", target)
	}
	return p.prober.TCPPing(p.host, id), nil
}

// StackProber samples circuits through the real mintor stack: it builds
// each circuit with the onion proxy, attaches an echo stream through the
// exit, and times application-level probes — exactly the measurement path
// of §3.1 ("all of our measurements occur strictly over Tor circuits").
type StackProber struct {
	// Client is the onion proxy on the measurement host.
	Client *client.Client
	// Registry resolves relay nicknames to descriptors.
	Registry *directory.Registry
	// Target is the echo destination name the exit connects to.
	Target string
	// ToMs converts measured wall-clock durations to (virtual)
	// milliseconds; nil means plain milliseconds.
	ToMs func(time.Duration) float64
	// Reuse keeps the last circuit open between calls and, when the next
	// requested path extends it, grows it in place instead of rebuilding —
	// Tor's leaky-pipe topology lets C_x = (w,x) become C_xy = (w,x,y,z)
	// with two EXTENDs, saving a circuit build (and its handshakes) per
	// measured pair.
	Reuse bool

	mu       sync.Mutex
	lastPath []string
	lastCirc *client.Circuit
}

// SampleCircuit implements CircuitProber. Probes run in batches so a
// cancelled scan stops after at most stackProbeBatch samples rather than
// finishing the whole series.
func (p *StackProber) SampleCircuit(ctx context.Context, path []string, n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("ting: sample count must be positive")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	circ, err := p.circuitFor(path)
	if err != nil {
		return nil, err
	}
	if !p.Reuse {
		defer circ.Close()
	}
	st, err := circ.OpenStream(p.Target)
	if err != nil {
		return nil, fmt.Errorf("ting: attach stream: %w", err)
	}
	defer st.Close()

	ec := echo.NewClient(st)
	out := make([]float64, 0, n)
	for len(out) < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := n - len(out)
		if batch > stackProbeBatch {
			batch = stackProbeBatch
		}
		rtts, err := ec.ProbeN(batch)
		if err != nil {
			return nil, fmt.Errorf("ting: probe: %w", err)
		}
		for _, d := range rtts {
			if p.ToMs != nil {
				out = append(out, p.ToMs(d))
			} else {
				out = append(out, float64(d)/float64(time.Millisecond))
			}
		}
	}
	return out, nil
}

// stackProbeBatch is how many echo probes StackProber sends between
// cancellation checks.
const stackProbeBatch = 8

// circuitFor returns a circuit through exactly path, reusing or extending
// the cached one when Reuse is on.
func (p *StackProber) circuitFor(path []string) (*client.Circuit, error) {
	descs := make([]*directory.Descriptor, len(path))
	for i, name := range path {
		d, ok := p.Registry.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("ting: unknown relay %q", name)
		}
		descs[i] = d
	}
	if !p.Reuse {
		circ, err := p.Client.BuildCircuit(descs)
		if err != nil {
			return nil, fmt.Errorf("ting: build circuit: %w", err)
		}
		return circ, nil
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastCirc != nil {
		switch {
		case samePath(p.lastPath, path):
			return p.lastCirc, nil
		case isPrefix(p.lastPath, path):
			ok := true
			for _, d := range descs[len(p.lastPath):] {
				if err := p.lastCirc.Extend(d); err != nil {
					ok = false
					break
				}
			}
			if ok {
				p.lastPath = append([]string(nil), path...)
				return p.lastCirc, nil
			}
			// Extension failed; fall through to a fresh build.
		}
		p.lastCirc.Close()
		p.lastCirc = nil
		p.lastPath = nil
	}
	circ, err := p.Client.BuildCircuit(descs)
	if err != nil {
		return nil, fmt.Errorf("ting: build circuit: %w", err)
	}
	p.lastCirc = circ
	p.lastPath = append([]string(nil), path...)
	return circ, nil
}

// Close releases the cached circuit (Reuse mode).
func (p *StackProber) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastCirc != nil {
		p.lastCirc.Close()
		p.lastCirc = nil
		p.lastPath = nil
	}
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	return isPrefix(a, b)
}

func isPrefix(short, long []string) bool {
	if len(short) > len(long) {
		return false
	}
	for i, s := range short {
		if long[i] != s {
			return false
		}
	}
	return true
}
