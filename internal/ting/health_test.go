package ting

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testHealth builds a scoreboard on a manual clock the test advances.
func testHealth(threshold int, cooldown time.Duration) (*Health, *time.Time) {
	now := time.Unix(1000, 0)
	h := NewHealth(HealthConfig{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		now:              func() time.Time { return now },
	})
	return h, &now
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	h, _ := testHealth(3, time.Minute)
	boom := errors.New("dial refused")
	for i := 0; i < 2; i++ {
		h.Failure("x", boom, 5*time.Millisecond)
		if got := h.State("x"); got != BreakerClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
		if qe := h.Allow("x"); qe != nil {
			t.Fatalf("closed breaker blocked: %v", qe)
		}
	}
	h.Failure("x", boom, 5*time.Millisecond)
	if got := h.State("x"); got != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	qe := h.Allow("x", "y")
	if qe == nil {
		t.Fatal("open breaker allowed a measurement")
	}
	if qe.Relay != "x" {
		t.Errorf("blocking relay = %q", qe.Relay)
	}
	if !errors.Is(qe, ErrQuarantined) {
		t.Error("QuarantineError does not match ErrQuarantined")
	}
	if !errors.Is(qe, boom) {
		t.Error("QuarantineError does not unwrap to the opening failure")
	}
	// The healthy relay is unaffected.
	if got := h.State("y"); got != BreakerClosed {
		t.Errorf("bystander state = %v", got)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	h, _ := testHealth(2, time.Minute)
	err := errors.New("flap")
	h.Failure("x", err, time.Millisecond)
	h.Success("x")
	h.Failure("x", err, time.Millisecond)
	if got := h.State("x"); got != BreakerClosed {
		t.Errorf("interleaved successes still opened the breaker: %v", got)
	}
	h.Failure("x", err, time.Millisecond)
	if got := h.State("x"); got != BreakerOpen {
		t.Errorf("two consecutive failures did not open: %v", got)
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	h, now := testHealth(1, 30*time.Second)
	h.Failure("x", errors.New("down"), time.Millisecond)
	if qe := h.Allow("x"); qe == nil {
		t.Fatal("open breaker allowed before cooldown")
	}

	// Cooldown elapses: exactly one probe goes through, the next caller is
	// still blocked while the probe is in flight.
	*now = now.Add(31 * time.Second)
	if qe := h.Allow("x"); qe != nil {
		t.Fatalf("cooldown elapsed but probe blocked: %v", qe)
	}
	if got := h.State("x"); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if qe := h.Allow("x"); qe == nil {
		t.Fatal("second concurrent probe allowed")
	}

	// Probe success closes the breaker for good.
	h.Success("x")
	if got := h.State("x"); got != BreakerClosed {
		t.Fatalf("state after probe success = %v", got)
	}
	if qe := h.Allow("x"); qe != nil {
		t.Fatalf("closed breaker blocked: %v", qe)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	h, now := testHealth(1, 30*time.Second)
	h.Failure("x", errors.New("down"), time.Millisecond)
	*now = now.Add(31 * time.Second)
	if qe := h.Allow("x"); qe != nil {
		t.Fatal(qe)
	}
	h.Failure("x", errors.New("still down"), time.Millisecond)
	if got := h.State("x"); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if qe := h.Allow("x"); qe == nil {
		t.Fatal("reopened breaker allowed immediately")
	}
	// A second cooldown earns a second probe.
	*now = now.Add(31 * time.Second)
	if qe := h.Allow("x"); qe != nil {
		t.Fatalf("second cooldown did not half-open: %v", qe)
	}
}

func TestBreakerAbandonedProbeForfeitsSlot(t *testing.T) {
	h, now := testHealth(1, 30*time.Second)
	h.Failure("x", errors.New("down"), time.Millisecond)
	*now = now.Add(31 * time.Second)
	if qe := h.Allow("x"); qe != nil {
		t.Fatal(qe)
	}
	// The prober never reports (cancelled sweep). Its slot expires after
	// another cooldown so the relay is not stuck half-open forever.
	*now = now.Add(31 * time.Second)
	if qe := h.Allow("x"); qe != nil {
		t.Fatalf("stale probe slot never expired: %v", qe)
	}
}

// TestAllowPairCommitsProbesAtomically: a pair blocked by its second relay
// must not burn the first relay's half-open probe slot.
func TestAllowPairCommitsProbesAtomically(t *testing.T) {
	h, now := testHealth(1, 30*time.Second)
	h.Failure("a", errors.New("down"), time.Millisecond)
	// a's cooldown elapses before b even opens, so Allow sees a as a probe
	// candidate and b as freshly blocked.
	*now = now.Add(31 * time.Second)
	h.Failure("b", errors.New("down"), time.Millisecond)
	qe := h.Allow("a", "b")
	if qe == nil || qe.Relay != "b" {
		t.Fatalf("Allow = %v, want blocked by b", qe)
	}
	// a must still be plain open with its probe slot intact, not half-open
	// with a burned probe.
	if got := h.State("a"); got != BreakerOpen {
		t.Fatalf("a's state = %v after blocked pair, want open", got)
	}
	if qe := h.Allow("a"); qe != nil {
		t.Fatalf("a's probe slot was burned: %v", qe)
	}
}

func TestHealthSnapshot(t *testing.T) {
	h, _ := testHealth(2, time.Minute)
	h.Success("b")
	h.Failure("a", errors.New("timeout"), 100*time.Millisecond)
	h.Failure("a", errors.New("timeout"), 300*time.Millisecond)
	rows := h.Snapshot()
	if len(rows) != 2 || rows[0].Name != "a" || rows[1].Name != "b" {
		t.Fatalf("rows = %+v, want a then b", rows)
	}
	a := rows[0]
	if a.State != BreakerOpen || a.Failures != 2 || a.ConsecutiveFailures != 2 || a.Opens != 1 {
		t.Errorf("a's row = %+v", a)
	}
	if a.MeanFailureMs != 200 {
		t.Errorf("MeanFailureMs = %v, want 200", a.MeanFailureMs)
	}
	if a.LastFailure != "timeout" {
		t.Errorf("LastFailure = %q", a.LastFailure)
	}
	if rows[1].Successes != 1 || rows[1].State != BreakerClosed {
		t.Errorf("b's row = %+v", rows[1])
	}
}

func TestBreakerObserverSeesTransitions(t *testing.T) {
	var transitions []string
	obs := &Observer{BreakerChange: func(relay string, from, to BreakerState) {
		transitions = append(transitions, relay+":"+from.String()+">"+to.String())
	}}
	now := time.Unix(0, 0)
	h := NewHealth(HealthConfig{FailureThreshold: 1, Cooldown: time.Second, Observer: obs,
		now: func() time.Time { return now }})
	h.Failure("x", errors.New("down"), 0)
	now = now.Add(2 * time.Second)
	h.Allow("x")
	h.Success("x")
	want := []string{"x:closed>open", "x:open>half-open", "x:half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestCulpritsAttribution(t *testing.T) {
	cx := &CircuitError{Circuit: "C_x", Path: []string{"w", "x"}, Err: errors.New("boom")}
	if got := culprits("x", "y", cx); len(got) != 1 || got[0] != "x" {
		t.Errorf("C_x culprits = %v, want [x]", got)
	}
	cy := &CircuitError{Circuit: "C_y", Path: []string{"w", "y"}, Err: errors.New("boom")}
	if got := culprits("x", "y", cy); len(got) != 1 || got[0] != "y" {
		t.Errorf("C_y culprits = %v, want [y]", got)
	}
	cxy := &CircuitError{Circuit: "C_xy", Path: []string{"w", "x", "y", "z"}, Err: errors.New("boom")}
	if got := culprits("x", "y", cxy); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("C_xy culprits = %v, want [x y]", got)
	}
	if got := culprits("x", "y", errors.New("opaque")); len(got) != 2 {
		t.Errorf("opaque-error culprits = %v, want both endpoints", got)
	}
	if got := culprits("x", "y", context.Canceled); len(got) != 2 {
		t.Errorf("cancel culprits = %v", got)
	}
}

func TestMeasurePairReturnsTypedCircuitError(t *testing.T) {
	f := newFakeWorld()
	f.errs["y"] = errors.New("y vanished")
	m, err := NewMeasurer(Config{Prober: f, W: "w", Z: "z", Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.MeasurePair(context.Background(), "x", "y")
	var ce *CircuitError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CircuitError", err, err)
	}
	// y first breaks the full circuit (C_x only touches x).
	if ce.Circuit != "C_xy" {
		t.Errorf("Circuit = %q", ce.Circuit)
	}
	if want := "ting: C_xy: y vanished"; ce.Error() != want {
		t.Errorf("Error() = %q, want %q", ce.Error(), want)
	}
}
