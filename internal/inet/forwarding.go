package inet

import "math/rand"

// ForwardingModel describes the stochastic delay a Tor relay adds to each
// cell it forwards (§3.2: user-space swap + queueing + crypto). The paper's
// key empirical facts, which this model reproduces:
//
//   - The minimum forwarding delay is small, typically 0–3 ms in total per
//     node once queueing is excluded (§4.3).
//   - Reaching that minimum takes many samples, because the queueing
//     component rarely hits zero (§4.4, Figure 6, confirming Jansen et al.).
//
// A sample is BaseMs (deterministic floor: symmetric crypto and context
// switching) plus an exponential queueing delay, plus an occasional large
// scheduling spike.
type ForwardingModel struct {
	// BaseMs is the deterministic per-traversal floor in milliseconds.
	BaseMs float64
	// QueueMeanMs is the mean of the exponential queueing component.
	QueueMeanMs float64
	// SpikeProb is the per-sample probability of a scheduling spike.
	SpikeProb float64
	// SpikeMeanMs is the mean size of a spike.
	SpikeMeanMs float64
}

// Sample draws one forwarding delay in milliseconds.
func (f ForwardingModel) Sample(rng *rand.Rand) float64 {
	d := f.BaseMs + rng.ExpFloat64()*f.QueueMeanMs
	if f.SpikeProb > 0 && rng.Float64() < f.SpikeProb {
		d += rng.ExpFloat64() * f.SpikeMeanMs
	}
	return d
}

// Floor returns the deterministic minimum of the distribution. Ting's
// estimate of R(x,y) converges to R(x,y) + Floor(x) + Floor(y) (Eq. 4):
// forwarding delays are accounted for but not eliminated.
func (f ForwardingModel) Floor() float64 { return f.BaseMs }

// randomForwardingModel draws a relay's forwarding behaviour. Most relays
// are lightly loaded (sub-millisecond floor, ~1–4 ms typical queueing);
// a minority are busy, with larger queues and more frequent spikes.
func randomForwardingModel(rng *rand.Rand) ForwardingModel {
	m := ForwardingModel{
		BaseMs:      0.05 + rng.Float64()*0.7,
		QueueMeanMs: 0.5 + rng.ExpFloat64()*2.0,
		SpikeProb:   0.01 + rng.Float64()*0.04,
		SpikeMeanMs: 5 + rng.ExpFloat64()*10,
	}
	if rng.Float64() < 0.2 { // busy relay
		m.QueueMeanMs += 2 + rng.ExpFloat64()*4
		m.SpikeProb += 0.05
	}
	return m
}

// LocalForwardingModel returns the forwarding model used for relays the
// measurer runs itself (w and z in §3.3): colocated, dedicated, and lightly
// loaded, so they contribute almost nothing beyond their crypto cost.
func LocalForwardingModel() ForwardingModel {
	return ForwardingModel{BaseMs: 0.05, QueueMeanMs: 0.05, SpikeProb: 0.001, SpikeMeanMs: 1}
}
