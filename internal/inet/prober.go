package inet

import (
	"ting/internal/geo"

	"fmt"
	"math/rand"
)

// Prober draws latency samples from a Topology's ground-truth model. It is
// the model-direct measurement plane: the discrete-event simulator and the
// TCP transport produce the same numbers by construction, but the Prober is
// orders of magnitude faster, which the large experiments (930 pairs × 1000
// samples, 10,000 live pairs) require.
//
// A Prober is not safe for concurrent use; create one per goroutine with
// distinct seeds.
type Prober struct {
	topo *Topology
	rng  *rand.Rand

	// LinkJitterMs is the mean of the exponential per-sample jitter added
	// once per path (queueing outside the relays). Default 0.15.
	LinkJitterMs float64
}

// NewProber creates a prober over topo with a deterministic seed.
func NewProber(topo *Topology, seed int64) *Prober {
	return &Prober{topo: topo, rng: rand.New(rand.NewSource(seed)), LinkJitterMs: 0.15}
}

// Topology returns the underlying topology.
func (p *Prober) Topology() *Topology { return p.topo }

// Ping returns one ICMP round-trip sample between two nodes, in
// milliseconds. Biased networks shift ICMP traffic relative to the Tor path
// (§3.2), which is what makes the strawman of Figure 1 untenable.
func (p *Prober) Ping(from, to NodeID) float64 {
	a, b := p.topo.Node(from), p.topo.Node(to)
	rtt := p.topo.RTT(from, to) + a.ICMPBiasMs + b.ICMPBiasMs + p.jitter()
	if rtt < 0.05 {
		rtt = 0.05
	}
	return rtt
}

// TCPPing returns one direct (non-Tor) TCP round-trip sample, as measured by
// tcptraceroute in §4.3. Biased networks shift it too, differently from ICMP.
func (p *Prober) TCPPing(from, to NodeID) float64 {
	a, b := p.topo.Node(from), p.topo.Node(to)
	rtt := p.topo.RTT(from, to) + a.TCPBiasMs + b.TCPBiasMs + p.jitter()
	if rtt < 0.05 {
		rtt = 0.05
	}
	return rtt
}

// TorPathRTT returns one end-to-end RTT sample for an echo through the Tor
// circuit host → relays[0] → … → relays[k-1] → host. Every relay forwards
// the probe twice (ping and pong directions), contributing two independent
// forwarding-delay samples, exactly as in Eq. (1).
func (p *Prober) TorPathRTT(host NodeID, relays []NodeID) (float64, error) {
	if len(relays) == 0 {
		return 0, fmt.Errorf("inet: empty circuit")
	}
	var sum float64
	prev := host
	for _, r := range relays {
		if p.topo.Node(r) == nil {
			return 0, fmt.Errorf("inet: unknown relay %d", r)
		}
		sum += p.topo.RTT(prev, r)
		prev = r
	}
	sum += p.topo.RTT(prev, host)
	for _, r := range relays {
		fwd := p.topo.Node(r).Fwd
		sum += fwd.Sample(p.rng) + fwd.Sample(p.rng)
	}
	return sum + p.jitter(), nil
}

// TorPathFloorRTT returns the deterministic floor of TorPathRTT's sample
// distribution: the sum of the path's propagation legs plus each relay's
// forwarding floor (twice — ping and pong directions), with no queueing,
// no spikes, and no link jitter. It consumes no randomness, so two probers
// — or two processes — asking about the same path always get the same
// number. This is the value TorPathRTT's min-filtered series converges to,
// and the sampling mode distributed campaigns use when their merged matrix
// must be bytewise equal to a single-process scan.
func (p *Prober) TorPathFloorRTT(host NodeID, relays []NodeID) (float64, error) {
	if len(relays) == 0 {
		return 0, fmt.Errorf("inet: empty circuit")
	}
	var sum float64
	prev := host
	for _, r := range relays {
		if p.topo.Node(r) == nil {
			return 0, fmt.Errorf("inet: unknown relay %d", r)
		}
		sum += p.topo.RTT(prev, r)
		prev = r
	}
	sum += p.topo.RTT(prev, host)
	for _, r := range relays {
		sum += 2 * p.topo.Node(r).Fwd.Floor()
	}
	return sum, nil
}

func (p *Prober) jitter() float64 {
	if p.LinkJitterMs <= 0 {
		return 0
	}
	return p.rng.ExpFloat64() * p.LinkJitterMs
}

// AddHost appends a measurement host to the topology: an unbiased,
// well-connected node at the given coordinate (the machine running s, d, w,
// and z in §3.3). It returns the new node's ID. RTTs from the host to every
// existing node are generated with the same model as relay-relay paths;
// the host's self-RTT is the loopback floor.
func (t *Topology) AddHost(name string, coord geo.Coord, seed int64) NodeID {
	rng := rand.New(rand.NewSource(seed))
	id := NodeID(len(t.Nodes))
	n := &Node{
		ID:            id,
		Name:          name,
		Coord:         coord,
		Region:        "host",
		Class:         Datacenter,
		AccessMs:      0.2,
		Fwd:           LocalForwardingModel(),
		BandwidthKBps: 50000,
	}
	t.Nodes = append(t.Nodes, n)
	for i := range t.rtt {
		base := geo.MinRTTMs(t.Nodes[i].Coord, coord)
		infl := 1 + lognormal(-0.4, 0.4, rng)
		rtt := base*infl + t.Nodes[i].AccessMs + n.AccessMs
		if rtt < 0.2 {
			rtt = 0.2
		}
		t.rtt[i] = append(t.rtt[i], rtt)
	}
	row := make([]float64, len(t.Nodes))
	for i := range t.rtt {
		row[i] = t.rtt[i][id]
	}
	row[id] = 0.05 // loopback
	t.rtt = append(t.rtt, row)
	return id
}
