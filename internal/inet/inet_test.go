package inet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ting/internal/geo"
)

func mustGenerate(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateBasicInvariants(t *testing.T) {
	topo := mustGenerate(t, Config{N: 60, Seed: 1})
	if topo.N() != 60 {
		t.Fatalf("N = %d, want 60", topo.N())
	}
	for i := 0; i < topo.N(); i++ {
		n := topo.Node(NodeID(i))
		if n == nil || n.ID != NodeID(i) {
			t.Fatalf("node %d malformed", i)
		}
		if !n.Coord.Valid() {
			t.Errorf("node %d has invalid coord %v", i, n.Coord)
		}
		if n.AccessMs <= 0 {
			t.Errorf("node %d has non-positive access delay", i)
		}
		if n.BandwidthKBps <= 0 {
			t.Errorf("node %d has non-positive bandwidth", i)
		}
		if n.Fwd.BaseMs <= 0 || n.Fwd.QueueMeanMs <= 0 {
			t.Errorf("node %d forwarding model degenerate: %+v", i, n.Fwd)
		}
		if !n.Biased && (n.ICMPBiasMs != 0 || n.TCPBiasMs != 0) {
			t.Errorf("unbiased node %d has nonzero bias", i)
		}
		for j := 0; j < topo.N(); j++ {
			r := topo.RTT(NodeID(i), NodeID(j))
			if i == j {
				if r != 0 {
					t.Errorf("self-RTT(%d) = %v, want 0", i, r)
				}
				continue
			}
			if r <= 0 {
				t.Errorf("RTT(%d,%d) = %v, want > 0", i, j, r)
			}
			if r != topo.RTT(NodeID(j), NodeID(i)) {
				t.Errorf("RTT not symmetric for (%d,%d)", i, j)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, Config{N: 30, Seed: 42})
	b := mustGenerate(t, Config{N: 30, Seed: 42})
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if a.RTT(NodeID(i), NodeID(j)) != b.RTT(NodeID(i), NodeID(j)) {
				t.Fatalf("same seed, different RTT at (%d,%d)", i, j)
			}
		}
		if a.Nodes[i].Coord != b.Nodes[i].Coord {
			t.Fatalf("same seed, different coords at %d", i)
		}
	}
	c := mustGenerate(t, Config{N: 30, Seed: 43})
	same := true
	for i := 0; i < 30 && same; i++ {
		for j := 0; j < 30; j++ {
			if a.RTT(NodeID(i), NodeID(j)) != c.RTT(NodeID(i), NodeID(j)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{N: 1}); err == nil {
		t.Error("want error for N=1")
	}
	if _, err := Generate(Config{N: 5, BiasedFraction: 1.5}); err == nil {
		t.Error("want error for BiasedFraction > 1")
	}
	if _, err := Generate(Config{N: 5, ResidentialFraction: -0.5}); err == nil {
		t.Error("want error for negative ResidentialFraction")
	}
}

func TestRTTAboveSpeedOfLight(t *testing.T) {
	// Every true RTT must be at or above the (2/3)c floor for the pair's
	// true coordinates (Figure 8's sanity line); only geolocation *errors*
	// may appear below it, and those live in geo.GeoDB, not here.
	topo := mustGenerate(t, Config{N: 80, Seed: 2})
	for i := 0; i < topo.N(); i++ {
		for j := i + 1; j < topo.N(); j++ {
			floor := geo.MinRTTMs(topo.Nodes[i].Coord, topo.Nodes[j].Coord)
			if topo.RTT(NodeID(i), NodeID(j)) < floor-1e-9 {
				t.Fatalf("RTT(%d,%d)=%v below light floor %v",
					i, j, topo.RTT(NodeID(i), NodeID(j)), floor)
			}
		}
	}
}

func TestClassAndBiasFractions(t *testing.T) {
	topo := mustGenerate(t, Config{N: 2000, Seed: 3})
	var res, biased int
	for _, n := range topo.Nodes {
		if n.Class == Residential {
			res++
		}
		if n.Biased {
			biased++
		}
	}
	resFrac := float64(res) / 2000
	biasFrac := float64(biased) / 2000
	if math.Abs(resFrac-0.61) > 0.05 {
		t.Errorf("residential fraction = %v, want ≈ 0.61", resFrac)
	}
	if math.Abs(biasFrac-0.35) > 0.05 {
		t.Errorf("biased fraction = %v, want ≈ 0.35", biasFrac)
	}
}

func TestRTTRangeResemblesPaper(t *testing.T) {
	// §4.1: pairs range from very close (~0ms) to nearly antipodal (~500ms).
	topo := mustGenerate(t, Config{N: 150, Seed: 4})
	minR, maxR := math.Inf(1), 0.0
	for i := 0; i < topo.N(); i++ {
		for j := i + 1; j < topo.N(); j++ {
			r := topo.RTT(NodeID(i), NodeID(j))
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
		}
	}
	if minR > 20 {
		t.Errorf("closest pair %v ms, want some pairs < 20ms", minR)
	}
	if maxR < 250 || maxR > 900 {
		t.Errorf("farthest pair %v ms, want a few hundred ms", maxR)
	}
}

func TestTIVsExist(t *testing.T) {
	// Independent per-pair inflation must create triangle inequality
	// violations for a majority of pairs (§5.2.1 reports 69%).
	topo := mustGenerate(t, Config{N: 50, Seed: 5})
	n := topo.N()
	tiv := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			direct := topo.RTT(NodeID(i), NodeID(j))
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if topo.RTT(NodeID(i), NodeID(k))+topo.RTT(NodeID(k), NodeID(j)) < direct {
					tiv++
					break
				}
			}
		}
	}
	frac := float64(tiv) / float64(total)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("TIV fraction = %v, want majority of pairs (paper: 0.69)", frac)
	}
}

func TestForwardingModelSample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := ForwardingModel{BaseMs: 0.5, QueueMeanMs: 2, SpikeProb: 0.05, SpikeMeanMs: 20}
	var minSeen, sum float64
	minSeen = math.Inf(1)
	const n = 20000
	for i := 0; i < n; i++ {
		d := m.Sample(rng)
		if d < m.Floor() {
			t.Fatalf("sample %v below floor %v", d, m.Floor())
		}
		if d < minSeen {
			minSeen = d
		}
		sum += d
	}
	if minSeen > m.Floor()+0.1 {
		t.Errorf("min of %d samples = %v, want to approach floor %v", n, minSeen, m.Floor())
	}
	mean := sum / n
	want := m.BaseMs + m.QueueMeanMs + m.SpikeProb*m.SpikeMeanMs
	if math.Abs(mean-want) > 0.3 {
		t.Errorf("mean = %v, want ≈ %v", mean, want)
	}
}

func TestLocalForwardingModelTiny(t *testing.T) {
	m := LocalForwardingModel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if d := m.Sample(rng); d > 5 {
			t.Fatalf("local relay forwarding sample %v ms too large", d)
		}
	}
}

func TestProberPingBias(t *testing.T) {
	topo := mustGenerate(t, Config{N: 20, Seed: 8})
	// Force exact values for one pair.
	topo.OverrideRTT(0, 1, 100)
	a, b := topo.Node(0), topo.Node(1)
	a.ICMPBiasMs, a.TCPBiasMs, a.Biased = 10, -5, true
	b.ICMPBiasMs, b.TCPBiasMs, b.Biased = 0, 0, false

	p := NewProber(topo, 9)
	p.LinkJitterMs = 0 // deterministic
	if got := p.Ping(0, 1); got != 110 {
		t.Errorf("Ping = %v, want 110", got)
	}
	if got := p.TCPPing(0, 1); got != 95 {
		t.Errorf("TCPPing = %v, want 95", got)
	}
}

func TestProberPingNonNegative(t *testing.T) {
	topo := mustGenerate(t, Config{N: 10, Seed: 10})
	topo.OverrideRTT(2, 3, 1)
	topo.Node(2).ICMPBiasMs = -50
	p := NewProber(topo, 11)
	for i := 0; i < 100; i++ {
		if got := p.Ping(2, 3); got < 0.05 {
			t.Fatalf("Ping returned %v < clamp", got)
		}
	}
}

func TestTorPathRTTComposition(t *testing.T) {
	topo := mustGenerate(t, Config{N: 10, Seed: 12})
	host := topo.AddHost("host", geo.Coord{Lat: 39, Lon: -77}, 13)
	w := topo.AddColocated(host, "w")
	z := topo.AddColocated(host, "z")
	x, y := NodeID(0), NodeID(1)

	// Zero out stochastic parts to check exact path composition.
	for _, id := range []NodeID{w, x, y, z} {
		topo.Node(id).Fwd = ForwardingModel{BaseMs: 1, QueueMeanMs: 1e-12}
	}
	p := NewProber(topo, 14)
	p.LinkJitterMs = 0

	got, err := p.TorPathRTT(host, []NodeID{w, x, y, z})
	if err != nil {
		t.Fatal(err)
	}
	want := topo.RTT(host, w) + topo.RTT(w, x) + topo.RTT(x, y) +
		topo.RTT(y, z) + topo.RTT(z, host) + 8 // 2 fwd × 4 relays × 1ms
	if math.Abs(got-want) > 0.01 {
		t.Errorf("TorPathRTT = %v, want %v", got, want)
	}

	if _, err := p.TorPathRTT(host, nil); err == nil {
		t.Error("want error for empty circuit")
	}
	if _, err := p.TorPathRTT(host, []NodeID{9999}); err == nil {
		t.Error("want error for unknown relay")
	}
}

func TestAddHostAndColocated(t *testing.T) {
	topo := mustGenerate(t, Config{N: 12, Seed: 15})
	host := topo.AddHost("h", geo.Coord{Lat: 50, Lon: 8}, 16)
	if topo.N() != 13 {
		t.Fatalf("N after AddHost = %d", topo.N())
	}
	if topo.RTT(host, host) != 0.05 {
		t.Errorf("host self-RTT = %v, want loopback 0.05", topo.RTT(host, host))
	}
	w := topo.AddColocated(host, "w")
	if topo.RTT(host, w) != 0.05 {
		t.Errorf("host-w RTT = %v, want 0.05", topo.RTT(host, w))
	}
	for i := NodeID(0); i < 12; i++ {
		if topo.RTT(w, i) != topo.RTT(host, i) {
			t.Errorf("colocated RTT mismatch at node %d: %v vs %v",
				i, topo.RTT(w, i), topo.RTT(host, i))
		}
		if topo.RTT(i, w) != topo.RTT(w, i) {
			t.Errorf("colocated RTT asymmetric at node %d", i)
		}
	}
}

func TestMatrixCopyIsDeep(t *testing.T) {
	topo := mustGenerate(t, Config{N: 5, Seed: 17})
	m := topo.RTTMatrix()
	orig := topo.RTT(0, 1)
	m[0][1] = -1
	if topo.RTT(0, 1) != orig {
		t.Error("RTTMatrix returned a view, want a copy")
	}
}

func TestForwardingSamplePositiveProperty(t *testing.T) {
	f := func(base, queue float64, seed int64) bool {
		m := ForwardingModel{
			BaseMs:      math.Abs(math.Mod(base, 5)) + 0.01,
			QueueMeanMs: math.Abs(math.Mod(queue, 10)) + 0.01,
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			if m.Sample(rng) < m.Floor() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if Residential.String() != "residential" || Datacenter.String() != "datacenter" ||
		University.String() != "university" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Error("unknown class formatting wrong")
	}
}
