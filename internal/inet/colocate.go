package inet

// AddColocated appends a node colocated with base: same coordinate, and the
// same RTT to every other node, with only a loopback hop between the two.
// Ting runs its two local relays w and z this way — "in practice, we simply
// run all four processes on the same host h" (§3.3) — which is what makes
// R(s, anything) equal to R(d, anything) and lets Eq. (4) cancel the local
// terms.
func (t *Topology) AddColocated(base NodeID, name string) NodeID {
	bn := t.Node(base)
	id := NodeID(len(t.Nodes))
	n := &Node{
		ID:            id,
		Name:          name,
		Coord:         bn.Coord,
		Region:        bn.Region,
		Class:         bn.Class,
		AccessMs:      bn.AccessMs,
		Fwd:           LocalForwardingModel(),
		BandwidthKBps: bn.BandwidthKBps,
	}
	t.Nodes = append(t.Nodes, n)
	for i := range t.rtt {
		var v float64
		switch NodeID(i) {
		case base:
			v = 0.05
		default:
			v = t.rtt[i][base]
		}
		t.rtt[i] = append(t.rtt[i], v)
	}
	row := make([]float64, len(t.Nodes))
	for i := range t.rtt {
		row[i] = t.rtt[i][id]
	}
	row[id] = 0
	t.rtt = append(t.rtt, row)
	return id
}
