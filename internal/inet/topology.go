// Package inet models the synthetic Internet under the Ting reproduction.
//
// The paper measures the live Tor network and a PlanetLab testbed, neither of
// which is available offline. This package replaces them with a generated
// topology whose latency structure exhibits the phenomena the paper studies:
//
//   - propagation delay bounded below by great-circle distance at 2/3 c,
//   - per-pair routing inflation, sampled independently, which naturally
//     creates triangle inequality violations (§5.2.1),
//   - per-node access-link delays (residential vs. datacenter),
//   - per-network differential treatment of ICMP and non-Tor TCP traffic
//     for roughly 35% of networks (§3.2, §4.3, Figure 5), and
//   - per-relay stochastic forwarding delays with heavy-tailed queueing,
//     so that minimum-finding takes many samples (§4.4, Figure 6).
//
// The ground-truth RTT matrix is exactly known, which is what makes the
// validation experiments (Figures 3, 4, 7) meaningful: the "real" value the
// paper got from ping is available here by construction.
package inet

import (
	"fmt"
	"math"
	"math/rand"

	"ting/internal/geo"
)

// NodeID identifies a node within a Topology.
type NodeID int

// Class describes what kind of network hosts a node. The paper finds the
// live Tor relay population to be roughly 61% residential with the rest in
// universities and hosting providers (§5.3).
type Class int

// Node classes.
const (
	Residential Class = iota
	Datacenter
	University
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case Residential:
		return "residential"
	case Datacenter:
		return "datacenter"
	case University:
		return "university"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Node is a host on the synthetic Internet.
type Node struct {
	ID     NodeID
	Name   string
	Coord  geo.Coord
	Region string
	Class  Class

	// AccessMs is the round-trip contribution of the node's access link,
	// added to every RTT involving this node.
	AccessMs float64

	// Biased marks networks that treat ICMP/TCP/Tor traffic differently
	// (§3.2). For such nodes, direct ping and tcptraceroute measurements
	// diverge from the Tor-path RTT in hard-to-predict ways.
	Biased bool
	// ICMPBiasMs and TCPBiasMs are added to direct ICMP and non-Tor TCP
	// probes respectively (zero for unbiased nodes). They may be negative:
	// the paper observed "negative forwarding delays" implying ping took a
	// longer path than Tor traffic (Figure 5).
	ICMPBiasMs float64
	TCPBiasMs  float64

	// Fwd is the node's forwarding-delay distribution when relaying Tor
	// cells.
	Fwd ForwardingModel

	// BandwidthKBps is the advertised relay bandwidth used for weighted
	// path selection (§5.1.1, "Weighted Node Selection").
	BandwidthKBps float64

	// connectivity scales the routing inflation of every path touching
	// this node: hub networks near exchange points see little inflation,
	// which is what makes them attractive triangle-inequality detours
	// (§5.2.1; cf. Detour and PeerWise).
	connectivity float64
}

// Topology is a set of nodes plus the exact ground-truth Tor-path RTT matrix
// between them.
type Topology struct {
	Nodes []*Node
	rtt   [][]float64 // milliseconds, symmetric, zero diagonal
}

// Config parameterizes topology generation. Zero values select the defaults
// documented on each field.
type Config struct {
	// N is the number of nodes (required, ≥ 2).
	N int
	// Seed drives all randomness; equal seeds give equal topologies.
	Seed int64

	// BiasedFraction is the fraction of nodes whose networks treat ICMP and
	// TCP probes differently from Tor traffic. Default 0.35 (§4.3: "the
	// remaining 35% of nodes show extremely odd behavior").
	BiasedFraction float64

	// ResidentialFraction is the fraction of nodes on residential access
	// links. Default 0.61 (§5.3). The remainder splits 2:1 between
	// datacenters and universities.
	ResidentialFraction float64

	// InflationSigma controls lognormal routing inflation: the inflation
	// factor is 1 + LogNormal(mu, sigma). Default 0.4; combined with
	// InflationMu it yields median path inflation around 1.7x with enough
	// independent variation that a majority of pairs exhibit a TIV
	// (§5.2.1 finds TIVs for 69% of pairs) while the 50-node RTT range
	// stays within the paper's ~0–450ms (Figure 11).
	InflationSigma float64
	// InflationMu is the lognormal location parameter. Default -0.4.
	InflationMu float64

	// MaxICMPBiasMs bounds the magnitude of per-node ICMP bias. Default 40.
	MaxICMPBiasMs float64

	// HubFraction is the share of nodes on well-connected networks whose
	// paths see little routing inflation. Default 0.15.
	HubFraction float64

	// FlatRegions spreads nodes uniformly over all regions instead of the
	// Tor-like US/EU concentration. The paper's PlanetLab testbed was
	// chosen this way (§4.1): wide geographic coverage with pair latencies
	// from ~0ms to nearly antipodal.
	FlatRegions bool
}

func (c *Config) setDefaults() error {
	if c.N < 2 {
		return fmt.Errorf("inet: config needs N ≥ 2, got %d", c.N)
	}
	if c.BiasedFraction == 0 {
		c.BiasedFraction = 0.35
	}
	if c.BiasedFraction < 0 || c.BiasedFraction > 1 {
		return fmt.Errorf("inet: BiasedFraction %v out of [0,1]", c.BiasedFraction)
	}
	if c.ResidentialFraction == 0 {
		c.ResidentialFraction = 0.61
	}
	if c.ResidentialFraction < 0 || c.ResidentialFraction > 1 {
		return fmt.Errorf("inet: ResidentialFraction %v out of [0,1]", c.ResidentialFraction)
	}
	if c.InflationSigma == 0 {
		c.InflationSigma = 0.4
	}
	if c.InflationMu == 0 {
		c.InflationMu = -0.4
	}
	if c.MaxICMPBiasMs == 0 {
		c.MaxICMPBiasMs = 40
	}
	if c.HubFraction == 0 {
		c.HubFraction = 0.15
	}
	return nil
}

// Generate builds a deterministic synthetic topology per cfg.
func Generate(cfg Config) (*Topology, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	regions := geo.Regions()

	if cfg.FlatRegions {
		regions = append([]geo.Region(nil), regions...)
		for i := range regions {
			regions[i].Weight = 1 / float64(len(regions))
		}
	}

	nodes := make([]*Node, cfg.N)
	for i := range nodes {
		r := pickRegion(regions, rng)
		coord := scatter(r, rng)
		n := &Node{
			ID:     NodeID(i),
			Name:   fmt.Sprintf("relay%03d", i),
			Coord:  coord,
			Region: r.Name,
		}
		assignClass(n, cfg.ResidentialFraction, rng)
		assignBias(n, cfg.BiasedFraction, cfg.MaxICMPBiasMs, rng)
		n.Fwd = randomForwardingModel(rng)
		n.connectivity = 1.0
		if rng.Float64() < cfg.HubFraction {
			n.connectivity = 0.35 + rng.Float64()*0.25
		}
		nodes[i] = n
	}

	t := &Topology{Nodes: nodes, rtt: make([][]float64, cfg.N)}
	for i := range t.rtt {
		t.rtt[i] = make([]float64, cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			base := geo.MinRTTMs(nodes[i].Coord, nodes[j].Coord)
			conn := nodes[i].connectivity * nodes[j].connectivity
			infl := 1 + conn*lognormal(cfg.InflationMu, cfg.InflationSigma, rng)
			rtt := base*infl + nodes[i].AccessMs + nodes[j].AccessMs
			// Nothing is faster than a LAN hop.
			if rtt < 0.2 {
				rtt = 0.2
			}
			t.rtt[i][j] = rtt
			t.rtt[j][i] = rtt
		}
	}
	return t, nil
}

func pickRegion(regions []geo.Region, rng *rand.Rand) geo.Region {
	x := rng.Float64()
	var acc float64
	for _, r := range regions {
		acc += r.Weight
		if x < acc {
			return r
		}
	}
	return regions[len(regions)-1]
}

func scatter(r geo.Region, rng *rand.Rand) geo.Coord {
	c := geo.Coord{
		Lat: r.Center.Lat + rng.NormFloat64()*r.Spread/2,
		Lon: r.Center.Lon + rng.NormFloat64()*r.Spread/2,
	}
	if c.Lat > 89 {
		c.Lat = 89
	}
	if c.Lat < -89 {
		c.Lat = -89
	}
	for c.Lon > 180 {
		c.Lon -= 360
	}
	for c.Lon < -180 {
		c.Lon += 360
	}
	return c
}

func assignClass(n *Node, residentialFrac float64, rng *rand.Rand) {
	x := rng.Float64()
	switch {
	case x < residentialFrac:
		n.Class = Residential
		n.AccessMs = 2 + rng.Float64()*12 // DSL/cable last-mile RTT
		n.BandwidthKBps = 100 + rng.Float64()*2000
	case x < residentialFrac+(1-residentialFrac)*2/3:
		n.Class = Datacenter
		n.AccessMs = 0.1 + rng.Float64()*0.9
		n.BandwidthKBps = 5000 + rng.Float64()*45000
	default:
		n.Class = University
		n.AccessMs = 0.5 + rng.Float64()*3
		n.BandwidthKBps = 2000 + rng.Float64()*18000
	}
}

func assignBias(n *Node, biasedFrac, maxICMP float64, rng *rand.Rand) {
	if rng.Float64() >= biasedFrac {
		return
	}
	n.Biased = true
	// Most biased networks shift probes by a few ms; a tail shifts by tens
	// of ms, in either direction (Figure 5 shows -60..+100 ms). The bulk
	// must stay small or Figure 3's 91%-within-10% result could not
	// coexist with Figure 5's 35% abnormal networks.
	mag := expRand(3, rng)
	if mag > maxICMP {
		mag = maxICMP
	}
	if rng.Intn(2) == 0 {
		mag = -mag
	}
	n.ICMPBiasMs = mag
	// TCP bias correlates loosely with ICMP bias but is distinct, so that
	// ICMP- and TCP-based forwarding-delay estimates visibly disagree.
	n.TCPBiasMs = mag*0.5 + rng.NormFloat64()*3
}

func lognormal(mu, sigma float64, rng *rand.Rand) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

func expRand(mean float64, rng *rand.Rand) float64 {
	return rng.ExpFloat64() * mean
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Nodes) }

// RTT returns the ground-truth Tor-path round-trip time between nodes i and
// j in milliseconds. It panics on out-of-range IDs, matching slice semantics.
func (t *Topology) RTT(i, j NodeID) float64 { return t.rtt[i][j] }

// Node returns the node with the given ID, or nil if out of range.
func (t *Topology) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(t.Nodes) {
		return nil
	}
	return t.Nodes[id]
}

// RTTMatrix returns a copy of the ground-truth matrix in milliseconds.
func (t *Topology) RTTMatrix() [][]float64 {
	out := make([][]float64, len(t.rtt))
	for i := range t.rtt {
		out[i] = append([]float64(nil), t.rtt[i]...)
	}
	return out
}

// OverrideRTT replaces the ground-truth RTT for a pair; tests use this to
// construct exact scenarios.
func (t *Topology) OverrideRTT(i, j NodeID, ms float64) {
	t.rtt[i][j] = ms
	t.rtt[j][i] = ms
}
