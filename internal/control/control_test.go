package control

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"ting/internal/client"
	"ting/internal/directory"
	"ting/internal/echo"
	"ting/internal/link"
	"ting/internal/onion"
	"ting/internal/relay"
)

type memExitDialer struct{}

func (memExitDialer) DialStream(target string) (io.ReadWriteCloser, error) {
	if target != "echo" {
		return nil, fmt.Errorf("unknown target %q", target)
	}
	a, b := net.Pipe()
	go echo.Handle(b)
	return a, nil
}

// testEnv runs relays on a PipeNet and a control+data server on loopback
// TCP.
type testEnv struct {
	srv         *Server
	controlAddr string
	dataAddr    string
	reg         *directory.Registry
}

func newTestEnv(t *testing.T, nRelays int, password string) *testEnv {
	t.Helper()
	pn := link.NewPipeNet()
	reg := directory.NewRegistry()
	for i := 0; i < nRelays; i++ {
		name := fmt.Sprintf("r%d", i)
		id, err := onion.NewIdentity(rand.New(rand.NewSource(int64(2000 + i))))
		if err != nil {
			t.Fatal(err)
		}
		ln, err := pn.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := relay.New(relay.Config{
			Nickname: name, Addr: name, Identity: id,
			Listener: ln, RelayDialer: pn, ExitDialer: memExitDialer{},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		t.Cleanup(func() { r.Close() })
		if err := reg.Publish(&directory.Descriptor{
			Nickname: name, Addr: name, OnionKey: id.Public(),
			BandwidthKBps: 100, Exit: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := client.New(client.Config{Dialer: pn, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Client: cl, Registry: reg, Password: password})
	if err != nil {
		t.Fatal(err)
	}
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeControl(ctrlLn)
	go srv.ServeData(dataLn)
	t.Cleanup(func() { srv.Close() })
	return &testEnv{
		srv:         srv,
		controlAddr: ctrlLn.Addr().String(),
		dataAddr:    dataLn.Addr().String(),
		reg:         reg,
	}
}

func dialAuthed(t *testing.T, env *testEnv, password string) *Conn {
	t.Helper()
	c, err := Dial(env.controlAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Authenticate(password); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAuthRequired(t *testing.T) {
	env := newTestEnv(t, 2, "sekrit")
	c, err := Dial(env.controlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExtendCircuit([]string{"r0", "r1"}); err == nil {
		t.Error("unauthenticated EXTENDCIRCUIT accepted")
	}
	if err := c.Authenticate("wrong"); err == nil {
		t.Error("wrong password accepted")
	}
	if err := c.Authenticate("sekrit"); err != nil {
		t.Errorf("correct password rejected: %v", err)
	}
}

func TestExtendAndCloseCircuit(t *testing.T) {
	env := newTestEnv(t, 3, "")
	c := dialAuthed(t, env, "")

	id, err := c.ExtendCircuit([]string{"r0", "r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 0 {
		t.Errorf("circuit id %d", id)
	}
	status, err := c.GetInfo("circuit-status")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(status, "\n")
	if !strings.Contains(joined, "r0,r1,r2") {
		t.Errorf("circuit-status = %q", joined)
	}
	if err := c.CloseCircuit(id); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseCircuit(id); err == nil {
		t.Error("double close accepted")
	}
	if _, err := c.ExtendCircuit([]string{"r0", "ghost"}); err == nil {
		t.Error("unknown relay accepted")
	}
	if _, err := c.ExtendCircuit([]string{"r0"}); err == nil {
		t.Error("one-hop circuit accepted")
	}
	if _, err := c.ExtendCircuit(nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestConsensusOverControlPort(t *testing.T) {
	env := newTestEnv(t, 3, "")
	c := dialAuthed(t, env, "")
	reg, err := c.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 {
		t.Errorf("consensus has %d relays, want 3", reg.Len())
	}
	if _, ok := reg.Lookup("r1"); !ok {
		t.Error("r1 missing from consensus")
	}
}

func TestGetInfoUnknownKey(t *testing.T) {
	env := newTestEnv(t, 2, "")
	c := dialAuthed(t, env, "")
	if _, err := c.GetInfo("version"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestDataPortEcho(t *testing.T) {
	env := newTestEnv(t, 2, "")
	c := dialAuthed(t, env, "")
	id, err := c.ExtendCircuit([]string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := DialStream(env.dataAddr, id, "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ec := echo.NewClient(conn)
	rtt, err := ec.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
	rtts, err := ec.ProbeN(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 10 {
		t.Errorf("%d probes", len(rtts))
	}
}

func TestDataPortErrors(t *testing.T) {
	env := newTestEnv(t, 2, "")
	if _, err := DialStream(env.dataAddr, 999, "echo"); err == nil {
		t.Error("attach to unknown circuit accepted")
	}
	c := dialAuthed(t, env, "")
	id, err := c.ExtendCircuit([]string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialStream(env.dataAddr, id, "no-such-target"); err == nil {
		t.Error("attach to unknown target accepted")
	}

	// Malformed first line.
	raw, err := net.Dial("tcp", env.dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	fmt.Fprintf(raw, "GIBBERISH\n")
	buf := make([]byte, 64)
	n, _ := raw.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "500") {
		t.Errorf("malformed attach answered %q", buf[:n])
	}
}

func TestCircuitEvents(t *testing.T) {
	env := newTestEnv(t, 2, "")
	c := dialAuthed(t, env, "")
	if err := c.SetEvents("CIRC"); err != nil {
		t.Fatal(err)
	}
	id, err := c.ExtendCircuit([]string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-c.Events:
		if !strings.Contains(ev, "BUILT") {
			t.Errorf("event %q", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no BUILT event")
	}
	if err := c.CloseCircuit(id); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-c.Events:
		if !strings.Contains(ev, "CLOSED") {
			t.Errorf("event %q", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no CLOSED event")
	}
}

func TestQuit(t *testing.T) {
	env := newTestEnv(t, 2, "")
	c := dialAuthed(t, env, "")
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCommand(t *testing.T) {
	env := newTestEnv(t, 2, "")
	conn, err := net.Dial("tcp", env.controlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "AUTHENTICATE\r\nFROBNICATE\r\n")
	buf := make([]byte, 256)
	time.Sleep(100 * time.Millisecond)
	n, _ := conn.Read(buf)
	out := string(buf[:n])
	if !strings.Contains(out, "250") {
		t.Errorf("no auth OK in %q", out)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cl, _ := client.New(client.Config{Dialer: link.NewPipeNet()})
	if _, err := NewServer(ServerConfig{Client: cl}); err == nil {
		t.Error("missing registry accepted")
	}
}

func TestAutoCircuit(t *testing.T) {
	env := newTestEnv(t, 5, "")
	c := dialAuthed(t, env, "")
	id, err := c.ExtendCircuit([]string{"auto"})
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.GetInfo("circuit-status")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(status, "\n")
	if !strings.Contains(joined, fmt.Sprintf("%d BUILT", id)) {
		t.Errorf("auto circuit missing from status: %q", joined)
	}
	// Auto circuits carry streams like any other.
	conn, err := DialStream(env.dataAddr, id, "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := echo.NewClient(conn).Probe(); err != nil {
		t.Fatal(err)
	}

	// Explicit length.
	id4, err := c.ExtendCircuit([]string{"auto/4"})
	if err != nil {
		t.Fatal(err)
	}
	status, _ = c.GetInfo("circuit-status")
	found := false
	for _, line := range status {
		if strings.HasPrefix(line, fmt.Sprintf("%d BUILT ", id4)) {
			hops := strings.Split(strings.Fields(line)[2], ",")
			if len(hops) != 4 {
				t.Errorf("auto/4 built %d hops: %q", len(hops), line)
			}
			found = true
		}
	}
	if !found {
		t.Error("auto/4 circuit not in status")
	}

	// Bad specs.
	for _, bad := range []string{"auto/1", "auto/x", "autoxyz"} {
		if _, err := c.ExtendCircuit([]string{bad}); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
