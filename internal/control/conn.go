package control

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ting/internal/directory"
)

// Conn is a controller-side control connection — the role Stem played for
// the paper's measurement client.
type Conn struct {
	conn net.Conn
	wmu  sync.Mutex

	replies chan reply
	// Events receives asynchronous "650 …" lines (after SetEvents). The
	// channel is buffered; stale events are dropped rather than blocking
	// the reader.
	Events chan string

	closeOnce sync.Once
	closed    chan struct{}

	// Timeout bounds each request/response exchange. Default 15s.
	Timeout time.Duration
}

type reply struct {
	code  int
	text  string
	multi []string
}

// Dial connects to a control port.
func Dial(addr string) (*Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: dial: %w", err)
	}
	return NewConn(conn), nil
}

// NewConn wraps an established connection as a controller.
func NewConn(conn net.Conn) *Conn {
	c := &Conn{
		conn:    conn,
		replies: make(chan reply, 4),
		Events:  make(chan string, 64),
		closed:  make(chan struct{}),
		Timeout: 15 * time.Second,
	}
	go c.readLoop()
	return c
}

// Close shuts the controller connection down.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.conn.Close()
	})
	return err
}

func (c *Conn) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var multi []string
	inMulti := false
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		switch {
		case inMulti:
			if line == "." {
				inMulti = false
				// The terminating "250 OK" arrives next and carries the
				// accumulated body.
				continue
			}
			multi = append(multi, line)
		case strings.HasPrefix(line, "650 "):
			select {
			case c.Events <- strings.TrimPrefix(line, "650 "):
			default:
			}
		case strings.HasPrefix(line, "250+"):
			inMulti = true
			multi = nil
		default:
			code := 0
			text := line
			if len(line) >= 3 {
				if n, err := strconv.Atoi(line[:3]); err == nil {
					code = n
					text = strings.TrimSpace(line[3:])
				}
			}
			r := reply{code: code, text: text, multi: multi}
			multi = nil
			select {
			case c.replies <- r:
			case <-c.closed:
				return
			}
		}
	}
}

func (c *Conn) roundTrip(cmd string) (reply, error) {
	c.wmu.Lock()
	_, err := fmt.Fprintf(c.conn, "%s\r\n", cmd)
	c.wmu.Unlock()
	if err != nil {
		return reply{}, fmt.Errorf("control: send %q: %w", cmd, err)
	}
	select {
	case r := <-c.replies:
		return r, nil
	case <-c.closed:
		return reply{}, errors.New("control: connection closed")
	case <-time.After(c.Timeout):
		return reply{}, fmt.Errorf("control: timeout awaiting reply to %q", cmd)
	}
}

func (c *Conn) expect250(cmd string) (reply, error) {
	r, err := c.roundTrip(cmd)
	if err != nil {
		return r, err
	}
	if r.code != 250 {
		return r, fmt.Errorf("control: %s: %d %s", strings.Fields(cmd)[0], r.code, r.text)
	}
	return r, nil
}

// Authenticate presents the (possibly empty) password.
func (c *Conn) Authenticate(password string) error {
	cmd := "AUTHENTICATE"
	if password != "" {
		cmd = fmt.Sprintf("AUTHENTICATE %q", password)
	}
	_, err := c.expect250(cmd)
	return err
}

// ExtendCircuit builds a new circuit through the named relays and returns
// its controller-side ID.
func (c *Conn) ExtendCircuit(nicknames []string) (int, error) {
	if len(nicknames) == 0 {
		return 0, errors.New("control: empty path")
	}
	r, err := c.expect250("EXTENDCIRCUIT 0 " + strings.Join(nicknames, ","))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(r.text)
	if len(fields) != 2 || fields[0] != "EXTENDED" {
		return 0, fmt.Errorf("control: unexpected reply %q", r.text)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, fmt.Errorf("control: bad circuit id %q", fields[1])
	}
	return id, nil
}

// CloseCircuit tears a circuit down.
func (c *Conn) CloseCircuit(id int) error {
	_, err := c.expect250(fmt.Sprintf("CLOSECIRCUIT %d", id))
	return err
}

// SetEvents enables (or with no names, disables) async CIRC events.
func (c *Conn) SetEvents(names ...string) error {
	_, err := c.expect250(strings.TrimSpace("SETEVENTS " + strings.Join(names, " ")))
	return err
}

// GetInfo fetches a multiline info key, returning the body lines.
func (c *Conn) GetInfo(key string) ([]string, error) {
	r, err := c.expect250("GETINFO " + key)
	if err != nil {
		return nil, err
	}
	return r.multi, nil
}

// Consensus fetches and parses ns/all.
func (c *Conn) Consensus() (*directory.Registry, error) {
	lines, err := c.GetInfo("ns/all")
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errors.New("control: empty consensus")
	}
	// First line is "ns/all=" marker followed by the document.
	doc := strings.Join(lines, "\n")
	doc = strings.TrimPrefix(doc, "ns/all=\n")
	doc = strings.TrimPrefix(doc, "ns/all=")
	return directory.DecodeConsensus(strings.NewReader(doc))
}

// Quit ends the session politely.
func (c *Conn) Quit() error {
	_, err := c.roundTrip("QUIT")
	if err == nil {
		c.Close()
	}
	return err
}

// DialStream connects to the data port and attaches a raw byte stream to
// circuit id toward target. The returned connection carries application
// bytes end to end.
func DialStream(dataAddr string, circID int, target string) (net.Conn, error) {
	conn, err := net.Dial("tcp", dataAddr)
	if err != nil {
		return nil, fmt.Errorf("control: dial data port: %w", err)
	}
	if _, err := fmt.Fprintf(conn, "CONNECT %s VIA %d\n", target, circID); err != nil {
		conn.Close()
		return nil, fmt.Errorf("control: attach: %w", err)
	}
	status, err := bufio.NewReader(&oneByteReader{c: conn}).ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("control: attach reply: %w", err)
	}
	status = strings.TrimSpace(status)
	if !strings.HasPrefix(status, "250") {
		conn.Close()
		return nil, fmt.Errorf("control: attach refused: %s", status)
	}
	return conn, nil
}

// oneByteReader prevents bufio from reading past the status line into the
// application byte stream.
type oneByteReader struct{ c net.Conn }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return r.c.Read(p)
}
