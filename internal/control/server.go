// Package control implements mintor's control-port protocol: the interface
// Ting drives instead of the Stem controller library the paper used (§3.1).
//
// The protocol is a line-oriented subset of Tor's control spec:
//
//	AUTHENTICATE [password]        → 250 OK
//	EXTENDCIRCUIT 0 r1,r2,...      → 250 EXTENDED <circID>
//	CLOSECIRCUIT <circID>          → 250 OK
//	GETINFO ns/all                 → 250+ consensus … .
//	GETINFO circuit-status         → 250+ one line per circuit … .
//	SETEVENTS [CIRC]               → 250 OK, then async "650 CIRC …" lines
//	QUIT                           → 250 closing
//
// Streams attach through a companion data port: the application connects
// and sends "CONNECT <target> VIA <circID>\n"; after the "250 OK" line the
// connection bridges raw bytes to a stream on that circuit. This replaces
// Tor's SOCKS-plus-ATTACHSTREAM dance with an explicit binding, which is
// all Ting needs.
package control

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"ting/internal/client"
	"ting/internal/directory"
)

// ServerConfig configures a control server.
type ServerConfig struct {
	// Client is the onion proxy the controller drives. Required.
	Client *client.Client
	// Registry resolves relay nicknames. Required.
	Registry *directory.Registry
	// Password, if nonempty, must be presented by AUTHENTICATE.
	Password string
	// Logf, if non-nil, receives debug logs.
	Logf func(format string, args ...any)
}

// Server exposes an onion proxy over the control protocol.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	nextCirc int
	circuits map[int]*client.Circuit
	closed   bool
	lns      []net.Listener
}

// NewServer creates a control server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Client == nil {
		return nil, errors.New("control: config missing Client")
	}
	if cfg.Registry == nil {
		return nil, errors.New("control: config missing Registry")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{cfg: cfg, nextCirc: 1, circuits: make(map[int]*client.Circuit)}, nil
}

// ServeControl accepts control sessions on ln until it closes.
func (s *Server) ServeControl(ln net.Listener) error {
	s.track(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handleControl(conn)
	}
}

// ServeData accepts stream-attach connections on ln until it closes.
func (s *Server) ServeData(ln net.Listener) error {
	s.track(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handleData(conn)
	}
}

func (s *Server) track(ln net.Listener) {
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
}

// Close shuts down listeners and every circuit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	circs := s.circuits
	s.circuits = make(map[int]*client.Circuit)
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range circs {
		c.Close()
	}
	return nil
}

// session is one control connection.
type session struct {
	s      *Server
	conn   net.Conn
	wmu    sync.Mutex
	authed bool
	events bool
}

func (s *Server) handleControl(conn net.Conn) {
	sess := &session{s: s, conn: conn}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if quit := sess.dispatch(line); quit {
			return
		}
	}
}

func (sess *session) writeLine(line string) {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	fmt.Fprintf(sess.conn, "%s\r\n", line)
}

func (sess *session) writeMulti(header string, body []string) {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	fmt.Fprintf(sess.conn, "250+%s\r\n", header)
	for _, l := range body {
		fmt.Fprintf(sess.conn, "%s\r\n", l)
	}
	fmt.Fprintf(sess.conn, ".\r\n250 OK\r\n")
}

func (sess *session) dispatch(line string) (quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]

	if cmd == "QUIT" {
		sess.writeLine("250 closing connection")
		return true
	}
	if cmd == "AUTHENTICATE" {
		sess.handleAuth(args)
		return false
	}
	if !sess.authed {
		sess.writeLine("514 authentication required")
		return false
	}
	switch cmd {
	case "EXTENDCIRCUIT":
		sess.handleExtendCircuit(args)
	case "CLOSECIRCUIT":
		sess.handleCloseCircuit(args)
	case "GETINFO":
		sess.handleGetInfo(args)
	case "SETEVENTS":
		sess.events = len(args) > 0 && strings.EqualFold(args[0], "CIRC")
		sess.writeLine("250 OK")
	default:
		sess.writeLine(fmt.Sprintf("510 unrecognized command %q", cmd))
	}
	return false
}

func (sess *session) handleAuth(args []string) {
	given := ""
	if len(args) > 0 {
		given = strings.Trim(args[0], `"`)
	}
	if sess.s.cfg.Password != "" && given != sess.s.cfg.Password {
		sess.writeLine("515 bad authentication")
		return
	}
	sess.authed = true
	sess.writeLine("250 OK")
}

func (sess *session) handleExtendCircuit(args []string) {
	// Only "EXTENDCIRCUIT 0 <path>" (build new) is supported, as in Ting.
	// The path may be "auto" or "auto/<length>" for default
	// bandwidth-weighted selection.
	if len(args) != 2 || args[0] != "0" {
		sess.writeLine("512 usage: EXTENDCIRCUIT 0 nick1,nick2,...|auto[/len]")
		return
	}
	if spec, ok := strings.CutPrefix(args[1], "auto"); ok {
		length := 3
		if rest, ok := strings.CutPrefix(spec, "/"); ok {
			n, err := strconv.Atoi(rest)
			if err != nil || n < 2 {
				sess.writeLine("512 bad auto length")
				return
			}
			length = n
		} else if spec != "" {
			sess.writeLine("512 usage: EXTENDCIRCUIT 0 auto[/len]")
			return
		}
		circ, err := sess.s.cfg.Client.BuildAutoCircuit(sess.s.cfg.Registry, length)
		if err != nil {
			sess.writeLine("551 circuit build failed: " + flat(err.Error()))
			return
		}
		id := sess.s.register(circ)
		sess.writeLine(fmt.Sprintf("250 EXTENDED %d", id))
		if sess.events {
			sess.writeLine(fmt.Sprintf("650 CIRC %d BUILT", id))
		}
		return
	}
	names := strings.Split(args[1], ",")
	path := make([]*directory.Descriptor, 0, len(names))
	for _, n := range names {
		d, ok := sess.s.cfg.Registry.Lookup(strings.TrimSpace(n))
		if !ok {
			sess.writeLine(fmt.Sprintf("552 unknown relay %q", n))
			return
		}
		path = append(path, d)
	}
	circ, err := sess.s.cfg.Client.BuildCircuit(path)
	if err != nil {
		sess.writeLine("551 circuit build failed: " + flat(err.Error()))
		return
	}
	id := sess.s.register(circ)
	sess.writeLine(fmt.Sprintf("250 EXTENDED %d", id))
	if sess.events {
		sess.writeLine(fmt.Sprintf("650 CIRC %d BUILT", id))
	}
}

func (s *Server) register(circ *client.Circuit) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextCirc
	s.nextCirc++
	s.circuits[id] = circ
	return id
}

func (s *Server) circuit(id int) *client.Circuit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.circuits[id]
}

func (sess *session) handleCloseCircuit(args []string) {
	if len(args) != 1 {
		sess.writeLine("512 usage: CLOSECIRCUIT <id>")
		return
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		sess.writeLine("512 bad circuit id")
		return
	}
	s := sess.s
	s.mu.Lock()
	circ := s.circuits[id]
	delete(s.circuits, id)
	s.mu.Unlock()
	if circ == nil {
		sess.writeLine(fmt.Sprintf("552 unknown circuit %d", id))
		return
	}
	circ.Close()
	sess.writeLine("250 OK")
	if sess.events {
		sess.writeLine(fmt.Sprintf("650 CIRC %d CLOSED", id))
	}
}

func (sess *session) handleGetInfo(args []string) {
	if len(args) != 1 {
		sess.writeLine("512 usage: GETINFO <key>")
		return
	}
	switch args[0] {
	case "ns/all":
		var sb strings.Builder
		if err := sess.s.cfg.Registry.EncodeConsensus(&sb); err != nil {
			sess.writeLine("551 " + flat(err.Error()))
			return
		}
		lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
		sess.writeMulti("ns/all=", lines)
	case "circuit-status":
		s := sess.s
		s.mu.Lock()
		var lines []string
		for id, circ := range s.circuits {
			names := make([]string, 0, circ.Len())
			for _, d := range circ.Path() {
				names = append(names, d.Nickname)
			}
			lines = append(lines, fmt.Sprintf("%d BUILT %s", id, strings.Join(names, ",")))
		}
		s.mu.Unlock()
		sess.writeMulti("circuit-status=", lines)
	default:
		sess.writeLine(fmt.Sprintf("552 unknown key %q", args[0]))
	}
}

// handleData bridges one data-port connection to a circuit stream.
func (s *Server) handleData(conn net.Conn) {
	defer conn.Close()
	rd := bufio.NewReader(conn)
	line, err := rd.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 4 || !strings.EqualFold(fields[0], "CONNECT") || !strings.EqualFold(fields[2], "VIA") {
		fmt.Fprintf(conn, "500 usage: CONNECT <target> VIA <circID>\r\n")
		return
	}
	id, err := strconv.Atoi(fields[3])
	if err != nil {
		fmt.Fprintf(conn, "500 bad circuit id\r\n")
		return
	}
	circ := s.circuit(id)
	if circ == nil {
		fmt.Fprintf(conn, "552 unknown circuit %d\r\n", id)
		return
	}
	st, err := circ.OpenStream(fields[1])
	if err != nil {
		fmt.Fprintf(conn, "551 %s\r\n", flat(err.Error()))
		return
	}
	defer st.Close()
	fmt.Fprintf(conn, "250 OK\r\n")

	done := make(chan struct{}, 2)
	go func() {
		// Client → circuit. Any bytes buffered in the bufio reader first.
		if n := rd.Buffered(); n > 0 {
			buf := make([]byte, n)
			if _, err := io.ReadFull(rd, buf); err == nil {
				if _, err := st.Write(buf); err != nil {
					done <- struct{}{}
					return
				}
			}
		}
		_, _ = io.Copy(st, conn)
		done <- struct{}{}
	}()
	go func() {
		_, _ = io.Copy(conn, st)
		done <- struct{}{}
	}()
	<-done
}

// flat collapses newlines so an error fits one protocol line.
func flat(s string) string { return strings.ReplaceAll(s, "\n", " / ") }
