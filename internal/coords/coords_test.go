package coords

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ting/internal/inet"
)

// metricWorld generates an n-node topology with (near) zero routing
// inflation and no hub nodes: RTTs are geography plus access delays, an
// almost perfectly embeddable metric space. The epsilon values matter —
// inet treats zero config fields as "use the default".
func metricWorld(t *testing.T, n int, seed int64) *inet.Topology {
	t.Helper()
	topo, err := inet.Generate(inet.Config{
		N: n, Seed: seed,
		InflationSigma: 1e-9, HubFraction: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// sampleObs draws m distinct random pairs with ground-truth RTTs.
func sampleObs(topo *inet.Topology, m int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	n := topo.N()
	seen := make(map[[2]int]bool, m)
	obs := make([]Observation, 0, m)
	for len(obs) < m {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		obs = append(obs, Observation{I: i, J: j, RTTMs: topo.RTT(inet.NodeID(i), inet.NodeID(j))})
	}
	return obs
}

// medianRelErr scores predictions on every pair NOT in obs.
func medianRelErr(m *Model, topo *inet.Topology, obs []Observation) float64 {
	used := make(map[[2]int]bool, len(obs))
	for _, o := range obs {
		used[[2]int{o.I, o.J}] = true
	}
	var errs []float64
	n := topo.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if used[[2]int{i, j}] {
				continue
			}
			truth := topo.RTT(inet.NodeID(i), inet.NodeID(j))
			errs = append(errs, math.Abs(m.Predict(i, j)-truth)/truth)
		}
	}
	if len(errs) == 0 {
		return 0
	}
	// nearest-rank median
	for a := range errs {
		for b := a + 1; b < len(errs); b++ {
			if errs[b] < errs[a] {
				errs[a], errs[b] = errs[b], errs[a]
			}
		}
	}
	return errs[len(errs)/2]
}

// TestConvergesOnMetricTopology: on an embeddable world, fitting from ~15%
// of pairs must predict the rest tightly. This is the package's core
// promise; the threshold is loose against the observed ~4% so topology
// tweaks don't flap it.
func TestConvergesOnMetricTopology(t *testing.T) {
	topo := metricWorld(t, 80, 2)
	all := 80 * 79 / 2
	obs := sampleObs(topo, all*15/100, 3)
	m, err := New(80, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Fit(obs, 40)
	if got := medianRelErr(m, topo, obs); got > 0.10 {
		t.Errorf("median relative error %.3f on metric world, want ≤ 0.10", got)
	}
	if me := m.MedianError(); me > 0.5 {
		t.Errorf("median node error estimate %.3f after convergence", me)
	}
}

// TestDegradesGracefullyOnTIVWorld: the default world violates the
// triangle inequality on most pairs (§5.2.1 finds 69%), which no metric
// embedding can represent. The model must still land in a useful range —
// and must know it is worse (higher error estimates than the metric fit).
func TestDegradesGracefullyOnTIVWorld(t *testing.T) {
	topo, err := inet.Generate(inet.Config{N: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := 80 * 79 / 2
	obs := sampleObs(topo, all*15/100, 3)
	m, err := New(80, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Fit(obs, 40)
	if got := medianRelErr(m, topo, obs); got > 0.35 {
		t.Errorf("median relative error %.3f on TIV world, want ≤ 0.35", got)
	}

	metric := metricWorld(t, 80, 2)
	mobs := sampleObs(metric, all*15/100, 3)
	mm, _ := New(80, Config{Seed: 4})
	mm.Fit(mobs, 40)
	if m.MedianError() <= mm.MedianError() {
		t.Errorf("TIV-world error estimate %.3f not above metric-world %.3f — confidence would overstate",
			m.MedianError(), mm.MedianError())
	}
}

// TestFitDeterministic: equal seeds and observation sequences must give
// bitwise-equal models, which is what makes budgeted campaigns
// reproducible.
func TestFitDeterministic(t *testing.T) {
	topo := metricWorld(t, 40, 5)
	obs := sampleObs(topo, 150, 6)
	a, _ := New(40, Config{Seed: 7})
	b, _ := New(40, Config{Seed: 7})
	a.Fit(obs, 10)
	b.Fit(obs, 10)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			pa, ca := a.PredictWithConfidence(i, j)
			pb, cb := b.PredictWithConfidence(i, j)
			if pa != pb || ca != cb {
				t.Fatalf("pair (%d,%d): (%v,%v) vs (%v,%v) under equal seeds", i, j, pa, ca, pb, cb)
			}
		}
	}
	c, _ := New(40, Config{Seed: 8})
	c.Fit(obs, 10)
	diff := false
	for j := 1; j < 40 && !diff; j++ {
		if c.Predict(0, j) != a.Predict(0, j) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical models — seeding is dead")
	}
}

// TestObserveIgnoresGarbage: self-pairs and non-finite or non-positive
// RTTs must not move the model.
func TestObserveIgnoresGarbage(t *testing.T) {
	m, _ := New(4, Config{Seed: 1})
	before := m.Predict(0, 1)
	m.Observe(2, 2, 10)
	m.Observe(0, 1, 0)
	m.Observe(0, 1, -5)
	m.Observe(0, 1, math.NaN())
	m.Observe(0, 1, math.Inf(1))
	if got := m.Predict(0, 1); got != before {
		t.Errorf("garbage observations moved prediction %v → %v", before, got)
	}
	if m.Observations(0) != 0 || m.Observations(2) != 0 {
		t.Error("garbage observations counted")
	}
}

// TestConfidenceLifecycle: unobserved pairs score 0; after a convergent
// fit, confidence rises; diagonal predicts (0, 1).
func TestConfidenceLifecycle(t *testing.T) {
	m, _ := New(10, Config{Seed: 1})
	if c := m.Confidence(0, 1); c != 0 {
		t.Errorf("fresh model confidence %v, want 0 (errors at init ceiling)", c)
	}
	if rtt, conf := m.PredictWithConfidence(3, 3); rtt != 0 || conf != 1 {
		t.Errorf("diagonal = (%v, %v), want (0, 1)", rtt, conf)
	}
	topo := metricWorld(t, 10, 3)
	var obs []Observation
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			obs = append(obs, Observation{I: i, J: j, RTTMs: topo.RTT(inet.NodeID(i), inet.NodeID(j))})
		}
	}
	m.Fit(obs, 40)
	if c := m.Confidence(0, 1); c < 0.5 {
		t.Errorf("confidence %v after full-information fit, want ≥ 0.5", c)
	}
	if m.Predict(0, 1) < 0.2 {
		t.Error("prediction below the LAN floor")
	}
}

// TestConcurrentFitAndRead is the -race test: Fit/Observe race against
// every reader; nothing may tear or deadlock.
func TestConcurrentFitAndRead(t *testing.T) {
	topo := metricWorld(t, 20, 9)
	obs := sampleObs(topo, 120, 10)
	m, _ := New(20, Config{Seed: 11})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 50; k++ {
				m.Fit(obs, 2)
				m.Observe(rng.Intn(20), rng.Intn(20), 1+rng.Float64()*100)
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i, j := rng.Intn(20), rng.Intn(20)
				if v, c := m.PredictWithConfidence(i, j); i != j && (v < 0 || c < 0 || c > 1) {
					t.Errorf("torn read: rtt %v conf %v", v, c)
					return
				}
				m.NodeError(i)
				m.MedianError()
				_ = m.String()
			}
		}(int64(r))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestNewRejectsTinyModels pins the constructor's contract.
func TestNewRejectsTinyModels(t *testing.T) {
	if _, err := New(1, Config{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(0, Config{}); err == nil {
		t.Error("n=0 accepted")
	}
}
