// Package coords implements a Vivaldi-style network coordinate system:
// a decentralized spring-relaxation embedding (Dabek et al., SIGCOMM 2004)
// fitted from a sparse sample of measured pair RTTs, which then predicts
// every unmeasured pair. This is what breaks the N² wall (ROADMAP item 3):
// an all-pairs campaign over N relays costs N·(N−1)/2 measured pairs, but
// an embedding fitted from O(N·k) pairs completes the rest — "On the Use
// of Latency Graphs for the Construction of Tor Circuits" and "The
// Evaluation of Circuit Selection Methods on Tor" both build circuits from
// exactly this kind of incomplete latency knowledge.
//
// The model is the height-vector variant: each node carries a position in
// R^dim plus a non-negative height. Distance is
//
//	d(i,j) = ‖x_i − x_j‖ + h_i + h_j
//
// The Euclidean part captures propagation geography; the heights capture
// access-link delay, which every path in and out of a node pays regardless
// of direction (the inet model adds AccessMs to both endpoints of every
// pair, and real residential relays do the same).
//
// On top of the embedding sits a per-node multiplicative residual scale:
// after the springs settle, each node's scale is nudged by the median
// ratio of its measured RTTs to its embedded distances, and predictions
// are d(i,j)·√(s_i·s_j). This soaks up node-level systematic error the
// metric embedding cannot express — well-connected hub networks whose
// paths see little routing inflation (the very nodes that create triangle
// inequality violations) predict systematically low without it.
//
// Every node also tracks a local relative error estimate e_i (the EWMA of
// |prediction − measurement|/measurement on its own samples, the classic
// Vivaldi confidence weight). These drive three things: the adaptive
// timestep of the spring update, the per-cell confidence attached to
// predictions, and the active-learning scan scheduler (measure the pairs
// whose endpoints the embedding is least sure about first).
package coords

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Config parameterizes a Model. Zero values select the defaults documented
// on each field.
type Config struct {
	// Dim is the Euclidean dimension of the embedding (heights live on an
	// extra implicit axis). Default 5 — past ~5 dimensions the marginal
	// accuracy gain on Internet latency spaces is negligible (Dabek et
	// al. §5.4), and every dimension costs fit time.
	Dim int
	// CC is the timestep constant (δ = CC·w): how far a node moves toward
	// satisfying one measurement. Default 0.25.
	CC float64
	// CE is the error-EWMA constant: how fast the local error estimate
	// tracks new samples. Default 0.25.
	CE float64
	// Seed drives initial placement and fit-order shuffling. Equal seeds
	// and equal observation sequences give bitwise-equal models.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Dim <= 0 {
		c.Dim = 5
	}
	if c.CC <= 0 {
		c.CC = 0.25
	}
	if c.CE <= 0 {
		c.CE = 0.25
	}
}

// Observation is one measured pair RTT, by node index.
type Observation struct {
	I, J  int
	RTTMs float64
}

const (
	// initError is a fresh node's relative error estimate: deliberately
	// above 1 so Confidence clamps to 0 until the node has been observed.
	initError = 1.5
	// maxError caps the error estimate so one pathological sample cannot
	// take a node's weight to the point of numeric trouble.
	maxError = 2.0
	// minRTTMs floors predictions: nothing is faster than a LAN hop, and
	// a spring overshoot must not predict a negative RTT.
	minRTTMs = 0.2
	// scaleLo/scaleHi clamp the per-node residual scales; the correction
	// layer fixes node-level bias, it must not be able to fight the
	// embedding wholesale.
	scaleLo = 0.25
	scaleHi = 4.0
)

// Model is a fitted (or fitting) coordinate system over n nodes, indexed
// 0..n−1 — the same indices as the Matrix the scanner is filling.
//
// All methods are safe for concurrent use: reads (Predict, Confidence,
// NodeError) take a read lock, mutations (Observe, Fit) a write lock, so a
// scanner can keep fitting while readers complete cells.
type Model struct {
	mu sync.RWMutex

	dim    int
	cc, ce float64

	pos    []float64 // n×dim, flat
	height []float64 // n, ≥ 0
	errEst []float64 // n, relative error estimates
	scale  []float64 // n, multiplicative residual corrections
	nobs   []int     // n, observations seen per node

	rng *rand.Rand

	// scratch for the spring update, reused so Observe never allocates.
	dir []float64
}

// New creates an unfitted model over n nodes. Initial positions are tiny
// seeded random offsets from the origin (identical positions give the
// springs no gradient to descend), heights zero, scales one, errors at
// their "know nothing" maximum.
func New(n int, cfg Config) (*Model, error) {
	if n < 2 {
		return nil, errors.New("coords: model needs at least two nodes")
	}
	cfg.setDefaults()
	m := &Model{
		dim:    cfg.Dim,
		cc:     cfg.CC,
		ce:     cfg.CE,
		pos:    make([]float64, n*cfg.Dim),
		height: make([]float64, n),
		errEst: make([]float64, n),
		scale:  make([]float64, n),
		nobs:   make([]int, n),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		dir:    make([]float64, cfg.Dim),
	}
	for i := range m.pos {
		m.pos[i] = m.rng.Float64() - 0.5
	}
	for i := 0; i < n; i++ {
		m.errEst[i] = initError
		m.scale[i] = 1
	}
	return m, nil
}

// N is the number of nodes.
func (m *Model) N() int { return len(m.height) }

// Dim is the Euclidean dimension of the embedding.
func (m *Model) Dim() int { return m.dim }

// rawDist is the height-vector distance without residual scales. Callers
// hold at least a read lock.
func (m *Model) rawDist(i, j int) float64 {
	var sq float64
	pi, pj := m.pos[i*m.dim:(i+1)*m.dim], m.pos[j*m.dim:(j+1)*m.dim]
	for k := 0; k < m.dim; k++ {
		d := pi[k] - pj[k]
		sq += d * d
	}
	return math.Sqrt(sq) + m.height[i] + m.height[j]
}

// Observe feeds one measured pair into the model and runs one symmetric
// spring update: both endpoints move toward satisfying the measurement,
// each weighted by its own confidence against the other's. It panics on
// out-of-range indices like the slice accesses it is; non-positive and
// non-finite RTTs are ignored (a failed measurement teaches nothing).
func (m *Model) Observe(i, j int, rttMs float64) {
	if i == j || rttMs <= 0 || math.IsNaN(rttMs) || math.IsInf(rttMs, 0) {
		return
	}
	m.mu.Lock()
	m.observeLocked(i, j, rttMs)
	m.mu.Unlock()
}

func (m *Model) observeLocked(i, j int, rttMs float64) {
	// The springs fit the residual-corrected target: predictions are
	// d·√(s_i·s_j), so the embedding itself should converge to
	// rtt/√(s_i·s_j). On the first fit rounds every scale is 1 and this
	// is the raw RTT.
	target := rttMs / math.Sqrt(m.scale[i]*m.scale[j])
	m.springLocked(i, j, target)
	m.springLocked(j, i, target)
	m.nobs[i]++
	m.nobs[j]++
}

// springLocked moves node a toward satisfying d(a,b) = target.
func (m *Model) springLocked(a, b int, target float64) {
	d := m.rawDist(a, b)
	// Confidence weight: how much a trusts this sample relative to its
	// own current estimate (Vivaldi eq. w = e_a/(e_a+e_b)).
	w := m.errEst[a] / (m.errEst[a] + m.errEst[b])

	// Update a's error estimate from the relative sample error.
	es := math.Abs(d-target) / target
	m.errEst[a] = es*m.ce*w + m.errEst[a]*(1-m.ce*w)
	if m.errEst[a] > maxError {
		m.errEst[a] = maxError
	}

	// Force along the height-vector unit direction: the spatial part and
	// the height share the displacement in proportion to their share of
	// the distance (Dabek et al. §5.4: the unit vector of a height
	// vector has height (h_a+h_b)/‖·‖).
	force := (target - d) * m.cc * w
	pa, pb := m.pos[a*m.dim:(a+1)*m.dim], m.pos[b*m.dim:(b+1)*m.dim]
	var spatial float64
	for k := 0; k < m.dim; k++ {
		m.dir[k] = pa[k] - pb[k]
		spatial += m.dir[k] * m.dir[k]
	}
	spatial = math.Sqrt(spatial)
	norm := spatial + m.height[a] + m.height[b]
	if norm <= 0 {
		// Coincident with zero heights: pick a seeded random direction so
		// the pair can separate.
		var sq float64
		for k := 0; k < m.dim; k++ {
			m.dir[k] = m.rng.NormFloat64()
			sq += m.dir[k] * m.dir[k]
		}
		spatial = math.Sqrt(sq)
		norm = spatial
		if norm == 0 {
			return
		}
	}
	if spatial > 0 {
		for k := 0; k < m.dim; k++ {
			pa[k] += force * m.dir[k] / norm
		}
	}
	m.height[a] += force * (m.height[a] + m.height[b]) / norm
	if m.height[a] < 0 {
		m.height[a] = 0
	}
}

// Fit runs `passes` spring-relaxation passes over obs (each pass visits
// every observation once, in a seeded shuffled order) and then refreshes
// the per-node residual scales from the settled embedding. Call it after
// each measurement batch; it is incremental — coordinates continue from
// where the last fit left them, so refitting after new observations is
// cheap and stable.
func (m *Model) Fit(obs []Observation, passes int) {
	if len(obs) == 0 || passes <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	order := make([]int, len(obs))
	for i := range order {
		order[i] = i
	}
	for p := 0; p < passes; p++ {
		m.rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, k := range order {
			o := obs[k]
			if o.I == o.J || o.RTTMs <= 0 || math.IsNaN(o.RTTMs) || math.IsInf(o.RTTMs, 0) {
				continue
			}
			m.observeLocked(o.I, o.J, o.RTTMs)
		}
	}
	m.updateScalesLocked(obs)
}

// updateScalesLocked nudges each node's residual scale by the median ratio
// of measured RTT to current prediction over the node's observations.
// Medians (not means) keep one TIV-heavy outlier pair from dragging a
// node's whole correction.
func (m *Model) updateScalesLocked(obs []Observation) {
	ratios := make([][]float64, m.N())
	for _, o := range obs {
		if o.I == o.J || o.RTTMs <= 0 || math.IsNaN(o.RTTMs) || math.IsInf(o.RTTMs, 0) {
			continue
		}
		pred := m.rawDist(o.I, o.J) * math.Sqrt(m.scale[o.I]*m.scale[o.J])
		if pred < minRTTMs {
			pred = minRTTMs
		}
		r := o.RTTMs / pred
		ratios[o.I] = append(ratios[o.I], r)
		ratios[o.J] = append(ratios[o.J], r)
	}
	for i, rs := range ratios {
		if len(rs) == 0 {
			continue
		}
		sort.Float64s(rs)
		med := rs[len(rs)/2]
		if len(rs)%2 == 0 {
			med = (rs[len(rs)/2-1] + rs[len(rs)/2]) / 2
		}
		s := m.scale[i] * med
		if s < scaleLo {
			s = scaleLo
		}
		if s > scaleHi {
			s = scaleHi
		}
		m.scale[i] = s
	}
}

// Predict returns the model's RTT estimate for a pair in milliseconds,
// floored at a LAN hop. It panics on out-of-range indices.
func (m *Model) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.predictLocked(i, j)
}

func (m *Model) predictLocked(i, j int) float64 {
	d := m.rawDist(i, j) * math.Sqrt(m.scale[i]*m.scale[j])
	if d < minRTTMs {
		d = minRTTMs
	}
	return d
}

// Confidence scores a prediction in [0, 1]: 1 − the mean of the two
// endpoints' relative error estimates, clamped. A pair touching a node the
// model has never observed scores 0 (its error estimate still sits at the
// "know nothing" initial value); a pair between two well-settled nodes
// with ~10% local error scores ~0.9. This is the value stored per cell as
// the completed matrix's confidence.
func (m *Model) Confidence(i, j int) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.confidenceLocked(i, j)
}

func (m *Model) confidenceLocked(i, j int) float64 {
	c := 1 - (m.errEst[i]+m.errEst[j])/2
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c
}

// PredictWithConfidence returns both under one lock — the completion
// loop's accessor.
func (m *Model) PredictWithConfidence(i, j int) (rttMs, conf float64) {
	if i == j {
		return 0, 1
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.predictLocked(i, j), m.confidenceLocked(i, j)
}

// NodeError returns node i's current relative error estimate — the
// active-learning priority signal (high error ⇒ worth measuring).
func (m *Model) NodeError(i int) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.errEst[i]
}

// Observations returns how many measurements have touched node i.
func (m *Model) Observations(i int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nobs[i]
}

// MedianError returns the median of all nodes' error estimates — a fit
// quality summary for logs and telemetry.
func (m *Model) MedianError() float64 {
	m.mu.RLock()
	es := append([]float64(nil), m.errEst...)
	m.mu.RUnlock()
	sort.Float64s(es)
	if len(es)%2 == 1 {
		return es[len(es)/2]
	}
	return (es[len(es)/2-1] + es[len(es)/2]) / 2
}

// String summarizes the model for logs.
func (m *Model) String() string {
	return fmt.Sprintf("coords.Model(n=%d dim=%d medianErr=%.3f)", m.N(), m.dim, m.MedianError())
}
