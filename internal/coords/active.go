package coords

import (
	"math/rand"
	"sort"
)

// Pair is an unordered node pair (I < J by convention of the producers in
// this package).
type Pair struct {
	I, J int
}

// SelectUncertain picks up to k unmeasured pairs for the next measurement
// batch, prioritizing the pairs the model is least certain about: each
// candidate is scored by the sum of its endpoints' error estimates, and
// the batch is filled mostly from the top of that ranking with a seeded
// random minority mixed in (epsilon-greedy — pure exploitation keeps
// hammering the same confused clique and starves fresh information).
//
// A per-node cap (derived from the batch size) stops one high-error node
// from monopolizing the batch: measuring a node against 50 peers in one
// round teaches little more than measuring it against 5 and refitting.
//
// measured reports whether a pair already has ground truth; candidates
// for which it returns true are skipped. The selection is deterministic
// for a fixed model state, seed, and candidate set.
func (m *Model) SelectUncertain(k int, measured func(i, j int) bool, seed int64) []Pair {
	if k <= 0 {
		return nil
	}
	m.mu.RLock()
	n := len(m.height)
	type scored struct {
		p     Pair
		score float64
	}
	cands := make([]scored, 0, n*4)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if measured(i, j) {
				continue
			}
			cands = append(cands, scored{Pair{i, j}, m.errEst[i] + m.errEst[j]})
		}
	}
	m.mu.RUnlock()
	if len(cands) == 0 {
		return nil
	}
	// Stable order first so equal scores tie-break deterministically.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].p.I != cands[b].p.I {
			return cands[a].p.I < cands[b].p.I
		}
		return cands[a].p.J < cands[b].p.J
	})
	if k > len(cands) {
		k = len(cands)
	}

	// Per-node cap: spread the batch across at least ~8 distinct nodes'
	// worth of pairs.
	cap := k/4 + 1
	perNode := make([]int, n)
	rng := rand.New(rand.NewSource(seed))

	greedy := k - k/4 // 75% exploitation
	out := make([]Pair, 0, k)
	taken := make([]bool, len(cands))
	for idx, c := range cands {
		if len(out) >= greedy {
			break
		}
		if perNode[c.p.I] >= cap || perNode[c.p.J] >= cap {
			continue
		}
		out = append(out, c.p)
		taken[idx] = true
		perNode[c.p.I]++
		perNode[c.p.J]++
	}
	// 25% exploration: seeded random picks from the remainder, no cap —
	// these exist precisely to reach starved corners.
	rest := make([]int, 0, len(cands))
	for idx := range cands {
		if !taken[idx] {
			rest = append(rest, idx)
		}
	}
	rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	for _, idx := range rest {
		if len(out) >= k {
			break
		}
		out = append(out, cands[idx].p)
	}
	return out
}
