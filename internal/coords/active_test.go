package coords

import (
	"testing"
)

// fitUneven gives the model a lopsided information diet: nodes 0..n/2 see
// plenty of observations, the rest none, so the selector has a clear
// uncertainty gradient to exploit.
func fitUneven(t *testing.T, n int) *Model {
	t.Helper()
	m, err := New(n, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for i := 0; i < n/2; i++ {
		for j := i + 1; j < n/2; j++ {
			obs = append(obs, Observation{I: i, J: j, RTTMs: 10 + float64(i+j)})
		}
	}
	m.Fit(obs, 20)
	return m
}

func TestSelectUncertainBasics(t *testing.T) {
	const n = 20
	m := fitUneven(t, n)
	none := func(i, j int) bool { return false }

	got := m.SelectUncertain(30, none, 1)
	if len(got) != 30 {
		t.Fatalf("selected %d pairs, want 30", len(got))
	}
	seen := map[Pair]bool{}
	for _, p := range got {
		if p.I >= p.J || p.I < 0 || p.J >= n {
			t.Fatalf("malformed pair %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %+v", p)
		}
		seen[p] = true
	}

	// The greedy majority must chase the unobserved (high-error) half.
	unobserved := 0
	for _, p := range got {
		if p.I >= n/2 || p.J >= n/2 {
			unobserved++
		}
	}
	if unobserved < len(got)/2 {
		t.Errorf("only %d/%d selected pairs touch the unobserved half", unobserved, len(got))
	}

	if got := m.SelectUncertain(0, none, 1); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := m.SelectUncertain(-3, none, 1); got != nil {
		t.Errorf("negative k returned %v", got)
	}
}

func TestSelectUncertainSkipsMeasured(t *testing.T) {
	m := fitUneven(t, 12)
	// Everything measured → nothing to select.
	if got := m.SelectUncertain(5, func(i, j int) bool { return true }, 1); got != nil {
		t.Errorf("fully-measured selection = %v, want nil", got)
	}
	// Only pairs containing node 0 unmeasured.
	only0 := func(i, j int) bool { return i != 0 && j != 0 }
	got := m.SelectUncertain(50, only0, 1)
	if len(got) != 11 {
		t.Fatalf("selected %d pairs, want the 11 containing node 0", len(got))
	}
	for _, p := range got {
		if p.I != 0 {
			t.Errorf("pair %+v does not contain node 0", p)
		}
	}
}

func TestSelectUncertainDeterministic(t *testing.T) {
	m := fitUneven(t, 16)
	none := func(i, j int) bool { return false }
	a := m.SelectUncertain(20, none, 9)
	b := m.SelectUncertain(20, none, 9)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := m.SelectUncertain(20, none, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical exploration picks")
	}
}

// TestSelectUncertainCapsGreedyMonopoly: with one node vastly more
// uncertain than the rest, the greedy phase must not spend the whole batch
// on it.
func TestSelectUncertainCapsGreedyMonopoly(t *testing.T) {
	const n = 30
	m, err := New(n, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Observe every pair except those touching node 0: node 0 keeps the
	// init-ceiling error, everyone else settles.
	var obs []Observation
	for i := 1; i < n; i++ {
		for j := i + 1; j < n; j++ {
			obs = append(obs, Observation{I: i, J: j, RTTMs: 20})
		}
	}
	m.Fit(obs, 10)
	const k = 20
	got := m.SelectUncertain(k, func(i, j int) bool { return false }, 1)
	count0 := 0
	for _, p := range got {
		if p.I == 0 || p.J == 0 {
			count0++
		}
	}
	// Greedy picks are capped at k/4+1 = 6; exploration may add a few more
	// by chance, but node 0 must not own the batch.
	if count0 > k/2 {
		t.Errorf("node 0 monopolized %d/%d picks despite the per-node cap", count0, k)
	}
	if count0 == 0 {
		t.Error("most-uncertain node never picked")
	}
}
